# Empty compiler generated dependencies file for orbitlab.
# This may be replaced when dependencies are built.
