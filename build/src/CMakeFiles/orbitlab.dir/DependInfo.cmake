
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/client.cc" "src/CMakeFiles/orbitlab.dir/apps/client.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/apps/client.cc.o.d"
  "/root/repo/src/apps/server.cc" "src/CMakeFiles/orbitlab.dir/apps/server.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/apps/server.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/orbitlab.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/orbitlab.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/orbitlab.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/orbitlab.dir/common/random.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/common/random.cc.o.d"
  "/root/repo/src/kv/hash_table.cc" "src/CMakeFiles/orbitlab.dir/kv/hash_table.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/kv/hash_table.cc.o.d"
  "/root/repo/src/kv/kv_store.cc" "src/CMakeFiles/orbitlab.dir/kv/kv_store.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/kv/kv_store.cc.o.d"
  "/root/repo/src/kv/partition.cc" "src/CMakeFiles/orbitlab.dir/kv/partition.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/kv/partition.cc.o.d"
  "/root/repo/src/kv/value.cc" "src/CMakeFiles/orbitlab.dir/kv/value.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/kv/value.cc.o.d"
  "/root/repo/src/netcache/controller.cc" "src/CMakeFiles/orbitlab.dir/netcache/controller.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/netcache/controller.cc.o.d"
  "/root/repo/src/netcache/program.cc" "src/CMakeFiles/orbitlab.dir/netcache/program.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/netcache/program.cc.o.d"
  "/root/repo/src/nocache/program.cc" "src/CMakeFiles/orbitlab.dir/nocache/program.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/nocache/program.cc.o.d"
  "/root/repo/src/orbitcache/controller.cc" "src/CMakeFiles/orbitlab.dir/orbitcache/controller.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/orbitcache/controller.cc.o.d"
  "/root/repo/src/orbitcache/program.cc" "src/CMakeFiles/orbitlab.dir/orbitcache/program.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/orbitcache/program.cc.o.d"
  "/root/repo/src/orbitcache/request_table.cc" "src/CMakeFiles/orbitlab.dir/orbitcache/request_table.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/orbitcache/request_table.cc.o.d"
  "/root/repo/src/proto/codec.cc" "src/CMakeFiles/orbitlab.dir/proto/codec.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/proto/codec.cc.o.d"
  "/root/repo/src/proto/message.cc" "src/CMakeFiles/orbitlab.dir/proto/message.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/proto/message.cc.o.d"
  "/root/repo/src/rmt/match_table.cc" "src/CMakeFiles/orbitlab.dir/rmt/match_table.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/rmt/match_table.cc.o.d"
  "/root/repo/src/rmt/pre.cc" "src/CMakeFiles/orbitlab.dir/rmt/pre.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/rmt/pre.cc.o.d"
  "/root/repo/src/rmt/register_array.cc" "src/CMakeFiles/orbitlab.dir/rmt/register_array.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/rmt/register_array.cc.o.d"
  "/root/repo/src/rmt/resources.cc" "src/CMakeFiles/orbitlab.dir/rmt/resources.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/rmt/resources.cc.o.d"
  "/root/repo/src/rmt/switch.cc" "src/CMakeFiles/orbitlab.dir/rmt/switch.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/rmt/switch.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/orbitlab.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/orbitlab.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/link.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/orbitlab.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/packet.cc" "src/CMakeFiles/orbitlab.dir/sim/packet.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/packet.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/orbitlab.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/orbitlab.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/sim/trace.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/orbitlab.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/meters.cc" "src/CMakeFiles/orbitlab.dir/stats/meters.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/stats/meters.cc.o.d"
  "/root/repo/src/stats/time_series.cc" "src/CMakeFiles/orbitlab.dir/stats/time_series.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/stats/time_series.cc.o.d"
  "/root/repo/src/testbed/testbed.cc" "src/CMakeFiles/orbitlab.dir/testbed/testbed.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/testbed/testbed.cc.o.d"
  "/root/repo/src/workload/count_min.cc" "src/CMakeFiles/orbitlab.dir/workload/count_min.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/count_min.cc.o.d"
  "/root/repo/src/workload/dynamic.cc" "src/CMakeFiles/orbitlab.dir/workload/dynamic.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/dynamic.cc.o.d"
  "/root/repo/src/workload/keyspace.cc" "src/CMakeFiles/orbitlab.dir/workload/keyspace.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/keyspace.cc.o.d"
  "/root/repo/src/workload/top_k.cc" "src/CMakeFiles/orbitlab.dir/workload/top_k.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/top_k.cc.o.d"
  "/root/repo/src/workload/twitter.cc" "src/CMakeFiles/orbitlab.dir/workload/twitter.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/twitter.cc.o.d"
  "/root/repo/src/workload/value_dist.cc" "src/CMakeFiles/orbitlab.dir/workload/value_dist.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/value_dist.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/orbitlab.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/orbitlab.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/orbitlab.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
