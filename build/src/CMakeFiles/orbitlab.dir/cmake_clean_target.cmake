file(REMOVE_RECURSE
  "liborbitlab.a"
)
