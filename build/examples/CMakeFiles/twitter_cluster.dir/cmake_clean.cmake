file(REMOVE_RECURSE
  "CMakeFiles/twitter_cluster.dir/twitter_cluster.cpp.o"
  "CMakeFiles/twitter_cluster.dir/twitter_cluster.cpp.o.d"
  "twitter_cluster"
  "twitter_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
