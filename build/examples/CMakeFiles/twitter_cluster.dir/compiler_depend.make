# Empty compiler generated dependencies file for twitter_cluster.
# This may be replaced when dependencies are built.
