file(REMOVE_RECURSE
  "CMakeFiles/multi_rack.dir/multi_rack.cpp.o"
  "CMakeFiles/multi_rack.dir/multi_rack.cpp.o.d"
  "multi_rack"
  "multi_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
