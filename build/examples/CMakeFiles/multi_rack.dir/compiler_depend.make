# Empty compiler generated dependencies file for multi_rack.
# This may be replaced when dependencies are built.
