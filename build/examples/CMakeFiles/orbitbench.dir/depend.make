# Empty dependencies file for orbitbench.
# This may be replaced when dependencies are built.
