file(REMOVE_RECURSE
  "CMakeFiles/orbitbench.dir/orbitbench.cpp.o"
  "CMakeFiles/orbitbench.dir/orbitbench.cpp.o.d"
  "orbitbench"
  "orbitbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orbitbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
