# Empty compiler generated dependencies file for collision_walkthrough.
# This may be replaced when dependencies are built.
