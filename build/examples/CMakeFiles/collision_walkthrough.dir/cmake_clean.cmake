file(REMOVE_RECURSE
  "CMakeFiles/collision_walkthrough.dir/collision_walkthrough.cpp.o"
  "CMakeFiles/collision_walkthrough.dir/collision_walkthrough.cpp.o.d"
  "collision_walkthrough"
  "collision_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
