file(REMOVE_RECURSE
  "CMakeFiles/dynamic_popularity.dir/dynamic_popularity.cpp.o"
  "CMakeFiles/dynamic_popularity.dir/dynamic_popularity.cpp.o.d"
  "dynamic_popularity"
  "dynamic_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
