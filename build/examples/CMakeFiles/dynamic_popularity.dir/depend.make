# Empty dependencies file for dynamic_popularity.
# This may be replaced when dependencies are built.
