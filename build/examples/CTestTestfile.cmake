# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collision_walkthrough "/root/repo/build/examples/collision_walkthrough")
set_tests_properties(example_collision_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_rack "/root/repo/build/examples/multi_rack")
set_tests_properties(example_multi_rack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_orbitbench "/root/repo/build/examples/orbitbench" "--servers=4" "--server-rate=20000" "--rate=100000" "--keys=50000" "--duration-ms=50")
set_tests_properties(example_orbitbench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
