file(REMOVE_RECURSE
  "CMakeFiles/test_match_table.dir/test_match_table.cc.o"
  "CMakeFiles/test_match_table.dir/test_match_table.cc.o.d"
  "test_match_table"
  "test_match_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
