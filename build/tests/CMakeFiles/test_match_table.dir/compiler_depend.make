# Empty compiler generated dependencies file for test_match_table.
# This may be replaced when dependencies are built.
