# Empty compiler generated dependencies file for test_request_table.
# This may be replaced when dependencies are built.
