file(REMOVE_RECURSE
  "CMakeFiles/test_request_table.dir/test_request_table.cc.o"
  "CMakeFiles/test_request_table.dir/test_request_table.cc.o.d"
  "test_request_table"
  "test_request_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_request_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
