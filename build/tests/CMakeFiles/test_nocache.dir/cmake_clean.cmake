file(REMOVE_RECURSE
  "CMakeFiles/test_nocache.dir/test_nocache.cc.o"
  "CMakeFiles/test_nocache.dir/test_nocache.cc.o.d"
  "test_nocache"
  "test_nocache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nocache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
