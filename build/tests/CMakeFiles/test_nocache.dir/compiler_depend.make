# Empty compiler generated dependencies file for test_nocache.
# This may be replaced when dependencies are built.
