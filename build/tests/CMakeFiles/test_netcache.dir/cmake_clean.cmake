file(REMOVE_RECURSE
  "CMakeFiles/test_netcache.dir/test_netcache.cc.o"
  "CMakeFiles/test_netcache.dir/test_netcache.cc.o.d"
  "test_netcache"
  "test_netcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
