# Empty compiler generated dependencies file for test_netcache.
# This may be replaced when dependencies are built.
