file(REMOVE_RECURSE
  "CMakeFiles/test_kv_store.dir/test_kv_store.cc.o"
  "CMakeFiles/test_kv_store.dir/test_kv_store.cc.o.d"
  "test_kv_store"
  "test_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
