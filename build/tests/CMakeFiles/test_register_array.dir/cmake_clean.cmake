file(REMOVE_RECURSE
  "CMakeFiles/test_register_array.dir/test_register_array.cc.o"
  "CMakeFiles/test_register_array.dir/test_register_array.cc.o.d"
  "test_register_array"
  "test_register_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
