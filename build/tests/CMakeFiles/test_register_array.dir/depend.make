# Empty dependencies file for test_register_array.
# This may be replaced when dependencies are built.
