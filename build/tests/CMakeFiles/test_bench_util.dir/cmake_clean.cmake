file(REMOVE_RECURSE
  "CMakeFiles/test_bench_util.dir/test_bench_util.cc.o"
  "CMakeFiles/test_bench_util.dir/test_bench_util.cc.o.d"
  "test_bench_util"
  "test_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
