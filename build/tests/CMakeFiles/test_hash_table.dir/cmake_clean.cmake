file(REMOVE_RECURSE
  "CMakeFiles/test_hash_table.dir/test_hash_table.cc.o"
  "CMakeFiles/test_hash_table.dir/test_hash_table.cc.o.d"
  "test_hash_table"
  "test_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
