# Empty dependencies file for test_top_k.
# This may be replaced when dependencies are built.
