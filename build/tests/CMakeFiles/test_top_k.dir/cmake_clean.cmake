file(REMOVE_RECURSE
  "CMakeFiles/test_top_k.dir/test_top_k.cc.o"
  "CMakeFiles/test_top_k.dir/test_top_k.cc.o.d"
  "test_top_k"
  "test_top_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_top_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
