file(REMOVE_RECURSE
  "CMakeFiles/test_count_min.dir/test_count_min.cc.o"
  "CMakeFiles/test_count_min.dir/test_count_min.cc.o.d"
  "test_count_min"
  "test_count_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_count_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
