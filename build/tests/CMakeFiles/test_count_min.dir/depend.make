# Empty dependencies file for test_count_min.
# This may be replaced when dependencies are built.
