file(REMOVE_RECURSE
  "CMakeFiles/test_orbit_controller.dir/test_orbit_controller.cc.o"
  "CMakeFiles/test_orbit_controller.dir/test_orbit_controller.cc.o.d"
  "test_orbit_controller"
  "test_orbit_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
