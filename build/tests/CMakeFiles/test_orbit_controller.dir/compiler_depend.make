# Empty compiler generated dependencies file for test_orbit_controller.
# This may be replaced when dependencies are built.
