# Empty dependencies file for test_value_dist.
# This may be replaced when dependencies are built.
