file(REMOVE_RECURSE
  "CMakeFiles/test_value_dist.dir/test_value_dist.cc.o"
  "CMakeFiles/test_value_dist.dir/test_value_dist.cc.o.d"
  "test_value_dist"
  "test_value_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
