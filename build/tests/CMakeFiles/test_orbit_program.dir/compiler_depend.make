# Empty compiler generated dependencies file for test_orbit_program.
# This may be replaced when dependencies are built.
