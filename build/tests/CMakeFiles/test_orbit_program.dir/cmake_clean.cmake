file(REMOVE_RECURSE
  "CMakeFiles/test_orbit_program.dir/test_orbit_program.cc.o"
  "CMakeFiles/test_orbit_program.dir/test_orbit_program.cc.o.d"
  "test_orbit_program"
  "test_orbit_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
