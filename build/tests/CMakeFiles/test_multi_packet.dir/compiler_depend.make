# Empty compiler generated dependencies file for test_multi_packet.
# This may be replaced when dependencies are built.
