file(REMOVE_RECURSE
  "CMakeFiles/test_multi_packet.dir/test_multi_packet.cc.o"
  "CMakeFiles/test_multi_packet.dir/test_multi_packet.cc.o.d"
  "test_multi_packet"
  "test_multi_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
