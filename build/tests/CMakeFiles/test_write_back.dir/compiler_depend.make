# Empty compiler generated dependencies file for test_write_back.
# This may be replaced when dependencies are built.
