file(REMOVE_RECURSE
  "CMakeFiles/test_write_back.dir/test_write_back.cc.o"
  "CMakeFiles/test_write_back.dir/test_write_back.cc.o.d"
  "test_write_back"
  "test_write_back.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_back.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
