file(REMOVE_RECURSE
  "CMakeFiles/test_twitter.dir/test_twitter.cc.o"
  "CMakeFiles/test_twitter.dir/test_twitter.cc.o.d"
  "test_twitter"
  "test_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
