# Empty dependencies file for test_multi_rack.
# This may be replaced when dependencies are built.
