file(REMOVE_RECURSE
  "CMakeFiles/test_multi_rack.dir/test_multi_rack.cc.o"
  "CMakeFiles/test_multi_rack.dir/test_multi_rack.cc.o.d"
  "test_multi_rack"
  "test_multi_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
