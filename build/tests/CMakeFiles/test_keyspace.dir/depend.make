# Empty dependencies file for test_keyspace.
# This may be replaced when dependencies are built.
