file(REMOVE_RECURSE
  "CMakeFiles/test_keyspace.dir/test_keyspace.cc.o"
  "CMakeFiles/test_keyspace.dir/test_keyspace.cc.o.d"
  "test_keyspace"
  "test_keyspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
