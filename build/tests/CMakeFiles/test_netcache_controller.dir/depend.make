# Empty dependencies file for test_netcache_controller.
# This may be replaced when dependencies are built.
