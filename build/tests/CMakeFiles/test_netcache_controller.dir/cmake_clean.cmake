file(REMOVE_RECURSE
  "CMakeFiles/test_netcache_controller.dir/test_netcache_controller.cc.o"
  "CMakeFiles/test_netcache_controller.dir/test_netcache_controller.cc.o.d"
  "test_netcache_controller"
  "test_netcache_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netcache_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
