# Empty dependencies file for test_pre.
# This may be replaced when dependencies are built.
