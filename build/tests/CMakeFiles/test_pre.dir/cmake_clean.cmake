file(REMOVE_RECURSE
  "CMakeFiles/test_pre.dir/test_pre.cc.o"
  "CMakeFiles/test_pre.dir/test_pre.cc.o.d"
  "test_pre"
  "test_pre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
