file(REMOVE_RECURSE
  "CMakeFiles/rationale_request_recirc.dir/rationale_request_recirc.cc.o"
  "CMakeFiles/rationale_request_recirc.dir/rationale_request_recirc.cc.o.d"
  "rationale_request_recirc"
  "rationale_request_recirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rationale_request_recirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
