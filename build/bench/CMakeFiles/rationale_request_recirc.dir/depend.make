# Empty dependencies file for rationale_request_recirc.
# This may be replaced when dependencies are built.
