# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rationale_request_recirc.
