# Empty dependencies file for fig17_item_size.
# This may be replaced when dependencies are built.
