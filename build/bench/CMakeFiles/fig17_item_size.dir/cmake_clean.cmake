file(REMOVE_RECURSE
  "CMakeFiles/fig17_item_size.dir/fig17_item_size.cc.o"
  "CMakeFiles/fig17_item_size.dir/fig17_item_size.cc.o.d"
  "fig17_item_size"
  "fig17_item_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_item_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
