# Empty compiler generated dependencies file for ablation_orbit.
# This may be replaced when dependencies are built.
