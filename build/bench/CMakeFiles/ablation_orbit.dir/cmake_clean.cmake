file(REMOVE_RECURSE
  "CMakeFiles/ablation_orbit.dir/ablation_orbit.cc.o"
  "CMakeFiles/ablation_orbit.dir/ablation_orbit.cc.o.d"
  "ablation_orbit"
  "ablation_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
