file(REMOVE_RECURSE
  "CMakeFiles/fig10_server_loads.dir/fig10_server_loads.cc.o"
  "CMakeFiles/fig10_server_loads.dir/fig10_server_loads.cc.o.d"
  "fig10_server_loads"
  "fig10_server_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_server_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
