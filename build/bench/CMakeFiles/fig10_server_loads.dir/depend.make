# Empty dependencies file for fig10_server_loads.
# This may be replaced when dependencies are built.
