# Empty dependencies file for fig12_write_ratio.
# This may be replaced when dependencies are built.
