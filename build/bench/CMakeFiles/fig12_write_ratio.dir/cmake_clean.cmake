file(REMOVE_RECURSE
  "CMakeFiles/fig12_write_ratio.dir/fig12_write_ratio.cc.o"
  "CMakeFiles/fig12_write_ratio.dir/fig12_write_ratio.cc.o.d"
  "fig12_write_ratio"
  "fig12_write_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_write_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
