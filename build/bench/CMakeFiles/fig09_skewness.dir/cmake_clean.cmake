file(REMOVE_RECURSE
  "CMakeFiles/fig09_skewness.dir/fig09_skewness.cc.o"
  "CMakeFiles/fig09_skewness.dir/fig09_skewness.cc.o.d"
  "fig09_skewness"
  "fig09_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
