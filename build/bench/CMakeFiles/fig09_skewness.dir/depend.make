# Empty dependencies file for fig09_skewness.
# This may be replaced when dependencies are built.
