file(REMOVE_RECURSE
  "CMakeFiles/fig11_latency_throughput.dir/fig11_latency_throughput.cc.o"
  "CMakeFiles/fig11_latency_throughput.dir/fig11_latency_throughput.cc.o.d"
  "fig11_latency_throughput"
  "fig11_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
