# Empty compiler generated dependencies file for fig11_latency_throughput.
# This may be replaced when dependencies are built.
