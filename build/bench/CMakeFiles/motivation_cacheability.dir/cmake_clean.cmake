file(REMOVE_RECURSE
  "CMakeFiles/motivation_cacheability.dir/motivation_cacheability.cc.o"
  "CMakeFiles/motivation_cacheability.dir/motivation_cacheability.cc.o.d"
  "motivation_cacheability"
  "motivation_cacheability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_cacheability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
