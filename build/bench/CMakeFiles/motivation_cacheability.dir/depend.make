# Empty dependencies file for motivation_cacheability.
# This may be replaced when dependencies are built.
