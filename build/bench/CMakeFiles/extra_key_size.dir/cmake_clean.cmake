file(REMOVE_RECURSE
  "CMakeFiles/extra_key_size.dir/extra_key_size.cc.o"
  "CMakeFiles/extra_key_size.dir/extra_key_size.cc.o.d"
  "extra_key_size"
  "extra_key_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_key_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
