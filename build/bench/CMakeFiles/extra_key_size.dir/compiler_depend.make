# Empty compiler generated dependencies file for extra_key_size.
# This may be replaced when dependencies are built.
