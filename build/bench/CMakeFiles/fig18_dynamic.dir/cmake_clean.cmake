file(REMOVE_RECURSE
  "CMakeFiles/fig18_dynamic.dir/fig18_dynamic.cc.o"
  "CMakeFiles/fig18_dynamic.dir/fig18_dynamic.cc.o.d"
  "fig18_dynamic"
  "fig18_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
