# Empty dependencies file for fig15_latency_breakdown.
# This may be replaced when dependencies are built.
