# Empty compiler generated dependencies file for fig16_cache_size.
# This may be replaced when dependencies are built.
