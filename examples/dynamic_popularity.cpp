// Dynamic-workload walkthrough: a hot-in popularity swap stales the whole
// cache; watch the controller rebuild it from top-k reports.
//
//   ./build/examples/dynamic_popularity
#include <cstdio>

#include "testbed/testbed.h"

int main() {
  using namespace orbit;

  testbed::TestbedConfig cfg;
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 4;
  // Finite per-server capacity so the post-swap misses can actually
  // overload the hot partition and the throughput dips become visible.
  cfg.topo.server_rate_rps = 50'000;
  cfg.topo.client_rate_rps = 225'000;
  cfg.workload.num_keys = 200'000;
  cfg.cache.orbit_cache_size = 64;
  cfg.workload.hot_in = true;
  cfg.workload.hot_in_count = 64;
  cfg.workload.hot_in_period = 2 * kSecond;
  cfg.control.run_cache_updates = true;
  cfg.control.update_period = 400 * kMillisecond;
  cfg.control.report_period = 400 * kMillisecond;
  cfg.warmup = 0;
  cfg.duration = 8 * kSecond;
  cfg.timeline_bin = 250 * kMillisecond;

  std::printf("hot-in pattern: every %.0fs the %llu hottest and coldest keys "
              "swap popularity\n\n",
              static_cast<double>(cfg.workload.hot_in_period) / kSecond,
              static_cast<unsigned long long>(cfg.workload.hot_in_count));

  const testbed::TestbedResult res = testbed::RunTestbed(cfg);

  std::printf("%8s %12s %12s   (swaps at 2s, 4s, 6s)\n", "t(s)", "rx(KRPS)",
              "overflow");
  for (size_t i = 0; i < res.throughput_timeline.size(); ++i) {
    const double t = static_cast<double>(i * cfg.timeline_bin) / kSecond;
    const double ovf = i < res.overflow_ratio_timeline.size()
                           ? res.overflow_ratio_timeline[i]
                           : 0;
    std::printf("%8.2f %12.1f %11.2f%%\n", t,
                res.throughput_timeline[i] / 1e3, 100.0 * ovf);
  }
  std::printf("\ncache ended with %zu entries; %llu client-side key "
              "corrections; %llu stale reads\n",
              res.cache_entries,
              static_cast<unsigned long long>(res.collisions),
              static_cast<unsigned long long>(res.stale_reads));
  return 0;
}
