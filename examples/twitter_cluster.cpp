// Production-workload walkthrough: run one of the Fig.-14 Twitter-like
// profiles under all three schemes and compare.
//
//   ./build/examples/twitter_cluster [A|B|C|D|E]
#include <cstdio>
#include <cstring>

#include "testbed/testbed.h"
#include "workload/twitter.h"

int main(int argc, char** argv) {
  using namespace orbit;

  const char* wanted = argc > 1 ? argv[1] : "E";
  const wl::TwitterProfile* profile = nullptr;
  for (const auto& p : wl::Fig14Profiles())
    if (p.id == wanted) profile = &p;
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (use A..E)\n", wanted);
    return 1;
  }

  std::printf("workload %s (%s): %.0f%% NetCache-cacheable items, "
              "%.0f%% writes, %.0f%% small values\n\n",
              profile->id.c_str(), profile->cluster.c_str(),
              100 * profile->cacheable_ratio, 100 * profile->write_ratio,
              100 * profile->p_small);

  for (auto scheme : {testbed::Scheme::kNoCache, testbed::Scheme::kNetCache,
                      testbed::Scheme::kOrbitCache}) {
    testbed::TestbedConfig cfg;
    cfg.scheme = scheme;
    cfg.workload.twitter = profile;
    cfg.topo.num_clients = 4;
    cfg.topo.num_servers = 16;
    cfg.workload.num_keys = 1'000'000;
    cfg.cache.orbit_cache_size = 128;
    cfg.cache.netcache_size = 10'000;
    cfg.warmup = 50 * kMillisecond;
    cfg.duration = 150 * kMillisecond;

    const testbed::SaturationResult sat = testbed::FindSaturation(cfg);
    std::printf("%-12s: %6.2f MRPS saturated (%.0f%% served by switch, "
                "balancing efficiency %.2f)\n",
                testbed::SchemeName(scheme), sat.result.rx_rps / 1e6,
                sat.result.rx_rps > 0
                    ? 100.0 * sat.result.cache_served_rps / sat.result.rx_rps
                    : 0.0,
                sat.result.balancing_efficiency);
  }
  return 0;
}
