// Quickstart: run a small OrbitCache testbed and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "testbed/testbed.h"

int main() {
  using namespace orbit;

  testbed::TestbedConfig cfg;
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 8;
  cfg.topo.server_rate_rps = 50'000;   // emulated per-server Rx limit
  cfg.topo.client_rate_rps = 1'000'000;  // aggregate open-loop Tx
  cfg.workload.num_keys = 1'000'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.cache.orbit_cache_size = 64;
  cfg.warmup = 50 * kMillisecond;
  cfg.duration = 200 * kMillisecond;

  std::printf("OrbitCache quickstart: %d clients, %d servers, zipf-%.2f over %llu keys\n\n",
              cfg.topo.num_clients, cfg.topo.num_servers, cfg.workload.zipf_theta,
              static_cast<unsigned long long>(cfg.workload.num_keys));

  testbed::TestbedResult res = testbed::RunTestbed(cfg);

  std::printf("throughput      : %.2f MRPS rx (%.2f MRPS offered)\n",
              res.rx_rps / 1e6, res.tx_rps / 1e6);
  std::printf("served by switch: %.2f MRPS (%.0f%% of replies)\n",
              res.cache_served_rps / 1e6,
              100.0 * res.cache_served_rps / res.rx_rps);
  std::printf("served by stores: %.2f MRPS\n", res.server_served_rps / 1e6);
  std::printf("balancing eff.  : %.2f (min/max server load)\n",
              res.balancing_efficiency);
  std::printf("read latency    : cached p50=%.1fus p99=%.1fus | server p50=%.1fus p99=%.1fus\n",
              res.read_cached_latency.Median() / 1e3,
              res.read_cached_latency.P99() / 1e3,
              res.read_server_latency.Median() / 1e3,
              res.read_server_latency.P99() / 1e3);
  std::printf("overflow ratio  : %.4f (requests for cached keys sent to servers)\n",
              res.overflow_ratio);
  std::printf("cache packets   : %llu circulating for %zu entries\n",
              static_cast<unsigned long long>(res.cache_packets_in_flight),
              res.cache_entries);
  std::printf("coherence       : %llu stale reads, %llu collisions\n\n",
              static_cast<unsigned long long>(res.stale_reads),
              static_cast<unsigned long long>(res.collisions));
  std::printf("%s\n", res.resource_report.c_str());
  std::printf("(simulated %llu events)\n",
              static_cast<unsigned long long>(res.events_processed));
  return 0;
}
