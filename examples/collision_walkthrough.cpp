// Packet-level walkthrough of OrbitCache's client-side collision
// resolution (paper §3.6/§3.8, Fig. 7).
//
// Scenario: a read for key X is buffered in the request table just as the
// controller replaces the cache entry — new key Y inherits X's CacheIdx
// (§3.8). Y's cache packet answers X's buffered request, so the client
// receives Y's key-value pair for a request about X, detects the mismatch
// by comparing keys, and issues a correction request (CRN-REQ) that
// bypasses the cache and fetches X's true value from the storage server.
//
//   ./build/examples/collision_walkthrough
#include <cstdio>
#include <unordered_map>

#include "apps/server.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace orbit;

namespace {

constexpr L4Port kPort = 5008;
constexpr Addr kClient = 1, kServer = 2, kController = 3;

// A bare-bones client that prints every packet it receives and performs
// the §3.6 correction step, so each protocol action is visible.
class TracingClient : public sim::Node {
 public:
  TracingClient(sim::Simulator* sim, sim::Network* net) : sim_(sim), net_(net) {}

  void Expect(uint32_t seq, const Key& key) { pending_[seq] = key; }

  void SendRead(const Key& key, uint32_t seq) {
    std::printf("[%6.1fus] client : R-REQ seq=%u key=%s\n", Us(), seq,
                key.c_str());
    Expect(seq, key);
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_->Send(this, 0, sim::MakePacket(kClient, kServer, 9000, kPort,
                                        std::move(msg)));
  }

  void OnPacket(sim::PacketPtr pkt, int) override {
    const proto::Message& msg = pkt->msg;
    std::printf("[%6.1fus] client : %s seq=%u key=%s (%uB value)%s\n", Us(),
                proto::OpName(msg.op), msg.seq, msg.key.c_str(),
                msg.value.size(), msg.cached ? " [served by switch]" : "");
    auto it = pending_.find(msg.seq);
    if (it == pending_.end()) return;
    const Key wanted = it->second;
    pending_.erase(it);
    if (msg.key != wanted) {
      std::printf("[%6.1fus] client : KEY MISMATCH — wanted %s, got %s; "
                  "sending CRN-REQ\n",
                  Us(), wanted.c_str(), msg.key.c_str());
      proto::Message fix;
      fix.op = proto::Op::kCorrectionReq;
      fix.seq = msg.seq + 1000;
      fix.hkey = HashKey128(wanted);
      fix.key = wanted;
      Expect(fix.seq, wanted);
      net_->Send(this, 0, sim::MakePacket(kClient, kServer, 9000, kPort,
                                          std::move(fix)));
    } else {
      std::printf("[%6.1fus] client : correct value for %s ✓\n", Us(),
                  wanted.c_str());
    }
  }
  std::string name() const override { return "client"; }

 private:
  double Us() const { return static_cast<double>(sim_->now()) / 1e3; }
  sim::Simulator* sim_;
  sim::Network* net_;
  std::unordered_map<uint32_t, Key> pending_;
};

void Fetch(sim::Network& net, sim::Node* from, oc::OrbitProgram& program,
           uint32_t idx, const Key& key) {
  proto::Message fetch;
  fetch.op = proto::Op::kFetchReq;
  fetch.hkey = HashKey128(key);
  fetch.key = key;
  fetch.epoch = program.EpochOf(idx);
  net.Send(from, 0, sim::MakePacket(kController, kServer, kPort, kPort,
                                    std::move(fetch)));
}

}  // namespace

int main() {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "tor", rmt::AsicConfig{});
  oc::OrbitConfig ocfg;
  ocfg.capacity = 16;
  oc::OrbitProgram program(&sw, ocfg);
  sw.SetProgram(&program);

  TracingClient client(&sim, &net);
  app::ServerConfig scfg;
  scfg.addr = kServer;
  scfg.service_rate_rps = 0;  // unthrottled for the walkthrough
  app::ServerNode server(&sim, &net, 0, scfg, [](const Key&) { return 64u; });
  // A silent stand-in node receiving the controller-bound fetch acks.
  TracingClient controller_stub(&sim, &net);

  auto c = net.Connect(&client, &sw, sim::LinkConfig{});
  auto s = net.Connect(&server, &sw, sim::LinkConfig{});
  auto k = net.Connect(&controller_stub, &sw, sim::LinkConfig{});
  sw.AddRoute(kClient, c.port_b);
  sw.AddRoute(kServer, s.port_b);
  sw.AddRoute(kController, k.port_b);
  program.RegisterCloneTarget(kClient, c.port_b);
  program.RegisterCloneTarget(kController, k.port_b);

  const Key x = "key-X-00000000", y = "key-Y-00000000";
  const uint32_t idx = 0;

  std::printf("--- step 1: cache X at CacheIdx 0 and fetch its value\n");
  program.InsertEntry(HashKey128(x), idx);
  Fetch(net, &controller_stub, program, idx, x);
  sim.RunUntil(100 * kMicrosecond);

  std::printf("\n--- step 2: a read for X is served by X's circulating "
              "cache packet\n");
  client.SendRead(x, 1);
  sim.RunUntil(200 * kMicrosecond);

  std::printf("\n--- step 3: cache update — Y inherits X's CacheIdx while a "
              "read for X is still buffered in the request table\n");
  // Plant the request metadata exactly as a just-absorbed read would have
  // left it (the §3.8 race window), then perform the replacement.
  client.Expect(7, x);
  program.request_table().TryEnqueue(idx, {kClient, 9000, 7, sim.now()});
  program.EraseEntry(HashKey128(x));
  program.InsertEntry(HashKey128(y), idx);
  Fetch(net, &controller_stub, program, idx, y);
  sim.RunUntil(400 * kMicrosecond);

  std::printf("\nswitch stats: served_by_cache=%llu corrections_forwarded=%llu "
              "cp_drop_evicted=%llu\n",
              static_cast<unsigned long long>(program.stats().served_by_cache),
              static_cast<unsigned long long>(
                  program.stats().corrections_forwarded),
              static_cast<unsigned long long>(
                  program.stats().cp_drop_evicted));
  return 0;
}
