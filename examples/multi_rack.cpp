// Multi-rack deployment walkthrough (paper §3.9).
//
// Two racks behind a spine: each ToR runs OrbitCache for its own rack's
// storage servers, so for any request path exactly one switch applies the
// cache logic. A rack-1 client reads items from both racks; the printout
// shows where each reply came from and what the extra spine hops cost.
//
//   ./build/examples/multi_rack
#include <cstdio>
#include <unordered_map>

#include "apps/server.h"
#include "nocache/program.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace orbit;

namespace {

constexpr L4Port kPort = 5008;
constexpr Addr kClientAddr = 1, kSrv1 = 101, kSrv2 = 201, kCtrl = 900;

class EchoClient : public sim::Node {
 public:
  explicit EchoClient(sim::Simulator* sim) : sim_(sim) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    auto it = sent_.find(pkt->msg.seq);
    if (it == sent_.end()) return;
    std::printf("  seq %-3u %-18s %7.2f us  %s\n", pkt->msg.seq,
                pkt->msg.key.c_str(),
                static_cast<double>(sim_->now() - it->second) / 1e3,
                pkt->msg.cached ? "[ToR cache]" : "[storage server]");
    sent_.erase(it);
  }
  std::string name() const override { return "client"; }
  void Note(uint32_t seq, SimTime at) { sent_[seq] = at; }

 private:
  sim::Simulator* sim_;
  std::unordered_map<uint32_t, SimTime> sent_;
};

}  // namespace

int main() {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice tor1(&sim, &net, "tor1", rmt::AsicConfig{});
  rmt::SwitchDevice tor2(&sim, &net, "tor2", rmt::AsicConfig{});
  rmt::SwitchDevice spine(&sim, &net, "spine", rmt::AsicConfig{});
  oc::OrbitConfig ocfg;
  ocfg.capacity = 8;
  oc::OrbitProgram prog1(&tor1, ocfg), prog2(&tor2, ocfg);
  nocache::ForwardProgram fwd;
  tor1.SetProgram(&prog1);
  tor2.SetProgram(&prog2);
  spine.SetProgram(&fwd);

  EchoClient client(&sim);
  EchoClient ctrl(&sim);  // fetch-ack sink
  app::ServerConfig s1cfg;
  s1cfg.addr = kSrv1;
  s1cfg.srv_id = 1;
  s1cfg.service_rate_rps = 0;
  app::ServerNode srv1(&sim, &net, 0, s1cfg, [](const Key&) { return 512u; });
  app::ServerConfig s2cfg = s1cfg;
  s2cfg.addr = kSrv2;
  s2cfg.srv_id = 2;
  app::ServerNode srv2(&sim, &net, 0, s2cfg, [](const Key&) { return 512u; });

  auto c = net.Connect(&client, &tor1, sim::LinkConfig{});
  auto a = net.Connect(&srv1, &tor1, sim::LinkConfig{});
  auto b = net.Connect(&srv2, &tor2, sim::LinkConfig{});
  auto u1 = net.Connect(&tor1, &spine, sim::LinkConfig{});
  auto u2 = net.Connect(&tor2, &spine, sim::LinkConfig{});
  auto k = net.Connect(&ctrl, &tor1, sim::LinkConfig{});

  tor1.AddRoute(kClientAddr, c.port_b);
  tor1.AddRoute(kSrv1, a.port_b);
  tor1.AddRoute(kSrv2, u1.port_a);
  tor1.AddRoute(kCtrl, k.port_b);
  tor2.AddRoute(kSrv2, b.port_b);
  tor2.AddRoute(kClientAddr, u2.port_a);
  tor2.AddRoute(kSrv1, u2.port_a);
  tor2.AddRoute(kCtrl, u2.port_a);
  spine.AddRoute(kClientAddr, u1.port_b);
  spine.AddRoute(kSrv1, u1.port_b);
  spine.AddRoute(kCtrl, u1.port_b);
  spine.AddRoute(kSrv2, u2.port_b);

  prog1.RegisterCloneTarget(kClientAddr, c.port_b);
  prog1.RegisterCloneTarget(kCtrl, k.port_b);
  prog2.RegisterCloneTarget(kClientAddr, u2.port_a);
  prog2.RegisterCloneTarget(kCtrl, u2.port_a);

  const Key local_hot = "rack1-hot-000000";
  const Key remote_hot = "rack2-hot-000000";
  const Key remote_cold = "rack2-cold-00000";

  auto fetch = [&](oc::OrbitProgram& prog, const Key& key, Addr server) {
    prog.InsertEntry(HashKey128(key), 0);
    proto::Message msg;
    msg.op = proto::Op::kFetchReq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net.Send(&ctrl, 0,
             sim::MakePacket(kCtrl, server, kPort, kPort, std::move(msg)));
  };
  auto read = [&](const Key& key, uint32_t seq, Addr server) {
    client.Note(seq, sim.now());
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net.Send(&client, 0,
             sim::MakePacket(kClientAddr, server, 9000, kPort,
                             std::move(msg)));
    sim.RunUntil(sim.now() + 300 * kMicrosecond);
  };

  std::printf("caching '%s' at tor1 and '%s' at tor2…\n\n", local_hot.c_str(),
              remote_hot.c_str());
  fetch(prog1, local_hot, kSrv1);
  fetch(prog2, remote_hot, kSrv2);
  sim.RunUntil(300 * kMicrosecond);

  std::printf("reads from the rack-1 client:\n");
  read(local_hot, 1, kSrv1);    // one hop: tor1 serves
  read(remote_hot, 2, kSrv2);   // three hops: tor2 serves across the spine
  read(remote_cold, 3, kSrv2);  // full path to the rack-2 server
  read(local_hot, 4, kSrv1);

  std::printf("\ncache packets in flight: tor1=%lld tor2=%lld (one per rack "
              "— each ToR caches only its own rack's items)\n",
              static_cast<long long>(tor1.stats().recirc_in_flight),
              static_cast<long long>(tor2.stats().recirc_in_flight));
  return 0;
}
