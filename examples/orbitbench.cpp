// orbitbench — configurable experiment driver.
//
// Runs one testbed experiment from command-line flags and prints a result
// summary; the programmable front door to everything the figure benches do.
//
//   ./build/examples/orbitbench --scheme=orbitcache --skew=0.99 \
//       --servers=32 --server-rate=100000 --cache-size=128 --saturate
//
// Flags (defaults in brackets):
//   --scheme=orbitcache|netcache|nocache   [orbitcache]
//   --skew=F           zipf theta, 0 = uniform            [0.99]
//   --keys=N           key-space size                     [1000000]
//   --clients=N        client nodes                       [4]
//   --servers=N        emulated storage servers           [32]
//   --server-rate=N    per-server RPS cap, 0 = unlimited  [100000]
//   --rate=N           offered load (RPS)                 [6000000]
//   --saturate         search for saturated throughput instead of --rate
//   --write-ratio=F                                        [0]
//   --cache-size=N     OrbitCache entries                 [128]
//   --netcache-size=N  NetCache entries                   [10000]
//   --value=N          fixed value size; 0 = paper bimodal [0]
//   --write-back       enable the §3.10 write-back extension
//   --multi-packet     enable the §3.10 multi-packet extension
//   --duration-ms=N    measurement window                 [200]
//   --seed=N                                              [42]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testbed/testbed.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orbit;

  testbed::TestbedConfig cfg;
  cfg.workload.num_keys = 1'000'000;
  cfg.duration = 200 * kMillisecond;
  bool saturate = false;
  uint32_t fixed_value = 0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--scheme", &v)) {
      if (v == "orbitcache") cfg.scheme = testbed::Scheme::kOrbitCache;
      else if (v == "netcache") cfg.scheme = testbed::Scheme::kNetCache;
      else if (v == "nocache") cfg.scheme = testbed::Scheme::kNoCache;
      else { std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str()); return 1; }
    } else if (FlagValue(argv[i], "--skew", &v)) {
      cfg.workload.zipf_theta = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--keys", &v)) {
      cfg.workload.num_keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--clients", &v)) {
      cfg.topo.num_clients = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--servers", &v)) {
      cfg.topo.num_servers = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--server-rate", &v)) {
      cfg.topo.server_rate_rps = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--rate", &v)) {
      cfg.topo.client_rate_rps = std::atof(v.c_str());
    } else if (std::strcmp(argv[i], "--saturate") == 0) {
      saturate = true;
    } else if (FlagValue(argv[i], "--write-ratio", &v)) {
      cfg.workload.write_ratio = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--cache-size", &v)) {
      cfg.cache.orbit_cache_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--netcache-size", &v)) {
      cfg.cache.netcache_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--value", &v)) {
      fixed_value = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--write-back") == 0) {
      cfg.cache.write_back = true;
    } else if (std::strcmp(argv[i], "--multi-packet") == 0) {
      cfg.cache.multi_packet = true;
    } else if (FlagValue(argv[i], "--duration-ms", &v)) {
      cfg.duration = std::atoll(v.c_str()) * kMillisecond;
    } else if (FlagValue(argv[i], "--seed", &v)) {
      cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see header comment)\n",
                   argv[i]);
      return 1;
    }
  }
  if (fixed_value > 0) cfg.workload.value_dist = wl::ValueDist::Fixed(fixed_value);

  std::printf("%s | zipf-%.2f over %llu keys | %d servers @ %.0fK RPS | "
              "write ratio %.2f\n",
              testbed::SchemeName(cfg.scheme), cfg.workload.zipf_theta,
              static_cast<unsigned long long>(cfg.workload.num_keys), cfg.topo.num_servers,
              cfg.topo.server_rate_rps / 1e3, cfg.workload.write_ratio);

  testbed::TestbedResult res;
  if (saturate) {
    auto sat = testbed::FindSaturation(cfg);
    res = std::move(sat.result);
    std::printf("saturation search: %d runs, settled at %.2f MRPS offered\n",
                sat.runs, sat.sat_tx_rps / 1e6);
  } else {
    res = testbed::RunTestbed(cfg);
  }

  std::printf("\nthroughput   %.3f MRPS rx (%.3f offered)\n", res.rx_rps / 1e6,
              res.tx_rps / 1e6);
  std::printf("breakdown    switch %.3f MRPS, servers %.3f MRPS\n",
              res.cache_served_rps / 1e6, res.server_served_rps / 1e6);
  std::printf("balance      efficiency %.2f (min/max server)\n",
              res.balancing_efficiency);
  std::printf("read latency cached p50=%.1f p99=%.1f us | server p50=%.1f "
              "p99=%.1f us\n",
              res.read_cached_latency.Median() / 1e3,
              res.read_cached_latency.P99() / 1e3,
              res.read_server_latency.Median() / 1e3,
              res.read_server_latency.P99() / 1e3);
  if (res.write_latency.count() > 0)
    std::printf("write latency p50=%.1f p99=%.1f us\n",
                res.write_latency.Median() / 1e3,
                res.write_latency.P99() / 1e3);
  std::printf("cache        %zu entries, overflow ratio %.4f, %llu packets "
              "in orbit\n",
              res.cache_entries, res.overflow_ratio,
              static_cast<unsigned long long>(res.cache_packets_in_flight));
  std::printf("integrity    %llu stale reads, %llu collisions, %llu timeouts\n",
              static_cast<unsigned long long>(res.stale_reads),
              static_cast<unsigned long long>(res.collisions),
              static_cast<unsigned long long>(res.timeouts));
  return 0;
}
