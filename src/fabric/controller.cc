#include "fabric/controller.h"

#include <algorithm>

#include "common/check.h"

namespace orbit::fabric {

FabricController::FabricController(
    sim::Simulator* sim, sim::Network* net, FabricTopology* topo,
    const kv::Partitioner* partitioner, std::vector<Addr> server_addrs,
    const std::vector<oc::OrbitProgram*>& orbit_programs,
    const std::vector<nc::NetProgram*>& net_programs,
    const FabricControllerSpec& spec)
    : topo_(topo),
      partitioner_(partitioner),
      server_addrs_(std::move(server_addrs)),
      scheme_(spec.scheme) {
  const int racks = topo_->num_racks();
  ORBIT_CHECK_MSG(static_cast<int>(server_addrs_.size()) % racks == 0,
                  "servers must split evenly across racks");
  ORBIT_CHECK(scheme_ != testbed::Scheme::kNoCache);
  degraded_.assign(static_cast<size_t>(racks), false);
  standby_.assign(static_cast<size_t>(racks), {});
  installed_extras_.assign(static_cast<size_t>(racks), {});

  for (int r = 0; r < racks; ++r) {
    const Addr addr = controller_addr(r);
    if (scheme_ == testbed::Scheme::kOrbitCache) {
      ORBIT_CHECK(orbit_programs[static_cast<size_t>(r)] != nullptr);
      auto ctrl = std::make_unique<oc::Controller>(
          sim, net, orbit_programs[static_cast<size_t>(r)], partitioner_,
          server_addrs_, addr, /*self_port=*/0, spec.oc);
      const auto at = topo_->AttachHost(ctrl.get(), addr, r, spec.ctrl_link);
      ORBIT_CHECK(at.port_a == 0);
      orbit_ctrls_.push_back(std::move(ctrl));
    } else {
      ORBIT_CHECK(net_programs[static_cast<size_t>(r)] != nullptr);
      auto ctrl = std::make_unique<nc::NetController>(
          sim, net, net_programs[static_cast<size_t>(r)], partitioner_,
          server_addrs_, addr, /*self_port=*/0, spec.nc);
      const auto at = topo_->AttachHost(ctrl.get(), addr, r, spec.ctrl_link);
      ORBIT_CHECK(at.port_a == 0);
      net_ctrls_.push_back(std::move(ctrl));
    }
  }
}

void FabricController::PreloadTopKeys(
    const wl::KeySpace& keyspace, size_t per_leaf, uint64_t max_rank,
    const std::function<bool(const Key&)>& admit) {
  const size_t racks = static_cast<size_t>(num_racks());
  std::vector<std::vector<Key>> groups(racks);
  // full counts (preload set, standby list) pairs that reached per_leaf;
  // the scan stops once both are complete for every rack or ranks run out.
  size_t full = 0;
  for (uint64_t rank = 0; rank < max_rank && full < 2 * racks; ++rank) {
    Key key = keyspace.KeyAtRank(rank);
    if (admit && !admit(key)) continue;
    const auto r = static_cast<size_t>(RackOfKey(key));
    auto& group = groups[r];
    if (group.size() < per_leaf) {
      group.push_back(std::move(key));
      if (group.size() == per_leaf) ++full;
      continue;
    }
    auto& standby = standby_[r];
    if (standby.size() >= per_leaf) continue;
    standby.push_back(std::move(key));
    if (standby.size() == per_leaf) ++full;
  }
  for (size_t r = 0; r < racks; ++r) {
    if (groups[r].empty()) continue;
    if (scheme_ == testbed::Scheme::kOrbitCache)
      orbit_ctrls_[r]->Preload(groups[r]);
    else
      net_ctrls_[r]->Preload(groups[r]);
  }
}

void FabricController::Start() {
  for (auto& c : orbit_ctrls_) c->Start();
  for (auto& c : net_ctrls_) c->Start();
}

size_t FabricController::TotalCacheSize() const {
  size_t total = 0;
  for (const auto& c : orbit_ctrls_) total += c->current_cache_size();
  return total;
}

bool FabricController::AnyDegraded() const {
  for (const bool d : degraded_)
    if (d) return true;
  return false;
}

size_t FabricController::degraded_leaves() const {
  size_t n = 0;
  for (const bool d : degraded_)
    if (d) ++n;
  return n;
}

void FabricController::OnLeafDown(int rack) {
  const auto down = static_cast<size_t>(rack);
  ORBIT_CHECK(down < degraded_.size());
  if (degraded_[down]) return;
  degraded_[down] = true;
  ++stats_.leaf_down_events;
  // Top up every non-degraded leaf with its own rack's standby keys.
  // Installing per key (rather than one batch) records exactly which keys
  // went in, so OnLeafUp withdraws only what this path added.
  for (size_t r = 0; r < degraded_.size(); ++r) {
    if (degraded_[r] || !installed_extras_[r].empty()) continue;
    for (const Key& key : standby_[r]) {
      const size_t installed =
          scheme_ == testbed::Scheme::kOrbitCache
              ? orbit_ctrls_[r]->InstallExtra({key})
              : net_ctrls_[r]->InstallExtra({key});
      if (installed == 1) {
        installed_extras_[r].push_back(key);
        ++stats_.extra_keys_installed;
      }
    }
  }
}

void FabricController::OnLeafUp(int rack) {
  const auto up = static_cast<size_t>(rack);
  ORBIT_CHECK(up < degraded_.size());
  if (!degraded_[up]) return;
  degraded_[up] = false;
  ++stats_.leaf_up_events;
  if (AnyDegraded()) return;  // another leaf still in bypass; keep extras
  for (size_t r = 0; r < installed_extras_.size(); ++r) {
    for (const Key& key : installed_extras_[r]) {
      const bool withdrawn = scheme_ == testbed::Scheme::kOrbitCache
                                 ? orbit_ctrls_[r]->WithdrawKey(key)
                                 : net_ctrls_[r]->WithdrawKey(key);
      if (withdrawn) ++stats_.extra_keys_withdrawn;
    }
    installed_extras_[r].clear();
  }
}

void FabricController::RebuildLeaf(int rack) {
  const auto r = static_cast<size_t>(rack);
  ORBIT_CHECK(r < degraded_.size());
  ++stats_.leaf_rebuilds;
  if (scheme_ == testbed::Scheme::kOrbitCache)
    orbit_ctrls_[r]->RebuildCache();
  else
    net_ctrls_[r]->RebuildCache();
}

void FabricController::RegisterTelemetry(telemetry::Registry& reg) {
  const std::string who = "FabricController::RegisterTelemetry";
  reg.AddCounter(
      "fabric.ctrl.leaf_down_events",
      [this] { return stats_.leaf_down_events; }, who);
  reg.AddCounter(
      "fabric.ctrl.leaf_up_events", [this] { return stats_.leaf_up_events; },
      who);
  reg.AddCounter(
      "fabric.ctrl.extra_keys_installed",
      [this] { return stats_.extra_keys_installed; }, who);
  reg.AddCounter(
      "fabric.ctrl.extra_keys_withdrawn",
      [this] { return stats_.extra_keys_withdrawn; }, who);
  reg.AddCounter(
      "fabric.ctrl.leaf_rebuilds", [this] { return stats_.leaf_rebuilds; },
      who);
  reg.AddGauge(
      "fabric.ctrl.degraded_leaves",
      [this] { return static_cast<uint64_t>(degraded_leaves()); }, who);
}

}  // namespace orbit::fabric
