#include "fabric/controller.h"

#include <algorithm>

#include "common/check.h"

namespace orbit::fabric {

FabricController::FabricController(
    sim::Simulator* sim, sim::Network* net, FabricTopology* topo,
    const kv::Partitioner* partitioner, std::vector<Addr> server_addrs,
    const std::vector<oc::OrbitProgram*>& orbit_programs,
    const std::vector<nc::NetProgram*>& net_programs,
    const FabricControllerSpec& spec)
    : topo_(topo),
      partitioner_(partitioner),
      server_addrs_(std::move(server_addrs)),
      scheme_(spec.scheme) {
  const int racks = topo_->num_racks();
  ORBIT_CHECK_MSG(static_cast<int>(server_addrs_.size()) % racks == 0,
                  "servers must split evenly across racks");
  ORBIT_CHECK(scheme_ != testbed::Scheme::kNoCache);

  for (int r = 0; r < racks; ++r) {
    const Addr addr = controller_addr(r);
    if (scheme_ == testbed::Scheme::kOrbitCache) {
      ORBIT_CHECK(orbit_programs[static_cast<size_t>(r)] != nullptr);
      auto ctrl = std::make_unique<oc::Controller>(
          sim, net, orbit_programs[static_cast<size_t>(r)], partitioner_,
          server_addrs_, addr, /*self_port=*/0, spec.oc);
      const auto at = topo_->AttachHost(ctrl.get(), addr, r, spec.ctrl_link);
      ORBIT_CHECK(at.port_a == 0);
      orbit_ctrls_.push_back(std::move(ctrl));
    } else {
      ORBIT_CHECK(net_programs[static_cast<size_t>(r)] != nullptr);
      auto ctrl = std::make_unique<nc::NetController>(
          sim, net, net_programs[static_cast<size_t>(r)], partitioner_,
          server_addrs_, addr, /*self_port=*/0, spec.nc);
      const auto at = topo_->AttachHost(ctrl.get(), addr, r, spec.ctrl_link);
      ORBIT_CHECK(at.port_a == 0);
      net_ctrls_.push_back(std::move(ctrl));
    }
  }
}

void FabricController::PreloadTopKeys(
    const wl::KeySpace& keyspace, size_t per_leaf, uint64_t max_rank,
    const std::function<bool(const Key&)>& admit) {
  const size_t racks = static_cast<size_t>(num_racks());
  std::vector<std::vector<Key>> groups(racks);
  size_t full = 0;
  for (uint64_t rank = 0; rank < max_rank && full < racks; ++rank) {
    Key key = keyspace.KeyAtRank(rank);
    if (admit && !admit(key)) continue;
    auto& group = groups[static_cast<size_t>(RackOfKey(key))];
    if (group.size() >= per_leaf) continue;
    group.push_back(std::move(key));
    if (group.size() == per_leaf) ++full;
  }
  for (size_t r = 0; r < racks; ++r) {
    if (groups[r].empty()) continue;
    if (scheme_ == testbed::Scheme::kOrbitCache)
      orbit_ctrls_[r]->Preload(groups[r]);
    else
      net_ctrls_[r]->Preload(groups[r]);
  }
}

void FabricController::Start() {
  for (auto& c : orbit_ctrls_) c->Start();
  for (auto& c : net_ctrls_) c->Start();
}

size_t FabricController::TotalCacheSize() const {
  size_t total = 0;
  for (const auto& c : orbit_ctrls_) total += c->current_cache_size();
  return total;
}

}  // namespace orbit::fabric
