// Fabric failure detection and rerouting (PR 10).
//
// The manager plays the role of every switch's local CPU plus a
// fabric-wide route controller: each probe interval it injects a kProbe
// onto every (rack, spine) uplink from the leaf side; the spine turns the
// probe around as a kProbeAck on its ingress port (rmt::SwitchDevice CPU
// path), so a completed round trip proves both directions of the link
// alive — a gray link that eats either leg starves the prober of acks.
// An uplink whose last ack is older than `detection_window` is declared
// dead; the manager then recomputes every leaf's next-hop table: traffic
// toward address A normally crosses spine A % S, and on failure slides
// cyclically to the next spine whose *both* legs (sender leaf -> spine,
// spine -> destination leaf) are alive. When no spine connects the two
// racks the route is pinned back to its preferred (dead) uplink, where the
// link discards the traffic and the drops are counted as blackholed —
// packet conservation still balances. A late ack on a dead link brings it
// back: routes are recomputed again and restored paths drain normally.
//
// Probes share link bandwidth with data, so failover is opt-in per run
// (testbed config fabric.failover) and absent from the config fingerprint
// when disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "fabric/topology.h"
#include "sim/simulator.h"

namespace orbit::telemetry {
class FlightRecorder;
class Registry;
}  // namespace orbit::telemetry

namespace orbit::fabric {

struct FailoverConfig {
  SimTime probe_interval = 100 * kMicrosecond;
  // An uplink with no ack for this long is declared dead. Must cover at
  // least one probe round trip plus queueing slack; see docs/FAULTS.md
  // for tuning guidance.
  SimTime detection_window = 500 * kMicrosecond;
};

class FailoverManager {
 public:
  FailoverManager(sim::Simulator* sim, FabricTopology* topo,
                  const FailoverConfig& config);

  // Fired for every next-hop rewrite (rack r's route for `addr` now leaves
  // via leaf port `port`) so the testbed can keep PRE clone targets in
  // sync with the L3 table. Set before Start().
  void set_route_update_hook(
      std::function<void(int rack, Addr addr, int port)> hook) {
    route_update_ = std::move(hook);
  }

  // Registers the per-leaf ack handlers and starts the probe timer.
  void Start();

  bool link_alive(int rack, int spine) const {
    return alive_[static_cast<size_t>(rack)][static_cast<size_t>(spine)];
  }

  struct Stats {
    uint64_t probes_sent = 0;
    uint64_t acks_received = 0;
    uint64_t links_declared_dead = 0;
    uint64_t links_recovered = 0;
    uint64_t reroutes = 0;  // next-hop table rewrites applied to leaves
  };
  const Stats& stats() const { return stats_; }

  // Routes currently pinned to a dead uplink because no live spine
  // connects the two racks.
  uint64_t blackholed_routes() const { return blackholed_routes_; }
  // Packets discarded at down uplinks (both directions, all uplinks) —
  // the data actually lost to blackholes, read from the link stats.
  uint64_t blackholed_packets() const;

  // Counters under "fabric.failover.*"; may be null.
  void RegisterTelemetry(telemetry::Registry* registry);
  // Every liveness transition is noted and triggers a post-mortem dump.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);

 private:
  void Tick();
  void OnAck(int rack, int port);
  void SetLinkState(int rack, int spine, bool alive);
  // Recomputes every leaf's next-hop for every remote address from the
  // current liveness matrix.
  void RecomputeRoutes();

  sim::Simulator* sim_;
  FabricTopology* topo_;
  FailoverConfig config_;
  std::vector<std::vector<bool>> alive_;        // [rack][spine]
  std::vector<std::vector<SimTime>> last_ack_;  // [rack][spine]
  std::vector<std::vector<int>> port_to_spine_; // [rack][leaf port] -> spine
  std::unique_ptr<sim::PeriodicTask> timer_;
  std::function<void(int, Addr, int)> route_update_;
  Stats stats_;
  uint64_t blackholed_routes_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;
};

}  // namespace orbit::fabric
