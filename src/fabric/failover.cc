#include "fabric/failover.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "sim/packet.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"

namespace orbit::fabric {

FailoverManager::FailoverManager(sim::Simulator* sim, FabricTopology* topo,
                                 const FailoverConfig& config)
    : sim_(sim), topo_(topo), config_(config) {
  ORBIT_CHECK(sim != nullptr && topo != nullptr);
  ORBIT_CHECK(config.probe_interval > 0);
  ORBIT_CHECK_MSG(config.detection_window >= config.probe_interval,
                  "detection window shorter than one probe interval");
  const size_t racks = static_cast<size_t>(topo_->num_racks());
  const size_t spines = static_cast<size_t>(topo_->num_spines());
  alive_.assign(racks, std::vector<bool>(spines, true));
  last_ack_.assign(racks, std::vector<SimTime>(spines, 0));
  port_to_spine_.assign(racks, {});
  for (size_t r = 0; r < racks; ++r) {
    for (size_t s = 0; s < spines; ++s) {
      const int port =
          topo_->leaf_uplink_port(static_cast<int>(r), static_cast<int>(s));
      if (static_cast<size_t>(port) >= port_to_spine_[r].size())
        port_to_spine_[r].resize(static_cast<size_t>(port) + 1, -1);
      port_to_spine_[r][static_cast<size_t>(port)] = static_cast<int>(s);
    }
  }
}

void FailoverManager::Start() {
  for (int r = 0; r < topo_->num_racks(); ++r) {
    topo_->leaf(r).set_probe_ack_handler(
        [this, r](int port) { OnAck(r, port); });
  }
  timer_ = std::make_unique<sim::PeriodicTask>(sim_, config_.probe_interval,
                                               [this] { Tick(); });
  timer_->Start();
}

void FailoverManager::Tick() {
  const SimTime now = sim_->now();
  bool changed = false;
  for (int r = 0; r < topo_->num_racks(); ++r) {
    for (int s = 0; s < topo_->num_spines(); ++s) {
      // Detection first: a link that went quiet is declared dead before
      // this round's probe could possibly refresh it.
      if (alive_[static_cast<size_t>(r)][static_cast<size_t>(s)] &&
          now - last_ack_[static_cast<size_t>(r)][static_cast<size_t>(s)] >
              config_.detection_window) {
        SetLinkState(r, s, false);
        changed = true;
      }
      sim::PacketPtr probe =
          sim::NewPacket(kInvalidAddr, kInvalidAddr, /*sport=*/0, /*dport=*/0);
      probe->msg.op = proto::Op::kProbe;
      ++stats_.probes_sent;
      // From the leaf side: endpoint a of every uplink is the leaf
      // (FabricTopology's build order), so direction 0 is leaf -> spine.
      topo_->uplink(r, s)->Send(/*from=*/0, std::move(probe));
    }
  }
  if (changed) RecomputeRoutes();
}

void FailoverManager::OnAck(int rack, int port) {
  const auto& map = port_to_spine_[static_cast<size_t>(rack)];
  if (static_cast<size_t>(port) >= map.size()) return;
  const int spine = map[static_cast<size_t>(port)];
  if (spine < 0) return;
  ++stats_.acks_received;
  last_ack_[static_cast<size_t>(rack)][static_cast<size_t>(spine)] =
      sim_->now();
  if (!alive_[static_cast<size_t>(rack)][static_cast<size_t>(spine)]) {
    SetLinkState(rack, spine, true);
    RecomputeRoutes();
  }
}

void FailoverManager::SetLinkState(int rack, int spine, bool alive) {
  alive_[static_cast<size_t>(rack)][static_cast<size_t>(spine)] = alive;
  if (alive)
    ++stats_.links_recovered;
  else
    ++stats_.links_declared_dead;
  if (flight_ != nullptr) {
    flight_->Note(flight_comp_, sim_->now(),
                  alive ? "uplink_recovered" : "uplink_dead",
                  static_cast<uint64_t>(rack), static_cast<uint64_t>(spine));
    flight_->TriggerDump(
        sim_->now(), std::string("failover: rack ") + std::to_string(rack) +
                         " spine " + std::to_string(spine) +
                         (alive ? " recovered" : " dead"));
  }
}

void FailoverManager::RecomputeRoutes() {
  const int spines = topo_->num_spines();
  uint64_t blackholed = 0;
  topo_->ForEachHost([&](Addr addr, int home) {
    const int preferred = topo_->SpineFor(addr);
    for (int r = 0; r < topo_->num_racks(); ++r) {
      if (r == home) continue;  // access-port route, never rerouted
      // First spine (cyclically from the static choice) with both legs
      // alive; with everything up this is exactly the static route.
      int chosen = -1;
      for (int i = 0; i < spines; ++i) {
        const int s = (preferred + i) % spines;
        if (link_alive(r, s) && link_alive(home, s)) {
          chosen = s;
          break;
        }
      }
      if (chosen < 0) {
        // No path: pin the route back to its preferred uplink so the loss
        // is visible as link-down drops (blackholed_packets), not a
        // routing-table inconsistency.
        chosen = preferred;
        ++blackholed;
      }
      const int port = topo_->leaf_uplink_port(r, chosen);
      if (topo_->leaf(r).RouteOf(addr) != port) {
        topo_->leaf(r).AddRoute(addr, port);
        ++stats_.reroutes;
        if (route_update_) route_update_(r, addr, port);
      }
    }
  });
  blackholed_routes_ = blackholed;
}

uint64_t FailoverManager::blackholed_packets() const {
  uint64_t total = 0;
  for (int r = 0; r < topo_->num_racks(); ++r) {
    for (int s = 0; s < topo_->num_spines(); ++s) {
      const sim::Link* link = topo_->uplink(r, s);
      total += link->stats(0).down_drops + link->stats(1).down_drops;
    }
  }
  return total;
}

void FailoverManager::RegisterTelemetry(telemetry::Registry* registry) {
  if (registry == nullptr) return;
  const std::string who = "FailoverManager::RegisterTelemetry";
  registry->AddCounter("fabric.failover.probes_sent",
                       [this] { return stats_.probes_sent; }, who);
  registry->AddCounter("fabric.failover.acks_received",
                       [this] { return stats_.acks_received; }, who);
  registry->AddCounter("fabric.failover.links_declared_dead",
                       [this] { return stats_.links_declared_dead; }, who);
  registry->AddCounter("fabric.failover.links_recovered",
                       [this] { return stats_.links_recovered; }, who);
  registry->AddCounter("fabric.failover.reroutes",
                       [this] { return stats_.reroutes; }, who);
  registry->AddCounter("fabric.failover.blackholed_packets",
                       [this] { return blackholed_packets(); }, who);
  registry->AddGauge("fabric.failover.blackholed_routes",
                     [this] { return blackholed_routes_; }, who);
}

void FailoverManager::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) flight_comp_ = flight_->Component("failover");
}

}  // namespace orbit::fabric
