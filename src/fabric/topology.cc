#include "fabric/topology.h"

#include <algorithm>

#include "common/check.h"

namespace orbit::fabric {

FabricTopology::FabricTopology(sim::Simulator* sim, sim::Network* net,
                               const TopologySpec& spec)
    : sim_(sim), net_(net), spec_(spec) {
  ORBIT_CHECK_MSG(spec.num_racks >= 1, "fabric needs at least one rack");
  ORBIT_CHECK_MSG(spec.num_spines >= 1, "fabric needs at least one spine");

  leaves_.reserve(static_cast<size_t>(spec.num_racks));
  for (int r = 0; r < spec.num_racks; ++r)
    leaves_.push_back(std::make_unique<rmt::SwitchDevice>(
        sim_, net_, "leaf" + std::to_string(r), spec.asic));
  spines_.reserve(static_cast<size_t>(spec.num_spines));
  for (int s = 0; s < spec.num_spines; ++s)
    spines_.push_back(std::make_unique<rmt::SwitchDevice>(
        sim_, net_, "spine" + std::to_string(s), spec.asic));

  // Uplink mesh in (rack, spine) order — link creation order is part of
  // the deterministic build (it fixes per-link loss-seed mixing and the
  // telemetry link indices).
  leaf_uplink_port_.assign(static_cast<size_t>(spec.num_racks),
                           std::vector<int>(static_cast<size_t>(spec.num_spines), -1));
  spine_down_port_.assign(static_cast<size_t>(spec.num_spines),
                          std::vector<int>(static_cast<size_t>(spec.num_racks), -1));
  uplinks_.assign(static_cast<size_t>(spec.num_racks),
                  std::vector<sim::Link*>(static_cast<size_t>(spec.num_spines),
                                          nullptr));
  for (int r = 0; r < spec.num_racks; ++r) {
    for (int s = 0; s < spec.num_spines; ++s) {
      const auto at = net_->Connect(leaves_[static_cast<size_t>(r)].get(),
                                    spines_[static_cast<size_t>(s)].get(),
                                    spec.uplink);
      leaf_uplink_port_[static_cast<size_t>(r)][static_cast<size_t>(s)] =
          at.port_a;
      spine_down_port_[static_cast<size_t>(s)][static_cast<size_t>(r)] =
          at.port_b;
      uplinks_[static_cast<size_t>(r)][static_cast<size_t>(s)] = at.link;
    }
  }
}

void FabricTopology::ForEachHost(
    const std::function<void(Addr, int rack)>& fn) const {
  std::vector<Addr> addrs;
  addrs.reserve(hosts_.size());
  for (const auto& [addr, entry] : hosts_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  for (Addr addr : addrs) fn(addr, hosts_.at(addr).rack);
}

sim::Network::Attachment FabricTopology::AttachHost(
    sim::Node* host, Addr addr, int rack, const sim::LinkConfig& link) {
  ORBIT_CHECK_MSG(rack >= 0 && rack < spec_.num_racks,
                  "AttachHost: rack " << rack << " out of range");
  ORBIT_CHECK_MSG(hosts_.count(addr) == 0,
                  "AttachHost: addr " << addr << " already attached");
  const auto at =
      net_->Connect(host, leaves_[static_cast<size_t>(rack)].get(), link);

  // Owning leaf: direct. Spines: toward the owning leaf. Other leaves:
  // into the uplink toward this address's spine.
  leaf(rack).AddRoute(addr, at.port_b);
  const int sp = SpineFor(addr);
  for (int s = 0; s < spec_.num_spines; ++s)
    spine(s).AddRoute(addr,
                      spine_down_port_[static_cast<size_t>(s)][static_cast<size_t>(rack)]);
  for (int r = 0; r < spec_.num_racks; ++r) {
    if (r == rack) continue;
    leaf(r).AddRoute(
        addr, leaf_uplink_port_[static_cast<size_t>(r)][static_cast<size_t>(sp)]);
  }

  hosts_[addr] = HostEntry{rack, at.port_b};
  return at;
}

int FabricTopology::LeafPortFor(int rack, Addr addr) const {
  const auto it = hosts_.find(addr);
  ORBIT_CHECK_MSG(it != hosts_.end(),
                  "LeafPortFor: addr " << addr << " not attached");
  if (it->second.rack == rack) return it->second.leaf_port;
  return leaf_uplink_port_[static_cast<size_t>(rack)]
                          [static_cast<size_t>(SpineFor(addr))];
}

int FabricTopology::RackOf(Addr addr) const {
  const auto it = hosts_.find(addr);
  return it == hosts_.end() ? -1 : it->second.rack;
}

}  // namespace orbit::fabric
