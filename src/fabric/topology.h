// Declarative leaf–spine topology (paper §3.9 multi-rack deployment,
// TurboKV-style fabric partitioning).
//
// N racks, each fronted by one leaf (ToR) switch; S spines interconnect
// the leaves with a full bipartite mesh of uplinks. Exactly one switch on
// any path — the destination's leaf — applies cache logic; spines run
// plain forwarding with deterministic static routing: traffic toward
// address A always crosses spine A % S, so a given (source rack,
// destination) pair uses one fixed path and results are reproducible
// regardless of execution order.
//
// The builder owns the switch devices and the route state. Hosts attach
// through AttachHost(), which wires the access link and installs the
// address on every switch: the owning leaf routes it to the access port,
// every spine routes it to the owning leaf's downlink, and every other
// leaf routes it into the uplink toward the address's spine.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rmt/switch.h"
#include "sim/network.h"

namespace orbit::fabric {

struct TopologySpec {
  int num_racks = 2;
  int num_spines = 1;
  rmt::AsicConfig asic;        // every leaf and spine uses the same ASIC
  sim::LinkConfig uplink;      // each leaf<->spine link
};

class FabricTopology {
 public:
  FabricTopology(sim::Simulator* sim, sim::Network* net,
                 const TopologySpec& spec);

  int num_racks() const { return spec_.num_racks; }
  int num_spines() const { return spec_.num_spines; }
  rmt::SwitchDevice& leaf(int r) { return *leaves_[static_cast<size_t>(r)]; }
  rmt::SwitchDevice& spine(int s) { return *spines_[static_cast<size_t>(s)]; }

  // Deterministic static route choice: all traffic toward `addr` crosses
  // this spine.
  int SpineFor(Addr addr) const {
    return static_cast<int>(addr % static_cast<Addr>(spec_.num_spines));
  }

  // Connects `host` to rack `rack`'s leaf and installs `addr`'s routes on
  // every leaf and spine. Returns the access-link attachment (port_a is the
  // host side, port_b the leaf side).
  sim::Network::Attachment AttachHost(sim::Node* host, Addr addr, int rack,
                                      const sim::LinkConfig& link);

  // Egress port on leaf `rack` toward `addr`: the access port when the
  // address lives in this rack, else the uplink toward SpineFor(addr).
  // Used to register PRE clone targets per leaf. `addr` must be attached.
  int LeafPortFor(int rack, Addr addr) const;

  // Rack the address was attached to (-1 if unknown).
  int RackOf(Addr addr) const;

  // The (rack, spine) uplink and its port numbers — fault injection brings
  // links down, the failover manager probes them and rewires next-hops.
  sim::Link* uplink(int rack, int spine) const {
    return uplinks_[static_cast<size_t>(rack)][static_cast<size_t>(spine)];
  }
  int leaf_uplink_port(int rack, int spine) const {
    return leaf_uplink_port_[static_cast<size_t>(rack)]
                            [static_cast<size_t>(spine)];
  }

  // Visits every attached host as (addr, owning rack), in address order —
  // deterministic, so route recomputation is reproducible.
  void ForEachHost(const std::function<void(Addr, int rack)>& fn) const;

 private:
  struct HostEntry {
    int rack = -1;
    int leaf_port = -1;  // access port on the owning leaf
  };

  sim::Simulator* sim_;
  sim::Network* net_;
  TopologySpec spec_;
  std::vector<std::unique_ptr<rmt::SwitchDevice>> leaves_;
  std::vector<std::unique_ptr<rmt::SwitchDevice>> spines_;
  std::vector<std::vector<int>> leaf_uplink_port_;  // [rack][spine] on leaf
  std::vector<std::vector<int>> spine_down_port_;   // [spine][rack] on spine
  std::vector<std::vector<sim::Link*>> uplinks_;    // [rack][spine]
  std::unordered_map<Addr, HostEntry> hosts_;
};

}  // namespace orbit::fabric
