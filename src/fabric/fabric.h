// Leaf–spine testbed assembly: the fabric counterpart of RunTestbed().
//
// RunTestbed() dispatches here when config.topo.fabric is enabled. The run
// keeps the single-switch contract — same workload source, same metrics,
// same determinism guarantees (telemetry results-neutral, serial ==
// parallel) — but builds N racks of servers behind per-leaf cache programs
// with round-robin clients and a per-rack control plane (see
// fabric/topology.h and fabric/controller.h). Cache/program counters in
// the result are fabric-wide sums over the leaves; RMT resource usage is
// reported for one leaf (all leaves run the identical program).
#pragma once

#include "testbed/testbed.h"

namespace orbit::fabric {

testbed::TestbedResult RunFabricTestbed(const testbed::TestbedConfig& config);

}  // namespace orbit::fabric
