#include "fabric/fabric.h"

#include <algorithm>
#include <memory>

#include "apps/client.h"
#include "apps/server.h"
#include "common/check.h"
#include "fabric/controller.h"
#include "fabric/failover.h"
#include "fabric/topology.h"
#include "fault/fault.h"
#include "kv/partition.h"
#include "netcache/program.h"
#include "nocache/program.h"
#include "orbitcache/program.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "stats/meters.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "telemetry/netstats.h"
#include "telemetry/trace.h"
#include "testbed/constants.h"
#include "testbed/workload_source.h"
#include "verify/verify.h"
#include "workload/dynamic.h"

namespace orbit::fabric {

using testbed::TestbedConfig;
using testbed::TestbedResult;

TestbedResult RunFabricTestbed(const TestbedConfig& config) {
  const TestbedConfig::Topology::Fabric& fb = config.topo.fabric;
  ORBIT_CHECK(fb.enabled());
  const int racks = fb.num_racks;
  const int per_rack = config.topo.num_servers / racks;

  // The verifier is declared before the simulator on purpose: teardown of
  // the event queue and pool releases packets, and the pool's observer
  // pointer must stay valid through that (the calls are no-ops once
  // Finalize() disarms accounting — including on exception unwind).
  std::unique_ptr<verify::Verifier> verifier;
  if (config.verify.enabled) {
    verify::VerifyOptions vopt;
    vopt.epoch_guard = config.scheme != testbed::Scheme::kOrbitCache ||
                       config.cache.epoch_guard;
    vopt.write_back = config.scheme == testbed::Scheme::kOrbitCache &&
                      config.cache.write_back;
    verifier = std::make_unique<verify::Verifier>(vopt);
  }

  sim::Simulator sim;
  sim::Network net(&sim);
  if (verifier != nullptr) {
    sim.packet_pool().set_observer(verifier.get());
    verifier->ArmPacketAccounting();
  }

  // ---- switches (leaves + spines + uplink mesh) ---------------------------
  TopologySpec tspec;
  tspec.num_racks = racks;
  tspec.num_spines = fb.num_spines;
  tspec.asic = config.topo.asic;
  tspec.uplink.rate_gbps = fb.uplink_gbps;
  tspec.uplink.propagation = fb.uplink_delay;
  // Scheduled burst loss rides on every uplink; the topology's Connect
  // calls decorrelate the per-link RNG seeds.
  tspec.uplink.burst_loss = config.fault.fabric_burst_loss;
  tspec.uplink.loss_seed = config.seed;
  FabricTopology topo(&sim, &net, tspec);

  auto size_fn = testbed::MakeValueSizeFn(config);
  std::shared_ptr<wl::DynamicPopularity> dynamic;
  if (config.workload.hot_in) {
    dynamic = std::make_shared<wl::DynamicPopularity>(
        config.workload.num_keys, config.workload.hot_in_count);
  }
  auto workload =
      std::make_shared<testbed::ZipfWorkloadSource>(config, size_fn, dynamic);

  // ---- per-leaf programs --------------------------------------------------
  std::vector<std::unique_ptr<oc::OrbitProgram>> orbits;
  std::vector<std::unique_ptr<nc::NetProgram>> netps;
  std::vector<std::unique_ptr<nocache::ForwardProgram>> fwds;
  std::vector<oc::OrbitProgram*> orbit_ptrs(static_cast<size_t>(racks),
                                            nullptr);
  std::vector<nc::NetProgram*> net_ptrs(static_cast<size_t>(racks), nullptr);
  for (int r = 0; r < racks; ++r) {
    switch (config.scheme) {
      case testbed::Scheme::kOrbitCache: {
        oc::OrbitConfig oc_cfg;
        oc_cfg.capacity = config.cache.orbit_capacity;
        oc_cfg.queue_size = config.cache.orbit_queue_size;
        oc_cfg.orbit_port = testbed::kOrbitPort;
        oc_cfg.epoch_guard = config.cache.epoch_guard;
        oc_cfg.enable_cloning = config.cache.enable_cloning;
        oc_cfg.write_back = config.cache.write_back;
        oc_cfg.multi_packet = config.cache.multi_packet;
        orbits.push_back(
            std::make_unique<oc::OrbitProgram>(&topo.leaf(r), oc_cfg));
        orbit_ptrs[static_cast<size_t>(r)] = orbits.back().get();
        topo.leaf(r).SetProgram(orbits.back().get());
        break;
      }
      case testbed::Scheme::kNetCache: {
        nc::NetConfig nc_cfg;
        nc_cfg.capacity = config.cache.netcache_size;
        nc_cfg.orbit_port = testbed::kOrbitPort;
        nc_cfg.recirc_read_mode = config.cache.netcache_recirc_read;
        if (!config.control.run_cache_updates)
          nc_cfg.hot_threshold = UINT64_MAX;  // static cache: never report
        netps.push_back(
            std::make_unique<nc::NetProgram>(&topo.leaf(r), nc_cfg));
        net_ptrs[static_cast<size_t>(r)] = netps.back().get();
        topo.leaf(r).SetProgram(netps.back().get());
        break;
      }
      case testbed::Scheme::kNoCache:
        fwds.push_back(std::make_unique<nocache::ForwardProgram>());
        topo.leaf(r).SetProgram(fwds.back().get());
        break;
    }
  }
  // Spines always run plain forwarding: exactly one switch on any path —
  // the destination's leaf — applies cache logic.
  std::vector<std::unique_ptr<nocache::ForwardProgram>> spine_fwds;
  for (int s = 0; s < fb.num_spines; ++s) {
    spine_fwds.push_back(std::make_unique<nocache::ForwardProgram>());
    topo.spine(s).SetProgram(spine_fwds.back().get());
  }

  // Registers `addr` as a PRE clone target on every leaf, toward the local
  // access port or the uplink carrying traffic to it.
  auto register_clone_target = [&](Addr addr) {
    for (int r = 0; r < racks; ++r) {
      if (orbit_ptrs[static_cast<size_t>(r)] != nullptr)
        orbit_ptrs[static_cast<size_t>(r)]->RegisterCloneTarget(
            addr, topo.LeafPortFor(r, addr));
    }
  };

  // ---- servers (global index order; rack r owns a contiguous block) -------
  const bool servers_report =
      config.scheme == testbed::Scheme::kOrbitCache &&
      config.control.run_cache_updates;
  std::vector<std::unique_ptr<app::ServerNode>> servers;
  std::vector<Addr> server_addrs;
  std::vector<sim::Link*> server_links;  // fault-injection handles
  servers.reserve(static_cast<size_t>(config.topo.num_servers));
  server_links.reserve(static_cast<size_t>(config.topo.num_servers));
  for (int i = 0; i < config.topo.num_servers; ++i) {
    const int rack = i / per_rack;
    app::ServerConfig scfg;
    scfg.addr = testbed::kServerBase + static_cast<Addr>(i);
    scfg.srv_id = static_cast<uint8_t>(i);
    scfg.orbit_port = testbed::kOrbitPort;
    scfg.service_rate_rps = config.topo.server_rate_rps;
    scfg.multi_packet = config.cache.multi_packet;
    scfg.controller_addr = servers_report
                               ? testbed::kControllerBase + static_cast<Addr>(rack)
                               : kInvalidAddr;
    scfg.ctrl_port = testbed::kCtrlPort;
    scfg.report_period = config.control.report_period;
    server_addrs.push_back(scfg.addr);
    sim::LinkConfig lc;
    lc.rate_gbps = config.topo.server_link_gbps;
    lc.propagation = config.topo.link_delay;
    lc.burst_loss = config.fault.server_burst_loss;
    lc.loss_seed = config.seed;
    auto node = std::make_unique<app::ServerNode>(&sim, &net, /*port=*/0,
                                                  scfg, size_fn);
    const auto at = topo.AttachHost(node.get(), scfg.addr, rack, lc);
    ORBIT_CHECK(at.port_a == 0);
    server_links.push_back(at.link);
    servers.push_back(std::move(node));
    register_clone_target(scfg.addr);
  }

  // ---- clients (round-robin across racks: most traffic crosses the spine)
  std::vector<std::unique_ptr<app::ClientNode>> clients;
  clients.reserve(static_cast<size_t>(config.topo.num_clients));
  for (int i = 0; i < config.topo.num_clients; ++i) {
    app::ClientConfig ccfg;
    ccfg.addr = testbed::kClientBase + static_cast<Addr>(i);
    ccfg.orbit_port = testbed::kOrbitPort;
    ccfg.src_port = static_cast<L4Port>(9000 + i);
    ccfg.rate_rps = config.topo.client_rate_rps / config.topo.num_clients;
    ccfg.request_timeout = config.client.request_timeout;
    ccfg.max_retries = config.client.max_retries;
    ccfg.seed = config.seed * 7919 + static_cast<uint64_t>(i);
    auto node = std::make_unique<app::ClientNode>(&sim, &net, /*port=*/0,
                                                  ccfg, workload);
    sim::LinkConfig lc;
    lc.rate_gbps = config.topo.client_link_gbps;
    lc.propagation = config.topo.link_delay;
    const auto at = topo.AttachHost(node.get(), ccfg.addr, i % racks, lc);
    ORBIT_CHECK(at.port_a == 0);
    register_clone_target(ccfg.addr);
    clients.push_back(std::move(node));
  }

  if (verifier != nullptr) {
    for (auto& p : orbits) p->SetVerifier(verifier.get());
    for (auto& s : servers) s->SetVerifier(verifier.get());
    for (auto& c : clients) c->SetVerifier(verifier.get());
  }

  // ---- control plane (one rack-scoped controller per leaf) ---------------
  kv::Partitioner partitioner(static_cast<uint32_t>(config.topo.num_servers),
                              config.seed);
  std::unique_ptr<FabricController> fab_ctrl;
  if (config.scheme != testbed::Scheme::kNoCache) {
    FabricControllerSpec cspec;
    cspec.scheme = config.scheme;
    cspec.ctrl_link.rate_gbps = 10.0;
    cspec.ctrl_link.propagation = config.topo.link_delay;
    cspec.oc.cache_size = config.cache.orbit_cache_size;
    cspec.oc.max_cache_size = config.cache.orbit_capacity;
    cspec.oc.min_cache_size =
        std::min<size_t>(32, config.cache.orbit_cache_size);
    cspec.oc.dynamic_sizing = config.cache.dynamic_sizing;
    cspec.oc.update_period = config.control.update_period;
    cspec.oc.orbit_port = testbed::kOrbitPort;
    cspec.oc.ctrl_port = testbed::kCtrlPort;
    cspec.nc.cache_size = config.cache.netcache_size;
    cspec.nc.update_period = config.control.update_period;
    cspec.nc.orbit_port = testbed::kOrbitPort;
    fab_ctrl = std::make_unique<FabricController>(
        &sim, &net, &topo, &partitioner, server_addrs, orbit_ptrs, net_ptrs,
        cspec);
    for (int r = 0; r < racks; ++r) {
      register_clone_target(fab_ctrl->controller_addr(r));
      if (orbit_ptrs[static_cast<size_t>(r)] != nullptr) {
        orbit_ptrs[static_cast<size_t>(r)]->SetRefetchFn(
            [ctrl = fab_ctrl->orbit(r)](const Key& key, const Hash128& hkey,
                                        Addr server) {
              ctrl->RequestRefetch(key, hkey, server);
            });
      }
    }
  }

  // ---- failure detection & rerouting --------------------------------------
  // Opt-in (probes share uplink bandwidth with data): per-uplink liveness
  // probing from the leaf side, ECMP-style next-hop recomputation around
  // dead links, blackhole accounting when no path survives.
  std::unique_ptr<FailoverManager> failover;
  if (fb.failover) {
    FailoverConfig focfg;
    focfg.probe_interval = fb.probe_interval;
    focfg.detection_window = fb.detection_window;
    failover = std::make_unique<FailoverManager>(&sim, &topo, focfg);
    // Keep PRE clone targets in lockstep with the L3 table: a rerouted
    // address's cache packets must fork toward the new uplink.
    failover->set_route_update_hook(
        [&orbit_ptrs](int rack, Addr addr, int port) {
          auto* op = orbit_ptrs[static_cast<size_t>(rack)];
          if (op != nullptr) op->UpdateCloneTarget(addr, port);
        });
  }

  // ---- fault injection ----------------------------------------------------
  // Fabric hooks: uplink down/degrade flips the Link, a spine crash downs
  // all its uplinks at once, a rack partition downs all the rack's
  // uplinks, and a leaf crash wipes that leaf's data plane and degrades it
  // to transparent pass-through while the fabric controller tops up the
  // survivors (graceful degradation).
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.fault.events.empty()) {
    fault::FaultHooks hooks;
    hooks.set_server_link_down = [&server_links,
                                  n = config.topo.num_servers](int s,
                                                               bool down) {
      ORBIT_CHECK_MSG(s >= 0 && s < n, "fault targets unknown server " << s);
      server_links[static_cast<size_t>(s)]->set_down(down);
    };
    hooks.set_fabric_link_down = [&topo](int r, int s, bool down) {
      topo.uplink(r, s)->set_down(down);
    };
    hooks.set_fabric_link_degrade = [&topo](int r, int s, int dir,
                                            double loss, SimTime lat) {
      topo.uplink(r, s)->SetDegrade(dir, loss, lat);
    };
    hooks.set_spine_down = [&topo, racks](int s, bool down) {
      for (int r = 0; r < racks; ++r) topo.uplink(r, s)->set_down(down);
    };
    hooks.set_rack_partition = [&topo, spines = fb.num_spines](
                                   int r, bool partitioned) {
      for (int s = 0; s < spines; ++s)
        topo.uplink(r, s)->set_down(partitioned);
    };
    // Leaf crash: wipe the data plane *before* entering bypass so the
    // device's recirculation barrier retires every orbiting cache packet,
    // then pass everything through (NoCache forwarding). The fabric
    // controller invalidates the rack's preload set and redistributes.
    hooks.set_leaf_down = [&orbit_ptrs, &net_ptrs, &fab_ctrl](int r,
                                                              bool down) {
      auto* op = orbit_ptrs[static_cast<size_t>(r)];
      auto* np = net_ptrs[static_cast<size_t>(r)];
      if (down) {
        if (op != nullptr) {
          op->ResetDataPlane();
          op->set_bypass(true);
        }
        if (np != nullptr) {
          np->ResetDataPlane();
          np->set_bypass(true);
        }
        if (fab_ctrl != nullptr) fab_ctrl->OnLeafDown(r);
      } else {
        if (op != nullptr) op->set_bypass(false);
        if (np != nullptr) np->set_bypass(false);
        if (fab_ctrl != nullptr) fab_ctrl->OnLeafUp(r);
      }
    };
    hooks.rebuild_leaf = [&fab_ctrl](int r) {
      if (fab_ctrl != nullptr) fab_ctrl->RebuildLeaf(r);
    };
    // Whole-fabric switch reset (the single-switch kind): every leaf's
    // data plane is wiped, every rack's controller rebuilds after the
    // configured delay.
    hooks.reset_switch = [&orbit_ptrs, &net_ptrs] {
      for (auto* op : orbit_ptrs)
        if (op != nullptr) op->ResetDataPlane();
      for (auto* np : net_ptrs)
        if (np != nullptr) np->ResetDataPlane();
    };
    if (fab_ctrl != nullptr) {
      hooks.rebuild_cache = [&fab_ctrl, racks] {
        for (int r = 0; r < racks; ++r) fab_ctrl->RebuildLeaf(r);
      };
    }
    injector = std::make_unique<fault::FaultInjector>(&sim, config.fault,
                                                      std::move(hooks));
  }

  // ---- telemetry ----------------------------------------------------------
  // Mirrors the single-switch block; switch-scope counters get per-leaf /
  // per-spine prefixes, and trace tracks are named after the devices, so a
  // sampled request's packet-borne trace id stitches its leaf→spine→leaf
  // hops into one causal timeline.
  std::unique_ptr<telemetry::Tracer> tracer;
  std::unique_ptr<telemetry::Registry> registry;
  std::unique_ptr<telemetry::IntSink> int_sink;
  std::unique_ptr<telemetry::FlightRecorder> flight;
  std::unique_ptr<ScopedCheckFailureHook> check_hook;
  const bool capture_on = config.telemetry.capture != nullptr;
  if (capture_on) {
    if (config.telemetry.int_sample > 0 || config.telemetry.histograms) {
      telemetry::IntSink::Options iopt;
      iopt.sample_every = config.telemetry.int_sample;
      iopt.histograms = config.telemetry.histograms;
      int_sink = std::make_unique<telemetry::IntSink>(iopt);
      telemetry::AttachLinkInt(*int_sink, net);
      for (int r = 0; r < racks; ++r) topo.leaf(r).SetIntSink(int_sink.get());
      for (int s = 0; s < fb.num_spines; ++s)
        topo.spine(s).SetIntSink(int_sink.get());
      for (auto& srv : servers) srv->SetIntSink(int_sink.get());
      for (auto& c : clients) c->SetIntSink(int_sink.get());
    }
    if (config.telemetry.flight_recorder || config.telemetry.flight_end_dump) {
      flight = std::make_unique<telemetry::FlightRecorder>();
      for (int r = 0; r < racks; ++r)
        topo.leaf(r).SetFlightRecorder(flight.get());
      for (int s = 0; s < fb.num_spines; ++s)
        topo.spine(s).SetFlightRecorder(flight.get());
      for (auto& srv : servers) srv->SetFlightRecorder(flight.get());
      for (auto& c : clients) c->SetFlightRecorder(flight.get());
      if (injector != nullptr) injector->SetFlightRecorder(flight.get());
      if (failover != nullptr) failover->SetFlightRecorder(flight.get());
      check_hook = std::make_unique<ScopedCheckFailureHook>(
          [&flight, &sim, cap = config.telemetry.capture](
              const std::string& what) {
            flight->TriggerDump(sim.now(), "check failure: " + what);
            cap->flight_dump = flight->DumpText();
          });
    }
    if (config.telemetry.trace_sample > 0) {
      tracer =
          std::make_unique<telemetry::Tracer>(config.telemetry.trace_sample);
      for (int r = 0; r < racks; ++r) topo.leaf(r).SetTracer(tracer.get());
      for (int s = 0; s < fb.num_spines; ++s)
        topo.spine(s).SetTracer(tracer.get());
      for (auto& srv : servers) srv->SetTracer(tracer.get());
      for (auto& c : clients) c->SetTracer(tracer.get());
    }
    registry = std::make_unique<telemetry::Registry>();
    for (int r = 0; r < racks; ++r) {
      const std::string prefix = "leaf" + std::to_string(r) + ".";
      topo.leaf(r).RegisterTelemetry(*registry, prefix);
      if (orbit_ptrs[static_cast<size_t>(r)] != nullptr)
        orbit_ptrs[static_cast<size_t>(r)]->RegisterTelemetry(*registry,
                                                              prefix);
      if (net_ptrs[static_cast<size_t>(r)] != nullptr)
        net_ptrs[static_cast<size_t>(r)]->RegisterTelemetry(*registry, prefix);
    }
    for (int s = 0; s < fb.num_spines; ++s)
      topo.spine(s).RegisterTelemetry(*registry,
                                      "spine" + std::to_string(s) + ".");
    for (size_t i = 0; i < servers.size(); ++i)
      servers[i]->RegisterTelemetry(*registry,
                                    "server." + std::to_string(i));
    for (size_t i = 0; i < clients.size(); ++i)
      clients[i]->RegisterTelemetry(*registry,
                                    "client." + std::to_string(i));
    telemetry::RegisterLinkDropCounters(*registry, net);
    uint64_t* drop_ovf =
        registry->OwnCounter("net.drop.queue_overflow", "RunFabricTestbed");
    uint64_t* drop_loss =
        registry->OwnCounter("net.drop.loss", "RunFabricTestbed");
    uint64_t* drop_down =
        registry->OwnCounter("net.drop.link_down", "RunFabricTestbed");
    net.SetDropTap([drop_ovf, drop_loss, drop_down](
                       const sim::Packet&, sim::Node*, sim::Node*,
                       sim::DropReason reason, SimTime) {
      switch (reason) {
        case sim::DropReason::kQueueOverflow: ++*drop_ovf; break;
        case sim::DropReason::kInjectedLoss: ++*drop_loss; break;
        case sim::DropReason::kLinkDown: ++*drop_down; break;
      }
    });
    if (injector != nullptr)
      injector->RegisterTelemetry(registry.get(), tracer.get());
    if (failover != nullptr) failover->RegisterTelemetry(registry.get());
    if (fab_ctrl != nullptr) fab_ctrl->RegisterTelemetry(*registry);
  }

  // ---- preload ------------------------------------------------------------
  // Per-leaf budgets: every leaf holds its rack's hottest items, so the
  // fabric-wide cache is the union of per-rack hot sets.
  if (config.cache.preload && fab_ctrl != nullptr) {
    if (config.scheme == testbed::Scheme::kOrbitCache) {
      const size_t per_leaf = config.cache.orbit_cache_size;
      const uint64_t scan = std::min<uint64_t>(
          config.workload.num_keys,
          static_cast<uint64_t>(per_leaf) * static_cast<uint64_t>(racks) * 16);
      fab_ctrl->PreloadTopKeys(workload->keyspace(), per_leaf, scan, nullptr);
    } else {
      const size_t per_leaf = config.cache.netcache_size;
      const uint64_t scan = std::min<uint64_t>(
          config.workload.num_keys,
          static_cast<uint64_t>(per_leaf) * static_cast<uint64_t>(racks) * 16);
      fab_ctrl->PreloadTopKeys(
          workload->keyspace(), per_leaf, scan,
          [&config](const Key& key) {
            return testbed::NetCacheCanCache(config, key);
          });
    }
  }

  // ---- timers & measurement ----------------------------------------------
  for (auto& s : servers) s->Start();
  for (auto& c : clients) c->Start();
  if (fab_ctrl != nullptr) fab_ctrl->Start();
  if (failover != nullptr) failover->Start();
  if (injector != nullptr) injector->Arm();

  std::unique_ptr<sim::PeriodicTask> overflow_sampler;
  std::unique_ptr<sim::PeriodicTask> telemetry_snapper;
  std::unique_ptr<sim::PeriodicTask> hot_in_swapper;

  stats::TimeSeries throughput_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  stats::TimeSeries overflow_hits_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  stats::TimeSeries overflow_ovf_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  const auto sum_orbit_stats = [&orbits] {
    oc::OrbitProgram::Stats sum;
    for (const auto& p : orbits) {
      const auto& s = p->stats();
      sum.read_hits += s.read_hits;
      sum.absorbed += s.absorbed;
      sum.overflow_to_server += s.overflow_to_server;
      sum.invalid_to_server += s.invalid_to_server;
      sum.served_by_cache += s.served_by_cache;
      sum.wb_returned_replies += s.wb_returned_replies;
      sum.cp_drop_evicted += s.cp_drop_evicted;
      sum.cp_drop_invalid += s.cp_drop_invalid;
      sum.cp_drop_epoch += s.cp_drop_epoch;
      sum.validations += s.validations;
    }
    return sum;
  };
  if (config.timeline_bin > 0) {
    for (auto& c : clients) c->AttachTimeline(&throughput_timeline);
    if (!orbits.empty()) {
      auto last_hits = std::make_shared<uint64_t>(0);
      auto last_ovf = std::make_shared<uint64_t>(0);
      overflow_sampler = std::make_unique<sim::PeriodicTask>(
          &sim, config.timeline_bin, [&, last_hits, last_ovf] {
            const auto s = sum_orbit_stats();
            const uint64_t ovf = s.overflow_to_server + s.invalid_to_server;
            overflow_hits_timeline.Add(
                sim.now() - 1, static_cast<double>(s.read_hits - *last_hits));
            overflow_ovf_timeline.Add(sim.now() - 1,
                                      static_cast<double>(ovf - *last_ovf));
            *last_hits = s.read_hits;
            *last_ovf = ovf;
          });
      overflow_sampler->Start();
    }
  }

  std::vector<telemetry::Snapshot> telemetry_snapshots;
  uint64_t telemetry_timer_events = 0;  // observer events, excluded below
  if (registry != nullptr && config.telemetry.snapshot_interval > 0) {
    telemetry_snapper = std::make_unique<sim::PeriodicTask>(
        &sim, config.telemetry.snapshot_interval, [&] {
          ++telemetry_timer_events;
          telemetry_snapshots.push_back(registry->Sample(sim.now()));
        });
    telemetry_snapper->Start();
  }

  if (config.workload.hot_in) {
    hot_in_swapper = std::make_unique<sim::PeriodicTask>(
        &sim, config.workload.hot_in_period, [&] { dynamic->Advance(); });
    hot_in_swapper->Start();
  }

  // Warmup, then snapshot counters and open measurement windows.
  struct WarmupSnapshot {
    oc::OrbitProgram::Stats oc;
    nc::NetProgram::Stats nc;
    std::vector<app::ServerNode::Stats> servers;
    uint64_t client_tx = 0;
    uint64_t recirc_drops = 0;
  };
  const auto sum_net_stats = [&netps] {
    nc::NetProgram::Stats sum;
    for (const auto& p : netps) {
      const auto& s = p->stats();
      sum.read_hits += s.read_hits;
      sum.served_by_cache += s.served_by_cache;
    }
    return sum;
  };
  const auto sum_recirc_drops = [&topo, racks] {
    uint64_t sum = 0;
    for (int r = 0; r < racks; ++r) sum += topo.leaf(r).stats().recirc_drops;
    return sum;
  };
  WarmupSnapshot snap;
  sim.RunUntil(config.warmup);
  if (!orbits.empty()) snap.oc = sum_orbit_stats();
  if (!netps.empty()) snap.nc = sum_net_stats();
  for (auto& s : servers) snap.servers.push_back(s->stats());
  for (auto& c : clients) {
    snap.client_tx += c->stats().tx_requests;
    c->OpenWindow(sim.now());
  }
  snap.recirc_drops = sum_recirc_drops();

  const SimTime end = config.warmup + config.duration;
  sim.RunUntil(end);
  for (auto& c : clients) c->CloseWindow(sim.now());
  for (auto& c : clients) c->Stop();

  // ---- collect ------------------------------------------------------------
  TestbedResult res;
  const double secs =
      static_cast<double>(config.duration) / static_cast<double>(kSecond);

  uint64_t rx = 0;
  uint64_t tx = 0;
  for (auto& c : clients) {
    rx += c->rx_meter().count();
    tx += c->stats().tx_requests;
    res.read_cached_latency.Merge(c->cached_read_latency());
    res.read_server_latency.Merge(c->server_read_latency());
    res.write_latency.Merge(c->write_latency());
    res.switch_resident.Merge(c->switch_resident());
    res.collisions += c->stats().collisions;
    res.stale_reads += c->stats().stale_reads;
    res.timeouts += c->stats().timeouts;
    res.retransmissions += c->stats().retransmissions;
    res.retries_exhausted += c->stats().retries_exhausted;
    res.inflight_at_stop += c->stats().inflight_at_stop;
  }
  if (injector != nullptr) res.faults_injected = injector->stats().injected;
  if (failover != nullptr) res.reroutes = failover->stats().reroutes;
  // Packets discarded at down uplinks (blackholes, spine crashes,
  // partitions) — counted whether or not failover is rerouting.
  for (int r = 0; r < racks; ++r) {
    for (int s = 0; s < fb.num_spines; ++s) {
      const sim::Link* ul = topo.uplink(r, s);
      res.blackholed_packets +=
          ul->stats(0).down_drops + ul->stats(1).down_drops;
    }
  }
  res.rx_rps = static_cast<double>(rx) / secs;
  res.tx_rps = static_cast<double>(tx - snap.client_tx) / secs;

  stats::LoadTracker loads(static_cast<size_t>(config.topo.num_servers));
  for (size_t i = 0; i < servers.size(); ++i) {
    const auto& s1 = servers[i]->stats();
    const auto& s0 = snap.servers[i];
    loads.Add(i, s1.requests - s0.requests);
    res.server_drops += s1.dropped - s0.dropped;
  }
  res.server_loads = loads.counts();
  res.balancing_efficiency = loads.BalancingEfficiency();
  res.server_served_rps = static_cast<double>(loads.total()) / secs;

  if (!orbits.empty()) {
    const auto s1 = sum_orbit_stats();
    res.lookup_hits = s1.read_hits - snap.oc.read_hits;
    res.absorbed = s1.absorbed - snap.oc.absorbed;
    res.overflows = s1.overflow_to_server - snap.oc.overflow_to_server;
    res.cache_served_rps =
        static_cast<double>(s1.served_by_cache - snap.oc.served_by_cache +
                            s1.wb_returned_replies -
                            snap.oc.wb_returned_replies) /
        secs;
    res.overflow_ratio =
        res.lookup_hits > 0
            ? static_cast<double>(res.overflows) /
                  static_cast<double>(res.lookup_hits)
            : 0.0;
    uint64_t in_flight = 0;
    for (int r = 0; r < racks; ++r) {
      res.cache_entries += orbits[static_cast<size_t>(r)]->num_entries();
      in_flight += static_cast<uint64_t>(
          std::max<int64_t>(0, topo.leaf(r).stats().recirc_in_flight));
    }
    res.cache_packets_in_flight = in_flight;
    res.cp_drop_evicted = s1.cp_drop_evicted;
    res.cp_drop_invalid = s1.cp_drop_invalid;
    res.cp_drop_epoch = s1.cp_drop_epoch;
    res.validations = s1.validations;
  }
  if (!netps.empty()) {
    const auto s1 = sum_net_stats();
    res.lookup_hits = s1.read_hits - snap.nc.read_hits;
    res.cache_served_rps =
        static_cast<double>(s1.served_by_cache - snap.nc.served_by_cache) /
        secs;
    for (const auto& p : netps) res.cache_entries += p->num_entries();
  }
  if (fab_ctrl != nullptr) res.controller_cache_size = fab_ctrl->TotalCacheSize();
  res.recirc_drops = sum_recirc_drops() - snap.recirc_drops;
  // All leaves run the identical program: one leaf's RMT ledger is the
  // per-switch usage story (a fabric does not pool SRAM across switches).
  res.resource_report = topo.leaf(0).resources().Report();
  res.rmt_stages_used = topo.leaf(0).resources().stages_used();
  res.rmt_sram_bytes_used = topo.leaf(0).resources().sram_bytes_used();
  res.rmt_sram_fraction = topo.leaf(0).resources().sram_fraction_used();
  res.rmt_alus_used = topo.leaf(0).resources().alus_used();
  res.events_processed = sim.events_processed() - telemetry_timer_events;

  if (config.timeline_bin > 0) {
    res.throughput_timeline = throughput_timeline.bins();
    for (double& v : res.throughput_timeline)
      v = v * static_cast<double>(kSecond) /
          static_cast<double>(config.timeline_bin);
    const size_t n = std::max(overflow_hits_timeline.num_bins(),
                              overflow_ovf_timeline.num_bins());
    res.overflow_ratio_timeline.resize(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double hits = i < overflow_hits_timeline.num_bins()
                              ? overflow_hits_timeline.bin(i)
                              : 0;
      const double ovf = i < overflow_ovf_timeline.num_bins()
                             ? overflow_ovf_timeline.bin(i)
                             : 0;
      res.overflow_ratio_timeline[i] = hits > 0 ? ovf / hits : 0.0;
    }
  }

  if (capture_on) {
    telemetry::RunCapture* cap = config.telemetry.capture;
    cap->Clear();
    if (registry != nullptr) {
      if (telemetry_snapshots.empty() ||
          telemetry_snapshots.back().at != sim.now())
        telemetry_snapshots.push_back(registry->Sample(sim.now()));
      cap->snapshots = std::move(telemetry_snapshots);
    }
    if (tracer != nullptr) {
      cap->tracks = tracer->TakeTracks();
      cap->events = tracer->TakeEvents();
    }
    if (int_sink != nullptr) int_sink->Drain(&cap->int_capture);
    if (flight != nullptr) {
      if (config.telemetry.flight_end_dump)
        flight->TriggerDump(sim.now(), "end of run");
      if (flight->HasDumps()) cap->flight_dump = flight->DumpText();
    }
  }

  // ---- verification -------------------------------------------------------
  // Mirrors the single-switch epilogue with fabric-wide sums: conservation
  // must balance across every leaf, spine, uplink, and blackholed packet.
  if (verifier != nullptr) {
    verify::Verifier::EndOfRun eor;
    const sim::PacketPool::Stats& ps = sim.packet_pool().stats();
    eor.pool_acquired = ps.allocated + ps.recycled;
    eor.pool_released = ps.released;
    uint64_t server_queued = 0;
    for (auto& s : servers) server_queued += s->queue_depth();
    eor.expected_live = sim.pending_deliveries() + server_queued;
    int64_t recirc = 0;
    for (int r = 0; r < racks; ++r)
      recirc += static_cast<int64_t>(topo.leaf(r).stats().recirc_in_flight);
    eor.recirc_in_flight = recirc;
    std::string census_skip;
    if (orbits.empty()) {
      census_skip = "scheme has no orbiting cache packets";
    } else if (!config.cache.enable_cloning) {
      census_skip = "no-cloning ablation refetches instead of orbiting";
    } else if (config.cache.multi_packet) {
      census_skip = "multi-packet entries orbit fragment sets";
    } else if (config.cache.write_back) {
      census_skip = "write-back forks flush copies";
    } else if (!config.fault.events.empty()) {
      census_skip = "fault schedule may reset data-plane state";
    } else if (config.workload.write_ratio > 0 ||
               config.workload.twitter != nullptr) {
      census_skip = "writes invalidate entries while packets still orbit";
    } else if (sum_recirc_drops() > 0) {
      census_skip = "recirculation ring dropped cache packets";
    } else {
      const auto s1 = sum_orbit_stats();
      if (s1.cp_drop_evicted + s1.cp_drop_invalid + s1.cp_drop_epoch > 0)
        census_skip = "cache packets were retired mid-run";
    }
    if (census_skip.empty() && fab_ctrl != nullptr) {
      for (int r = 0; r < racks; ++r) {
        const auto& cs = fab_ctrl->orbit(r)->stats();
        if (cs.evictions > 0 || cs.fetch_retries > 0 ||
            cs.fetch_failures > 0) {
          census_skip = "controller evicted or re-fetched entries";
          break;
        }
      }
    }
    if (census_skip.empty()) {
      int64_t valid = 0;
      for (const auto& p : orbits)
        valid += static_cast<int64_t>(p->CountValidEntries());
      eor.valid_entries = valid;
    } else {
      eor.valid_entries = -1;
      eor.orbit_skip_reason = std::move(census_skip);
    }
    eor.resources = &topo.leaf(0).resources();
    verifier->Finalize(eor);
    sim.packet_pool().set_observer(nullptr);
    res.verify_violations = verifier->violation_count();
    res.verify_replies_checked = verifier->replies_checked();
    res.verify_allowed_stale = verifier->allowed_stale();
    res.verify_report = verifier->Report();
    ORBIT_CHECK_MSG(!config.verify.fail_fast || verifier->ok(),
                    "verification failed:\n" << res.verify_report);
  }

  return res;
}

}  // namespace orbit::fabric
