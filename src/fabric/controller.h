// Fabric-level control plane: one rack-scoped NetCache/OrbitCache
// controller per leaf, coordinated by a single object that owns the key →
// rack partition map.
//
// The key space is hash-partitioned over servers (kv::Partitioner, same
// map the workload uses to address requests); racks own contiguous server
// blocks, so a key's rack is ServerFor(key) / servers_per_rack and each
// leaf caches only keys homed in its own rack — exactly one switch on any
// path holds a given key. Preload walks the global popularity ranks and
// deals each key to its owning leaf until every leaf's per-switch budget
// is full, so the fabric-wide hot set is the union of per-rack hot sets
// (not the global top-k, which would concentrate on one rack under skew).
// Dynamic updates need no extra coordination: each rack's servers report
// to their own leaf's controller, and the partition map never changes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fabric/topology.h"
#include "kv/partition.h"
#include "netcache/controller.h"
#include "orbitcache/controller.h"
#include "telemetry/counters.h"
#include "testbed/constants.h"
#include "testbed/testbed.h"
#include "workload/keyspace.h"

namespace orbit::fabric {

struct FabricControllerSpec {
  testbed::Scheme scheme = testbed::Scheme::kOrbitCache;
  oc::ControllerConfig oc;     // per-leaf template (kOrbitCache)
  nc::NetControllerConfig nc;  // per-leaf template (kNetCache)
  sim::LinkConfig ctrl_link;   // controller access link, per leaf
};

class FabricController {
 public:
  // `orbit_programs` / `net_programs` hold one program per rack (the one
  // not matching `spec.scheme` may be empty). Attaches rack r's controller
  // at address testbed::kControllerBase + r behind leaf r.
  FabricController(sim::Simulator* sim, sim::Network* net,
                   FabricTopology* topo, const kv::Partitioner* partitioner,
                   std::vector<Addr> server_addrs,
                   const std::vector<oc::OrbitProgram*>& orbit_programs,
                   const std::vector<nc::NetProgram*>& net_programs,
                   const FabricControllerSpec& spec);

  int num_racks() const { return topo_->num_racks(); }
  int servers_per_rack() const {
    return static_cast<int>(server_addrs_.size()) / num_racks();
  }
  Addr controller_addr(int rack) const {
    return testbed::kControllerBase + static_cast<Addr>(rack);
  }

  // Partition assignment.
  int RackOfServer(int global_server) const {
    return global_server / servers_per_rack();
  }
  int RackOfKey(const Key& key) const {
    return RackOfServer(static_cast<int>(partitioner_->ServerFor(key)));
  }

  oc::Controller* orbit(int rack) {
    return orbit_ctrls_[static_cast<size_t>(rack)].get();
  }
  nc::NetController* netcache(int rack) {
    return net_ctrls_[static_cast<size_t>(rack)].get();
  }

  // Walks popularity ranks 0.. and deals each key passing `admit` (null =
  // admit all) to its owning leaf until every leaf holds `per_leaf` keys
  // or `max_rank` ranks were scanned, then preloads each leaf. Keeps
  // scanning past the preload set to stash up to `per_leaf` next-hottest
  // keys per rack as the degraded-mode standby list (OnLeafDown).
  void PreloadTopKeys(const wl::KeySpace& keyspace, size_t per_leaf,
                      uint64_t max_rank,
                      const std::function<bool(const Key&)>& admit);

  // Starts every per-leaf controller's periodic update timer.
  void Start();

  // Sum of per-leaf dynamic-sizing outcomes (kOrbitCache only).
  size_t TotalCacheSize() const;

  // Graceful degradation (PR 10). OnLeafDown marks `rack`'s preload set
  // invalid (its leaf is in bypass; nothing caches its keys — caching them
  // on another rack's leaf would break write coherence, since writes no
  // longer traverse a caching switch) and tops up every surviving leaf
  // with its own rack's standby keys. OnLeafUp clears the mark; once no
  // leaf is degraded the extras are withdrawn and the fabric returns to
  // its per-leaf budget. RebuildLeaf re-installs and refetches `rack`'s
  // tracked entries after its wiped data plane comes back (scheme
  // dispatch over the per-leaf controllers).
  void OnLeafDown(int rack);
  void OnLeafUp(int rack);
  void RebuildLeaf(int rack);
  bool leaf_degraded(int rack) const {
    return degraded_[static_cast<size_t>(rack)];
  }
  size_t degraded_leaves() const;

  struct Stats {
    uint64_t leaf_down_events = 0;
    uint64_t leaf_up_events = 0;
    uint64_t extra_keys_installed = 0;   // degraded-mode top-ups
    uint64_t extra_keys_withdrawn = 0;
    uint64_t leaf_rebuilds = 0;
  };
  const Stats& stats() const { return stats_; }

  // Registers fabric.ctrl.* degradation counters plus a degraded-leaves
  // gauge against `reg`.
  void RegisterTelemetry(telemetry::Registry& reg);

 private:
  bool AnyDegraded() const;
  FabricTopology* topo_;
  const kv::Partitioner* partitioner_;
  std::vector<Addr> server_addrs_;
  testbed::Scheme scheme_;
  std::vector<std::unique_ptr<oc::Controller>> orbit_ctrls_;
  std::vector<std::unique_ptr<nc::NetController>> net_ctrls_;

  // Degradation state (sized to num_racks by the constructor).
  std::vector<bool> degraded_;
  std::vector<std::vector<Key>> standby_;          // next-hottest, per rack
  std::vector<std::vector<Key>> installed_extras_;  // currently topped up
  Stats stats_;
};

}  // namespace orbit::fabric
