// The NoCache baseline: a plain L3 forwarder with no caching logic, the
// paper's lower-bound comparison scheme.
#pragma once

#include "rmt/switch.h"

namespace orbit::nocache {

class ForwardProgram : public rmt::SwitchProgram {
 public:
  rmt::IngressResult Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) override;
  std::string program_name() const override { return "nocache"; }

  uint64_t forwarded() const { return forwarded_; }

 private:
  uint64_t forwarded_ = 0;
};

}  // namespace orbit::nocache
