// The NoCache baseline: a plain L3 forwarder with no caching logic, the
// paper's lower-bound comparison scheme.
#pragma once

#include <cstdint>

#include "rmt/switch.h"

namespace orbit::nocache {

class ForwardProgram : public rmt::SwitchProgram {
 public:
  rmt::IngressResult Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) override;
  std::string program_name() const override { return "nocache"; }
  // INT: value sizes of forwarded read replies into the shared
  // "value.bytes" histogram (the no-cache reference distribution).
  void OnIntAttached(telemetry::IntSink& sink) override;

  uint64_t forwarded() const { return forwarded_; }

 private:
  uint64_t forwarded_ = 0;
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hist_value_ = 0;
};

}  // namespace orbit::nocache
