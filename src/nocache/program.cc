#include "nocache/program.h"

namespace orbit::nocache {

rmt::IngressResult ForwardProgram::Ingress(sim::Packet& pkt,
                                           rmt::SwitchDevice& sw) {
  (void)sw;
  ++forwarded_;
  return rmt::IngressResult::ToAddr(pkt.dst);
}

}  // namespace orbit::nocache
