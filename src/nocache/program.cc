#include "nocache/program.h"

#include "proto/message.h"
#include "telemetry/int/int.h"

namespace orbit::nocache {

rmt::IngressResult ForwardProgram::Ingress(sim::Packet& pkt,
                                           rmt::SwitchDevice& sw) {
  (void)sw;
  ++forwarded_;
  if (int_ != nullptr && pkt.msg.op == proto::Op::kReadRep)
    int_->Record(int_hist_value_, static_cast<int64_t>(pkt.msg.value.size()));
  return rmt::IngressResult::ToAddr(pkt.dst);
}

void ForwardProgram::OnIntAttached(telemetry::IntSink& sink) {
  int_ = &sink;
  int_hist_value_ = sink.Hist("value.bytes", "bytes");
}

}  // namespace orbit::nocache
