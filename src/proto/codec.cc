#include "proto/codec.h"

#include "common/bytes.h"

namespace orbit::proto {

std::vector<uint8_t> Encode(const Message& msg) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(msg.op));
  w.u32(msg.seq);
  w.u64(msg.hkey.hi);
  w.u64(msg.hkey.lo);
  w.u8(msg.flag);
  w.u8(msg.cached);
  w.u32(msg.latency);
  w.u8(msg.srv_id);
  w.u32(msg.epoch);
  w.u8(msg.frag_index);
  w.u8(msg.frag_total);
  w.u16(static_cast<uint16_t>(msg.key.size()));
  w.bytes(msg.key);
  w.bytes(msg.value.Materialize(msg.key));
  return w.take();
}

std::optional<Message> Decode(const std::vector<uint8_t>& wire) {
  ByteReader r(wire);
  Message m;
  uint8_t op = r.u8();
  if (op < 1 || op > 8) return std::nullopt;
  m.op = static_cast<Op>(op);
  m.seq = r.u32();
  m.hkey.hi = r.u64();
  m.hkey.lo = r.u64();
  m.flag = r.u8();
  m.cached = r.u8();
  m.latency = r.u32();
  m.srv_id = r.u8();
  m.epoch = r.u32();
  m.frag_index = r.u8();
  m.frag_total = r.u8();
  uint16_t key_len = r.u16();
  if (!r.ok() || r.remaining() < key_len) return std::nullopt;
  m.key = r.bytes(key_len);
  m.value = kv::Value::FromBytes(r.bytes(r.remaining()));
  if (!r.ok()) return std::nullopt;
  return m;
}

uint32_t WireBytes(const Message& msg) {
  return kEncapBytes + Message::kHeaderBytes + msg.payload_bytes();
}

}  // namespace orbit::proto
