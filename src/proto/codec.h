// Binary codec for OrbitCache messages.
//
// Inside the simulator, packets carry parsed `Message` structs directly
// (the switch model reads header fields the way the P4 parser would). The
// codec exists for the system boundary: it defines the exact wire layout,
// is exhaustively round-trip tested, and is used by the examples to show
// real byte-level encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/message.h"

namespace orbit::proto {

// Serializes header + payload (key and value bytes are materialized).
std::vector<uint8_t> Encode(const Message& msg);

// Parses a buffer produced by Encode. Returns nullopt on truncation,
// unknown opcode, or inconsistent lengths.
std::optional<Message> Decode(const std::vector<uint8_t>& wire);

// Total simulated wire footprint of a message including encapsulation;
// used by links and the recirculation port for serialization timing.
uint32_t WireBytes(const Message& msg);

}  // namespace orbit::proto
