#include "proto/message.h"

namespace orbit::proto {

const char* OpName(Op op) {
  switch (op) {
    case Op::kReadReq: return "R-REQ";
    case Op::kWriteReq: return "W-REQ";
    case Op::kReadRep: return "R-REP";
    case Op::kWriteRep: return "W-REP";
    case Op::kFetchReq: return "F-REQ";
    case Op::kFetchRep: return "F-REP";
    case Op::kCorrectionReq: return "CRN-REQ";
    case Op::kTopKReport: return "TOPK";
    case Op::kProbe: return "PROBE";
    case Op::kProbeAck: return "PROBE-ACK";
  }
  return "?";
}

}  // namespace orbit::proto
