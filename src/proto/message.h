// The OrbitCache message (paper §3.2 Fig. 3, plus the §4 prototype extras).
//
// Wire layout, after the simulated Ethernet/IP/UDP encapsulation:
//
//   OP (1B) | SEQ (4B) | HKEY (16B) | FLAG (1B)        — 22B paper header
//   CACHED (1B) | LATENCY (4B) | SRVID (1B) | EPOCH (4B) — prototype extras
//   KEYLEN (2B) | key bytes | value bytes               — payload
//
// CACHED / LATENCY / SRVID mirror the paper's own prototype additions for
// latency attribution. EPOCH is this reproduction's coherence hardening
// field (see orbitcache/program.h and netcache/program.h): the switch
// stamps its per-entry write epoch into requests and servers echo it, which
// closes a stale-revalidation race present in the paper's binary
// valid/invalid protocol.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/types.h"
#include "kv/value.h"

namespace orbit::proto {

enum class Op : uint8_t {
  kReadReq = 1,        // R-REQ
  kWriteReq = 2,       // W-REQ
  kReadRep = 3,        // R-REP
  kWriteRep = 4,       // W-REP
  kFetchReq = 5,       // F-REQ (controller -> server, value fetch)
  kFetchRep = 6,       // F-REP (server -> controller; becomes a cache packet)
  kCorrectionReq = 7,  // CRN-REQ (client bypasses the cache after collision)
  kTopKReport = 8,     // server -> controller hot-key report (TCP in paper)
  kProbe = 9,          // fabric liveness probe (switch CPU -> neighbor)
  kProbeAck = 10,      // neighbor turns a probe around on its ingress port
};

const char* OpName(Op op);

// FLAG bit set by the switch on write requests for cached items so the
// server appends the new value to the write reply (paper §3.3). In the
// multi-packet extension (§3.10) the upper bits carry the fragment count.
constexpr uint8_t kFlagCachedWrite = 0x1;
// Write-back extension flags (§3.10): a cache packet carrying unflushed
// data, and an eviction flush write that needs no reply.
constexpr uint8_t kFlagDirty = 0x2;
constexpr uint8_t kFlagFlush = 0x4;

struct Message {
  Op op = Op::kReadReq;
  uint32_t seq = 0;      // request id; wraps around (paper §3.6)
  Hash128 hkey;          // 16-byte key hash, the cache lookup match key
  uint8_t flag = 0;
  // Prototype extras (§4).
  uint8_t cached = 0;    // reply served by the switch cache?
  uint32_t latency = 0;  // scratch field echoed by servers
  uint8_t srv_id = 0;    // emulated server id that produced the reply
  uint32_t epoch = 0;    // coherence epoch (this repo's hardening field)
  // Multi-packet extension: fragment index / total fragments (0/1 for
  // ordinary single-packet items).
  uint8_t frag_index = 0;
  uint8_t frag_total = 1;

  Key key;        // original variable-length key
  kv::Value value;

  // Size of the OrbitCache header as carried on the wire (excluding
  // key/value payload and the L2-L4 encapsulation): the 22B paper header,
  // 10B of prototype extras, 2B of fragment fields, 2B key length.
  static constexpr uint32_t kHeaderBytes = 22 + 10 + 2 + 2;

  // Bytes of OrbitCache payload (key + value).
  uint32_t payload_bytes() const {
    return static_cast<uint32_t>(key.size()) + value.size();
  }
};

// Simulated L2+L3+L4 encapsulation overhead (Ethernet 18 + IPv4 20 + UDP 8),
// applied to every packet for serialization-time accounting.
constexpr uint32_t kEncapBytes = 46;

// Ethernet MTU payload budget: 1500 - IP/UDP (28) = 1472 usable bytes for
// the OrbitCache header + payload. With the 22B paper header the paper
// quotes 1438B of key+value; our prototype extras shrink that, matching the
// paper's own note that its instrumented header supports 1416B values with
// 16B keys (§5.3: 28B custom header).
constexpr uint32_t kMaxOrbitBytes = 1472;
constexpr uint32_t kMaxPayloadBytes = kMaxOrbitBytes - Message::kHeaderBytes;

}  // namespace orbit::proto
