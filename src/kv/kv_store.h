// The storage-server key-value store: the paper's "shim layer" translates
// OrbitCache messages into these API calls. Versions are assigned here —
// every successful write bumps the key's version — which is what the
// coherence test suite uses to detect stale reads end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "kv/hash_table.h"
#include "kv/value.h"

namespace orbit::kv {

class KvStore {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t hits = 0;
    uint64_t puts = 0;
    uint64_t erases = 0;
  };

  // Reads a value; nullopt when absent.
  std::optional<Value> Get(std::string_view key);

  // Writes `size` bytes for `key`; returns the assigned version (monotonic
  // per key, starting at 1).
  uint64_t Put(std::string_view key, uint32_t size);

  // Write-back flush support: applies an externally versioned value but
  // never regresses an existing newer version. Returns the stored version.
  uint64_t PutVersioned(std::string_view key, uint32_t size, uint64_t version);

  bool Erase(std::string_view key);

  size_t size() const { return table_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  HashTable table_;
  Stats stats_;
};

}  // namespace orbit::kv
