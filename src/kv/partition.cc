#include "kv/partition.h"

#include "common/check.h"
#include "common/hash.h"

namespace orbit::kv {

Partitioner::Partitioner(uint32_t num_servers, uint64_t seed)
    : num_servers_(num_servers), seed_(seed) {
  ORBIT_CHECK(num_servers > 0);
}

uint32_t Partitioner::ServerFor(std::string_view key) const {
  return static_cast<uint32_t>(Hash64(key, seed_ ^ 0x7061727469746eull) %
                               num_servers_);
}

}  // namespace orbit::kv
