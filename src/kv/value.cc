#include "kv/value.h"

#include "common/bytes.h"
#include "common/check.h"
#include "common/hash.h"

namespace orbit::kv {

Value Value::Synthetic(uint32_t size, uint64_t version) {
  Value v;
  v.size_ = size;
  v.version_ = version;
  return v;
}

Value Value::FromBytes(std::string bytes) {
  Value v;
  v.size_ = static_cast<uint32_t>(bytes.size());
  if (bytes.size() >= 8) {
    ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()), 8);
    v.version_ = r.u64();
  }
  v.bytes_ = std::make_shared<const std::string>(std::move(bytes));
  return v;
}

std::string Value::Materialize(std::string_view key) const {
  if (bytes_) return *bytes_;
  std::string out;
  out.reserve(size_);
  ByteWriter w;
  if (size_ >= 8) w.u64(version_);
  out.assign(w.data().begin(), w.data().end());
  uint64_t state = Hash64(key) ^ (version_ * 0x9e3779b97f4a7c15ull);
  while (out.size() < size_) {
    state = Mix64(state);
    uint64_t chunk = state;
    for (int i = 0; i < 8 && out.size() < size_; ++i) {
      out.push_back(static_cast<char>(chunk & 0xff));
      chunk >>= 8;
    }
  }
  return out;
}

bool Value::ContentEquals(const Value& other, std::string_view key) const {
  if (size_ != other.size_) return false;
  if (!bytes_ && !other.bytes_)
    return version_ == other.version_;
  return Materialize(key) == other.Materialize(key);
}

}  // namespace orbit::kv
