// Key → storage-server partitioning.
//
// Both clients (to pick the destination server) and the testbed (to place
// items) must agree on this mapping; the paper determines the destination
// server by hashing the key (§3.3).
#pragma once

#include <cstdint>
#include <string_view>

namespace orbit::kv {

class Partitioner {
 public:
  explicit Partitioner(uint32_t num_servers, uint64_t seed = 0);

  uint32_t num_servers() const { return num_servers_; }
  uint32_t ServerFor(std::string_view key) const;

 private:
  uint32_t num_servers_;
  uint64_t seed_;
};

}  // namespace orbit::kv
