// Chained hash table in the spirit of TommyDS (the library the paper's
// storage servers use): power-of-two bucket array, intrusive-style chains,
// amortized O(1) everything, growth by doubling with full rehash at the
// resize point.
//
// Written from scratch rather than wrapping std::unordered_map so the
// substrate is self-contained and its behaviour (probe counts, resize
// policy) is testable; the property suite cross-checks it against the
// standard map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "kv/value.h"

namespace orbit::kv {

class HashTable {
 public:
  explicit HashTable(size_t initial_buckets = 64);
  ~HashTable();

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;
  HashTable(HashTable&&) noexcept;
  HashTable& operator=(HashTable&&) noexcept;

  // Inserts or overwrites. Returns true when the key was newly inserted.
  bool Put(std::string_view key, Value value);
  // Returns nullptr when absent. The pointer is invalidated by mutation.
  const Value* Get(std::string_view key) const;
  Value* GetMutable(std::string_view key);
  bool Erase(std::string_view key);

  size_t size() const { return size_; }
  size_t bucket_count() const { return buckets_.size(); }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  // Visits every entry; `fn(key, value)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Node* head : buckets_)
      for (const Node* n = head; n != nullptr; n = n->next) fn(n->key, n->value);
  }

  struct ProbeStats {
    uint64_t lookups = 0;
    uint64_t probes = 0;  // chain nodes visited across all lookups
  };
  const ProbeStats& probe_stats() const { return probe_stats_; }

 private:
  struct Node {
    std::string key;
    Value value;
    uint64_t hash = 0;
    Node* next = nullptr;
  };

  void MaybeGrow();
  void Rehash(size_t new_buckets);
  Node** BucketFor(uint64_t hash) {
    return &buckets_[hash & (buckets_.size() - 1)];
  }
  void FreeAll();

  static constexpr double kMaxLoadFactor = 0.9;

  std::vector<Node*> buckets_;
  size_t size_ = 0;
  mutable ProbeStats probe_stats_;
};

}  // namespace orbit::kv
