#include "kv/kv_store.h"

namespace orbit::kv {

std::optional<Value> KvStore::Get(std::string_view key) {
  ++stats_.gets;
  const Value* v = table_.Get(key);
  if (v == nullptr) return std::nullopt;
  ++stats_.hits;
  return *v;
}

uint64_t KvStore::Put(std::string_view key, uint32_t size) {
  ++stats_.puts;
  Value* existing = table_.GetMutable(key);
  const uint64_t version = existing != nullptr ? existing->version() + 1 : 1;
  Value v = Value::Synthetic(size, version);
  if (existing != nullptr) {
    *existing = std::move(v);
  } else {
    table_.Put(key, std::move(v));
  }
  return version;
}

uint64_t KvStore::PutVersioned(std::string_view key, uint32_t size,
                               uint64_t version) {
  ++stats_.puts;
  Value* existing = table_.GetMutable(key);
  if (existing != nullptr && existing->version() >= version)
    return existing->version();
  Value v = Value::Synthetic(size, version);
  if (existing != nullptr) {
    *existing = std::move(v);
  } else {
    table_.Put(key, std::move(v));
  }
  return version;
}

bool KvStore::Erase(std::string_view key) {
  ++stats_.erases;
  return table_.Erase(key);
}

}  // namespace orbit::kv
