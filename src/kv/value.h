// Lazy key-value item values.
//
// The paper's workloads use up to 10M keys with values of hundreds of bytes
// to ~1.4KB. Materializing every value would cost gigabytes, so within the
// simulator a Value is a small descriptor — (size, version) — whose bytes
// are synthesized deterministically on demand. The wire codec and the
// integration tests materialize real bytes; the simulation hot path only
// moves descriptors, which also mirrors how the Tofino PRE clones packets
// (copy the descriptor, share the data).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace orbit::kv {

class Value {
 public:
  Value() = default;

  // A value whose bytes are derived from (key, version) when materialized.
  static Value Synthetic(uint32_t size, uint64_t version);
  // A value backed by explicit bytes (e.g. parsed off the wire).
  static Value FromBytes(std::string bytes);

  uint32_t size() const { return size_; }
  // Monotonic per-key write version assigned by the storage server; used by
  // the coherence tests to detect stale reads. Byte-backed values recover
  // the version from the first 8 content bytes when present.
  uint64_t version() const { return version_; }
  bool is_synthetic() const { return bytes_ == nullptr; }

  // Produces the full value content. Synthetic values embed the version in
  // the first 8 bytes (when size allows) followed by bytes pseudo-randomly
  // derived from the key, so a round trip through the codec preserves the
  // version and is content-checkable.
  std::string Materialize(std::string_view key) const;

  // True when two values would materialize identically for the same key.
  bool ContentEquals(const Value& other, std::string_view key) const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  uint32_t size_ = 0;
  uint64_t version_ = 0;
  std::shared_ptr<const std::string> bytes_;
};

}  // namespace orbit::kv
