#include "kv/hash_table.h"

#include <bit>

#include "common/check.h"

namespace orbit::kv {

HashTable::HashTable(size_t initial_buckets) {
  ORBIT_CHECK(initial_buckets > 0);
  buckets_.assign(std::bit_ceil(initial_buckets), nullptr);
}

HashTable::~HashTable() { FreeAll(); }

HashTable::HashTable(HashTable&& other) noexcept
    : buckets_(std::move(other.buckets_)),
      size_(other.size_),
      probe_stats_(other.probe_stats_) {
  other.buckets_.assign(1, nullptr);
  other.size_ = 0;
}

HashTable& HashTable::operator=(HashTable&& other) noexcept {
  if (this != &other) {
    FreeAll();
    buckets_ = std::move(other.buckets_);
    size_ = other.size_;
    probe_stats_ = other.probe_stats_;
    other.buckets_.assign(1, nullptr);
    other.size_ = 0;
  }
  return *this;
}

void HashTable::FreeAll() {
  for (Node*& head : buckets_) {
    Node* n = head;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
    head = nullptr;
  }
  size_ = 0;
}

bool HashTable::Put(std::string_view key, Value value) {
  MaybeGrow();
  const uint64_t h = Hash64(key);
  Node** bucket = BucketFor(h);
  for (Node* n = *bucket; n != nullptr; n = n->next) {
    if (n->hash == h && n->key == key) {
      n->value = std::move(value);
      return false;
    }
  }
  Node* node = new Node{std::string(key), std::move(value), h, *bucket};
  *bucket = node;
  ++size_;
  return true;
}

const Value* HashTable::Get(std::string_view key) const {
  return const_cast<HashTable*>(this)->GetMutable(key);
}

Value* HashTable::GetMutable(std::string_view key) {
  const uint64_t h = Hash64(key);
  ++probe_stats_.lookups;
  for (Node* n = *BucketFor(h); n != nullptr; n = n->next) {
    ++probe_stats_.probes;
    if (n->hash == h && n->key == key) return &n->value;
  }
  return nullptr;
}

bool HashTable::Erase(std::string_view key) {
  const uint64_t h = Hash64(key);
  Node** link = BucketFor(h);
  while (*link != nullptr) {
    Node* n = *link;
    if (n->hash == h && n->key == key) {
      *link = n->next;
      delete n;
      --size_;
      return true;
    }
    link = &n->next;
  }
  return false;
}

void HashTable::MaybeGrow() {
  if (static_cast<double>(size_ + 1) >
      kMaxLoadFactor * static_cast<double>(buckets_.size())) {
    Rehash(buckets_.size() * 2);
  }
}

void HashTable::Rehash(size_t new_buckets) {
  std::vector<Node*> old = std::move(buckets_);
  buckets_.assign(new_buckets, nullptr);
  for (Node* head : old) {
    Node* n = head;
    while (n != nullptr) {
      Node* next = n->next;
      Node** bucket = BucketFor(n->hash);
      n->next = *bucket;
      *bucket = n;
      n = next;
    }
  }
}

}  // namespace orbit::kv
