// The circular-queue request table (paper §3.4, Fig. 5).
//
// OrbitCache must buffer request metadata until the key's circulating
// cache packet passes by. The table provides one logical FIFO queue of
// depth S per cached entry, built exactly as the paper describes, from six
// register arrays laid out over three match-action stages:
//
//   stage A (queue status):   qlen[CacheIdx]
//   stage B (pointer update): front[CacheIdx], rear[CacheIdx]
//   stage C (metadata slots): client_addr[ReqIdx], seq[ReqIdx],
//                             l4_port[ReqIdx]   (+ a timestamp array the
//                             prototype adds for latency measurement, §4)
//
// with ReqIdx = CacheIdx * S + offset — index arithmetic that isolates the
// queues of different keys from one another. Enqueue fails when the queue
// is full (the request overflows to the storage server) and dequeue fails
// when empty (the cache packet recirculates).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "rmt/register_array.h"

namespace orbit::telemetry {
class Registry;
}  // namespace orbit::telemetry

namespace orbit::verify {
class Verifier;
}  // namespace orbit::verify

namespace orbit::oc {

struct RequestMeta {
  Addr client_addr = kInvalidAddr;
  L4Port l4_port = 0;
  uint32_t seq = 0;
  SimTime enqueued_at = 0;
  // Telemetry passengers (not part of the modeled data plane): the sampled
  // request's trace id and INT flow id ride along so the serving cache
  // packet can be correlated back to the absorbed request. Zero for
  // unsampled requests.
  uint64_t trace_id = 0;
  uint32_t int_id = 0;
};

class RequestTable {
 public:
  // Declares the register arrays across stages [first_stage,
  // first_stage + 2] against the device resource ledger.
  RequestTable(rmt::Resources* res, size_t capacity, size_t queue_size,
               int first_stage);

  size_t capacity() const { return capacity_; }
  size_t queue_size() const { return queue_size_; }

  // Appends metadata to idx's queue; false when the queue is full.
  bool TryEnqueue(uint32_t idx, const RequestMeta& meta);
  // Pops the oldest metadata from idx's queue; nullopt when empty.
  std::optional<RequestMeta> TryDequeue(uint32_t idx);
  // Reads the oldest metadata without removing it (multi-packet items
  // dequeue only on the final fragment, §3.10).
  std::optional<RequestMeta> Peek(uint32_t idx) const;

  uint32_t QueueLength(uint32_t idx) const;
  // Drops all buffered metadata for idx (used on cache-entry replacement).
  void ClearQueue(uint32_t idx);

  // Registers per-array access counters ("rmt.s<stage>.<name>.accesses").
  void RegisterTelemetry(telemetry::Registry& reg,
                         const std::string& prefix = "") const;

  // Installs the verification layer's invariant checker: every mutation
  // reports the resulting ring state. Null (the default) disables.
  void SetVerifier(verify::Verifier* verifier) { verifier_ = verifier; }

  // Test/verify access to the telemetry sidecars of idx's slot `offset`.
  uint64_t trace_id_at(uint32_t idx, uint32_t offset) const {
    return trace_id_[ReqIdx(idx, offset)];
  }
  uint32_t int_id_at(uint32_t idx, uint32_t offset) const {
    return int_id_[ReqIdx(idx, offset)];
  }

 private:
  size_t ReqIdx(uint32_t idx, uint32_t offset) const {
    return static_cast<size_t>(idx) * queue_size_ + offset;
  }
  // Reports the post-mutation ring state of slot idx to the verifier (via
  // non-counting peeks, so --verify leaves access telemetry untouched).
  void ReportQueueState(const char* where, uint32_t idx) const;

  size_t capacity_;
  size_t queue_size_;

  // Queue management arrays (one slot per cached key).
  rmt::RegisterArray<uint32_t> qlen_;
  rmt::RegisterArray<uint32_t> front_;
  rmt::RegisterArray<uint32_t> rear_;
  // Metadata arrays (capacity * S slots).
  rmt::RegisterArray<Addr> client_addr_;
  rmt::RegisterArray<uint32_t> seq_;
  rmt::RegisterArray<uint16_t> l4_port_;
  rmt::RegisterArray<SimTime> timestamp_;
  // Telemetry sidecars, deliberately NOT declared RegisterArrays: trace and
  // INT ids are observability metadata, and declaring storage for them
  // would charge the Resources ledger (changing rmt_sram metrics) for
  // state the real data plane does not hold.
  std::vector<uint64_t> trace_id_;
  std::vector<uint32_t> int_id_;

  verify::Verifier* verifier_ = nullptr;  // not owned; null = no checks
};

}  // namespace orbit::oc
