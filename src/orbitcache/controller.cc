#include "orbitcache/controller.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace orbit::oc {

Controller::Controller(sim::Simulator* sim, sim::Network* net,
                       OrbitProgram* program,
                       const kv::Partitioner* partitioner,
                       std::vector<Addr> server_addrs, Addr self_addr,
                       int self_port, const ControllerConfig& config)
    : sim_(sim),
      net_(net),
      program_(program),
      partitioner_(partitioner),
      server_addrs_(std::move(server_addrs)),
      self_addr_(self_addr),
      self_port_(self_port),
      config_(config) {
  ORBIT_CHECK(sim != nullptr && net != nullptr && program != nullptr &&
              partitioner != nullptr);
  ORBIT_CHECK_MSG(config_.max_cache_size <= program->config().capacity,
                  "controller max cache size exceeds data-plane capacity");
  ORBIT_CHECK(config_.cache_size >= 1);
  // Free-index pool covers the full data-plane capacity; the target size
  // only limits how many are used at once.
  for (uint32_t i = 0; i < program->config().capacity; ++i)
    free_idxs_.push_back(program->config().capacity - 1 - i);
}

void Controller::Preload(const std::vector<Key>& keys) {
  for (const Key& key : keys) {
    if (by_key_.size() >= config_.cache_size) break;
    if (by_key_.count(key) > 0) continue;
    InsertKey(key, AllocIdx());
  }
}

size_t Controller::InstallExtra(const std::vector<Key>& keys) {
  size_t installed = 0;
  for (const Key& key : keys) {
    if (by_key_.count(key) > 0) continue;
    if (free_idxs_.empty()) break;  // data-plane capacity exhausted
    InsertKey(key, AllocIdx());
    if (by_key_.count(key) > 0) ++installed;  // table may reject (full)
  }
  return installed;
}

bool Controller::WithdrawKey(const Key& key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  EvictIdx(it->second);
  return true;
}

void Controller::Start() {
  ORBIT_CHECK(!started_);
  started_ = true;
  sim_->AfterTimer(config_.update_period, this, kTickArg);
}

void Controller::OnTimer(uint64_t arg) {
  if (arg == kTickArg) {
    Tick();
    return;
  }
  rebuild_sweep_armed_ = false;
  CheckFetchTimeouts();
  if (!pending_fetches_.empty()) ArmRebuildSweep();
}

void Controller::Tick() {
  ++stats_.updates;
  CheckFetchTimeouts();
  UpdateCacheEntries();
  if (config_.dynamic_sizing) AdjustCacheSize();
  if (config_.snapshot_period > 0 &&
      sim_->now() - last_snapshot_ >= config_.snapshot_period) {
    last_snapshot_ = sim_->now();
    stats_.snapshot_entries_flushed += program_->RequestSnapshot();
  }
  reported_.clear();
  sim_->AfterTimer(config_.update_period, this, kTickArg);
}

void Controller::UpdateCacheEntries() {
  // Refresh cached-key popularity from the data plane.
  const std::vector<uint64_t> pop = program_->ReadAndResetPopularity();
  for (auto& [idx, entry] : by_idx_) entry.last_count = pop[idx];

  // Candidate uncached keys from server reports, hottest first.
  std::vector<std::pair<uint64_t, const Key*>> candidates;
  candidates.reserve(reported_.size());
  for (const auto& [key, count] : reported_) {
    if (by_key_.count(key) > 0) continue;  // already cached
    candidates.emplace_back(count, &key);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.first > b.first ||
                     (a.first == b.first && *a.second < *b.second);
            });

  // Cached keys, coldest first, as eviction victims.
  std::vector<uint32_t> victims;
  victims.reserve(by_idx_.size());
  for (const auto& [idx, entry] : by_idx_) victims.push_back(idx);
  std::sort(victims.begin(), victims.end(), [this](uint32_t a, uint32_t b) {
    return by_idx_.at(a).last_count < by_idx_.at(b).last_count;
  });

  size_t v = 0;
  for (const auto& [count, keyp] : candidates) {
    // Fill spare capacity first (e.g. after a size increase).
    if (by_key_.size() < config_.cache_size) {
      InsertKey(*keyp, AllocIdx());
      continue;
    }
    if (v >= victims.size()) break;
    CachedEntry& victim = by_idx_.at(victims[v]);
    if (count <= victim.last_count) break;  // remaining candidates are colder
    // Replace: the new key inherits the victim's CacheIdx (§3.8) so pending
    // requests for the evicted key are answered by the new cache packet and
    // resolved by the client-side collision mechanism.
    const uint32_t idx = victim.idx;
    EvictIdx(idx);
    free_idxs_.pop_back();  // EvictIdx released it; reuse immediately
    InsertKey(*keyp, idx);
    ++v;
  }

  // Shrink to target if the size was reduced.
  while (by_key_.size() > config_.cache_size && v < victims.size()) {
    EvictIdx(victims[v]);
    ++v;
  }
}

void Controller::AdjustCacheSize() {
  const OrbitProgram::HitOverflow ho = program_->ReadAndResetHitOverflow();
  if (ho.hits == 0) return;
  const double ratio =
      static_cast<double>(ho.overflows) / static_cast<double>(ho.hits);
  if (ratio > config_.overflow_threshold) {
    if (config_.cache_size > config_.min_cache_size) {
      config_.cache_size = std::max(config_.min_cache_size,
                                    config_.cache_size - config_.sizing_step);
      ++stats_.size_decreases;
    }
  } else if (config_.cache_size < config_.max_cache_size) {
    config_.cache_size = std::min(config_.max_cache_size,
                                  config_.cache_size + config_.sizing_step);
    ++stats_.size_increases;
  }
}

void Controller::InsertKey(const Key& key, uint32_t idx) {
  const Hash128 hkey = HashKey128(key);
  if (!program_->InsertEntry(hkey, idx)) {
    LOG_WARN("controller: lookup table rejected insert for " << key);
    free_idxs_.push_back(idx);
    return;
  }
  CachedEntry entry;
  entry.key = key;
  entry.hkey = hkey;
  entry.idx = idx;
  by_idx_[idx] = entry;
  by_key_[key] = idx;
  ++stats_.insertions;
  SendFetch(key, hkey, server_addrs_[partitioner_->ServerFor(key)]);
}

void Controller::EvictIdx(uint32_t idx) {
  auto it = by_idx_.find(idx);
  ORBIT_CHECK(it != by_idx_.end());
  program_->EraseEntry(it->second.hkey);
  pending_fetches_.erase(it->second.key);
  by_key_.erase(it->second.key);
  by_idx_.erase(it);
  free_idxs_.push_back(idx);
  ++stats_.evictions;
}

uint32_t Controller::AllocIdx() {
  ORBIT_CHECK_MSG(!free_idxs_.empty(), "no free cache indices");
  const uint32_t idx = free_idxs_.back();
  free_idxs_.pop_back();
  return idx;
}

void Controller::SendFetch(const Key& key, const Hash128& hkey, Addr server) {
  PendingFetch& pf = pending_fetches_[key];
  pf.key = key;
  pf.hkey = hkey;
  pf.server = server;
  // Exponential backoff (capped at 32x): right after a fault the fabric is
  // congested with client retries and a server's FIFO can hold tens of
  // milliseconds of backlog, so a fixed short deadline would burn the whole
  // attempt budget before a single round trip can complete.
  pf.deadline =
      sim_->now() + (config_.fetch_timeout << std::min(pf.attempts, 5));
  ++pf.attempts;
  ++stats_.fetches_sent;

  proto::Message msg;
  msg.op = proto::Op::kFetchReq;
  msg.seq = fetch_seq_++;
  msg.hkey = hkey;
  msg.key = key;
  net_->Send(this, self_port_,
             sim::MakePacket(self_addr_, server, config_.orbit_port,
                             config_.orbit_port, std::move(msg)));
}

void Controller::CheckFetchTimeouts() {
  std::vector<Key> retry;
  std::vector<Key> give_up;
  for (const auto& [key, pf] : pending_fetches_) {
    if (pf.deadline > sim_->now()) continue;
    if (pf.attempts >= config_.max_fetch_attempts) {
      give_up.push_back(key);
    } else {
      retry.push_back(key);
    }
  }
  for (const Key& key : retry) {
    PendingFetch pf = pending_fetches_[key];
    ++stats_.fetch_retries;
    SendFetch(pf.key, pf.hkey, pf.server);
  }
  for (const Key& key : give_up) {
    ++stats_.fetch_failures;
    auto it = by_key_.find(key);
    if (it != by_key_.end()) EvictIdx(it->second);
    pending_fetches_.erase(key);
  }
}

void Controller::RebuildCache() {
  pending_fetches_.clear();
  for (const auto& [idx, entry] : by_idx_) {
    // Re-install unconditionally; the data plane was wiped so Insert
    // cannot conflict.
    ORBIT_CHECK(program_->InsertEntry(entry.hkey, idx));
    SendFetch(entry.key, entry.hkey,
              server_addrs_[partitioner_->ServerFor(entry.key)]);
  }
  // Right after a reset the fabric is congested with client retries, so
  // refetches are likely to drown; without the periodic update timer
  // nothing would ever retry them and the cache would stay partially
  // invalid. Sweep on the fetch-timeout cadence until every refetch
  // settles (success or give-up).
  if (!pending_fetches_.empty()) ArmRebuildSweep();
}

void Controller::ArmRebuildSweep() {
  if (rebuild_sweep_armed_) return;
  rebuild_sweep_armed_ = true;
  sim_->AfterTimer(config_.fetch_timeout, this, kRebuildSweepArg);
}

void Controller::RequestRefetch(const Key& key, const Hash128& hkey,
                                Addr server) {
  // Scheduled after the CPU turnaround; retries ride the normal timeout
  // machinery.
  sim_->After(config_.cpu_delay, [this, key, hkey, server] {
    if (by_key_.count(key) == 0) return;  // evicted meanwhile
    SendFetch(key, hkey, server);
  });
}

void Controller::OnPacket(sim::PacketPtr pkt, int /*port*/) {
  using proto::Op;
  switch (pkt->msg.op) {
    case Op::kFetchRep:
      sim::MarkEnd(*pkt, sim::PacketEnd::kConsumed);
      pending_fetches_.erase(pkt->msg.key);
      return;
    case Op::kTopKReport: {
      // One report packet per hot key; the count rides in value.version.
      sim::MarkEnd(*pkt, sim::PacketEnd::kConsumed);
      ++stats_.reports_received;
      reported_[pkt->msg.key] += pkt->msg.value.version();
      return;
    }
    default:
      sim::MarkEnd(*pkt, sim::PacketEnd::kIgnored);
      LOG_DEBUG("controller: ignoring " << proto::OpName(pkt->msg.op));
  }
}

}  // namespace orbit::oc
