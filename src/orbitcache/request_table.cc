#include "orbitcache/request_table.h"

#include "common/check.h"
#include "telemetry/counters.h"
#include "verify/verify.h"

namespace orbit::oc {

RequestTable::RequestTable(rmt::Resources* res, size_t capacity,
                           size_t queue_size, int first_stage)
    : capacity_(capacity),
      queue_size_(queue_size),
      qlen_(res, "req_qlen", first_stage, capacity),
      front_(res, "req_front", first_stage + 1, capacity),
      rear_(res, "req_rear", first_stage + 1, capacity),
      client_addr_(res, "req_client_addr", first_stage + 2,
                   capacity * queue_size),
      seq_(res, "req_seq", first_stage + 2, capacity * queue_size),
      l4_port_(res, "req_l4_port", first_stage + 2, capacity * queue_size),
      timestamp_(res, "req_timestamp", first_stage + 2,
                 capacity * queue_size),
      trace_id_(capacity * queue_size, 0),
      int_id_(capacity * queue_size, 0) {
  ORBIT_CHECK(capacity > 0 && queue_size > 0);
}

bool RequestTable::TryEnqueue(uint32_t idx, const RequestMeta& meta) {
  ORBIT_CHECK(idx < capacity_);
  // Stage A: queue status check.
  uint32_t& len = qlen_.at(idx);
  if (len >= queue_size_) return false;
  // Stage B: advance the rear pointer (circularly).
  uint32_t& rear = rear_.at(idx);
  const uint32_t slot = rear;
  rear = (rear + 1) % static_cast<uint32_t>(queue_size_);
  ++len;
  // Stage C: store metadata at ReqIdx = CacheIdx * S + slot.
  const size_t r = ReqIdx(idx, slot);
  client_addr_.at(r) = meta.client_addr;
  seq_.at(r) = meta.seq;
  l4_port_.at(r) = meta.l4_port;
  timestamp_.at(r) = meta.enqueued_at;
  trace_id_[r] = meta.trace_id;
  int_id_[r] = meta.int_id;
  ReportQueueState("TryEnqueue", idx);
  return true;
}

std::optional<RequestMeta> RequestTable::TryDequeue(uint32_t idx) {
  ORBIT_CHECK(idx < capacity_);
  uint32_t& len = qlen_.at(idx);
  if (len == 0) return std::nullopt;
  uint32_t& front = front_.at(idx);
  const uint32_t slot = front;
  front = (front + 1) % static_cast<uint32_t>(queue_size_);
  --len;
  const size_t r = ReqIdx(idx, slot);
  RequestMeta meta;
  meta.client_addr = client_addr_.at(r);
  meta.seq = seq_.at(r);
  meta.l4_port = l4_port_.at(r);
  meta.enqueued_at = timestamp_.at(r);
  meta.trace_id = trace_id_[r];
  meta.int_id = int_id_[r];
  ReportQueueState("TryDequeue", idx);
  return meta;
}

std::optional<RequestMeta> RequestTable::Peek(uint32_t idx) const {
  ORBIT_CHECK(idx < capacity_);
  if (qlen_.at(idx) == 0) return std::nullopt;
  const size_t r = ReqIdx(idx, front_.at(idx));
  RequestMeta meta;
  meta.client_addr = client_addr_.at(r);
  meta.seq = seq_.at(r);
  meta.l4_port = l4_port_.at(r);
  meta.enqueued_at = timestamp_.at(r);
  meta.trace_id = trace_id_[r];
  meta.int_id = int_id_[r];
  return meta;
}

uint32_t RequestTable::QueueLength(uint32_t idx) const {
  ORBIT_CHECK(idx < capacity_);
  return qlen_.at(idx);
}

void RequestTable::ClearQueue(uint32_t idx) {
  ORBIT_CHECK(idx < capacity_);
  qlen_.at(idx) = 0;
  front_.at(idx) = 0;
  rear_.at(idx) = 0;
  // Scrub the telemetry sidecars of every slot in idx's queue. The real
  // data-plane arrays may keep stale bytes (they are overwritten before
  // use because slot validity is governed by qlen/front/rear), but the
  // sidecars are read back by correlation tooling keyed on slot index, so
  // a reset must not leave another run's trace/INT ids behind.
  for (uint32_t off = 0; off < queue_size_; ++off) {
    const size_t r = ReqIdx(idx, off);
    trace_id_[r] = 0;
    int_id_[r] = 0;
  }
  ReportQueueState("ClearQueue", idx);
}

void RequestTable::ReportQueueState(const char* where, uint32_t idx) const {
  if (verifier_ == nullptr) return;
  verifier_->OnQueueState(where, idx, qlen_.peek(idx), front_.peek(idx),
                          rear_.peek(idx),
                          static_cast<uint32_t>(queue_size_));
}

void RequestTable::RegisterTelemetry(telemetry::Registry& reg,
                                     const std::string& prefix) const {
  auto add = [&reg, &prefix](const rmt::RegisterArrayBase& arr) {
    reg.AddCounter(prefix + "rmt.s" + std::to_string(arr.stage()) + "." +
                       arr.array_name() + ".accesses",
                   [&arr] { return arr.accesses(); },
                   "RequestTable::RegisterTelemetry(" + prefix + ")");
  };
  add(qlen_);
  add(front_);
  add(rear_);
  add(client_addr_);
  add(seq_);
  add(l4_port_);
  add(timestamp_);
}

}  // namespace orbit::oc
