// The OrbitCache control plane (paper §3.8, Fig. 8).
//
// The controller runs on the switch CPU: it owns the cache-entry set,
// performs periodic cache updates from two popularity sources — the data
// plane's per-entry popularity counters (cached keys) and the storage
// servers' top-k reports (uncached keys) — and fetches values into the
// data plane by sending F-REQs whose F-REP replies the switch clones into
// circulating cache packets. It also implements §3.10's dynamic cache
// sizing from the overflow-request ratio.
//
// Register access (counter reads, lookup-table updates) is a direct call
// into the program, as over PCIe; packet exchange (F-REQ/F-REP, top-k
// reports) flows through a regular switch port the controller is attached
// to, using UDP plus timeout-based retransmission (§3.9).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "kv/partition.h"
#include "orbitcache/program.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::oc {

struct ControllerConfig {
  size_t cache_size = 128;       // current target entry count
  size_t min_cache_size = 32;    // dynamic-sizing floor
  size_t max_cache_size = 1024;  // dynamic-sizing ceiling (≤ program capacity)
  bool dynamic_sizing = false;
  double overflow_threshold = 0.01;  // 1% (paper §3.10)
  size_t sizing_step = 16;

  SimTime update_period = 100 * kMillisecond;
  // Write-back snapshot cadence (0 = off): every period the controller
  // asks the data plane to flush all dirty entries, bounding the loss
  // window of a switch failure (§3.10).
  SimTime snapshot_period = 0;
  SimTime fetch_timeout = 2 * kMillisecond;
  int max_fetch_attempts = 5;
  SimTime cpu_delay = 10 * kMicrosecond;  // PCIe + CPU turnaround

  L4Port orbit_port = 5008;
  L4Port ctrl_port = 7000;  // top-k reports land here
};

class Controller : public sim::Node, public sim::TimerHandler {
 public:
  Controller(sim::Simulator* sim, sim::Network* net, OrbitProgram* program,
             const kv::Partitioner* partitioner,
             std::vector<Addr> server_addrs, Addr self_addr, int self_port,
             const ControllerConfig& config);

  // Installs `keys` as the initial cache (rank order) and fetches their
  // values. Call before starting the workload.
  void Preload(const std::vector<Key>& keys);

  // Starts the periodic update timer.
  void Start();

  void OnPacket(sim::PacketPtr pkt, int port) override;
  std::string name() const override { return "controller"; }
  // Timer demux: the periodic update tick or the rebuild-sweep deadline.
  void OnTimer(uint64_t arg) override;

  // No-cloning ablation hook: schedule a refetch of `key` from `server`.
  void RequestRefetch(const Key& key, const Hash128& hkey, Addr server);

  // Switch-failure recovery (§3.9): after the data plane was wiped, the
  // controller re-installs every entry it tracks and refetches the values —
  // the paper observes this is equivalent to a radical popularity change
  // and completes quickly.
  void RebuildCache();

  // Degraded-mode top-up (fabric leaf crash, PR 10): installs keys beyond
  // the cache_size target — bounded only by data-plane capacity — so a
  // surviving leaf can absorb its rack's next-hottest keys while a sibling
  // leaf is in bypass. Returns how many keys were actually installed.
  // WithdrawKey removes one such extra (or any cached key) when the crashed
  // leaf recovers; returns false if the key was not cached.
  size_t InstallExtra(const std::vector<Key>& keys);
  bool WithdrawKey(const Key& key);

  size_t current_cache_size() const { return config_.cache_size; }
  size_t num_cached() const { return by_key_.size(); }
  bool IsCached(const Key& key) const { return by_key_.count(key) > 0; }

  struct Stats {
    uint64_t updates = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t fetches_sent = 0;
    uint64_t fetch_retries = 0;
    uint64_t fetch_failures = 0;
    uint64_t reports_received = 0;
    uint64_t size_increases = 0;
    uint64_t size_decreases = 0;
    uint64_t snapshot_entries_flushed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct CachedEntry {
    Key key;
    Hash128 hkey;
    uint32_t idx = 0;
    uint64_t last_count = 0;
  };
  struct PendingFetch {
    Key key;
    Hash128 hkey;
    Addr server = kInvalidAddr;
    int attempts = 0;
    SimTime deadline = 0;
  };

  static constexpr uint64_t kTickArg = 0;
  static constexpr uint64_t kRebuildSweepArg = 1;

  void Tick();
  void UpdateCacheEntries();
  void AdjustCacheSize();
  void InsertKey(const Key& key, uint32_t idx);
  void EvictIdx(uint32_t idx);
  void SendFetch(const Key& key, const Hash128& hkey, Addr server);
  void CheckFetchTimeouts();
  void ArmRebuildSweep();
  uint32_t AllocIdx();

  sim::Simulator* sim_;
  sim::Network* net_;
  OrbitProgram* program_;
  const kv::Partitioner* partitioner_;
  std::vector<Addr> server_addrs_;
  Addr self_addr_;
  int self_port_;
  ControllerConfig config_;

  std::unordered_map<uint32_t, CachedEntry> by_idx_;
  std::unordered_map<Key, uint32_t> by_key_;
  std::vector<uint32_t> free_idxs_;
  // Uncached-key popularity accumulated from server reports this period.
  std::unordered_map<Key, uint64_t> reported_;
  std::unordered_map<Key, PendingFetch> pending_fetches_;
  uint32_t fetch_seq_ = 1;
  SimTime last_snapshot_ = 0;
  bool started_ = false;
  bool rebuild_sweep_armed_ = false;

  Stats stats_;
};

}  // namespace orbit::oc
