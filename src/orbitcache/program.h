// The OrbitCache switch data-plane program (paper §3, Fig. 2/4).
//
// Unlike NetCache, no item bytes live in switch memory. Cached key-value
// pairs circulate through the pipeline as "cache packets" (read replies
// looping via the recirculation port); the data plane keeps only small
// per-entry state:
//
//   stage 0   lookup table    hkey (16B hash)  -> CacheIdx
//   stage 1   state table     valid[CacheIdx], write_epoch[CacheIdx]
//   stages 2-4 request table  per-key circular queues of request metadata
//   stage 5   key counters    popularity[CacheIdx], hit/overflow registers
//   stage 6   cloning module  dst addr -> PRE multicast group
//   stage 7   multi-packet extension counters (when enabled)
//   stage 8   L3 forwarding
//
// Ingress behaviour follows Fig. 4:
//   R-REQ hit+valid  -> enqueue metadata, drop the request
//   R-REQ overflow/invalid/miss -> forward to the storage server
//   cache packet (reply from the recirc port): dequeue a pending request
//     and multicast {client port, recirc port} — the PRE clone keeps the
//     item orbiting — or recirculate when no request is pending; dropped
//     when evicted or invalid so readers can never see stale values
//   W-REQ hit -> invalidate, flag, forward; W-REP/F-REP hit -> validate,
//     clone (reply to client/controller + new cache packet)
//   CRN-REQ -> bypass the cache logic entirely
//
// Deviation from the paper (documented in DESIGN.md): a per-entry write
// *epoch* stamped into requests and echoed by servers. The paper's binary
// valid/invalid protocol lets two overlapping writes revalidate an entry
// while an older cache packet still orbits (a stale-read window); with the
// guard, replies from superseded writes do not revalidate and superseded
// cache packets are dropped on their next pass. `epoch_guard=false`
// reproduces the paper's exact protocol (and the race, which a test
// demonstrates).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "orbitcache/request_table.h"
#include "rmt/match_table.h"
#include "rmt/register_array.h"
#include "rmt/switch.h"

namespace orbit::oc {

struct OrbitConfig {
  // Maximum number of cache entries the data-plane arrays support; the
  // controller may use fewer (dynamic cache sizing, §3.10).
  size_t capacity = 1024;
  size_t queue_size = 8;  // S, per-key request queue depth (§4)
  L4Port orbit_port = 5008;

  bool epoch_guard = true;
  // Ablation: serve one request per fetched cache packet and refetch from
  // the server instead of PRE cloning (the §3.5 strawman).
  bool enable_cloning = true;
  // §3.10 extensions.
  bool write_back = false;
  bool multi_packet = false;
};

// Extension FLAG bits live in proto/message.h (kFlagDirty, kFlagFlush).
using proto::kFlagDirty;
using proto::kFlagFlush;

class OrbitProgram : public rmt::SwitchProgram {
 public:
  OrbitProgram(rmt::SwitchDevice* device, const OrbitConfig& config);

  // ---- data plane --------------------------------------------------------
  rmt::IngressResult Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) override;
  std::string program_name() const override { return "orbitcache"; }
  // INT: always-on orbit-count-per-serve and served-value-size histograms.
  void OnIntAttached(telemetry::IntSink& sink) override;

  // ---- control plane (controller-facing) ---------------------------------
  // Binds a cache index to a key hash. Pending requests of a previously
  // bound key are intentionally kept (§3.8: the new cache packet answers
  // them; clients resolve the key mismatch). Returns false when full.
  bool InsertEntry(const Hash128& hkey, uint32_t idx);
  bool EraseEntry(const Hash128& hkey);
  std::optional<uint32_t> FindIdx(const Hash128& hkey) const;
  size_t num_entries() const { return lookup_.size(); }

  // Registers a clone destination: multicast group {port(addr), recirc}.
  void RegisterCloneTarget(Addr addr, int port);
  // Repoints addr's clone destination after a fabric reroute; returns
  // false when no group was ever registered for the address.
  bool UpdateCloneTarget(Addr addr, int port);

  // Write-back snapshotting (§3.10 names snapshot generation as the module
  // write-back needs; FarReach-style). Marks every dirty entry for flush;
  // on each marked entry's next pass its cache packet forks — one copy
  // carries the value to the storage server as a silent flush write, the
  // clone keeps orbiting (now clean). Bounds the data loss window of a
  // switch failure to one snapshot period. Returns how many entries were
  // marked.
  size_t RequestSnapshot();

  // Simulates an ASIC reboot (§3.9): all data-plane state — lookup
  // entries, validity, queues, counters — is wiped, and every circulating
  // cache packet dies on its next pass (its lookup now misses). Clone
  // groups and routes survive, as they would be restored from switch
  // configuration. The controller rebuilds the cache afterwards.
  void ResetDataPlane();

  // Degraded mode (fabric leaf crash, PR 10): while set, Ingress is
  // transparent NoCache forwarding — every packet goes straight to its L3
  // route, nothing is absorbed or recirculated. Callers wipe the data
  // plane (ResetDataPlane) when entering bypass so no cache packet
  // outlives the crash.
  void set_bypass(bool on) { bypass_ = on; }
  bool bypass() const { return bypass_; }

  // Reads and clears the per-entry popularity counters.
  std::vector<uint64_t> ReadAndResetPopularity();
  // Reads and clears the cache-hit / overflow registers (cache sizing).
  struct HitOverflow {
    uint64_t hits = 0;
    uint64_t overflows = 0;
  };
  HitOverflow ReadAndResetHitOverflow();

  // The no-cloning ablation needs a path to trigger a refetch from the
  // switch CPU; the testbed wires this to the controller node.
  using RefetchFn =
      std::function<void(const Key& key, const Hash128& hkey, Addr server)>;
  void SetRefetchFn(RefetchFn fn) { refetch_ = std::move(fn); }

  // Verification layer (src/verify/): observes write-back version mints,
  // data-plane resets, and (via the request table) ring-state invariants.
  // Null disables; never feeds back into forwarding decisions.
  void SetVerifier(verify::Verifier* verifier) {
    verifier_ = verifier;
    request_table_.SetVerifier(verifier);
  }

  // ---- introspection (tests & experiments) -------------------------------
  const OrbitConfig& config() const { return config_; }
  bool IsValid(uint32_t idx) const { return valid_.at(idx) != 0; }
  // Non-counting census of valid entries for the verification layer's
  // orbit check (IsValid's at() would perturb the accesses() telemetry).
  size_t CountValidEntries() const {
    size_t n = 0;
    for (uint32_t i = 0; i < config_.capacity; ++i)
      if (valid_.peek(i) != 0) ++n;
    return n;
  }
  uint32_t EpochOf(uint32_t idx) const { return epoch_.at(idx); }
  RequestTable& request_table() { return request_table_; }

  struct Stats {
    uint64_t read_requests = 0;
    uint64_t read_hits = 0;         // lookup hits on R-REQ
    uint64_t read_misses = 0;
    uint64_t absorbed = 0;          // metadata enqueued, request dropped
    uint64_t overflow_to_server = 0;
    uint64_t invalid_to_server = 0;
    uint64_t served_by_cache = 0;   // cache packets forwarded to clients
    uint64_t cp_drop_evicted = 0;   // cache packet drops: lookup miss
    uint64_t cp_drop_invalid = 0;
    uint64_t cp_drop_epoch = 0;     // epoch-guard drops
    uint64_t writes_cached = 0;
    uint64_t writes_uncached = 0;
    uint64_t validations = 0;       // W-REP/F-REP that revalidated an entry
    uint64_t stale_validations_skipped = 0;
    uint64_t corrections_forwarded = 0;
    uint64_t refetches = 0;         // no-cloning ablation
    uint64_t wb_returned_replies = 0;  // write-back: W-REPs minted by switch
    uint64_t wb_flushes = 0;           // write-back: eviction flushes
    uint64_t wb_snapshot_flushes = 0;  // write-back: snapshot flushes
    uint64_t bypass_forwarded = 0;     // packets passed through while degraded
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Registers orbit.* outcome counters plus per-table / per-stage register
  // access counters ("rmt.s<stage>.<name>.*") against `reg`. Trace spans
  // use the tracer attached to the owning device (SwitchDevice::SetTracer).
  void RegisterTelemetry(telemetry::Registry& reg,
                         const std::string& prefix = "");

 private:
  bool IsOrbit(const sim::Packet& pkt) const {
    return pkt.dport == config_.orbit_port || pkt.sport == config_.orbit_port;
  }

  rmt::IngressResult HandleReadRequest(sim::Packet& pkt);
  rmt::IngressResult HandleWriteRequest(sim::Packet& pkt);
  rmt::IngressResult HandleCachePacket(sim::Packet& pkt,
                                       rmt::SwitchDevice& sw);
  rmt::IngressResult HandleServerReply(sim::Packet& pkt);
  rmt::IngressResult ServeOrRecirculate(sim::Packet& pkt, uint32_t idx,
                                        rmt::SwitchDevice& sw);
  rmt::IngressResult CloneToAddrAndRecirc(sim::Packet& pkt, Addr addr);

  rmt::SwitchDevice* device_;
  OrbitConfig config_;

  rmt::ExactMatchTable<Hash128, uint32_t> lookup_;
  rmt::RegisterArray<uint8_t> valid_;
  rmt::RegisterArray<uint32_t> epoch_;
  RequestTable request_table_;
  rmt::RegisterArray<uint64_t> popularity_;
  rmt::Register<uint64_t> hit_counter_;
  rmt::Register<uint64_t> overflow_counter_;
  rmt::ExactMatchTable<Addr, int> clone_groups_;
  // §3.10 multi-packet extension state.
  rmt::RegisterArray<uint8_t> acked_frags_;
  rmt::RegisterArray<uint8_t> fetched_frags_;
  rmt::RegisterArray<uint8_t> frag_total_;
  // Write-back extension: entry has unflushed data, plus the per-entry
  // value version. The switch is the serialization point for write-back
  // writes, so it must own version assignment: the register is loaded from
  // every fetched/validated value and incremented by each absorbed write.
  rmt::RegisterArray<uint8_t> dirty_;
  rmt::RegisterArray<uint64_t> version_;
  rmt::RegisterArray<uint8_t> flush_pending_;  // snapshot in progress

  int next_group_id_ = 1;
  bool bypass_ = false;
  RefetchFn refetch_;
  Stats stats_;
  verify::Verifier* verifier_ = nullptr;  // not owned; null = no checks

  // INT histogram handles (zero when no sink is attached).
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hist_orbit_ = 0;
  uint32_t int_hist_value_ = 0;
};

}  // namespace orbit::oc
