#include "orbitcache/program.h"

#include "common/check.h"
#include "common/logging.h"
#include "telemetry/counters.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"
#include "verify/verify.h"

namespace orbit::oc {

using rmt::IngressResult;

namespace {
// Program-level trace instant for a sampled packet; no-op (one branch)
// when tracing is off or the packet is unsampled.
inline void Note(rmt::SwitchDevice* dev, const sim::Packet& pkt,
                 const char* name, const char* detail = nullptr) {
  telemetry::Tracer* t = dev->tracer();
  if (t != nullptr && pkt.trace_id != 0)
    t->Instant(dev->trace_track(), pkt.trace_id, name, dev->sim().now(),
               detail);
}
}  // namespace

OrbitProgram::OrbitProgram(rmt::SwitchDevice* device, const OrbitConfig& config)
    : device_(device),
      config_(config),
      lookup_(&device->resources(), "cache_lookup", /*stage=*/0,
              config.capacity, /*key_width_bytes=*/16, /*entry_bytes=*/4),
      valid_(&device->resources(), "state_valid", /*stage=*/1, config.capacity),
      epoch_(&device->resources(), "state_epoch", /*stage=*/1, config.capacity),
      request_table_(&device->resources(), config.capacity, config.queue_size,
                     /*first_stage=*/2),
      popularity_(&device->resources(), "key_popularity", /*stage=*/5,
                  config.capacity),
      hit_counter_(&device->resources(), "cache_hits", /*stage=*/5),
      overflow_counter_(&device->resources(), "overflow_requests",
                        /*stage=*/5),
      clone_groups_(&device->resources(), "clone_mcast", /*stage=*/6,
                    /*capacity=*/256, /*key_width_bytes=*/4),
      acked_frags_(&device->resources(), "mp_acked", /*stage=*/6,
                   config.capacity),
      fetched_frags_(&device->resources(), "mp_fetched", /*stage=*/6,
                     config.capacity),
      frag_total_(&device->resources(), "mp_frag_total", /*stage=*/6,
                  config.capacity, /*initial=*/uint8_t{1}),
      dirty_(&device->resources(), "wb_dirty", /*stage=*/7, config.capacity),
      version_(&device->resources(), "wb_version", /*stage=*/7,
               config.capacity),
      flush_pending_(&device->resources(), "wb_flush_pending", /*stage=*/7,
                     config.capacity) {
  ORBIT_CHECK(device != nullptr);
  ORBIT_CHECK_MSG(config.capacity > 0 && config.queue_size > 0,
                  "cache capacity and queue size must be positive");
  ORBIT_CHECK_MSG(!(config.multi_packet && !config.enable_cloning),
                  "multi-packet items require PRE cloning");
  ORBIT_CHECK_MSG(!(config.write_back && !config.epoch_guard),
                  "write-back mode relies on the epoch guard to retire "
                  "superseded dirty cache packets");
  // L3 forwarding table accounting (entries live in the device route map).
  rmt::ResourceEntry l3;
  l3.name = "ipv4_forward";
  l3.stage = 8;
  l3.match_key_bytes = 4;
  l3.sram_bytes = 4096 * 8;
  l3.tables = 1;
  device->resources().Declare(l3);
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

bool OrbitProgram::InsertEntry(const Hash128& hkey, uint32_t idx) {
  ORBIT_CHECK_MSG(idx < config_.capacity, "cache index out of range");
  if (!lookup_.Insert(hkey, idx)) return false;
  // A fresh entry starts invalid; it becomes valid when its first cache
  // packet (F-REP) arrives. Bumping the epoch retires any packet still
  // orbiting under this index from a previously bound key.
  valid_.at(idx) = 0;
  epoch_.at(idx)++;
  popularity_.at(idx) = 0;
  acked_frags_.at(idx) = 0;
  fetched_frags_.at(idx) = 0;
  frag_total_.at(idx) = 1;
  dirty_.at(idx) = 0;
  version_.at(idx) = 0;
  flush_pending_.at(idx) = 0;
  return true;
}

bool OrbitProgram::EraseEntry(const Hash128& hkey) {
  return lookup_.Erase(hkey);
}

std::optional<uint32_t> OrbitProgram::FindIdx(const Hash128& hkey) const {
  const uint32_t* idx = lookup_.Lookup(hkey);
  if (idx == nullptr) return std::nullopt;
  return *idx;
}

void OrbitProgram::RegisterCloneTarget(Addr addr, int port) {
  if (clone_groups_.Lookup(addr) != nullptr) return;
  const int group = next_group_id_++;
  device_->pre().SetGroup(
      group, {rmt::McastTarget{false, port}, rmt::McastTarget{true, -1}});
  ORBIT_CHECK_MSG(clone_groups_.Insert(addr, group),
                  "clone group table full for addr " << addr);
}

bool OrbitProgram::UpdateCloneTarget(Addr addr, int port) {
  const int* group = clone_groups_.Lookup(addr);
  if (group == nullptr) return false;
  device_->pre().SetGroup(
      *group, {rmt::McastTarget{false, port}, rmt::McastTarget{true, -1}});
  return true;
}

size_t OrbitProgram::RequestSnapshot() {
  size_t marked = 0;
  for (uint32_t i = 0; i < config_.capacity; ++i) {
    if (dirty_.at(i) != 0 && flush_pending_.at(i) == 0) {
      flush_pending_.at(i) = 1;
      ++marked;
    }
  }
  return marked;
}

void OrbitProgram::ResetDataPlane() {
  if (verifier_ != nullptr) verifier_->OnSwitchReset();
  device_->FlushRecirculation();  // a reboot loses every orbiting packet
  lookup_.Clear();
  valid_.Fill(0);
  epoch_.Fill(0);
  popularity_.Fill(0);
  hit_counter_.get() = 0;
  overflow_counter_.get() = 0;
  acked_frags_.Fill(0);
  fetched_frags_.Fill(0);
  frag_total_.Fill(1);
  dirty_.Fill(0);
  version_.Fill(0);
  flush_pending_.Fill(0);
  for (uint32_t i = 0; i < config_.capacity; ++i) request_table_.ClearQueue(i);
}

std::vector<uint64_t> OrbitProgram::ReadAndResetPopularity() {
  std::vector<uint64_t> out(config_.capacity, 0);
  for (size_t i = 0; i < config_.capacity; ++i) {
    out[i] = popularity_.at(i);
    popularity_.at(i) = 0;
  }
  return out;
}

OrbitProgram::HitOverflow OrbitProgram::ReadAndResetHitOverflow() {
  HitOverflow ho{hit_counter_.get(), overflow_counter_.get()};
  hit_counter_.get() = 0;
  overflow_counter_.get() = 0;
  return ho;
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

IngressResult OrbitProgram::Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) {
  if (bypass_) {
    // Degraded mode: transparent pass-through. Orbiting packets from
    // before the crash were flushed at the device's reboot barrier, so
    // everything arriving here is ordinary host traffic.
    ++stats_.bypass_forwarded;
    return IngressResult::ToAddr(pkt.dst);
  }
  // Non-OrbitCache traffic (including TCP top-k reports) takes the plain
  // forwarding path.
  if (!IsOrbit(pkt)) return IngressResult::ToAddr(pkt.dst);

  using proto::Op;
  switch (pkt.msg.op) {
    case Op::kReadReq:
      return HandleReadRequest(pkt);
    case Op::kWriteReq:
      if (pkt.from_recirc) {
        // The orbiting half of a snapshot fork (see HandleCachePacket):
        // the other copy is flushing to the server, so this one continues
        // life as a clean cache packet.
        pkt.msg.op = Op::kReadRep;
        pkt.msg.flag &= static_cast<uint8_t>(~(kFlagFlush | kFlagDirty));
        return HandleCachePacket(pkt, sw);
      }
      return HandleWriteRequest(pkt);
    case Op::kCorrectionReq: {
      // Bypass the cache logic entirely (§3.6).
      ++stats_.corrections_forwarded;
      return IngressResult::ToAddr(pkt.dst);
    }
    case Op::kFetchReq: {
      // Stamp the current epoch so the fetch reply's echo matches.
      if (auto idx = FindIdx(pkt.msg.hkey)) pkt.msg.epoch = epoch_.at(*idx);
      return IngressResult::ToAddr(pkt.dst);
    }
    case Op::kReadRep:
      if (pkt.from_recirc) return HandleCachePacket(pkt, sw);
      return IngressResult::ToAddr(pkt.dst);  // reply for an uncached item
    case Op::kWriteRep:
    case Op::kFetchRep:
      if (pkt.from_recirc) {
        // First recirculation of a freshly cloned reply: it becomes a
        // regular cache packet (§3.3, Fig. 4d).
        pkt.msg.op = Op::kReadRep;
        return HandleCachePacket(pkt, sw);
      }
      return HandleServerReply(pkt);
    case Op::kTopKReport:
      return IngressResult::ToAddr(pkt.dst);
    case Op::kProbe:
    case Op::kProbeAck:
      // Fabric liveness probes are consumed by the device's CPU path and
      // never reach the program; forward defensively if one ever does.
      return IngressResult::ToAddr(pkt.dst);
  }
  return IngressResult::Drop();
}

IngressResult OrbitProgram::HandleReadRequest(sim::Packet& pkt) {
  ++stats_.read_requests;
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.hkey);
  if (idxp == nullptr) {
    ++stats_.read_misses;
    Note(device_, pkt, "lookup_miss");
    return IngressResult::ToAddr(pkt.dst);
  }
  const uint32_t idx = *idxp;
  ++stats_.read_hits;
  popularity_.at(idx)++;
  hit_counter_.get()++;

  if (valid_.at(idx) == 0) {
    // Pending write: read from the server to avoid a stale value.
    ++stats_.invalid_to_server;
    Note(device_, pkt, "lookup_hit", "invalid_bypass");
    return IngressResult::ToAddr(pkt.dst);
  }

  RequestMeta meta;
  meta.client_addr = pkt.src;
  meta.l4_port = pkt.sport;
  meta.seq = pkt.msg.seq;
  meta.enqueued_at = device_->sim().now();
  meta.trace_id = pkt.trace_id;
  meta.int_id = pkt.int_id;
  if (request_table_.TryEnqueue(idx, meta)) {
    // Absorbed: a circulating cache packet will answer it (Fig. 4a). Mark
    // the end reason here so the device-level Drop bookkeeping doesn't
    // misclassify the absorption as an unexplained program drop.
    sim::MarkEnd(pkt, sim::PacketEnd::kAbsorbed);
    ++stats_.absorbed;
    Note(device_, pkt, "lookup_hit", "absorb");
    return IngressResult::Drop();
  }
  overflow_counter_.get()++;
  ++stats_.overflow_to_server;
  Note(device_, pkt, "lookup_hit", "overflow");
  return IngressResult::ToAddr(pkt.dst);
}

IngressResult OrbitProgram::HandleWriteRequest(sim::Packet& pkt) {
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.hkey);
  if (idxp == nullptr) {
    ++stats_.writes_uncached;
    return IngressResult::ToAddr(pkt.dst);
  }
  const uint32_t idx = *idxp;
  ++stats_.writes_cached;
  Note(device_, pkt, "write_cached",
       config_.write_back ? "write_back" : "write_through");

  if (config_.write_back && valid_.at(idx) != 0 &&
      pkt.msg.value.size() <= proto::kMaxPayloadBytes - pkt.msg.key.size()) {
    // Write-back extension (§3.10): the switch absorbs the write. The
    // packet is rewritten into reply form and multicast — the client copy
    // is the W-REP, the recirculating copy is the new (dirty) cache packet
    // carrying the fresh value; the epoch bump retires the old packet. The
    // switch serializes writes for cached keys, so it assigns the version
    // (clients racing on the same key would otherwise regress versions).
    // Writes that arrive before the entry's first fetch completes fall
    // through to write-through: the current version is not yet known.
    const Addr client = pkt.src;
    const Addr server = pkt.dst;
    epoch_.at(idx)++;
    valid_.at(idx) = 1;
    dirty_.at(idx) = 1;
    frag_total_.at(idx) = 1;
    acked_frags_.at(idx) = 0;
    version_.at(idx)++;
    // The switch is a version authority here: report the mint so the
    // shadow oracle accepts replies carrying switch-assigned versions.
    // peek() keeps the register-access telemetry untouched.
    if (verifier_ != nullptr) {
      verifier_->OnCommit(pkt.msg.key,
                          static_cast<uint32_t>(pkt.msg.value.size()),
                          version_.peek(idx));
    }
    pkt.msg.op = proto::Op::kWriteRep;
    pkt.msg.epoch = epoch_.at(idx);
    pkt.msg.flag |= kFlagDirty;
    pkt.msg.cached = 1;
    pkt.msg.value =
        kv::Value::Synthetic(pkt.msg.value.size(), version_.at(idx));
    pkt.src = server;
    pkt.dst = client;
    pkt.dport = pkt.sport;
    pkt.sport = config_.orbit_port;
    ++stats_.wb_returned_replies;
    return CloneToAddrAndRecirc(pkt, client);
  }

  // Write-through (§3.3/§3.7): invalidate so reads cannot observe the old
  // value, flag the request so the server appends the new value, forward.
  valid_.at(idx) = 0;
  epoch_.at(idx)++;
  fetched_frags_.at(idx) = 0;
  pkt.msg.epoch = epoch_.at(idx);
  pkt.msg.flag |= proto::kFlagCachedWrite;
  return IngressResult::ToAddr(pkt.dst);
}

IngressResult OrbitProgram::HandleServerReply(sim::Packet& pkt) {
  // W-REP or F-REP arriving from a front port (not yet a cache packet).
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.hkey);
  const bool carries_value =
      pkt.msg.op == proto::Op::kFetchRep ||
      (pkt.msg.flag & proto::kFlagCachedWrite) != 0;
  if (idxp == nullptr || !carries_value) {
    // Evicted meanwhile, or a plain write reply for an uncached item.
    return IngressResult::ToAddr(pkt.dst);
  }
  const uint32_t idx = *idxp;

  if (config_.epoch_guard && pkt.msg.epoch != epoch_.at(idx)) {
    // A newer write has superseded this reply; do not revalidate with the
    // stale value (this repo's hardening; see header comment).
    ++stats_.stale_validations_skipped;
    return IngressResult::ToAddr(pkt.dst);
  }

  if (config_.multi_packet) {
    frag_total_.at(idx) = pkt.msg.frag_total;
    uint8_t& fetched = fetched_frags_.at(idx);
    if (fetched < pkt.msg.frag_total) ++fetched;
    if (fetched >= pkt.msg.frag_total) {
      if (valid_.at(idx) == 0) ++stats_.validations;
      valid_.at(idx) = 1;
    }
  } else {
    if (valid_.at(idx) != 0 && config_.epoch_guard) {
      // Duplicate fetch/write reply (e.g. a retransmitted F-REQ whose
      // original reply was merely delayed): the entry already has a live
      // cache packet for this epoch, so cloning again would put two
      // packets in orbit for one key. Forward the ack only.
      return IngressResult::ToAddr(pkt.dst);
    }
    valid_.at(idx) = 1;
    ++stats_.validations;
    Note(device_, pkt, "validate");
  }
  dirty_.at(idx) = 0;  // the server now holds this value
  version_.at(idx) = pkt.msg.value.version();

  if (!config_.enable_cloning) {
    // Strawman mode: a fetch reply is consumed as the (single-use) cache
    // packet; a write reply must still reach the client, so the entry
    // waits for the next refetch to regain a packet.
    if (pkt.msg.op == proto::Op::kFetchRep) {
      pkt.msg.op = proto::Op::kReadRep;
      return IngressResult::Recirculate();
    }
    return IngressResult::ToAddr(pkt.dst);
  }
  // Reply to the requester and mint the cache packet in one pass (Fig. 4d).
  return CloneToAddrAndRecirc(pkt, pkt.dst);
}

IngressResult OrbitProgram::HandleCachePacket(sim::Packet& pkt,
                                              rmt::SwitchDevice& sw) {
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.hkey);
  if (idxp == nullptr) {
    if (config_.write_back && (pkt.msg.flag & kFlagDirty) != 0) {
      // Evicted dirty entry: flush the value back to its storage server
      // instead of dropping it. The server applies it silently.
      pkt.msg.op = proto::Op::kWriteReq;
      pkt.msg.flag =
          static_cast<uint8_t>((pkt.msg.flag & ~kFlagDirty) | kFlagFlush);
      pkt.dst = pkt.src;
      pkt.msg.cached = 0;
      ++stats_.wb_flushes;
      return IngressResult::ToAddr(pkt.dst);
    }
    // Controller evicted the key (§3.3): retire the packet.
    ++stats_.cp_drop_evicted;
    return IngressResult::Drop();
  }
  const uint32_t idx = *idxp;
  if (config_.epoch_guard && pkt.msg.epoch != epoch_.at(idx)) {
    ++stats_.cp_drop_epoch;
    return IngressResult::Drop();
  }
  if (config_.write_back && flush_pending_.at(idx) != 0 &&
      dirty_.at(idx) != 0 && valid_.at(idx) != 0) {
    // Snapshot flush: fork the packet — the original carries the value to
    // its storage server as a silent flush write, the clone recirculates
    // and resumes serving as a clean cache packet.
    flush_pending_.at(idx) = 0;
    dirty_.at(idx) = 0;
    const Addr server = pkt.src;
    pkt.msg.op = proto::Op::kWriteReq;
    pkt.msg.flag = static_cast<uint8_t>((pkt.msg.flag & ~kFlagDirty) |
                                        kFlagFlush);
    pkt.msg.cached = 0;
    pkt.dst = server;
    ++stats_.wb_snapshot_flushes;
    return CloneToAddrAndRecirc(pkt, server);
  }
  if (valid_.at(idx) == 0) {
    if (config_.multi_packet && config_.epoch_guard) {
      // Epoch already matched, so this fragment belongs to the value being
      // assembled right now — keep it orbiting until the remaining
      // fragments arrive and validate the entry. (Stale-value packets
      // carry an older epoch and were dropped above.)
      return IngressResult::Recirculate();
    }
    // A write is in progress; drop so no reader can see the stale value
    // (§3.7). The write reply will mint the replacement packet.
    ++stats_.cp_drop_invalid;
    return IngressResult::Drop();
  }
  return ServeOrRecirculate(pkt, idx, sw);
}

IngressResult OrbitProgram::ServeOrRecirculate(sim::Packet& pkt, uint32_t idx,
                                               rmt::SwitchDevice& sw) {
  const uint8_t frags = config_.multi_packet ? frag_total_.at(idx) : 1;

  if (frags <= 1) {
    std::optional<RequestMeta> meta = request_table_.TryDequeue(idx);
    if (!meta) return IngressResult::Recirculate();

    // The serving cache packet adopts the absorbed request's identity: the
    // outgoing reply (and its recirculating clone) now belong to that
    // request's trace.
    pkt.trace_id = meta->trace_id;
    pkt.int_id = meta->int_id;
    if (telemetry::Tracer* t = device_->tracer();
        t != nullptr && meta->trace_id != 0) {
      t->Span(device_->trace_track(), meta->trace_id, "cache_wait",
              meta->enqueued_at, sw.sim().now() - meta->enqueued_at, "serve");
    }

    const Addr server_src = pkt.src;
    pkt.dst = meta->client_addr;
    pkt.dport = meta->l4_port;
    pkt.sport = config_.orbit_port;
    pkt.msg.seq = meta->seq;
    pkt.msg.cached = 1;
    pkt.msg.latency =
        static_cast<uint32_t>(sw.sim().now() - meta->enqueued_at);
    ++stats_.served_by_cache;
    if (int_ != nullptr) {
      int_->Record(int_hist_orbit_, pkt.recirc_count);
      int_->Record(int_hist_value_,
                   static_cast<int64_t>(pkt.msg.value.size()));
    }

    if (!config_.enable_cloning) {
      // Strawman: the packet leaves for the client; ask the CPU to fetch a
      // replacement from the owning server.
      if (refetch_) {
        refetch_(pkt.msg.key, pkt.msg.hkey, server_src);
        ++stats_.refetches;
      }
      return IngressResult::ToAddr(meta->client_addr);
    }
    return CloneToAddrAndRecirc(pkt, meta->client_addr);
  }

  // Multi-packet item (§3.10): fragments take turns visiting the pending
  // request; metadata is removed only when the last fragment has gone out.
  std::optional<RequestMeta> meta = request_table_.Peek(idx);
  if (!meta) return IngressResult::Recirculate();

  pkt.trace_id = meta->trace_id;
  pkt.int_id = meta->int_id;
  pkt.dst = meta->client_addr;
  pkt.dport = meta->l4_port;
  pkt.sport = config_.orbit_port;
  pkt.msg.seq = meta->seq;
  pkt.msg.cached = 1;
  pkt.msg.latency = static_cast<uint32_t>(sw.sim().now() - meta->enqueued_at);

  uint8_t& acked = acked_frags_.at(idx);
  ++acked;
  if (acked >= frags) {
    request_table_.TryDequeue(idx);
    acked = 0;
    ++stats_.served_by_cache;
    if (int_ != nullptr) {
      int_->Record(int_hist_orbit_, pkt.recirc_count);
      int_->Record(int_hist_value_,
                   static_cast<int64_t>(pkt.msg.value.size()));
    }
    if (telemetry::Tracer* t = device_->tracer();
        t != nullptr && meta->trace_id != 0) {
      t->Span(device_->trace_track(), meta->trace_id, "cache_wait",
              meta->enqueued_at, sw.sim().now() - meta->enqueued_at, "serve");
    }
  }
  return CloneToAddrAndRecirc(pkt, meta->client_addr);
}

void OrbitProgram::OnIntAttached(telemetry::IntSink& sink) {
  int_ = &sink;
  // Orbits a cache packet completed before serving this request; shared
  // value-size histogram aggregates with server-served replies.
  int_hist_orbit_ = sink.Hist("orbit.count", "orbits");
  int_hist_value_ = sink.Hist("value.bytes", "bytes");
}

void OrbitProgram::RegisterTelemetry(telemetry::Registry& reg,
                                     const std::string& prefix) {
  const std::string who = "OrbitProgram::RegisterTelemetry(" + prefix + ")";
  // Program outcome counters, read straight from Stats.
  reg.AddCounter(prefix + "orbit.read_requests",
                 [this] { return stats_.read_requests; }, who);
  reg.AddCounter(prefix + "orbit.read_hits", [this] { return stats_.read_hits; }, who);
  reg.AddCounter(prefix + "orbit.read_misses", [this] { return stats_.read_misses; }, who);
  reg.AddCounter(prefix + "orbit.absorbed", [this] { return stats_.absorbed; }, who);
  reg.AddCounter(prefix + "orbit.overflow_to_server",
                 [this] { return stats_.overflow_to_server; }, who);
  reg.AddCounter(prefix + "orbit.invalid_to_server",
                 [this] { return stats_.invalid_to_server; }, who);
  reg.AddCounter(prefix + "orbit.served_by_cache",
                 [this] { return stats_.served_by_cache; }, who);
  reg.AddCounter(prefix + "orbit.cp_drop.evicted",
                 [this] { return stats_.cp_drop_evicted; }, who);
  reg.AddCounter(prefix + "orbit.cp_drop.invalid",
                 [this] { return stats_.cp_drop_invalid; }, who);
  reg.AddCounter(prefix + "orbit.cp_drop.epoch",
                 [this] { return stats_.cp_drop_epoch; }, who);
  reg.AddCounter(prefix + "orbit.writes_cached",
                 [this] { return stats_.writes_cached; }, who);
  reg.AddCounter(prefix + "orbit.writes_uncached",
                 [this] { return stats_.writes_uncached; }, who);
  reg.AddCounter(prefix + "orbit.validations", [this] { return stats_.validations; }, who);
  reg.AddCounter(prefix + "orbit.stale_validations_skipped",
                 [this] { return stats_.stale_validations_skipped; }, who);
  reg.AddCounter(prefix + "orbit.corrections_forwarded",
                 [this] { return stats_.corrections_forwarded; }, who);
  reg.AddCounter(prefix + "orbit.refetches", [this] { return stats_.refetches; }, who);
  reg.AddCounter(prefix + "orbit.bypass_forwarded",
                 [this] { return stats_.bypass_forwarded; }, who);
  if (config_.write_back) {
    reg.AddCounter(prefix + "orbit.wb.returned_replies",
                   [this] { return stats_.wb_returned_replies; }, who);
    reg.AddCounter(prefix + "orbit.wb.flushes", [this] { return stats_.wb_flushes; }, who);
    reg.AddCounter(prefix + "orbit.wb.snapshot_flushes",
                   [this] { return stats_.wb_snapshot_flushes; }, who);
  }
  reg.AddGauge(prefix + "orbit.entries", [this] { return lookup_.size(); }, who);

  // Data-plane structure counters: match-table traffic and per-stage
  // register pressure.
  reg.AddCounter(prefix + "rmt.s0.cache_lookup.lookups",
                 [this] { return lookup_.lookups(); }, who);
  reg.AddCounter(prefix + "rmt.s0.cache_lookup.hits",
                 [this] { return lookup_.hits(); }, who);
  auto add_array = [&reg, &prefix, &who](const rmt::RegisterArrayBase& arr) {
    reg.AddCounter(prefix + "rmt.s" + std::to_string(arr.stage()) + "." +
                       arr.array_name() + ".accesses",
                   [&arr] { return arr.accesses(); }, who);
  };
  add_array(valid_);
  add_array(epoch_);
  request_table_.RegisterTelemetry(reg, prefix);
  add_array(popularity_);
  add_array(hit_counter_);
  add_array(overflow_counter_);
  reg.AddCounter(prefix + "rmt.s6.clone_mcast.lookups",
                 [this] { return clone_groups_.lookups(); }, who);
  reg.AddCounter(prefix + "rmt.s6.clone_mcast.hits",
                 [this] { return clone_groups_.hits(); }, who);
  if (config_.multi_packet) {
    add_array(acked_frags_);
    add_array(fetched_frags_);
    add_array(frag_total_);
  }
  if (config_.write_back) {
    add_array(dirty_);
    add_array(version_);
    add_array(flush_pending_);
  }
}

IngressResult OrbitProgram::CloneToAddrAndRecirc(sim::Packet& pkt, Addr addr) {
  const int* group = clone_groups_.Lookup(addr);
  if (group == nullptr) {
    LOG_WARN("orbitcache: no clone group for addr " << addr
                                                    << "; unicasting");
    return IngressResult::ToAddr(addr);
  }
  (void)pkt;
  return IngressResult::Multicast(*group);
}

}  // namespace orbit::oc
