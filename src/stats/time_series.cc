#include "stats/time_series.h"

#include "common/check.h"

namespace orbit::stats {

TimeSeries::TimeSeries(SimTime bin_width) : bin_width_(bin_width) {
  ORBIT_CHECK(bin_width > 0);
}

void TimeSeries::Add(SimTime t, double amount) {
  ORBIT_CHECK(t >= 0);
  const size_t bin = static_cast<size_t>(t / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
  bins_[bin] += amount;
}

double TimeSeries::RateAt(size_t i) const {
  return bin(i) * static_cast<double>(kSecond) / static_cast<double>(bin_width_);
}

}  // namespace orbit::stats
