#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.h"

namespace orbit::stats {

int64_t Histogram::BucketMid(int bucket) {
  if (bucket < kSubCount) return bucket;
  const int rel = bucket - kSubCount;
  const int group = rel / (kSubCount / 2) + 1;
  const int sub = rel % (kSubCount / 2) + kSubCount / 2;
  const int64_t lo = static_cast<int64_t>(sub) << group;
  const int64_t width = int64_t{1} << group;
  return lo + width / 2;
}

void Histogram::FinalizeFromBuckets() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = buckets_[i];
    if (n == 0) continue;
    const int64_t mid = BucketMid(static_cast<int>(i));
    if (count_ == 0) min_ = mid;
    max_ = mid;
    count_ += n;
    sum_ += static_cast<int64_t>(n) * mid;
  }
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int64_t Histogram::min() const { return min_; }
int64_t Histogram::max() const { return max_; }

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::clamp(BucketMid(static_cast<int>(i)), min_, max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "p50=" << Percentile(0.5) / 1000.0 << "us p99=" << Percentile(0.99) / 1000.0
     << "us mean=" << mean() / 1000.0 << "us n=" << count_;
  return os.str();
}

}  // namespace orbit::stats
