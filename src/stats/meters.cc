#include "stats/meters.h"

#include <algorithm>

namespace orbit::stats {

double ThroughputMeter::RatePerSec() const {
  const SimTime span = window_end_ - window_start_;
  if (span <= 0) return 0;
  return static_cast<double>(count_) * kSecond / static_cast<double>(span);
}

uint64_t LoadTracker::total() const {
  uint64_t sum = 0;
  for (uint64_t c : counts_) sum += c;
  return sum;
}

uint64_t LoadTracker::max_load() const {
  return counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
}

uint64_t LoadTracker::min_load() const {
  return counts_.empty() ? 0 : *std::min_element(counts_.begin(), counts_.end());
}

double LoadTracker::BalancingEfficiency() const {
  const uint64_t mx = max_load();
  if (mx == 0) return 1.0;
  return static_cast<double>(min_load()) / static_cast<double>(mx);
}

}  // namespace orbit::stats
