// Log-linear latency histogram (HdrHistogram-style).
//
// Values bucket into 64 linear sub-buckets per power-of-two group, giving
// ≤1.6% relative quantile error over the full nanosecond→second range with
// a few KB of memory, so recording is cheap enough for millions of samples.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace orbit::stats {

class Histogram {
 public:
  // Inline and branch-light: the INT layer records into these for every
  // packet on the link hot path, unsampled.
  void Record(int64_t value) {
    ++buckets_[static_cast<size_t>(BucketFor(value))];
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = value < min_ ? value : min_;
      max_ = value > max_ ? value : max_;
    }
    ++count_;
    sum_ += value;
  }
  // Bare-minimum record for per-packet always-on use (the INT layer):
  // one bucket increment, nothing else. count/min/max/mean must be
  // reconstructed with FinalizeFromBuckets before reading — they come
  // back at bucket resolution (≤1.6%) instead of exact, the HdrHistogram
  // trade for a hot path this tight.
  void RecordFast(int64_t value) {
    ++buckets_[static_cast<size_t>(BucketFor(value))];
  }

  // Rebuilds count_/sum_/min_/max_ from the buckets (mid-point values).
  // Call once after a RecordFast-only population, before any reader.
  void FinalizeFromBuckets();

  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const { return count_ == 0 ? 0 : static_cast<double>(sum_) / count_; }
  // q in [0, 1]; returns the representative value of the quantile bucket.
  int64_t Percentile(double q) const;
  int64_t Median() const { return Percentile(0.50); }
  int64_t P99() const { return Percentile(0.99); }

  // "p50=12.3us p99=45.6us n=123456"
  std::string Summary() const;

 private:
  static constexpr int kSubBits = 6;          // 64 sub-buckets per group
  static constexpr int kSubCount = 1 << kSubBits;
  // Values saturate at 2^40 (18 simulated minutes in ns, 1 TB in bytes):
  // nothing the simulator measures gets near it, and the smaller bucket
  // array (~9KB vs ~30KB) keeps a hot histogram pair L1-resident on the
  // per-packet link path. max() stays exact either way.
  static constexpr int kMaxBits = 40;
  static constexpr int kGroups = kMaxBits - kSubBits;
  // Folded layout: row 0 is kSubCount wide, every later group only uses
  // the upper half of its sub-range.
  static constexpr int kBuckets = kSubCount + kGroups * (kSubCount / 2);

  // Always lands in [0, kBuckets): negative values clamp to 0, values at
  // or above 2^kMaxBits clamp to the top bucket, so no range check on the
  // hot path.
  static int BucketFor(int64_t v) {
    uint64_t u = static_cast<uint64_t>(v < 0 ? 0 : v);
    if (u >> kMaxBits) u = (uint64_t{1} << kMaxBits) - 1;
    if (u < kSubCount) return static_cast<int>(u);
    const int group = std::bit_width(u) - kSubBits;  // >= 1
    const int sub = static_cast<int>(u >> group) - kSubCount / 2;
    // Groups >= 1 use only the upper half of their sub-range (values with
    // the top bit of the sub-index set), so fold into 32-wide rows after
    // row 0.
    return kSubCount + (group - 1) * (kSubCount / 2) + sub;
  }
  static int64_t BucketMid(int bucket);

  // Inline, not heap-allocated: Record reaches a bucket with one indexed
  // access instead of chasing the vector's data pointer first.
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace orbit::stats
