// Log-linear latency histogram (HdrHistogram-style).
//
// Values bucket into 64 linear sub-buckets per power-of-two group, giving
// ≤1.6% relative quantile error over the full nanosecond→second range with
// a few KB of memory, so recording is cheap enough for millions of samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace orbit::stats {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const { return count_ == 0 ? 0 : static_cast<double>(sum_) / count_; }
  // q in [0, 1]; returns the representative value of the quantile bucket.
  int64_t Percentile(double q) const;
  int64_t Median() const { return Percentile(0.50); }
  int64_t P99() const { return Percentile(0.99); }

  // "p50=12.3us p99=45.6us n=123456"
  std::string Summary() const;

 private:
  static constexpr int kSubBits = 6;          // 64 sub-buckets per group
  static constexpr int kSubCount = 1 << kSubBits;
  static constexpr int kGroups = 64 - kSubBits;

  static int BucketFor(int64_t v);
  static int64_t BucketMid(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace orbit::stats
