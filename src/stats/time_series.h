// Fixed-bin time series for the dynamic-workload timeline (Fig. 18).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace orbit::stats {

class TimeSeries {
 public:
  // One bin per `bin_width` of simulated time starting at t = 0.
  explicit TimeSeries(SimTime bin_width);

  void Add(SimTime t, double amount = 1.0);

  size_t num_bins() const { return bins_.size(); }
  double bin(size_t i) const { return bins_.at(i); }
  SimTime bin_width() const { return bin_width_; }
  // Bin value normalized to a per-second rate.
  double RateAt(size_t i) const;

  const std::vector<double>& bins() const { return bins_; }

 private:
  SimTime bin_width_;
  std::vector<double> bins_;
};

}  // namespace orbit::stats
