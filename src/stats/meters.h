// Throughput and load accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace orbit::stats {

// Counts events over an explicit measurement window; the testbed opens the
// window after warmup.
class ThroughputMeter {
 public:
  void Open(SimTime at) {
    window_start_ = at;
    count_ = 0;
    open_ = true;
  }
  void Close(SimTime at) {
    window_end_ = at;
    open_ = false;
  }
  void Add(uint64_t n = 1) {
    if (open_) count_ += n;
  }

  uint64_t count() const { return count_; }
  // Events per second over the (closed) window.
  double RatePerSec() const;

 private:
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  uint64_t count_ = 0;
  bool open_ = false;
};

// Per-server request counts; balancing efficiency is the paper's Fig. 13(b)
// metric: min server throughput / max server throughput.
class LoadTracker {
 public:
  explicit LoadTracker(size_t num_servers) : counts_(num_servers, 0) {}

  void Add(size_t server, uint64_t n = 1) { counts_.at(server) += n; }
  void Reset() { counts_.assign(counts_.size(), 0); }

  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total() const;
  uint64_t max_load() const;
  uint64_t min_load() const;
  double BalancingEfficiency() const;

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace orbit::stats
