// The skewed key-value request source every testbed client samples from
// (paper §5.1): Zipfian ranks over a deterministic key space, hash
// partitioning across servers, per-key value sizing, optional dynamic
// popularity (Fig. 18) and write mixing. Shared by the single-switch
// testbed and the leaf–spine fabric so both topologies see the identical
// request stream for a given config.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/client.h"
#include "kv/partition.h"
#include "testbed/constants.h"
#include "testbed/testbed.h"
#include "workload/dynamic.h"
#include "workload/keyspace.h"
#include "workload/zipf.h"

namespace orbit::testbed {

// Precomputed hot-rank entries: Zipfian traffic concentrates on the first
// few thousand ranks, so memoizing them removes key formatting and hashing
// from the request hot path.
inline constexpr uint64_t kMemoRanks = 4096;

class ZipfWorkloadSource : public app::WorkloadSource {
 public:
  ZipfWorkloadSource(const TestbedConfig& config,
                     std::function<uint32_t(const Key&)> size_fn,
                     std::shared_ptr<wl::DynamicPopularity> dynamic);

  Request Next(Rng& rng) override;

  const wl::KeySpace& keyspace() const { return keyspace_; }
  const kv::Partitioner& partitioner() const { return partitioner_; }

 private:
  Request BuildEntry(uint64_t rank) const;

  wl::KeySpace keyspace_;
  wl::ZipfGenerator zipf_;
  kv::Partitioner partitioner_;
  std::function<uint32_t(const Key&)> size_fn_;
  std::shared_ptr<wl::DynamicPopularity> dynamic_;
  double write_ratio_;
  std::vector<Request> memo_;
};

}  // namespace orbit::testbed
