// Experiment assembly mirroring the paper's testbed (§5.1): client nodes
// and rate-limited emulated storage servers around one programmable ToR
// switch running NoCache, NetCache, or OrbitCache, driven by a skewed
// key-value workload. One call builds the topology, preloads the cache,
// warms up, measures, and returns every quantity the evaluation figures
// plot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "rmt/resources.h"
#include "stats/histogram.h"
#include "stats/time_series.h"
#include "workload/twitter.h"
#include "workload/value_dist.h"

namespace orbit::telemetry {
struct RunCapture;
}  // namespace orbit::telemetry

namespace orbit::testbed {

enum class Scheme { kNoCache, kNetCache, kOrbitCache };
const char* SchemeName(Scheme scheme);

// The run configuration, grouped into sections by concern. JSON/fingerprint
// serialization stays flat (testbed/serialize.h) so result files are stable
// across this grouping.
struct TestbedConfig {
  Scheme scheme = Scheme::kOrbitCache;

  // Topology and fabric (§5.1: 4 client nodes, 4 storage nodes emulating 8
  // servers each; we attach every emulated server through its own switch
  // port).
  struct Topology {
    int num_clients = 4;
    int num_servers = 32;
    double server_rate_rps = 100'000;    // per emulated server; 0 = unlimited
    double client_rate_rps = 6'000'000;  // aggregate open-loop Tx
    rmt::AsicConfig asic;
    double client_link_gbps = 100.0;
    double server_link_gbps = 25.0;
    SimTime link_delay = 500;  // ns one way

    // Leaf–spine scale-out (src/fabric/). Disabled by default: num_racks=0
    // keeps the single-ToR §5.1 testbed, and a disabled fabric section is
    // omitted from ConfigJson so existing fingerprints stay byte-identical.
    // When enabled, num_servers must divide evenly into num_racks blocks;
    // rack r owns servers [r*per_rack, (r+1)*per_rack) and its leaf caches
    // only that key partition. Clients round-robin across racks, so most
    // traffic crosses the spine.
    struct Fabric {
      int num_racks = 0;           // 0 = single-switch testbed
      int num_spines = 1;
      double uplink_gbps = 100.0;  // each leaf<->spine link
      SimTime uplink_delay = 500;  // ns one way
      // Probe-based uplink liveness + rerouting (fabric/failover.h).
      // Opt-in: probes share uplink bandwidth with data, so enabling it
      // changes results; the knobs are serialized only when failover is
      // on, keeping pre-failover fingerprints byte-identical.
      bool failover = false;
      SimTime probe_interval = 100 * kMicrosecond;
      SimTime detection_window = 500 * kMicrosecond;
      bool enabled() const { return num_racks > 0; }
    };
    Fabric fabric;
  };
  Topology topo;

  // What the clients ask for.
  struct Workload {
    uint64_t num_keys = 10'000'000;
    uint32_t key_size = 16;
    double zipf_theta = 0.99;  // 0 = uniform
    wl::ValueDist value_dist = wl::ValueDist::PaperDefault();
    double write_ratio = 0.0;
    // Optional Fig.-14 production profile; overrides value sizing with the
    // profile's cacheability/size model and sets the write ratio.
    const wl::TwitterProfile* twitter = nullptr;
    // Dynamic popularity (Fig. 18's hot-in pattern).
    bool hot_in = false;
    SimTime hot_in_period = 10 * kSecond;
    uint64_t hot_in_count = 128;
  };
  Workload workload;

  // Cache sizing and scheme options.
  struct CacheTuning {
    bool preload = true;
    size_t orbit_cache_size = 128;  // preloaded hottest items (§5.1)
    size_t orbit_capacity = 1024;   // data-plane array capacity
    size_t orbit_queue_size = 8;    // request-table depth S
    size_t netcache_size = 10'000;  // preloaded hottest items for NetCache
    // §2.2 strawman: NetCache reads values up to 1024B by recirculating the
    // request once per 64B slice (rationale bench).
    bool netcache_recirc_read = false;
    // OrbitCache options / extensions.
    bool epoch_guard = true;
    bool enable_cloning = true;
    bool write_back = false;
    bool multi_packet = false;
    bool dynamic_sizing = false;
  };
  CacheTuning cache;

  // Control-plane cadence. When run_cache_updates is false the preloaded
  // cache stays fixed (the paper's static experiments).
  struct ControlPlane {
    bool run_cache_updates = false;
    SimTime update_period = 100 * kMillisecond;
    SimTime report_period = 100 * kMillisecond;
  };
  ControlPlane control;

  // Client-side retry budget (§3.9): how many times a client retransmits a
  // request (same SEQ, exponential backoff) before giving up. 0 keeps the
  // timeout-only behavior of the static figures.
  struct ClientPolicy {
    int max_retries = 0;
    SimTime request_timeout = 20 * kMillisecond;
  };
  ClientPolicy client;

  // Scripted fault injection (server crash/restart, switch reset,
  // controller-channel loss, bursty server-link loss). Default: no faults.
  fault::FaultSchedule fault;

  // Timing.
  SimTime warmup = 100 * kMillisecond;
  SimTime duration = 400 * kMillisecond;
  uint64_t seed = 42;

  // Timeline sampling (0 disables; Fig. 18 uses 1s bins).
  SimTime timeline_bin = 0;

  // Telemetry (observability only). With `capture` null — the default —
  // no tracer or registry is built and results are byte-identical to an
  // uninstrumented build. Excluded from ConfigJson/ConfigFingerprint:
  // instrumentation must never change a run's identity.
  struct Telemetry {
    // Caller-owned sink; setting it enables instrumentation for this run.
    telemetry::RunCapture* capture = nullptr;
    // Trace every Nth request per client (0 disables span collection).
    uint32_t trace_sample = 64;
    // Counter snapshot period; 0 = only the final end-of-run snapshot.
    SimTime snapshot_interval = 0;
    // INT postcards: stamp per-hop records on every Nth request per client
    // (0 disables postcard collection).
    uint32_t int_sample = 0;
    // Always-on per-hop-class/per-link histograms (unsampled).
    bool histograms = false;
    // Per-component event rings; dumped on faults, check failures, or —
    // with flight_end_dump — unconditionally at end of run.
    bool flight_recorder = false;
    bool flight_end_dump = false;
  };
  Telemetry telemetry;

  // Verification (src/verify/): shadow KV oracle, packet-conservation
  // accounting, and switch invariant checks. Observational only — a run
  // with verify enabled produces byte-identical metrics to the same run
  // without it — and, like Telemetry, excluded from ConfigJson /
  // ConfigFingerprint so enabling it never changes a run's identity.
  struct Verify {
    bool enabled = false;
    // Throw CheckFailure after metrics collection when violations were
    // found (the harness records it as the point's error). When false the
    // violations only populate TestbedResult::verify_*.
    bool fail_fast = true;
  };
  Verify verify;

  // Checks cross-field invariants; returns one actionable message per
  // violation (empty = valid). RunTestbed() refuses invalid configs.
  std::vector<std::string> Validate() const;
};

struct TestbedResult {
  // Throughput (measured over the window, replies at clients).
  double rx_rps = 0;
  double tx_rps = 0;
  double cache_served_rps = 0;   // served by the switch
  double server_served_rps = 0;

  // Load balance.
  std::vector<uint64_t> server_loads;  // per emulated server, in window
  double balancing_efficiency = 0;     // min/max server throughput

  // Latency (merged across clients, window only).
  stats::Histogram read_cached_latency;
  stats::Histogram read_server_latency;
  stats::Histogram write_latency;
  stats::Histogram switch_resident;  // header Latency field (cached reads)

  // Cache behaviour within the window.
  uint64_t lookup_hits = 0;
  uint64_t absorbed = 0;
  uint64_t overflows = 0;
  double overflow_ratio = 0;  // overflow / lookup hits
  uint64_t recirc_drops = 0;
  uint64_t cache_packets_in_flight = 0;  // gauge at end
  // Cache-packet retirement reasons (whole run; OrbitCache only).
  uint64_t cp_drop_evicted = 0;
  uint64_t cp_drop_invalid = 0;
  uint64_t cp_drop_epoch = 0;
  uint64_t validations = 0;

  // Client-side protocol events (whole run).
  uint64_t collisions = 0;
  uint64_t stale_reads = 0;
  uint64_t timeouts = 0;         // deadline expiries (including retries)
  uint64_t retransmissions = 0;
  // Requests abandoned after the full retry budget (max_retries > 0) was
  // spent. Zero in any fault-free run — the CI quick suite asserts it.
  uint64_t retries_exhausted = 0;
  uint64_t inflight_at_stop = 0; // pending when the run ended
  uint64_t server_drops = 0;

  // Fault injection (whole run; 0 when no schedule configured).
  uint64_t faults_injected = 0;
  // Fabric failover (whole run; 0 on single-switch or failover-off runs).
  uint64_t reroutes = 0;            // next-hop rewrites applied to leaves
  uint64_t blackholed_packets = 0;  // discarded at down uplinks

  // Cache state at the end.
  size_t cache_entries = 0;
  size_t controller_cache_size = 0;  // dynamic-sizing outcome

  // Timelines (empty when timeline_bin == 0).
  std::vector<double> throughput_timeline;      // replies/s per bin
  std::vector<double> overflow_ratio_timeline;  // per bin

  std::string resource_report;
  // Structured RMT usage (same numbers the report prints) so the harness
  // can emit them as metrics without parsing text.
  int rmt_stages_used = 0;
  uint64_t rmt_sram_bytes_used = 0;
  double rmt_sram_fraction = 0;
  int rmt_alus_used = 0;
  uint64_t events_processed = 0;

  // Verification outcome (populated only when config.verify.enabled; never
  // serialized into result metrics, so --verify stays results-neutral).
  uint64_t verify_violations = 0;
  uint64_t verify_replies_checked = 0;
  uint64_t verify_allowed_stale = 0;
  std::string verify_report;
};

TestbedResult RunTestbed(const TestbedConfig& config);

// The paper's throughput metric is *saturated* throughput: the highest
// offered load the system sustains while still answering (nearly) every
// request — under skew the hottest storage server is the binding
// constraint. This helper probes at a low rate, predicts the saturating Tx
// from the measured per-server load shares (loads scale linearly below
// saturation), then verifies and corrects with full runs until the loss
// rate is within tolerance.
struct SaturationResult {
  TestbedResult result;   // measurement at the saturating load
  double sat_tx_rps = 0;  // offered load used
  int runs = 0;           // total testbed executions
};
SaturationResult FindSaturation(TestbedConfig config,
                                double loss_tolerance = 0.03,
                                int max_corrections = 2);

// The per-key value-size function a config implies (shared by servers,
// clients, preload filtering, and tests).
std::function<uint32_t(const Key&)> MakeValueSizeFn(const TestbedConfig& config);

// Whether NetCache can cache this key under `config` (key width, value
// size, and — in twitter mode — the profile's cacheability coin).
bool NetCacheCanCache(const TestbedConfig& config, const Key& key);

}  // namespace orbit::testbed
