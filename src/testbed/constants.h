// Address/port plan shared by the single-switch testbed (testbed.cc) and
// the leaf–spine fabric (src/fabric/). Keeping one plan means a workload
// built for either topology targets the same server addresses, and the
// fabric's extra controllers slot in above kControllerBase without
// colliding with hosts.
#pragma once

#include "common/types.h"

namespace orbit::testbed {

inline constexpr L4Port kOrbitPort = 5008;
inline constexpr L4Port kCtrlPort = 7000;
inline constexpr Addr kClientBase = 1000;
inline constexpr Addr kServerBase = 2000;
// Single-switch runs use kControllerBase itself; fabric runs give rack r's
// controller kControllerBase + r.
inline constexpr Addr kControllerBase = 3000;

}  // namespace orbit::testbed
