// JSON serialization for testbed configs and results.
//
// Two consumers: the experiment harness turns a TestbedResult into the
// metrics object of one JSON-lines record, and the parallel runner's
// saturation cache keys memoized FindSaturation calls on a config
// fingerprint. Both require determinism — every field that can change a
// simulation's outcome appears in the fingerprint, and nothing
// wall-clock-dependent appears in the metrics.
#pragma once

#include <string>

#include "harness/json.h"
#include "testbed/testbed.h"

namespace orbit::testbed {

// Every outcome-affecting TestbedConfig field as an ordered JSON object.
// The twitter profile pointer serializes as the profile id; the value
// distribution as its (min, max, mean) signature.
harness::JsonValue ConfigJson(const TestbedConfig& config);

// Canonical string identity of a config: two configs with equal
// fingerprints produce identical simulations.
std::string ConfigFingerprint(const TestbedConfig& config);

struct ResultMetricsOptions {
  bool include_timelines = false;
  bool include_server_loads = false;
};

// Flattens a TestbedResult into the harness metrics object: rates in
// MRPS, latency percentiles in microseconds, ratios, protocol counters,
// cache state, and RMT resource usage.
harness::JsonValue ResultMetrics(const TestbedResult& result,
                                 const ResultMetricsOptions& options = {});

}  // namespace orbit::testbed
