#include "testbed/workload_source.h"

#include <algorithm>

namespace orbit::testbed {

ZipfWorkloadSource::ZipfWorkloadSource(
    const TestbedConfig& config, std::function<uint32_t(const Key&)> size_fn,
    std::shared_ptr<wl::DynamicPopularity> dynamic)
    : keyspace_(config.workload.num_keys, config.workload.key_size,
                config.seed),
      zipf_(config.workload.num_keys, config.workload.zipf_theta),
      partitioner_(static_cast<uint32_t>(config.topo.num_servers),
                   config.seed),
      size_fn_(std::move(size_fn)),
      dynamic_(std::move(dynamic)),
      write_ratio_(config.workload.twitter != nullptr
                       ? config.workload.twitter->write_ratio
                       : config.workload.write_ratio) {
  const uint64_t memo =
      std::min<uint64_t>(kMemoRanks, config.workload.num_keys);
  memo_.reserve(memo);
  for (uint64_t r = 0; r < memo; ++r) memo_.push_back(BuildEntry(r));
}

app::WorkloadSource::Request ZipfWorkloadSource::Next(Rng& rng) {
  uint64_t rank = zipf_.Sample(rng);
  if (dynamic_ != nullptr) rank = dynamic_->Remap(rank);
  Request req = rank < memo_.size() ? memo_[rank] : BuildEntry(rank);
  req.is_write = write_ratio_ > 0 && rng.Bernoulli(write_ratio_);
  return req;
}

app::WorkloadSource::Request ZipfWorkloadSource::BuildEntry(
    uint64_t rank) const {
  Request req;
  req.key = keyspace_.KeyAtRank(rank);
  req.hkey = HashKey128(req.key);
  req.server = kServerBase + partitioner_.ServerFor(req.key);
  req.value_size = size_fn_(req.key);
  return req;
}

}  // namespace orbit::testbed
