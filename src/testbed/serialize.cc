#include "testbed/serialize.h"

#include <algorithm>

namespace orbit::testbed {

using harness::JsonValue;

JsonValue ConfigJson(const TestbedConfig& config) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("scheme", SchemeName(config.scheme));
  out.Set("num_clients", config.topo.num_clients);
  out.Set("num_servers", config.topo.num_servers);
  out.Set("server_rate_rps", config.topo.server_rate_rps);
  out.Set("client_rate_rps", config.topo.client_rate_rps);
  out.Set("num_keys", config.workload.num_keys);
  out.Set("key_size", static_cast<int64_t>(config.workload.key_size));
  out.Set("zipf_theta", config.workload.zipf_theta);
  {
    JsonValue vd = JsonValue::MakeObject();
    vd.Set("min", static_cast<int64_t>(config.workload.value_dist.min_size()));
    vd.Set("max", static_cast<int64_t>(config.workload.value_dist.max_size()));
    vd.Set("mean", config.workload.value_dist.mean_size());
    out.Set("value_dist", std::move(vd));
  }
  out.Set("write_ratio", config.workload.write_ratio);
  out.Set("twitter", config.workload.twitter != nullptr ? JsonValue(config.workload.twitter->id)
                                               : JsonValue());
  out.Set("preload", config.cache.preload);
  out.Set("orbit_cache_size", static_cast<int64_t>(config.cache.orbit_cache_size));
  out.Set("orbit_capacity", static_cast<int64_t>(config.cache.orbit_capacity));
  out.Set("orbit_queue_size", static_cast<int64_t>(config.cache.orbit_queue_size));
  out.Set("netcache_size", static_cast<int64_t>(config.cache.netcache_size));
  out.Set("netcache_recirc_read", config.cache.netcache_recirc_read);
  out.Set("epoch_guard", config.cache.epoch_guard);
  out.Set("enable_cloning", config.cache.enable_cloning);
  out.Set("write_back", config.cache.write_back);
  out.Set("multi_packet", config.cache.multi_packet);
  out.Set("dynamic_sizing", config.cache.dynamic_sizing);
  out.Set("run_cache_updates", config.control.run_cache_updates);
  out.Set("update_period", config.control.update_period);
  out.Set("report_period", config.control.report_period);
  out.Set("hot_in", config.workload.hot_in);
  out.Set("hot_in_period", config.workload.hot_in_period);
  out.Set("hot_in_count", config.workload.hot_in_count);
  out.Set("client_max_retries", config.client.max_retries);
  out.Set("client_request_timeout", config.client.request_timeout);
  {
    // Fault schedule: outcome-affecting, so it must feed the fingerprint.
    // Serialized compactly — an empty schedule is the common case.
    JsonValue ft = JsonValue::MakeObject();
    JsonValue events = JsonValue::MakeArray();
    for (const auto& ev : config.fault.events) {
      JsonValue e = JsonValue::MakeObject();
      e.Set("at", ev.at);
      e.Set("kind", fault::FaultKindName(ev.kind));
      if (ev.server >= 0) e.Set("server", ev.server);
      // Fabric targets: emitted only when set, so pre-fabric schedules
      // keep their exact serialization (and fingerprints).
      if (ev.rack >= 0) e.Set("rack", ev.rack);
      if (ev.spine >= 0) e.Set("spine", ev.spine);
      if (ev.dir >= 0) e.Set("dir", ev.dir);
      if (ev.degrade_loss > 0) e.Set("degrade_loss", ev.degrade_loss);
      if (ev.degrade_latency > 0) e.Set("degrade_latency", ev.degrade_latency);
      events.Append(std::move(e));
    }
    ft.Set("events", std::move(events));
    ft.Set("rebuild_delay", config.fault.switch_rebuild_delay);
    const auto burst_json = [](const sim::GilbertElliottConfig& ge) {
      JsonValue burst = JsonValue::MakeObject();
      burst.Set("p_enter_bad", ge.p_enter_bad);
      burst.Set("p_exit_bad", ge.p_exit_bad);
      burst.Set("loss_good", ge.loss_good);
      burst.Set("loss_bad", ge.loss_bad);
      return burst;
    };
    if (config.fault.server_burst_loss.enabled())
      ft.Set("server_burst_loss", burst_json(config.fault.server_burst_loss));
    if (config.fault.fabric_burst_loss.enabled())
      ft.Set("fabric_burst_loss", burst_json(config.fault.fabric_burst_loss));
    out.Set("fault", std::move(ft));
  }
  out.Set("warmup", config.warmup);
  out.Set("duration", config.duration);
  out.Set("seed", std::to_string(config.seed));
  out.Set("timeline_bin", config.timeline_bin);
  {
    JsonValue asic = JsonValue::MakeObject();
    asic.Set("num_stages", config.topo.asic.num_stages);
    asic.Set("max_match_key_bytes",
             static_cast<int64_t>(config.topo.asic.max_match_key_bytes));
    asic.Set("alu_bytes_per_stage",
             static_cast<int64_t>(config.topo.asic.alu_bytes_per_stage));
    asic.Set("sram_bytes_per_stage",
             static_cast<int64_t>(config.topo.asic.sram_bytes_per_stage));
    asic.Set("alus_per_stage", config.topo.asic.alus_per_stage);
    asic.Set("tables_per_stage", config.topo.asic.tables_per_stage);
    asic.Set("pipeline_latency_ns", config.topo.asic.pipeline_latency_ns);
    asic.Set("packet_slot_ns", config.topo.asic.packet_slot_ns);
    asic.Set("port_rate_gbps", config.topo.asic.port_rate_gbps);
    asic.Set("recirc_rate_gbps", config.topo.asic.recirc_rate_gbps);
    asic.Set("recirc_loop_ns", config.topo.asic.recirc_loop_ns);
    asic.Set("recirc_queue_bytes",
             static_cast<int64_t>(config.topo.asic.recirc_queue_bytes));
    out.Set("asic", std::move(asic));
  }
  out.Set("client_link_gbps", config.topo.client_link_gbps);
  out.Set("server_link_gbps", config.topo.server_link_gbps);
  out.Set("link_delay", config.topo.link_delay);
  if (config.topo.fabric.enabled()) {
    // Leaf–spine section: outcome-affecting, so it feeds the fingerprint —
    // but only when enabled, so every pre-fabric config keeps its exact
    // serialization (and the quick-suite baseline its bytes).
    JsonValue fb = JsonValue::MakeObject();
    fb.Set("num_racks", config.topo.fabric.num_racks);
    fb.Set("num_spines", config.topo.fabric.num_spines);
    fb.Set("uplink_gbps", config.topo.fabric.uplink_gbps);
    fb.Set("uplink_delay", config.topo.fabric.uplink_delay);
    if (config.topo.fabric.failover) {
      // Probes share uplink bandwidth (outcome-affecting), so failover
      // feeds the fingerprint — but only when on, keeping every
      // pre-failover fabric config byte-identical.
      JsonValue fo = JsonValue::MakeObject();
      fo.Set("probe_interval", config.topo.fabric.probe_interval);
      fo.Set("detection_window", config.topo.fabric.detection_window);
      fb.Set("failover", std::move(fo));
    }
    out.Set("fabric", std::move(fb));
  }
  return out;
}

std::string ConfigFingerprint(const TestbedConfig& config) {
  return ConfigJson(config).Dump();
}

namespace {

// Percentile summary of one latency histogram, in microseconds.
JsonValue LatencyJson(const stats::Histogram& h) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("n", h.count());
  out.Set("p50_us", h.count() > 0 ? h.Median() / 1e3 : 0.0);
  out.Set("p99_us", h.count() > 0 ? h.P99() / 1e3 : 0.0);
  out.Set("mean_us", h.mean() / 1e3);
  return out;
}

}  // namespace

JsonValue ResultMetrics(const TestbedResult& result,
                        const ResultMetricsOptions& options) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("rx_mrps", result.rx_rps / 1e6);
  out.Set("tx_mrps", result.tx_rps / 1e6);
  out.Set("cache_mrps", result.cache_served_rps / 1e6);
  out.Set("server_mrps", result.server_served_rps / 1e6);
  out.Set("loss", result.tx_rps > 0
                      ? std::max(0.0, 1.0 - result.rx_rps / result.tx_rps)
                      : 0.0);
  out.Set("balancing_efficiency", result.balancing_efficiency);

  {
    stats::Histogram reads = result.read_cached_latency;
    reads.Merge(result.read_server_latency);
    out.Set("read_p50_us", reads.count() > 0 ? reads.Median() / 1e3 : 0.0);
    out.Set("read_p99_us", reads.count() > 0 ? reads.P99() / 1e3 : 0.0);
  }
  out.Set("read_cached", LatencyJson(result.read_cached_latency));
  out.Set("read_server", LatencyJson(result.read_server_latency));
  out.Set("write", LatencyJson(result.write_latency));
  out.Set("switch_resident", LatencyJson(result.switch_resident));

  out.Set("lookup_hits", result.lookup_hits);
  out.Set("absorbed", result.absorbed);
  out.Set("overflows", result.overflows);
  out.Set("overflow_ratio", result.overflow_ratio);
  out.Set("recirc_drops", result.recirc_drops);
  out.Set("cache_packets_in_flight", result.cache_packets_in_flight);
  out.Set("cp_drop_evicted", result.cp_drop_evicted);
  out.Set("cp_drop_invalid", result.cp_drop_invalid);
  out.Set("cp_drop_epoch", result.cp_drop_epoch);
  out.Set("validations", result.validations);
  out.Set("collisions", result.collisions);
  out.Set("stale_reads", result.stale_reads);
  out.Set("timeouts", result.timeouts);
  out.Set("retransmissions", result.retransmissions);
  out.Set("retries_exhausted", result.retries_exhausted);
  out.Set("inflight_at_stop", result.inflight_at_stop);
  out.Set("faults_injected", result.faults_injected);
  out.Set("reroutes", result.reroutes);
  out.Set("blackholed_packets", result.blackholed_packets);
  out.Set("server_drops", result.server_drops);
  out.Set("cache_entries", static_cast<int64_t>(result.cache_entries));
  out.Set("controller_cache_size",
          static_cast<int64_t>(result.controller_cache_size));

  if (!result.server_loads.empty()) {
    const auto [mn, mx] = std::minmax_element(result.server_loads.begin(),
                                              result.server_loads.end());
    out.Set("server_load_min", *mn);
    out.Set("server_load_max", *mx);
  }
  if (options.include_server_loads) {
    JsonValue loads = JsonValue::MakeArray();
    for (uint64_t v : result.server_loads) loads.Append(v);
    out.Set("server_loads", std::move(loads));
  }
  if (options.include_timelines) {
    JsonValue tput = JsonValue::MakeArray();
    for (double v : result.throughput_timeline) tput.Append(v);
    out.Set("throughput_timeline_rps", std::move(tput));
    JsonValue ovf = JsonValue::MakeArray();
    for (double v : result.overflow_ratio_timeline) ovf.Append(v);
    out.Set("overflow_ratio_timeline", std::move(ovf));
  }

  out.Set("rmt_stages_used", result.rmt_stages_used);
  out.Set("rmt_sram_bytes_used", result.rmt_sram_bytes_used);
  out.Set("rmt_sram_fraction", result.rmt_sram_fraction);
  out.Set("rmt_alus_used", result.rmt_alus_used);
  out.Set("events_processed", result.events_processed);
  return out;
}

}  // namespace orbit::testbed
