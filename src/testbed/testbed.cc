#include "testbed/testbed.h"

#include <algorithm>
#include <memory>

#include "apps/client.h"
#include "apps/server.h"
#include "common/check.h"
#include "fabric/fabric.h"
#include "fault/fault.h"
#include "kv/partition.h"
#include "netcache/controller.h"
#include "netcache/program.h"
#include "nocache/program.h"
#include "orbitcache/controller.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "stats/meters.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "telemetry/netstats.h"
#include "telemetry/trace.h"
#include "testbed/constants.h"
#include "testbed/workload_source.h"
#include "verify/verify.h"
#include "workload/dynamic.h"
#include "workload/keyspace.h"
#include "workload/zipf.h"

namespace orbit::testbed {

namespace {

constexpr Addr kControllerAddr = kControllerBase;

using ZipfWorkload = ZipfWorkloadSource;

}  // namespace

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNoCache: return "NoCache";
    case Scheme::kNetCache: return "NetCache";
    case Scheme::kOrbitCache: return "OrbitCache";
  }
  return "?";
}

std::function<uint32_t(const Key&)> MakeValueSizeFn(
    const TestbedConfig& config) {
  if (config.workload.twitter == nullptr) {
    return [dist = config.workload.value_dist](const Key& key) {
      return dist.SizeFor(key);
    };
  }
  // Fig.-14 mode: the profile's cacheability coin decides which keys
  // NetCache can hold (they get 64B values); the remaining keys are sized
  // so the overall small-value fraction still matches the profile.
  const wl::TwitterProfile profile = *config.workload.twitter;
  double small_given_uncacheable = 0.0;
  if (profile.cacheable_ratio < 1.0) {
    small_given_uncacheable = (profile.p_small - profile.cacheable_ratio) /
                              (1.0 - profile.cacheable_ratio);
    small_given_uncacheable = std::clamp(small_given_uncacheable, 0.0, 1.0);
  }
  const uint64_t seed = config.seed;
  return [profile, small_given_uncacheable, seed](const Key& key) -> uint32_t {
    if (wl::NetCacheCacheable(profile, key, seed)) return 64;
    const uint64_t h = Hash64(key, seed ^ 0x74777369ull);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < small_given_uncacheable ? 64u : 1024u;
  };
}

bool NetCacheCanCache(const TestbedConfig& config, const Key& key) {
  if (key.size() > 16) return false;
  if (config.workload.twitter != nullptr)
    return wl::NetCacheCacheable(*config.workload.twitter, key, config.seed);
  const uint32_t limit = config.cache.netcache_recirc_read ? 1024 : 64;
  return MakeValueSizeFn(config)(key) <= limit;
}

std::vector<std::string> TestbedConfig::Validate() const {
  std::vector<std::string> errors;
  auto err = [&errors](std::string msg) { errors.push_back(std::move(msg)); };

  if (topo.num_clients <= 0)
    err("topo.num_clients must be >= 1 (got " +
        std::to_string(topo.num_clients) + ")");
  if (topo.num_servers <= 0)
    err("topo.num_servers must be >= 1 (got " +
        std::to_string(topo.num_servers) + ")");
  if (topo.client_rate_rps <= 0)
    err("topo.client_rate_rps must be > 0 — clients are open-loop and need "
        "a positive aggregate Tx rate");
  if (topo.server_rate_rps < 0)
    err("topo.server_rate_rps must be >= 0 (0 = unlimited)");

  if (topo.fabric.num_racks < 0)
    err("topo.fabric.num_racks must be >= 0 (0 = single-switch)");
  if (topo.fabric.enabled()) {
    if (topo.fabric.num_spines < 1)
      err("topo.fabric.num_spines must be >= 1 when the fabric is enabled");
    if (topo.fabric.num_racks > topo.num_servers)
      err("topo.fabric.num_racks (" + std::to_string(topo.fabric.num_racks) +
          ") exceeds topo.num_servers (" + std::to_string(topo.num_servers) +
          ") — every rack needs at least one storage server");
    else if (topo.num_servers % topo.fabric.num_racks != 0)
      err("topo.num_servers (" + std::to_string(topo.num_servers) +
          ") must be divisible by topo.fabric.num_racks (" +
          std::to_string(topo.fabric.num_racks) +
          ") — racks own equal contiguous server blocks");
    if (topo.fabric.uplink_gbps <= 0)
      err("topo.fabric.uplink_gbps must be > 0");
    if (topo.fabric.uplink_delay < 0)
      err("topo.fabric.uplink_delay must be >= 0");
    if (topo.fabric.failover) {
      if (topo.fabric.probe_interval <= 0)
        err("topo.fabric.probe_interval must be > 0 when failover is on");
      else if (topo.fabric.detection_window < topo.fabric.probe_interval)
        err("topo.fabric.detection_window (" +
            std::to_string(topo.fabric.detection_window) +
            "ns) must cover at least one probe_interval (" +
            std::to_string(topo.fabric.probe_interval) +
            "ns) — a shorter window declares every link dead between "
            "probes");
    }
    // Fabric fault targets must exist in this topology.
    for (const fault::FaultEvent& ev : fault.events) {
      if (ev.rack >= topo.fabric.num_racks)
        err(std::string("fault event ") + fault::FaultKindName(ev.kind) +
            " targets rack " + std::to_string(ev.rack) + " but only " +
            std::to_string(topo.fabric.num_racks) + " racks exist");
      if (ev.spine >= topo.fabric.num_spines)
        err(std::string("fault event ") + fault::FaultKindName(ev.kind) +
            " targets spine " + std::to_string(ev.spine) + " but only " +
            std::to_string(topo.fabric.num_spines) + " spines exist");
      if (ev.kind == fault::FaultKind::kCtrlDown ||
          ev.kind == fault::FaultKind::kCtrlUp)
        err("kCtrlDown/kCtrlUp target the single-switch controller "
            "channel; on a fabric, crash the leaf (kLeafCrash) instead");
    }
  } else {
    // Single-switch testbed: fabric-scoped knobs and fault kinds have no
    // target here.
    if (topo.fabric.failover)
      err("topo.fabric.failover requires a fabric topology "
          "(topo.fabric.num_racks >= 1)");
    if (fault.fabric_burst_loss.enabled())
      err("fault.fabric_burst_loss rides on leaf-spine uplinks; enable the "
          "fabric (topo.fabric.num_racks >= 1) to use it");
    for (const fault::FaultEvent& ev : fault.events) {
      if (ev.rack >= 0 || ev.spine >= 0)
        err(std::string("fault event ") + fault::FaultKindName(ev.kind) +
            " targets the fabric, but topo.fabric is disabled "
            "(num_racks == 0)");
    }
  }
  {
    const std::string ferr = fault.Validate();
    if (!ferr.empty()) err("fault schedule: " + ferr);
  }

  if (workload.num_keys == 0) err("workload.num_keys must be >= 1");
  if (workload.key_size == 0) err("workload.key_size must be >= 1");
  if (workload.zipf_theta < 0)
    err("workload.zipf_theta must be >= 0 (0 = uniform)");
  if (workload.write_ratio < 0 || workload.write_ratio > 1)
    err("workload.write_ratio must be within [0, 1] (got " +
        std::to_string(workload.write_ratio) + ")");
  if (workload.hot_in && workload.hot_in_period <= 0)
    err("workload.hot_in_period must be > 0 when hot_in is enabled");

  if (cache.orbit_cache_size > cache.orbit_capacity)
    err("cache.orbit_cache_size (" + std::to_string(cache.orbit_cache_size) +
        ") exceeds cache.orbit_capacity (" +
        std::to_string(cache.orbit_capacity) +
        ") — the preloaded set must fit the data-plane array");
  if (cache.orbit_queue_size == 0)
    err("cache.orbit_queue_size must be >= 1 (request-table depth S)");

  if (control.run_cache_updates && control.update_period <= 0)
    err("control.update_period must be > 0 when run_cache_updates is set");
  if (control.run_cache_updates && control.report_period <= 0)
    err("control.report_period must be > 0 when run_cache_updates is set");

  if (client.max_retries < 0) err("client.max_retries must be >= 0");
  if (client.request_timeout <= 0)
    err("client.request_timeout must be > 0");

  if (warmup < 0) err("warmup must be >= 0");
  if (duration <= 0) err("duration must be > 0");
  if (timeline_bin < 0) err("timeline_bin must be >= 0 (0 = disabled)");
  if (timeline_bin > duration)
    err("timeline_bin (" + std::to_string(timeline_bin) +
        "ns) exceeds duration (" + std::to_string(duration) +
        "ns) — the timeline would have no complete bin");
  return errors;
}

TestbedResult RunTestbed(const TestbedConfig& config) {
  {
    const std::vector<std::string> errors = config.Validate();
    std::string joined;
    for (const std::string& e : errors) joined += "\n  - " + e;
    ORBIT_CHECK_MSG(errors.empty(), "invalid TestbedConfig:" << joined);
  }

  // Leaf–spine configs run through the fabric assembly; everything below
  // stays the untouched single-ToR path (and its exact event ordering).
  if (config.topo.fabric.enabled()) return fabric::RunFabricTestbed(config);

  // The verifier is declared before the simulator on purpose: teardown of
  // the event queue and pool releases packets, and the pool's observer
  // pointer must stay valid through that (the calls are no-ops once
  // Finalize() disarms accounting — including on exception unwind).
  std::unique_ptr<verify::Verifier> verifier;
  if (config.verify.enabled) {
    verify::VerifyOptions vopt;
    // Version-strictness mirrors the scheme: only OrbitCache has the
    // epoch-guard ablation and write-back's switch-minted versions;
    // NetCache/NoCache serve only server-minted versions.
    vopt.epoch_guard =
        config.scheme != Scheme::kOrbitCache || config.cache.epoch_guard;
    vopt.write_back =
        config.scheme == Scheme::kOrbitCache && config.cache.write_back;
    verifier = std::make_unique<verify::Verifier>(vopt);
  }

  sim::Simulator sim;
  sim::Network net(&sim);
  if (verifier != nullptr) {
    sim.packet_pool().set_observer(verifier.get());
    verifier->ArmPacketAccounting();
  }

  rmt::SwitchDevice sw(&sim, &net, "tor", config.topo.asic);

  auto size_fn = MakeValueSizeFn(config);
  std::shared_ptr<wl::DynamicPopularity> dynamic;
  if (config.workload.hot_in) {
    dynamic = std::make_shared<wl::DynamicPopularity>(config.workload.num_keys,
                                                      config.workload.hot_in_count);
  }
  auto workload = std::make_shared<ZipfWorkload>(config, size_fn, dynamic);

  // ---- programs -----------------------------------------------------------
  std::unique_ptr<oc::OrbitProgram> orbit;
  std::unique_ptr<nc::NetProgram> netp;
  std::unique_ptr<nocache::ForwardProgram> fwd;
  switch (config.scheme) {
    case Scheme::kOrbitCache: {
      oc::OrbitConfig oc_cfg;
      oc_cfg.capacity = config.cache.orbit_capacity;
      oc_cfg.queue_size = config.cache.orbit_queue_size;
      oc_cfg.orbit_port = kOrbitPort;
      oc_cfg.epoch_guard = config.cache.epoch_guard;
      oc_cfg.enable_cloning = config.cache.enable_cloning;
      oc_cfg.write_back = config.cache.write_back;
      oc_cfg.multi_packet = config.cache.multi_packet;
      orbit = std::make_unique<oc::OrbitProgram>(&sw, oc_cfg);
      sw.SetProgram(orbit.get());
      break;
    }
    case Scheme::kNetCache: {
      nc::NetConfig nc_cfg;
      nc_cfg.capacity = config.cache.netcache_size;
      nc_cfg.orbit_port = kOrbitPort;
      nc_cfg.recirc_read_mode = config.cache.netcache_recirc_read;
      if (!config.control.run_cache_updates)
        nc_cfg.hot_threshold = UINT64_MAX;  // static cache: never report
      netp = std::make_unique<nc::NetProgram>(&sw, nc_cfg);
      sw.SetProgram(netp.get());
      break;
    }
    case Scheme::kNoCache:
      fwd = std::make_unique<nocache::ForwardProgram>();
      sw.SetProgram(fwd.get());
      break;
  }

  // ---- servers ------------------------------------------------------------
  const bool servers_report =
      config.scheme == Scheme::kOrbitCache && config.control.run_cache_updates;
  std::vector<std::unique_ptr<app::ServerNode>> servers;
  std::vector<Addr> server_addrs;
  std::vector<sim::Link*> server_links;  // fault-injection handles
  servers.reserve(static_cast<size_t>(config.topo.num_servers));
  server_links.reserve(static_cast<size_t>(config.topo.num_servers));
  for (int i = 0; i < config.topo.num_servers; ++i) {
    app::ServerConfig scfg;
    scfg.addr = kServerBase + static_cast<Addr>(i);
    scfg.srv_id = static_cast<uint8_t>(i);
    scfg.orbit_port = kOrbitPort;
    scfg.service_rate_rps = config.topo.server_rate_rps;
    scfg.multi_packet = config.cache.multi_packet;
    scfg.controller_addr = servers_report ? kControllerAddr : kInvalidAddr;
    scfg.ctrl_port = kCtrlPort;
    scfg.report_period = config.control.report_period;
    server_addrs.push_back(scfg.addr);
    // Port wiring happens below; the node needs its own port index first.
    servers.push_back(nullptr);
    sim::LinkConfig lc;
    lc.rate_gbps = config.topo.server_link_gbps;
    lc.propagation = config.topo.link_delay;
    // Scheduled burst loss rides on every server link; Network::Connect
    // decorrelates the per-link RNG seeds.
    lc.burst_loss = config.fault.server_burst_loss;
    lc.loss_seed = config.seed;
    auto node = std::make_unique<app::ServerNode>(&sim, &net, /*port=*/0,
                                                  scfg, size_fn);
    auto at = net.Connect(node.get(), &sw, lc);
    ORBIT_CHECK(at.port_a == 0);
    server_links.push_back(at.link);
    sw.AddRoute(scfg.addr, at.port_b);
    servers[static_cast<size_t>(i)] = std::move(node);
    // Servers are clone targets too: write-back snapshot flushes fork a
    // cache packet toward the owning server.
    if (orbit != nullptr) orbit->RegisterCloneTarget(scfg.addr, at.port_b);
  }

  // ---- clients ------------------------------------------------------------
  std::vector<std::unique_ptr<app::ClientNode>> clients;
  clients.reserve(static_cast<size_t>(config.topo.num_clients));
  for (int i = 0; i < config.topo.num_clients; ++i) {
    app::ClientConfig ccfg;
    ccfg.addr = kClientBase + static_cast<Addr>(i);
    ccfg.orbit_port = kOrbitPort;
    ccfg.src_port = static_cast<L4Port>(9000 + i);
    ccfg.rate_rps = config.topo.client_rate_rps / config.topo.num_clients;
    ccfg.request_timeout = config.client.request_timeout;
    ccfg.max_retries = config.client.max_retries;
    ccfg.seed = config.seed * 7919 + static_cast<uint64_t>(i);
    auto node = std::make_unique<app::ClientNode>(&sim, &net, /*port=*/0,
                                                  ccfg, workload);
    sim::LinkConfig lc;
    lc.rate_gbps = config.topo.client_link_gbps;
    lc.propagation = config.topo.link_delay;
    auto at = net.Connect(node.get(), &sw, lc);
    ORBIT_CHECK(at.port_a == 0);
    sw.AddRoute(ccfg.addr, at.port_b);
    if (orbit != nullptr) orbit->RegisterCloneTarget(ccfg.addr, at.port_b);
    clients.push_back(std::move(node));
  }

  if (verifier != nullptr) {
    if (orbit != nullptr) orbit->SetVerifier(verifier.get());
    for (auto& s : servers) s->SetVerifier(verifier.get());
    for (auto& c : clients) c->SetVerifier(verifier.get());
  }

  // ---- controller ---------------------------------------------------------
  kv::Partitioner partitioner(static_cast<uint32_t>(config.topo.num_servers),
                              config.seed);
  std::unique_ptr<oc::Controller> orbit_ctrl;
  std::unique_ptr<nc::NetController> net_ctrl;
  sim::Link* ctrl_link = nullptr;  // fault-injection handle
  if (config.scheme != Scheme::kNoCache) {
    sim::Node* ctrl_node = nullptr;
    sim::LinkConfig lc;
    lc.rate_gbps = 10.0;
    lc.propagation = config.topo.link_delay;
    if (config.scheme == Scheme::kOrbitCache) {
      oc::ControllerConfig ccfg;
      ccfg.cache_size = config.cache.orbit_cache_size;
      ccfg.max_cache_size = config.cache.orbit_capacity;
      ccfg.min_cache_size = std::min<size_t>(32, config.cache.orbit_cache_size);
      ccfg.dynamic_sizing = config.cache.dynamic_sizing;
      ccfg.update_period = config.control.update_period;
      ccfg.orbit_port = kOrbitPort;
      ccfg.ctrl_port = kCtrlPort;
      orbit_ctrl = std::make_unique<oc::Controller>(
          &sim, &net, orbit.get(), &partitioner, server_addrs,
          kControllerAddr, /*self_port=*/0, ccfg);
      ctrl_node = orbit_ctrl.get();
    } else {
      nc::NetControllerConfig ccfg;
      ccfg.cache_size = config.cache.netcache_size;
      ccfg.update_period = config.control.update_period;
      ccfg.orbit_port = kOrbitPort;
      net_ctrl = std::make_unique<nc::NetController>(
          &sim, &net, netp.get(), &partitioner, server_addrs,
          kControllerAddr, /*self_port=*/0, ccfg);
      ctrl_node = net_ctrl.get();
    }
    auto at = net.Connect(ctrl_node, &sw, lc);
    ORBIT_CHECK(at.port_a == 0);
    ctrl_link = at.link;
    sw.AddRoute(kControllerAddr, at.port_b);
    if (orbit != nullptr) {
      orbit->RegisterCloneTarget(kControllerAddr, at.port_b);
      orbit->SetRefetchFn([ctrl = orbit_ctrl.get()](const Key& key,
                                                    const Hash128& hkey,
                                                    Addr server) {
        ctrl->RequestRefetch(key, hkey, server);
      });
    }
  }

  // ---- fault injection ----------------------------------------------------
  // Built only when the config carries a schedule; the injector turns each
  // scripted FaultEvent into one simulator event against these hooks.
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.fault.events.empty()) {
    fault::FaultHooks hooks;
    hooks.set_server_link_down = [&server_links,
                                  n = config.topo.num_servers](int s, bool down) {
      ORBIT_CHECK_MSG(s >= 0 && s < n, "fault targets unknown server " << s);
      server_links[static_cast<size_t>(s)]->set_down(down);
    };
    if (ctrl_link != nullptr)
      hooks.set_ctrl_link_down = [ctrl_link](bool down) {
        ctrl_link->set_down(down);
      };
    // A switch reset wipes data-plane state; only OrbitCache models the
    // controller's shadow copy + rebuild (§3.9). NetCache/NoCache keep
    // the hooks empty (reset is a no-op for a stateless forwarder).
    if (orbit != nullptr)
      hooks.reset_switch = [op = orbit.get()] { op->ResetDataPlane(); };
    if (orbit_ctrl != nullptr)
      hooks.rebuild_cache = [ctrl = orbit_ctrl.get()] {
        ctrl->RebuildCache();
      };
    injector = std::make_unique<fault::FaultInjector>(&sim, config.fault,
                                                      std::move(hooks));
  }

  // ---- telemetry ----------------------------------------------------------
  // Built only when a capture sink is attached; otherwise every component
  // keeps its null tracer and the run is indistinguishable from an
  // uninstrumented one.
  std::unique_ptr<telemetry::Tracer> tracer;
  std::unique_ptr<telemetry::Registry> registry;
  std::unique_ptr<telemetry::IntSink> int_sink;
  std::unique_ptr<telemetry::FlightRecorder> flight;
  std::unique_ptr<ScopedCheckFailureHook> check_hook;
  const bool capture_on = config.telemetry.capture != nullptr;
  if (capture_on) {
    if (config.telemetry.int_sample > 0 || config.telemetry.histograms) {
      telemetry::IntSink::Options iopt;
      iopt.sample_every = config.telemetry.int_sample;
      iopt.histograms = config.telemetry.histograms;
      int_sink = std::make_unique<telemetry::IntSink>(iopt);
      telemetry::AttachLinkInt(*int_sink, net);
      sw.SetIntSink(int_sink.get());
      for (auto& s : servers) s->SetIntSink(int_sink.get());
      for (auto& c : clients) c->SetIntSink(int_sink.get());
    }
    if (config.telemetry.flight_recorder || config.telemetry.flight_end_dump) {
      flight = std::make_unique<telemetry::FlightRecorder>();
      sw.SetFlightRecorder(flight.get());
      for (auto& s : servers) s->SetFlightRecorder(flight.get());
      for (auto& c : clients) c->SetFlightRecorder(flight.get());
      if (injector != nullptr) injector->SetFlightRecorder(flight.get());
      // A tripped ORBIT_CHECK aborts the run by exception, so the normal
      // end-of-run capture fill never executes; snapshot the rings into
      // the capture *before* the throw unwinds this frame.
      check_hook = std::make_unique<ScopedCheckFailureHook>(
          [&flight, &sim, cap = config.telemetry.capture](
              const std::string& what) {
            flight->TriggerDump(sim.now(), "check failure: " + what);
            cap->flight_dump = flight->DumpText();
          });
    }
    if (config.telemetry.trace_sample > 0) {
      tracer =
          std::make_unique<telemetry::Tracer>(config.telemetry.trace_sample);
      sw.SetTracer(tracer.get());
      for (auto& s : servers) s->SetTracer(tracer.get());
      for (auto& c : clients) c->SetTracer(tracer.get());
    }
    registry = std::make_unique<telemetry::Registry>();
    sw.RegisterTelemetry(*registry);
    if (orbit != nullptr) orbit->RegisterTelemetry(*registry);
    if (netp != nullptr) netp->RegisterTelemetry(*registry);
    for (size_t i = 0; i < servers.size(); ++i)
      servers[i]->RegisterTelemetry(*registry,
                                    "server." + std::to_string(i));
    for (size_t i = 0; i < clients.size(); ++i)
      clients[i]->RegisterTelemetry(*registry,
                                    "client." + std::to_string(i));
    // Per-hop drops, one counter per link direction per reason.
    telemetry::RegisterLinkDropCounters(*registry, net);
    // Fabric drops, bucketed by reason.
    uint64_t* drop_ovf =
        registry->OwnCounter("net.drop.queue_overflow", "RunTestbed");
    uint64_t* drop_loss = registry->OwnCounter("net.drop.loss", "RunTestbed");
    uint64_t* drop_down =
        registry->OwnCounter("net.drop.link_down", "RunTestbed");
    net.SetDropTap([drop_ovf, drop_loss, drop_down](
                       const sim::Packet&, sim::Node*, sim::Node*,
                       sim::DropReason reason, SimTime) {
      switch (reason) {
        case sim::DropReason::kQueueOverflow: ++*drop_ovf; break;
        case sim::DropReason::kInjectedLoss: ++*drop_loss; break;
        case sim::DropReason::kLinkDown: ++*drop_down; break;
      }
    });
    if (injector != nullptr)
      injector->RegisterTelemetry(registry.get(), tracer.get());
  }

  // ---- preload ------------------------------------------------------------
  if (config.cache.preload && config.scheme == Scheme::kOrbitCache) {
    std::vector<Key> keys;
    keys.reserve(config.cache.orbit_cache_size);
    for (uint64_t r = 0; r < config.cache.orbit_cache_size && r < config.workload.num_keys;
         ++r)
      keys.push_back(workload->keyspace().KeyAtRank(r));
    orbit_ctrl->Preload(keys);
  }
  if (config.cache.preload && config.scheme == Scheme::kNetCache) {
    // The paper preloads the cacheable subset of the 10K hottest items.
    std::vector<Key> keys;
    keys.reserve(config.cache.netcache_size);
    for (uint64_t r = 0; r < config.cache.netcache_size && r < config.workload.num_keys;
         ++r) {
      Key key = workload->keyspace().KeyAtRank(r);
      if (NetCacheCanCache(config, key)) keys.push_back(std::move(key));
    }
    net_ctrl->Preload(keys);
  }

  // ---- timers & measurement ----------------------------------------------
  for (auto& s : servers) s->Start();
  for (auto& c : clients) c->Start();
  if (orbit_ctrl != nullptr) orbit_ctrl->Start();
  if (net_ctrl != nullptr) net_ctrl->Start();
  if (injector != nullptr) injector->Arm();

  // Periodic observers. Each is one allocation for the whole run (the
  // self-rearming PeriodicTask) instead of one std::function per firing;
  // unfired timers are dropped, not invoked, when `sim` dies at scope exit.
  std::unique_ptr<sim::PeriodicTask> overflow_sampler;
  std::unique_ptr<sim::PeriodicTask> telemetry_snapper;
  std::unique_ptr<sim::PeriodicTask> hot_in_swapper;

  stats::TimeSeries throughput_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  stats::TimeSeries overflow_hits_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  stats::TimeSeries overflow_ovf_timeline(
      config.timeline_bin > 0 ? config.timeline_bin : kSecond);
  if (config.timeline_bin > 0) {
    for (auto& c : clients) c->AttachTimeline(&throughput_timeline);
    if (orbit != nullptr) {
      // Sample hit/overflow deltas each bin for the overflow-ratio series.
      // "Overflow" here matches the paper's Fig. 18 notion: requests for
      // cached keys that had to go to a server — queue overflows plus
      // reads arriving while the entry's fetch is still pending (invalid).
      auto last_hits = std::make_shared<uint64_t>(0);
      auto last_ovf = std::make_shared<uint64_t>(0);
      overflow_sampler = std::make_unique<sim::PeriodicTask>(
          &sim, config.timeline_bin, [&, last_hits, last_ovf] {
            const auto& s = orbit->stats();
            const uint64_t ovf = s.overflow_to_server + s.invalid_to_server;
            overflow_hits_timeline.Add(
                sim.now() - 1, static_cast<double>(s.read_hits - *last_hits));
            overflow_ovf_timeline.Add(sim.now() - 1,
                                      static_cast<double>(ovf - *last_ovf));
            *last_hits = s.read_hits;
            *last_ovf = ovf;
          });
      overflow_sampler->Start();
    }
  }

  std::vector<telemetry::Snapshot> telemetry_snapshots;
  uint64_t telemetry_timer_events = 0;  // observer events, excluded below
  if (registry != nullptr && config.telemetry.snapshot_interval > 0) {
    telemetry_snapper = std::make_unique<sim::PeriodicTask>(
        &sim, config.telemetry.snapshot_interval, [&] {
          ++telemetry_timer_events;
          telemetry_snapshots.push_back(registry->Sample(sim.now()));
        });
    telemetry_snapper->Start();
  }

  if (config.workload.hot_in) {
    hot_in_swapper = std::make_unique<sim::PeriodicTask>(
        &sim, config.workload.hot_in_period, [&] { dynamic->Advance(); });
    hot_in_swapper->Start();
  }

  // Warmup, then snapshot counters and open measurement windows.
  struct Snapshot {
    oc::OrbitProgram::Stats oc;
    nc::NetProgram::Stats nc;
    std::vector<app::ServerNode::Stats> servers;
    uint64_t client_tx = 0;
    uint64_t recirc_drops = 0;
  };
  Snapshot snap;
  sim.RunUntil(config.warmup);
  if (orbit != nullptr) snap.oc = orbit->stats();
  if (netp != nullptr) snap.nc = netp->stats();
  for (auto& s : servers) snap.servers.push_back(s->stats());
  for (auto& c : clients) {
    snap.client_tx += c->stats().tx_requests;
    c->OpenWindow(sim.now());
  }
  snap.recirc_drops = sw.stats().recirc_drops;

  const SimTime end = config.warmup + config.duration;
  sim.RunUntil(end);
  for (auto& c : clients) c->CloseWindow(sim.now());
  // Stop before collecting so requests still on the wire are retired into
  // inflight_at_stop (and queued callbacks don't fire into destroyed
  // nodes; the simulator dies with everything else at scope exit anyway).
  for (auto& c : clients) c->Stop();

  // ---- collect ------------------------------------------------------------
  TestbedResult res;
  const double secs =
      static_cast<double>(config.duration) / static_cast<double>(kSecond);

  uint64_t rx = 0;
  uint64_t tx = 0;
  for (auto& c : clients) {
    rx += c->rx_meter().count();
    tx += c->stats().tx_requests;
    res.read_cached_latency.Merge(c->cached_read_latency());
    res.read_server_latency.Merge(c->server_read_latency());
    res.write_latency.Merge(c->write_latency());
    res.switch_resident.Merge(c->switch_resident());
    res.collisions += c->stats().collisions;
    res.stale_reads += c->stats().stale_reads;
    res.timeouts += c->stats().timeouts;
    res.retransmissions += c->stats().retransmissions;
    res.retries_exhausted += c->stats().retries_exhausted;
    res.inflight_at_stop += c->stats().inflight_at_stop;
  }
  if (injector != nullptr) res.faults_injected = injector->stats().injected;
  res.rx_rps = static_cast<double>(rx) / secs;
  res.tx_rps = static_cast<double>(tx - snap.client_tx) / secs;

  stats::LoadTracker loads(static_cast<size_t>(config.topo.num_servers));
  for (size_t i = 0; i < servers.size(); ++i) {
    const auto& s1 = servers[i]->stats();
    const auto& s0 = snap.servers[i];
    loads.Add(i, s1.requests - s0.requests);
    res.server_drops += s1.dropped - s0.dropped;
  }
  res.server_loads = loads.counts();
  res.balancing_efficiency = loads.BalancingEfficiency();
  res.server_served_rps = static_cast<double>(loads.total()) / secs;

  if (orbit != nullptr) {
    const auto& s1 = orbit->stats();
    res.lookup_hits = s1.read_hits - snap.oc.read_hits;
    res.absorbed = s1.absorbed - snap.oc.absorbed;
    res.overflows = s1.overflow_to_server - snap.oc.overflow_to_server;
    res.cache_served_rps =
        static_cast<double>(s1.served_by_cache - snap.oc.served_by_cache +
                            s1.wb_returned_replies -
                            snap.oc.wb_returned_replies) /
        secs;
    res.overflow_ratio =
        res.lookup_hits > 0
            ? static_cast<double>(res.overflows) /
                  static_cast<double>(res.lookup_hits)
            : 0.0;
    res.cache_entries = orbit->num_entries();
    res.cache_packets_in_flight =
        static_cast<uint64_t>(std::max<int64_t>(0, sw.stats().recirc_in_flight));
    res.cp_drop_evicted = s1.cp_drop_evicted;
    res.cp_drop_invalid = s1.cp_drop_invalid;
    res.cp_drop_epoch = s1.cp_drop_epoch;
    res.validations = s1.validations;
  }
  if (netp != nullptr) {
    const auto& s1 = netp->stats();
    res.lookup_hits = s1.read_hits - snap.nc.read_hits;
    res.cache_served_rps =
        static_cast<double>(s1.served_by_cache - snap.nc.served_by_cache) /
        secs;
    res.cache_entries = netp->num_entries();
  }
  if (orbit_ctrl != nullptr)
    res.controller_cache_size = orbit_ctrl->current_cache_size();
  res.recirc_drops = sw.stats().recirc_drops - snap.recirc_drops;
  res.resource_report = sw.resources().Report();
  res.rmt_stages_used = sw.resources().stages_used();
  res.rmt_sram_bytes_used = sw.resources().sram_bytes_used();
  res.rmt_sram_fraction = sw.resources().sram_fraction_used();
  res.rmt_alus_used = sw.resources().alus_used();
  // The snapshot timer is the one simulator event telemetry adds; exclude
  // it so the reported count — and therefore the record JSONL — is
  // identical with instrumentation on or off.
  res.events_processed = sim.events_processed() - telemetry_timer_events;

  if (config.timeline_bin > 0) {
    res.throughput_timeline = throughput_timeline.bins();
    for (double& v : res.throughput_timeline)
      v = v * static_cast<double>(kSecond) /
          static_cast<double>(config.timeline_bin);
    const size_t n = std::max(overflow_hits_timeline.num_bins(),
                              overflow_ovf_timeline.num_bins());
    res.overflow_ratio_timeline.resize(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double hits = i < overflow_hits_timeline.num_bins()
                              ? overflow_hits_timeline.bin(i)
                              : 0;
      const double ovf = i < overflow_ovf_timeline.num_bins()
                             ? overflow_ovf_timeline.bin(i)
                             : 0;
      res.overflow_ratio_timeline[i] = hits > 0 ? ovf / hits : 0.0;
    }
  }

  if (capture_on) {
    telemetry::RunCapture* cap = config.telemetry.capture;
    cap->Clear();
    if (registry != nullptr) {
      // Final end-of-run sample — unless the periodic timer already fired
      // at this exact instant (duplicate timestamps would make one run
      // look like two snapshots to downstream join/diff tools).
      if (telemetry_snapshots.empty() ||
          telemetry_snapshots.back().at != sim.now())
        telemetry_snapshots.push_back(registry->Sample(sim.now()));
      cap->snapshots = std::move(telemetry_snapshots);
    }
    if (tracer != nullptr) {
      cap->tracks = tracer->TakeTracks();
      cap->events = tracer->TakeEvents();
    }
    if (int_sink != nullptr) int_sink->Drain(&cap->int_capture);
    if (flight != nullptr) {
      if (config.telemetry.flight_end_dump)
        flight->TriggerDump(sim.now(), "end of run");
      if (flight->HasDumps()) cap->flight_dump = flight->DumpText();
    }
  }

  // ---- verification -------------------------------------------------------
  // Run last so that the fail_fast throw (below) happens after every metric
  // and capture is filled — a verification failure reports on a complete
  // run, and the flight-recorder check hook still gets its dump.
  if (verifier != nullptr) {
    verify::Verifier::EndOfRun eor;
    const sim::PacketPool::Stats& ps = sim.packet_pool().stats();
    eor.pool_acquired = ps.allocated + ps.recycled;
    eor.pool_released = ps.released;
    uint64_t server_queued = 0;
    for (auto& s : servers) server_queued += s->queue_depth();
    eor.expected_live = sim.pending_deliveries() + server_queued;
    eor.recirc_in_flight =
        static_cast<int64_t>(sw.stats().recirc_in_flight);
    // The orbit census (one circulating packet per valid entry) is exact
    // only when nothing forked, dropped, or invalidated cache packets
    // outside the serve loop; otherwise record why it was skipped.
    std::string census_skip;
    if (orbit == nullptr) {
      census_skip = "scheme has no orbiting cache packets";
    } else if (!config.cache.enable_cloning) {
      census_skip = "no-cloning ablation refetches instead of orbiting";
    } else if (config.cache.multi_packet) {
      census_skip = "multi-packet entries orbit fragment sets";
    } else if (config.cache.write_back) {
      census_skip = "write-back forks flush copies";
    } else if (!config.fault.events.empty()) {
      census_skip = "fault schedule may reset data-plane state";
    } else if (config.workload.write_ratio > 0 ||
               config.workload.twitter != nullptr) {
      census_skip = "writes invalidate entries while packets still orbit";
    } else if (sw.stats().recirc_drops > 0) {
      census_skip = "recirculation ring dropped cache packets";
    } else if (orbit->stats().cp_drop_evicted + orbit->stats().cp_drop_invalid +
                   orbit->stats().cp_drop_epoch >
               0) {
      census_skip = "cache packets were retired mid-run";
    } else if (orbit_ctrl != nullptr &&
               (orbit_ctrl->stats().evictions > 0 ||
                orbit_ctrl->stats().fetch_retries > 0 ||
                orbit_ctrl->stats().fetch_failures > 0)) {
      census_skip = "controller evicted or re-fetched entries";
    }
    if (census_skip.empty()) {
      eor.valid_entries = static_cast<int64_t>(orbit->CountValidEntries());
    } else {
      eor.valid_entries = -1;
      eor.orbit_skip_reason = std::move(census_skip);
    }
    eor.resources = &sw.resources();
    verifier->Finalize(eor);
    sim.packet_pool().set_observer(nullptr);
    res.verify_violations = verifier->violation_count();
    res.verify_replies_checked = verifier->replies_checked();
    res.verify_allowed_stale = verifier->allowed_stale();
    res.verify_report = verifier->Report();
    ORBIT_CHECK_MSG(!config.verify.fail_fast || verifier->ok(),
                    "verification failed:\n" << res.verify_report);
  }

  return res;
}

SaturationResult FindSaturation(TestbedConfig config, double loss_tolerance,
                                int max_corrections) {
  SaturationResult out;

  // Probe well below aggregate capacity so per-server shares are measured
  // in the linear (no-drop) regime.
  const double aggregate =
      config.topo.server_rate_rps > 0
          ? config.topo.server_rate_rps * config.topo.num_servers
          : 1e7;
  TestbedConfig probe = config;
  probe.topo.client_rate_rps = 0.25 * aggregate;
  probe.duration = std::max<SimTime>(50 * kMillisecond, config.duration / 2);
  // Only the final (saturating) run should fill the caller's capture.
  probe.telemetry = TestbedConfig::Telemetry{};
  TestbedResult probe_res = RunTestbed(probe);
  ++out.runs;

  const uint64_t max_load = *std::max_element(probe_res.server_loads.begin(),
                                              probe_res.server_loads.end());
  const double probe_secs = static_cast<double>(probe.duration) /
                            static_cast<double>(kSecond);
  const double max_load_rps = static_cast<double>(max_load) / probe_secs;
  // Loads scale linearly with Tx below saturation, so the hottest server
  // hits its service rate at:
  double tx = max_load_rps > 0 ? config.topo.server_rate_rps * probe_res.tx_rps /
                                     max_load_rps
                               : probe.topo.client_rate_rps;

  for (int i = 0;; ++i) {
    TestbedConfig attempt = config;
    attempt.topo.client_rate_rps = tx;
    out.result = RunTestbed(attempt);
    ++out.runs;
    out.sat_tx_rps = tx;
    const double loss =
        out.result.tx_rps > 0
            ? 1.0 - out.result.rx_rps / out.result.tx_rps
            : 0.0;
    if (loss <= loss_tolerance || i >= max_corrections) break;
    // Back off proportionally to the measured goodput.
    tx *= std::max(0.5, out.result.rx_rps / out.result.tx_rps) * 0.98;
  }
  return out;
}

}  // namespace orbit::testbed
