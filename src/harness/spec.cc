#include "harness/spec.h"

#include <cstdio>

#include "common/check.h"
#include "common/hash.h"
#include "harness/sat_cache.h"
#include "testbed/serialize.h"

namespace orbit::harness {

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kDefault: return "default";
    case Scale::kFull: return "full";
  }
  return "?";
}

ScaleProfile PaperScaleProfile(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {100'000, 20 * kMillisecond, 60 * kMillisecond};
    case Scale::kDefault:
      return {1'000'000, 50 * kMillisecond, 150 * kMillisecond};
    case Scale::kFull:
      return {10'000'000, 100 * kMillisecond, 500 * kMillisecond};
  }
  return {};
}

testbed::TestbedConfig PaperBaseConfig() {
  testbed::TestbedConfig cfg;
  cfg.topo.num_clients = 4;
  cfg.topo.num_servers = 32;
  cfg.topo.server_rate_rps = 100'000;
  cfg.topo.client_rate_rps = 8'000'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.workload.value_dist = wl::ValueDist::PaperDefault();
  cfg.cache.orbit_cache_size = 128;
  cfg.cache.netcache_size = 10'000;
  cfg.seed = 42;
  const ScaleProfile full = PaperScaleProfile(Scale::kFull);
  cfg.workload.num_keys = full.num_keys;
  cfg.warmup = full.warmup;
  cfg.duration = full.duration;
  return cfg;
}

testbed::TestbedConfig ScaledPaperConfig(Scale scale) {
  testbed::TestbedConfig cfg = PaperBaseConfig();
  const ScaleProfile p = PaperScaleProfile(scale);
  cfg.workload.num_keys = p.num_keys;
  cfg.warmup = p.warmup;
  cfg.duration = p.duration;
  return cfg;
}

ParamAxis SchemeAxis(const std::vector<testbed::Scheme>& schemes) {
  ParamAxis axis;
  axis.name = "scheme";
  for (size_t i = 0; i < schemes.size(); ++i) {
    const testbed::Scheme s = schemes[i];
    axis.params.push_back({testbed::SchemeName(s), static_cast<double>(i),
                           [s](testbed::TestbedConfig& cfg) { cfg.scheme = s; }});
  }
  return axis;
}

ParamAxis FabricRackAxis(const std::vector<int>& rack_counts,
                         int servers_per_rack, int clients_per_rack) {
  ORBIT_CHECK(servers_per_rack >= 1 && clients_per_rack >= 1);
  ParamAxis axis;
  axis.name = "racks";
  for (const int racks : rack_counts) {
    ORBIT_CHECK_MSG(racks >= 1, "rack count must be positive");
    axis.params.push_back(
        {std::to_string(racks), static_cast<double>(racks),
         [racks, servers_per_rack,
          clients_per_rack](testbed::TestbedConfig& cfg) {
           cfg.topo.fabric.num_racks = racks;
           cfg.topo.num_servers = racks * servers_per_rack;
           cfg.topo.num_clients = racks * clients_per_rack;
           cfg.topo.client_rate_rps *= racks;
         }});
  }
  return axis;
}

ParamAxis FaultAxis(std::vector<FaultScenario> scenarios) {
  ParamAxis axis;
  axis.name = "fault";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    axis.params.push_back({std::move(scenarios[i].label),
                           static_cast<double>(i),
                           std::move(scenarios[i].apply)});
  }
  return axis;
}

ParamAxis NumericAxis(
    std::string name, const std::vector<double>& values,
    std::function<void(testbed::TestbedConfig&, double)> apply) {
  ParamAxis axis;
  axis.name = std::move(name);
  for (double v : values) {
    char label[32];
    std::snprintf(label, sizeof(label), "%g", v);
    axis.params.push_back(
        {label, v,
         apply ? std::function<void(testbed::TestbedConfig&)>(
                     [apply, v](testbed::TestbedConfig& cfg) { apply(cfg, v); })
               : std::function<void(testbed::TestbedConfig&)>()});
  }
  return axis;
}

double PointRun::Value(std::string_view axis_name) const {
  for (size_t i = 0; i < params.size(); ++i)
    if (params[i].first == axis_name) return values[i];
  ORBIT_CHECK_MSG(false, "no axis named " << axis_name);
  return 0;
}

size_t ExperimentSpec::GridSize() const {
  size_t n = 1;
  for (const auto& axis : axes) n *= axis.params.size();
  return n;
}

uint64_t DeriveSeed(uint64_t base_seed, std::string_view experiment,
                    int point, int rep) {
  if (rep == 0) return base_seed;
  uint64_t x = base_seed;
  x ^= Hash64(experiment, /*seed=*/0x0b17cac8e);
  x = Mix64(x + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(point + 1));
  x = Mix64(x + static_cast<uint64_t>(rep));
  return x;
}

std::vector<PointRun> ExpandGrid(const ExperimentSpec& spec, Scale scale,
                                 uint64_t base_seed) {
  ORBIT_CHECK(spec.repetitions >= 1);
  testbed::TestbedConfig scaled = spec.base;
  if (spec.apply_paper_scale) {
    const ScaleProfile p = PaperScaleProfile(scale);
    scaled.workload.num_keys = p.num_keys;
    scaled.warmup = p.warmup;
    scaled.duration = p.duration;
  }
  if (spec.scale_fn) spec.scale_fn(scaled, scale);

  std::vector<PointRun> out;
  const size_t grid = spec.GridSize();
  out.reserve(grid * static_cast<size_t>(spec.repetitions));
  for (size_t linear = 0; linear < grid; ++linear) {
    // Decode row-major: the last axis varies fastest.
    std::vector<size_t> idx(spec.axes.size(), 0);
    size_t rem = linear;
    for (size_t a = spec.axes.size(); a-- > 0;) {
      idx[a] = rem % spec.axes[a].params.size();
      rem /= spec.axes[a].params.size();
    }
    for (int rep = 0; rep < spec.repetitions; ++rep) {
      PointRun pr;
      pr.spec = &spec;
      pr.scale = scale;
      pr.point = static_cast<int>(linear);
      pr.rep = rep;
      pr.seed = DeriveSeed(base_seed, spec.name, pr.point, rep);
      pr.config = scaled;
      pr.config.seed = pr.seed;
      for (size_t a = 0; a < spec.axes.size(); ++a) {
        const Param& param = spec.axes[a].params[idx[a]];
        pr.params.emplace_back(spec.axes[a].name, param.label);
        pr.values.push_back(param.value);
        if (param.apply) param.apply(pr.config);
      }
      out.push_back(std::move(pr));
    }
  }
  return out;
}

RunFn SaturationRun() {
  return [](const PointRun& p, SaturationCache& cache) {
    // The cache is shared across points, so the search itself always runs
    // uninstrumented; a memoized hit would otherwise skip filling this
    // point's capture (and a miss would race captures across threads).
    testbed::TestbedConfig base = p.config;
    base.telemetry = {};
    const testbed::SaturationResult sat =
        cache.Get(base, p.spec->loss_tolerance, p.spec->max_corrections);
    if (p.config.telemetry.capture != nullptr) {
      // Replay the saturating measurement once with instrumentation on.
      // RunTestbed is deterministic and telemetry is results-neutral, so
      // this reproduces sat.result exactly while filling the capture.
      testbed::TestbedConfig instrumented = p.config;
      instrumented.topo.client_rate_rps = sat.sat_tx_rps;
      (void)testbed::RunTestbed(instrumented);
    }
    testbed::ResultMetricsOptions opts;
    opts.include_timelines = p.spec->include_timelines;
    opts.include_server_loads = p.spec->include_server_loads;
    JsonValue metrics = testbed::ResultMetrics(sat.result, opts);
    metrics.Set("window_s",
                static_cast<double>(p.config.duration) / kSecond);
    metrics.Set("sat_tx_mrps", sat.sat_tx_rps / 1e6);
    metrics.Set("sat_runs", sat.runs);
    return metrics;
  };
}

RunFn FixedLoadRun() {
  return [](const PointRun& p, SaturationCache&) {
    const testbed::TestbedResult res = testbed::RunTestbed(p.config);
    testbed::ResultMetricsOptions opts;
    opts.include_timelines = p.spec->include_timelines;
    opts.include_server_loads = p.spec->include_server_loads;
    JsonValue metrics = testbed::ResultMetrics(res, opts);
    metrics.Set("window_s",
                static_cast<double>(p.config.duration) / kSecond);
    if (p.config.timeline_bin > 0)
      metrics.Set("timeline_bin_s",
                  static_cast<double>(p.config.timeline_bin) / kSecond);
    return metrics;
  };
}

RunFn FractionOfSaturationRun(std::string fraction_axis) {
  return [fraction_axis](const PointRun& p, SaturationCache& cache) {
    const double fraction = p.Value(fraction_axis);
    // The shared base (config without the fraction applied) is what the
    // saturation search measures; every fraction of one base hits the
    // same cache entry. Telemetry is stripped so the shared search never
    // writes into one point's capture — the fraction run below keeps it.
    testbed::TestbedConfig base = p.config;
    base.telemetry = {};
    const testbed::SaturationResult sat =
        cache.Get(base, p.spec->loss_tolerance, p.spec->max_corrections);
    testbed::TestbedConfig cfg = p.config;
    cfg.topo.client_rate_rps = fraction * sat.sat_tx_rps;
    const testbed::TestbedResult res = testbed::RunTestbed(cfg);
    testbed::ResultMetricsOptions opts;
    opts.include_timelines = p.spec->include_timelines;
    opts.include_server_loads = p.spec->include_server_loads;
    JsonValue metrics = testbed::ResultMetrics(res, opts);
    metrics.Set("sat_tx_mrps", sat.sat_tx_rps / 1e6);
    metrics.Set("load_fraction", fraction);
    return metrics;
  };
}

}  // namespace orbit::harness
