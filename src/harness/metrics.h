// The harness's machine-readable unit of output: one MetricsRecord per
// executed experiment point, serialized as one JSON line. Records are the
// contract between bench/run_all (producer) and tools/bench_compare
// (consumer): a point is identified by (experiment, params, rep) and its
// metrics object holds only scalars, arrays, and strings that are
// deterministic functions of the spec and the seed — never wall-clock
// measurements, so parallel and serial runs emit identical bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/json.h"

namespace orbit::harness {

struct MetricsRecord {
  std::string experiment;
  int point = 0;  // linear index into the experiment's sweep grid
  int rep = 0;
  uint64_t seed = 0;
  // Swept-parameter name → printed value, in axis order.
  std::vector<std::pair<std::string, std::string>> params;
  JsonValue metrics = JsonValue::MakeObject();
  std::string error;  // non-empty: the point failed (timeout, divergence)

  bool ok() const { return error.empty(); }

  // Stable identity for cross-file matching (experiment, params, rep).
  std::string Key() const;

  // Convenience: numeric metric lookup (NaN when absent/non-numeric).
  double Metric(std::string_view name) const;

  JsonValue ToJson() const;
  static bool FromJson(const JsonValue& json, MetricsRecord* out,
                       std::string* error);
};

// One compact JSON object per line, trailing newline after each.
std::string DumpJsonl(const std::vector<MetricsRecord>& records);

// Parses JSON-lines text (blank lines ignored). Returns false on the first
// malformed line and reports its line number in *error.
bool ParseJsonl(std::string_view text, std::vector<MetricsRecord>* out,
                std::string* error);

// File convenience wrappers (return false and fill *error on I/O failure).
bool WriteJsonlFile(const std::string& path,
                    const std::vector<MetricsRecord>& records,
                    std::string* error);
bool ReadJsonlFile(const std::string& path, std::vector<MetricsRecord>* out,
                   std::string* error);

}  // namespace orbit::harness
