#include "harness/metrics.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace orbit::harness {

std::string MetricsRecord::Key() const {
  std::string key = experiment;
  for (const auto& [name, value] : params) {
    key += '|';
    key += name;
    key += '=';
    key += value;
  }
  key += "|rep=";
  key += std::to_string(rep);
  return key;
}

double MetricsRecord::Metric(std::string_view name) const {
  const JsonValue* v = metrics.FindPath(name);
  if (v == nullptr || !v->is_number()) return std::nan("");
  return v->AsDouble();
}

JsonValue MetricsRecord::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("experiment", experiment);
  out.Set("point", point);
  out.Set("rep", rep);
  // Seeds use the full 64-bit range; store as a decimal string so the
  // value survives JSON's signed-integer ceiling.
  out.Set("seed", std::to_string(seed));
  JsonValue p = JsonValue::MakeObject();
  for (const auto& [name, value] : params) p.Set(name, value);
  out.Set("params", std::move(p));
  if (!error.empty()) out.Set("error", error);
  out.Set("metrics", metrics);
  return out;
}

bool MetricsRecord::FromJson(const JsonValue& json, MetricsRecord* out,
                             std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) *error = "record is not an object";
    return false;
  }
  const JsonValue* exp = json.Find("experiment");
  const JsonValue* metrics = json.Find("metrics");
  if (exp == nullptr || !exp->is_string() || metrics == nullptr ||
      !metrics->is_object()) {
    if (error != nullptr) *error = "record missing experiment/metrics";
    return false;
  }
  *out = MetricsRecord();
  out->experiment = exp->AsString();
  if (const JsonValue* v = json.Find("point")) out->point = v->AsInt();
  if (const JsonValue* v = json.Find("rep")) out->rep = v->AsInt();
  if (const JsonValue* v = json.Find("seed"); v != nullptr && v->is_string()) {
    const std::string& s = v->AsString();
    std::from_chars(s.data(), s.data() + s.size(), out->seed);
  }
  if (const JsonValue* v = json.Find("error"); v != nullptr && v->is_string())
    out->error = v->AsString();
  if (const JsonValue* v = json.Find("params"); v != nullptr && v->is_object())
    for (const auto& [name, value] : v->object())
      out->params.emplace_back(
          name, value.is_string() ? value.AsString() : value.Dump());
  out->metrics = *metrics;
  return true;
}

std::string DumpJsonl(const std::vector<MetricsRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    r.ToJson().DumpTo(&out);
    out.push_back('\n');
  }
  return out;
}

bool ParseJsonl(std::string_view text, std::vector<MetricsRecord>* out,
                std::string* error) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    JsonValue json;
    std::string parse_error;
    if (!ParseJson(line, &json, &parse_error)) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    MetricsRecord record;
    if (!MetricsRecord::FromJson(json, &record, &parse_error)) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

bool WriteJsonlFile(const std::string& path,
                    const std::vector<MetricsRecord>& records,
                    std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = DumpJsonl(records);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool ReadJsonlFile(const std::string& path, std::vector<MetricsRecord>* out,
                   std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseJsonl(buf.str(), out, error);
}

}  // namespace orbit::harness
