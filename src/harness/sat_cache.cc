#include "harness/sat_cache.h"

#include <utility>

#include "testbed/serialize.h"

namespace orbit::harness {

SaturationCache::SaturationCache()
    : compute_([](const testbed::TestbedConfig& config, double loss_tolerance,
                  int max_corrections) {
        return testbed::FindSaturation(config, loss_tolerance,
                                       max_corrections);
      }) {}

SaturationCache::SaturationCache(ComputeFn compute)
    : compute_(std::move(compute)) {}

testbed::SaturationResult SaturationCache::Get(
    const testbed::TestbedConfig& config, double loss_tolerance,
    int max_corrections) {
  std::string key = testbed::ConfigFingerprint(config);
  key += "|tol=";
  key += std::to_string(loss_tolerance);
  key += "|corr=";
  key += std::to_string(max_corrections);

  std::promise<testbed::SaturationResult> promise;
  std::shared_future<testbed::SaturationResult> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it == memo_.end()) {
      future = promise.get_future().share();
      memo_.emplace(key, future);
      owner = true;
      ++misses_;
    } else {
      future = it->second;
      ++hits_;
    }
  }
  if (owner) {
    try {
      promise.set_value(compute_(config, loss_tolerance, max_corrections));
    } catch (...) {
      // Evict before publishing the failure: threads already holding the
      // future see the exception once, but no later Get can join a
      // permanently-poisoned entry — it recomputes instead.
      {
        std::lock_guard<std::mutex> lock(mu_);
        memo_.erase(key);
        ++failures_;
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows the owner's exception for every waiter
}

size_t SaturationCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

}  // namespace orbit::harness
