#include "harness/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace orbit::harness {

const std::vector<std::string>& DefaultCompareMetrics() {
  static const std::vector<std::string> kDefault = {
      "rx_mrps",     "balancing_efficiency", "overflow_ratio",
      "read_p50_us", "read_p99_us",          "cache_mrps",
      "sat_tx_mrps",
  };
  return kDefault;
}

namespace {

void CompareMetricSet(const MetricsRecord& ra, const MetricsRecord& rb,
                      const std::vector<std::string>& metrics,
                      const CompareOptions& options, CompareReport* report) {
  for (const auto& name : metrics) {
    const JsonValue* va = ra.metrics.FindPath(name);
    const JsonValue* vb = rb.metrics.FindPath(name);
    const bool has_a = va != nullptr && va->is_number();
    const bool has_b = vb != nullptr && vb->is_number();
    // Absent from both sides: the metric simply doesn't apply to this
    // experiment (the default set spans several suites). Absent from one
    // side only: the metric disappeared or changed type — a failure.
    if (!has_a && !has_b) continue;
    if (has_a != has_b) {
      report->missing_metrics.push_back(ra.Key() + " " + name +
                                        " (missing or non-numeric in " +
                                        (has_a ? "B" : "A") + ")");
      continue;
    }
    const double a = va->AsDouble();
    const double b = vb->AsDouble();
    ++report->metrics_compared;
    const double diff = std::fabs(a - b);
    const double scale = std::max(std::fabs(a), std::fabs(b));
    if (diff <= options.slack) continue;
    if (diff <= options.tolerance * scale) continue;
    report->diffs.push_back(
        {ra.Key(), name, a, b, scale > 0 ? diff / scale : 0});
  }
}

std::vector<std::string> NumericScalarKeys(const MetricsRecord& r) {
  std::vector<std::string> keys;
  for (const auto& [k, v] : r.metrics.object())
    if (v.is_number()) keys.push_back(k);
  return keys;
}

}  // namespace

CompareReport CompareResults(const std::vector<MetricsRecord>& a,
                             const std::vector<MetricsRecord>& b,
                             const CompareOptions& options) {
  CompareReport report;

  // Ordered map keeps the report deterministic.
  std::map<std::string, const MetricsRecord*> bindex;
  for (const auto& r : b) bindex[r.Key()] = &r;

  std::map<std::string, bool> seen_b;
  for (const auto& ra : a) {
    const std::string key = ra.Key();
    auto it = bindex.find(key);
    if (it == bindex.end()) {
      report.only_a.push_back(key);
      continue;
    }
    seen_b[key] = true;
    const MetricsRecord& rb = *it->second;
    if (!ra.ok() || !rb.ok()) {
      // Two runs failing identically is still a match; anything else is a
      // failure worth surfacing.
      if (ra.error != rb.error)
        report.errored.push_back(key + " (a: " +
                                 (ra.ok() ? "ok" : ra.error) + ", b: " +
                                 (rb.ok() ? "ok" : rb.error) + ")");
      continue;
    }
    ++report.matched;
    if (options.all_metrics) {
      CompareMetricSet(ra, rb, NumericScalarKeys(ra), options, &report);
    } else {
      CompareMetricSet(
          ra, rb,
          options.metrics.empty() ? DefaultCompareMetrics() : options.metrics,
          options, &report);
    }
  }
  for (const auto& rb : b)
    if (seen_b.find(rb.Key()) == seen_b.end())
      report.only_b.push_back(rb.Key());
  return report;
}

std::string FormatReport(const CompareReport& report,
                         const CompareOptions& options) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "%zu records matched, %zu metric values compared "
                "(tolerance %.0f%%, slack %g)\n",
                report.matched, report.metrics_compared,
                100 * options.tolerance, options.slack);
  out += line;
  for (const auto& k : report.only_a) {
    std::snprintf(line, sizeof(line), "  only in A: %s\n", k.c_str());
    out += line;
  }
  for (const auto& k : report.only_b) {
    std::snprintf(line, sizeof(line), "  only in B: %s\n", k.c_str());
    out += line;
  }
  for (const auto& k : report.errored) {
    std::snprintf(line, sizeof(line), "  errored: %s\n", k.c_str());
    out += line;
  }
  for (const auto& k : report.missing_metrics) {
    std::snprintf(line, sizeof(line), "  metric lost: %s\n", k.c_str());
    out += line;
  }
  for (const auto& d : report.diffs) {
    std::snprintf(line, sizeof(line),
                  "  DRIFT %s: %s a=%g b=%g (%.1f%%)\n", d.key.c_str(),
                  d.metric.c_str(), d.a, d.b, 100 * d.rel);
    out += line;
  }
  if (report.vacuous())
    out += "  no metric values compared across the matched records — "
           "check the metric names against what the result files carry\n";
  out += report.ok() ? "OK: results match within tolerance\n"
                     : "FAIL: results differ\n";
  return out;
}

}  // namespace orbit::harness
