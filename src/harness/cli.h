// Shared command line for every bench binary and bench/run_all.
//
//   --quick / --full    scale selection (default: the EXPERIMENTS.md scale)
//   --seed N            base seed (default 42, the paper runs' seed)
//   --jobs N            parallel points (default 1 = fully serial)
//   --out PATH          write JSON-lines metrics records
//   --timeout SEC       per-point wall-clock budget (0 = off)
//   --trace-out PATH    write a merged Chrome trace (Perfetto-viewable)
//   --trace-sample N    trace every Nth request per client (default 64)
//   --counters-out PATH write counter-snapshot JSONL time series
//   --snapshot-interval MS  periodic registry snapshots (0 = final only)
//   --int-out PATH      write INT postcards (per-hop records) as JSONL
//   --int-sample N      INT postcard sampling period (default 64)
//   --hist-out PATH     write always-on histogram snapshots as JSONL
//   --flight-dump PATH  write flight-recorder dumps (end of run + faults)
//   --list              list experiments and exit
//   --help              usage plus each experiment's swept parameters
//   NAME...             positional filters (substring match on experiment)
//
// The telemetry flags enable instrumentation only for the files they
// produce: with none given, runs are bit-identical to a build without the
// telemetry layer.
//
// HarnessMain() is the whole driver: parse, filter, run, print tables,
// write the JSONL, return the exit code (0 ok, 1 point failures, 2 usage).
#pragma once

#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/spec.h"

namespace orbit::harness {

struct CliOptions {
  RunnerOptions runner;
  std::string out_path;
  std::string trace_out_path;     // non-empty enables trace capture
  std::string counters_out_path;  // non-empty enables counter snapshots
  std::string int_out_path;       // non-empty enables INT postcards
  std::string hist_out_path;      // non-empty enables always-on histograms
  std::string flight_dump_path;   // non-empty enables the flight recorder
  std::vector<std::string> filters;
  bool help = false;
  bool list = false;
  std::string error;  // non-empty: parsing failed

  bool ok() const { return error.empty(); }
};

CliOptions ParseCli(int argc, char** argv);

void PrintHelp(const char* prog, const std::vector<ExperimentSpec>& specs);

int HarnessMain(const std::vector<ExperimentSpec>& specs, int argc,
                char** argv);

}  // namespace orbit::harness
