#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "harness/sat_cache.h"
#include "sim/simulator.h"

namespace orbit::harness {

namespace {

struct Job {
  size_t spec_index = 0;
  PointRun point;
};

MetricsRecord BaseRecord(const ExperimentSpec& spec, const PointRun& p) {
  MetricsRecord record;
  record.experiment = spec.name;
  record.point = p.point;
  record.rep = p.rep;
  record.seed = p.seed;
  record.params = p.params;
  return record;
}

}  // namespace

RunOutcome RunExperiments(const std::vector<ExperimentSpec>& specs,
                          const RunnerOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  // Expand every spec up front; slot order defines the output order.
  std::vector<Job> jobs;
  for (size_t s = 0; s < specs.size(); ++s) {
    for (PointRun& p : ExpandGrid(specs[s], options.scale, options.base_seed))
      jobs.push_back({s, std::move(p)});
  }

  RunOutcome outcome;
  outcome.records.resize(jobs.size());
  if (options.capture_telemetry) {
    outcome.captures.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].point.config.telemetry.capture = &outcome.captures[i];
      jobs[i].point.config.telemetry.trace_sample = options.trace_sample;
      jobs[i].point.config.telemetry.snapshot_interval =
          options.snapshot_interval;
      jobs[i].point.config.telemetry.int_sample = options.int_sample;
      jobs[i].point.config.telemetry.histograms = options.histograms;
      jobs[i].point.config.telemetry.flight_recorder = options.flight_recorder;
      jobs[i].point.config.telemetry.flight_end_dump =
          options.flight_end_dump;
    }
  }
  if (options.verify) {
    // Fabric points stay unverified: the leaf-spine path is not wired to
    // the shadow oracle (TestbedConfig::Validate rejects the combination).
    for (Job& job : jobs)
      if (!job.point.config.topo.fabric.enabled())
        job.point.config.verify.enabled = true;
  }
  SaturationCache sat_cache;
  std::atomic<size_t> next{0};
  std::atomic<int> errors{0};
  std::atomic<size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    while (true) {
      const size_t slot = next.fetch_add(1);
      if (slot >= jobs.size()) return;
      const Job& job = jobs[slot];
      const ExperimentSpec& spec = specs[job.spec_index];
      MetricsRecord record = BaseRecord(spec, job.point);
      const auto point_start = std::chrono::steady_clock::now();
      try {
        sim::ScopedThreadDeadline deadline(options.point_timeout_sec);
        const RunFn& run = spec.run ? spec.run : SaturationRun();
        record.metrics = run(job.point, sat_cache);
      } catch (const sim::DeadlineExceeded& e) {
        record.error = e.what();
        errors.fetch_add(1);
      } catch (const std::exception& e) {
        record.error = e.what();
        errors.fetch_add(1);
      }
      outcome.records[slot] = std::move(record);
      const size_t finished = done.fetch_add(1) + 1;
      if (options.progress) {
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          point_start)
                .count();
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "[%zu/%zu] %s point=%d rep=%d (%.1fs)%s\n",
                     finished, jobs.size(), spec.name.c_str(),
                     job.point.point, job.point.rep, secs,
                     outcome.records[slot].ok() ? "" : "  ERROR");
      }
    }
  };

  const int jobs_n = std::max(1, options.jobs);
  if (jobs_n == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs_n));
    for (int i = 0; i < jobs_n; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  outcome.errors = errors.load();
  outcome.sat_cache_hits = sat_cache.hits();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

// ---- text tables --------------------------------------------------------

namespace {

std::string FormatCell(const JsonValue* v) {
  if (v == nullptr) return "-";
  char buf[32];
  switch (v->type()) {
    case JsonValue::Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v->AsInt()));
      return buf;
    case JsonValue::Type::kDouble: {
      const double d = v->AsDouble();
      if (d != 0 && (d < 0.001 || d >= 1e7))
        std::snprintf(buf, sizeof(buf), "%.3g", d);
      else
        std::snprintf(buf, sizeof(buf), "%.*f", d >= 100 ? 1 : 3, d);
      return buf;
    }
    case JsonValue::Type::kString:
      return v->AsString();
    case JsonValue::Type::kBool:
      return v->AsBool() ? "true" : "false";
    default:
      return "-";
  }
}

}  // namespace

void PrintTables(const std::vector<ExperimentSpec>& specs,
                 const std::vector<MetricsRecord>& records) {
  size_t offset = 0;
  for (const auto& spec : specs) {
    const size_t n = spec.GridSize() * static_cast<size_t>(spec.repetitions);
    const auto begin = records.begin() + static_cast<ptrdiff_t>(offset);
    const std::vector<MetricsRecord> mine(
        begin, begin + static_cast<ptrdiff_t>(n));
    offset += n;

    std::printf("\n=== %s ===\n",
                spec.title.empty() ? spec.name.c_str() : spec.title.c_str());

    // Column set: axes, optional rep, then the spec's metric keys.
    std::vector<std::string> headers;
    for (const auto& axis : spec.axes) headers.push_back(axis.name);
    if (spec.repetitions > 1) headers.push_back("rep");
    for (const auto& m : spec.table_metrics) headers.push_back(m);

    std::vector<std::vector<std::string>> rows;
    for (const auto& r : mine) {
      std::vector<std::string> row;
      for (const auto& [name, label] : r.params) {
        (void)name;
        row.push_back(label);
      }
      if (spec.repetitions > 1) row.push_back(std::to_string(r.rep));
      if (!r.ok()) {
        while (row.size() < headers.size()) row.push_back("ERROR");
      } else {
        for (const auto& m : spec.table_metrics)
          row.push_back(FormatCell(r.metrics.FindPath(m)));
      }
      rows.push_back(std::move(row));
    }

    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c) {
      widths[c] = headers[c].size();
      for (const auto& row : rows)
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
    for (size_t c = 0; c < headers.size(); ++c)
      std::printf("%s%*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), headers[c].c_str());
    std::printf("\n");
    for (const auto& row : rows) {
      for (size_t c = 0; c < row.size(); ++c)
        std::printf("%s%*s", c == 0 ? "" : "  ",
                    static_cast<int>(widths[c]), row[c].c_str());
      std::printf("\n");
    }
    for (const auto& r : mine)
      if (!r.ok())
        std::printf("! point %d rep %d failed: %s\n", r.point, r.rep,
                    r.error.c_str());
    if (spec.epilogue) spec.epilogue(mine);
    std::fflush(stdout);
  }
}

}  // namespace orbit::harness
