// Minimal deterministic JSON value, writer, and parser.
//
// The experiment harness promises that a parallel run's JSON-lines output
// is byte-identical to a serial run's, so serialization must be fully
// deterministic: object keys keep insertion order (no hash-map iteration),
// integers print exactly, and doubles print the shortest round-trip form
// via std::to_chars. The parser accepts everything the writer emits (plus
// ordinary whitespace) so results survive a round trip through
// tools/bench_compare.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orbit::harness {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // Insertion-ordered: determinism forbids unordered_map iteration.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(int v) : type_(Type::kInt), int_(v) {}
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(uint64_t v);  // widens to double only when it cannot fit int64
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool(bool def = false) const {
    return type_ == Type::kBool ? bool_ : def;
  }
  int64_t AsInt(int64_t def = 0) const;
  double AsDouble(double def = 0) const;
  const std::string& AsString() const { return string_; }

  Array& array() { return array_; }
  const Array& array() const { return array_; }
  Object& object() { return object_; }
  const Object& object() const { return object_; }

  // Object helpers: Set appends or replaces in place (keeps order).
  void Set(std::string_view key, JsonValue value);
  const JsonValue* Find(std::string_view key) const;
  // Dotted-path lookup into nested objects: "read_cached.p99_us".
  const JsonValue* FindPath(std::string_view dotted) const;

  // Array helper.
  void Append(JsonValue value) { array_.push_back(std::move(value)); }

  // Compact single-line serialization (no spaces, keys in stored order).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  friend bool operator==(const JsonValue&, const JsonValue&);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

// Shortest round-trip decimal form of `v` ("1.5", "0.82", "1e+20"); NaN
// and infinities — which JSON cannot carry — serialize as null.
void AppendJsonNumber(double v, std::string* out);

// Parses one JSON document. Returns false and fills *error (with a byte
// offset) on malformed input; trailing garbage after the document is an
// error too.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace orbit::harness
