#include "harness/flags.h"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "common/check.h"

namespace orbit::harness {

namespace {

template <typename T>
bool ParseNumber(const std::string& s, T* out) {
  const char* begin = s.c_str();
  const char* end = begin + s.size();
  const auto res = std::from_chars(begin, end, *out);
  return res.ec == std::errc() && res.ptr == end;
}

// Levenshtein distance; flag spellings are short, so the plain O(n·m)
// single-row computation is plenty.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

Flags::Flag& Flags::Register(const std::string& name, Type type,
                             const std::string& value_name,
                             const std::string& help) {
  ORBIT_CHECK_MSG(Find("--" + name) == nullptr,
                  "duplicate flag registration: --" << name);
  Flag f;
  f.name = name;
  f.type = type;
  f.value_name = value_name;
  f.help = help;
  flags_.push_back(std::move(f));
  return flags_.back();
}

Flags& Flags::AddBool(const std::string& name, const std::string& help) {
  Register(name, Type::kBool, "", help);
  return *this;
}

Flags& Flags::AddInt(const std::string& name, int def,
                     const std::string& value_name, const std::string& help) {
  Register(name, Type::kInt, value_name, help).int_v = def;
  return *this;
}

Flags& Flags::AddUint64(const std::string& name, uint64_t def,
                        const std::string& value_name,
                        const std::string& help) {
  Register(name, Type::kUint64, value_name, help).u64_v = def;
  return *this;
}

Flags& Flags::AddDouble(const std::string& name, double def,
                        const std::string& value_name,
                        const std::string& help) {
  Register(name, Type::kDouble, value_name, help).double_v = def;
  return *this;
}

Flags& Flags::AddString(const std::string& name, const std::string& def,
                        const std::string& value_name,
                        const std::string& help) {
  Register(name, Type::kString, value_name, help).string_v = def;
  return *this;
}

Flags& Flags::Alias(const std::string& spelling) {
  ORBIT_CHECK_MSG(!flags_.empty(), "Alias() before any registration");
  flags_.back().aliases.push_back(spelling);
  return *this;
}

std::string Flags::Suggest(const std::string& spelling) const {
  // Compare against every registered spelling ("--name" and aliases); only
  // offer a suggestion when the typo is close — within 2 edits, or 3 for
  // longer names — so nonsense input still reads as plainly unknown.
  std::string best;
  size_t best_dist = 0;
  for (const Flag& f : flags_) {
    std::vector<std::string> spellings = {"--" + f.name};
    spellings.insert(spellings.end(), f.aliases.begin(), f.aliases.end());
    for (const std::string& s : spellings) {
      const size_t d = EditDistance(spelling, s);
      if (best.empty() || d < best_dist) {
        best = s;
        best_dist = d;
      }
    }
  }
  const size_t budget = spelling.size() >= 8 ? 3 : 2;
  if (best.empty() || best_dist > budget) return "";
  return best;
}

Flags::Flag* Flags::Find(const std::string& spelling) {
  for (Flag& f : flags_) {
    if (spelling == "--" + f.name) return &f;
    for (const std::string& a : f.aliases)
      if (spelling == a) return &f;
  }
  return nullptr;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-' || arg == "-") {
      positionals_.push_back(arg);
      continue;
    }
    Flag* f = Find(arg);
    if (f == nullptr) {
      error_ = "unknown flag: " + arg;
      const std::string suggestion = Suggest(arg);
      if (!suggestion.empty())
        error_ += " (did you mean " + suggestion + "?)";
      return false;
    }
    f->last_index = i;
    if (f->type == Type::kBool) {
      f->bool_v = true;
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "--" + f->name + " requires a value";
      return false;
    }
    f->raw = argv[++i];
    bool ok = false;
    switch (f->type) {
      case Type::kInt:
        ok = ParseNumber(f->raw, &f->int_v);
        break;
      case Type::kUint64:
        ok = ParseNumber(f->raw, &f->u64_v);
        break;
      case Type::kDouble:
        ok = ParseNumber(f->raw, &f->double_v);
        break;
      case Type::kString:
        f->string_v = f->raw;
        ok = true;
        break;
      case Type::kBool:
        break;  // handled above
    }
    if (!ok) {
      error_ = "bad --" + f->name + " value: " + f->raw;
      return false;
    }
  }
  return true;
}

const Flags::Flag& Flags::Require(const std::string& name, Type type) const {
  for (const Flag& f : flags_) {
    if (f.name != name) continue;
    ORBIT_CHECK_MSG(f.type == type, "flag --" << name
                                              << " accessed with wrong type");
    return f;
  }
  ORBIT_CHECK_MSG(false, "unregistered flag: --" << name);
  __builtin_unreachable();
}

bool Flags::GetBool(const std::string& name) const {
  return Require(name, Type::kBool).bool_v;
}

int Flags::GetInt(const std::string& name) const {
  return Require(name, Type::kInt).int_v;
}

uint64_t Flags::GetUint64(const std::string& name) const {
  return Require(name, Type::kUint64).u64_v;
}

double Flags::GetDouble(const std::string& name) const {
  return Require(name, Type::kDouble).double_v;
}

const std::string& Flags::GetString(const std::string& name) const {
  return Require(name, Type::kString).string_v;
}

bool Flags::Seen(const std::string& name) const {
  return LastIndex(name) >= 0;
}

int Flags::LastIndex(const std::string& name) const {
  for (const Flag& f : flags_)
    if (f.name == name) return f.last_index;
  ORBIT_CHECK_MSG(false, "unregistered flag: --" << name);
  return -1;
}

const std::string& Flags::Raw(const std::string& name) const {
  for (const Flag& f : flags_)
    if (f.name == name) return f.raw;
  ORBIT_CHECK_MSG(false, "unregistered flag: --" << name);
  static const std::string kEmpty;
  return kEmpty;
}

std::string Flags::Usage() const {
  std::string out;
  for (const Flag& f : flags_) {
    std::string head = "  --" + f.name;
    if (!f.value_name.empty()) head += " " + f.value_name;
    // Short entries get the help on the same line; long ones wrap.
    if (head.size() <= 20) head.resize(21, ' ');
    else head += "\n                     ";
    out += head;
    // Indent continuation lines of multi-line help to the same column.
    for (const char c : f.help) {
      out += c;
      if (c == '\n') out += "                     ";
    }
    out += '\n';
  }
  return out;
}

}  // namespace orbit::harness
