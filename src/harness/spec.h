// Declarative experiment descriptions.
//
// Instead of hand-rolling nested sweep loops, each bench binary declares an
// ExperimentSpec: a base testbed configuration, the axes being swept (each
// axis a named list of labeled values that mutate the config), repetitions
// with derived seeds, and how one point runs (saturation search, fixed
// offered load, or a custom function). ExpandGrid() turns the spec into a
// flat list of self-contained PointRuns — each point carries its fully
// resolved config, so points execute independently and in parallel with
// bit-identical results to a serial run.
//
// The quick/--full duration knobs that every fig binary used to re-derive
// live here, in one place: PaperScaleProfile() maps the CLI scale to the
// key-space size and measurement windows, and specs opt out only when an
// experiment owns its own timeline (e.g. Fig. 18's hot-in swaps).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/json.h"
#include "harness/metrics.h"
#include "testbed/testbed.h"

namespace orbit::harness {

class SaturationCache;

// ---- scale (quick / default / full) ------------------------------------

enum class Scale { kQuick, kDefault, kFull };
const char* ScaleName(Scale scale);

struct ScaleProfile {
  uint64_t num_keys = 0;
  SimTime warmup = 0;
  SimTime duration = 0;
};

// The single source of truth for how each scale shrinks the paper's §5.1
// setup: kFull is paper scale (10M keys, 100/500 ms windows), kDefault is
// the figure-reproduction scale EXPERIMENTS.md quotes (1M keys, 50/150 ms),
// kQuick is the CI smoke scale (100K keys, 20/60 ms).
ScaleProfile PaperScaleProfile(Scale scale);

// The §5.1 testbed at paper scale (Scale::kFull numbers).
testbed::TestbedConfig PaperBaseConfig();

// PaperBaseConfig() with PaperScaleProfile(scale) applied.
testbed::TestbedConfig ScaledPaperConfig(Scale scale);

// ---- sweep axes ---------------------------------------------------------

struct Param {
  std::string label;  // printed value, e.g. "0.99" or "NetCache"
  double value = 0;   // numeric view (axis index for categorical axes)
  std::function<void(testbed::TestbedConfig&)> apply;  // may be empty
};

struct ParamAxis {
  std::string name;
  std::vector<Param> params;
};

// Axis helpers for the common cases.
ParamAxis SchemeAxis(const std::vector<testbed::Scheme>& schemes);
ParamAxis NumericAxis(std::string name, const std::vector<double>& values,
                      std::function<void(testbed::TestbedConfig&, double)> apply);

// Axis over leaf–spine rack counts (src/fabric/): each value enables the
// fabric with that many racks and grows the testbed proportionally —
// num_servers = racks × servers_per_rack, num_clients = racks ×
// clients_per_rack — and multiplies the aggregate client_rate_rps by the
// rack count (the base config's rate is read as the one-rack offered
// load). Axis name "racks"; the numeric value is the rack count.
ParamAxis FabricRackAxis(const std::vector<int>& rack_counts,
                         int servers_per_rack, int clients_per_rack);

// Axis over named fault scenarios: each entry installs a fault schedule
// (and any related knobs, e.g. the client retry budget) into the point's
// config. Builders run after scaling, so they can place fault times
// relative to the scaled cfg.warmup / cfg.duration window.
struct FaultScenario {
  std::string label;  // e.g. "switch-reset", "server-crash"
  std::function<void(testbed::TestbedConfig&)> apply;
};
ParamAxis FaultAxis(std::vector<FaultScenario> scenarios);

// ---- one expanded point -------------------------------------------------

struct ExperimentSpec;

struct PointRun {
  const ExperimentSpec* spec = nullptr;
  // Base config with scale, axis values, and the derived seed applied.
  testbed::TestbedConfig config;
  std::vector<std::pair<std::string, std::string>> params;  // name → label
  std::vector<double> values;                               // axis values
  Scale scale = Scale::kDefault;
  int point = 0;
  int rep = 0;
  uint64_t seed = 0;

  // Numeric value of a named axis (throws CheckFailure when absent).
  double Value(std::string_view axis_name) const;
};

// How one point produces its metrics object.
using RunFn = std::function<JsonValue(const PointRun&, SaturationCache&)>;

// ---- the spec -----------------------------------------------------------

struct ExperimentSpec {
  std::string name;   // stable identifier; the JSONL "experiment" field
  std::string title;  // table heading, e.g. "Fig. 9 — throughput vs skew"

  testbed::TestbedConfig base;     // full-scale base; scale shrinks it
  bool apply_paper_scale = true;   // apply PaperScaleProfile to the base
  // Extra per-scale adjustments (fig18's timeline, reduced sweep windows).
  std::function<void(testbed::TestbedConfig&, Scale)> scale_fn;

  std::vector<ParamAxis> axes;  // row-major: first axis varies slowest
  int repetitions = 1;          // rep 0 keeps the base seed; later reps derive

  // Saturation-search parameters (used by SaturationRun points).
  double loss_tolerance = 0.03;
  int max_corrections = 2;

  RunFn run;  // defaults to SaturationRun() when unset

  // Result shaping.
  bool include_timelines = false;
  bool include_server_loads = false;
  // Metric keys the text table prints (params always lead the row).
  std::vector<std::string> table_metrics = {"rx_mrps", "read_p50_us",
                                            "read_p99_us",
                                            "balancing_efficiency",
                                            "overflow_ratio"};
  // Printed after the table (speedup summaries, timelines, paper notes).
  std::function<void(const std::vector<MetricsRecord>&)> epilogue;

  size_t GridSize() const;  // product over axes (excludes repetitions)
  ExperimentSpec& WithTableMetrics(std::vector<std::string> metrics) {
    table_metrics = std::move(metrics);
    return *this;
  }
};

// Stable per-point seed derivation: rep 0 returns base_seed unchanged (so
// figure numbers keep matching EXPERIMENTS.md), later reps mix the
// experiment name, point index, and rep through SplitMix64.
uint64_t DeriveSeed(uint64_t base_seed, std::string_view experiment,
                    int point, int rep);

// Expands the sweep grid into per-point runs, ordered by (point, rep).
std::vector<PointRun> ExpandGrid(const ExperimentSpec& spec, Scale scale,
                                 uint64_t base_seed);

// ---- stock run functions ------------------------------------------------

// FindSaturation at the point's config, metrics from the saturating run
// (plus sat_tx_mrps / sat_runs). Memoizes through the SaturationCache.
RunFn SaturationRun();

// One RunTestbed at the config's own client_rate_rps.
RunFn FixedLoadRun();

// Finds the *base* config's saturation (shared across the fraction axis
// via the cache), then measures one run at fraction × saturating load.
// `fraction_axis` names the axis holding the fraction; that axis must not
// mutate the config.
RunFn FractionOfSaturationRun(std::string fraction_axis);

}  // namespace orbit::harness
