// Harness-side telemetry output: labeling per-point RunCaptures, merging
// them into one Chrome trace-event document, and flattening counter
// snapshots into JSON-lines time series.
//
// Both writers share the harness determinism contract: output depends only
// on the records/captures (which are themselves deterministic functions of
// spec + seed), never on wall clock, thread count, or map iteration order.
// Telemetry files are a side channel — MetricsRecord JSONL is unaffected
// by whether they are produced.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "harness/metrics.h"
#include "telemetry/counters.h"

namespace orbit::harness {

// Human-readable label identifying one record's capture in a merged trace:
// "experiment point=N rep=M axis=value ...". Shown as the Perfetto process
// name.
std::string CaptureLabel(const MetricsRecord& record);

// Merges slot-aligned captures (as produced by RunExperiments with
// capture_telemetry set) into one Chrome trace-event JSON document; points
// with empty captures are skipped. records/captures must be equal length.
std::string MergedChromeTrace(
    const std::vector<MetricsRecord>& records,
    const std::vector<telemetry::RunCapture>& captures);

// Counter-snapshot time series, one JSON line per snapshot per point:
//   {"experiment":"fig15","point":0,"rep":0,"params":{"scheme":"OrbitCache"},
//    "t_ns":500000000,"counters":{"switch.rx_packets":123,...},
//    "gauges":{"switch.recirc.in_flight":4,...}}
// Lines appear in slot order, snapshots in sim-time order within a point.
std::string CountersJsonl(const std::vector<MetricsRecord>& records,
                          const std::vector<telemetry::RunCapture>& captures);

// INT postcards, one JSON line per sampled flow per point:
//   {"experiment":"fig15","point":0,"rep":0,"params":{...},
//    "flow":8589934592,"op":"R-REQ","start_ns":..,"finish_ns":..,
//    "outcome":"read_cached","hops":[{"hop":"client-2.tx","kind":"client_tx",
//    "t_ns":..,"latency_ns":..,"queue_depth":..,"recirc":0,"drop":0},...]}
// Lines appear in slot order, flows in collection (start) order.
std::string IntJsonl(const std::vector<MetricsRecord>& records,
                     const std::vector<telemetry::RunCapture>& captures);

// Always-on histogram snapshots, one JSON line per histogram per point:
//   {"experiment":"fig15","point":0,"rep":0,"params":{...},
//    "hist":"hop.link.ns","unit":"ns","count":..,"min":..,"max":..,
//    "mean":..,"p50":..,"p90":..,"p99":..,"p999":..}
std::string HistJsonl(const std::vector<MetricsRecord>& records,
                      const std::vector<telemetry::RunCapture>& captures);

// Flight-recorder dumps as one text document, each point's dump preceded
// by a "### <CaptureLabel>" header; points without dumps are skipped.
std::string FlightText(const std::vector<MetricsRecord>& records,
                       const std::vector<telemetry::RunCapture>& captures);

// Parses CountersJsonl text back into one JsonValue object per line (blank
// lines ignored). Returns false on the first malformed line, reporting its
// line number in *error. Used by bench_compare --counters and tests.
bool ParseCountersJsonl(std::string_view text, std::vector<JsonValue>* out,
                        std::string* error);

// Writes `contents` to `path` byte-for-byte. Returns false and fills
// *error on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& contents,
                   std::string* error);

}  // namespace orbit::harness
