#include "harness/telemetry_io.h"

#include <cstdio>

#include "common/check.h"
#include "proto/message.h"
#include "telemetry/export.h"

namespace orbit::harness {

std::string CaptureLabel(const MetricsRecord& record) {
  std::string label = record.experiment;
  label += " point=" + std::to_string(record.point);
  label += " rep=" + std::to_string(record.rep);
  for (const auto& [name, value] : record.params)
    label += " " + name + "=" + value;
  return label;
}

std::string MergedChromeTrace(
    const std::vector<MetricsRecord>& records,
    const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::vector<telemetry::LabeledCapture> processes;
  for (size_t i = 0; i < records.size(); ++i) {
    if (captures[i].events.empty()) continue;
    processes.emplace_back(CaptureLabel(records[i]), &captures[i]);
  }
  return telemetry::ChromeTraceJson(processes);
}

std::string CountersJsonl(const std::vector<MetricsRecord>& records,
                          const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    const MetricsRecord& record = records[i];
    for (const telemetry::Snapshot& snap : captures[i].snapshots) {
      JsonValue line = JsonValue::MakeObject();
      line.Set("experiment", record.experiment);
      line.Set("point", record.point);
      line.Set("rep", record.rep);
      JsonValue params = JsonValue::MakeObject();
      for (const auto& [name, value] : record.params) params.Set(name, value);
      line.Set("params", std::move(params));
      line.Set("t_ns", static_cast<int64_t>(snap.at));
      JsonValue counters = JsonValue::MakeObject();
      for (const auto& [name, value] : snap.counters)
        counters.Set(name, value);
      line.Set("counters", std::move(counters));
      JsonValue gauges = JsonValue::MakeObject();
      for (const auto& [name, value] : snap.gauges) gauges.Set(name, value);
      line.Set("gauges", std::move(gauges));
      line.DumpTo(&out);
      out += '\n';
    }
  }
  return out;
}

namespace {

// Shared record-identity prefix so INT/hist lines join against record and
// counter JSONL on (experiment, point, rep).
JsonValue IdentityLine(const MetricsRecord& record) {
  JsonValue line = JsonValue::MakeObject();
  line.Set("experiment", record.experiment);
  line.Set("point", record.point);
  line.Set("rep", record.rep);
  JsonValue params = JsonValue::MakeObject();
  for (const auto& [name, value] : record.params) params.Set(name, value);
  line.Set("params", std::move(params));
  return line;
}

}  // namespace

std::string IntJsonl(const std::vector<MetricsRecord>& records,
                     const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    const telemetry::IntCapture& ic = captures[i].int_capture;
    for (const telemetry::IntFlowRec& flow : ic.flows) {
      JsonValue line = IdentityLine(records[i]);
      line.Set("flow", static_cast<int64_t>(flow.flow_id));
      line.Set("op", proto::OpName(static_cast<proto::Op>(flow.op)));
      line.Set("start_ns", static_cast<int64_t>(flow.started_at));
      line.Set("finish_ns", static_cast<int64_t>(flow.finished_at));
      line.Set("outcome", flow.outcome);
      if (flow.truncated_hops > 0)
        line.Set("truncated_hops", static_cast<int64_t>(flow.truncated_hops));
      JsonValue hops = JsonValue::MakeArray();
      for (const telemetry::IntHop& hop : flow.hops) {
        JsonValue h = JsonValue::MakeObject();
        h.Set("hop", ic.hop_names.at(hop.hop));
        h.Set("kind", telemetry::IntHopKindName(hop.kind));
        h.Set("t_ns", static_cast<int64_t>(hop.at));
        h.Set("latency_ns", hop.latency_ns);
        h.Set("queue_depth", hop.queue_depth);
        h.Set("recirc", static_cast<int64_t>(hop.recirc_count));
        h.Set("drop", static_cast<int64_t>(hop.drop_reason));
        hops.Append(std::move(h));
      }
      line.Set("hops", std::move(hops));
      line.DumpTo(&out);
      out += '\n';
    }
  }
  return out;
}

std::string HistJsonl(const std::vector<MetricsRecord>& records,
                      const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    for (const telemetry::HistSnapshot& h : captures[i].int_capture.hists) {
      JsonValue line = IdentityLine(records[i]);
      line.Set("hist", h.name);
      line.Set("unit", h.unit);
      line.Set("count", static_cast<int64_t>(h.count));
      line.Set("min", h.min);
      line.Set("max", h.max);
      line.Set("mean", h.mean);
      line.Set("p50", h.p50);
      line.Set("p90", h.p90);
      line.Set("p99", h.p99);
      line.Set("p999", h.p999);
      line.DumpTo(&out);
      out += '\n';
    }
  }
  return out;
}

std::string FlightText(const std::vector<MetricsRecord>& records,
                       const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    if (captures[i].flight_dump.empty()) continue;
    out += "### " + CaptureLabel(records[i]) + "\n";
    out += captures[i].flight_dump;
  }
  return out;
}

bool ParseCountersJsonl(std::string_view text, std::vector<JsonValue>* out,
                        std::string* error) {
  out->clear();
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    JsonValue value;
    std::string parse_error;
    if (!ParseJson(line, &value, &parse_error) || !value.is_object()) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      return false;
    }
    out->push_back(std::move(value));
  }
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& contents,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace orbit::harness
