#include "harness/telemetry_io.h"

#include <cstdio>

#include "common/check.h"
#include "telemetry/export.h"

namespace orbit::harness {

std::string CaptureLabel(const MetricsRecord& record) {
  std::string label = record.experiment;
  label += " point=" + std::to_string(record.point);
  label += " rep=" + std::to_string(record.rep);
  for (const auto& [name, value] : record.params)
    label += " " + name + "=" + value;
  return label;
}

std::string MergedChromeTrace(
    const std::vector<MetricsRecord>& records,
    const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::vector<telemetry::LabeledCapture> processes;
  for (size_t i = 0; i < records.size(); ++i) {
    if (captures[i].events.empty()) continue;
    processes.emplace_back(CaptureLabel(records[i]), &captures[i]);
  }
  return telemetry::ChromeTraceJson(processes);
}

std::string CountersJsonl(const std::vector<MetricsRecord>& records,
                          const std::vector<telemetry::RunCapture>& captures) {
  ORBIT_CHECK(records.size() == captures.size());
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    const MetricsRecord& record = records[i];
    for (const telemetry::Snapshot& snap : captures[i].snapshots) {
      JsonValue line = JsonValue::MakeObject();
      line.Set("experiment", record.experiment);
      line.Set("point", record.point);
      line.Set("rep", record.rep);
      JsonValue params = JsonValue::MakeObject();
      for (const auto& [name, value] : record.params) params.Set(name, value);
      line.Set("params", std::move(params));
      line.Set("t_ns", static_cast<int64_t>(snap.at));
      JsonValue counters = JsonValue::MakeObject();
      for (const auto& [name, value] : snap.counters)
        counters.Set(name, value);
      line.Set("counters", std::move(counters));
      JsonValue gauges = JsonValue::MakeObject();
      for (const auto& [name, value] : snap.gauges) gauges.Set(name, value);
      line.Set("gauges", std::move(gauges));
      line.DumpTo(&out);
      out += '\n';
    }
  }
  return out;
}

bool ParseCountersJsonl(std::string_view text, std::vector<JsonValue>* out,
                        std::string* error) {
  out->clear();
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    JsonValue value;
    std::string parse_error;
    if (!ParseJson(line, &value, &parse_error) || !value.is_object()) {
      if (error != nullptr)
        *error = "line " + std::to_string(line_no) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      return false;
    }
    out->push_back(std::move(value));
  }
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& contents,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace orbit::harness
