#include "harness/cli.h"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "harness/telemetry_io.h"

namespace orbit::harness {

namespace {

bool ParseUint64(const char* s, uint64_t* out) {
  const char* end = s + std::strlen(s);
  const auto res = std::from_chars(s, end, *out);
  return res.ec == std::errc() && res.ptr == end;
}

bool ParseInt(const char* s, int* out) {
  const char* end = s + std::strlen(s);
  const auto res = std::from_chars(s, end, *out);
  return res.ec == std::errc() && res.ptr == end;
}

bool ParseDouble(const char* s, double* out) {
  const char* end = s + std::strlen(s);
  const auto res = std::from_chars(s, end, *out);
  return res.ec == std::errc() && res.ptr == end;
}

}  // namespace

CliOptions ParseCli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        opts.error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--full") == 0) {
      opts.runner.scale = Scale::kFull;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opts.runner.scale = Scale::kQuick;
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next_value("--seed");
      if (v == nullptr) break;
      if (!ParseUint64(v, &opts.runner.base_seed)) {
        opts.error = std::string("bad --seed value: ") + v;
        break;
      }
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = next_value("--jobs");
      if (v == nullptr) break;
      if (!ParseInt(v, &opts.runner.jobs) || opts.runner.jobs < 1) {
        opts.error = std::string("bad --jobs value: ") + v;
        break;
      }
    } else if (std::strcmp(arg, "--timeout") == 0) {
      const char* v = next_value("--timeout");
      if (v == nullptr) break;
      if (!ParseDouble(v, &opts.runner.point_timeout_sec) ||
          opts.runner.point_timeout_sec < 0) {
        opts.error = std::string("bad --timeout value: ") + v;
        break;
      }
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = next_value("--out");
      if (v == nullptr) break;
      opts.out_path = v;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      const char* v = next_value("--trace-out");
      if (v == nullptr) break;
      opts.trace_out_path = v;
    } else if (std::strcmp(arg, "--trace-sample") == 0) {
      const char* v = next_value("--trace-sample");
      if (v == nullptr) break;
      uint64_t n = 0;
      if (!ParseUint64(v, &n) || n > UINT32_MAX) {
        opts.error = std::string("bad --trace-sample value: ") + v;
        break;
      }
      opts.runner.trace_sample = static_cast<uint32_t>(n);
    } else if (std::strcmp(arg, "--counters-out") == 0) {
      const char* v = next_value("--counters-out");
      if (v == nullptr) break;
      opts.counters_out_path = v;
    } else if (std::strcmp(arg, "--snapshot-interval") == 0) {
      const char* v = next_value("--snapshot-interval");
      if (v == nullptr) break;
      double ms = 0;
      if (!ParseDouble(v, &ms) || ms < 0) {
        opts.error = std::string("bad --snapshot-interval value: ") + v;
        break;
      }
      opts.runner.snapshot_interval =
          static_cast<SimTime>(ms * kMillisecond);
    } else if (std::strcmp(arg, "--no-progress") == 0) {
      opts.runner.progress = false;
    } else if (std::strcmp(arg, "--list") == 0) {
      opts.list = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      opts.help = true;
    } else if (arg[0] == '-') {
      opts.error = std::string("unknown flag: ") + arg;
      break;
    } else {
      opts.filters.emplace_back(arg);
    }
  }
  return opts;
}

void PrintHelp(const char* prog, const std::vector<ExperimentSpec>& specs) {
  std::printf(
      "usage: %s [NAME...] [--quick|--full] [--seed N] [--jobs N]\n"
      "       [--timeout SEC] [--out results.jsonl] [--list] [--no-progress]\n"
      "       [--trace-out trace.json] [--trace-sample N]\n"
      "       [--counters-out counters.jsonl] [--snapshot-interval MS]\n"
      "\n"
      "  NAME...        run only experiments whose name contains NAME\n"
      "  --quick        CI smoke scale (100K keys, 20/60 ms windows)\n"
      "  --full         paper scale (10M keys, 100/500 ms windows)\n"
      "  --seed N       base seed (default 42); repetitions derive from it\n"
      "  --jobs N       run up to N sweep points in parallel (default 1);\n"
      "                 output is byte-identical at any job count\n"
      "  --timeout SEC  per-point wall-clock budget; an expired point is\n"
      "                 recorded as an error, the suite continues\n"
      "  --out PATH     write one JSON metrics record per point to PATH\n"
      "  --trace-out PATH\n"
      "                 capture request-lifecycle spans and write one merged\n"
      "                 Chrome trace (open in Perfetto / chrome://tracing)\n"
      "  --trace-sample N\n"
      "                 trace every Nth request per client (default 64)\n"
      "  --counters-out PATH\n"
      "                 write switch/app counter snapshots as JSONL series\n"
      "  --snapshot-interval MS\n"
      "                 sim-time period between counter snapshots (default\n"
      "                 0 = one final snapshot per point)\n"
      "  --list         list experiment names and exit\n"
      "\n"
      "experiments and swept parameters:\n",
      prog);
  for (const auto& spec : specs) {
    std::printf("  %-24s %s\n", spec.name.c_str(), spec.title.c_str());
    for (const auto& axis : spec.axes) {
      std::printf("      %-20s", axis.name.c_str());
      for (size_t i = 0; i < axis.params.size(); ++i)
        std::printf("%s%s", i == 0 ? "" : ", ", axis.params[i].label.c_str());
      std::printf("\n");
    }
    if (spec.repetitions > 1)
      std::printf("      %-20s%d (derived seeds)\n", "repetitions",
                  spec.repetitions);
  }
}

int HarnessMain(const std::vector<ExperimentSpec>& specs, int argc,
                char** argv) {
  const CliOptions opts = ParseCli(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\nrun with --help for usage\n",
                 opts.error.c_str());
    return 2;
  }
  if (opts.help) {
    PrintHelp(argv[0], specs);
    return 0;
  }
  if (opts.list) {
    for (const auto& spec : specs)
      std::printf("%s\t%zu points\n", spec.name.c_str(),
                  spec.GridSize() * static_cast<size_t>(spec.repetitions));
    return 0;
  }

  std::vector<ExperimentSpec> selected;
  if (opts.filters.empty()) {
    selected = specs;
  } else {
    for (const auto& spec : specs)
      for (const auto& f : opts.filters)
        if (spec.name.find(f) != std::string::npos) {
          selected.push_back(spec);
          break;
        }
    if (selected.empty()) {
      std::fprintf(stderr, "no experiment matches the given filters\n");
      return 2;
    }
  }

  RunnerOptions runner = opts.runner;
  if (!opts.trace_out_path.empty() || !opts.counters_out_path.empty()) {
    runner.capture_telemetry = true;
    // Collect only what will be written: spans cost nothing when sampling
    // is off, and counter snapshots cost nothing unless requested.
    if (opts.trace_out_path.empty()) runner.trace_sample = 0;
  }

  const RunOutcome outcome = RunExperiments(selected, runner);
  PrintTables(selected, outcome.records);
  std::printf("\n%zu points in %.1fs (scale=%s, jobs=%d, seed=%llu",
              outcome.records.size(), outcome.wall_seconds,
              ScaleName(opts.runner.scale), opts.runner.jobs,
              static_cast<unsigned long long>(opts.runner.base_seed));
  if (outcome.sat_cache_hits > 0)
    std::printf(", sat-cache hits=%llu",
                static_cast<unsigned long long>(outcome.sat_cache_hits));
  std::printf(")%s\n",
              outcome.errors > 0 ? " — WITH ERRORS" : "");

  if (!opts.out_path.empty()) {
    std::string error;
    if (!WriteJsonlFile(opts.out_path, outcome.records, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote %zu records to %s\n", outcome.records.size(),
                opts.out_path.c_str());
  }
  if (!opts.trace_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.trace_out_path,
                       MergedChromeTrace(outcome.records, outcome.captures),
                       &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote trace to %s\n", opts.trace_out_path.c_str());
  }
  if (!opts.counters_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.counters_out_path,
                       CountersJsonl(outcome.records, outcome.captures),
                       &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote counter snapshots to %s\n",
                opts.counters_out_path.c_str());
  }
  return outcome.errors > 0 ? 1 : 0;
}

}  // namespace orbit::harness
