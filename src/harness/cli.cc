#include "harness/cli.h"

#include <cstdint>
#include <cstdio>

#include "harness/flags.h"
#include "harness/telemetry_io.h"

namespace orbit::harness {

namespace {

// One flag table shared by parsing and --help so the two cannot drift.
Flags MakeFlags() {
  Flags flags;
  flags.AddBool("quick", "CI smoke scale (100K keys, 20/60 ms windows)");
  flags.AddBool("full", "paper scale (10M keys, 100/500 ms windows)");
  flags.AddUint64("seed", 42, "N",
                  "base seed (default 42); repetitions derive from it");
  flags.AddInt("jobs", 1, "N",
               "run up to N sweep points in parallel (default 1);\n"
               "output is byte-identical at any job count");
  flags.AddDouble("timeout", 0, "SEC",
                  "per-point wall-clock budget; an expired point is\n"
                  "recorded as an error, the suite continues");
  flags.AddString("out", "", "PATH",
                  "write one JSON metrics record per point to PATH");
  flags.AddString("trace-out", "", "PATH",
                  "capture request-lifecycle spans and write one merged\n"
                  "Chrome trace (open in Perfetto / chrome://tracing)");
  flags.AddUint64("trace-sample", 64, "N",
                  "trace every Nth request per client (default 64)");
  flags.AddString("counters-out", "", "PATH",
                  "write switch/app counter snapshots as JSONL series");
  flags.AddDouble("snapshot-interval", 0, "MS",
                  "sim-time period between counter snapshots (default\n"
                  "0 = one final snapshot per point)");
  flags.AddString("int-out", "", "PATH",
                  "collect INT postcards (per-hop records of sampled\n"
                  "requests) and write them as JSONL");
  flags.AddUint64("int-sample", 64, "N",
                  "stamp INT postcards on every Nth request per client\n"
                  "(default 64; used only with --int-out)");
  flags.AddString("hist-out", "", "PATH",
                  "record always-on per-hop/per-link histograms and write\n"
                  "their end-of-run snapshots as JSONL");
  flags.AddString("flight-dump", "", "PATH",
                  "keep per-component flight-recorder rings, dump them at\n"
                  "end of run (and on faults/check failures) to PATH");
  flags.AddBool("verify",
                "run every point under the shadow-oracle verification\n"
                "layer (src/verify/); results stay byte-identical, a\n"
                "violation is recorded as the point's error");
  flags.AddBool("no-progress", "silence the per-point progress lines");
  flags.AddBool("list", "list experiment names and exit");
  flags.AddBool("help", "this message").Alias("-h");
  return flags;
}

}  // namespace

CliOptions ParseCli(int argc, char** argv) {
  CliOptions opts;
  Flags flags = MakeFlags();
  if (!flags.Parse(argc, argv)) {
    opts.error = flags.error();
    return opts;
  }

  // --quick / --full: the later mention wins, matching the historical
  // last-assignment behavior.
  if (flags.LastIndex("full") > flags.LastIndex("quick"))
    opts.runner.scale = Scale::kFull;
  else if (flags.Seen("quick"))
    opts.runner.scale = Scale::kQuick;

  opts.runner.base_seed = flags.GetUint64("seed");
  opts.runner.jobs = flags.GetInt("jobs");
  if (opts.runner.jobs < 1) {
    opts.error = "bad --jobs value: " + flags.Raw("jobs");
    return opts;
  }
  opts.runner.point_timeout_sec = flags.GetDouble("timeout");
  if (opts.runner.point_timeout_sec < 0) {
    opts.error = "bad --timeout value: " + flags.Raw("timeout");
    return opts;
  }
  const uint64_t trace_sample = flags.GetUint64("trace-sample");
  if (trace_sample > UINT32_MAX) {
    opts.error = "bad --trace-sample value: " + flags.Raw("trace-sample");
    return opts;
  }
  opts.runner.trace_sample = static_cast<uint32_t>(trace_sample);
  const double snapshot_ms = flags.GetDouble("snapshot-interval");
  if (snapshot_ms < 0) {
    opts.error = "bad --snapshot-interval value: " +
                 flags.Raw("snapshot-interval");
    return opts;
  }
  opts.runner.snapshot_interval =
      static_cast<SimTime>(snapshot_ms * kMillisecond);
  const uint64_t int_sample = flags.GetUint64("int-sample");
  if (int_sample == 0 || int_sample > UINT32_MAX) {
    opts.error = "bad --int-sample value: " + flags.Raw("int-sample");
    return opts;
  }
  opts.runner.int_sample = static_cast<uint32_t>(int_sample);
  opts.runner.verify = flags.GetBool("verify");
  opts.runner.progress = !flags.GetBool("no-progress");
  opts.out_path = flags.GetString("out");
  opts.trace_out_path = flags.GetString("trace-out");
  opts.counters_out_path = flags.GetString("counters-out");
  opts.int_out_path = flags.GetString("int-out");
  opts.hist_out_path = flags.GetString("hist-out");
  opts.flight_dump_path = flags.GetString("flight-dump");
  opts.list = flags.GetBool("list");
  opts.help = flags.GetBool("help");
  opts.filters = flags.positionals();
  return opts;
}

void PrintHelp(const char* prog, const std::vector<ExperimentSpec>& specs) {
  std::printf(
      "usage: %s [NAME...] [--quick|--full] [--seed N] [--jobs N]\n"
      "       [--timeout SEC] [--out results.jsonl] [--list] [--no-progress]\n"
      "       [--trace-out trace.json] [--trace-sample N]\n"
      "       [--counters-out counters.jsonl] [--snapshot-interval MS]\n"
      "       [--int-out int.jsonl] [--int-sample N] [--hist-out hist.jsonl]\n"
      "       [--flight-dump flight.txt] [--verify]\n"
      "\n"
      "  NAME...            run only experiments whose name contains NAME\n"
      "%s"
      "\n"
      "experiments and swept parameters:\n",
      prog, MakeFlags().Usage().c_str());
  for (const auto& spec : specs) {
    std::printf("  %-24s %s\n", spec.name.c_str(), spec.title.c_str());
    for (const auto& axis : spec.axes) {
      std::printf("      %-20s", axis.name.c_str());
      for (size_t i = 0; i < axis.params.size(); ++i)
        std::printf("%s%s", i == 0 ? "" : ", ", axis.params[i].label.c_str());
      std::printf("\n");
    }
    if (spec.repetitions > 1)
      std::printf("      %-20s%d (derived seeds)\n", "repetitions",
                  spec.repetitions);
  }
}

int HarnessMain(const std::vector<ExperimentSpec>& specs, int argc,
                char** argv) {
  const CliOptions opts = ParseCli(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\nrun with --help for usage\n",
                 opts.error.c_str());
    return 2;
  }
  if (opts.help) {
    PrintHelp(argv[0], specs);
    return 0;
  }
  if (opts.list) {
    for (const auto& spec : specs)
      std::printf("%s\t%zu points\n", spec.name.c_str(),
                  spec.GridSize() * static_cast<size_t>(spec.repetitions));
    return 0;
  }

  std::vector<ExperimentSpec> selected;
  if (opts.filters.empty()) {
    selected = specs;
  } else {
    for (const auto& spec : specs)
      for (const auto& f : opts.filters)
        if (spec.name.find(f) != std::string::npos) {
          selected.push_back(spec);
          break;
        }
    if (selected.empty()) {
      std::fprintf(stderr, "no experiment matches the given filters\n");
      return 2;
    }
  }

  RunnerOptions runner = opts.runner;
  if (!opts.trace_out_path.empty() || !opts.counters_out_path.empty() ||
      !opts.int_out_path.empty() || !opts.hist_out_path.empty() ||
      !opts.flight_dump_path.empty()) {
    runner.capture_telemetry = true;
    // Collect only what will be written: spans cost nothing when sampling
    // is off, and counter snapshots cost nothing unless requested.
    if (opts.trace_out_path.empty()) runner.trace_sample = 0;
  }
  if (opts.int_out_path.empty()) runner.int_sample = 0;
  runner.histograms = !opts.hist_out_path.empty();
  if (!opts.flight_dump_path.empty()) {
    runner.flight_recorder = true;
    runner.flight_end_dump = true;
  }

  const RunOutcome outcome = RunExperiments(selected, runner);
  PrintTables(selected, outcome.records);
  std::printf("\n%zu points in %.1fs (scale=%s, jobs=%d, seed=%llu",
              outcome.records.size(), outcome.wall_seconds,
              ScaleName(opts.runner.scale), opts.runner.jobs,
              static_cast<unsigned long long>(opts.runner.base_seed));
  if (outcome.sat_cache_hits > 0)
    std::printf(", sat-cache hits=%llu",
                static_cast<unsigned long long>(outcome.sat_cache_hits));
  std::printf(")%s\n",
              outcome.errors > 0 ? " — WITH ERRORS" : "");

  if (!opts.out_path.empty()) {
    std::string error;
    if (!WriteJsonlFile(opts.out_path, outcome.records, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote %zu records to %s\n", outcome.records.size(),
                opts.out_path.c_str());
  }
  if (!opts.trace_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.trace_out_path,
                       MergedChromeTrace(outcome.records, outcome.captures),
                       &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote trace to %s\n", opts.trace_out_path.c_str());
  }
  if (!opts.counters_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.counters_out_path,
                       CountersJsonl(outcome.records, outcome.captures),
                       &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote counter snapshots to %s\n",
                opts.counters_out_path.c_str());
  }
  if (!opts.int_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.int_out_path,
                       IntJsonl(outcome.records, outcome.captures), &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote INT postcards to %s\n", opts.int_out_path.c_str());
  }
  if (!opts.hist_out_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.hist_out_path,
                       HistJsonl(outcome.records, outcome.captures), &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote histogram snapshots to %s\n",
                opts.hist_out_path.c_str());
  }
  if (!opts.flight_dump_path.empty()) {
    std::string error;
    if (!WriteTextFile(opts.flight_dump_path,
                       FlightText(outcome.records, outcome.captures),
                       &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote flight dumps to %s\n", opts.flight_dump_path.c_str());
  }
  return outcome.errors > 0 ? 1 : 0;
}

}  // namespace orbit::harness
