#include "harness/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace orbit::harness {

JsonValue::JsonValue(uint64_t v) {
  if (v <= static_cast<uint64_t>(INT64_MAX)) {
    type_ = Type::kInt;
    int_ = static_cast<int64_t>(v);
  } else {
    type_ = Type::kDouble;
    double_ = static_cast<double>(v);
  }
}

int64_t JsonValue::AsInt(int64_t def) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return def;
}

double JsonValue::AsDouble(double def) const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kDouble) return double_;
  return def;
}

void JsonValue::Set(std::string_view key, JsonValue value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted) const {
  const JsonValue* cur = this;
  while (true) {
    const size_t dot = dotted.find('.');
    const JsonValue* next = cur->Find(dotted.substr(0, dot));
    if (next == nullptr || dot == std::string_view::npos) return next;
    cur = next;
    dotted.remove_prefix(dot + 1);
  }
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) {
    // Allow 1 == 1.0 across the int/double divide.
    if (a.is_number() && b.is_number()) return a.AsDouble() == b.AsDouble();
    return false;
  }
  switch (a.type_) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.bool_ == b.bool_;
    case JsonValue::Type::kInt: return a.int_ == b.int_;
    case JsonValue::Type::kDouble: return a.double_ == b.double_;
    case JsonValue::Type::kString: return a.string_ == b.string_;
    case JsonValue::Type::kArray: return a.array_ == b.array_;
    case JsonValue::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  ORBIT_CHECK(res.ec == std::errc());
  out->append(buf, res.ptr);
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out->append(buf, res.ptr);
      break;
    }
    case Type::kDouble:
      AppendJsonNumber(double_, out);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ---- parser -------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr)
      *error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return true;
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return true;
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key))
        return Fail("expected object key");
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object().emplace_back(key.AsString(), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue(std::move(s));
        return true;
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4)
            return Fail("bad \\u escape");
          pos_ += 4;
          // The writer only emits \u00xx control codes; decode the BMP
          // subset as UTF-8 and reject surrogates.
          if (code >= 0xD800 && code <= 0xDFFF)
            return Fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return Fail("expected value");
    if (integral) {
      int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        *out = JsonValue(v);
        return true;
      }
      // Fall through to double on int64 overflow.
    }
    double d = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
      return Fail("bad number");
    *out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).ParseDocument(out);
}

}  // namespace orbit::harness
