// Result-file comparison: the regression gate behind tools/bench_compare.
//
// Two JSON-lines result files are matched record-by-record on (experiment,
// params, rep). For each matched pair the chosen numeric metrics are
// compared with a relative tolerance plus a small absolute slack (so a
// 0.000 → 0.003 overflow ratio doesn't read as a 100% regression), and
// any drift beyond the bound — in either direction — is reported. Records
// present on only one side, and error records, fail the comparison.
#pragma once

#include <string>
#include <vector>

#include "harness/metrics.h"

namespace orbit::harness {

struct CompareOptions {
  double tolerance = 0.05;  // relative
  double slack = 0.02;      // absolute floor under which drift is ignored
  // Metric keys to compare; empty selects the default robust set
  // (rx_mrps, balancing_efficiency, overflow_ratio, read_p50/p99_us,
  // cache_mrps, sat_tx_mrps) intersected with what each record carries.
  std::vector<std::string> metrics;
  bool all_metrics = false;  // compare every numeric scalar instead
};

struct MetricDiff {
  std::string key;     // record identity
  std::string metric;
  double a = 0;
  double b = 0;
  double rel = 0;      // |a-b| / max(|a|,|b|)
};

struct CompareReport {
  size_t matched = 0;
  size_t metrics_compared = 0;
  std::vector<std::string> only_a;   // record keys missing from B
  std::vector<std::string> only_b;
  std::vector<std::string> errored;  // records with error fields
  std::vector<MetricDiff> diffs;     // beyond tolerance
  // A selected metric present (and numeric) on exactly one side of a
  // matched pair. Missing from BOTH sides is a documented skip — the
  // default metric set deliberately spans experiments that emit different
  // metrics — but one-sided disappearance is a regression, not a skip.
  std::vector<std::string> missing_metrics;

  // Records matched but not a single metric value was compared: every
  // selected metric was absent from both sides (typo'd --metrics, or
  // result files from a different suite). A gate that compares nothing
  // must not report success.
  bool vacuous() const { return matched > 0 && metrics_compared == 0; }

  bool ok() const {
    return only_a.empty() && only_b.empty() && errored.empty() &&
           diffs.empty() && missing_metrics.empty() && !vacuous();
  }
};

const std::vector<std::string>& DefaultCompareMetrics();

CompareReport CompareResults(const std::vector<MetricsRecord>& a,
                             const std::vector<MetricsRecord>& b,
                             const CompareOptions& options = {});

// Human-readable multi-line summary of a report.
std::string FormatReport(const CompareReport& report,
                         const CompareOptions& options);

}  // namespace orbit::harness
