// Parallel experiment execution.
//
// Every PointRun is independent (the simulator is single-threaded and
// deterministic per point), so the runner fans the expanded grid out over
// a pool of worker threads pulling from a shared queue. Records land in
// pre-assigned slots ordered by (spec order, point, rep), which makes the
// JSON-lines output of `--jobs 8` byte-identical to `--jobs 1`. One
// point's failure (timeout, divergence, CHECK) is captured in its record's
// error field and never kills the suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/metrics.h"
#include "harness/spec.h"
#include "telemetry/counters.h"

namespace orbit::harness {

struct RunnerOptions {
  Scale scale = Scale::kDefault;
  uint64_t base_seed = 42;
  int jobs = 1;
  double point_timeout_sec = 0;  // 0 disables the per-point deadline
  bool progress = true;          // one stderr line per finished point

  // Telemetry (off by default). When enabled the runner attaches one
  // RunCapture per slot; captures land alongside records and never touch
  // the metrics themselves, so record JSONL stays byte-identical either
  // way. Sim-time timestamps keep captures deterministic across --jobs.
  bool capture_telemetry = false;
  uint32_t trace_sample = 64;        // trace every Nth request per client
  SimTime snapshot_interval = 0;     // 0 = final snapshot only
  uint32_t int_sample = 0;           // INT postcards every Nth request (0=off)
  bool histograms = false;           // always-on per-hop/per-link histograms
  bool flight_recorder = false;      // per-component event rings
  bool flight_end_dump = false;      // dump rings at end of run too

  // Verification (off by default). Enables the shadow oracle + packet
  // conservation + switch invariant checks (src/verify/) on every point.
  // Results-neutral: record JSONL stays byte-identical either way; a
  // violation surfaces as the point's error field (fail-fast CHECK).
  bool verify = false;
};

struct RunOutcome {
  // Ordered by (spec order, point, rep) regardless of jobs.
  std::vector<MetricsRecord> records;
  // Slot-aligned with records when capture_telemetry was set; else empty.
  std::vector<telemetry::RunCapture> captures;
  int errors = 0;
  double wall_seconds = 0;   // never serialized (would break determinism)
  uint64_t sat_cache_hits = 0;
};

RunOutcome RunExperiments(const std::vector<ExperimentSpec>& specs,
                          const RunnerOptions& options);

// Text output: per-experiment aligned tables (params + table_metrics) and
// the spec's epilogue, from the already-collected records.
void PrintTables(const std::vector<ExperimentSpec>& specs,
                 const std::vector<MetricsRecord>& records);

}  // namespace orbit::harness
