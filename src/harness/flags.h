// Declarative command-line flags shared by the bench binaries and tools.
//
// Each binary registers its flags once (name, default, value placeholder,
// help line), calls Parse(), and reads values back through typed accessors:
//
//   harness::Flags flags;
//   flags.AddBool("quick", "CI smoke scale");
//   flags.AddInt("jobs", 1, "N", "run up to N sweep points in parallel");
//   if (!flags.Parse(argc, argv)) { ... flags.error() ... }
//   int jobs = flags.GetInt("jobs");
//
// Parsing rules match the historical hand-rolled loops: flags start with
// "--" (plus any registered short aliases such as -h), every non-bool flag
// consumes the following argv entry, unknown flags and malformed values
// set error(), and everything else collects into positionals().
// Usage() generates the flag section of --help from the registrations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace orbit::harness {

class Flags {
 public:
  // Registration. `name` is the long name without dashes; `value_name` is
  // the placeholder printed in help ("N", "PATH", "SEC"...). Returns *this
  // so registrations chain.
  Flags& AddBool(const std::string& name, const std::string& help);
  Flags& AddInt(const std::string& name, int def, const std::string& value_name,
                const std::string& help);
  Flags& AddUint64(const std::string& name, uint64_t def,
                   const std::string& value_name, const std::string& help);
  Flags& AddDouble(const std::string& name, double def,
                   const std::string& value_name, const std::string& help);
  Flags& AddString(const std::string& name, const std::string& def,
                   const std::string& value_name, const std::string& help);
  // Extra spelling for the most recent registration (e.g. "-h" for --help).
  Flags& Alias(const std::string& spelling);

  // Parses argv. Returns false (and sets error()) on an unknown flag, a
  // missing value, or a value that does not parse as the registered type.
  bool Parse(int argc, char** argv);

  // Typed accessors; the flag must have been registered with that type.
  bool GetBool(const std::string& name) const;
  int GetInt(const std::string& name) const;
  uint64_t GetUint64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // True when the flag appeared on the command line.
  bool Seen(const std::string& name) const;
  // argv index of the flag's last occurrence (-1 when unseen) — lets a
  // caller resolve "last one wins" between mutually exclusive flags.
  int LastIndex(const std::string& name) const;
  // The unparsed text of the flag's last value (for error messages).
  const std::string& Raw(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& error() const { return error_; }

  // The generated flag section of --help: one "  --name VALUE  help" line
  // per registration, in registration order, multi-line help indented.
  std::string Usage() const;

 private:
  enum class Type { kBool, kInt, kUint64, kDouble, kString };
  struct Flag {
    std::string name;
    Type type = Type::kBool;
    std::string value_name;
    std::string help;
    std::vector<std::string> aliases;
    // Values (only the one matching `type` is meaningful).
    bool bool_v = false;
    int int_v = 0;
    uint64_t u64_v = 0;
    double double_v = 0;
    std::string string_v;
    std::string raw;
    int last_index = -1;
  };

  Flag& Register(const std::string& name, Type type,
                 const std::string& value_name, const std::string& help);
  Flag* Find(const std::string& spelling);
  // Nearest registered spelling within a small edit distance ("" = none
  // close enough); feeds the "did you mean" hint on unknown flags.
  std::string Suggest(const std::string& spelling) const;
  const Flag& Require(const std::string& name, Type type) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace orbit::harness
