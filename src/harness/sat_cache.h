// Thread-safe memoization of testbed::FindSaturation.
//
// Saturation searches are pure functions of the config, so several sweep
// points that share a base (every load fraction of one scheme, say) can
// share one search. The cache keys on the config fingerprint plus the
// search parameters and deduplicates concurrent computations with a
// shared_future, which keeps parallel runs from racing to compute the same
// point — and, because the function is deterministic, keeps cached and
// recomputed values identical, preserving parallel-equals-serial output.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "testbed/testbed.h"

namespace orbit::harness {

class SaturationCache {
 public:
  testbed::SaturationResult Get(const testbed::TestbedConfig& config,
                                double loss_tolerance, int max_corrections);

  size_t entries() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_future<testbed::SaturationResult>>
      memo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace orbit::harness
