// Thread-safe memoization of testbed::FindSaturation.
//
// Saturation searches are pure functions of the config, so several sweep
// points that share a base (every load fraction of one scheme, say) can
// share one search. The cache keys on the config fingerprint plus the
// search parameters and deduplicates concurrent computations with a
// shared_future, which keeps parallel runs from racing to compute the same
// point — and, because the function is deterministic, keeps cached and
// recomputed values identical, preserving parallel-equals-serial output.
//
// Failures are not memoized: when the owner's compute throws (a per-point
// deadline, say), the memo entry is evicted before the exception
// propagates, so waiters already attached to that future fail once but any
// later Get with the same config recomputes from scratch.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "testbed/testbed.h"

namespace orbit::harness {

class SaturationCache {
 public:
  using ComputeFn = std::function<testbed::SaturationResult(
      const testbed::TestbedConfig&, double, int)>;

  // Computes with testbed::FindSaturation.
  SaturationCache();
  // Computes with `compute` — tests inject flaky functions here.
  explicit SaturationCache(ComputeFn compute);

  testbed::SaturationResult Get(const testbed::TestbedConfig& config,
                                double loss_tolerance, int max_corrections);

  size_t entries() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  // Memo entries evicted because their computation threw.
  uint64_t failures() const { return failures_; }

 private:
  ComputeFn compute_;
  mutable std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_future<testbed::SaturationResult>>
      memo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace orbit::harness
