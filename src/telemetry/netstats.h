// Per-link drop-reason counters for the snapshot exporter.
//
// The fabric-wide drop tap (sim::Network::SetDropTap) aggregates all loss
// into three reason totals; in multi-switch runs that hides *where* a hop
// lost packets. This helper walks the network's links in creation order and
// registers one pull-based counter per direction per drop reason, named
//
//   net.link.<idx>.<from>-><to>.drop.{queue_overflow,injected_loss,link_down}
//
// The index disambiguates nodes with identical names (all clients print as
// "client"); names come from Node::name() so leaf/spine hops are readable.
// Pull-based over Link::ChannelStats: registering costs nothing per packet.
#pragma once

#include "sim/network.h"
#include "telemetry/counters.h"
#include "telemetry/int/int.h"

namespace orbit::telemetry {

void RegisterLinkDropCounters(Registry& reg, const sim::Network& net);

// INT attachment for every link (both directions), in creation order.
// Interns per-direction hop names `link.<idx>.<from>-><to>`, always-on
// queue-depth histograms `link.<idx>.<from>-><to>.queue_bytes`, and the
// shared hop-class latency histogram `hop.link.ns`. Call after the
// topology is fully wired — links created later are not instrumented.
void AttachLinkInt(IntSink& sink, sim::Network& net);

}  // namespace orbit::telemetry
