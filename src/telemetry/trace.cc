#include "telemetry/trace.h"

#include <unordered_map>

namespace orbit::telemetry {

std::vector<RequestSummary> SummarizeRequests(
    const std::vector<TraceEvent>& events) {
  std::vector<RequestSummary> out;
  std::unordered_map<uint64_t, size_t> index;
  for (const TraceEvent& ev : events) {
    if (ev.trace_id == 0) continue;
    auto [it, fresh] = index.emplace(ev.trace_id, out.size());
    if (fresh) {
      RequestSummary s;
      s.trace_id = ev.trace_id;
      out.push_back(std::move(s));
    }
    RequestSummary& s = out[it->second];
    ++s.events;
    if (std::string_view(ev.name) == "request") {
      s.total = ev.dur;
      s.outcome = ev.detail != nullptr ? ev.detail : "";
      continue;
    }
    if (ev.dur <= 0) continue;  // instants carry no attributable time
    bool merged = false;
    for (auto& [name, total] : s.hops) {
      if (name == ev.name) {
        total += ev.dur;
        merged = true;
        break;
      }
    }
    if (!merged) s.hops.emplace_back(ev.name, ev.dur);
  }
  return out;
}

}  // namespace orbit::telemetry
