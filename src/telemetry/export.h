// Trace export: Chrome trace-event JSON (Perfetto / chrome://tracing).
//
// The writer is deterministic: events appear in recorded order, timestamps
// are integer-nanosecond sim times printed as exact microsecond decimals,
// and no wall-clock or environment data is embedded. Multiple captures
// (one per experiment point) merge into a single trace file as separate
// processes, labeled via process_name metadata, so a whole sweep opens as
// one Perfetto session.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "telemetry/counters.h"

namespace orbit::telemetry {

// One process in the merged trace: a human-readable label (e.g.
// "fig15_latency_breakdown point=0 rep=0 scheme=OrbitCache") and the
// events captured for it. pid = position in the vector.
using LabeledCapture = std::pair<std::string, const RunCapture*>;

// Full Chrome trace-event document ({"displayTimeUnit":…,"traceEvents":[…]}).
std::string ChromeTraceJson(const std::vector<LabeledCapture>& processes);

// Per-hop latency table for one capture's request summaries: count, and
// min/mean/max duration per hop name plus the end-to-end "request" row.
// Rendered by tools/trace_summary and the observability docs examples.
std::string FormatHopBreakdown(const std::vector<RequestSummary>& summaries);

}  // namespace orbit::telemetry
