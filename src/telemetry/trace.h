// Request-lifecycle tracing.
//
// A Tracer collects causally-ordered span/instant events for a
// deterministically sampled subset of requests as they hop through the
// simulated fabric: client send → switch pipeline pass (lookup hit/miss,
// absorb, serve) → each recirculation pass → server dequeue/process →
// reply. Every timestamp is simulated time, so two runs of the same seed
// produce byte-identical traces regardless of wall clock or thread count.
//
// Sampling is structural, not random: a request is traced iff its client
// sequence number is a multiple of `sample_every`, and its trace id is a
// pure function of (client address, seq). Components hold a nullable
// Tracer* and a packet-borne trace id; with tracing disabled both stay
// null/zero and the per-packet cost is one predictable branch.
//
// Events export as Chrome trace-event JSON (telemetry/export.h), viewable
// in Perfetto / chrome://tracing, and reduce to compact per-request
// summaries (SummarizeRequests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace orbit::telemetry {

// One trace event. `name`/`detail` must point at static storage (string
// literals); events are recorded on hot paths and must not allocate.
struct TraceEvent {
  SimTime ts = 0;
  SimTime dur = 0;  // 0 = instant event
  uint64_t trace_id = 0;
  int track = 0;             // index into the owning capture's track table
  const char* name = "";     // span name, e.g. "request", "pipeline"
  const char* detail = nullptr;  // optional qualifier, e.g. "lookup_hit"
  uint64_t value = 0;        // optional numeric payload (bytes, depth, …)
};

// Stable request identity: client address in the high 32 bits, the
// client-assigned sequence number in the low 32.
inline uint64_t MakeTraceId(Addr client, uint32_t seq) {
  return (static_cast<uint64_t>(client) << 32) | seq;
}

class Tracer {
 public:
  // sample_every == 0 disables sampling entirely (Sampled() always false);
  // callers normally never construct a Tracer in that case.
  explicit Tracer(uint32_t sample_every) : sample_every_(sample_every) {}

  uint32_t sample_every() const { return sample_every_; }
  bool Sampled(uint32_t seq) const {
    return sample_every_ != 0 && seq % sample_every_ == 0;
  }

  // Registers a named track (one Perfetto row, e.g. "client-1000"); track
  // ids are dense indices in registration order.
  int RegisterTrack(std::string name) {
    tracks_.push_back(std::move(name));
    return static_cast<int>(tracks_.size()) - 1;
  }

  void Span(int track, uint64_t trace_id, const char* name, SimTime ts,
            SimTime dur, const char* detail = nullptr, uint64_t value = 0) {
    events_.push_back({ts, dur, trace_id, track, name, detail, value});
  }
  void Instant(int track, uint64_t trace_id, const char* name, SimTime ts,
               const char* detail = nullptr, uint64_t value = 0) {
    events_.push_back({ts, 0, trace_id, track, name, detail, value});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& tracks() const { return tracks_; }

  std::vector<TraceEvent> TakeEvents() { return std::move(events_); }
  std::vector<std::string> TakeTracks() { return std::move(tracks_); }

 private:
  uint32_t sample_every_;
  std::vector<std::string> tracks_;
  std::vector<TraceEvent> events_;
};

// Per-request roll-up of a trace: total client-observed latency plus the
// time attributed to each hop kind (summed over repeated hops, e.g.
// recirculation passes).
struct RequestSummary {
  uint64_t trace_id = 0;
  const char* outcome = "";    // the "request" span's detail, e.g. "read_cached"
  SimTime total = 0;           // the "request" span duration
  std::vector<std::pair<std::string, SimTime>> hops;  // name → summed dur
  uint32_t events = 0;
};

// Groups events by trace id (insertion order of first appearance) and sums
// span durations per hop name. Events without a trace id are skipped.
std::vector<RequestSummary> SummarizeRequests(
    const std::vector<TraceEvent>& events);

}  // namespace orbit::telemetry
