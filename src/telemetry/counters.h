// Named counter/gauge registry with deterministic snapshots.
//
// Components that already keep internal statistics (SwitchDevice::Stats,
// OrbitProgram::Stats, per-array access counts, …) register *sources* —
// closures reading the live value — under stable dotted names
// ("switch.recirc.packets", "rmt.s0.cache_lookup.hits"). The registry is
// pull-based: nothing is written per packet, so an unregistered run pays
// nothing, and a registered run pays only at snapshot time. Snapshots are
// taken at simulated-time boundaries, so parallel and serial harness runs
// sample identical values.
//
// Counters are monotonic over a run; gauges are point-in-time readings
// (queue depths, in-flight packets). The distinction matters downstream:
// time-series consumers difference counters and plot gauges directly.
//
// For event sources with no natural owner (link drop taps), OwnCounter
// allocates registry-owned storage with pointer stability, usable as a
// bump target from callbacks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"

namespace orbit::telemetry {

// One sampled view of every registered metric, in registration order.
struct Snapshot {
  SimTime at = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> gauges;
};

class Registry {
 public:
  using Source = std::function<uint64_t()>;

  // `registrant` names who is registering (component + prefix, e.g.
  // "Server::RegisterTelemetry(server.3)"); it only appears in the
  // duplicate-name diagnostic. Registering the same name twice throws
  // CheckFailure naming both registrants — a silently shadowed counter
  // would export two rows under one name and corrupt every downstream
  // diff.
  void AddCounter(std::string name, Source read, std::string registrant = {}) {
    Claim("counter", name, std::move(registrant));
    counters_.emplace_back(std::move(name), std::move(read));
  }
  void AddGauge(std::string name, Source read, std::string registrant = {}) {
    Claim("gauge", name, std::move(registrant));
    gauges_.emplace_back(std::move(name), std::move(read));
  }

  // Registry-owned monotonic counter: returns a stable bump target and
  // registers it under `name`.
  uint64_t* OwnCounter(std::string name, std::string registrant = {}) {
    owned_.push_back(0);
    uint64_t* slot = &owned_.back();
    AddCounter(std::move(name), [slot] { return *slot; }, std::move(registrant));
    return slot;
  }

  size_t num_counters() const { return counters_.size(); }
  size_t num_gauges() const { return gauges_.size(); }

  Snapshot Sample(SimTime at) const {
    Snapshot snap;
    snap.at = at;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, read] : counters_)
      snap.counters.emplace_back(name, read());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, read] : gauges_)
      snap.gauges.emplace_back(name, read());
    return snap;
  }

 private:
  void Claim(const char* kind, const std::string& name,
             std::string registrant) {
    if (registrant.empty()) registrant = "(unnamed registrant)";
    // try_emplace leaves `registrant` untouched when the key exists, so
    // the diagnostic can name both parties.
    auto [it, inserted] = owners_.try_emplace(
        std::string(kind) + ":" + name, std::move(registrant));
    if (!inserted) {
      throw CheckFailure("duplicate telemetry " + std::string(kind) + " '" +
                         name + "': already registered by " + it->second +
                         ", re-registered by " + registrant +
                         " — give each component instance a unique prefix");
    }
  }

  std::vector<std::pair<std::string, Source>> counters_;
  std::vector<std::pair<std::string, Source>> gauges_;
  std::deque<uint64_t> owned_;  // deque: stable addresses for bump targets
  // kind-qualified name -> registrant, for duplicate diagnostics.
  std::unordered_map<std::string, std::string> owners_;
};

// Everything one instrumented testbed run captured; owned by the caller
// (harness runner slot or test) and filled by RunTestbed.
struct RunCapture {
  std::vector<std::string> tracks;    // trace track names, id = index
  std::vector<TraceEvent> events;     // causally ordered trace events
  std::vector<Snapshot> snapshots;    // periodic + final registry samples
  IntCapture int_capture;             // INT postcards + histogram snapshots
  std::string flight_dump;            // flight-recorder text; "" = no dumps

  bool empty() const {
    return events.empty() && snapshots.empty() && int_capture.empty() &&
           flight_dump.empty();
  }
  void Clear() {
    tracks.clear();
    events.clear();
    snapshots.clear();
    int_capture.Clear();
    flight_dump.clear();
  }
};

}  // namespace orbit::telemetry
