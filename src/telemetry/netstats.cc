#include "telemetry/netstats.h"

#include "sim/link.h"
#include "sim/node.h"

namespace orbit::telemetry {

void RegisterLinkDropCounters(Registry& reg, const sim::Network& net) {
  for (size_t i = 0; i < net.num_links(); ++i) {
    const sim::Link* link = net.link(i);
    for (int dir = 0; dir < 2; ++dir) {
      const std::string base = "net.link." + std::to_string(i) + "." +
                               link->endpoint(dir)->name() + "->" +
                               link->endpoint(1 - dir)->name() + ".drop.";
      const sim::ChannelStats& st = link->stats(dir);
      const std::string who = "RegisterLinkDropCounters(" + base + ")";
      reg.AddCounter(base + "queue_overflow", [&st] { return st.drops; }, who);
      reg.AddCounter(base + "injected_loss", [&st] { return st.lost; }, who);
      reg.AddCounter(base + "link_down", [&st] { return st.down_drops; }, who);
    }
  }
}

void AttachLinkInt(IntSink& sink, sim::Network& net) {
  const uint32_t lat_hist = sink.Hist("hop.link.ns", "ns");
  for (size_t i = 0; i < net.num_links(); ++i) {
    sim::Link* link = net.mutable_link(i);
    for (int dir = 0; dir < 2; ++dir) {
      const std::string base = "link." + std::to_string(i) + "." +
                               link->endpoint(dir)->name() + "->" +
                               link->endpoint(1 - dir)->name();
      link->AttachInt(&sink, lat_hist, dir, sink.Hop(base),
                      sink.Hist(base + ".queue_bytes", "bytes"));
    }
  }
}

}  // namespace orbit::telemetry
