#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace orbit::telemetry {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Chrome trace timestamps are microseconds; sim time is integer
// nanoseconds, so print the exact three-decimal form (no float rounding).
void AppendMicros(std::string* out, SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  *out += buf;
}

void AppendMeta(std::string* out, int pid, int tid, const char* kind,
                const std::string& name, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  char head[96];
  if (tid >= 0)
    std::snprintf(head, sizeof(head), R"({"ph":"M","pid":%d,"tid":%d,)", pid,
                  tid);
  else
    std::snprintf(head, sizeof(head), R"({"ph":"M","pid":%d,)", pid);
  *out += head;
  *out += R"("name":")";
  *out += kind;
  *out += R"(","args":{"name":")";
  AppendEscaped(out, name);
  *out += R"("}})";
}

}  // namespace

std::string ChromeTraceJson(const std::vector<LabeledCapture>& processes) {
  std::string out;
  out.reserve(1024);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (size_t pid = 0; pid < processes.size(); ++pid) {
    const auto& [label, cap] = processes[pid];
    if (cap == nullptr) continue;
    AppendMeta(&out, static_cast<int>(pid), -1, "process_name", label, &first);
    for (size_t tid = 0; tid < cap->tracks.size(); ++tid)
      AppendMeta(&out, static_cast<int>(pid), static_cast<int>(tid),
                 "thread_name", cap->tracks[tid], &first);
    for (const TraceEvent& ev : cap->events) {
      if (!first) out += ",\n";
      first = false;
      char head[64];
      std::snprintf(head, sizeof(head), R"({"ph":"%s","pid":%d,"tid":%d,)",
                    ev.dur > 0 ? "X" : "i", static_cast<int>(pid), ev.track);
      out += head;
      out += "\"ts\":";
      AppendMicros(&out, ev.ts);
      if (ev.dur > 0) {
        out += ",\"dur\":";
        AppendMicros(&out, ev.dur);
      } else {
        out += ",\"s\":\"t\"";  // instant scope: thread
      }
      out += ",\"name\":\"";
      out += ev.name;
      if (ev.detail != nullptr) {
        out += ':';
        out += ev.detail;
      }
      out += "\",\"cat\":\"telemetry\",\"args\":{\"trace_id\":";
      char num[32];
      std::snprintf(num, sizeof(num), "%" PRIu64, ev.trace_id);
      out += num;
      if (ev.value != 0) {
        std::snprintf(num, sizeof(num), ",\"value\":%" PRIu64, ev.value);
        out += num;
      }
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string FormatHopBreakdown(const std::vector<RequestSummary>& summaries) {
  struct Agg {
    std::string name;
    uint64_t count = 0;
    SimTime min = 0;
    SimTime max = 0;
    SimTime sum = 0;
  };
  Agg total{"request (end-to-end)", 0, 0, 0, 0};
  std::vector<Agg> hops;
  auto fold = [](Agg& a, SimTime d) {
    if (a.count == 0 || d < a.min) a.min = d;
    if (d > a.max) a.max = d;
    a.sum += d;
    ++a.count;
  };
  for (const RequestSummary& s : summaries) {
    if (s.total > 0) fold(total, s.total);
    for (const auto& [name, dur] : s.hops) {
      auto it = std::find_if(hops.begin(), hops.end(),
                             [&](const Agg& a) { return a.name == name; });
      if (it == hops.end()) {
        hops.push_back(Agg{name, 0, 0, 0, 0});
        it = hops.end() - 1;
      }
      fold(*it, dur);
    }
  }

  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %10s %12s %12s %12s\n", "hop",
                "requests", "min_us", "mean_us", "max_us");
  out += line;
  auto row = [&](const Agg& a) {
    if (a.count == 0) return;
    std::snprintf(line, sizeof(line), "%-24s %10llu %12.3f %12.3f %12.3f\n",
                  a.name.c_str(), static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.min) / 1e3,
                  static_cast<double>(a.sum) / static_cast<double>(a.count) /
                      1e3,
                  static_cast<double>(a.max) / 1e3);
    out += line;
  };
  row(total);
  for (const Agg& a : hops) row(a);
  return out;
}

}  // namespace orbit::telemetry
