#include "telemetry/int/int.h"

namespace orbit::telemetry {

const char* IntHopKindName(IntHopKind kind) {
  switch (kind) {
    case IntHopKind::kClientTx:
      return "client_tx";
    case IntHopKind::kLink:
      return "link";
    case IntHopKind::kPipeline:
      return "pipeline";
    case IntHopKind::kRecirc:
      return "recirc";
    case IntHopKind::kServerRx:
      return "srv_rx";
    case IntHopKind::kServerQueue:
      return "srv_queue";
    case IntHopKind::kServerProcess:
      return "srv_process";
    case IntHopKind::kClientRx:
      return "client_rx";
    case IntHopKind::kDrop:
      return "drop";
  }
  return "?";
}

uint32_t IntSink::Hop(const std::string& name) {
  auto it = hop_ids_.find(name);
  if (it != hop_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(hop_names_.size());
  hop_names_.push_back(name);
  hop_ids_.emplace(name, id);
  return id;
}

uint32_t IntSink::Hist(const std::string& name, const std::string& unit) {
  auto it = hist_ids_.find(name);
  if (it != hist_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(hists_.size());
  hists_.push_back(NamedHist{name, unit, stats::Histogram{}});
  hist_ids_.emplace(name, id);
  return id;
}

uint32_t IntSink::StartFlow(uint64_t flow_id, uint8_t op, SimTime at) {
  if (!postcards_on()) return 0;
  IntFlowRec rec;
  rec.flow_id = flow_id;
  rec.op = op;
  rec.started_at = at;
  flows_.push_back(std::move(rec));
  return static_cast<uint32_t>(flows_.size());
}

void IntSink::Stamp(uint32_t int_id, const IntHop& hop) {
  if (int_id == 0 || int_id > flows_.size()) return;
  IntFlowRec& rec = flows_[int_id - 1];
  if (rec.hops.size() >= kMaxHopsPerFlow) {
    ++rec.truncated_hops;
    return;
  }
  rec.hops.push_back(hop);
}

void IntSink::FinishFlow(uint32_t int_id, SimTime at, const char* outcome) {
  if (int_id == 0 || int_id > flows_.size()) return;
  IntFlowRec& rec = flows_[int_id - 1];
  rec.finished_at = at;
  rec.outcome = outcome;
}

void IntSink::Drain(IntCapture* out) {
  if (out == nullptr) return;
  out->hop_names = hop_names_;
  out->flows = std::move(flows_);
  flows_.clear();
  out->hists.clear();
  for (NamedHist& h : hists_) {
    // RecordFast populations carry only buckets until finalized here.
    h.hist.FinalizeFromBuckets();
    if (h.hist.count() == 0) continue;  // quiet links etc. add no rows
    HistSnapshot snap;
    snap.name = h.name;
    snap.unit = h.unit;
    snap.count = h.hist.count();
    snap.min = h.hist.min();
    snap.max = h.hist.max();
    snap.mean = h.hist.mean();
    snap.p50 = h.hist.Percentile(0.50);
    snap.p90 = h.hist.Percentile(0.90);
    snap.p99 = h.hist.Percentile(0.99);
    snap.p999 = h.hist.Percentile(0.999);
    out->hists.push_back(std::move(snap));
  }
}

}  // namespace orbit::telemetry
