// In-band network telemetry (INT), modelled on INT-MD postcards.
//
// Real INT-MD switches stamp per-hop metadata (hop id, queue depth, hop
// latency) into packets as they traverse the fabric; a sink strips the
// stack and exports postcards to a collector. We model the same thing in
// simulation terms: a packet carries a compact `int_id` handle, every
// instrumented hop appends an IntHop record to the flow owned by that id
// inside the IntSink, and the run's capture exports the collected flows
// as JSONL. Sampling is structural (seq % sample_every == 0, per client),
// exactly like the request tracer, so serial and `--jobs N` runs collect
// byte-identical postcards.
//
// On top of the sampled postcards the sink owns a set of *always-on*
// log-bucketed HDR-style histograms (stats::Histogram): latency per hop
// class, queue depth per link direction, orbit count per cached key,
// value size. Recording is a couple of arithmetic ops plus a bucket
// increment — cheap enough to run unsampled — and everything is keyed by
// interned ids resolved once at attach time, never per packet.
//
// Results-neutrality contract (same as the request tracer): the sink
// schedules no simulator events, draws no randomness, and no forwarding
// decision ever reads `int_id`, so enabling INT cannot change a run's
// metrics or fingerprint.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "stats/histogram.h"

namespace orbit::telemetry {

// Where in the fabric a hop record was stamped. Postcards carry the
// interned hop *name* for exact location ("leaf0.pipeline"); the kind
// classifies it for per-hop-class roll-ups.
enum class IntHopKind : uint8_t {
  kClientTx = 0,   // client NIC, request leaves the host
  kLink,           // committed to a link (queue + serialization + prop)
  kPipeline,       // rmt pipeline stage-group traversal
  kRecirc,         // recirculation orbit pass
  kServerRx,       // server NIC admission
  kServerQueue,    // server worker FIFO wait
  kServerProcess,  // server service time
  kClientRx,       // reply back at the client (end of flow)
  kDrop,           // packet died here (drop_reason says why)
};
const char* IntHopKindName(IntHopKind kind);

// One stamped hop. `hop` indexes IntCapture::hop_names. Timestamps are
// simulated time, latencies are the delay this hop *added* (queue wait +
// service for that hop class), queue_depth is the depth seen on arrival
// (bytes for links, waiting-ns for pipeline/server queues).
struct IntHop {
  SimTime at = 0;
  uint32_t hop = 0;
  IntHopKind kind = IntHopKind::kLink;
  int64_t latency_ns = 0;
  int64_t queue_depth = 0;
  uint32_t recirc_count = 0;
  uint8_t drop_reason = 0;  // 0 = none, else 1 + sim::DropReason
};

// A collected postcard stream for one sampled request flow.
struct IntFlowRec {
  uint64_t flow_id = 0;  // (client_addr << 32) | seq, like MakeTraceId
  uint8_t op = 0;        // proto::Op of the originating request
  SimTime started_at = 0;
  SimTime finished_at = 0;      // 0 = never completed (timeout / in flight)
  const char* outcome = "";     // static literal: "read_cached", "timeout", …
  uint32_t truncated_hops = 0;  // stamps dropped past the per-flow cap
  std::vector<IntHop> hops;
};

// Compact end-of-run summary of one always-on histogram. Live
// stats::Histogram objects eagerly allocate ~9KB of buckets, so captures
// keep these few-word snapshots instead.
struct HistSnapshot {
  std::string name;
  std::string unit;
  uint64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
  int64_t p999 = 0;
};

// Everything the INT layer collected for one run; lives inside
// telemetry::RunCapture next to trace events and counter snapshots.
struct IntCapture {
  std::vector<std::string> hop_names;  // IntHop::hop indexes this
  std::vector<IntFlowRec> flows;
  std::vector<HistSnapshot> hists;

  bool empty() const { return flows.empty() && hists.empty(); }
  void Clear() {
    hop_names.clear();
    flows.clear();
    hists.clear();
  }
};

// The per-run INT collector. Components intern their hop and histogram
// names once at attach time and then stamp/record through integer ids on
// the hot path. Single-threaded, like everything inside one simulation.
class IntSink {
 public:
  struct Options {
    // Postcard sampling: a request is collected iff seq % sample_every
    // == 0 for its client. 0 disables postcards entirely.
    uint32_t sample_every = 0;
    // Always-on histograms (recorded for every packet, not just sampled
    // flows).
    bool histograms = false;
  };

  explicit IntSink(const Options& opts) : opts_(opts) {}

  bool postcards_on() const { return opts_.sample_every != 0; }
  bool histograms_on() const { return opts_.histograms; }
  bool Sampled(uint64_t seq) const {
    return postcards_on() && seq % opts_.sample_every == 0;
  }

  // Interns `name`, returning its stable hop id. Same name -> same id,
  // so shared class names aggregate across devices while per-device
  // names ("leaf0.pipeline") stay distinct.
  uint32_t Hop(const std::string& name);

  // Interns an always-on histogram under `name` (unit is documentation
  // carried into the snapshot: "ns", "bytes", "orbits").
  uint32_t Hist(const std::string& name, const std::string& unit);

  // Records into an interned histogram; no-op unless histograms are on.
  // Bucket-only on the way in (stats::Histogram::RecordFast); Drain
  // finalizes count/min/max/mean from the buckets.
  void Record(uint32_t hist_id, int64_t value) {
    if (opts_.histograms) hists_[hist_id].hist.RecordFast(value);
  }

  // Direct histogram pointer for per-packet hot paths (the link tap),
  // skipping the flag check and id indexing on every record; nullptr when
  // histograms are off, so callers branch on one pointer. Stable for the
  // run: hists_ is a deque.
  stats::Histogram* MutableHist(uint32_t hist_id) {
    return opts_.histograms ? &hists_[hist_id].hist : nullptr;
  }

  // Opens a postcard flow; returns the packet-borne int_id (0 = not
  // collected). Call only after Sampled(seq) said yes.
  uint32_t StartFlow(uint64_t flow_id, uint8_t op, SimTime at);

  // Appends a hop record to a flow; no-op for int_id 0. Hops past the
  // per-flow cap bump truncated_hops instead of growing without bound
  // (a saturated orbit can recirculate one packet thousands of times).
  void Stamp(uint32_t int_id, const IntHop& hop);

  // Marks the flow complete. `outcome` must be a static string literal.
  void FinishFlow(uint32_t int_id, SimTime at, const char* outcome);

  // Moves collected flows and snapshots the histograms into `out`.
  // Call once at end of run; empty histograms are skipped.
  void Drain(IntCapture* out);

  size_t num_flows() const { return flows_.size(); }

 private:
  // Bounds per-flow memory; generous next to the paper's single-digit
  // orbit counts but finite under pathological recirculation.
  static constexpr size_t kMaxHopsPerFlow = 256;

  struct NamedHist {
    std::string name;
    std::string unit;
    stats::Histogram hist;
  };

  Options opts_;
  std::vector<std::string> hop_names_;
  std::unordered_map<std::string, uint32_t> hop_ids_;
  std::deque<NamedHist> hists_;  // deque: MutableHist pointers stay valid
  std::unordered_map<std::string, uint32_t> hist_ids_;
  std::vector<IntFlowRec> flows_;
};

}  // namespace orbit::telemetry
