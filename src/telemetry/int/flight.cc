#include "telemetry/int/flight.h"

#include <sstream>

namespace orbit::telemetry {

uint32_t FlightRecorder::Component(const std::string& name) {
  Ring ring;
  ring.name = name;
  ring.recs.resize(capacity_);
  rings_.push_back(std::move(ring));
  return static_cast<uint32_t>(rings_.size() - 1);
}

void FlightRecorder::TriggerDump(SimTime at, const std::string& reason) {
  if (dumps_.size() >= kMaxDumps) {
    ++suppressed_;
    return;
  }
  std::ostringstream os;
  os << "=== flight dump #" << dumps_.size() << " t=" << at
     << "ns reason: " << reason << " ===\n";
  for (const Ring& ring : rings_) {
    const uint64_t kept =
        ring.total < capacity_ ? ring.total : static_cast<uint64_t>(capacity_);
    os << "-- " << ring.name << " (last " << kept << " of " << ring.total
       << " events) --\n";
    // Oldest retained event first: the ring cursor is total % capacity.
    const uint64_t start = ring.total - kept;
    for (uint64_t i = 0; i < kept; ++i) {
      const Rec& rec = ring.recs[(start + i) % capacity_];
      os << "  t=" << rec.at << " " << rec.event << " a=" << rec.a
         << " b=" << rec.b << "\n";
    }
  }
  dumps_.push_back(os.str());
}

std::string FlightRecorder::DumpText() const {
  std::string out;
  for (const std::string& d : dumps_) out += d;
  if (suppressed_ > 0) {
    out += "=== " + std::to_string(suppressed_) +
           " further dump trigger(s) suppressed ===\n";
  }
  return out;
}

}  // namespace orbit::telemetry
