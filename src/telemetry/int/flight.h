// Post-mortem flight recorder.
//
// Every instrumented component keeps a fixed-size ring of its last N sim
// events (timestamp + static event literal + two payload words). Writing
// is a couple of stores — always affordable — and nothing is formatted
// until a *dump trigger* fires: a fault injection event, a tripped
// ORBIT_CHECK (via ScopedCheckFailureHook), or an explicit end-of-run
// request (`--flight-dump`). A trigger freezes the rings into a
// deterministic text block, so the capture carries a readable trace of
// exactly the window leading into a collapse — the part a post-hoc
// counter snapshot can never show.
//
// Determinism: rings hold only simulated-time values and static string
// literals, and the dump renders components in registration order and
// events oldest-to-newest, so a fixed seed produces a byte-stable dump.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace orbit::telemetry {

class FlightRecorder {
 public:
  // `capacity` = events retained per component ring.
  explicit FlightRecorder(size_t capacity = 128) : capacity_(capacity) {}

  // Registers a component ring and returns its id. Call once at attach
  // time; ids are stable for the run.
  uint32_t Component(const std::string& name);

  // Appends an event to a component's ring. `event` must be a static
  // string literal; a/b are free-form payload words (seq, key hash, …).
  void Note(uint32_t comp, SimTime at, const char* event, uint64_t a = 0,
            uint64_t b = 0) {
    Ring& ring = rings_[comp];
    Rec& rec = ring.recs[ring.total % capacity_];
    rec.at = at;
    rec.event = event;
    rec.a = a;
    rec.b = b;
    ++ring.total;
  }

  // Freezes the current rings into a formatted dump block. Bounded: past
  // kMaxDumps triggers only count (a fault storm cannot grow the capture
  // without limit).
  void TriggerDump(SimTime at, const std::string& reason);

  bool HasDumps() const { return !dumps_.empty(); }
  size_t num_dumps() const { return dumps_.size(); }
  uint64_t suppressed_dumps() const { return suppressed_; }

  // All captured dump blocks, oldest first, as one text document.
  std::string DumpText() const;

 private:
  static constexpr size_t kMaxDumps = 8;

  struct Rec {
    SimTime at = 0;
    const char* event = "";
    uint64_t a = 0;
    uint64_t b = 0;
  };
  struct Ring {
    std::string name;
    std::vector<Rec> recs;
    uint64_t total = 0;  // events ever noted; write cursor = total % cap
  };

  size_t capacity_;
  std::vector<Ring> rings_;
  std::vector<std::string> dumps_;
  uint64_t suppressed_ = 0;
};

}  // namespace orbit::telemetry
