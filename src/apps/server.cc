#include "apps/server.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"
#include "verify/verify.h"

namespace orbit::app {

ServerNode::ServerNode(sim::Simulator* sim, sim::Network* net, int port,
                       const ServerConfig& config, ValueSizeFn value_size)
    : sim_(sim),
      net_(net),
      port_(port),
      config_(config),
      value_size_(std::move(value_size)),
      top_k_(config.report_k > 0 ? config.report_k : 1, 5, 2048,
             0x746f706bull + config.srv_id) {
  ORBIT_CHECK(sim != nullptr && net != nullptr);
  ORBIT_CHECK(value_size_ != nullptr);
}

void ServerNode::Start() {
  if (config_.controller_addr == kInvalidAddr) return;
  sim_->AfterTimer(config_.report_period, this, /*arg=*/0);
}

void ServerNode::OnTimer(uint64_t arg) {
  if (arg == 0) {
    SendReport();
    return;
  }
  --queue_depth_;
  Process(sim::PacketPtr(reinterpret_cast<sim::Packet*>(arg)));
}

void ServerNode::OnPacket(sim::PacketPtr pkt, int /*port*/) {
  using proto::Op;
  const Op op = pkt->msg.op;
  if (op != Op::kReadReq && op != Op::kWriteReq && op != Op::kFetchReq &&
      op != Op::kCorrectionReq) {
    sim::MarkEnd(*pkt, sim::PacketEnd::kIgnored);
    LOG_DEBUG(name() << ": ignoring " << proto::OpName(op));
    return;
  }

  // Rx rate limiting: a single-server FIFO queue with a fixed service time
  // (the paper's per-emulated-server Rx throughput cap) and a bounded
  // socket buffer. Control-plane fetches are priority traffic: rare, tiny,
  // and load-bearing for recovery (§3.9 — a post-reset rebuild must reach
  // exactly the overloaded hot-partition servers), so they are exempt from
  // the admission drop but still pay the service time.
  if (op != Op::kFetchReq && queue_depth_ >= config_.rx_queue_limit) {
    ++stats_.dropped;
    sim::MarkEnd(*pkt, sim::PacketEnd::kDroppedRxQueue);
    if (tracer_ != nullptr && pkt->trace_id != 0)
      tracer_->Instant(track_, pkt->trace_id, "rx_drop", sim_->now(),
                       "queue_full");
    if (flight_ != nullptr)
      flight_->Note(flight_comp_, sim_->now(), "rx_drop", pkt->msg.seq,
                    queue_depth_);
    if (int_ != nullptr && pkt->int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_rx_;
      hop.kind = telemetry::IntHopKind::kDrop;
      hop.queue_depth = static_cast<int64_t>(queue_depth_);
      hop.drop_reason = static_cast<uint8_t>(
          1 + static_cast<int>(sim::DropReason::kQueueOverflow));
      int_->Stamp(pkt->int_id, hop);
    }
    return;
  }
  const SimTime service =
      config_.service_rate_rps > 0
          ? static_cast<SimTime>(static_cast<double>(kSecond) /
                                 config_.service_rate_rps)
          : config_.base_processing;
  const SimTime start = std::max(busy_until_, sim_->now());
  const SimTime queue_wait = start - sim_->now();
  busy_until_ = start + service;
  ++queue_depth_;
  if (tracer_ != nullptr && pkt->trace_id != 0) {
    // Both spans are known at enqueue time (FIFO, fixed service time), so
    // emit them here rather than splitting emission across events.
    if (start > sim_->now())
      tracer_->Span(track_, pkt->trace_id, "srv_queue", sim_->now(),
                    start - sim_->now());
    tracer_->Span(track_, pkt->trace_id, "srv_process", start, service);
  }
  if (flight_ != nullptr)
    flight_->Note(flight_comp_, sim_->now(), "rx", pkt->msg.seq, queue_depth_);
  if (int_ != nullptr) {
    // Always-on hop-class histograms (every admitted request); the FIFO
    // discipline makes both spans known at enqueue time, like the tracer.
    int_->Record(int_hist_queue_, queue_wait);
    int_->Record(int_hist_process_, service);
    if (pkt->int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_rx_;
      hop.kind = telemetry::IntHopKind::kServerRx;
      hop.queue_depth = static_cast<int64_t>(queue_depth_);
      hop.recirc_count = pkt->recirc_count;
      int_->Stamp(pkt->int_id, hop);
      hop.hop = int_hop_queue_;
      hop.kind = telemetry::IntHopKind::kServerQueue;
      hop.latency_ns = queue_wait;
      int_->Stamp(pkt->int_id, hop);
      hop.at = start;
      hop.hop = int_hop_process_;
      hop.kind = telemetry::IntHopKind::kServerProcess;
      hop.latency_ns = service;
      int_->Stamp(pkt->int_id, hop);
    }
  }
  // The request rides the completion timer as its argument (a Packet* is
  // never 0, so it cannot collide with the report-tick sentinel).
  sim_->AtTimer(busy_until_, this,
                reinterpret_cast<uint64_t>(pkt.release()));
}

kv::Value ServerNode::GetOrSynthesize(const Key& key) {
  if (auto v = store_.Get(key)) return *v;
  const uint32_t size = value_size_(key);
  const uint64_t version = store_.Put(key, size);
  if (verifier_ != nullptr) verifier_->OnCommit(key, size, version);
  return *store_.Get(key);
}

void ServerNode::Process(sim::PacketPtr pkt) {
  using proto::Op;
  // The request's life ends here: replies are freshly minted packets.
  sim::MarkEnd(*pkt, sim::PacketEnd::kConsumed);
  ++stats_.requests;
  const proto::Message& req = pkt->msg;
  if (config_.controller_addr != kInvalidAddr) top_k_.Update(req.key);

  switch (req.op) {
    case Op::kReadReq:
    case Op::kCorrectionReq: {
      req.op == Op::kReadReq ? ++stats_.reads : ++stats_.corrections;
      proto::Message& rep = scratch_;
      rep.op = Op::kReadRep;
      rep.seq = req.seq;
      rep.hkey = req.hkey;
      rep.flag = 0;
      rep.epoch = req.epoch;
      rep.key = req.key;
      rep.value = GetOrSynthesize(req.key);
      Reply(*pkt);
      return;
    }
    case Op::kWriteReq: {
      if ((req.flag & proto::kFlagFlush) != 0) {
        // Write-back eviction flush: apply silently (§3.10 extension).
        ++stats_.flushes;
        store_.PutVersioned(req.key, req.value.size(), req.value.version());
        return;
      }
      ++stats_.writes;
      const uint64_t version = store_.Put(req.key, req.value.size());
      if (verifier_ != nullptr)
        verifier_->OnCommit(req.key, req.value.size(), version);
      proto::Message& rep = scratch_;
      rep.op = Op::kWriteRep;
      rep.seq = req.seq;
      rep.hkey = req.hkey;
      rep.epoch = req.epoch;
      rep.flag = req.flag;
      rep.key = req.key;
      // For cached items the reply carries the new value so the switch can
      // refresh its cache packet in the same round trip (§3.3); otherwise
      // only the version metadata rides along (zero payload bytes).
      rep.value = (req.flag & proto::kFlagCachedWrite) != 0
                      ? kv::Value::Synthetic(req.value.size(), version)
                      : kv::Value::Synthetic(0, version);
      Reply(*pkt);
      return;
    }
    case Op::kFetchReq: {
      ++stats_.fetches;
      proto::Message& rep = scratch_;
      rep.op = Op::kFetchRep;
      rep.seq = req.seq;
      rep.hkey = req.hkey;
      rep.flag = 0;
      rep.epoch = req.epoch;
      rep.key = req.key;
      rep.value = GetOrSynthesize(req.key);
      Reply(*pkt);
      return;
    }
    default:
      return;
  }
}

void ServerNode::Reply(const sim::Packet& req) {
  proto::Message& msg = scratch_;
  msg.srv_id = config_.srv_id;
  msg.cached = 0;
  msg.latency = req.msg.latency;

  const uint32_t budget =
      proto::kMaxPayloadBytes - static_cast<uint32_t>(msg.key.size());
  const uint32_t size = msg.value.size();
  uint8_t frag_total = 1;
  if (size > budget) {
    ORBIT_CHECK_MSG(config_.multi_packet,
                    name() << ": value of " << size
                           << "B exceeds one packet and multi-packet "
                              "support is disabled");
    // Compute in 32 bits first: frag_index/frag_total are uint8_t on the
    // wire, so a value needing more than 255 fragments is unrepresentable
    // and must fail loudly instead of truncating the count.
    const uint32_t frags = (size + budget - 1) / budget;
    ORBIT_CHECK_MSG(frags <= 255,
                    name() << ": value of " << size << "B needs " << frags
                           << " fragments, above the 255-fragment wire "
                              "format limit");
    frag_total = static_cast<uint8_t>(frags);
  }

  if (flight_ != nullptr)
    flight_->Note(flight_comp_, sim_->now(), "reply", msg.seq, size);
  if (int_ != nullptr) int_->Record(int_hist_value_, size);
  for (uint8_t i = 0; i < frag_total; ++i) {
    auto rep = sim::NewPacket(config_.addr, req.src, config_.orbit_port,
                              req.sport);
    rep->msg = msg;  // key copy-assign reuses the recycled packet's capacity
    rep->msg.frag_index = i;
    rep->msg.frag_total = frag_total;
    if (frag_total > 1) {
      const uint32_t off = i * budget;
      rep->msg.value = kv::Value::Synthetic(std::min(budget, size - off),
                                            msg.value.version());
    }
    rep->sent_at = sim_->now();
    rep->trace_id = req.trace_id;  // the reply continues the request's trace
    rep->int_id = req.int_id;      // …and its INT flow
    ++stats_.replies;
    net_->Send(this, port_, std::move(rep));
  }
}

void ServerNode::SendReport() {
  for (const auto& entry : top_k_.Snapshot()) {
    auto pkt = sim::NewPacket(config_.addr, config_.controller_addr,
                              config_.ctrl_port, config_.ctrl_port);
    pkt->msg.op = proto::Op::kTopKReport;
    pkt->msg.key = entry.key;
    // The per-key count rides in the value's version field (metadata only,
    // no payload bytes on the wire beyond the key).
    pkt->msg.value = kv::Value::Synthetic(0, entry.count);
    pkt->tcp = true;  // reports use TCP in the paper (§3.9)
    net_->Send(this, port_, std::move(pkt));
  }
  top_k_.Reset();
  sim_->AfterTimer(config_.report_period, this, /*arg=*/0);
}

void ServerNode::SetTracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) track_ = tracer_->RegisterTrack(name());
}

void ServerNode::SetIntSink(telemetry::IntSink* sink) {
  int_ = sink;
  if (int_ == nullptr) return;
  int_hop_rx_ = int_->Hop(name() + ".rx");
  int_hop_queue_ = int_->Hop(name() + ".queue");
  int_hop_process_ = int_->Hop(name() + ".process");
  int_hist_queue_ = int_->Hist("hop.srv_queue.ns", "ns");
  int_hist_process_ = int_->Hist("hop.srv_process.ns", "ns");
  int_hist_value_ = int_->Hist("value.bytes", "bytes");
}

void ServerNode::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) flight_comp_ = flight_->Component(name());
}

void ServerNode::RegisterTelemetry(telemetry::Registry& reg,
                                   const std::string& prefix) {
  const std::string who = "ServerNode::RegisterTelemetry(" + prefix + ")";
  reg.AddCounter(prefix + ".requests", [this] { return stats_.requests; },
                 who);
  reg.AddCounter(prefix + ".reads", [this] { return stats_.reads; }, who);
  reg.AddCounter(prefix + ".writes", [this] { return stats_.writes; }, who);
  reg.AddCounter(prefix + ".fetches", [this] { return stats_.fetches; }, who);
  reg.AddCounter(prefix + ".corrections",
                 [this] { return stats_.corrections; }, who);
  reg.AddCounter(prefix + ".flushes", [this] { return stats_.flushes; }, who);
  reg.AddCounter(prefix + ".drop.rx_queue", [this] { return stats_.dropped; },
                 who);
  reg.AddCounter(prefix + ".replies", [this] { return stats_.replies; }, who);
  reg.AddGauge(prefix + ".queue_depth", [this] { return queue_depth_; }, who);
}

}  // namespace orbit::app
