// Storage-server node: the paper's "shim layer" (§3.1) between OrbitCache
// messages and the key-value store, emulating one logical storage server
// (the testbed runs 8 such servers per physical node, each pinned to a
// core and rate-limited to 100K RPS so the servers are the bottleneck,
// §4/§5.1).
//
// Values are synthesized lazily on first access — the size comes from the
// workload's deterministic per-key size function — so 10M-key workloads
// don't require preloading gigabytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "kv/kv_store.h"
#include "proto/message.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "workload/top_k.h"

namespace orbit::telemetry {
class FlightRecorder;
class IntSink;
class Registry;
class Tracer;
}  // namespace orbit::telemetry

namespace orbit::verify {
class Verifier;
}  // namespace orbit::verify

namespace orbit::app {

struct ServerConfig {
  Addr addr = kInvalidAddr;
  uint8_t srv_id = 0;
  L4Port orbit_port = 5008;

  // Request service rate (the paper's Rx throughput limit). 0 disables the
  // limit; a fixed per-request processing time still applies.
  double service_rate_rps = 100'000;
  SimTime base_processing = 2 * kMicrosecond;  // when unlimited
  size_t rx_queue_limit = 256;  // bounded socket buffer (max ~2.6ms sojourn)

  // §3.10 multi-packet support: fragment values that exceed one packet.
  bool multi_packet = false;

  // Top-k popularity reporting to the controller (§3.8). Disabled when the
  // controller address is invalid.
  Addr controller_addr = kInvalidAddr;
  L4Port ctrl_port = 7000;
  SimTime report_period = 100 * kMillisecond;
  size_t report_k = 16;
};

class ServerNode : public sim::Node, public sim::TimerHandler {
 public:
  using ValueSizeFn = std::function<uint32_t(const Key&)>;

  ServerNode(sim::Simulator* sim, sim::Network* net, int port,
             const ServerConfig& config, ValueSizeFn value_size);

  // Starts the top-k report timer (call after wiring).
  void Start();

  void OnPacket(sim::PacketPtr pkt, int port) override;
  std::string name() const override {
    return "server-" + std::to_string(config_.srv_id);
  }
  // Timer demux: 0 = top-k report tick, otherwise the argument is the
  // released Packet* of a service completion.
  void OnTimer(uint64_t arg) override;

  struct Stats {
    uint64_t requests = 0;   // data requests accepted for processing
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t fetches = 0;
    uint64_t corrections = 0;
    uint64_t flushes = 0;    // write-back eviction flushes applied
    uint64_t dropped = 0;    // Rx queue overflow
    uint64_t replies = 0;
  };
  const Stats& stats() const { return stats_; }
  kv::KvStore& store() { return store_; }
  const ServerConfig& config() const { return config_; }
  // Requests currently admitted and riding completion timers; the
  // verification layer counts these as legitimately live packets.
  size_t queue_depth() const { return queue_depth_; }

  // Verification layer (src/verify/): observes every version the store
  // mints (writes and first-touch synthesis). Null disables.
  void SetVerifier(verify::Verifier* verifier) { verifier_ = verifier; }

  // Telemetry (optional): queue/process spans for sampled requests, reply
  // packets inherit the request's trace id.
  void SetTracer(telemetry::Tracer* tracer);
  // INT: stamps srv_rx/srv_queue/srv_process hops on sampled flows and
  // owns the always-on queue-wait/service/value-size histograms.
  void SetIntSink(telemetry::IntSink* sink);
  // Flight recorder: per-server ring noting rx/rx_drop/reply.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);
  // Registers `<prefix>.*` counters and a queue-depth gauge against `reg`.
  void RegisterTelemetry(telemetry::Registry& reg, const std::string& prefix);

 private:
  void Process(sim::PacketPtr pkt);
  // Sends scratch_ (the reply message Process() just filled) back to the
  // requester, fragmenting oversized values (§3.10).
  void Reply(const sim::Packet& req);
  void SendReport();
  kv::Value GetOrSynthesize(const Key& key);

  sim::Simulator* sim_;
  sim::Network* net_;
  int port_;
  ServerConfig config_;
  ValueSizeFn value_size_;

  kv::KvStore store_;
  wl::TopKTracker top_k_;

  SimTime busy_until_ = 0;
  size_t queue_depth_ = 0;
  // Reply-message scratch reused across requests so the key string keeps
  // its capacity (every case in Process() assigns every field it reads).
  proto::Message scratch_;

  telemetry::Tracer* tracer_ = nullptr;
  int track_ = -1;
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hop_rx_ = 0;
  uint32_t int_hop_queue_ = 0;
  uint32_t int_hop_process_ = 0;
  uint32_t int_hist_queue_ = 0;
  uint32_t int_hist_process_ = 0;
  uint32_t int_hist_value_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;
  verify::Verifier* verifier_ = nullptr;  // not owned; null = no checks

  Stats stats_;
};

}  // namespace orbit::app
