#include "apps/client.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"
#include "verify/verify.h"

namespace orbit::app {

ClientNode::ClientNode(sim::Simulator* sim, sim::Network* net, int port,
                       const ClientConfig& config,
                       std::shared_ptr<WorkloadSource> workload)
    : sim_(sim),
      net_(net),
      port_(port),
      config_(config),
      workload_(std::move(workload)),
      rng_(config.seed) {
  ORBIT_CHECK(sim != nullptr && net != nullptr && workload_ != nullptr);
  ORBIT_CHECK(config.rate_rps > 0);
}

void ClientNode::Start() {
  ORBIT_CHECK(!running_);
  running_ = true;
  const double mean_gap = static_cast<double>(kSecond) / config_.rate_rps;
  sim_->AfterTimer(static_cast<SimTime>(rng_.Exponential(mean_gap)), this,
                   kTickArg);
}

void ClientNode::Stop() {
  running_ = false;
  // Requests still on the wire are neither successes nor timeouts; count
  // them explicitly instead of leaking them. Their armed deadline events
  // fire into an empty map.
  stats_.inflight_at_stop += pending_.size();
  if (verifier_ != nullptr) {
    for (const auto& [seq, pending] : pending_)
      verifier_->OnClientDrop(config_.addr, seq);
  }
  pending_.clear();
}

void ClientNode::OpenWindow(SimTime at) {
  rx_meter_.Open(at);
  window_open_ = true;
  lat_cached_.Reset();
  lat_server_.Reset();
  lat_write_.Reset();
  lat_switch_.Reset();
}

void ClientNode::CloseWindow(SimTime at) {
  rx_meter_.Close(at);
  window_open_ = false;
}

void ClientNode::SendNext() {
  if (!running_) return;
  const WorkloadSource::Request req = workload_->Next(rng_);
  SendRequest(req, /*correction=*/false, sim_->now());
  const double mean_gap = static_cast<double>(kSecond) / config_.rate_rps;
  sim_->AfterTimer(std::max<SimTime>(1, static_cast<SimTime>(
                                            rng_.Exponential(mean_gap))),
                   this, kTickArg);
}

void ClientNode::OnTimer(uint64_t arg) {
  if (arg == kTickArg) {
    SendNext();
  } else {
    OnDeadline(static_cast<uint32_t>(arg >> 32),
               static_cast<int>(arg & 0xffffffffu));
  }
}

void ClientNode::SendRequest(const WorkloadSource::Request& req,
                             bool correction, SimTime original_sent_at,
                             uint64_t inherited_trace_id,
                             uint32_t inherited_int_id) {
  // SEQ values recycle at the 32-bit wrap. A recycled value that is still
  // pending (a slow request outliving ~2^32 sends) must not be reused:
  // pending_[seq] would silently overwrite the live entry, orphaning its
  // deadline and misclassifying the eventual reply. Skip live values (and
  // 0, kept as the "unset" convention in reply matching).
  uint32_t seq = next_seq_++;
  while (seq == 0 || pending_.count(seq) != 0) seq = next_seq_++;
  uint64_t trace_id = inherited_trace_id;
  if (trace_id == 0 && tracer_ != nullptr && tracer_->Sampled(seq))
    trace_id = telemetry::MakeTraceId(config_.addr, seq);
  const proto::Op op = correction ? proto::Op::kCorrectionReq
                                  : (req.is_write ? proto::Op::kWriteReq
                                                  : proto::Op::kReadReq);
  uint32_t int_id = inherited_int_id;
  if (int_id == 0 && int_ != nullptr && int_->Sampled(seq)) {
    int_id = int_->StartFlow(telemetry::MakeTraceId(config_.addr, seq),
                             static_cast<uint8_t>(op), sim_->now());
  }
  Pending pending;
  pending.key = req.key;
  pending.hkey = req.hkey;
  pending.sent_at = original_sent_at;
  pending.is_write = req.is_write;
  pending.is_correction = correction;
  pending.server = req.server;
  pending.value_size = req.value_size;
  pending.trace_id = trace_id;
  pending.int_id = int_id;

  ++stats_.tx_requests;
  if (req.is_write) {
    ++stats_.writes_sent;
  } else {
    ++stats_.reads_sent;
  }

  if (tracer_ != nullptr && trace_id != 0)
    tracer_->Instant(track_, trace_id, "send", sim_->now(),
                     correction ? "correction"
                                : (req.is_write ? "write" : "read"));
  Transmit(seq, pending);
  pending_[seq] = std::move(pending);
  if (verifier_ != nullptr)
    verifier_->OnClientSend(config_.addr, seq, req.key, req.is_write,
                            req.value_size);
  ArmDeadline(seq, /*attempt=*/0);
}

void ClientNode::Transmit(uint32_t seq, const Pending& pending) {
  // Drawn from the simulator's pool: the recycled packet's key string
  // keeps its capacity, so the copy-assign below is alloc-free in steady
  // state (16-byte workload keys overflow libstdc++'s 15-byte SSO).
  auto pkt = sim::NewPacket(config_.addr, pending.server, config_.src_port,
                            config_.orbit_port);
  proto::Message& msg = pkt->msg;
  msg.op = pending.is_correction
               ? proto::Op::kCorrectionReq
               : (pending.is_write ? proto::Op::kWriteReq
                                   : proto::Op::kReadReq);
  msg.seq = seq;
  msg.hkey = pending.hkey;
  msg.key = pending.key;
  if (pending.is_write) {
    // Versions are assigned by the serialization point — the storage
    // server for write-through, the switch for write-back — never by
    // clients (racing writers would regress them).
    msg.value = kv::Value::Synthetic(pending.value_size, 0);
  }

  pkt->sent_at = pending.sent_at;  // first send — retransmits inherit it
  pkt->trace_id = pending.trace_id;
  pkt->int_id = pending.int_id;
  if (flight_ != nullptr)
    flight_->Note(flight_comp_, sim_->now(), "tx", seq,
                  static_cast<uint64_t>(pending.attempt));
  if (int_ != nullptr && pending.int_id != 0) {
    telemetry::IntHop hop;
    hop.at = sim_->now();
    hop.hop = int_hop_tx_;
    hop.kind = telemetry::IntHopKind::kClientTx;
    hop.queue_depth = static_cast<int64_t>(pending_.size());
    int_->Stamp(pending.int_id, hop);
  }
  net_->Send(this, port_, std::move(pkt));
}

SimTime ClientNode::TimeoutFor(int attempt) const {
  // Exponential backoff: the deadline doubles with every retransmission.
  const int shift = std::min(attempt, 20);
  return config_.request_timeout << shift;
}

void ClientNode::ArmDeadline(uint32_t seq, int attempt) {
  sim_->AfterTimer(TimeoutFor(attempt), this, DeadlineArg(seq, attempt));
}

void ClientNode::OnDeadline(uint32_t seq, int attempt) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // answered (or retired at Stop)
  Pending& pending = it->second;
  if (pending.attempt != attempt) return;  // superseded by a retransmission
  if (pending.attempt < config_.max_retries) {
    ++pending.attempt;
    ++stats_.retransmissions;
    if (tracer_ != nullptr && pending.trace_id != 0)
      tracer_->Instant(track_, pending.trace_id, "retransmit", sim_->now(),
                       nullptr, static_cast<uint64_t>(pending.attempt));
    if (flight_ != nullptr)
      flight_->Note(flight_comp_, sim_->now(), "retransmit", seq,
                    static_cast<uint64_t>(pending.attempt));
    // Same SEQ: a late reply to any attempt completes the request, and
    // further duplicates count as stray_replies (at-most-once).
    Transmit(seq, pending);
    ArmDeadline(seq, pending.attempt);
    return;
  }
  ++stats_.timeouts;
  if (config_.max_retries > 0) ++stats_.retries_exhausted;
  if (tracer_ != nullptr && pending.trace_id != 0)
    tracer_->Span(track_, pending.trace_id, "request", pending.sent_at,
                  sim_->now() - pending.sent_at, "timeout");
  if (flight_ != nullptr)
    flight_->Note(flight_comp_, sim_->now(), "timeout", seq,
                  static_cast<uint64_t>(pending.attempt));
  if (int_ != nullptr && pending.int_id != 0)
    int_->FinishFlow(pending.int_id, sim_->now(), "timeout");
  if (verifier_ != nullptr) verifier_->OnClientDrop(config_.addr, seq);
  pending_.erase(it);
}

void ClientNode::OnPacket(sim::PacketPtr pkt, int /*port*/) {
  const bool is_reply = pkt->msg.op == proto::Op::kReadRep ||
                        pkt->msg.op == proto::Op::kWriteRep;
  sim::MarkEnd(*pkt, is_reply ? sim::PacketEnd::kConsumed
                              : sim::PacketEnd::kIgnored);
  HandleReply(*pkt);
}

void ClientNode::HandleReply(const sim::Packet& pkt) {
  using proto::Op;
  const proto::Message& msg = pkt.msg;
  if (msg.op != Op::kReadRep && msg.op != Op::kWriteRep) {
    LOG_DEBUG("client: ignoring " << proto::OpName(msg.op));
    return;
  }
  auto it = pending_.find(msg.seq);
  if (it == pending_.end()) {
    ++stats_.stray_replies;  // timed out, duplicate, or superseded
    return;
  }
  Pending& pending = it->second;

  if (msg.op == Op::kReadRep && msg.key != pending.key) {
    // Hash collision (or an inherited CacheIdx after a cache update,
    // §3.8): fetch the correct value straight from the storage server.
    ++stats_.collisions;
    WorkloadSource::Request fix;
    fix.key = pending.key;
    fix.hkey = HashKey128(pending.key);
    fix.server = pending.server;
    fix.is_write = false;
    const SimTime original = pending.sent_at;
    const uint64_t trace_id = pending.trace_id;
    const uint32_t int_id = pending.int_id;
    if (verifier_ != nullptr) verifier_->OnClientDrop(config_.addr, msg.seq);
    pending_.erase(it);
    SendRequest(fix, /*correction=*/true, original, trace_id, int_id);
    return;
  }

  // Multi-packet reassembly: wait for all fragments (§3.10). The bitmap
  // covers the full frag_index range (proto caps frag_total at 255), so
  // indices never alias and completion requires every distinct fragment.
  if (msg.frag_total > 1) {
    const unsigned idx = msg.frag_index;
    uint64_t& word = pending.frag_bitmap[idx >> 6];
    const uint64_t bit = uint64_t{1} << (idx & 63);
    if ((word & bit) != 0) {
      ++stats_.duplicate_frags;
      return;
    }
    word |= bit;
    if (verifier_ != nullptr)
      verifier_->OnClientFragment(config_.addr, msg.seq,
                                  static_cast<uint32_t>(msg.value.size()));
    if (++pending.frags_received < msg.frag_total) return;
  }

  if (config_.check_staleness) {
    // Bounded tracking: keys beyond staleness_max_keys are not checked
    // (the map would otherwise grow with every distinct key seen). Hot
    // keys — the ones caching can serve stale — are always inside the cap.
    auto lv = last_version_.find(pending.key);
    if (lv == last_version_.end() &&
        last_version_.size() < config_.staleness_max_keys) {
      lv = last_version_.emplace(pending.key, 0).first;
    }
    if (lv != last_version_.end()) {
      const uint64_t version = msg.value.version();
      if (msg.op == Op::kReadRep && version > 0 && version < lv->second)
        ++stats_.stale_reads;
      if (version > lv->second) lv->second = version;
    }
  }

  ++stats_.rx_replies;
  rx_meter_.Add();
  if (timeline_ != nullptr) timeline_->Add(sim_->now());
  if (window_open_) RecordLatency(pkt, pending);
  // How the request was ultimately satisfied; shared by the trace root
  // span and the INT flow outcome.
  const char* outcome =
      pending.is_write
          ? "write"
          : (msg.cached != 0 ? "read_cached"
                             : (pending.is_correction ? "read_correction"
                                                      : "read_server"));
  if (tracer_ != nullptr && pending.trace_id != 0) {
    // The root span: total client-observed latency.
    tracer_->Span(track_, pending.trace_id, "request", pending.sent_at,
                  sim_->now() - pending.sent_at, outcome);
  }
  if (flight_ != nullptr)
    flight_->Note(flight_comp_, sim_->now(), "rx", msg.seq,
                  static_cast<uint64_t>(msg.cached));
  if (int_ != nullptr) {
    const SimTime rtt = sim_->now() - pending.sent_at;
    int_->Record(int_hist_rtt_, rtt);
    if (pending.int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_rx_;
      hop.kind = telemetry::IntHopKind::kClientRx;
      hop.latency_ns = rtt;
      hop.recirc_count = pkt.recirc_count;
      int_->Stamp(pending.int_id, hop);
      int_->FinishFlow(pending.int_id, sim_->now(), outcome);
    }
  }
  if (verifier_ != nullptr) {
    verifier_->OnClientAccept(config_.addr, msg.seq, pending.key,
                              pending.is_write, msg.frag_total > 1,
                              static_cast<uint32_t>(msg.value.size()),
                              msg.value.version());
  }
  pending_.erase(it);
}

void ClientNode::RecordLatency(const sim::Packet& pkt, const Pending& pending) {
  const SimTime latency = sim_->now() - pending.sent_at;
  if (pending.is_write) {
    lat_write_.Record(latency);
    return;
  }
  if (pkt.msg.cached != 0) {
    lat_cached_.Record(latency);
    lat_switch_.Record(static_cast<SimTime>(pkt.msg.latency));
  } else {
    lat_server_.Record(latency);
  }
}

void ClientNode::SetTracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr)
    track_ = tracer_->RegisterTrack("client-" + std::to_string(config_.addr));
}

void ClientNode::SetIntSink(telemetry::IntSink* sink) {
  int_ = sink;
  if (int_ == nullptr) return;
  const std::string me = "client-" + std::to_string(config_.addr);
  int_hop_tx_ = int_->Hop(me + ".tx");
  int_hop_rx_ = int_->Hop(me + ".rx");
  int_hist_rtt_ = int_->Hist("hop.rtt.ns", "ns");
}

void ClientNode::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr)
    flight_comp_ =
        flight_->Component("client-" + std::to_string(config_.addr));
}

void ClientNode::RegisterTelemetry(telemetry::Registry& reg,
                                   const std::string& prefix) {
  const std::string who = "ClientNode::RegisterTelemetry(" + prefix + ")";
  reg.AddCounter(prefix + ".tx_requests",
                 [this] { return stats_.tx_requests; }, who);
  reg.AddCounter(prefix + ".rx_replies", [this] { return stats_.rx_replies; },
                 who);
  reg.AddCounter(prefix + ".timeouts", [this] { return stats_.timeouts; }, who);
  reg.AddCounter(prefix + ".retransmissions",
                 [this] { return stats_.retransmissions; }, who);
  reg.AddCounter(prefix + ".retries_exhausted",
                 [this] { return stats_.retries_exhausted; }, who);
  reg.AddCounter(prefix + ".inflight_at_stop",
                 [this] { return stats_.inflight_at_stop; }, who);
  reg.AddCounter(prefix + ".collisions", [this] { return stats_.collisions; },
                 who);
  reg.AddCounter(prefix + ".stray_replies",
                 [this] { return stats_.stray_replies; }, who);
  reg.AddCounter(prefix + ".stale_reads",
                 [this] { return stats_.stale_reads; }, who);
  reg.AddGauge(prefix + ".pending", [this] { return pending_.size(); }, who);
}

}  // namespace orbit::app
