// Open-loop client node (paper §4).
//
// Generates requests with exponential inter-arrival gaps at a configured
// rate, independent of replies (open loop), and implements the client-side
// responsibilities of the OrbitCache protocol:
//   * stamping OP / SEQ / HKEY on every request,
//   * keeping the per-request pending list indexed by SEQ,
//   * hash-collision resolution (§3.6): when a reply's key differs from
//     the requested key, send a CRN-REQ so the storage server supplies the
//     correct value, and
//   * latency/throughput measurement, with switch- vs server-handled
//     attribution via the prototype's Cached/Latency header fields.
//
// It also performs stale-read detection for the coherence test suite: the
// server assigns monotonically increasing per-key versions, so a read
// reply carrying a version lower than one this client has already
// observed (read or acked write) is a coherence violation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/random.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "stats/meters.h"
#include "stats/time_series.h"

namespace orbit::telemetry {
class FlightRecorder;
class IntSink;
class Registry;
class Tracer;
}  // namespace orbit::telemetry

namespace orbit::verify {
class Verifier;
}  // namespace orbit::verify

namespace orbit::app {

// What a client asks for next; implemented by the testbed's workload model.
class WorkloadSource {
 public:
  struct Request {
    Key key;
    Hash128 hkey;
    Addr server = kInvalidAddr;
    bool is_write = false;
    uint32_t value_size = 0;  // for writes
  };

  virtual ~WorkloadSource() = default;
  virtual Request Next(Rng& rng) = 0;
};

struct ClientConfig {
  Addr addr = kInvalidAddr;
  L4Port orbit_port = 5008;
  L4Port src_port = 9000;
  double rate_rps = 100'000;  // this client's open-loop Tx rate
  // Every request arms its own deadline event at send time, so the
  // effective timeout is exact (no sweep quantization). When the deadline
  // fires the request is retransmitted with the same SEQ — at-most-once
  // accounting: a late original reply completes the request and the
  // duplicate lands in stray_replies — until the retry budget is spent,
  // doubling the timeout on every attempt (exponential backoff, §3.9).
  SimTime request_timeout = 20 * kMillisecond;
  int max_retries = 0;  // 0 = timeouts only, no retransmission
  uint64_t seed = 1;
  bool check_staleness = true;
  // Cap on the per-key version map behind check_staleness. Long runs over
  // huge keyspaces would otherwise grow it without bound; keys past the
  // cap are simply not staleness-tracked (detection stays exact for the
  // first staleness_max_keys distinct keys, which covers every hot key).
  size_t staleness_max_keys = size_t{1} << 20;
};

class ClientNode : public sim::Node, public sim::TimerHandler {
 public:
  ClientNode(sim::Simulator* sim, sim::Network* net, int port,
             const ClientConfig& config,
             std::shared_ptr<WorkloadSource> workload);

  void Start();
  // Stops generating traffic and retires every in-flight request into
  // stats().inflight_at_stop (they are neither replies nor timeouts — the
  // run ended while they were on the wire).
  void Stop();

  void OnPacket(sim::PacketPtr pkt, int port) override;
  std::string name() const override { return "client"; }
  // Timer demux: the Tx-tick sentinel or a packed (seq, attempt) deadline.
  void OnTimer(uint64_t arg) override;

  // Opens the measurement window (called by the testbed after warmup).
  void OpenWindow(SimTime at);
  void CloseWindow(SimTime at);
  // Optional per-reply timeline for the dynamic-workload experiment.
  void AttachTimeline(stats::TimeSeries* timeline) { timeline_ = timeline; }

  // Telemetry (optional): the client is where request lifecycles start —
  // it decides which requests are sampled and closes each trace with a
  // "request" span covering client-observed latency.
  void SetTracer(telemetry::Tracer* tracer);
  // INT: the client NIC is the INT source (stamps client_tx) and sink
  // (stamps client_rx, closes the flow); also owns the always-on
  // end-to-end RTT histogram.
  void SetIntSink(telemetry::IntSink* sink);
  // Flight recorder: per-client ring noting tx/rx/retransmit/timeout.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);
  // Registers `<prefix>.*` counters (tx/rx/timeouts/…) against `reg`.
  void RegisterTelemetry(telemetry::Registry& reg, const std::string& prefix);

  // Verification layer (src/verify/): mirrors every send/accept/drop into
  // the shadow oracle. Null disables; observational only.
  void SetVerifier(verify::Verifier* verifier) { verifier_ = verifier; }

  // Tests: start SEQ allocation at an arbitrary point (e.g. near the
  // 32-bit wrap) and inspect the staleness map's footprint.
  void set_next_seq_for_test(uint32_t seq) { next_seq_ = seq; }
  size_t staleness_tracked_keys() const { return last_version_.size(); }

  struct Stats {
    uint64_t tx_requests = 0;
    uint64_t rx_replies = 0;
    uint64_t reads_sent = 0;
    uint64_t writes_sent = 0;
    uint64_t collisions = 0;   // CRN-REQs triggered
    uint64_t timeouts = 0;     // retry budget exhausted, request given up
    uint64_t retransmissions = 0;
    // Timeouts where a retry budget existed and was fully spent
    // (max_retries > 0). Distinguishes "gave up after retrying" from the
    // timeout-only configs where every deadline expiry is a timeout; any
    // fault-free run must keep this at zero.
    uint64_t retries_exhausted = 0;
    uint64_t inflight_at_stop = 0;  // pending when Stop() was called
    uint64_t stray_replies = 0;
    uint64_t stale_reads = 0;  // coherence violations observed
    uint64_t duplicate_frags = 0;
  };
  const Stats& stats() const { return stats_; }

  const stats::ThroughputMeter& rx_meter() const { return rx_meter_; }
  // Latency of read replies served by the switch cache vs by servers, plus
  // write latency and switch-resident time (the header Latency field).
  const stats::Histogram& cached_read_latency() const { return lat_cached_; }
  const stats::Histogram& server_read_latency() const { return lat_server_; }
  const stats::Histogram& write_latency() const { return lat_write_; }
  const stats::Histogram& switch_resident() const { return lat_switch_; }

 private:
  struct Pending {
    Key key;
    Hash128 hkey;
    SimTime sent_at = 0;       // first send — latency is measured from here
    bool is_write = false;
    bool is_correction = false;
    Addr server = kInvalidAddr;
    uint32_t value_size = 0;   // for retransmitting writes
    int attempt = 0;           // retransmissions so far
    // Reassembly bitmap over frag_index (proto caps frag_total at 255).
    std::array<uint64_t, 4> frag_bitmap{};
    uint32_t frags_received = 0;
    uint64_t trace_id = 0;     // non-zero when this request is sampled
    uint32_t int_id = 0;       // non-zero when this request carries INT
  };

  // Timer argument encoding: the Tx tick uses a sentinel no deadline can
  // produce (attempt is bounded by max_retries << 2^32), deadlines pack
  // (seq, attempt) into one word.
  static constexpr uint64_t kTickArg = ~uint64_t{0};
  static constexpr uint64_t DeadlineArg(uint32_t seq, int attempt) {
    return (uint64_t{seq} << 32) | static_cast<uint32_t>(attempt);
  }

  void SendNext();
  // `inherited_trace_id`/`inherited_int_id` keep a correction retry on
  // its original trace and INT flow.
  void SendRequest(const WorkloadSource::Request& req, bool correction,
                   SimTime original_sent_at, uint64_t inherited_trace_id = 0,
                   uint32_t inherited_int_id = 0);
  // Puts (or re-puts) the request for `seq` on the wire.
  void Transmit(uint32_t seq, const Pending& pending);
  // Schedules the deadline for the given attempt; a reply simply erases
  // the pending entry and lets the event fire into nothing.
  void ArmDeadline(uint32_t seq, int attempt);
  void OnDeadline(uint32_t seq, int attempt);
  SimTime TimeoutFor(int attempt) const;
  void HandleReply(const sim::Packet& pkt);
  void RecordLatency(const sim::Packet& pkt, const Pending& pending);

  sim::Simulator* sim_;
  sim::Network* net_;
  int port_;
  ClientConfig config_;
  std::shared_ptr<WorkloadSource> workload_;
  Rng rng_;

  bool running_ = false;
  uint32_t next_seq_ = 1;
  std::unordered_map<uint32_t, Pending> pending_;
  std::unordered_map<Key, uint64_t> last_version_;  // staleness tracking

  stats::ThroughputMeter rx_meter_;
  stats::Histogram lat_cached_;
  stats::Histogram lat_server_;
  stats::Histogram lat_write_;
  stats::Histogram lat_switch_;
  stats::TimeSeries* timeline_ = nullptr;
  bool window_open_ = false;

  telemetry::Tracer* tracer_ = nullptr;
  int track_ = -1;
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hop_tx_ = 0;
  uint32_t int_hop_rx_ = 0;
  uint32_t int_hist_rtt_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;
  verify::Verifier* verifier_ = nullptr;  // not owned; null = no checks

  Stats stats_;
};

}  // namespace orbit::app
