// Shared scalar aliases for the whole project.
#pragma once

#include <cstdint>
#include <string>

namespace orbit {

// Simulated time in nanoseconds since experiment start.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

// Addresses in the simulated network. We do not model real IPv4; an
// "address" is a dense node identifier that forwarding tables match on.
using Addr = uint32_t;
using L4Port = uint16_t;

constexpr Addr kInvalidAddr = 0xffffffffu;

// Variable-length item keys are byte strings, exactly as in the paper.
using Key = std::string;

}  // namespace orbit
