#include "common/hash.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace orbit {

namespace {

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t LoadTail(const char* p, size_t n) {
  uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

constexpr uint64_t kMul1 = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kMul2 = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kMul3 = 0x165667b19e3779f9ull;

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t UnMix64(uint64_t x) {
  // Inverse of xorshift: y = x ^ (x >> s) inverts itself when applied
  // ceil(64/s) times; multiplications invert via modular inverses.
  auto unxorshift = [](uint64_t v, unsigned s) {
    uint64_t r = v;
    for (unsigned applied = s; applied < 64; applied += s) r = v ^ (r >> s);
    return r;
  };
  x = unxorshift(x, 31);
  x *= 0x319642b2d24d8ec3ull;  // inverse of 0x94d049bb133111eb
  x = unxorshift(x, 27);
  x *= 0x96de1b173f119089ull;  // inverse of 0xbf58476d1ce4e5b9
  x = unxorshift(x, 30);
  return x - 0x9e3779b97f4a7c15ull;
}

uint64_t Hash64(std::string_view data, uint64_t seed) {
  const char* p = data.data();
  size_t n = data.size();
  uint64_t h = seed * kMul2 + kMul1 + n * kMul3;
  while (n >= 8) {
    h = std::rotl(h ^ (Load64(p) * kMul2), 29) * kMul1;
    p += 8;
    n -= 8;
  }
  if (n > 0) h = std::rotl(h ^ (LoadTail(p, n) * kMul2), 29) * kMul1;
  return Mix64(h);
}

Hash128 HashKey128(std::string_view data, uint64_t seed) {
  const char* p = data.data();
  size_t n = data.size();
  uint64_t h1 = seed ^ (data.size() * kMul1);
  uint64_t h2 = ~seed + kMul2;
  while (n >= 16) {
    h1 = std::rotl(h1 ^ (Load64(p) * kMul2), 31) * kMul1 + h2;
    h2 = std::rotl(h2 ^ (Load64(p + 8) * kMul1), 29) * kMul2 + h1;
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    h1 = std::rotl(h1 ^ (Load64(p) * kMul2), 31) * kMul1 + h2;
    p += 8;
    n -= 8;
  }
  if (n > 0) h2 = std::rotl(h2 ^ (LoadTail(p, n) * kMul1), 29) * kMul2 + h1;
  // Cross-lane finalization as in murmur3's tail.
  h1 += h2;
  h2 += h1;
  h1 = Mix64(h1);
  h2 = Mix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

Permutation::Permutation(uint64_t n, uint64_t seed) : n_(n) {
  ORBIT_CHECK_MSG(n > 0, "permutation domain must be non-empty");
  // Smallest even bit width whose 2^bits covers n; Feistel needs equal
  // halves so we round the total width up to an even number.
  uint32_t bits = 1;
  while ((uint64_t{1} << bits) < n && bits < 62) ++bits;
  if (bits % 2 != 0) ++bits;
  half_bits_ = bits / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  for (int i = 0; i < 4; ++i) keys_[i] = Mix64(seed + 0x1000 + i);
}

uint64_t Permutation::RoundTrip(uint64_t x) const {
  uint64_t left = x >> half_bits_;
  uint64_t right = x & half_mask_;
  for (const uint64_t key : keys_) {
    uint64_t f = Mix64(right ^ key) & half_mask_;
    uint64_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  return (left << half_bits_) | right;
}

uint64_t Permutation::operator()(uint64_t x) const {
  ORBIT_CHECK_MSG(x < n_, "permutation input " << x << " out of [0," << n_
                                               << ")");
  // Cycle-walking: the Feistel net permutes [0, 2^(2*half_bits)); re-apply
  // until the image falls inside [0, n). Terminates because the map is a
  // bijection on the larger domain.
  uint64_t y = RoundTrip(x);
  while (y >= n_) y = RoundTrip(y);
  return y;
}

}  // namespace orbit
