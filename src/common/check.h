// Lightweight invariant checking used across the simulator.
//
// Hardware-constraint violations (e.g. a P4 program declaring a match key
// wider than the ASIC supports) are programming errors in the model user's
// code, so they throw rather than abort: tests assert on them.
#pragma once

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace orbit {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
// Observer invoked (with the formatted message) just before a failed
// check throws. Thread-local so parallel harness workers never see each
// other's hooks. The flight recorder uses this to dump its rings while
// the failing run's state is still live.
inline thread_local std::function<void(const std::string&)>
    check_failure_hook;

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  std::string what = os.str();
  if (check_failure_hook) check_failure_hook(what);
  throw CheckFailure(what);
}
}  // namespace detail

// RAII installer for the per-thread check-failure observer; restores the
// previous hook (nestable) on destruction.
class ScopedCheckFailureHook {
 public:
  explicit ScopedCheckFailureHook(std::function<void(const std::string&)> hook)
      : prev_(std::move(detail::check_failure_hook)) {
    detail::check_failure_hook = std::move(hook);
  }
  ~ScopedCheckFailureHook() { detail::check_failure_hook = std::move(prev_); }
  ScopedCheckFailureHook(const ScopedCheckFailureHook&) = delete;
  ScopedCheckFailureHook& operator=(const ScopedCheckFailureHook&) = delete;

 private:
  std::function<void(const std::string&)> prev_;
};

}  // namespace orbit

// ORBIT_CHECK(cond) / ORBIT_CHECK_MSG(cond, "context " << value)
#define ORBIT_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::orbit::detail::CheckFailed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define ORBIT_CHECK_MSG(cond, stream_expr)                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << stream_expr;                                              \
      ::orbit::detail::CheckFailed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (0)
