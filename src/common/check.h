// Lightweight invariant checking used across the simulator.
//
// Hardware-constraint violations (e.g. a P4 program declaring a match key
// wider than the ASIC supports) are programming errors in the model user's
// code, so they throw rather than abort: tests assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace orbit {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace orbit

// ORBIT_CHECK(cond) / ORBIT_CHECK_MSG(cond, "context " << value)
#define ORBIT_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::orbit::detail::CheckFailed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define ORBIT_CHECK_MSG(cond, stream_expr)                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << stream_expr;                                              \
      ::orbit::detail::CheckFailed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (0)
