// Hashing primitives.
//
// Key-value systems in this repo need three distinct hash roles:
//   * Hash64  — fast 64-bit hash for hash tables, partitioning, sketches.
//   * Hash128 — the 16-byte key hash OrbitCache carries in its HKEY header
//               field as the cache-lookup match key (paper §3.2/§3.6).
//   * Mix64 / a bijective permutation — mapping popularity ranks to key ids
//               deterministically without a 10M-entry table.
//
// All implementations are self-contained (no external deps) and stable
// across runs and platforms, which experiments rely on for reproducibility.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace orbit {

// 128-bit hash value; ordered and hashable so it can index std containers
// and serve as a match key.
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend auto operator<=>(const Hash128&, const Hash128&) = default;
};

// SplitMix64 finalizer: a fast bijective mixer on 64-bit values.
uint64_t Mix64(uint64_t x);
// Inverse of Mix64 (used by tests to prove bijectivity).
uint64_t UnMix64(uint64_t x);

// 64-bit string hash (xxh3-style folding, not the real xxh3). Seeded so
// independent sketch rows can use the same function family.
uint64_t Hash64(std::string_view data, uint64_t seed = 0);

// 128-bit string hash in the spirit of MurmurHash3 x64/128: two lanes of
// multiply-rotate mixing with cross-lane diffusion.
Hash128 HashKey128(std::string_view data, uint64_t seed = 0);

// A cheap bijective permutation over [0, n) built from Feistel rounds on
// the value's bit halves; used to scatter popularity ranks over the key
// space so hot keys land on pseudo-random servers.
class Permutation {
 public:
  // `n` may be any positive value (not just powers of two); cycles walking
  // is used to stay within range.
  Permutation(uint64_t n, uint64_t seed);

  uint64_t size() const { return n_; }
  uint64_t operator()(uint64_t x) const;  // forward map, x in [0, n)

 private:
  uint64_t RoundTrip(uint64_t x) const;  // permutes [0, 2^bits)

  uint64_t n_;
  uint32_t half_bits_;
  uint64_t half_mask_;
  uint64_t keys_[4];
};

}  // namespace orbit

template <>
struct std::hash<orbit::Hash128> {
  size_t operator()(const orbit::Hash128& h) const noexcept {
    return static_cast<size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull));
  }
};
