#include "common/bytes.h"

#include "common/check.h"

namespace orbit {

void ByteWriter::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::u32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<uint8_t>(v >> shift));
}

void ByteWriter::u64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<uint8_t>(v >> shift));
}

void ByteWriter::bytes(std::string_view v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::fixed(std::string_view v, size_t width) {
  ORBIT_CHECK_MSG(v.size() <= width,
                  "fixed field overflow: " << v.size() << " > " << width);
  bytes(v);
  buf_.insert(buf_.end(), width - v.size(), 0);
}

bool ByteReader::advance(size_t n) {
  if (size_ - pos_ < n) {
    ok_ = false;
    pos_ = size_;
    return false;
  }
  return true;
}

uint8_t ByteReader::u8() {
  if (!advance(1)) return 0;
  return data_[pos_++];
}

uint16_t ByteReader::u16() {
  if (!advance(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32() {
  if (!advance(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

uint64_t ByteReader::u64() {
  if (!advance(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::string ByteReader::bytes(size_t n) {
  if (!advance(n)) return {};
  std::string v(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return v;
}

}  // namespace orbit
