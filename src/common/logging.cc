#include "common/logging.h"

#include <mutex>

namespace orbit {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

void Logger::Emit(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  // One preformatted line per write, under a lock: concurrent harness
  // workers may log at once and lines must never interleave mid-message.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += kNames[idx];
  line += "] ";
  line += msg;
  line += '\n';
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << line;
}

}  // namespace orbit
