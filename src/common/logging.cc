#include "common/logging.h"

namespace orbit {

LogLevel Logger::level_ = LogLevel::kWarn;

void Logger::Emit(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::cerr << "[" << kNames[idx] << "] " << msg << "\n";
}

}  // namespace orbit
