#include "common/random.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace orbit {

Rng::Rng(uint64_t seed) : state_(Mix64(seed)), inc_(Mix64(seed ^ 0xda3e39cb94b95bdbull) | 1) {
  NextU64();
}

uint64_t Rng::NextU64() {
  // PCG-XSH-RR style output on a 64-bit LCG state. Not cryptographic;
  // plenty for workload generation.
  uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  uint64_t xorshifted = (old >> 18) ^ old;
  return Mix64(xorshifted);
}

uint64_t Rng::UniformU64(uint64_t bound) {
  ORBIT_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double mean) {
  ORBIT_CHECK(mean > 0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

}  // namespace orbit
