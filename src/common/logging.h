// Minimal leveled logger.
//
// The simulator is performance sensitive, so log calls below the active
// level cost one branch. Benches run with the logger off; tests may raise
// the level to debug specific scenarios.
//
// Thread safety: the harness runs independent simulator instances on
// worker threads, so the level is atomic (relaxed — it is a filter, not a
// synchronization point) and Emit serializes under a mutex so concurrent
// lines never interleave mid-message.
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

namespace orbit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel level) {
    return level >= level_.load(std::memory_order_relaxed);
  }
  static void Emit(LogLevel level, const std::string& msg);

 private:
  static std::atomic<LogLevel> level_;
};

}  // namespace orbit

#define ORBIT_LOG(level_enum, stream_expr)                                   \
  do {                                                                       \
    if (::orbit::Logger::enabled(::orbit::LogLevel::level_enum)) {           \
      std::ostringstream os_;                                                \
      os_ << stream_expr;                                                    \
      ::orbit::Logger::Emit(::orbit::LogLevel::level_enum, os_.str());       \
    }                                                                        \
  } while (0)

#define LOG_DEBUG(stream_expr) ORBIT_LOG(kDebug, stream_expr)
#define LOG_INFO(stream_expr) ORBIT_LOG(kInfo, stream_expr)
#define LOG_WARN(stream_expr) ORBIT_LOG(kWarn, stream_expr)
#define LOG_ERROR(stream_expr) ORBIT_LOG(kError, stream_expr)
