// Deterministic pseudo-random number generation for workloads and timing.
//
// A small PCG-style generator: fast, high quality for simulation purposes,
// and fully reproducible from a seed — every experiment in EXPERIMENTS.md
// records its seed.
#pragma once

#include <cstdint>

namespace orbit {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull);

  uint64_t NextU64();
  // Uniform in [0, bound), bias-free via rejection.
  uint64_t UniformU64(uint64_t bound);
  // Uniform in [0, 1).
  double UniformDouble();
  // Exponential with the given mean (> 0); used for open-loop Poisson
  // arrivals (paper §4: inter-request gaps follow an exponential
  // distribution).
  double Exponential(double mean);
  bool Bernoulli(double p);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace orbit
