// Byte-order-safe serialization helpers used by the wire codec.
//
// All multi-byte integers on the wire are big-endian (network order), like
// the P4 header fields they model.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace orbit {

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void bytes(std::string_view v);
  // Fixed-width field: writes exactly `width` bytes, zero padded on the
  // right; `v` must not exceed `width`.
  void fixed(std::string_view v, size_t width);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

// Non-owning reader over a byte span. All getters advance the cursor and
// report failure through ok(); reads past the end return zeros/empties and
// latch the error, so callers can validate once at the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  std::string bytes(size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool ok() const { return ok_; }

 private:
  bool advance(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace orbit
