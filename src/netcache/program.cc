#include "netcache/program.h"

#include <cstring>

#include "common/check.h"
#include "telemetry/counters.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"

namespace orbit::nc {

using rmt::IngressResult;

namespace {
inline void Note(rmt::SwitchDevice* dev, const sim::Packet& pkt,
                 const char* name, const char* detail = nullptr) {
  telemetry::Tracer* t = dev->tracer();
  if (t != nullptr && pkt.trace_id != 0)
    t->Instant(dev->trace_track(), pkt.trace_id, name, dev->sim().now(),
               detail);
}
}  // namespace

NetProgram::NetProgram(rmt::SwitchDevice* device, const NetConfig& config)
    : device_(device),
      config_(config),
      lookup_(&device->resources(), "nc_lookup", /*stage=*/0, config.capacity,
              config.max_key_bytes, /*entry_bytes=*/4),
      valid_(&device->resources(), "nc_valid", /*stage=*/1, config.capacity),
      wepoch_(&device->resources(), "nc_wepoch", /*stage=*/1, config.capacity),
      vlen_(&device->resources(), "nc_vlen", /*stage=*/1, config.capacity),
      popularity_(&device->resources(), "nc_popularity", /*stage=*/1,
                  config.capacity),
      sketch_(config.sketch_rows, config.sketch_width) {
  ORBIT_CHECK(device != nullptr);
  ORBIT_CHECK_MSG(config.stage_value_bytes <=
                      device->resources().config().alu_bytes_per_stage,
                  "per-stage value bytes exceed the ALU limit");
  ORBIT_CHECK_MSG(2 + config.value_stages <=
                      device->resources().config().num_stages - 2,
                  "not enough stages for the requested value width");
  // One 8-byte word array per value stage: the n×k value ceiling.
  value_words_.reserve(static_cast<size_t>(config.value_stages));
  for (int s = 0; s < config.value_stages; ++s) {
    value_words_.push_back(std::make_unique<rmt::RegisterArray<uint64_t>>(
        &device->resources(), "nc_value_s" + std::to_string(s),
        /*stage=*/2 + s, config.capacity));
  }
  if (config.recirc_read_mode) {
    extended_values_.resize(config.capacity);
    // Account the extra slices' SRAM (they live in the same stages and are
    // addressed on later passes).
    rmt::ResourceEntry ext;
    ext.name = "nc_value_extended";
    ext.stage = 2;
    ext.sram_bytes = static_cast<uint64_t>(config.capacity) *
                     (config.recirc_read_max_bytes - bytes_per_pass());
    device->resources().Declare(ext);
  }
  // Count-min sketch accounting (4 rows of 32-bit counters in hardware).
  rmt::ResourceEntry cm;
  cm.name = "nc_countmin";
  cm.stage = 2 + config.value_stages;
  cm.sram_bytes = static_cast<uint64_t>(config.sketch_rows) *
                  config.sketch_width * 4;
  cm.alus = static_cast<int>(config.sketch_rows);
  device->resources().Declare(cm);
  // L3 forwarding accounting.
  rmt::ResourceEntry l3;
  l3.name = "ipv4_forward";
  l3.stage = 3 + config.value_stages;
  l3.match_key_bytes = 4;
  l3.sram_bytes = 4096 * 8;
  l3.tables = 1;
  device->resources().Declare(l3);
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

bool NetProgram::InsertEntry(const Key& key, uint32_t idx) {
  ORBIT_CHECK_MSG(idx < config_.capacity, "cache index out of range");
  if (!lookup_.Insert(key, idx)) return false;  // throws if key > 16B
  valid_.at(idx) = 0;
  wepoch_.at(idx) = 0;
  vlen_.at(idx) = 0;
  popularity_.at(idx) = 0;
  return true;
}

bool NetProgram::EraseEntry(const Key& key) { return lookup_.Erase(key); }

std::optional<uint32_t> NetProgram::FindIdx(const Key& key) const {
  const uint32_t* idx = lookup_.Lookup(key);
  if (idx == nullptr) return std::nullopt;
  return *idx;
}

std::vector<uint64_t> NetProgram::ReadAndResetPopularity() {
  std::vector<uint64_t> out(config_.capacity, 0);
  for (size_t i = 0; i < config_.capacity; ++i) {
    out[i] = popularity_.at(i);
    popularity_.at(i) = 0;
  }
  return out;
}

std::vector<std::pair<Key, uint64_t>> NetProgram::DrainHotReports() {
  std::vector<std::pair<Key, uint64_t>> out;
  out.swap(hot_reports_);
  reported_.clear();
  return out;
}

std::vector<Key> NetProgram::DrainSelfEvictions() {
  std::vector<Key> out;
  out.swap(self_evictions_);
  return out;
}

void NetProgram::ResetDataPlane() {
  device_->FlushRecirculation();  // recirculating reads die at the barrier
  lookup_.Clear();
  valid_.Fill(0);
  wepoch_.Fill(0);
  vlen_.Fill(0);
  popularity_.Fill(0);
  for (auto& words : value_words_) words->Fill(0);
  for (auto& ext : extended_values_) ext.clear();
  sketch_.Reset();
  hot_reports_.clear();
  reported_.clear();
  self_evictions_.clear();
}

// ---------------------------------------------------------------------------
// Value word registers
// ---------------------------------------------------------------------------

void NetProgram::StoreValue(uint32_t idx, const std::string& bytes) {
  ORBIT_CHECK(bytes.size() <= max_value_bytes());
  vlen_.at(idx) = static_cast<uint16_t>(bytes.size());
  const size_t first_pass = std::min<size_t>(bytes.size(), bytes_per_pass());
  for (size_t s = 0; s < value_words_.size(); ++s) {
    uint64_t word = 0;
    const size_t off = s * config_.stage_value_bytes;
    if (off < first_pass) {
      const size_t n =
          std::min<size_t>(config_.stage_value_bytes, first_pass - off);
      std::memcpy(&word, bytes.data() + off, n);
    }
    value_words_[s]->at(idx) = word;
  }
  if (config_.recirc_read_mode)
    extended_values_[idx] = bytes.substr(first_pass);
}

std::string NetProgram::LoadValue(uint32_t idx) const {
  const size_t len = vlen_.at(idx);
  const size_t first_pass = std::min<size_t>(len, bytes_per_pass());
  std::string bytes(first_pass, '\0');
  for (size_t s = 0; s * config_.stage_value_bytes < first_pass; ++s) {
    const uint64_t word = value_words_[s]->at(idx);
    const size_t off = s * config_.stage_value_bytes;
    const size_t n =
        std::min<size_t>(config_.stage_value_bytes, first_pass - off);
    std::memcpy(bytes.data() + off, &word, n);
  }
  if (config_.recirc_read_mode) bytes += extended_values_[idx];
  return bytes;
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

IngressResult NetProgram::Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) {
  (void)sw;
  if (bypass_) {
    // Degraded mode: transparent pass-through (see set_bypass).
    ++stats_.bypass_forwarded;
    return IngressResult::ToAddr(pkt.dst);
  }
  if (!IsOrbit(pkt)) return IngressResult::ToAddr(pkt.dst);

  using proto::Op;
  switch (pkt.msg.op) {
    case Op::kReadReq:
      return HandleReadRequest(pkt);
    case Op::kWriteReq:
      return HandleWriteRequest(pkt);
    case Op::kWriteRep:
    case Op::kFetchRep:
      return HandleValueReply(pkt);
    case Op::kFetchReq:
      // Stamp the entry's current write epoch so the fetch reply can prove
      // no write overtook it while the value was in flight.
      if (const uint32_t* idxp = lookup_.Lookup(pkt.msg.key))
        pkt.msg.epoch = wepoch_.at(*idxp);
      return IngressResult::ToAddr(pkt.dst);
    case Op::kCorrectionReq:  // not part of NetCache; forward like a read
    case Op::kReadRep:
    case Op::kTopKReport:
      return IngressResult::ToAddr(pkt.dst);
    case Op::kProbe:
    case Op::kProbeAck:
      // Fabric liveness probes are consumed by the device's CPU path and
      // never reach the program; forward defensively if one ever does.
      return IngressResult::ToAddr(pkt.dst);
  }
  return IngressResult::Drop();
}

IngressResult NetProgram::HandleReadRequest(sim::Packet& pkt) {
  if (!pkt.from_recirc) ++stats_.read_requests;
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.key);
  if (idxp == nullptr) {
    ++stats_.read_misses;
    Note(device_, pkt, "lookup_miss");
    // Heavy-hitter detection for uncached keys.
    sketch_.Update(pkt.msg.key);
    if (sketch_.Estimate(pkt.msg.key) >= config_.hot_threshold &&
        reported_.insert(pkt.msg.key).second) {
      hot_reports_.emplace_back(pkt.msg.key, sketch_.Estimate(pkt.msg.key));
      ++stats_.hot_reports;
    }
    return IngressResult::ToAddr(pkt.dst);
  }
  const uint32_t idx = *idxp;
  if (!pkt.from_recirc) {
    ++stats_.read_hits;
    popularity_.at(idx)++;
  }
  if (valid_.at(idx) == 0) {
    ++stats_.invalid_to_server;
    Note(device_, pkt, "lookup_hit", "invalid_bypass");
    return IngressResult::ToAddr(pkt.dst);
  }
  if (config_.recirc_read_mode) {
    // §2.2 strawman: one pass reads bytes_per_pass() of the value, so a
    // request must recirculate ceil(len/pass)-1 times before the reply can
    // leave — consuming the single recirculation port per request.
    const uint32_t len = vlen_.at(idx);
    const uint32_t passes =
        (len + bytes_per_pass() - 1) / std::max(1u, bytes_per_pass());
    if (passes > 1 && pkt.recirc_count + 1 < passes) {
      ++stats_.request_recircs;
      Note(device_, pkt, "recirc_read_pass");
      return IngressResult::Recirculate();
    }
  }
  // Serve from switch memory: bounce the request back as a reply.
  const Addr client = pkt.src;
  const L4Port client_port = pkt.sport;
  pkt.msg.op = proto::Op::kReadRep;
  pkt.msg.cached = 1;
  pkt.msg.value = kv::Value::FromBytes(LoadValue(idx));
  pkt.src = pkt.dst;
  pkt.dst = client;
  pkt.sport = config_.orbit_port;
  pkt.dport = client_port;
  ++stats_.served_by_cache;
  if (int_ != nullptr)
    int_->Record(int_hist_value_, static_cast<int64_t>(pkt.msg.value.size()));
  Note(device_, pkt, "lookup_hit", "serve");
  return IngressResult::ToAddr(client);
}

IngressResult NetProgram::HandleWriteRequest(sim::Packet& pkt) {
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.key);
  if (idxp == nullptr) {
    ++stats_.writes_uncached;
    return IngressResult::ToAddr(pkt.dst);
  }
  ++stats_.writes_cached;
  valid_.at(*idxp) = 0;
  wepoch_.at(*idxp)++;
  pkt.msg.epoch = wepoch_.at(*idxp);
  pkt.msg.flag |= proto::kFlagCachedWrite;
  return IngressResult::ToAddr(pkt.dst);
}

IngressResult NetProgram::HandleValueReply(sim::Packet& pkt) {
  const bool carries_value =
      pkt.msg.op == proto::Op::kFetchRep ||
      (pkt.msg.flag & proto::kFlagCachedWrite) != 0;
  const uint32_t* idxp = lookup_.Lookup(pkt.msg.key);
  if (idxp == nullptr || !carries_value) return IngressResult::ToAddr(pkt.dst);
  const uint32_t idx = *idxp;
  if (pkt.msg.epoch != wepoch_.at(idx)) {
    // A newer write passed the switch after this reply's value was read:
    // revalidating would resurrect a stale value (e.g. when the newest
    // write's own reply is lost). Forward without touching the cache; the
    // entry stays invalid until a current-epoch reply arrives.
    ++stats_.stale_revalidations;
    Note(device_, pkt, "stale_revalidation_skip");
    return IngressResult::ToAddr(pkt.dst);
  }
  const std::string bytes = pkt.msg.value.Materialize(pkt.msg.key);
  if (bytes.size() > max_value_bytes()) {
    // The n×k ceiling: this item cannot live in switch memory after all.
    lookup_.Erase(pkt.msg.key);
    self_evictions_.push_back(pkt.msg.key);
    ++stats_.uncacheable_values;
    return IngressResult::ToAddr(pkt.dst);
  }
  StoreValue(idx, bytes);
  valid_.at(idx) = 1;
  ++stats_.validations;
  Note(device_, pkt, "validate");
  return IngressResult::ToAddr(pkt.dst);
}

void NetProgram::OnIntAttached(telemetry::IntSink& sink) {
  int_ = &sink;
  int_hist_value_ = sink.Hist("value.bytes", "bytes");
}

void NetProgram::RegisterTelemetry(telemetry::Registry& reg,
                                   const std::string& prefix) {
  const std::string who = "NetProgram::RegisterTelemetry(" + prefix + ")";
  reg.AddCounter(prefix + "netcache.read_requests",
                 [this] { return stats_.read_requests; }, who);
  reg.AddCounter(prefix + "netcache.read_hits", [this] { return stats_.read_hits; }, who);
  reg.AddCounter(prefix + "netcache.read_misses",
                 [this] { return stats_.read_misses; }, who);
  reg.AddCounter(prefix + "netcache.served_by_cache",
                 [this] { return stats_.served_by_cache; }, who);
  reg.AddCounter(prefix + "netcache.invalid_to_server",
                 [this] { return stats_.invalid_to_server; }, who);
  reg.AddCounter(prefix + "netcache.writes_cached",
                 [this] { return stats_.writes_cached; }, who);
  reg.AddCounter(prefix + "netcache.writes_uncached",
                 [this] { return stats_.writes_uncached; }, who);
  reg.AddCounter(prefix + "netcache.validations",
                 [this] { return stats_.validations; }, who);
  reg.AddCounter(prefix + "netcache.stale_revalidations",
                 [this] { return stats_.stale_revalidations; }, who);
  reg.AddCounter(prefix + "netcache.uncacheable_values",
                 [this] { return stats_.uncacheable_values; }, who);
  reg.AddCounter(prefix + "netcache.hot_reports",
                 [this] { return stats_.hot_reports; }, who);
  reg.AddCounter(prefix + "netcache.request_recircs",
                 [this] { return stats_.request_recircs; }, who);
  reg.AddCounter(prefix + "netcache.bypass_forwarded",
                 [this] { return stats_.bypass_forwarded; }, who);
  reg.AddGauge(prefix + "netcache.entries", [this] { return lookup_.size(); }, who);

  reg.AddCounter(prefix + "rmt.s0.nc_lookup.lookups",
                 [this] { return lookup_.lookups(); }, who);
  reg.AddCounter(prefix + "rmt.s0.nc_lookup.hits", [this] { return lookup_.hits(); }, who);
  auto add_array = [&reg, &prefix, &who](const rmt::RegisterArrayBase& arr) {
    reg.AddCounter(prefix + "rmt.s" + std::to_string(arr.stage()) + "." +
                       arr.array_name() + ".accesses",
                   [&arr] { return arr.accesses(); }, who);
  };
  add_array(valid_);
  add_array(wepoch_);
  add_array(vlen_);
  add_array(popularity_);
  for (const auto& words : value_words_) add_array(*words);
}

}  // namespace orbit::nc
