// NetCache control plane: periodic cache updates driven by the data-plane
// count-min reports (hot uncached keys) and per-entry hit counters (cached
// keys). Keys whose fetched values turn out to exceed the n×k value ceiling
// are blacklisted — NetCache simply cannot cache them, which is the paper's
// core motivation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "kv/partition.h"
#include "netcache/program.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::nc {

struct NetControllerConfig {
  size_t cache_size = 10000;
  SimTime update_period = 100 * kMillisecond;
  SimTime fetch_timeout = 2 * kMillisecond;
  int max_fetch_attempts = 5;
  L4Port orbit_port = 5008;
};

class NetController : public sim::Node, public sim::TimerHandler {
 public:
  NetController(sim::Simulator* sim, sim::Network* net, NetProgram* program,
                const kv::Partitioner* partitioner,
                std::vector<Addr> server_addrs, Addr self_addr, int self_port,
                const NetControllerConfig& config);

  // Installs the initial cache set; keys wider than the match key are
  // skipped (uncacheable), mirroring hardware behaviour.
  void Preload(const std::vector<Key>& keys);
  void Start();

  // Switch-failure recovery: after ResetDataPlane wiped the lookup table
  // and value registers, re-install every tracked entry and refetch the
  // values. Retries ride the periodic-update timeout machinery.
  void RebuildCache();

  // Degraded-mode top-up (fabric leaf crash, PR 10): installs keys beyond
  // the cache_size target — bounded only by lookup capacity — so a
  // surviving leaf absorbs its rack's next-hottest keys while a sibling
  // leaf is in bypass. Returns the number actually installed. WithdrawKey
  // removes one cached key; returns false if it was not cached.
  size_t InstallExtra(const std::vector<Key>& keys);
  bool WithdrawKey(const Key& key);

  void OnPacket(sim::PacketPtr pkt, int port) override;
  std::string name() const override { return "nc-controller"; }
  void OnTimer(uint64_t arg) override;  // periodic update tick

  size_t num_cached() const { return by_key_.size(); }
  bool IsCached(const Key& key) const { return by_key_.count(key) > 0; }

  struct Stats {
    uint64_t updates = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t fetches_sent = 0;
    uint64_t fetch_retries = 0;
    uint64_t skipped_wide_keys = 0;
    uint64_t blacklisted_values = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct CachedEntry {
    Key key;
    uint32_t idx = 0;
    uint64_t last_count = 0;
  };
  struct PendingFetch {
    Key key;
    Addr server = kInvalidAddr;
    int attempts = 0;
    SimTime deadline = 0;
  };

  void Tick();
  void ReconcileSelfEvictions();
  void UpdateCacheEntries();
  void InsertKey(const Key& key, uint32_t idx);
  void EvictIdx(uint32_t idx);
  void SendFetch(const Key& key, Addr server);
  void CheckFetchTimeouts();
  uint32_t AllocIdx();

  sim::Simulator* sim_;
  sim::Network* net_;
  NetProgram* program_;
  const kv::Partitioner* partitioner_;
  std::vector<Addr> server_addrs_;
  Addr self_addr_;
  int self_port_;
  NetControllerConfig config_;

  std::unordered_map<uint32_t, CachedEntry> by_idx_;
  std::unordered_map<Key, uint32_t> by_key_;
  std::vector<uint32_t> free_idxs_;
  std::unordered_map<Key, PendingFetch> pending_fetches_;
  std::unordered_set<Key> blacklist_;  // values proven over-limit
  uint32_t fetch_seq_ = 1;
  bool started_ = false;

  Stats stats_;
};

}  // namespace orbit::nc
