// NetCache-style baseline data plane (Jin et al., SOSP'17), the reference
// architecture of the systems OrbitCache compares against (§2.1, §5.1).
//
// Items live *in switch memory*: the lookup table matches on the item key
// itself (hence the 16-byte hardware match-key ceiling) and the value is
// striped as 8-byte words across a fixed set of match-action stages (hence
// the stages × bytes-per-stage value ceiling — 8 × 8B = 64B here, matching
// the baseline build the paper itself evaluates). Items that violate either
// limit are simply not cacheable, which is the behaviour the motivation
// experiments quantify.
//
// Hot uncached keys are detected with a data-plane count-min sketch plus a
// dedicated report set (standing in for NetCache's bloom filter) that the
// controller drains periodically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "rmt/match_table.h"
#include "rmt/register_array.h"
#include "rmt/switch.h"
#include "workload/count_min.h"

namespace orbit::nc {

struct NetConfig {
  size_t capacity = 10000;
  uint32_t max_key_bytes = 16;   // hardware match-key width
  int value_stages = 8;          // stages devoted to value words
  uint32_t stage_value_bytes = 8;  // ALU-accessible bytes per stage
  L4Port orbit_port = 5008;

  uint32_t sketch_rows = 4;
  uint32_t sketch_width = 8192;
  uint64_t hot_threshold = 64;  // sketch estimate that triggers a report

  // The §2.2 strawman OrbitCache argues against: read values larger than
  // one pipeline pass by *recirculating the request*, one pass per
  // n×k-byte slice, up to `recirc_read_max_bytes`. Every cache hit then
  // occupies the single recirculation port ceil(len/64)-1 times — the
  // per-request recirculation load that caps throughput (the rationale
  // bench measures the ceiling).
  bool recirc_read_mode = false;
  uint32_t recirc_read_max_bytes = 1024;
};

class NetProgram : public rmt::SwitchProgram {
 public:
  NetProgram(rmt::SwitchDevice* device, const NetConfig& config);

  rmt::IngressResult Ingress(sim::Packet& pkt, rmt::SwitchDevice& sw) override;
  std::string program_name() const override { return "netcache"; }
  // INT: always-on served-value-size histogram (shared "value.bytes").
  void OnIntAttached(telemetry::IntSink& sink) override;

  // ---- control plane ------------------------------------------------------
  // Bytes one pipeline pass can read from the value registers.
  uint32_t bytes_per_pass() const {
    return static_cast<uint32_t>(config_.value_stages) *
           config_.stage_value_bytes;
  }
  // Largest storable value: one pass normally; the recirc-read strawman
  // stretches it by spending extra passes.
  uint32_t max_value_bytes() const {
    return config_.recirc_read_mode ? config_.recirc_read_max_bytes
                                    : bytes_per_pass();
  }
  // Returns false when the table is full; throws when the key is wider than
  // the hardware match key.
  bool InsertEntry(const Key& key, uint32_t idx);
  bool EraseEntry(const Key& key);
  std::optional<uint32_t> FindIdx(const Key& key) const;
  size_t num_entries() const { return lookup_.size(); }
  bool IsValid(uint32_t idx) const { return valid_.at(idx) != 0; }

  std::vector<uint64_t> ReadAndResetPopularity();
  // Hot uncached keys observed since the last drain (key, sketch estimate).
  std::vector<std::pair<Key, uint64_t>> DrainHotReports();
  // Keys the data plane evicted itself (fetched value exceeded the limit).
  std::vector<Key> DrainSelfEvictions();
  void ResetSketch() { sketch_.Reset(); }

  // Simulates an ASIC reboot: lookup table, validity/epoch/value
  // registers, sketch and report state are wiped, and any recirculating
  // read (recirc_read_mode) dies at the reboot barrier. Routes survive.
  void ResetDataPlane();

  // Degraded mode (fabric leaf crash, PR 10): while set, Ingress is
  // transparent NoCache forwarding. Callers wipe the data plane when
  // entering bypass.
  void set_bypass(bool on) { bypass_ = on; }
  bool bypass() const { return bypass_; }

  struct Stats {
    uint64_t read_requests = 0;
    uint64_t read_hits = 0;
    uint64_t read_misses = 0;
    uint64_t served_by_cache = 0;
    uint64_t invalid_to_server = 0;
    uint64_t writes_cached = 0;
    uint64_t writes_uncached = 0;
    uint64_t validations = 0;
    uint64_t stale_revalidations = 0;  // replies rejected by the epoch guard
    uint64_t uncacheable_values = 0;   // fetch produced an over-limit value
    uint64_t hot_reports = 0;
    uint64_t request_recircs = 0;  // recirc-read strawman passes
    uint64_t bypass_forwarded = 0;  // packets passed through while degraded
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Registers netcache.* outcome counters and per-table / per-stage
  // register access counters against `reg`.
  void RegisterTelemetry(telemetry::Registry& reg,
                         const std::string& prefix = "");

  const NetConfig& config() const { return config_; }

 private:
  bool IsOrbit(const sim::Packet& pkt) const {
    return pkt.dport == config_.orbit_port || pkt.sport == config_.orbit_port;
  }

  rmt::IngressResult HandleReadRequest(sim::Packet& pkt);
  rmt::IngressResult HandleWriteRequest(sim::Packet& pkt);
  rmt::IngressResult HandleValueReply(sim::Packet& pkt);

  // Value word registers <-> bytes.
  void StoreValue(uint32_t idx, const std::string& bytes);
  std::string LoadValue(uint32_t idx) const;

  rmt::SwitchDevice* device_;
  NetConfig config_;

  rmt::ExactMatchTable<Key, uint32_t> lookup_;
  rmt::RegisterArray<uint8_t> valid_;
  // Per-entry write epoch (the OrbitCache epoch guard applied to the
  // baseline): bumped by every cached write request, stamped into the
  // request (servers echo it), and required to match before a value reply
  // may revalidate the entry. Without it, losing the newest write's reply
  // lets an older in-flight reply revalidate the cache with a stale value.
  rmt::RegisterArray<uint32_t> wepoch_;
  rmt::RegisterArray<uint16_t> vlen_;  // stored value length
  rmt::RegisterArray<uint64_t> popularity_;
  std::vector<std::unique_ptr<rmt::RegisterArray<uint64_t>>> value_words_;
  // Recirc-read strawman: slices beyond the first pass (modeling further
  // stage groups reachable only on later passes).
  std::vector<std::string> extended_values_;
  wl::CountMin sketch_;

  std::vector<std::pair<Key, uint64_t>> hot_reports_;
  std::unordered_set<Key> reported_;  // bloom-filter stand-in
  std::vector<Key> self_evictions_;

  // INT histogram handles (zero when no sink is attached).
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hist_value_ = 0;

  bool bypass_ = false;
  Stats stats_;
};

}  // namespace orbit::nc
