#include "netcache/controller.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace orbit::nc {

NetController::NetController(sim::Simulator* sim, sim::Network* net,
                             NetProgram* program,
                             const kv::Partitioner* partitioner,
                             std::vector<Addr> server_addrs, Addr self_addr,
                             int self_port, const NetControllerConfig& config)
    : sim_(sim),
      net_(net),
      program_(program),
      partitioner_(partitioner),
      server_addrs_(std::move(server_addrs)),
      self_addr_(self_addr),
      self_port_(self_port),
      config_(config) {
  ORBIT_CHECK(sim != nullptr && net != nullptr && program != nullptr &&
              partitioner != nullptr);
  ORBIT_CHECK_MSG(config_.cache_size <= program->config().capacity,
                  "cache size exceeds lookup capacity");
  // Free-index pool covers the full lookup capacity; cache_size caps how
  // many are in normal use, leaving headroom for degraded-mode extras.
  const auto capacity = static_cast<uint32_t>(program->config().capacity);
  for (uint32_t i = 0; i < capacity; ++i)
    free_idxs_.push_back(capacity - 1 - i);
}

void NetController::Preload(const std::vector<Key>& keys) {
  for (const Key& key : keys) {
    if (by_key_.size() >= config_.cache_size) break;
    if (by_key_.count(key) > 0) continue;
    if (key.size() > program_->config().max_key_bytes) {
      // Hardware cannot match this key; NetCache must skip it.
      ++stats_.skipped_wide_keys;
      continue;
    }
    InsertKey(key, AllocIdx());
  }
}

void NetController::RebuildCache() {
  pending_fetches_.clear();
  for (const auto& [idx, entry] : by_idx_) {
    // The data plane was wiped, so re-insertion cannot conflict.
    ORBIT_CHECK(program_->InsertEntry(entry.key, idx));
    SendFetch(entry.key, server_addrs_[partitioner_->ServerFor(entry.key)]);
  }
}

size_t NetController::InstallExtra(const std::vector<Key>& keys) {
  size_t installed = 0;
  for (const Key& key : keys) {
    if (by_key_.count(key) > 0 || blacklist_.count(key) > 0) continue;
    if (key.size() > program_->config().max_key_bytes) {
      ++stats_.skipped_wide_keys;
      continue;
    }
    if (free_idxs_.empty()) break;  // lookup capacity exhausted
    InsertKey(key, AllocIdx());
    if (by_key_.count(key) > 0) ++installed;  // table may reject (full)
  }
  return installed;
}

bool NetController::WithdrawKey(const Key& key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  EvictIdx(it->second);
  return true;
}

void NetController::Start() {
  ORBIT_CHECK(!started_);
  started_ = true;
  sim_->AfterTimer(config_.update_period, this);
}

void NetController::OnTimer(uint64_t /*arg*/) { Tick(); }

void NetController::Tick() {
  ++stats_.updates;
  CheckFetchTimeouts();
  ReconcileSelfEvictions();
  UpdateCacheEntries();
  program_->ResetSketch();
  sim_->AfterTimer(config_.update_period, this);
}

void NetController::ReconcileSelfEvictions() {
  for (const Key& key : program_->DrainSelfEvictions()) {
    blacklist_.insert(key);
    ++stats_.blacklisted_values;
    auto it = by_key_.find(key);
    if (it == by_key_.end()) continue;
    const uint32_t idx = it->second;
    pending_fetches_.erase(key);
    by_idx_.erase(idx);
    by_key_.erase(it);
    free_idxs_.push_back(idx);
    ++stats_.evictions;
  }
}

void NetController::UpdateCacheEntries() {
  const std::vector<uint64_t> pop = program_->ReadAndResetPopularity();
  for (auto& [idx, entry] : by_idx_) entry.last_count = pop[idx];

  std::vector<std::pair<Key, uint64_t>> candidates =
      program_->DrainHotReports();
  std::erase_if(candidates, [this](const auto& c) {
    return by_key_.count(c.first) > 0 || blacklist_.count(c.first) > 0 ||
           c.first.size() > program_->config().max_key_bytes;
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.second > b.second ||
                     (a.second == b.second && a.first < b.first);
            });

  std::vector<uint32_t> victims;
  victims.reserve(by_idx_.size());
  for (const auto& [idx, entry] : by_idx_) victims.push_back(idx);
  std::sort(victims.begin(), victims.end(), [this](uint32_t a, uint32_t b) {
    return by_idx_.at(a).last_count < by_idx_.at(b).last_count;
  });

  size_t v = 0;
  for (const auto& [key, count] : candidates) {
    if (by_key_.size() < config_.cache_size) {
      InsertKey(key, AllocIdx());
      continue;
    }
    if (v >= victims.size()) break;
    CachedEntry& victim = by_idx_.at(victims[v]);
    if (count <= victim.last_count) break;
    const uint32_t idx = victim.idx;
    EvictIdx(idx);
    free_idxs_.pop_back();
    InsertKey(key, idx);
    ++v;
  }
}

void NetController::InsertKey(const Key& key, uint32_t idx) {
  if (!program_->InsertEntry(key, idx)) {
    LOG_WARN("nc-controller: lookup table rejected " << key);
    free_idxs_.push_back(idx);
    return;
  }
  by_idx_[idx] = CachedEntry{key, idx, 0};
  by_key_[key] = idx;
  ++stats_.insertions;
  SendFetch(key, server_addrs_[partitioner_->ServerFor(key)]);
}

void NetController::EvictIdx(uint32_t idx) {
  auto it = by_idx_.find(idx);
  ORBIT_CHECK(it != by_idx_.end());
  program_->EraseEntry(it->second.key);
  pending_fetches_.erase(it->second.key);
  by_key_.erase(it->second.key);
  by_idx_.erase(it);
  free_idxs_.push_back(idx);
  ++stats_.evictions;
}

uint32_t NetController::AllocIdx() {
  ORBIT_CHECK_MSG(!free_idxs_.empty(), "no free cache indices");
  const uint32_t idx = free_idxs_.back();
  free_idxs_.pop_back();
  return idx;
}

void NetController::SendFetch(const Key& key, Addr server) {
  PendingFetch& pf = pending_fetches_[key];
  pf.key = key;
  pf.server = server;
  pf.deadline = sim_->now() + config_.fetch_timeout;
  ++pf.attempts;
  ++stats_.fetches_sent;

  proto::Message msg;
  msg.op = proto::Op::kFetchReq;
  msg.seq = fetch_seq_++;
  msg.hkey = HashKey128(key);
  msg.key = key;
  net_->Send(this, self_port_,
             sim::MakePacket(self_addr_, server, config_.orbit_port,
                             config_.orbit_port, std::move(msg)));
}

void NetController::CheckFetchTimeouts() {
  std::vector<Key> retry;
  std::vector<Key> give_up;
  for (const auto& [key, pf] : pending_fetches_) {
    if (pf.deadline > sim_->now()) continue;
    (pf.attempts >= config_.max_fetch_attempts ? give_up : retry)
        .push_back(key);
  }
  for (const Key& key : retry) {
    PendingFetch pf = pending_fetches_[key];
    ++stats_.fetch_retries;
    SendFetch(pf.key, pf.server);
  }
  for (const Key& key : give_up) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) EvictIdx(it->second);
    pending_fetches_.erase(key);
  }
}

void NetController::OnPacket(sim::PacketPtr pkt, int /*port*/) {
  if (pkt->msg.op == proto::Op::kFetchRep) {
    sim::MarkEnd(*pkt, sim::PacketEnd::kConsumed);
    pending_fetches_.erase(pkt->msg.key);
    return;
  }
  sim::MarkEnd(*pkt, sim::PacketEnd::kIgnored);
  LOG_DEBUG("nc-controller: ignoring " << proto::OpName(pkt->msg.op));
}

}  // namespace orbit::nc
