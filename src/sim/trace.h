// Packet tracing.
//
// A Network-wide tap observes every packet at the moment it is committed
// to a link (post loss/drop decisions), like port mirroring on a real
// fabric. `PacketTrace` is a ready-made tap that records a bounded log and
// pretty-prints OrbitCache semantics — the tcpdump of this simulator.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/types.h"
#include "sim/packet.h"

namespace orbit::sim {

class Node;

// from/to identify the link endpoints the packet travels between.
using TapFn =
    std::function<void(const Packet& pkt, Node* from, Node* to, SimTime at)>;

// Why a packet died before reaching the wire. The commit tap never sees
// these packets — losses were invisible to tracing until the drop tap.
enum class DropReason {
  kQueueOverflow,  // link egress queue full (drop-tail)
  kInjectedLoss,   // LinkConfig loss_rate / burst_loss coin
  kLinkDown,       // fault injection took the link down
};
const char* DropReasonName(DropReason reason);

// Fires at the moment a packet is discarded instead of committed to a
// link. `from`/`to` are the link endpoints the packet would have traveled
// between.
using DropTapFn = std::function<void(const Packet& pkt, Node* from, Node* to,
                                     DropReason reason, SimTime at)>;

// One-line human-readable rendering of a packet in flight.
std::string FormatPacket(const Packet& pkt, SimTime at);

// Bounded in-memory packet log usable as a Network tap.
class PacketTrace {
 public:
  explicit PacketTrace(size_t max_entries = 4096) : max_entries_(max_entries) {}

  struct Entry {
    SimTime at = 0;
    std::string from;
    std::string to;
    proto::Op op = proto::Op::kReadReq;
    uint32_t seq = 0;
    Addr src = 0;
    Addr dst = 0;
    uint32_t wire_bytes = 0;
    Key key;
    bool dropped = false;
    DropReason drop_reason = DropReason::kQueueOverflow;
  };

  // Binds this trace to a Network: net.SetTap(trace.AsTap());
  TapFn AsTap();
  // Companion drop recorder: net.SetDropTap(trace.AsDropTap()).
  DropTapFn AsDropTap();

  const std::deque<Entry>& entries() const { return entries_; }
  uint64_t total_seen() const { return total_seen_; }
  uint64_t total_dropped() const { return total_dropped_; }
  void Clear() {
    entries_.clear();
    total_seen_ = 0;
    total_dropped_ = 0;
  }

  // All recorded lines, newest last.
  std::string Dump() const;

 private:
  Entry MakeEntry(const Packet& pkt, Node* from, Node* to, SimTime at) const;

  size_t max_entries_;
  std::deque<Entry> entries_;
  uint64_t total_seen_ = 0;
  uint64_t total_dropped_ = 0;
};

}  // namespace orbit::sim
