// Packet tracing.
//
// A Network-wide tap observes every packet at the moment it is committed
// to a link (post loss/drop decisions), like port mirroring on a real
// fabric. `PacketTrace` is a ready-made tap that records a bounded log and
// pretty-prints OrbitCache semantics — the tcpdump of this simulator.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/types.h"
#include "sim/packet.h"

namespace orbit::sim {

class Node;

// from/to identify the link endpoints the packet travels between.
using TapFn =
    std::function<void(const Packet& pkt, Node* from, Node* to, SimTime at)>;

// One-line human-readable rendering of a packet in flight.
std::string FormatPacket(const Packet& pkt, SimTime at);

// Bounded in-memory packet log usable as a Network tap.
class PacketTrace {
 public:
  explicit PacketTrace(size_t max_entries = 4096) : max_entries_(max_entries) {}

  struct Entry {
    SimTime at = 0;
    std::string from;
    std::string to;
    proto::Op op = proto::Op::kReadReq;
    uint32_t seq = 0;
    Addr src = 0;
    Addr dst = 0;
    uint32_t wire_bytes = 0;
    Key key;
  };

  // Binds this trace to a Network: net.SetTap(trace.AsTap());
  TapFn AsTap();

  const std::deque<Entry>& entries() const { return entries_; }
  uint64_t total_seen() const { return total_seen_; }
  void Clear() {
    entries_.clear();
    total_seen_ = 0;
  }

  // All recorded lines, newest last.
  std::string Dump() const;

 private:
  size_t max_entries_;
  std::deque<Entry> entries_;
  uint64_t total_seen_ = 0;
};

}  // namespace orbit::sim
