// The simulator's event heap.
//
// Two event shapes cover the whole system:
//   * packet deliveries (the hot path: millions per run) carry their target
//     node/port inline, avoiding std::function allocations, and
//   * generic callbacks for everything else (timers, controller periods).
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes runs fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/packet.h"

namespace orbit::sim {

class Node;

struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  // Delivery payload (hot path) — used when node != nullptr.
  Node* node = nullptr;
  int port = -1;
  PacketPtr pkt;
  // Generic callback — used when node == nullptr.
  std::function<void()> fn;
};

class EventQueue {
 public:
  void PushDelivery(SimTime t, Node* node, int port, PacketPtr pkt);
  void PushCallback(SimTime t, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime next_time() const { return heap_.front().time; }

  // Removes and returns the earliest event.
  Event Pop();

 private:
  void Push(Event e);
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  static bool Before(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace orbit::sim
