// The simulator's event queue.
//
// Three event shapes cover the whole system:
//   * packet deliveries (the hot path: millions per run) carry their target
//     node/port inline,
//   * intrusive timers (client Tx ticks, retransmit deadlines, controller
//     periods, server service completions) carry a handler pointer plus a
//     64-bit argument — no std::function, no allocation, and
//   * generic callbacks for the remaining cold paths (tests, fault scripts).
//
// Ordering: events run in timestamp order, and events at equal timestamps
// fire in insertion order. The structure behind that guarantee is a 4-ary
// min-heap of small (time, bucket) entries over FIFO buckets of events:
//
//   * every push appends the event to a bucket — consecutive same-time
//     pushes share one bucket, so a burst of equal-time events costs one
//     heap operation total and drains as a FIFO run;
//   * buckets are stamped with a creation sequence, and the heap orders by
//     (time, creation). Any later same-time event lands in a younger
//     bucket, so cross-bucket order is still insertion order;
//   * the heap only ever sifts 24-byte entries — the fat Event structs
//     (packet pointer, std::function storage) are written once into their
//     bucket and moved once on pop, never during reheapification.
//
// Bucket storage and event vectors are recycled through freelists, so the
// steady state allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/packet.h"

namespace orbit::sim {

class Node;

// Intrusive zero-allocation timer target. Implementors multiplex on the
// 64-bit argument (a kind tag, a packed (seq, attempt), a pointer...).
// Handlers must outlive their armed timers or never run afterwards (the
// simulator drops unfired events at destruction without invoking them).
class TimerHandler {
 public:
  virtual void OnTimer(uint64_t arg) = 0;

 protected:
  ~TimerHandler() = default;
};

struct Event {
  SimTime time = 0;
  // Delivery payload (hot path) — used when node != nullptr.
  Node* node = nullptr;
  int port = -1;
  PacketPtr pkt;
  // Intrusive timer — used when node == nullptr && timer != nullptr.
  TimerHandler* timer = nullptr;
  uint64_t arg = 0;
  // Generic callback — used when node == nullptr && timer == nullptr.
  std::function<void()> fn;
};

class EventQueue {
 public:
  void PushDelivery(SimTime t, Node* node, int port, PacketPtr pkt);
  void PushTimer(SimTime t, TimerHandler* timer, uint64_t arg);
  void PushCallback(SimTime t, std::function<void()> fn);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  // Packet-delivery events currently queued (the packets "on the wire").
  // The verification layer balances this against the packet pool's live
  // count at end of run.
  size_t pending_deliveries() const { return pending_deliveries_; }
  // Earliest pending timestamp. Precondition: !empty().
  SimTime next_time() const;

  // Removes and returns the earliest event. Precondition: !empty().
  Event Pop();

 private:
  struct Bucket {
    std::vector<Event> events;
    uint32_t head = 0;  // next index to pop
  };
  // Heap entries order by (time, bseq): bseq is the bucket's creation
  // stamp, which makes cross-bucket equal-time order match insertion
  // order without a per-event sequence compare.
  struct Entry {
    SimTime time = 0;
    uint64_t bseq = 0;
    uint32_t bucket = 0;
  };

  Event& Append(SimTime t);
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  static bool Before(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.bseq < b.bseq);
  }

  std::vector<Entry> heap_;      // 4-ary implicit min-heap
  std::vector<Bucket> buckets_;
  std::vector<uint32_t> free_buckets_;
  size_t size_ = 0;
  size_t pending_deliveries_ = 0;
  uint64_t next_bucket_seq_ = 0;
  // One-entry open-bucket cache: the most recently created or appended-to
  // bucket. Consecutive pushes at the same timestamp (clone storms, bursty
  // deliveries) append without touching the heap. Invalidated when that
  // bucket drains.
  bool cache_valid_ = false;
  SimTime cache_time_ = 0;
  uint32_t cache_bucket_ = 0;
};

}  // namespace orbit::sim
