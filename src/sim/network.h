// Topology wiring: owns links, assigns ports, and gives nodes a uniform
// "send on my port N" interface.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/link.h"

namespace orbit::sim {

class Network {
 public:
  explicit Network(Simulator* sim) : sim_(sim) {}

  struct Attachment {
    int port_a = -1;  // port index assigned on node a
    int port_b = -1;  // port index assigned on node b
    Link* link = nullptr;
  };

  // Creates a link between a and b, assigning the next free port index on
  // each side.
  Attachment Connect(Node* a, Node* b, const LinkConfig& config);

  // Sends `pkt` out of `node`'s port `port`. `extra_delay` models local
  // processing before the packet reaches the wire.
  void Send(Node* node, int port, PacketPtr pkt, SimTime extra_delay = 0);

  int num_ports(Node* node) const;
  Link* link_at(Node* node, int port) const;

  // Link enumeration, in creation order (telemetry names per-link counters
  // by this index, which is stable for a deterministic build order).
  size_t num_links() const { return links_.size(); }
  const Link* link(size_t i) const { return links_[i].get(); }
  // Non-const access for attach-time instrumentation (INT hop ids).
  Link* mutable_link(size_t i) { return links_[i].get(); }

  // Installs a fabric-wide packet tap (port mirroring); applies to links
  // created before and after the call. Pass {} to remove.
  void SetTap(TapFn tap);

  // Installs a fabric-wide drop tap: fires for packets discarded at a link
  // (queue overflow, injected loss) that the commit tap never sees. Same
  // lifetime rules as SetTap. Pass {} to remove.
  void SetDropTap(DropTapFn tap);

 private:
  struct PortSlot {
    Link* link = nullptr;
    int end = -1;  // which link endpoint this node is
  };

  Simulator* sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<Node*, std::vector<PortSlot>> ports_;
  TapFn tap_;
  DropTapFn drop_tap_;
};

}  // namespace orbit::sim
