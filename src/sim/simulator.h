// The discrete-event scheduler driving every experiment.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace orbit::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time t (>= now).
  void At(SimTime t, std::function<void()> fn);
  // Schedules `fn` after a non-negative delay.
  void After(SimTime delay, std::function<void()> fn);
  // Fast-path packet delivery event.
  void Deliver(SimTime t, Node* node, int port, PacketPtr pkt);

  // Executes the next event; returns false when the queue is empty.
  bool Step();
  // Runs events until simulated time reaches `t` (events at exactly t run).
  void RunUntil(SimTime t);
  // Runs until the event queue drains.
  void RunToCompletion();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
};

}  // namespace orbit::sim
