// The discrete-event scheduler driving every experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/packet.h"

namespace orbit::sim {

// Thrown out of Step()/RunUntil() when the calling thread's wall-clock
// deadline (set by the experiment harness for per-point timeouts) expires.
// The simulation cannot be resumed after this; the harness records the
// point as failed and moves on.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("simulation wall-clock deadline exceeded") {}
};

// Arms a wall-clock budget for simulations run on the *calling thread*
// (thread-local, so parallel harness workers time out independently).
// seconds <= 0 clears the deadline. The check runs every few thousand
// events, so enforcement is approximate but cheap — and a disarmed
// deadline costs one thread-local load per checked batch.
void SetThreadDeadline(double seconds_from_now);
void ClearThreadDeadline();

// RAII guard used by the harness around one experiment point.
class ScopedThreadDeadline {
 public:
  explicit ScopedThreadDeadline(double seconds_from_now) {
    SetThreadDeadline(seconds_from_now);
  }
  ~ScopedThreadDeadline() { ClearThreadDeadline(); }
  ScopedThreadDeadline(const ScopedThreadDeadline&) = delete;
  ScopedThreadDeadline& operator=(const ScopedThreadDeadline&) = delete;
};

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time t (>= now).
  void At(SimTime t, std::function<void()> fn);
  // Schedules `fn` after a non-negative delay.
  void After(SimTime delay, std::function<void()> fn);
  // Intrusive-timer variants (zero allocation; the hot path for periodic
  // ticks, per-request deadlines, and service completions).
  void AtTimer(SimTime t, TimerHandler* timer, uint64_t arg = 0);
  void AfterTimer(SimTime delay, TimerHandler* timer, uint64_t arg = 0);
  // Fast-path packet delivery event.
  void Deliver(SimTime t, Node* node, int port, PacketPtr pkt);

  // Executes the next event; returns false when the queue is empty.
  bool Step();
  // Runs events until simulated time reaches `t` (events at exactly t run).
  void RunUntil(SimTime t);
  // Runs until the event queue drains.
  void RunToCompletion();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }
  // Packets sitting in undelivered Deliver events — the verification
  // layer's packet-conservation check counts these as legitimately live.
  size_t pending_deliveries() const { return queue_.pending_deliveries(); }

  // This simulator's packet pool. Constructing a Simulator installs the
  // pool as the calling thread's current pool (NewPacket/ClonePacket draw
  // from it); destruction restores the previous one. The pool outlives the
  // event queue, so packets still sitting in undelivered events are
  // reclaimed with everything else at scope exit.
  PacketPool& packet_pool() { return pool_; }

 private:
  void CheckDeadline() const;

  // Declaration order is destruction order in reverse: the queue (holding
  // PacketPtrs) must die before the pool that owns their storage.
  PacketPool pool_;
  PacketPool::ScopedInstall pool_install_{&pool_};
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
};

// A self-rearming periodic timer: wraps the callback in one allocation for
// the whole run instead of one std::function per firing. Construct, then
// Start() arms the first fire at now + period.
class PeriodicTask : public TimerHandler {
 public:
  PeriodicTask(Simulator* sim, SimTime period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  void Start() { sim_->AfterTimer(period_, this); }
  void OnTimer(uint64_t /*arg*/) override {
    fn_();
    sim_->AfterTimer(period_, this);
  }

 private:
  Simulator* sim_;
  SimTime period_;
  std::function<void()> fn_;
};

}  // namespace orbit::sim
