// The discrete-event scheduler driving every experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "common/types.h"
#include "sim/event_queue.h"

namespace orbit::sim {

// Thrown out of Step()/RunUntil() when the calling thread's wall-clock
// deadline (set by the experiment harness for per-point timeouts) expires.
// The simulation cannot be resumed after this; the harness records the
// point as failed and moves on.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("simulation wall-clock deadline exceeded") {}
};

// Arms a wall-clock budget for simulations run on the *calling thread*
// (thread-local, so parallel harness workers time out independently).
// seconds <= 0 clears the deadline. The check runs every few thousand
// events, so enforcement is approximate but cheap — and a disarmed
// deadline costs one thread-local load per checked batch.
void SetThreadDeadline(double seconds_from_now);
void ClearThreadDeadline();

// RAII guard used by the harness around one experiment point.
class ScopedThreadDeadline {
 public:
  explicit ScopedThreadDeadline(double seconds_from_now) {
    SetThreadDeadline(seconds_from_now);
  }
  ~ScopedThreadDeadline() { ClearThreadDeadline(); }
  ScopedThreadDeadline(const ScopedThreadDeadline&) = delete;
  ScopedThreadDeadline& operator=(const ScopedThreadDeadline&) = delete;
};

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time t (>= now).
  void At(SimTime t, std::function<void()> fn);
  // Schedules `fn` after a non-negative delay.
  void After(SimTime delay, std::function<void()> fn);
  // Fast-path packet delivery event.
  void Deliver(SimTime t, Node* node, int port, PacketPtr pkt);

  // Executes the next event; returns false when the queue is empty.
  bool Step();
  // Runs events until simulated time reaches `t` (events at exactly t run).
  void RunUntil(SimTime t);
  // Runs until the event queue drains.
  void RunToCompletion();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  void CheckDeadline() const;

  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
};

}  // namespace orbit::sim
