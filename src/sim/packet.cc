#include "sim/packet.h"

namespace orbit::sim {

namespace {
thread_local PacketPool* g_current_pool = nullptr;
}  // namespace

void Packet::Reset() {
  src = kInvalidAddr;
  dst = kInvalidAddr;
  sport = 0;
  dport = 0;
  tcp = false;
  msg.op = proto::Op::kReadReq;
  msg.seq = 0;
  msg.hkey = Hash128{};
  msg.flag = 0;
  msg.cached = 0;
  msg.latency = 0;
  msg.srv_id = 0;
  msg.epoch = 0;
  msg.frag_index = 0;
  msg.frag_total = 1;
  msg.key.clear();          // keeps capacity for the next key assignment
  msg.value = kv::Value();  // drops any shared payload reference
  sent_at = 0;
  ingress_port = -1;
  from_recirc = false;
  recirc_count = 0;
  recirc_generation = 0;
  trace_id = 0;
  int_id = 0;
  end_reason = PacketEnd::kNone;
}

void Packet::CopyFrom(const Packet& other) {
  src = other.src;
  dst = other.dst;
  sport = other.sport;
  dport = other.dport;
  tcp = other.tcp;
  msg = other.msg;  // key copy-assign reuses capacity; value shares bytes
  sent_at = other.sent_at;
  ingress_port = other.ingress_port;
  from_recirc = other.from_recirc;
  recirc_count = other.recirc_count;
  recirc_generation = other.recirc_generation;
  trace_id = other.trace_id;
  int_id = other.int_id;
}

void PacketDeleter::operator()(Packet* pkt) const noexcept {
  if (pkt == nullptr) return;
  if (pkt->pool_ != nullptr) {
    pkt->pool_->Release(pkt);
  } else {
    delete pkt;
  }
}

PacketPool::~PacketPool() = default;

PacketPtr PacketPool::Acquire() {
  Packet* pkt;
  if (!free_.empty()) {
    pkt = free_.back();
    free_.pop_back();
    pkt->Reset();
    ++stats_.recycled;
  } else {
    if (chunk_used_ == kChunkPackets) {
      chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
      chunk_used_ = 0;
    }
    pkt = &chunks_.back()[chunk_used_++];
    pkt->pool_ = this;
    ++stats_.allocated;
  }
  return PacketPtr(pkt);
}

void PacketPool::Release(Packet* pkt) {
  if (observer_ != nullptr) observer_->OnRelease(*pkt);
  ++stats_.released;
  free_.push_back(pkt);
}

PacketPool* PacketPool::Current() { return g_current_pool; }

PacketPool::ScopedInstall::ScopedInstall(PacketPool* pool)
    : prev_(g_current_pool) {
  g_current_pool = pool;
}

PacketPool::ScopedInstall::~ScopedInstall() { g_current_pool = prev_; }

PacketPtr NewPacket(Addr src, Addr dst, L4Port sport, L4Port dport) {
  PacketPool* pool = PacketPool::Current();
  PacketPtr p = pool != nullptr ? pool->Acquire() : PacketPtr(new Packet);
  p->src = src;
  p->dst = dst;
  p->sport = sport;
  p->dport = dport;
  return p;
}

PacketPtr ClonePacket(const Packet& pkt) {
  PacketPool* pool = PacketPool::Current();
  PacketPtr copy = pool != nullptr ? pool->Acquire() : PacketPtr(new Packet);
  copy->CopyFrom(pkt);
  return copy;
}

PacketPtr MakePacket(Addr src, Addr dst, L4Port sport, L4Port dport,
                     proto::Message msg) {
  PacketPtr p = NewPacket(src, dst, sport, dport);
  p->msg = std::move(msg);
  return p;
}

}  // namespace orbit::sim
