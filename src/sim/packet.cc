#include "sim/packet.h"

namespace orbit::sim {

PacketPtr ClonePacket(const Packet& pkt) { return std::make_unique<Packet>(pkt); }

PacketPtr MakePacket(Addr src, Addr dst, L4Port sport, L4Port dport,
                     proto::Message msg) {
  auto p = std::make_unique<Packet>();
  p->src = src;
  p->dst = dst;
  p->sport = sport;
  p->dport = dport;
  p->msg = std::move(msg);
  return p;
}

}  // namespace orbit::sim
