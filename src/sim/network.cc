#include "sim/network.h"

#include "common/check.h"
#include "common/hash.h"
#include "sim/node.h"

namespace orbit::sim {

Network::Attachment Network::Connect(Node* a, Node* b,
                                     const LinkConfig& config) {
  auto& ports_a = ports_[a];
  auto& ports_b = ports_[b];
  Attachment at;
  at.port_a = static_cast<int>(ports_a.size());
  at.port_b = static_cast<int>(ports_b.size());
  // Decorrelate loss across links: mix the link's creation index (a
  // deterministic identity — topologies are built in a fixed order) into
  // the configured seed so lossy links never drop the same-numbered
  // packets in lockstep. Lossless links never draw the RNG, so this is
  // byte-neutral when no loss model is enabled.
  LinkConfig cfg = config;
  cfg.loss_seed = Mix64(config.loss_seed ^ Mix64(links_.size() + 1));
  links_.push_back(
      std::make_unique<Link>(sim_, a, at.port_a, b, at.port_b, cfg));
  at.link = links_.back().get();
  at.link->set_tap(&tap_);
  at.link->set_drop_tap(&drop_tap_);
  ports_a.push_back(PortSlot{at.link, 0});
  ports_b.push_back(PortSlot{at.link, 1});
  return at;
}

void Network::Send(Node* node, int port, PacketPtr pkt, SimTime extra_delay) {
  auto it = ports_.find(node);
  ORBIT_CHECK_MSG(it != ports_.end(), "node has no ports: " << node->name());
  ORBIT_CHECK_MSG(port >= 0 && port < static_cast<int>(it->second.size()),
                  node->name() << " has no port " << port);
  const PortSlot& slot = it->second[static_cast<size_t>(port)];
  slot.link->Send(slot.end, std::move(pkt), extra_delay);
}

int Network::num_ports(Node* node) const {
  auto it = ports_.find(node);
  return it == ports_.end() ? 0 : static_cast<int>(it->second.size());
}

void Network::SetTap(TapFn tap) { tap_ = std::move(tap); }

void Network::SetDropTap(DropTapFn tap) { drop_tap_ = std::move(tap); }

Link* Network::link_at(Node* node, int port) const {
  auto it = ports_.find(node);
  if (it == ports_.end()) return nullptr;
  if (port < 0 || port >= static_cast<int>(it->second.size())) return nullptr;
  return it->second[static_cast<size_t>(port)].link;
}

}  // namespace orbit::sim
