#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace orbit::sim {

Event& EventQueue::Append(SimTime t) {
  ++size_;
  if (cache_valid_ && cache_time_ == t) {
    Bucket& b = buckets_[cache_bucket_];
    return b.events.emplace_back();
  }
  uint32_t idx;
  if (!free_buckets_.empty()) {
    idx = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    idx = static_cast<uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  heap_.push_back(Entry{t, next_bucket_seq_++, idx});
  SiftUp(heap_.size() - 1);
  cache_valid_ = true;
  cache_time_ = t;
  cache_bucket_ = idx;
  return buckets_[idx].events.emplace_back();
}

void EventQueue::PushDelivery(SimTime t, Node* node, int port, PacketPtr pkt) {
  ++pending_deliveries_;
  Event& e = Append(t);
  e.time = t;
  e.node = node;
  e.port = port;
  e.pkt = std::move(pkt);
}

void EventQueue::PushTimer(SimTime t, TimerHandler* timer, uint64_t arg) {
  Event& e = Append(t);
  e.time = t;
  e.timer = timer;
  e.arg = arg;
}

void EventQueue::PushCallback(SimTime t, std::function<void()> fn) {
  Event& e = Append(t);
  e.time = t;
  e.fn = std::move(fn);
}

SimTime EventQueue::next_time() const {
  ORBIT_CHECK_MSG(size_ != 0, "next_time() on an empty event queue");
  return heap_.front().time;
}

Event EventQueue::Pop() {
  ORBIT_CHECK_MSG(size_ != 0, "Pop() on an empty event queue");
  const Entry top = heap_.front();
  Bucket& b = buckets_[top.bucket];
  Event e = std::move(b.events[b.head++]);
  --size_;
  if (e.node != nullptr) --pending_deliveries_;
  if (b.head == b.events.size()) {
    // Bucket drained: recycle it (the events vector keeps its capacity)
    // and retire its heap entry.
    b.events.clear();
    b.head = 0;
    free_buckets_.push_back(top.bucket);
    if (cache_valid_ && cache_bucket_ == top.bucket) cache_valid_ = false;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
  }
  return e;
}

void EventQueue::SiftUp(size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const size_t first = 4 * i + 1;
    if (first >= n) break;
    const size_t last = std::min(first + 4, n);
    size_t smallest = first;
    for (size_t c = first + 1; c < last; ++c)
      if (Before(heap_[c], heap_[smallest])) smallest = c;
    if (!Before(heap_[smallest], e)) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = e;
}

}  // namespace orbit::sim
