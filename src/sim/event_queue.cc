#include "sim/event_queue.h"

#include <utility>

namespace orbit::sim {

void EventQueue::PushDelivery(SimTime t, Node* node, int port, PacketPtr pkt) {
  Event e;
  e.time = t;
  e.node = node;
  e.port = port;
  e.pkt = std::move(pkt);
  Push(std::move(e));
}

void EventQueue::PushCallback(SimTime t, std::function<void()> fn) {
  Event e;
  e.time = t;
  e.fn = std::move(fn);
  Push(std::move(e));
}

void EventQueue::Push(Event e) {
  e.seq = next_seq_++;
  heap_.push_back(std::move(e));
  SiftUp(heap_.size() - 1);
}

Event EventQueue::Pop() {
  Event top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    size_t left = 2 * i + 1;
    if (left >= n) break;
    size_t smallest = left;
    size_t right = left + 1;
    if (right < n && Before(heap_[right], heap_[left])) smallest = right;
    if (!Before(heap_[smallest], heap_[i])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace orbit::sim
