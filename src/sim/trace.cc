#include "sim/trace.h"

#include <sstream>

#include "sim/node.h"

namespace orbit::sim {

const char* DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueOverflow: return "queue_overflow";
    case DropReason::kInjectedLoss: return "injected_loss";
    case DropReason::kLinkDown: return "link_down";
  }
  return "?";
}

std::string FormatPacket(const Packet& pkt, SimTime at) {
  std::ostringstream os;
  os << at << "ns " << pkt.src << ">" << pkt.dst << " "
     << proto::OpName(pkt.msg.op) << " seq=" << pkt.msg.seq;
  if (!pkt.msg.key.empty()) os << " key=" << pkt.msg.key;
  if (pkt.msg.value.size() > 0) os << " val=" << pkt.msg.value.size() << "B";
  if (pkt.msg.cached) os << " [cached]";
  if (pkt.from_recirc) os << " [recirc x" << pkt.recirc_count << "]";
  os << " (" << pkt.wire_bytes() << "B wire)";
  return os.str();
}

PacketTrace::Entry PacketTrace::MakeEntry(const Packet& pkt, Node* from,
                                          Node* to, SimTime at) const {
  Entry e;
  e.at = at;
  e.from = from != nullptr ? from->name() : "?";
  e.to = to != nullptr ? to->name() : "?";
  e.op = pkt.msg.op;
  e.seq = pkt.msg.seq;
  e.src = pkt.src;
  e.dst = pkt.dst;
  e.wire_bytes = pkt.wire_bytes();
  e.key = pkt.msg.key;
  return e;
}

TapFn PacketTrace::AsTap() {
  return [this](const Packet& pkt, Node* from, Node* to, SimTime at) {
    ++total_seen_;
    entries_.push_back(MakeEntry(pkt, from, to, at));
    if (entries_.size() > max_entries_) entries_.pop_front();
  };
}

DropTapFn PacketTrace::AsDropTap() {
  return [this](const Packet& pkt, Node* from, Node* to, DropReason reason,
                SimTime at) {
    ++total_dropped_;
    Entry e = MakeEntry(pkt, from, to, at);
    e.dropped = true;
    e.drop_reason = reason;
    entries_.push_back(std::move(e));
    if (entries_.size() > max_entries_) entries_.pop_front();
  };
}

std::string PacketTrace::Dump() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << e.at << "ns " << e.from << "->" << e.to << " " << proto::OpName(e.op)
       << " seq=" << e.seq << " " << e.src << ">" << e.dst << " key=" << e.key
       << " (" << e.wire_bytes << "B)";
    if (e.dropped) os << " DROP[" << DropReasonName(e.drop_reason) << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace orbit::sim
