// Simulated packets.
//
// A packet carries the parsed OrbitCache message plus the simulated
// L3/L4 addressing the switch forwards on. Packets are unique-owned and
// moved through the simulator; cloning (the PRE path) copies the struct
// while the lazy value payload stays shared — exactly the descriptor-copy
// semantics the paper attributes to the Tofino packet replication engine.
#pragma once

#include <memory>

#include "common/types.h"
#include "proto/message.h"

namespace orbit::sim {

struct Packet {
  Addr src = kInvalidAddr;
  Addr dst = kInvalidAddr;
  L4Port sport = 0;
  L4Port dport = 0;
  bool tcp = false;  // top-k reports ride TCP in the paper; modeled as a tag

  proto::Message msg;

  // Stamped by the original sender; clients compute end-to-end latency
  // from it when the reply returns.
  SimTime sent_at = 0;

  // Switch-visible per-traversal metadata (reset on each ingress).
  int ingress_port = -1;
  bool from_recirc = false;
  uint32_t recirc_count = 0;
  // Stamped by the recirculation port; packets from before a reboot
  // barrier are discarded on delivery (a real ASIC reset loses them).
  uint32_t recirc_generation = 0;

  // Telemetry: non-zero marks a sampled request (telemetry::MakeTraceId of
  // the originating client and seq). Purely observational — forwarding
  // decisions never read it. Clones inherit it; replies copy it from the
  // request so one id follows the whole lifecycle.
  uint64_t trace_id = 0;

  uint32_t wire_bytes() const {
    return proto::kEncapBytes + proto::Message::kHeaderBytes +
           msg.payload_bytes();
  }
};

using PacketPtr = std::unique_ptr<Packet>;

// PRE-style clone: value copy of all fields; the value payload's backing
// bytes (if materialized) are shared, not duplicated.
PacketPtr ClonePacket(const Packet& pkt);

// Convenience builder for host code.
PacketPtr MakePacket(Addr src, Addr dst, L4Port sport, L4Port dport,
                     proto::Message msg);

}  // namespace orbit::sim
