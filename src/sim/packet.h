// Simulated packets.
//
// A packet carries the parsed OrbitCache message plus the simulated
// L3/L4 addressing the switch forwards on. Packets are unique-owned and
// moved through the simulator; cloning (the PRE path) copies the struct
// while the lazy value payload stays shared — exactly the descriptor-copy
// semantics the paper attributes to the Tofino packet replication engine.
//
// Allocation discipline: packets are drawn from a per-Simulator
// PacketPool (a freelist over stable slab storage, mirroring the fixed
// descriptor pool a real ASIC's replication engine works from). PacketPtr
// keeps unique-ownership move semantics, but its deleter returns the
// packet to its owning pool instead of freeing it, so the steady-state
// hot path performs zero heap allocations per packet. Recycled packets
// keep their internal buffers (the key string's capacity survives), which
// removes the per-packet string allocation as well. Code running without
// an installed pool (unit tests building bare packets) transparently
// falls back to the heap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "proto/message.h"

namespace orbit::sim {

class PacketPool;

struct Packet {
  Addr src = kInvalidAddr;
  Addr dst = kInvalidAddr;
  L4Port sport = 0;
  L4Port dport = 0;
  bool tcp = false;  // top-k reports ride TCP in the paper; modeled as a tag

  proto::Message msg;

  // Stamped by the original sender; clients compute end-to-end latency
  // from it when the reply returns.
  SimTime sent_at = 0;

  // Switch-visible per-traversal metadata (reset on each ingress).
  int ingress_port = -1;
  bool from_recirc = false;
  uint32_t recirc_count = 0;
  // Stamped by the recirculation port; packets from before a reboot
  // barrier are discarded on delivery (a real ASIC reset loses them).
  uint32_t recirc_generation = 0;

  // Telemetry: non-zero marks a sampled request (telemetry::MakeTraceId of
  // the originating client and seq). Purely observational — forwarding
  // decisions never read it. Clones inherit it; replies copy it from the
  // request so one id follows the whole lifecycle.
  uint64_t trace_id = 0;

  // INT postcard handle (telemetry::IntSink flow id): non-zero marks a
  // flow whose hops stamp per-hop records. Same observational-only and
  // clone/reply inheritance rules as trace_id.
  uint32_t int_id = 0;

  uint32_t wire_bytes() const {
    return proto::kEncapBytes + proto::Message::kHeaderBytes +
           msg.payload_bytes();
  }

  // Restores every field to its default while keeping internal buffer
  // capacity (the recycled key string), so a reused packet is
  // indistinguishable from a freshly constructed one.
  void Reset();
  // Field-wise copy that preserves the destination's pool binding; the
  // value payload's backing bytes (if materialized) are shared.
  void CopyFrom(const Packet& other);

  PacketPool* pool() const { return pool_; }

 private:
  friend class PacketPool;
  friend struct PacketDeleter;
  PacketPool* pool_ = nullptr;  // null = heap-allocated fallback
};

// Returns heap packets with `delete`, pooled packets to their pool.
struct PacketDeleter {
  void operator()(Packet* pkt) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Freelist-backed packet descriptor pool. Slab storage (deque-of-chunks)
// keeps addresses stable for the packet's whole lifetime; destroying the
// pool reclaims every packet it ever produced, including ones still
// referenced by undelivered simulator events.
class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // A reset packet owned by this pool (recycled when possible).
  PacketPtr Acquire();
  void Release(Packet* pkt);

  // The calling thread's active pool (set by Simulator); null when no
  // simulator is live on this thread.
  static PacketPool* Current();

  struct Stats {
    uint64_t allocated = 0;  // fresh slab slots ever handed out
    uint64_t recycled = 0;   // acquisitions served from the freelist
    uint64_t released = 0;   // packets returned to the freelist
  };
  const Stats& stats() const { return stats_; }
  size_t free_count() const { return free_.size(); }

  // RAII thread-local installation (nestable: restores the previous pool).
  class ScopedInstall {
   public:
    explicit ScopedInstall(PacketPool* pool);
    ~ScopedInstall();
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    PacketPool* prev_;
  };

 private:
  static constexpr size_t kChunkPackets = 256;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  size_t chunk_used_ = kChunkPackets;  // slots consumed in the last chunk
  std::vector<Packet*> free_;
  Stats stats_;
};

// A blank packet with only the addressing filled in, drawn from the
// thread's current pool (heap fallback without one). Hot-path senders use
// this and assign message fields in place, which lets a recycled packet's
// key buffer absorb the copy without allocating.
PacketPtr NewPacket(Addr src, Addr dst, L4Port sport, L4Port dport);

// PRE-style clone: value copy of all fields; the value payload's backing
// bytes (if materialized) are shared, not duplicated.
PacketPtr ClonePacket(const Packet& pkt);

// Convenience builder for host code.
PacketPtr MakePacket(Addr src, Addr dst, L4Port sport, L4Port dport,
                     proto::Message msg);

}  // namespace orbit::sim
