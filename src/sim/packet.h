// Simulated packets.
//
// A packet carries the parsed OrbitCache message plus the simulated
// L3/L4 addressing the switch forwards on. Packets are unique-owned and
// moved through the simulator; cloning (the PRE path) copies the struct
// while the lazy value payload stays shared — exactly the descriptor-copy
// semantics the paper attributes to the Tofino packet replication engine.
//
// Allocation discipline: packets are drawn from a per-Simulator
// PacketPool (a freelist over stable slab storage, mirroring the fixed
// descriptor pool a real ASIC's replication engine works from). PacketPtr
// keeps unique-ownership move semantics, but its deleter returns the
// packet to its owning pool instead of freeing it, so the steady-state
// hot path performs zero heap allocations per packet. Recycled packets
// keep their internal buffers (the key string's capacity survives), which
// removes the per-packet string allocation as well. Code running without
// an installed pool (unit tests building bare packets) transparently
// falls back to the heap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "proto/message.h"

namespace orbit::sim {

class PacketPool;

// Terminal state of a packet's life, written unconditionally at every site
// that consumes, absorbs, or drops a packet. Purely observational — nothing
// in the simulation reads it back — but it lets the verification layer
// (src/verify/) prove that no packet ever vanished silently: a packet
// returning to the pool while still kNone was dropped without a reason.
enum class PacketEnd : uint8_t {
  kNone = 0,          // still in flight
  kConsumed,          // delivered to and consumed by an endpoint
  kAbsorbed,          // request absorbed into the switch request table
  kCloneSource,       // PRE source descriptor retired after cloning
  kDroppedByProgram,  // switch program chose Drop
  kDroppedUnrouted,   // no route for the destination address
  kDroppedLink,       // link down / injected loss / queue overflow
  kDroppedRecirc,     // recirculation FIFO overflow
  kDroppedRxQueue,    // server admission (socket buffer) drop
  kFlushedAtReset,    // lost to a switch reboot barrier
  kIgnored,           // endpoint received an op it does not handle
};

struct Packet {
  Addr src = kInvalidAddr;
  Addr dst = kInvalidAddr;
  L4Port sport = 0;
  L4Port dport = 0;
  bool tcp = false;  // top-k reports ride TCP in the paper; modeled as a tag

  proto::Message msg;

  // Stamped by the original sender; clients compute end-to-end latency
  // from it when the reply returns.
  SimTime sent_at = 0;

  // Switch-visible per-traversal metadata (reset on each ingress).
  int ingress_port = -1;
  bool from_recirc = false;
  uint32_t recirc_count = 0;
  // Stamped by the recirculation port; packets from before a reboot
  // barrier are discarded on delivery (a real ASIC reset loses them).
  uint32_t recirc_generation = 0;

  // Telemetry: non-zero marks a sampled request (telemetry::MakeTraceId of
  // the originating client and seq). Purely observational — forwarding
  // decisions never read it. Clones inherit it; replies copy it from the
  // request so one id follows the whole lifecycle.
  uint64_t trace_id = 0;

  // INT postcard handle (telemetry::IntSink flow id): non-zero marks a
  // flow whose hops stamp per-hop records. Same observational-only and
  // clone/reply inheritance rules as trace_id.
  uint32_t int_id = 0;

  // How this packet's life ended (see PacketEnd). Observational only;
  // cleared on Reset, never copied by CopyFrom (a clone starts fresh).
  PacketEnd end_reason = PacketEnd::kNone;

  uint32_t wire_bytes() const {
    return proto::kEncapBytes + proto::Message::kHeaderBytes +
           msg.payload_bytes();
  }

  // Restores every field to its default while keeping internal buffer
  // capacity (the recycled key string), so a reused packet is
  // indistinguishable from a freshly constructed one.
  void Reset();
  // Field-wise copy that preserves the destination's pool binding; the
  // value payload's backing bytes (if materialized) are shared.
  void CopyFrom(const Packet& other);

  PacketPool* pool() const { return pool_; }

 private:
  friend class PacketPool;
  friend struct PacketDeleter;
  PacketPool* pool_ = nullptr;  // null = heap-allocated fallback
};

// Returns heap packets with `delete`, pooled packets to their pool.
struct PacketDeleter {
  void operator()(Packet* pkt) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Records a packet's terminal state. First writer wins: a request absorbed
// by the switch program is marked at the absorb site, and the device-level
// Drop handling that follows must not overwrite it.
inline void MarkEnd(Packet& pkt, PacketEnd reason) {
  if (pkt.end_reason == PacketEnd::kNone) pkt.end_reason = reason;
}

// Observer of packet-pool releases (implemented by verify::Verifier).
// Installed only under --verify; the pool's release path costs one
// null-pointer test otherwise.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  virtual void OnRelease(const Packet& pkt) = 0;
};

// Freelist-backed packet descriptor pool. Slab storage (deque-of-chunks)
// keeps addresses stable for the packet's whole lifetime; destroying the
// pool reclaims every packet it ever produced, including ones still
// referenced by undelivered simulator events.
class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // A reset packet owned by this pool (recycled when possible).
  PacketPtr Acquire();
  void Release(Packet* pkt);

  // The calling thread's active pool (set by Simulator); null when no
  // simulator is live on this thread.
  static PacketPool* Current();

  struct Stats {
    uint64_t allocated = 0;  // fresh slab slots ever handed out
    uint64_t recycled = 0;   // acquisitions served from the freelist
    uint64_t released = 0;   // packets returned to the freelist
  };
  const Stats& stats() const { return stats_; }
  size_t free_count() const { return free_.size(); }

  // Verification hook: `observer` (may be null) sees every Release while
  // set. Not owned; uninstall (set null) before the observer dies.
  void set_observer(PoolObserver* observer) { observer_ = observer; }

  // RAII thread-local installation (nestable: restores the previous pool).
  class ScopedInstall {
   public:
    explicit ScopedInstall(PacketPool* pool);
    ~ScopedInstall();
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    PacketPool* prev_;
  };

 private:
  static constexpr size_t kChunkPackets = 256;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  size_t chunk_used_ = kChunkPackets;  // slots consumed in the last chunk
  std::vector<Packet*> free_;
  Stats stats_;
  PoolObserver* observer_ = nullptr;
};

// A blank packet with only the addressing filled in, drawn from the
// thread's current pool (heap fallback without one). Hot-path senders use
// this and assign message fields in place, which lets a recycled packet's
// key buffer absorb the copy without allocating.
PacketPtr NewPacket(Addr src, Addr dst, L4Port sport, L4Port dport);

// PRE-style clone: value copy of all fields; the value payload's backing
// bytes (if materialized) are shared, not duplicated.
PacketPtr ClonePacket(const Packet& pkt);

// Convenience builder for host code.
PacketPtr MakePacket(Addr src, Addr dst, L4Port sport, L4Port dport,
                     proto::Message msg);

}  // namespace orbit::sim
