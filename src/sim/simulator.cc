#include "sim/simulator.h"

#include <chrono>

#include "common/check.h"
#include "sim/node.h"

namespace orbit::sim {

namespace {

using Clock = std::chrono::steady_clock;

// 0 = disarmed. Thread-local so concurrent harness workers each enforce
// their own per-point budget without synchronization.
thread_local Clock::time_point g_deadline{};

// Checking the clock on every event would be measurable; every 8192 events
// keeps the overhead in the noise while still bounding overrun to
// milliseconds of simulation work.
constexpr uint64_t kDeadlineCheckMask = 8191;

}  // namespace

void SetThreadDeadline(double seconds_from_now) {
  if (seconds_from_now <= 0) {
    ClearThreadDeadline();
    return;
  }
  g_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(seconds_from_now));
}

void ClearThreadDeadline() { g_deadline = Clock::time_point{}; }

void Simulator::CheckDeadline() const {
  if (g_deadline != Clock::time_point{} && Clock::now() > g_deadline)
    throw DeadlineExceeded();
}

void Simulator::At(SimTime t, std::function<void()> fn) {
  ORBIT_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  queue_.PushCallback(t, std::move(fn));
}

void Simulator::After(SimTime delay, std::function<void()> fn) {
  ORBIT_CHECK(delay >= 0);
  queue_.PushCallback(now_ + delay, std::move(fn));
}

void Simulator::AtTimer(SimTime t, TimerHandler* timer, uint64_t arg) {
  ORBIT_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  ORBIT_CHECK(timer != nullptr);
  queue_.PushTimer(t, timer, arg);
}

void Simulator::AfterTimer(SimTime delay, TimerHandler* timer, uint64_t arg) {
  ORBIT_CHECK(delay >= 0);
  ORBIT_CHECK(timer != nullptr);
  queue_.PushTimer(now_ + delay, timer, arg);
}

void Simulator::Deliver(SimTime t, Node* node, int port, PacketPtr pkt) {
  ORBIT_CHECK(t >= now_);
  queue_.PushDelivery(t, node, port, std::move(pkt));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  if ((events_processed_ & kDeadlineCheckMask) == 0) CheckDeadline();
  Event e = queue_.Pop();
  now_ = e.time;
  ++events_processed_;
  if (e.node != nullptr) {
    e.node->OnPacket(std::move(e.pkt), e.port);
  } else if (e.timer != nullptr) {
    e.timer->OnTimer(e.arg);
  } else {
    e.fn();
  }
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) Step();
  if (now_ < t) now_ = t;
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace orbit::sim
