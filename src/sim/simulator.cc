#include "sim/simulator.h"

#include "common/check.h"
#include "sim/node.h"

namespace orbit::sim {

void Simulator::At(SimTime t, std::function<void()> fn) {
  ORBIT_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  queue_.PushCallback(t, std::move(fn));
}

void Simulator::After(SimTime delay, std::function<void()> fn) {
  ORBIT_CHECK(delay >= 0);
  queue_.PushCallback(now_ + delay, std::move(fn));
}

void Simulator::Deliver(SimTime t, Node* node, int port, PacketPtr pkt) {
  ORBIT_CHECK(t >= now_);
  queue_.PushDelivery(t, node, port, std::move(pkt));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  Event e = queue_.Pop();
  now_ = e.time;
  ++events_processed_;
  if (e.node != nullptr) {
    e.node->OnPacket(std::move(e.pkt), e.port);
  } else {
    e.fn();
  }
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) Step();
  if (now_ < t) now_ = t;
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace orbit::sim
