#include "sim/link.h"

#include <algorithm>

#include "common/check.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::sim {

Link::Link(Simulator* sim, Node* a, int port_a, Node* b, int port_b,
           const LinkConfig& config)
    : sim_(sim), config_(config), loss_rng_(config.loss_seed) {
  ORBIT_CHECK(sim != nullptr && a != nullptr && b != nullptr);
  ORBIT_CHECK(config.rate_gbps > 0);
  chans_[0].to = b;
  chans_[0].to_port = port_b;
  chans_[1].to = a;
  chans_[1].to_port = port_a;
}

SimTime Link::TxTime(uint32_t bytes) const {
  // bytes * 8 bits / (gbps) = ns; round up so zero-length never happens.
  return std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              config_.rate_gbps));
}

bool Link::LossCoin() {
  // Each loss model draws only when enabled, so a link with no loss model
  // configured never touches the RNG and stays byte-identical regardless
  // of its seed.
  bool lost = false;
  if (config_.burst_loss.enabled()) {
    const GilbertElliottConfig& ge = config_.burst_loss;
    // Transition first, then draw loss in the (possibly new) state.
    const double p_flip = in_bad_state_ ? ge.p_exit_bad : ge.p_enter_bad;
    if (loss_rng_.Bernoulli(p_flip)) in_bad_state_ = !in_bad_state_;
    const double p_loss = in_bad_state_ ? ge.loss_bad : ge.loss_good;
    if (p_loss > 0 && loss_rng_.Bernoulli(p_loss)) lost = true;
  }
  if (!lost && config_.loss_rate > 0 &&
      loss_rng_.Bernoulli(config_.loss_rate)) {
    lost = true;
  }
  return lost;
}

void Link::StampDrop(const Channel& ch, const Packet& pkt,
                     DropReason reason) const {
  if (int_ == nullptr || pkt.int_id == 0) return;
  telemetry::IntHop hop;
  hop.at = sim_->now();
  hop.hop = ch.int_hop;
  hop.kind = telemetry::IntHopKind::kDrop;
  hop.recirc_count = pkt.recirc_count;
  hop.drop_reason = static_cast<uint8_t>(1 + static_cast<int>(reason));
  int_->Stamp(pkt.int_id, hop);
}

void Link::Send(int from, PacketPtr pkt, SimTime extra_delay) {
  ORBIT_CHECK(from == 0 || from == 1);
  Channel& ch = chans_[from];
  if (down_) {
    ++ch.stats.down_drops;
    MarkEnd(*pkt, PacketEnd::kDroppedLink);
    StampDrop(ch, *pkt, DropReason::kLinkDown);
    if (drop_tap_ != nullptr && *drop_tap_)
      (*drop_tap_)(*pkt, chans_[1 - from].to, ch.to, DropReason::kLinkDown,
                   sim_->now());
    return;
  }
  // The per-direction degrade coin composes with the link-wide loss
  // models; each coin is drawn only while its model is active so that
  // enabling one never reshuffles the draws of the other.
  bool lost = LossCoin();
  if (!lost && ch.degrade_loss > 0 && loss_rng_.Bernoulli(ch.degrade_loss)) {
    lost = true;
  }
  if (lost) {
    ++ch.stats.lost;
    MarkEnd(*pkt, PacketEnd::kDroppedLink);
    StampDrop(ch, *pkt, DropReason::kInjectedLoss);
    if (drop_tap_ != nullptr && *drop_tap_)
      (*drop_tap_)(*pkt, chans_[1 - from].to, ch.to, DropReason::kInjectedLoss,
                   sim_->now());
    return;
  }
  const uint32_t bytes = pkt->wire_bytes();
  const SimTime ready = sim_->now() + extra_delay;

  // Backlog is implied by how far busy_until runs ahead of the send time —
  // exactly the unserialized bytes sitting in the egress queue.
  const SimTime backlog_ns = std::max<SimTime>(0, ch.busy_until - ready);
  const uint64_t backlog_bytes = static_cast<uint64_t>(
      static_cast<double>(backlog_ns) * config_.rate_gbps / 8.0);
  if (backlog_bytes + bytes > config_.queue_limit_bytes) {
    ++ch.stats.drops;
    MarkEnd(*pkt, PacketEnd::kDroppedLink);
    StampDrop(ch, *pkt, DropReason::kQueueOverflow);
    if (drop_tap_ != nullptr && *drop_tap_)
      (*drop_tap_)(*pkt, chans_[1 - from].to, ch.to,
                   DropReason::kQueueOverflow, sim_->now());
    return;  // drop-tail: packet ownership ends here
  }

  const SimTime start = std::max(ready, ch.busy_until);
  const SimTime done = start + TxTime(bytes);
  ch.busy_until = done;
  ch.stats.packets++;
  ch.stats.bytes += bytes;

  if (int_ != nullptr) {
    // Hop latency = queue wait + serialization + propagation; the
    // sender's extra_delay is its own processing, stamped by that hop.
    const SimTime hop_latency = (done - ready) + config_.propagation;
    if (int_latency_hist_ != nullptr) {
      ch.int_queue_hist->RecordFast(static_cast<int64_t>(backlog_bytes));
      int_latency_hist_->RecordFast(hop_latency);
    }
    if (pkt->int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = ch.int_hop;
      hop.kind = telemetry::IntHopKind::kLink;
      hop.latency_ns = hop_latency;
      hop.queue_depth = static_cast<int64_t>(backlog_bytes);
      hop.recirc_count = pkt->recirc_count;
      int_->Stamp(pkt->int_id, hop);
    }
  }

  if (tap_ != nullptr && *tap_)
    (*tap_)(*pkt, chans_[1 - from].to, ch.to, sim_->now());

  // The packet lands at the far end after propagation (plus any injected
  // gray-link latency for this direction).
  pkt->ingress_port = ch.to_port;
  pkt->from_recirc = false;
  sim_->Deliver(done + config_.propagation + ch.degrade_latency, ch.to,
                ch.to_port, std::move(pkt));
}

void Link::SetDegrade(int from, double loss_rate, SimTime extra_latency) {
  ORBIT_CHECK(from == 0 || from == 1);
  ORBIT_CHECK(loss_rate >= 0 && loss_rate <= 1 && extra_latency >= 0);
  chans_[from].degrade_loss = loss_rate;
  chans_[from].degrade_latency = extra_latency;
}

}  // namespace orbit::sim
