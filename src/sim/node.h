// Interface for simulated network elements (hosts, switches).
#pragma once

#include <string>

#include "sim/packet.h"

namespace orbit::sim {

class Node {
 public:
  virtual ~Node() = default;

  // Delivery of a packet on one of this node's ports. Ownership transfers.
  virtual void OnPacket(PacketPtr pkt, int port) = 0;

  virtual std::string name() const = 0;
};

}  // namespace orbit::sim
