// Full-duplex point-to-point links.
//
// Each direction is a fluid-FIFO channel: a packet occupies the wire for
// wire_bytes * 8 / rate, queues behind earlier packets (drop-tail against a
// byte bound), then arrives after the propagation delay. This captures the
// three effects the experiments depend on — serialization time growing with
// item size, queueing at saturated ports, and bounded buffers — without
// simulating per-byte transmission.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/types.h"
#include "sim/packet.h"
#include "sim/trace.h"
#include "telemetry/int/int.h"

namespace orbit::sim {

class Node;
class Simulator;

// Two-state Gilbert–Elliott burst-loss model. The channel sits in a
// "good" or "bad" state; each packet first moves the state with the
// transition probabilities, then is dropped with the state's loss rate.
// Disabled (zero RNG draws) unless p_enter_bad > 0, so enabling the
// fields is the only way results can change.
struct GilbertElliottConfig {
  double p_enter_bad = 0.0;  // per-packet P(good -> bad); 0 disables
  double p_exit_bad = 0.1;   // per-packet P(bad -> good)
  double loss_good = 0.0;    // per-packet loss while good
  double loss_bad = 1.0;     // per-packet loss while bad
  bool enabled() const { return p_enter_bad > 0; }
};

struct LinkConfig {
  double rate_gbps = 100.0;
  SimTime propagation = 500;           // ns, one way
  uint32_t queue_limit_bytes = 512 * 1024;  // per direction
  // Failure injection: independent per-packet loss probability. The paper
  // handles loss with application-level timeouts (§3.9); tests use this to
  // exercise the controller's fetch retransmission and client timeouts.
  double loss_rate = 0.0;
  // Base seed for the loss RNG. Network::Connect mixes the link's creation
  // index into this so lossy links never drop the same-numbered packets in
  // lockstep; the RNG is only ever drawn when a loss model is enabled, so
  // lossless results are unaffected by the seed.
  uint64_t loss_seed = 1;
  // Bursty (correlated) loss; composes with loss_rate (either can drop).
  GilbertElliottConfig burst_loss;
};

struct ChannelStats {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t drops = 0;       // queue overflow
  uint64_t lost = 0;        // injected loss (random / burst models)
  uint64_t down_drops = 0;  // discarded while the link was down
};

class Link {
 public:
  // Endpoint i = {node, port on that node}.
  Link(Simulator* sim, Node* a, int port_a, Node* b, int port_b,
       const LinkConfig& config);

  // Sends from endpoint `from` (0 = a, 1 = b) toward the opposite end.
  // `extra_delay` lets a sender account for local processing (e.g. the
  // switch pipeline traversal) before the packet reaches the port.
  void Send(int from, PacketPtr pkt, SimTime extra_delay = 0);

  const ChannelStats& stats(int from) const { return chans_[from].stats; }
  const LinkConfig& config() const { return config_; }

  // Endpoint node i (0 = a, 1 = b) as passed to the constructor; direction
  // `from` runs endpoint(from) -> endpoint(1 - from). Used by telemetry to
  // name per-link counters.
  Node* endpoint(int end) const { return chans_[1 - end].to; }

  // Fault injection: while down, every packet offered to either direction
  // is discarded (DropReason::kLinkDown) without touching the loss RNG, so
  // bringing a link down and back up never perturbs later loss draws.
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Gray-link injection for one direction (`from` = 0 for a->b): every
  // packet sent that way is additionally dropped with `loss_rate` and, if
  // it survives, delivered `extra_latency` ns late. The loss coin is only
  // drawn while the degrade is active, so SetDegrade(from, 0, 0) restores
  // the link without perturbing the shared loss RNG for later draws.
  void SetDegrade(int from, double loss_rate, SimTime extra_latency);
  bool degraded(int from) const {
    return chans_[from].degrade_loss > 0 || chans_[from].degrade_latency > 0;
  }

  // Port-mirroring tap (owned by the Network); observes packets that were
  // actually committed to the wire.
  void set_tap(const TapFn* tap) { tap_ = tap; }
  // Drop tap (owned by the Network); observes packets discarded at this
  // link — queue overflow and injected loss — which the commit tap misses.
  void set_drop_tap(const DropTapFn* tap) { drop_tap_ = tap; }

  // INT attachment for direction `from` (0 = a->b, 1 = b->a): `hop` is
  // the interned per-direction hop name, `queue_hist` the always-on
  // queue-depth histogram, `latency_hist` the shared link hop-class
  // latency histogram. Observational only — Send's drop/queue decisions
  // are unchanged. See telemetry::AttachLinkInt for the naming policy.
  void AttachInt(telemetry::IntSink* sink, uint32_t latency_hist, int from,
                 uint32_t hop, uint32_t queue_hist) {
    int_ = sink;
    // Resolve histogram pointers once here: Send records per packet, so
    // it branches on one pointer instead of re-checking the sink's flag
    // and re-indexing its table every time.
    int_latency_hist_ = sink->MutableHist(latency_hist);
    chans_[from].int_hop = hop;
    chans_[from].int_queue_hist = sink->MutableHist(queue_hist);
  }

 private:
  struct Channel {
    Node* to = nullptr;
    int to_port = -1;
    SimTime busy_until = 0;
    ChannelStats stats;
    uint32_t int_hop = 0;  // interned hop name for this direction
    // Always-on queue-depth histogram; nullptr when histograms are off.
    stats::Histogram* int_queue_hist = nullptr;
    // Gray-link degrade state for this direction (see SetDegrade).
    double degrade_loss = 0.0;
    SimTime degrade_latency = 0;
  };

  SimTime TxTime(uint32_t bytes) const;
  bool LossCoin();
  void StampDrop(const Channel& ch, const Packet& pkt,
                 DropReason reason) const;

  Simulator* sim_;
  LinkConfig config_;
  std::array<Channel, 2> chans_;
  Rng loss_rng_;
  bool down_ = false;
  bool in_bad_state_ = false;
  const TapFn* tap_ = nullptr;
  const DropTapFn* drop_tap_ = nullptr;
  telemetry::IntSink* int_ = nullptr;
  stats::Histogram* int_latency_hist_ = nullptr;
};

}  // namespace orbit::sim
