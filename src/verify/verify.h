// Shadow-oracle verification layer (opt-in, results-neutral).
//
// When a testbed runs with `verify.enabled`, a `Verifier` mirrors the
// protocol at its commit points and checks three independent properties
// at near-zero cost to the simulated system (every hook is a null-checked
// pointer call; nothing the verifier does feeds back into simulation
// state, RNG draws, or serialized metrics):
//
//  1. Reply correctness (shadow KV oracle). Every client request is
//     registered at send time together with the key's completed-operation
//     version floor; every accepted reply's (size, version) is validated
//     against the set of linearizable outcomes. Version authorities are
//     hooked directly — the storage server's Put calls and the switch's
//     write-back version mints — so cache-served replies, retransmit
//     duplicates, and post-fault rebuilds are all covered. Stale reads
//     (version below the floor a completed operation established before
//     the request was sent) are violations under the epoch guard and
//     counted-but-allowed when the guard is off or write-back is on (the
//     coherence windows the paper permits; see docs/VERIFY.md).
//
//  2. Packet conservation. Every pooled packet must reach a terminal
//     state (consumed, absorbed, dropped-with-reason, flushed at reset)
//     before it is returned to the pool; at end of run the pool's live
//     count must equal the packets legitimately still in flight (pending
//     deliveries + server service queues). Catches silent drops and pool
//     leaks per component.
//
//  3. Switch invariants. Request-table ring state (qlen/front/rear) is
//     checked on every mutation, the orbit gauge must match the number of
//     valid cache entries at end of run (when the configuration makes the
//     count exact), and the declared RMT stage/SRAM/ALU budgets are
//     re-validated against the ASIC limits.
//
// The verifier never throws; it records violations. The testbed turns a
// non-empty violation list into a CheckFailure after metrics collection
// when `verify.fail_fast` is set, so the failure is visible without ever
// perturbing the measured results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/packet.h"

namespace orbit::rmt {
class Resources;
}

namespace orbit::verify {

struct VerifyOptions {
  // Mirrors OrbitConfig::epoch_guard: with the guard on, a stale cached
  // read is a protocol violation; with it off (the paper's unhardened
  // protocol) staleness is possible by design and only counted.
  bool epoch_guard = true;
  // Write-back mode interleaves switch-minted and server-minted versions
  // (and a switch reset legally discards unflushed versions), so version
  // lower bounds are advisory there: staleness is counted, not flagged.
  bool write_back = false;
};

struct Violation {
  std::string check;   // short machine-ish name, e.g. "stale_read"
  std::string detail;  // human-readable specifics
};

class Verifier : public sim::PoolObserver {
 public:
  explicit Verifier(const VerifyOptions& options);

  // ---- shadow KV oracle -------------------------------------------------
  // A client put a new request on the wire (first transmission only;
  // retransmissions keep the registration of the original send).
  void OnClientSend(Addr client, uint32_t seq, const Key& key, bool is_write,
                    uint32_t write_size);
  // One new (non-duplicate) fragment of a multi-packet reply arrived.
  void OnClientFragment(Addr client, uint32_t seq, uint32_t bytes);
  // The client accepted a reply and retired the request. `size` is the
  // last fragment's value size; for multi-fragment replies the oracle
  // uses the bytes accumulated via OnClientFragment.
  void OnClientAccept(Addr client, uint32_t seq, const Key& key,
                      bool is_write, bool multi_frag, uint32_t size,
                      uint64_t version);
  // The client abandoned the request (hash-collision correction, retry
  // budget exhausted, or Stop() retirement).
  void OnClientDrop(Addr client, uint32_t seq);
  // A version authority committed (key, size, version): the storage
  // server's Put / first-touch synthesis, or the switch's write-back mint.
  void OnCommit(const Key& key, uint32_t size, uint64_t version);
  // The switch data plane was wiped. Under write-back this legally loses
  // dirty versions (servers re-mint lower ones), so version lower bounds
  // are relaxed from here on.
  void OnSwitchReset();

  // ---- switch invariants ------------------------------------------------
  // Request-table ring state after a mutation at slot `idx`.
  void OnQueueState(const char* where, uint32_t idx, uint32_t qlen,
                    uint32_t front, uint32_t rear, uint32_t queue_size);

  // ---- packet conservation ---------------------------------------------
  // PoolObserver: called by the packet pool on every release. While armed,
  // a packet returning to the pool without a terminal end reason is a
  // silent drop.
  void OnRelease(const sim::Packet& pkt) override;
  void ArmPacketAccounting() { packet_accounting_ = true; }
  // Call before teardown: destruction of the event queue and nodes
  // legitimately releases still-in-flight packets unmarked.
  void DisarmPacketAccounting() { packet_accounting_ = false; }

  // ---- end of run -------------------------------------------------------
  struct EndOfRun {
    uint64_t pool_acquired = 0;  // allocated + recycled
    uint64_t pool_released = 0;
    // Packets legitimately still in flight when the run stopped: pending
    // simulator deliveries plus packets riding server completion timers.
    uint64_t expected_live = 0;
    // Orbit census: recirculating packets vs valid cache entries. Set
    // valid_entries to -1 (with a reason) when the configuration makes
    // the count inexact (no-cloning, multi-packet, write-back, faults,
    // recirculation drops, evictions).
    int64_t recirc_in_flight = 0;
    int64_t valid_entries = -1;
    std::string orbit_skip_reason;
    const rmt::Resources* resources = nullptr;  // null = no budget check
  };
  // Disarms packet accounting and runs the end-of-run checks.
  void Finalize(const EndOfRun& end);

  // ---- results ----------------------------------------------------------
  void AddViolation(const std::string& check, const std::string& detail);
  uint64_t violation_count() const { return violation_count_; }
  bool ok() const { return violation_count_ == 0; }
  // First violations, in event order (storage capped; the count is not).
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t allowed_stale() const { return allowed_stale_; }
  uint64_t replies_checked() const { return replies_checked_; }
  // Deterministic multi-line summary (checks run, counts, violations).
  std::string Report() const;

 private:
  struct KeyState {
    uint64_t cur = 0;      // highest committed version
    uint64_t floor_v = 0;  // highest version observed by a completed op
    // Committed version -> value size, pruned below the floor.
    std::map<uint64_t, uint32_t> sizes;
  };
  struct PendingOp {
    Key key;
    bool is_write = false;
    uint32_t write_size = 0;
    uint64_t floor_at_send = 0;
    uint64_t frag_bytes = 0;
  };

  static uint64_t OpKey(Addr client, uint32_t seq) {
    return (static_cast<uint64_t>(client) << 32) | seq;
  }
  KeyState& StateOf(const Key& key) { return keys_[key]; }

  VerifyOptions options_;
  bool strict_versions_;        // epoch_guard && !write_back
  bool reset_relaxed_ = false;  // a write-back switch reset happened
  bool packet_accounting_ = false;

  std::unordered_map<uint64_t, PendingOp> pending_;
  std::unordered_map<Key, KeyState> keys_;

  std::vector<Violation> violations_;
  uint64_t violation_count_ = 0;
  uint64_t allowed_stale_ = 0;
  uint64_t replies_checked_ = 0;
  uint64_t commits_seen_ = 0;
  uint64_t queue_states_checked_ = 0;
  uint64_t releases_checked_ = 0;
  std::string orbit_note_;
  bool finalized_ = false;

  static constexpr size_t kMaxStoredViolations = 32;
};

}  // namespace orbit::verify
