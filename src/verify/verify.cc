#include "verify/verify.h"

#include <sstream>

#include "rmt/resources.h"

namespace orbit::verify {

Verifier::Verifier(const VerifyOptions& options)
    : options_(options),
      strict_versions_(options.epoch_guard && !options.write_back) {}

void Verifier::OnClientSend(Addr client, uint32_t seq, const Key& key,
                            bool is_write, uint32_t write_size) {
  PendingOp op;
  op.key = key;
  op.is_write = is_write;
  op.write_size = write_size;
  op.floor_at_send = StateOf(key).floor_v;
  pending_[OpKey(client, seq)] = std::move(op);
}

void Verifier::OnClientFragment(Addr client, uint32_t seq, uint32_t bytes) {
  auto it = pending_.find(OpKey(client, seq));
  if (it == pending_.end()) return;
  it->second.frag_bytes += bytes;
}

void Verifier::OnClientAccept(Addr client, uint32_t seq, const Key& key,
                              bool is_write, bool multi_frag, uint32_t size,
                              uint64_t version) {
  const uint64_t op_key = OpKey(client, seq);
  auto it = pending_.find(op_key);
  if (it == pending_.end()) {
    // A reply the client accepted for a request the oracle never saw sent:
    // the client-side hooks are out of sync (a bug in the wiring, not the
    // protocol), so flag it rather than silently skip.
    AddViolation("unknown_accept",
                 "client " + std::to_string(client) + " seq " +
                     std::to_string(seq) + " accepted with no pending op");
    return;
  }
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  ++replies_checked_;

  if (op.key != key) {
    AddViolation("key_mismatch", "seq " + std::to_string(seq) +
                                     " sent key '" + op.key +
                                     "' but accepted reply for '" + key + "'");
    return;
  }
  const uint64_t reply_bytes = multi_frag ? op.frag_bytes : size;
  KeyState& st = StateOf(key);

  // Version checks. version == 0 marks a reply that carries no recoverable
  // version (e.g. a bare write ack); only size/shape checks apply then.
  if (version != 0) {
    if (version > st.cur) {
      // A version no authority ever committed — impossible regardless of
      // coherence mode, since every version mint is hooked.
      AddViolation("future_version",
                   "key '" + key + "' reply version " +
                       std::to_string(version) + " > highest committed " +
                       std::to_string(st.cur));
    } else if (is_write) {
      // A write's ack must carry the version that write (or a later one)
      // committed; a version at or below the send-time floor means the
      // ack reflects a state from before this write linearized.
      if (version <= op.floor_at_send) {
        if (strict_versions_ && !reset_relaxed_) {
          AddViolation("stale_write_ack",
                       "key '" + key + "' write ack version " +
                           std::to_string(version) + " <= send-time floor " +
                           std::to_string(op.floor_at_send));
        } else {
          ++allowed_stale_;
        }
      }
    } else if (version < op.floor_at_send) {
      // Read staleness: a completed operation had already observed a newer
      // version before this read was sent, so no linearization point can
      // justify the older value.
      if (strict_versions_ && !reset_relaxed_) {
        AddViolation("stale_read",
                     "key '" + key + "' read version " +
                         std::to_string(version) + " < send-time floor " +
                         std::to_string(op.floor_at_send));
      } else {
        ++allowed_stale_;
      }
    }

    // Size must match what was committed at that version (when known; a
    // version pruned below the floor or relaxed away is unknowable).
    if (!is_write && reply_bytes != 0) {
      auto sz = st.sizes.find(version);
      if (sz != st.sizes.end() && sz->second != reply_bytes) {
        AddViolation("size_mismatch",
                     "key '" + key + "' version " + std::to_string(version) +
                         " committed size " + std::to_string(sz->second) +
                         " but reply carried " + std::to_string(reply_bytes));
      }
    }
  }

  if (is_write && reply_bytes != 0 && reply_bytes != op.write_size &&
      op.write_size != 0) {
    AddViolation("write_ack_size",
                 "key '" + key + "' write of " +
                     std::to_string(op.write_size) + " bytes acked with " +
                     std::to_string(reply_bytes));
  }

  // This op completed having observed `version`: raise the key's floor so
  // later-sent requests must see at least this state.
  if (version > st.floor_v) {
    st.floor_v = version;
    st.sizes.erase(st.sizes.begin(), st.sizes.lower_bound(st.floor_v));
  }
}

void Verifier::OnClientDrop(Addr client, uint32_t seq) {
  pending_.erase(OpKey(client, seq));
}

void Verifier::OnCommit(const Key& key, uint32_t size, uint64_t version) {
  ++commits_seen_;
  KeyState& st = StateOf(key);
  if (version > st.cur) st.cur = version;
  if (version >= st.floor_v) st.sizes[version] = size;
}

void Verifier::OnSwitchReset() {
  if (options_.write_back) reset_relaxed_ = true;
}

void Verifier::OnQueueState(const char* where, uint32_t idx, uint32_t qlen,
                            uint32_t front, uint32_t rear,
                            uint32_t queue_size) {
  ++queue_states_checked_;
  const bool occupancy_ok = qlen <= queue_size;
  const bool cursors_ok = front < queue_size && rear < queue_size;
  const bool ring_ok = rear == (front + qlen) % queue_size;
  if (occupancy_ok && cursors_ok && ring_ok) return;
  std::ostringstream os;
  os << where << " slot " << idx << ": qlen=" << qlen << " front=" << front
     << " rear=" << rear << " size=" << queue_size;
  if (!occupancy_ok) os << " [occupancy > capacity]";
  if (!cursors_ok) os << " [cursor out of range]";
  if (!ring_ok) os << " [rear != (front+qlen) % size]";
  AddViolation("request_table_ring", os.str());
}

void Verifier::OnRelease(const sim::Packet& pkt) {
  if (!packet_accounting_) return;
  ++releases_checked_;
  if (pkt.end_reason == sim::PacketEnd::kNone) {
    std::ostringstream os;
    os << "packet released with no terminal reason: op="
       << static_cast<int>(pkt.msg.op) << " src=" << pkt.src
       << " dst=" << pkt.dst << " seq=" << pkt.msg.seq << " key='"
       << pkt.msg.key << "'";
    AddViolation("silent_drop", os.str());
  }
}

void Verifier::Finalize(const EndOfRun& end) {
  DisarmPacketAccounting();
  finalized_ = true;

  // Leak equation: everything the pool ever handed out either came back or
  // is accounted for as legitimately in flight (queued deliveries, packets
  // riding server completion timers).
  const uint64_t live = end.pool_acquired - end.pool_released;
  if (live != end.expected_live) {
    std::ostringstream os;
    os << "pool live count " << live << " (acquired " << end.pool_acquired
       << " - released " << end.pool_released << ") != expected in-flight "
       << end.expected_live;
    AddViolation("packet_leak", os.str());
  }

  // Orbit census: in steady state every cached key keeps exactly one
  // packet in orbit. Only exact for configurations the testbed vouches
  // for (see EndOfRun::valid_entries).
  if (end.valid_entries >= 0) {
    orbit_note_ = "orbit census checked";
    if (end.recirc_in_flight != end.valid_entries) {
      std::ostringstream os;
      os << "recirculating packets " << end.recirc_in_flight
         << " != valid cache entries " << end.valid_entries;
      AddViolation("orbit_census", os.str());
    }
  } else {
    orbit_note_ = "orbit census skipped: " + (end.orbit_skip_reason.empty()
                                                  ? std::string("n/a")
                                                  : end.orbit_skip_reason);
  }

  // RMT budget re-validation: Declare() already throws at configuration
  // time, so this is a cheap aggregate audit of the recorded ledger
  // against the ASIC limits.
  if (end.resources != nullptr) {
    const rmt::Resources& res = *end.resources;
    const rmt::AsicConfig& asic = res.config();
    if (res.stages_used() > asic.num_stages) {
      AddViolation("rmt_stages",
                   "stages used " + std::to_string(res.stages_used()) +
                       " > budget " + std::to_string(asic.num_stages));
    }
    std::map<int, uint64_t> sram;
    std::map<int, int> alus;
    std::map<int, int> tables;
    for (const auto& e : res.entries()) {
      sram[e.stage] += e.sram_bytes;
      alus[e.stage] += e.alus;
      tables[e.stage] += e.tables;
      if (e.match_key_bytes > asic.max_match_key_bytes) {
        AddViolation("rmt_match_key",
                     e.name + ": match key " +
                         std::to_string(e.match_key_bytes) + "B > limit " +
                         std::to_string(asic.max_match_key_bytes) + "B");
      }
    }
    for (const auto& [stage, bytes] : sram) {
      if (bytes > asic.sram_bytes_per_stage) {
        AddViolation("rmt_sram", "stage " + std::to_string(stage) + ": " +
                                     std::to_string(bytes) + "B > " +
                                     std::to_string(asic.sram_bytes_per_stage) +
                                     "B");
      }
    }
    for (const auto& [stage, n] : alus) {
      if (n > asic.alus_per_stage) {
        AddViolation("rmt_alus", "stage " + std::to_string(stage) + ": " +
                                     std::to_string(n) + " ALUs > " +
                                     std::to_string(asic.alus_per_stage));
      }
    }
    for (const auto& [stage, n] : tables) {
      if (n > asic.tables_per_stage) {
        AddViolation("rmt_tables", "stage " + std::to_string(stage) + ": " +
                                       std::to_string(n) + " tables > " +
                                       std::to_string(asic.tables_per_stage));
      }
    }
  }
}

void Verifier::AddViolation(const std::string& check,
                            const std::string& detail) {
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(Violation{check, detail});
  }
}

std::string Verifier::Report() const {
  std::ostringstream os;
  os << "verify: " << (ok() ? "OK" : "FAILED") << " ("
     << violation_count_ << " violation"
     << (violation_count_ == 1 ? "" : "s") << ")\n";
  os << "  replies checked: " << replies_checked_
     << ", commits seen: " << commits_seen_
     << ", allowed stale: " << allowed_stale_ << "\n";
  os << "  queue states checked: " << queue_states_checked_
     << ", releases audited: " << releases_checked_ << "\n";
  os << "  version mode: " << (strict_versions_ ? "strict" : "relaxed")
     << (reset_relaxed_ ? " (write-back reset observed)" : "") << "\n";
  if (finalized_ && !orbit_note_.empty()) os << "  " << orbit_note_ << "\n";
  if (!pending_.empty()) {
    os << "  in-flight ops at stop: " << pending_.size() << "\n";
  }
  size_t i = 0;
  for (const Violation& v : violations_) {
    os << "  [" << i++ << "] " << v.check << ": " << v.detail << "\n";
  }
  if (violation_count_ > violations_.size()) {
    os << "  ... " << (violation_count_ - violations_.size())
       << " more violations not stored\n";
  }
  return os.str();
}

}  // namespace orbit::verify
