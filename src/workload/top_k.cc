#include "workload/top_k.h"

#include <algorithm>

#include "common/check.h"

namespace orbit::wl {

TopKTracker::TopKTracker(size_t k, uint32_t sketch_rows, uint32_t sketch_width,
                         uint64_t seed)
    : k_(k), sketch_(sketch_rows, sketch_width, seed) {
  ORBIT_CHECK(k > 0);
}

void TopKTracker::Update(std::string_view key, uint64_t count) {
  sketch_.Update(key, count);
  const uint64_t est = sketch_.Estimate(key);
  auto it = candidates_.find(std::string(key));
  if (it != candidates_.end()) {
    it->second = est;
    return;
  }
  // Keep a small slack above k so near-ties are not thrashed, then trim.
  candidates_.emplace(std::string(key), est);
  if (candidates_.size() > 2 * k_) EvictLightest();
}

void TopKTracker::EvictLightest() {
  std::vector<std::pair<uint64_t, std::string>> all;
  all.reserve(candidates_.size());
  for (const auto& [key, count] : candidates_) all.emplace_back(count, key);
  std::nth_element(all.begin(), all.begin() + static_cast<long>(k_), all.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  candidates_.clear();
  for (size_t i = 0; i < k_ && i < all.size(); ++i)
    candidates_.emplace(all[i].second, all[i].first);
}

std::vector<TopKTracker::Entry> TopKTracker::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(candidates_.size());
  for (const auto& [key, count] : candidates_) out.push_back({key, count});
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  if (out.size() > k_) out.resize(k_);
  return out;
}

void TopKTracker::Reset() {
  sketch_.Reset();
  candidates_.clear();
}

}  // namespace orbit::wl
