// Zipfian popularity sampling.
//
// The YCSB-style generator: O(1) sampling for any skew theta in [0, 1)
// (theta = 0 degenerates to uniform), with the normalization constant
// computed exactly by summation at construction. Rank 0 is the hottest key.
// The paper's default workload is Zipf-0.99 over 10M keys (§5.1).
#pragma once

#include <cstdint>

#include "common/random.h"

namespace orbit::wl {

class ZipfGenerator {
 public:
  // theta in [0, 1); theta = 0 is uniform. n >= 1.
  ZipfGenerator(uint64_t n, double theta);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Returns a rank in [0, n), 0 = most popular.
  uint64_t Sample(Rng& rng) const;

  // Exact popularity of a rank: (1/(rank+1)^theta) / zeta(n, theta).
  double ProbabilityOfRank(uint64_t rank) const;
  // Total popularity mass of the `count` hottest ranks.
  double MassOfTopRanks(uint64_t count) const;

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;  // 1 / (1 - theta)
  double eta_;
  double half_pow_theta_;
};

}  // namespace orbit::wl
