#include "workload/twitter.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "common/random.h"

namespace orbit::wl {

const std::vector<TwitterProfile>& Fig14Profiles() {
  // Cacheable ratios anchor to the paper's statements (A: NetCache can
  // cache 95% of items and the write ratio is relatively high; E: only 1%
  // of items are cacheable). The intermediate points are synthetic
  // interpolations — the traces themselves are proprietary.
  static const std::vector<TwitterProfile> kProfiles = {
      {"A", "cluster045", 0.95, 0.25, 0.90},
      {"B", "cluster016", 0.70, 0.05, 0.85},
      {"C", "cluster044", 0.45, 0.03, 0.70},
      {"D", "cluster017", 0.20, 0.02, 0.50},
      {"E", "cluster020", 0.01, 0.01, 0.30},
  };
  return kProfiles;
}

bool NetCacheCacheable(const TwitterProfile& profile, std::string_view key,
                       uint64_t seed) {
  const uint64_t h = Hash64(key, seed ^ 0x545754435748ull);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < profile.cacheable_ratio;
}

namespace {

// Box-Muller standard normal from the project Rng.
double Gaussian(Rng& rng) {
  double u1 = rng.UniformDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = rng.UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double SampleLognormal(Rng& rng, double median, double sigma) {
  return median * std::exp(sigma * Gaussian(rng));
}

}  // namespace

std::vector<SizeProfile> MotivationWorkloads(uint64_t seed) {
  // 54 size profiles engineered to reproduce §2.1's aggregate statistics:
  //   * 2/54 (3.7%) of workloads have >80% of keys ≤ 16B,
  //   * ~21/54 (38.9%) have >80% of values ≤ 128B,
  //   * 42/54 (77.8%) have essentially no NetCache-cacheable item,
  //   * 46/54 (85%) have <10% cacheable items,
  //   * only 2 exceed 50% cacheable.
  std::vector<SizeProfile> out;
  out.reserve(54);
  Rng rng(seed);

  // 2 workloads: small keys, small values — the >50% cacheable pair.
  for (int i = 0; i < 2; ++i)
    out.push_back({"twemcache-small-" + std::to_string(i), 8, 0.30, 60, 0.50});

  // 6 workloads: borderline keys, mid values — 10-50% cacheable.
  for (int i = 0; i < 6; ++i)
    out.push_back({"twemcache-mid-" + std::to_string(i), 12, 0.35,
                   150 + 10.0 * i, 0.50});

  // 4 workloads: 16B-median keys, large values — (0,10%) cacheable.
  for (int i = 0; i < 4; ++i)
    out.push_back({"twemcache-sparse-" + std::to_string(i), 16, 0.20,
                   400 + 50.0 * i, 0.60});

  // 42 workloads: keys of several tens of bytes — zero cacheable under
  // NetCache because no key fits 16B. 19 of them still have small values
  // (bringing the >80%-small-values count to 21).
  for (int i = 0; i < 42; ++i) {
    const double key_median = 30 + 2.0 * i;  // 30..112 bytes
    const double value_median =
        i < 19 ? 50 + 1.5 * i : 200 + 35.0 * (i - 19);  // 19 small, 23 large
    out.push_back({"twemcache-large-" + std::to_string(i), key_median, 0.15,
                   value_median, 0.55});
  }
  ORBIT_CHECK(out.size() == 54);
  // Consume the rng so the signature stays honest if profiles later gain
  // sampled parameters.
  (void)rng;
  return out;
}

double CacheableFraction(const SizeProfile& profile,
                         const CacheabilityLimits& limits, int samples,
                         uint64_t seed) {
  ORBIT_CHECK(samples > 0);
  Rng rng(seed ^ Hash64(profile.name));
  int cacheable = 0;
  for (int i = 0; i < samples; ++i) {
    const double key_bytes =
        std::max(1.0, SampleLognormal(rng, profile.key_median, profile.key_sigma));
    const double value_bytes = std::max(
        1.0, SampleLognormal(rng, profile.value_median, profile.value_sigma));
    bool ok = key_bytes <= limits.max_key && value_bytes <= limits.max_value;
    if (ok && limits.max_total > 0)
      ok = key_bytes + value_bytes <= limits.max_total;
    if (ok) ++cacheable;
  }
  return static_cast<double>(cacheable) / samples;
}

}  // namespace orbit::wl
