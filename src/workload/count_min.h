// Count-min sketch.
//
// The paper's storage servers track key popularity with a count-min sketch
// of five hash functions (§3.8); NetCache's data plane uses the same
// structure for hot-uncached-key detection. Estimates never undercount;
// the property tests verify the classic (epsilon, delta) error bound.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace orbit::wl {

class CountMin {
 public:
  CountMin(uint32_t rows, uint32_t width, uint64_t seed = 0);

  void Update(std::string_view key, uint64_t count = 1);
  uint64_t Estimate(std::string_view key) const;
  void Reset();

  uint32_t rows() const { return rows_; }
  uint32_t width() const { return width_; }
  uint64_t total_updates() const { return total_; }

 private:
  uint32_t rows_;
  uint32_t width_;
  uint64_t seed_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // rows_ x width_, row-major
};

}  // namespace orbit::wl
