// Dynamic key popularity (the Fig. 18 "hot-in" pattern).
//
// Every period the popularity of the h hottest and h coldest items is
// swapped — the most radical change possible, since the entire cache
// becomes stale at once. Clients sample a rank, pass it through Remap(),
// and the result toggles between identity and the swapped mapping.
#pragma once

#include <cstdint>

namespace orbit::wl {

class DynamicPopularity {
 public:
  DynamicPopularity(uint64_t num_keys, uint64_t hot_count);

  // Applies the hot-in swap once (called by the testbed's timer).
  void Advance() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  // Popularity rank → effective rank under the current epoch.
  uint64_t Remap(uint64_t rank) const;

 private:
  uint64_t num_keys_;
  uint64_t hot_count_;
  uint64_t epoch_ = 0;
};

}  // namespace orbit::wl
