// YCSB-style workload mixes.
//
// The paper's skew constant (zipf-0.99) is YCSB's default [Cooper et al.,
// SoCC'10], and key-value systems are conventionally compared on the YCSB
// core workloads. This module provides the classic mixes as ready-made
// testbed parameterizations so downstream users can evaluate the schemes
// on familiar ground (bench/ycsb_suite.cc drives them):
//
//   A  update heavy   50% reads / 50% writes, zipfian
//   B  read mostly    95% reads /  5% writes, zipfian
//   C  read only     100% reads,              zipfian
//   D  read latest    95% reads /  5% writes, skew toward recent keys
//   F  read-modify-w  50% reads / 50% RMW,    zipfian
//
// D's "latest" distribution and F's read-modify-write are approximated
// within the open-loop request model: D keeps zipfian popularity but over
// a rolling window of "recently inserted" ranks, and F issues the write
// leg of each RMW as an immediate dependent write (same key).
#pragma once

#include <string>
#include <vector>

namespace orbit::wl {

struct YcsbProfile {
  std::string id;          // "A".."F"
  std::string description;
  double write_ratio;      // fraction of operations that mutate
  double zipf_theta;       // popularity skew
  bool read_modify_write;  // F: every write is paired with a read
};

const std::vector<YcsbProfile>& YcsbCoreWorkloads();

}  // namespace orbit::wl
