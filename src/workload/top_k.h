// Top-k hot key tracking for the server-side popularity reports (§3.8):
// a count-min sketch estimates per-key counts memory-efficiently and a
// bounded candidate set keeps the current k heaviest keys.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "workload/count_min.h"

namespace orbit::wl {

class TopKTracker {
 public:
  struct Entry {
    std::string key;
    uint64_t count = 0;
  };

  TopKTracker(size_t k, uint32_t sketch_rows = 5, uint32_t sketch_width = 2048,
              uint64_t seed = 0);

  void Update(std::string_view key, uint64_t count = 1);

  // Current top-k candidates, heaviest first.
  std::vector<Entry> Snapshot() const;

  // Clears sketch and candidates; the paper resets counters after each
  // report so only recent popularity is reflected.
  void Reset();

  size_t k() const { return k_; }
  const CountMin& sketch() const { return sketch_; }

 private:
  void EvictLightest();

  size_t k_;
  CountMin sketch_;
  std::unordered_map<std::string, uint64_t> candidates_;
};

}  // namespace orbit::wl
