#include "workload/ycsb.h"

namespace orbit::wl {

const std::vector<YcsbProfile>& YcsbCoreWorkloads() {
  static const std::vector<YcsbProfile> kProfiles = {
      {"A", "update heavy (50/50)", 0.50, 0.99, false},
      {"B", "read mostly (95/5)", 0.05, 0.99, false},
      {"C", "read only", 0.00, 0.99, false},
      {"D", "read latest", 0.05, 0.99, false},
      {"F", "read-modify-write", 0.50, 0.99, true},
  };
  return kProfiles;
}

}  // namespace orbit::wl
