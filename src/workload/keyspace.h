// Deterministic key-space construction.
//
// Popularity ranks are scattered over key identities through a bijective
// permutation, so the hottest keys land on pseudo-random storage servers —
// materializing neither a 10M-entry rank table nor the keys themselves.
// Key strings have a fixed width (16B by default, the paper's simplified
// key size) and are reproducible across processes.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/types.h"

namespace orbit::wl {

class KeySpace {
 public:
  KeySpace(uint64_t num_keys, uint32_t key_size, uint64_t seed);

  uint64_t num_keys() const { return num_keys_; }
  uint32_t key_size() const { return key_size_; }

  // Key identity for a popularity rank (bijective).
  uint64_t IdForRank(uint64_t rank) const { return perm_(rank); }

  // The key string for an identity; always exactly key_size() bytes.
  Key KeyForId(uint64_t id) const;
  Key KeyAtRank(uint64_t rank) const { return KeyForId(IdForRank(rank)); }

  // The 16-byte lookup hash clients place in the HKEY header field.
  Hash128 HashOf(const Key& key) const { return HashKey128(key); }

 private:
  uint64_t num_keys_;
  uint32_t key_size_;
  Permutation perm_;
};

}  // namespace orbit::wl
