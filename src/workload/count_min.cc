#include "workload/count_min.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace orbit::wl {

CountMin::CountMin(uint32_t rows, uint32_t width, uint64_t seed)
    : rows_(rows), width_(width), seed_(seed) {
  ORBIT_CHECK(rows > 0 && width > 0);
  cells_.assign(static_cast<size_t>(rows) * width, 0);
}

void CountMin::Update(std::string_view key, uint64_t count) {
  total_ += count;
  for (uint32_t r = 0; r < rows_; ++r) {
    const uint64_t h = Hash64(key, seed_ + r * 0x100000001b3ull + 1);
    cells_[static_cast<size_t>(r) * width_ + h % width_] += count;
  }
}

uint64_t CountMin::Estimate(std::string_view key) const {
  uint64_t best = UINT64_MAX;
  for (uint32_t r = 0; r < rows_; ++r) {
    const uint64_t h = Hash64(key, seed_ + r * 0x100000001b3ull + 1);
    best = std::min(best, cells_[static_cast<size_t>(r) * width_ + h % width_]);
  }
  return best;
}

void CountMin::Reset() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_ = 0;
}

}  // namespace orbit::wl
