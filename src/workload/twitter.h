// Production-workload stand-ins.
//
// The paper evaluates against Twitter cache traces [Yang et al., OSDI'20]
// in two ways:
//   1. Fig. 14 runs five workloads (A–E = Cluster045/016/044/017/020)
//      parameterized by their NetCache-cacheable item ratio and write
//      ratio, with cacheability assigned to keys uniformly at random.
//   2. §2.1 analyzes 54 workloads' key/value size distributions to show
//      how few items fit NetCache's 16B-key/128B-value limits.
//
// The raw traces are proprietary; these profiles are synthetic stand-ins
// that reproduce the summary statistics the paper actually uses (see
// DESIGN.md's substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace orbit::wl {

// One Fig.-14 workload. `cacheable_ratio` is the fraction of keys NetCache
// could cache (assigned per key, uniformly, independent of value size, as
// in §5.2); `p_small` is the fraction of 64B values (vs 1024B).
struct TwitterProfile {
  std::string id;       // "A".."E"
  std::string cluster;  // paper's cluster name
  double cacheable_ratio;
  double write_ratio;
  double p_small;
};

// The five Fig.-14 workloads. Workload A ≈ 95% cacheable with a relatively
// high write ratio; workload E ≈ 1% cacheable (paper §5.2).
const std::vector<TwitterProfile>& Fig14Profiles();

// Deterministic per-key NetCache-cacheability coin for a profile.
bool NetCacheCacheable(const TwitterProfile& profile, std::string_view key,
                       uint64_t seed = 0);

// ---- §2.1 motivation analysis ------------------------------------------

// Size distribution of one of the 54 analyzed workloads: keys and values
// are lognormally distributed around per-workload medians.
struct SizeProfile {
  std::string name;
  double key_median;   // bytes
  double key_sigma;    // lognormal shape
  double value_median; // bytes
  double value_sigma;
};

// 54 synthetic workload size profiles spanning the ranges reported in the
// paper (§2.1: most keys are tens of bytes; many values are below 1024B;
// Facebook-like averages of 27.1B keys / 235B median values).
std::vector<SizeProfile> MotivationWorkloads(uint64_t seed = 42);

// Fraction of a profile's items cacheable under the given limits, estimated
// by sampling `samples` items.
struct CacheabilityLimits {
  uint32_t max_key = 16;
  uint32_t max_value = 128;
  uint32_t max_total = 0;  // when non-zero, key+value must also fit this
};
double CacheableFraction(const SizeProfile& profile,
                         const CacheabilityLimits& limits, int samples,
                         uint64_t seed);

}  // namespace orbit::wl
