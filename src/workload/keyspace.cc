#include "workload/keyspace.h"

#include <cstdio>

#include "common/check.h"

namespace orbit::wl {

KeySpace::KeySpace(uint64_t num_keys, uint32_t key_size, uint64_t seed)
    : num_keys_(num_keys), key_size_(key_size), perm_(num_keys, seed) {
  ORBIT_CHECK_MSG(key_size >= 8, "key size must fit the numeric identity");
}

Key KeySpace::KeyForId(uint64_t id) const {
  ORBIT_CHECK(id < num_keys_);
  // "k" + zero-padded decimal identity, padded to the configured width with
  // a deterministic filler — stable, human-readable, unique.
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%llu",
                              static_cast<unsigned long long>(id));
  ORBIT_CHECK_MSG(static_cast<uint32_t>(n) + 1 <= key_size_,
                  "key size " << key_size_ << " too small for id " << id);
  Key key;
  key.reserve(key_size_);
  key.push_back('k');
  const uint32_t pad = key_size_ - 1 - static_cast<uint32_t>(n);
  key.append(pad, '0');
  key.append(digits, static_cast<size_t>(n));
  return key;
}

}  // namespace orbit::wl
