// Per-key value-size assignment.
//
// Sizes are a deterministic function of the key (hash-seeded), so every
// component — clients predicting reply sizes, servers synthesizing values,
// the testbed deciding NetCache cacheability — agrees without coordination.
// The paper's default is a bimodal mix of 82% 64-byte and 18% 1024-byte
// values, modeled on Twitter Cluster018 (§5.1).
#pragma once

#include <cstdint>
#include <string_view>

namespace orbit::wl {

class ValueDist {
 public:
  // All items share one size (Fig. 17's worst-case sweep).
  static ValueDist Fixed(uint32_t size);
  // Two sizes with probability p_small of the small one.
  static ValueDist Bimodal(uint32_t small_size, uint32_t large_size,
                           double p_small, uint64_t seed = 0);
  // The paper's default workload mix.
  static ValueDist PaperDefault(uint64_t seed = 0) {
    return Bimodal(64, 1024, 0.82, seed);
  }

  uint32_t SizeFor(std::string_view key) const;

  uint32_t min_size() const;
  uint32_t max_size() const;
  double mean_size() const;

 private:
  enum class Kind { kFixed, kBimodal };
  Kind kind_ = Kind::kFixed;
  uint32_t fixed_size_ = 128;
  uint32_t small_size_ = 64;
  uint32_t large_size_ = 1024;
  double p_small_ = 0.82;
  uint64_t seed_ = 0;
};

}  // namespace orbit::wl
