#include "workload/zipf.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/check.h"

namespace orbit::wl {

namespace {
// Zeta values for 10M-key workloads take ~40ms to sum; benches construct
// many generators, so memoize by (n, theta).
double CachedZeta(uint64_t n, double theta, double (*compute)(uint64_t, double)) {
  static std::mutex mu;
  static std::map<std::pair<uint64_t, double>, double> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(n, theta);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  double z = compute(n, theta);
  cache.emplace(key, z);
  return z;
}
}  // namespace

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  ORBIT_CHECK_MSG(n >= 1, "empty key space");
  ORBIT_CHECK_MSG(theta >= 0 && theta < 1, "theta must be in [0,1)");
  zetan_ = CachedZeta(n, theta, &ZipfGenerator::Zeta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = n >= 2 ? Zeta(2, theta) : zetan_;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  if (!std::isfinite(eta_)) eta_ = 1.0;  // n == 1 or theta == 0 corner
  half_pow_theta_ = 1.0 + std::pow(0.5, theta);
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const double raw = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(raw);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

double ZipfGenerator::ProbabilityOfRank(uint64_t rank) const {
  ORBIT_CHECK(rank < n_);
  return std::pow(1.0 / static_cast<double>(rank + 1), theta_) / zetan_;
}

double ZipfGenerator::MassOfTopRanks(uint64_t count) const {
  if (count > n_) count = n_;
  double sum = 0;
  for (uint64_t i = 0; i < count; ++i) sum += ProbabilityOfRank(i);
  return sum;
}

}  // namespace orbit::wl
