#include "workload/value_dist.h"

#include "common/check.h"
#include "common/hash.h"

namespace orbit::wl {

ValueDist ValueDist::Fixed(uint32_t size) {
  ValueDist d;
  d.kind_ = Kind::kFixed;
  d.fixed_size_ = size;
  return d;
}

ValueDist ValueDist::Bimodal(uint32_t small_size, uint32_t large_size,
                             double p_small, uint64_t seed) {
  ORBIT_CHECK(p_small >= 0 && p_small <= 1);
  ValueDist d;
  d.kind_ = Kind::kBimodal;
  d.small_size_ = small_size;
  d.large_size_ = large_size;
  d.p_small_ = p_small;
  d.seed_ = seed;
  return d;
}

uint32_t ValueDist::SizeFor(std::string_view key) const {
  if (kind_ == Kind::kFixed) return fixed_size_;
  // Map the key hash to [0,1); deterministic across all components.
  const uint64_t h = Hash64(key, seed_ ^ 0x76616c73697a65ull);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p_small_ ? small_size_ : large_size_;
}

uint32_t ValueDist::min_size() const {
  if (kind_ == Kind::kFixed) return fixed_size_;
  return small_size_ < large_size_ ? small_size_ : large_size_;
}

uint32_t ValueDist::max_size() const {
  if (kind_ == Kind::kFixed) return fixed_size_;
  return small_size_ > large_size_ ? small_size_ : large_size_;
}

double ValueDist::mean_size() const {
  if (kind_ == Kind::kFixed) return fixed_size_;
  return p_small_ * small_size_ + (1 - p_small_) * large_size_;
}

}  // namespace orbit::wl
