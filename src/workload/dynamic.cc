#include "workload/dynamic.h"

#include "common/check.h"

namespace orbit::wl {

DynamicPopularity::DynamicPopularity(uint64_t num_keys, uint64_t hot_count)
    : num_keys_(num_keys), hot_count_(hot_count) {
  ORBIT_CHECK_MSG(hot_count * 2 <= num_keys,
                  "hot set must not overlap the cold set");
}

uint64_t DynamicPopularity::Remap(uint64_t rank) const {
  ORBIT_CHECK(rank < num_keys_);
  if (epoch_ % 2 == 0) return rank;
  if (rank < hot_count_) return num_keys_ - hot_count_ + rank;
  if (rank >= num_keys_ - hot_count_)
    return rank - (num_keys_ - hot_count_);
  return rank;
}

}  // namespace orbit::wl
