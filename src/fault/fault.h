// Deterministic, sim-time-scripted fault injection (§3.9).
//
// A `FaultSchedule` is part of the experiment configuration: a list of
// (time, kind) events — server crash/restart, switch reset, controller
// channel loss — plus an optional Gilbert–Elliott burst-loss model layered
// onto every server link. The schedule is pure data (it serializes into
// the config fingerprint); `FaultInjector` binds it to a live testbed via
// a small hook table and schedules one simulator event per fault, so two
// runs of the same seeded config inject byte-identical faults.
//
// Fault taxonomy (docs/FAULTS.md has the full story):
//   kServerCrash / kServerRestart — the server's access link goes down/up;
//       in-flight packets in either direction are discarded (the server's
//       own queue and store survive, modeling a fast process restart).
//   kSwitchReset — the switch data plane is wiped (register arrays, match
//       tables, circulating cache packets); after `switch_rebuild_delay`
//       the controller rebuilds the cache from its shadow copy.
//   kCtrlDown / kCtrlUp — the switch-CPU channel drops all controller
//       traffic (fetches, reports, installs) until restored.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/link.h"

namespace orbit::sim {
class Simulator;
}
namespace orbit::telemetry {
class FlightRecorder;
class Registry;
class Tracer;
}

namespace orbit::fault {

enum class FaultKind {
  kServerCrash,
  kServerRestart,
  kSwitchReset,
  kCtrlDown,
  kCtrlUp,
};
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;                           // absolute sim time
  FaultKind kind = FaultKind::kSwitchReset;
  int server = -1;                          // kServerCrash/kServerRestart only
};

// Scripted fault timeline; default-constructed = no faults. Part of
// TestbedConfig, so it feeds the config fingerprint.
struct FaultSchedule {
  std::vector<FaultEvent> events;
  // Bursty loss on every server link for the whole run (decorrelated per
  // link by Network::Connect's seed mixing).
  sim::GilbertElliottConfig server_burst_loss;
  // Delay between a switch reset and the controller's cache rebuild —
  // models failure detection plus reinstall time on the switch CPU.
  SimTime switch_rebuild_delay = 2 * kMillisecond;

  bool empty() const {
    return events.empty() && !server_burst_loss.enabled();
  }
};

// Convenience builders for the common single-fault timelines.
FaultSchedule SwitchResetAt(SimTime at,
                            SimTime rebuild_delay = 2 * kMillisecond);
FaultSchedule ServerCrashAt(int server, SimTime crash_at, SimTime restart_at);

// How the injector acts on the testbed. Hooks left empty make the
// corresponding fault kind a no-op (e.g. reset_switch on a scheme with no
// switch-resident state).
struct FaultHooks {
  std::function<void(int server, bool down)> set_server_link_down;
  std::function<void(bool down)> set_ctrl_link_down;
  std::function<void()> reset_switch;
  std::function<void()> rebuild_cache;
};

// Binds a schedule to a live simulation: Arm() turns every FaultEvent into
// a simulator event that fires the matching hook (a switch reset also
// schedules the rebuild `switch_rebuild_delay` later). Keeps per-kind
// injection counts and optionally emits telemetry counters ("fault.*")
// and trace instants on a "faults" track.
class FaultInjector {
 public:
  struct Stats {
    uint64_t injected = 0;  // total hook firings (rebuild counts as one)
    uint64_t server_crashes = 0;
    uint64_t server_restarts = 0;
    uint64_t switch_resets = 0;
    uint64_t cache_rebuilds = 0;
    uint64_t ctrl_transitions = 0;  // down + up
  };

  FaultInjector(sim::Simulator* sim, const FaultSchedule& schedule,
                FaultHooks hooks);

  // Schedules every event; call once, before the run starts.
  void Arm();

  const Stats& stats() const { return stats_; }

  // Optional observability: counters under "fault.*" and instants on a
  // dedicated track. Either pointer may be null.
  void RegisterTelemetry(telemetry::Registry* registry,
                         telemetry::Tracer* tracer);

  // Flight recorder: every injected fault is noted on a "faults" ring and
  // triggers a post-mortem dump of all component rings at that instant.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);

 private:
  void Fire(const FaultEvent& ev);
  void Note(FaultKind kind, int server);

  sim::Simulator* sim_;
  FaultSchedule schedule_;
  FaultHooks hooks_;
  Stats stats_;
  telemetry::Tracer* tracer_ = nullptr;
  int track_ = -1;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;
};

}  // namespace orbit::fault
