// Deterministic, sim-time-scripted fault injection (§3.9).
//
// A `FaultSchedule` is part of the experiment configuration: a list of
// (time, kind) events — server crash/restart, switch reset, controller
// channel loss — plus an optional Gilbert–Elliott burst-loss model layered
// onto every server link. The schedule is pure data (it serializes into
// the config fingerprint); `FaultInjector` binds it to a live testbed via
// a small hook table and schedules one simulator event per fault, so two
// runs of the same seeded config inject byte-identical faults.
//
// Fault taxonomy (docs/FAULTS.md has the full story):
//   kServerCrash / kServerRestart — the server's access link goes down/up;
//       in-flight packets in either direction are discarded (the server's
//       own queue and store survive, modeling a fast process restart).
//   kSwitchReset — the switch data plane is wiped (register arrays, match
//       tables, circulating cache packets); after `switch_rebuild_delay`
//       the controller rebuilds the cache from its shadow copy.
//   kCtrlDown / kCtrlUp — the switch-CPU channel drops all controller
//       traffic (fetches, reports, installs) until restored.
//
// Fabric fault taxonomy (leaf–spine topologies, PR 10):
//   kFabricLinkDown / kFabricLinkUp — the (rack, spine) uplink goes
//       down/up in both directions; packets offered meanwhile are
//       discarded (DropReason::kLinkDown).
//   kLeafCrash / kLeafRestart — rack r's leaf data plane is wiped and the
//       leaf degrades to transparent pass-through (NoCache forwarding);
//       on restart the fabric controller rebuilds the leaf's cache after
//       `switch_rebuild_delay`.
//   kSpineCrash / kSpineRestart — all of spine s's down-links go down/up
//       at once (the spine itself holds no cache state).
//   kLinkDegrade / kLinkRestore — asymmetric "gray" uplink: one direction
//       (dir 0 = leaf->spine, 1 = spine->leaf) of the (rack, spine) link
//       loses packets with `degrade_loss` and delays survivors by
//       `degrade_latency`; the other direction is untouched.
//   kRackPartition / kRackHeal — every uplink of rack r goes down/up at
//       once: the rack can only reach itself until healed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/link.h"

namespace orbit::sim {
class Simulator;
}
namespace orbit::telemetry {
class FlightRecorder;
class Registry;
class Tracer;
}

namespace orbit::fault {

enum class FaultKind {
  kServerCrash,
  kServerRestart,
  kSwitchReset,
  kCtrlDown,
  kCtrlUp,
  // Fabric faults (leaf–spine topologies only).
  kFabricLinkDown,
  kFabricLinkUp,
  kLeafCrash,
  kLeafRestart,
  kSpineCrash,
  kSpineRestart,
  kLinkDegrade,
  kLinkRestore,
  kRackPartition,
  kRackHeal,
};
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;                           // absolute sim time
  FaultKind kind = FaultKind::kSwitchReset;
  int server = -1;                          // kServerCrash/kServerRestart only
  // Fabric targets (unused fields stay -1 and are omitted from the
  // serialized config, so pre-fabric fingerprints are unchanged).
  int rack = -1;   // leaf / partition / uplink events
  int spine = -1;  // spine / uplink events
  int dir = -1;    // kLinkDegrade/kLinkRestore: 0 leaf->spine, 1 spine->leaf
  double degrade_loss = 0.0;     // kLinkDegrade only
  SimTime degrade_latency = 0;   // kLinkDegrade only
};

// Scripted fault timeline; default-constructed = no faults. Part of
// TestbedConfig, so it feeds the config fingerprint.
struct FaultSchedule {
  std::vector<FaultEvent> events;
  // Bursty loss on every server link for the whole run (decorrelated per
  // link by Network::Connect's seed mixing).
  sim::GilbertElliottConfig server_burst_loss;
  // Bursty loss on every leaf–spine uplink (fabric topologies only; same
  // per-link seed decorrelation).
  sim::GilbertElliottConfig fabric_burst_loss;
  // Delay between a switch reset (or leaf restart) and the controller's
  // cache rebuild — models failure detection plus reinstall time on the
  // switch CPU.
  SimTime switch_rebuild_delay = 2 * kMillisecond;

  bool empty() const {
    return events.empty() && !server_burst_loss.enabled() &&
           !fabric_burst_loss.enabled();
  }

  // Structural validation: every event names a target of the right shape,
  // degrade parameters are sane, and no two events on the same target
  // overlap or contradict (a crash during an existing crash, a restart
  // with nothing to restart, two events on one target at the same
  // instant). Returns "" when valid, else one actionable error message.
  // Target ranges (racks/spines/servers) are checked by the testbed,
  // which knows the topology.
  std::string Validate() const;
};

// Convenience builders for the common single-fault timelines.
FaultSchedule SwitchResetAt(SimTime at,
                            SimTime rebuild_delay = 2 * kMillisecond);
FaultSchedule ServerCrashAt(int server, SimTime crash_at, SimTime restart_at);
FaultSchedule FabricLinkDownAt(int rack, int spine, SimTime down_at,
                               SimTime up_at);
FaultSchedule LeafCrashAt(int rack, SimTime crash_at, SimTime restart_at,
                          SimTime rebuild_delay = 2 * kMillisecond);
FaultSchedule SpineCrashAt(int spine, SimTime crash_at, SimTime restart_at);
FaultSchedule LinkDegradeAt(int rack, int spine, int dir, double loss,
                            SimTime extra_latency, SimTime at,
                            SimTime restore_at);
FaultSchedule RackPartitionAt(int rack, SimTime at, SimTime heal_at);

// How the injector acts on the testbed. Hooks left empty make the
// corresponding fault kind a no-op (e.g. reset_switch on a scheme with no
// switch-resident state).
struct FaultHooks {
  std::function<void(int server, bool down)> set_server_link_down;
  std::function<void(bool down)> set_ctrl_link_down;
  std::function<void()> reset_switch;
  std::function<void()> rebuild_cache;
  // Fabric hooks (empty on single-switch testbeds).
  std::function<void(int rack, int spine, bool down)> set_fabric_link_down;
  std::function<void(int rack, int spine, int dir, double loss,
                     SimTime extra_latency)>
      set_fabric_link_degrade;
  std::function<void(int rack, bool down)> set_leaf_down;
  std::function<void(int spine, bool down)> set_spine_down;
  std::function<void(int rack, bool partitioned)> set_rack_partition;
  // Fired `switch_rebuild_delay` after a kLeafRestart: the fabric
  // controller reinstalls rack r's cache from its shadow copy.
  std::function<void(int rack)> rebuild_leaf;
};

// Binds a schedule to a live simulation: Arm() turns every FaultEvent into
// a simulator event that fires the matching hook (a switch reset also
// schedules the rebuild `switch_rebuild_delay` later). Keeps per-kind
// injection counts and optionally emits telemetry counters ("fault.*")
// and trace instants on a "faults" track.
class FaultInjector {
 public:
  struct Stats {
    uint64_t injected = 0;  // total hook firings (rebuild counts as one)
    uint64_t server_crashes = 0;
    uint64_t server_restarts = 0;
    uint64_t switch_resets = 0;
    uint64_t cache_rebuilds = 0;
    uint64_t ctrl_transitions = 0;  // down + up
    uint64_t fabric_link_transitions = 0;  // down + up
    uint64_t leaf_crashes = 0;
    uint64_t leaf_restarts = 0;
    uint64_t leaf_rebuilds = 0;
    uint64_t spine_transitions = 0;  // crash + restart
    uint64_t link_degrades = 0;      // degrade + restore
    uint64_t partitions = 0;         // partition + heal
  };

  FaultInjector(sim::Simulator* sim, const FaultSchedule& schedule,
                FaultHooks hooks);

  // Schedules every event; call once, before the run starts.
  void Arm();

  const Stats& stats() const { return stats_; }

  // Optional observability: counters under "fault.*" and instants on a
  // dedicated track. Either pointer may be null.
  void RegisterTelemetry(telemetry::Registry* registry,
                         telemetry::Tracer* tracer);

  // Flight recorder: every injected fault is noted on a "faults" ring and
  // triggers a post-mortem dump of all component rings at that instant.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);

 private:
  void Fire(const FaultEvent& ev);
  void Note(FaultKind kind, int server);

  sim::Simulator* sim_;
  FaultSchedule schedule_;
  FaultHooks hooks_;
  Stats stats_;
  telemetry::Tracer* tracer_ = nullptr;
  int track_ = -1;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;
};

}  // namespace orbit::fault
