#include "fault/fault.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"

namespace orbit::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash: return "server_crash";
    case FaultKind::kServerRestart: return "server_restart";
    case FaultKind::kSwitchReset: return "switch_reset";
    case FaultKind::kCtrlDown: return "ctrl_down";
    case FaultKind::kCtrlUp: return "ctrl_up";
  }
  return "?";
}

FaultSchedule SwitchResetAt(SimTime at, SimTime rebuild_delay) {
  FaultSchedule s;
  s.events.push_back({at, FaultKind::kSwitchReset, -1});
  s.switch_rebuild_delay = rebuild_delay;
  return s;
}

FaultSchedule ServerCrashAt(int server, SimTime crash_at, SimTime restart_at) {
  ORBIT_CHECK(restart_at > crash_at);
  FaultSchedule s;
  s.events.push_back({crash_at, FaultKind::kServerCrash, server});
  s.events.push_back({restart_at, FaultKind::kServerRestart, server});
  return s;
}

FaultInjector::FaultInjector(sim::Simulator* sim,
                             const FaultSchedule& schedule, FaultHooks hooks)
    : sim_(sim), schedule_(schedule), hooks_(std::move(hooks)) {
  ORBIT_CHECK(sim != nullptr);
}

void FaultInjector::Arm() {
  for (const FaultEvent& ev : schedule_.events) {
    ORBIT_CHECK_MSG(ev.at >= sim_->now(), "fault scheduled in the past");
    sim_->At(ev.at, [this, ev] { Fire(ev); });
  }
}

void FaultInjector::Note(FaultKind kind, int server) {
  ++stats_.injected;
  if (tracer_ != nullptr) {
    tracer_->Instant(track_, /*trace_id=*/0, FaultKindName(kind), sim_->now(),
                     /*detail=*/nullptr,
                     server >= 0 ? static_cast<uint64_t>(server) : 0);
  }
  if (flight_ != nullptr) {
    flight_->Note(flight_comp_, sim_->now(), FaultKindName(kind),
                  server >= 0 ? static_cast<uint64_t>(server) : 0);
    // A fault is exactly the moment a post-mortem view of the preceding
    // events is worth keeping.
    flight_->TriggerDump(sim_->now(),
                         std::string("fault: ") + FaultKindName(kind));
  }
}

void FaultInjector::Fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kServerCrash:
      ++stats_.server_crashes;
      Note(ev.kind, ev.server);
      if (hooks_.set_server_link_down)
        hooks_.set_server_link_down(ev.server, true);
      break;
    case FaultKind::kServerRestart:
      ++stats_.server_restarts;
      Note(ev.kind, ev.server);
      if (hooks_.set_server_link_down)
        hooks_.set_server_link_down(ev.server, false);
      break;
    case FaultKind::kSwitchReset:
      ++stats_.switch_resets;
      Note(ev.kind, -1);
      if (hooks_.reset_switch) hooks_.reset_switch();
      // The controller notices the wipe and reinstalls its shadow copy
      // after the detection + reinstall delay.
      if (hooks_.rebuild_cache) {
        sim_->After(schedule_.switch_rebuild_delay, [this] {
          ++stats_.cache_rebuilds;
          ++stats_.injected;
          if (tracer_ != nullptr)
            tracer_->Instant(track_, /*trace_id=*/0, "cache_rebuild",
                             sim_->now());
          hooks_.rebuild_cache();
        });
      }
      break;
    case FaultKind::kCtrlDown:
      ++stats_.ctrl_transitions;
      Note(ev.kind, -1);
      if (hooks_.set_ctrl_link_down) hooks_.set_ctrl_link_down(true);
      break;
    case FaultKind::kCtrlUp:
      ++stats_.ctrl_transitions;
      Note(ev.kind, -1);
      if (hooks_.set_ctrl_link_down) hooks_.set_ctrl_link_down(false);
      break;
  }
}

void FaultInjector::RegisterTelemetry(telemetry::Registry* registry,
                                      telemetry::Tracer* tracer) {
  const std::string who = "FaultInjector::RegisterTelemetry";
  if (registry != nullptr) {
    registry->AddCounter("fault.injected", [this] { return stats_.injected; }, who);
    registry->AddCounter("fault.server_crashes",
                         [this] { return stats_.server_crashes; }, who);
    registry->AddCounter("fault.server_restarts",
                         [this] { return stats_.server_restarts; }, who);
    registry->AddCounter("fault.switch_resets",
                         [this] { return stats_.switch_resets; }, who);
    registry->AddCounter("fault.cache_rebuilds",
                         [this] { return stats_.cache_rebuilds; }, who);
    registry->AddCounter("fault.ctrl_transitions",
                         [this] { return stats_.ctrl_transitions; }, who);
  }
  if (tracer != nullptr) {
    tracer_ = tracer;
    track_ = tracer->RegisterTrack("faults");
  }
}

void FaultInjector::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) flight_comp_ = flight_->Component("faults");
}

}  // namespace orbit::fault
