#include "fault/fault.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/check.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"

namespace orbit::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash: return "server_crash";
    case FaultKind::kServerRestart: return "server_restart";
    case FaultKind::kSwitchReset: return "switch_reset";
    case FaultKind::kCtrlDown: return "ctrl_down";
    case FaultKind::kCtrlUp: return "ctrl_up";
    case FaultKind::kFabricLinkDown: return "fabric_link_down";
    case FaultKind::kFabricLinkUp: return "fabric_link_up";
    case FaultKind::kLeafCrash: return "leaf_crash";
    case FaultKind::kLeafRestart: return "leaf_restart";
    case FaultKind::kSpineCrash: return "spine_crash";
    case FaultKind::kSpineRestart: return "spine_restart";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kLinkRestore: return "link_restore";
    case FaultKind::kRackPartition: return "rack_partition";
    case FaultKind::kRackHeal: return "rack_heal";
  }
  return "?";
}

FaultSchedule SwitchResetAt(SimTime at, SimTime rebuild_delay) {
  FaultSchedule s;
  s.events.push_back({at, FaultKind::kSwitchReset, -1});
  s.switch_rebuild_delay = rebuild_delay;
  return s;
}

FaultSchedule ServerCrashAt(int server, SimTime crash_at, SimTime restart_at) {
  ORBIT_CHECK(restart_at > crash_at);
  FaultSchedule s;
  s.events.push_back({crash_at, FaultKind::kServerCrash, server});
  s.events.push_back({restart_at, FaultKind::kServerRestart, server});
  return s;
}

namespace {
FaultEvent FabricEvent(SimTime at, FaultKind kind, int rack, int spine) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.rack = rack;
  ev.spine = spine;
  return ev;
}
}  // namespace

FaultSchedule FabricLinkDownAt(int rack, int spine, SimTime down_at,
                               SimTime up_at) {
  ORBIT_CHECK(up_at > down_at);
  FaultSchedule s;
  s.events.push_back(
      FabricEvent(down_at, FaultKind::kFabricLinkDown, rack, spine));
  s.events.push_back(FabricEvent(up_at, FaultKind::kFabricLinkUp, rack, spine));
  return s;
}

FaultSchedule LeafCrashAt(int rack, SimTime crash_at, SimTime restart_at,
                          SimTime rebuild_delay) {
  ORBIT_CHECK(restart_at > crash_at);
  FaultSchedule s;
  s.events.push_back(FabricEvent(crash_at, FaultKind::kLeafCrash, rack, -1));
  s.events.push_back(
      FabricEvent(restart_at, FaultKind::kLeafRestart, rack, -1));
  s.switch_rebuild_delay = rebuild_delay;
  return s;
}

FaultSchedule SpineCrashAt(int spine, SimTime crash_at, SimTime restart_at) {
  ORBIT_CHECK(restart_at > crash_at);
  FaultSchedule s;
  s.events.push_back(FabricEvent(crash_at, FaultKind::kSpineCrash, -1, spine));
  s.events.push_back(
      FabricEvent(restart_at, FaultKind::kSpineRestart, -1, spine));
  return s;
}

FaultSchedule LinkDegradeAt(int rack, int spine, int dir, double loss,
                            SimTime extra_latency, SimTime at,
                            SimTime restore_at) {
  ORBIT_CHECK(restore_at > at);
  FaultSchedule s;
  FaultEvent degrade = FabricEvent(at, FaultKind::kLinkDegrade, rack, spine);
  degrade.dir = dir;
  degrade.degrade_loss = loss;
  degrade.degrade_latency = extra_latency;
  s.events.push_back(degrade);
  FaultEvent restore =
      FabricEvent(restore_at, FaultKind::kLinkRestore, rack, spine);
  restore.dir = dir;
  s.events.push_back(restore);
  return s;
}

FaultSchedule RackPartitionAt(int rack, SimTime at, SimTime heal_at) {
  ORBIT_CHECK(heal_at > at);
  FaultSchedule s;
  s.events.push_back(FabricEvent(at, FaultKind::kRackPartition, rack, -1));
  s.events.push_back(FabricEvent(heal_at, FaultKind::kRackHeal, rack, -1));
  return s;
}

namespace {

std::string Msg(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

// (down-kind, up-kind) toggle pairs share a target-keyed state machine.
struct ToggleState {
  SimTime since = 0;
  FaultKind by = FaultKind::kSwitchReset;
};

}  // namespace

std::string FaultSchedule::Validate() const {
  // Field-shape checks first, in the order the user wrote the events.
  for (const FaultEvent& ev : events) {
    const char* name = FaultKindName(ev.kind);
    switch (ev.kind) {
      case FaultKind::kServerCrash:
      case FaultKind::kServerRestart:
        if (ev.server < 0)
          return Msg("%s at %lldns needs server >= 0", name,
                     static_cast<long long>(ev.at));
        break;
      case FaultKind::kSwitchReset:
      case FaultKind::kCtrlDown:
      case FaultKind::kCtrlUp:
        break;
      case FaultKind::kFabricLinkDown:
      case FaultKind::kFabricLinkUp:
        if (ev.rack < 0 || ev.spine < 0)
          return Msg("%s at %lldns needs rack >= 0 and spine >= 0", name,
                     static_cast<long long>(ev.at));
        break;
      case FaultKind::kLeafCrash:
      case FaultKind::kLeafRestart:
      case FaultKind::kRackPartition:
      case FaultKind::kRackHeal:
        if (ev.rack < 0)
          return Msg("%s at %lldns needs rack >= 0", name,
                     static_cast<long long>(ev.at));
        break;
      case FaultKind::kSpineCrash:
      case FaultKind::kSpineRestart:
        if (ev.spine < 0)
          return Msg("%s at %lldns needs spine >= 0", name,
                     static_cast<long long>(ev.at));
        break;
      case FaultKind::kLinkDegrade:
        if (ev.rack < 0 || ev.spine < 0 || (ev.dir != 0 && ev.dir != 1))
          return Msg(
              "%s at %lldns needs rack, spine and dir (0 = leaf->spine, "
              "1 = spine->leaf)",
              name, static_cast<long long>(ev.at));
        if (ev.degrade_loss < 0 || ev.degrade_loss > 1 ||
            ev.degrade_latency < 0)
          return Msg(
              "%s at %lldns: degrade_loss must be in [0,1] and "
              "degrade_latency >= 0",
              name, static_cast<long long>(ev.at));
        if (ev.degrade_loss == 0 && ev.degrade_latency == 0)
          return Msg(
              "%s at %lldns degrades nothing: set degrade_loss and/or "
              "degrade_latency",
              name, static_cast<long long>(ev.at));
        break;
      case FaultKind::kLinkRestore:
        if (ev.rack < 0 || ev.spine < 0 || (ev.dir != 0 && ev.dir != 1))
          return Msg(
              "%s at %lldns needs rack, spine and dir (0 = leaf->spine, "
              "1 = spine->leaf)",
              name, static_cast<long long>(ev.at));
        break;
    }
  }

  // Overlap / contradiction checks run over the time-ordered schedule.
  // Equal-time events keep their written order, except that a pair on the
  // same target at the same instant is always rejected: zero-length faults
  // and same-instant races are almost certainly authoring mistakes.
  std::vector<FaultEvent> evs = events;
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });

  std::map<std::string, ToggleState> down;  // target name -> down since
  std::map<int, int> rack_links_down;       // rack -> # of individually-down uplinks
  std::set<int> partitioned;

  auto go_down = [&](const std::string& target, const FaultEvent& ev,
                     const char* up_name) -> std::string {
    auto [it, fresh] = down.try_emplace(target, ToggleState{ev.at, ev.kind});
    if (!fresh)
      return Msg("%s: %s at %lldns overlaps the %s at %lldns (missing %s in "
                 "between?)",
                 target.c_str(), FaultKindName(ev.kind),
                 static_cast<long long>(ev.at), FaultKindName(it->second.by),
                 static_cast<long long>(it->second.since), up_name);
    return "";
  };
  auto go_up = [&](const std::string& target, const FaultEvent& ev,
                   const char* down_name) -> std::string {
    auto it = down.find(target);
    if (it == down.end())
      return Msg("%s: %s at %lldns has no preceding %s to undo", target.c_str(),
                 FaultKindName(ev.kind), static_cast<long long>(ev.at),
                 down_name);
    if (it->second.since == ev.at)
      return Msg("%s: %s and %s both at %lldns (zero-length fault)",
                 target.c_str(), FaultKindName(it->second.by),
                 FaultKindName(ev.kind), static_cast<long long>(ev.at));
    down.erase(it);
    return "";
  };

  for (const FaultEvent& ev : evs) {
    std::string err;
    switch (ev.kind) {
      case FaultKind::kServerCrash:
        err = go_down(Msg("server %d", ev.server), ev, "server_restart");
        break;
      case FaultKind::kServerRestart:
        err = go_up(Msg("server %d", ev.server), ev, "server_crash");
        break;
      case FaultKind::kSwitchReset:
        break;  // instantaneous; the rebuild is scheduled by the injector
      case FaultKind::kCtrlDown:
        err = go_down("ctrl channel", ev, "ctrl_up");
        break;
      case FaultKind::kCtrlUp:
        err = go_up("ctrl channel", ev, "ctrl_down");
        break;
      case FaultKind::kFabricLinkDown:
        if (partitioned.count(ev.rack))
          return Msg(
              "uplink rack %d spine %d: fabric_link_down at %lldns while "
              "rack %d is partitioned (the partition already holds this link "
              "down)",
              ev.rack, ev.spine, static_cast<long long>(ev.at), ev.rack);
        err = go_down(Msg("uplink rack %d spine %d", ev.rack, ev.spine), ev,
                      "fabric_link_up");
        if (err.empty()) ++rack_links_down[ev.rack];
        break;
      case FaultKind::kFabricLinkUp:
        err = go_up(Msg("uplink rack %d spine %d", ev.rack, ev.spine), ev,
                    "fabric_link_down");
        if (err.empty()) --rack_links_down[ev.rack];
        break;
      case FaultKind::kLeafCrash:
        err = go_down(Msg("leaf %d", ev.rack), ev, "leaf_restart");
        break;
      case FaultKind::kLeafRestart:
        err = go_up(Msg("leaf %d", ev.rack), ev, "leaf_crash");
        break;
      case FaultKind::kSpineCrash:
        err = go_down(Msg("spine %d", ev.spine), ev, "spine_restart");
        break;
      case FaultKind::kSpineRestart:
        err = go_up(Msg("spine %d", ev.spine), ev, "spine_crash");
        break;
      case FaultKind::kLinkDegrade:
        err = go_down(Msg("uplink rack %d spine %d dir %d (gray)", ev.rack,
                          ev.spine, ev.dir),
                      ev, "link_restore");
        break;
      case FaultKind::kLinkRestore:
        err = go_up(Msg("uplink rack %d spine %d dir %d (gray)", ev.rack,
                        ev.spine, ev.dir),
                    ev, "link_degrade");
        break;
      case FaultKind::kRackPartition: {
        auto it = rack_links_down.find(ev.rack);
        if (it != rack_links_down.end() && it->second > 0)
          return Msg(
              "rack %d: rack_partition at %lldns while %d of its uplinks are "
              "individually down (bring them up first or drop the per-link "
              "events)",
              ev.rack, static_cast<long long>(ev.at), it->second);
        err = go_down(Msg("rack %d partition", ev.rack), ev, "rack_heal");
        if (err.empty()) partitioned.insert(ev.rack);
        break;
      }
      case FaultKind::kRackHeal:
        err = go_up(Msg("rack %d partition", ev.rack), ev, "rack_partition");
        if (err.empty()) partitioned.erase(ev.rack);
        break;
    }
    if (!err.empty()) return err;
  }
  return "";
}

FaultInjector::FaultInjector(sim::Simulator* sim,
                             const FaultSchedule& schedule, FaultHooks hooks)
    : sim_(sim), schedule_(schedule), hooks_(std::move(hooks)) {
  ORBIT_CHECK(sim != nullptr);
}

void FaultInjector::Arm() {
  for (const FaultEvent& ev : schedule_.events) {
    ORBIT_CHECK_MSG(ev.at >= sim_->now(), "fault scheduled in the past");
    sim_->At(ev.at, [this, ev] { Fire(ev); });
  }
}

void FaultInjector::Note(FaultKind kind, int server) {
  ++stats_.injected;
  if (tracer_ != nullptr) {
    tracer_->Instant(track_, /*trace_id=*/0, FaultKindName(kind), sim_->now(),
                     /*detail=*/nullptr,
                     server >= 0 ? static_cast<uint64_t>(server) : 0);
  }
  if (flight_ != nullptr) {
    flight_->Note(flight_comp_, sim_->now(), FaultKindName(kind),
                  server >= 0 ? static_cast<uint64_t>(server) : 0);
    // A fault is exactly the moment a post-mortem view of the preceding
    // events is worth keeping.
    flight_->TriggerDump(sim_->now(),
                         std::string("fault: ") + FaultKindName(kind));
  }
}

void FaultInjector::Fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kServerCrash:
      ++stats_.server_crashes;
      Note(ev.kind, ev.server);
      if (hooks_.set_server_link_down)
        hooks_.set_server_link_down(ev.server, true);
      break;
    case FaultKind::kServerRestart:
      ++stats_.server_restarts;
      Note(ev.kind, ev.server);
      if (hooks_.set_server_link_down)
        hooks_.set_server_link_down(ev.server, false);
      break;
    case FaultKind::kSwitchReset:
      ++stats_.switch_resets;
      Note(ev.kind, -1);
      if (hooks_.reset_switch) hooks_.reset_switch();
      // The controller notices the wipe and reinstalls its shadow copy
      // after the detection + reinstall delay.
      if (hooks_.rebuild_cache) {
        sim_->After(schedule_.switch_rebuild_delay, [this] {
          ++stats_.cache_rebuilds;
          ++stats_.injected;
          if (tracer_ != nullptr)
            tracer_->Instant(track_, /*trace_id=*/0, "cache_rebuild",
                             sim_->now());
          hooks_.rebuild_cache();
        });
      }
      break;
    case FaultKind::kCtrlDown:
      ++stats_.ctrl_transitions;
      Note(ev.kind, -1);
      if (hooks_.set_ctrl_link_down) hooks_.set_ctrl_link_down(true);
      break;
    case FaultKind::kCtrlUp:
      ++stats_.ctrl_transitions;
      Note(ev.kind, -1);
      if (hooks_.set_ctrl_link_down) hooks_.set_ctrl_link_down(false);
      break;
    case FaultKind::kFabricLinkDown:
      ++stats_.fabric_link_transitions;
      Note(ev.kind, ev.rack);
      if (hooks_.set_fabric_link_down)
        hooks_.set_fabric_link_down(ev.rack, ev.spine, true);
      break;
    case FaultKind::kFabricLinkUp:
      ++stats_.fabric_link_transitions;
      Note(ev.kind, ev.rack);
      if (hooks_.set_fabric_link_down)
        hooks_.set_fabric_link_down(ev.rack, ev.spine, false);
      break;
    case FaultKind::kLeafCrash:
      ++stats_.leaf_crashes;
      Note(ev.kind, ev.rack);
      if (hooks_.set_leaf_down) hooks_.set_leaf_down(ev.rack, true);
      break;
    case FaultKind::kLeafRestart:
      ++stats_.leaf_restarts;
      Note(ev.kind, ev.rack);
      if (hooks_.set_leaf_down) hooks_.set_leaf_down(ev.rack, false);
      // The fabric controller notices the restart and reinstalls rack r's
      // cache after the detection + reinstall delay (same model as the
      // single-switch reset path).
      if (hooks_.rebuild_leaf) {
        const int rack = ev.rack;
        sim_->After(schedule_.switch_rebuild_delay, [this, rack] {
          ++stats_.leaf_rebuilds;
          ++stats_.injected;
          if (tracer_ != nullptr)
            tracer_->Instant(track_, /*trace_id=*/0, "leaf_rebuild",
                             sim_->now(), /*detail=*/nullptr,
                             static_cast<uint64_t>(rack));
          hooks_.rebuild_leaf(rack);
        });
      }
      break;
    case FaultKind::kSpineCrash:
      ++stats_.spine_transitions;
      Note(ev.kind, ev.spine);
      if (hooks_.set_spine_down) hooks_.set_spine_down(ev.spine, true);
      break;
    case FaultKind::kSpineRestart:
      ++stats_.spine_transitions;
      Note(ev.kind, ev.spine);
      if (hooks_.set_spine_down) hooks_.set_spine_down(ev.spine, false);
      break;
    case FaultKind::kLinkDegrade:
      ++stats_.link_degrades;
      Note(ev.kind, ev.rack);
      if (hooks_.set_fabric_link_degrade)
        hooks_.set_fabric_link_degrade(ev.rack, ev.spine, ev.dir,
                                       ev.degrade_loss, ev.degrade_latency);
      break;
    case FaultKind::kLinkRestore:
      ++stats_.link_degrades;
      Note(ev.kind, ev.rack);
      if (hooks_.set_fabric_link_degrade)
        hooks_.set_fabric_link_degrade(ev.rack, ev.spine, ev.dir, 0.0, 0);
      break;
    case FaultKind::kRackPartition:
      ++stats_.partitions;
      Note(ev.kind, ev.rack);
      if (hooks_.set_rack_partition) hooks_.set_rack_partition(ev.rack, true);
      break;
    case FaultKind::kRackHeal:
      ++stats_.partitions;
      Note(ev.kind, ev.rack);
      if (hooks_.set_rack_partition) hooks_.set_rack_partition(ev.rack, false);
      break;
  }
}

void FaultInjector::RegisterTelemetry(telemetry::Registry* registry,
                                      telemetry::Tracer* tracer) {
  const std::string who = "FaultInjector::RegisterTelemetry";
  if (registry != nullptr) {
    registry->AddCounter("fault.injected", [this] { return stats_.injected; }, who);
    registry->AddCounter("fault.server_crashes",
                         [this] { return stats_.server_crashes; }, who);
    registry->AddCounter("fault.server_restarts",
                         [this] { return stats_.server_restarts; }, who);
    registry->AddCounter("fault.switch_resets",
                         [this] { return stats_.switch_resets; }, who);
    registry->AddCounter("fault.cache_rebuilds",
                         [this] { return stats_.cache_rebuilds; }, who);
    registry->AddCounter("fault.ctrl_transitions",
                         [this] { return stats_.ctrl_transitions; }, who);
    registry->AddCounter("fault.fabric_link_transitions",
                         [this] { return stats_.fabric_link_transitions; },
                         who);
    registry->AddCounter("fault.leaf_crashes",
                         [this] { return stats_.leaf_crashes; }, who);
    registry->AddCounter("fault.leaf_restarts",
                         [this] { return stats_.leaf_restarts; }, who);
    registry->AddCounter("fault.leaf_rebuilds",
                         [this] { return stats_.leaf_rebuilds; }, who);
    registry->AddCounter("fault.spine_transitions",
                         [this] { return stats_.spine_transitions; }, who);
    registry->AddCounter("fault.link_degrades",
                         [this] { return stats_.link_degrades; }, who);
    registry->AddCounter("fault.partitions",
                         [this] { return stats_.partitions; }, who);
  }
  if (tracer != nullptr) {
    tracer_ = tracer;
    track_ = tracer->RegisterTrack("faults");
  }
}

void FaultInjector::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) flight_comp_ = flight_->Component("faults");
}

}  // namespace orbit::fault
