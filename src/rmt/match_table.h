// Exact-match match-action tables with hardware width limits.
//
// The match key occupies at most the ASIC's `max_match_key_bytes` (16B on
// Tofino-1-class hardware) — the reason NetCache cannot index items by
// keys longer than 16 bytes, and the reason OrbitCache matches on a 16-byte
// key *hash* instead (paper §3.6). Inserting an over-wide key throws at
// the Insert site, mirroring a compile-time P4 failure.
//
// Entries are mutated from the control plane (the controller inserts and
// evicts cache entries); the data plane only looks up.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "rmt/resources.h"

namespace orbit::rmt {

inline uint32_t MatchKeyBytes(const std::string& key) {
  return static_cast<uint32_t>(key.size());
}
inline uint32_t MatchKeyBytes(const Hash128&) { return 16; }
inline uint32_t MatchKeyBytes(uint32_t) { return 4; }  // e.g. IPv4 addresses

class MatchTableBase {
 public:
  MatchTableBase(Resources* res, std::string name, int stage, size_t capacity,
                 uint32_t key_width_bytes, uint32_t entry_value_bytes);
  virtual ~MatchTableBase() = default;

  const std::string& table_name() const { return name_; }
  size_t capacity() const { return capacity_; }
  uint32_t key_width_bytes() const { return key_width_; }

  // Telemetry: data-plane lookup traffic (control-plane Insert/Erase do
  // not count). hits() <= lookups() always.
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }

 protected:
  void CountLookup(bool hit) const {
    ++lookups_;
    if (hit) ++hits_;
  }

 private:
  std::string name_;
  size_t capacity_;
  uint32_t key_width_;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t hits_ = 0;
};

template <typename K, typename V>
class ExactMatchTable : public MatchTableBase {
 public:
  ExactMatchTable(Resources* res, std::string name, int stage,
                  size_t capacity, uint32_t key_width_bytes,
                  uint32_t entry_value_bytes = 4)
      : MatchTableBase(res, std::move(name), stage, capacity, key_width_bytes,
                       entry_value_bytes) {}

  // Control-plane insert; returns false when the table is at capacity.
  // Throws when the key exceeds the declared match-key width.
  bool Insert(const K& key, V value) {
    ORBIT_CHECK_MSG(MatchKeyBytes(key) <= key_width_bytes(),
                    table_name() << ": key of " << MatchKeyBytes(key)
                                 << "B exceeds match width "
                                 << key_width_bytes() << "B");
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second = std::move(value);
      return true;
    }
    if (map_.size() >= capacity()) return false;
    map_.emplace(key, std::move(value));
    return true;
  }

  // Data-plane lookup.
  V* Lookup(const K& key) {
    auto it = map_.find(key);
    CountLookup(it != map_.end());
    return it == map_.end() ? nullptr : &it->second;
  }
  const V* Lookup(const K& key) const {
    auto it = map_.find(key);
    CountLookup(it != map_.end());
    return it == map_.end() ? nullptr : &it->second;
  }

  bool Erase(const K& key) { return map_.erase(key) > 0; }
  void Clear() { map_.clear(); }
  size_t size() const { return map_.size(); }

  const std::unordered_map<K, V>& entries() const { return map_; }

 private:
  std::unordered_map<K, V> map_;
};

}  // namespace orbit::rmt
