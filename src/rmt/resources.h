// ASIC configuration and resource accounting.
//
// The paper's entire motivation is that RMT hardware constrains what a
// data-plane program may do: a bounded number of match-action stages, a
// maximum match-key width, and a small per-stage ALU-accessible byte count.
// Programs in this repo declare every table and register array against a
// `Resources` ledger which enforces those limits and can print a usage
// report like the paper's §4 (stages / SRAM / ALUs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace orbit::rmt {

struct AsicConfig {
  // Tofino-1-class defaults.
  int num_stages = 12;
  uint32_t max_match_key_bytes = 16;   // match-key width limit (paper §2.1)
  uint32_t alu_bytes_per_stage = 8;    // k: register bytes one stage can touch
  uint32_t sram_bytes_per_stage = 1280 * 1024;
  int alus_per_stage = 4;
  int tables_per_stage = 4;

  double pipeline_latency_ns = 400;    // ingress+egress traversal
  double packet_slot_ns = 1.25;        // ~800 Mpps per pipe
  double port_rate_gbps = 100.0;       // front ports
  double recirc_rate_gbps = 100.0;     // single internal recirculation port
  double recirc_loop_ns = 100.0;       // loopback turnaround
  uint32_t recirc_queue_bytes = 2 * 1024 * 1024;
};

// One declared data-plane object (table or register array).
struct ResourceEntry {
  std::string name;
  int stage = 0;
  uint64_t sram_bytes = 0;
  int alus = 0;
  int tables = 0;
  uint32_t match_key_bytes = 0;  // 0 for register arrays
};

class Resources {
 public:
  explicit Resources(const AsicConfig& config) : config_(config) {}

  const AsicConfig& config() const { return config_; }

  // Declares an object; throws CheckFailure when it violates a hardware
  // limit (bad stage, key too wide, per-stage budget exceeded).
  void Declare(const ResourceEntry& entry);

  int stages_used() const;
  uint64_t sram_bytes_used() const;
  double sram_fraction_used() const;
  int alus_used() const;

  // Human-readable usage summary in the style of the paper's §4.
  std::string Report() const;

  const std::vector<ResourceEntry>& entries() const { return entries_; }

 private:
  AsicConfig config_;
  std::vector<ResourceEntry> entries_;
};

}  // namespace orbit::rmt
