#include "rmt/switch.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace orbit::rmt {

SwitchDevice::SwitchDevice(sim::Simulator* sim, sim::Network* net,
                           std::string name, const AsicConfig& config)
    : sim_(sim), net_(net), name_(std::move(name)), resources_(config) {
  ORBIT_CHECK(sim != nullptr && net != nullptr);
}

void SwitchDevice::SetProgram(SwitchProgram* program) {
  ORBIT_CHECK_MSG(program_ == nullptr, "program already attached");
  ORBIT_CHECK(program != nullptr);
  program_ = program;
}

void SwitchDevice::AddRoute(Addr addr, int port) { routes_[addr] = port; }

void SwitchDevice::FlushRecirculation() {
  ++recirc_generation_;
  stats_.recirc_in_flight = 0;
  recirc_busy_until_ = 0;
}

int SwitchDevice::RouteOf(Addr addr) const {
  auto it = routes_.find(addr);
  return it == routes_.end() ? -1 : it->second;
}

void SwitchDevice::OnPacket(sim::PacketPtr pkt, int port) {
  ORBIT_CHECK_MSG(program_ != nullptr, name_ << ": no program attached");
  ++stats_.rx_packets;

  pkt->ingress_port = port;
  if (port == kRecircPort) {
    if (pkt->recirc_generation != recirc_generation_) {
      // The packet was in the loop when the ASIC rebooted: it no longer
      // exists (the gauge was zeroed by FlushRecirculation).
      ++stats_.recirc_flushed;
      return;
    }
    pkt->from_recirc = true;
    --stats_.recirc_in_flight;
  }

  // Pipeline pacing: the pps ceiling shows up as queueing ahead of the
  // pipe; the match-action logic itself runs in arrival order.
  const AsicConfig& cfg = resources_.config();
  const SimTime slot = std::max<SimTime>(1, static_cast<SimTime>(cfg.packet_slot_ns));
  const SimTime queue_wait = std::max<SimTime>(0, pipe_next_free_ - sim_->now());
  pipe_next_free_ = sim_->now() + queue_wait + slot;
  const SimTime pipe_delay =
      queue_wait + static_cast<SimTime>(cfg.pipeline_latency_ns);

  IngressResult result = program_->Ingress(*pkt, *this);
  Apply(result, std::move(pkt), pipe_delay);
}

void SwitchDevice::Apply(const IngressResult& result, sim::PacketPtr pkt,
                         SimTime pipe_delay) {
  using Action = IngressResult::Action;
  switch (result.action) {
    case Action::kDrop:
      ++stats_.dropped_by_program;
      return;
    case Action::kForwardPort:
      SendOut(result.port, std::move(pkt), pipe_delay);
      return;
    case Action::kForwardAddr: {
      const int port = RouteOf(result.addr);
      if (port < 0) {
        ++stats_.dropped_unrouted;
        LOG_WARN(name_ << ": no route for addr " << result.addr);
        return;
      }
      SendOut(port, std::move(pkt), pipe_delay);
      return;
    }
    case Action::kRecirculate:
      Recirculate(std::move(pkt), pipe_delay);
      return;
    case Action::kMulticast: {
      const auto* targets = pre_.Group(result.mcast_group);
      if (targets == nullptr || targets->empty()) {
        ++stats_.dropped_unrouted;
        LOG_WARN(name_ << ": unknown multicast group " << result.mcast_group);
        return;
      }
      // The PRE emits one descriptor per target; the last target takes the
      // original descriptor, earlier ones take clones.
      for (size_t i = 0; i + 1 < targets->size(); ++i) {
        pre_.CountClones(1);
        sim::PacketPtr copy = sim::ClonePacket(*pkt);
        const McastTarget& t = (*targets)[i];
        if (t.recirculate) {
          Recirculate(std::move(copy), pipe_delay);
        } else {
          SendOut(t.port, std::move(copy), pipe_delay);
        }
      }
      const McastTarget& last = targets->back();
      if (last.recirculate) {
        Recirculate(std::move(pkt), pipe_delay);
      } else {
        SendOut(last.port, std::move(pkt), pipe_delay);
      }
      return;
    }
  }
}

void SwitchDevice::SendOut(int port, sim::PacketPtr pkt, SimTime pipe_delay) {
  ++stats_.tx_packets;
  net_->Send(this, port, std::move(pkt), pipe_delay);
}

void SwitchDevice::Recirculate(sim::PacketPtr pkt, SimTime pipe_delay) {
  const AsicConfig& cfg = resources_.config();
  const uint32_t bytes = pkt->wire_bytes();
  const SimTime ready = sim_->now() + pipe_delay;
  // Backlog implied by how far the port's busy horizon runs ahead.
  const SimTime backlog_ns = std::max<SimTime>(0, recirc_busy_until_ - ready);
  const uint64_t backlog_bytes = static_cast<uint64_t>(
      static_cast<double>(backlog_ns) * cfg.recirc_rate_gbps / 8.0);
  if (backlog_bytes + bytes > cfg.recirc_queue_bytes) {
    ++stats_.recirc_drops;
    return;
  }
  const SimTime start = std::max(ready, recirc_busy_until_);
  const SimTime tx = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              cfg.recirc_rate_gbps));
  const SimTime done = start + tx;
  recirc_busy_until_ = done;
  ++stats_.recirc_packets;
  ++stats_.recirc_in_flight;

  pkt->recirc_count++;
  pkt->recirc_generation = recirc_generation_;
  const SimTime loop = static_cast<SimTime>(cfg.recirc_loop_ns);
  sim_->Deliver(done + loop, this, kRecircPort, std::move(pkt));
}

}  // namespace orbit::rmt
