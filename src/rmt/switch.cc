#include "rmt/switch.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "telemetry/trace.h"

namespace orbit::rmt {

namespace {
const char* ActionName(IngressResult::Action action) {
  using Action = IngressResult::Action;
  switch (action) {
    case Action::kForwardPort: return "forward_port";
    case Action::kForwardAddr: return "forward_addr";
    case Action::kDrop: return "drop";
    case Action::kMulticast: return "multicast";
    case Action::kRecirculate: return "recirculate";
  }
  return "?";
}
}  // namespace

SwitchDevice::SwitchDevice(sim::Simulator* sim, sim::Network* net,
                           std::string name, const AsicConfig& config)
    : sim_(sim), net_(net), name_(std::move(name)), resources_(config) {
  ORBIT_CHECK(sim != nullptr && net != nullptr);
}

void SwitchDevice::SetProgram(SwitchProgram* program) {
  ORBIT_CHECK_MSG(program_ == nullptr, "program already attached");
  ORBIT_CHECK(program != nullptr);
  program_ = program;
}

void SwitchDevice::AddRoute(Addr addr, int port) { routes_[addr] = port; }

void SwitchDevice::SetTracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    track_pipe_ = tracer_->RegisterTrack(name_);
    track_recirc_ = tracer_->RegisterTrack(name_ + ".recirc");
  }
}

void SwitchDevice::SetIntSink(telemetry::IntSink* sink) {
  int_ = sink;
  if (int_ == nullptr) return;
  int_hop_pipe_ = int_->Hop(name_ + ".pipeline");
  int_hop_recirc_ = int_->Hop(name_ + ".recirc");
  int_hist_pipe_ = int_->Hist("hop.pipeline.ns", "ns");
  int_hist_recirc_ = int_->Hist("hop.recirc.ns", "ns");
  if (program_ != nullptr) program_->OnIntAttached(*int_);
}

void SwitchDevice::SetFlightRecorder(telemetry::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) flight_comp_ = flight_->Component(name_);
}

void SwitchDevice::RegisterTelemetry(telemetry::Registry& reg,
                                     const std::string& prefix) {
  const std::string who =
      "SwitchDevice::RegisterTelemetry(" + name_ + ", prefix='" + prefix + "')";
  reg.AddCounter(prefix + "switch.rx_packets",
                 [this] { return stats_.rx_packets; }, who);
  reg.AddCounter(prefix + "switch.tx_packets",
                 [this] { return stats_.tx_packets; }, who);
  reg.AddCounter(prefix + "switch.drop.program",
                 [this] { return stats_.dropped_by_program; }, who);
  reg.AddCounter(prefix + "switch.drop.unrouted",
                 [this] { return stats_.dropped_unrouted; }, who);
  reg.AddCounter(prefix + "switch.drop.recirc_overflow",
                 [this] { return stats_.recirc_drops; }, who);
  reg.AddCounter(prefix + "switch.recirc.passes",
                 [this] { return stats_.recirc_packets; }, who);
  reg.AddCounter(prefix + "switch.recirc.flushed",
                 [this] { return stats_.recirc_flushed; }, who);
  reg.AddCounter(prefix + "switch.recirc.bytes",
                 [this] { return stats_.recirc_bytes; }, who);
  reg.AddCounter(prefix + "switch.recirc.busy_ns",
                 [this] { return stats_.recirc_busy_ns; }, who);
  reg.AddCounter(prefix + "switch.pre.clones",
                 [this] { return pre_.clones_made(); }, who);
  reg.AddGauge(prefix + "switch.recirc.in_flight", [this] {
    return static_cast<uint64_t>(std::max<int64_t>(0, stats_.recirc_in_flight));
  }, who);
  // Depth of the recirc FIFO expressed as nanoseconds of work queued ahead
  // of "now" — the same horizon the admission check measures against.
  reg.AddGauge(prefix + "switch.recirc.queue_ns", [this] {
    return static_cast<uint64_t>(
        std::max<SimTime>(0, recirc_busy_until_ - sim_->now()));
  }, who);
}

void SwitchDevice::FlushRecirculation() {
  ++recirc_generation_;
  stats_.recirc_in_flight = 0;
  recirc_busy_until_ = 0;
}

int SwitchDevice::RouteOf(Addr addr) const {
  auto it = routes_.find(addr);
  return it == routes_.end() ? -1 : it->second;
}

void SwitchDevice::OnPacket(sim::PacketPtr pkt, int port) {
  ORBIT_CHECK_MSG(program_ != nullptr, name_ << ": no program attached");
  ++stats_.rx_packets;

  pkt->ingress_port = port;
  if (pkt->msg.op == proto::Op::kProbe) {
    // Turn the probe around on its ingress port: a completed round trip
    // proves both directions of the link alive (a gray link that eats
    // either leg starves the prober of acks).
    pkt->msg.op = proto::Op::kProbeAck;
    SendOut(port, std::move(pkt), /*pipe_delay=*/0);
    return;
  }
  if (pkt->msg.op == proto::Op::kProbeAck) {
    sim::MarkEnd(*pkt, sim::PacketEnd::kConsumed);
    if (probe_ack_handler_) probe_ack_handler_(port);
    return;
  }
  if (port == kRecircPort) {
    if (pkt->recirc_generation != recirc_generation_) {
      // The packet was in the loop when the ASIC rebooted: it no longer
      // exists (the gauge was zeroed by FlushRecirculation).
      ++stats_.recirc_flushed;
      sim::MarkEnd(*pkt, sim::PacketEnd::kFlushedAtReset);
      if (tracer_ != nullptr && pkt->trace_id != 0)
        tracer_->Instant(track_recirc_, pkt->trace_id, "recirc_flushed",
                         sim_->now());
      return;
    }
    pkt->from_recirc = true;
    --stats_.recirc_in_flight;
  }

  // Pipeline pacing: the pps ceiling shows up as queueing ahead of the
  // pipe; the match-action logic itself runs in arrival order.
  const AsicConfig& cfg = resources_.config();
  const SimTime slot = std::max<SimTime>(1, static_cast<SimTime>(cfg.packet_slot_ns));
  const SimTime queue_wait = std::max<SimTime>(0, pipe_next_free_ - sim_->now());
  pipe_next_free_ = sim_->now() + queue_wait + slot;
  const SimTime pipe_delay =
      queue_wait + static_cast<SimTime>(cfg.pipeline_latency_ns);

  IngressResult result = program_->Ingress(*pkt, *this);
  Apply(result, std::move(pkt), pipe_delay);
}

void SwitchDevice::Apply(const IngressResult& result, sim::PacketPtr pkt,
                         SimTime pipe_delay) {
  using Action = IngressResult::Action;
  if (tracer_ != nullptr && pkt->trace_id != 0) {
    // One span per traversal: queue-behind-the-pipe wait plus the fixed
    // match-action latency, labeled with the action the program chose.
    tracer_->Span(track_pipe_, pkt->trace_id, "pipeline", sim_->now(),
                  pipe_delay, ActionName(result.action));
  }
  if (flight_ != nullptr) {
    flight_->Note(flight_comp_, sim_->now(), ActionName(result.action),
                  static_cast<uint64_t>(pkt->msg.op), pkt->msg.seq);
  }
  if (int_ != nullptr) {
    int_->Record(int_hist_pipe_, pipe_delay);
    if (pkt->int_id != 0) {
      const SimTime queue_wait =
          pipe_delay -
          static_cast<SimTime>(resources_.config().pipeline_latency_ns);
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_pipe_;
      hop.kind = telemetry::IntHopKind::kPipeline;
      hop.latency_ns = pipe_delay;
      hop.queue_depth = queue_wait;
      hop.recirc_count = pkt->recirc_count;
      int_->Stamp(pkt->int_id, hop);
    }
  }
  switch (result.action) {
    case Action::kDrop:
      ++stats_.dropped_by_program;
      // First-wins: a program that absorbed the packet (request table)
      // already marked it; only an unexplained Drop lands here.
      sim::MarkEnd(*pkt, sim::PacketEnd::kDroppedByProgram);
      return;
    case Action::kForwardPort:
      SendOut(result.port, std::move(pkt), pipe_delay);
      return;
    case Action::kForwardAddr: {
      const int port = RouteOf(result.addr);
      if (port < 0) {
        ++stats_.dropped_unrouted;
        sim::MarkEnd(*pkt, sim::PacketEnd::kDroppedUnrouted);
        LOG_WARN(name_ << ": no route for addr " << result.addr);
        return;
      }
      SendOut(port, std::move(pkt), pipe_delay);
      return;
    }
    case Action::kRecirculate:
      Recirculate(std::move(pkt), pipe_delay);
      return;
    case Action::kMulticast: {
      const auto* targets = pre_.Group(result.mcast_group);
      if (targets == nullptr || targets->empty()) {
        ++stats_.dropped_unrouted;
        sim::MarkEnd(*pkt, sim::PacketEnd::kDroppedUnrouted);
        LOG_WARN(name_ << ": unknown multicast group " << result.mcast_group);
        return;
      }
      // The PRE emits one descriptor per target; the last target takes the
      // original descriptor, earlier ones take clones.
      for (size_t i = 0; i + 1 < targets->size(); ++i) {
        pre_.CountClones(1);
        sim::PacketPtr copy = sim::ClonePacket(*pkt);
        const McastTarget& t = (*targets)[i];
        if (t.recirculate) {
          Recirculate(std::move(copy), pipe_delay);
        } else {
          SendOut(t.port, std::move(copy), pipe_delay);
        }
      }
      const McastTarget& last = targets->back();
      if (last.recirculate) {
        Recirculate(std::move(pkt), pipe_delay);
      } else {
        SendOut(last.port, std::move(pkt), pipe_delay);
      }
      return;
    }
  }
}

void SwitchDevice::SendOut(int port, sim::PacketPtr pkt, SimTime pipe_delay) {
  ++stats_.tx_packets;
  net_->Send(this, port, std::move(pkt), pipe_delay);
}

void SwitchDevice::Recirculate(sim::PacketPtr pkt, SimTime pipe_delay) {
  const AsicConfig& cfg = resources_.config();
  const uint32_t bytes = pkt->wire_bytes();
  const SimTime ready = sim_->now() + pipe_delay;
  // Backlog implied by how far the port's busy horizon runs ahead.
  const SimTime backlog_ns = std::max<SimTime>(0, recirc_busy_until_ - ready);
  const uint64_t backlog_bytes = static_cast<uint64_t>(
      static_cast<double>(backlog_ns) * cfg.recirc_rate_gbps / 8.0);
  if (backlog_bytes + bytes > cfg.recirc_queue_bytes) {
    ++stats_.recirc_drops;
    sim::MarkEnd(*pkt, sim::PacketEnd::kDroppedRecirc);
    if (tracer_ != nullptr && pkt->trace_id != 0)
      tracer_->Instant(track_recirc_, pkt->trace_id, "recirc_overflow",
                       sim_->now(), nullptr, bytes);
    if (int_ != nullptr && pkt->int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_recirc_;
      hop.kind = telemetry::IntHopKind::kDrop;
      hop.queue_depth = static_cast<int64_t>(backlog_bytes);
      hop.recirc_count = pkt->recirc_count;
      hop.drop_reason = static_cast<uint8_t>(
          1 + static_cast<int>(sim::DropReason::kQueueOverflow));
      int_->Stamp(pkt->int_id, hop);
    }
    return;
  }
  const SimTime start = std::max(ready, recirc_busy_until_);
  const SimTime tx = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              cfg.recirc_rate_gbps));
  const SimTime done = start + tx;
  recirc_busy_until_ = done;
  ++stats_.recirc_packets;
  ++stats_.recirc_in_flight;
  stats_.recirc_bytes += bytes;
  stats_.recirc_busy_ns += static_cast<uint64_t>(tx);

  pkt->recirc_count++;
  pkt->recirc_generation = recirc_generation_;
  const SimTime loop = static_cast<SimTime>(cfg.recirc_loop_ns);
  if (tracer_ != nullptr && pkt->trace_id != 0) {
    tracer_->Span(track_recirc_, pkt->trace_id, "recirc", sim_->now(),
                  done + loop - sim_->now(), nullptr, bytes);
  }
  if (int_ != nullptr) {
    const SimTime orbit_ns = done + loop - sim_->now();
    int_->Record(int_hist_recirc_, orbit_ns);
    if (pkt->int_id != 0) {
      telemetry::IntHop hop;
      hop.at = sim_->now();
      hop.hop = int_hop_recirc_;
      hop.kind = telemetry::IntHopKind::kRecirc;
      hop.latency_ns = orbit_ns;
      hop.queue_depth = static_cast<int64_t>(backlog_bytes);
      hop.recirc_count = pkt->recirc_count;
      int_->Stamp(pkt->int_id, hop);
    }
  }
  // A reply entering the loop is a cache packet beginning its orbit: it
  // will recirculate for the rest of the run. Trace/stamp the first pass,
  // then detach the ids so a sampled request doesn't record forever.
  // Requests (NetCache's recirculating reads) keep them across passes.
  switch (pkt->msg.op) {
    case proto::Op::kReadRep:
    case proto::Op::kWriteRep:
    case proto::Op::kFetchRep:
      pkt->trace_id = 0;
      pkt->int_id = 0;
      break;
    default:
      break;
  }
  sim_->Deliver(done + loop, this, kRecircPort, std::move(pkt));
}

}  // namespace orbit::rmt
