#include "rmt/resources.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"

namespace orbit::rmt {

void Resources::Declare(const ResourceEntry& entry) {
  ORBIT_CHECK_MSG(entry.stage >= 0 && entry.stage < config_.num_stages,
                  entry.name << ": stage " << entry.stage << " outside 0.."
                             << config_.num_stages - 1);
  ORBIT_CHECK_MSG(entry.match_key_bytes <= config_.max_match_key_bytes,
                  entry.name << ": match key " << entry.match_key_bytes
                             << "B exceeds ASIC limit of "
                             << config_.max_match_key_bytes << "B");
  uint64_t stage_sram = entry.sram_bytes;
  int stage_alus = entry.alus;
  int stage_tables = entry.tables;
  for (const auto& e : entries_) {
    if (e.stage != entry.stage) continue;
    stage_sram += e.sram_bytes;
    stage_alus += e.alus;
    stage_tables += e.tables;
  }
  ORBIT_CHECK_MSG(stage_sram <= config_.sram_bytes_per_stage,
                  entry.name << ": stage " << entry.stage << " SRAM "
                             << stage_sram << "B exceeds "
                             << config_.sram_bytes_per_stage << "B");
  ORBIT_CHECK_MSG(stage_alus <= config_.alus_per_stage,
                  entry.name << ": stage " << entry.stage << " needs "
                             << stage_alus << " ALUs > "
                             << config_.alus_per_stage);
  ORBIT_CHECK_MSG(stage_tables <= config_.tables_per_stage,
                  entry.name << ": stage " << entry.stage << " holds "
                             << stage_tables << " tables > "
                             << config_.tables_per_stage);
  entries_.push_back(entry);
}

int Resources::stages_used() const {
  int max_stage = -1;
  for (const auto& e : entries_) max_stage = std::max(max_stage, e.stage);
  return max_stage + 1;
}

uint64_t Resources::sram_bytes_used() const {
  uint64_t total = 0;
  for (const auto& e : entries_) total += e.sram_bytes;
  return total;
}

double Resources::sram_fraction_used() const {
  const double budget = static_cast<double>(config_.sram_bytes_per_stage) *
                        config_.num_stages;
  return static_cast<double>(sram_bytes_used()) / budget;
}

int Resources::alus_used() const {
  int total = 0;
  for (const auto& e : entries_) total += e.alus;
  return total;
}

std::string Resources::Report() const {
  std::ostringstream os;
  os << "data-plane resource usage: " << stages_used() << "/"
     << config_.num_stages << " stages, " << sram_bytes_used() / 1024
     << " KiB SRAM (" << sram_fraction_used() * 100 << "% of budget), "
     << alus_used() << " ALUs\n";
  std::map<int, std::vector<const ResourceEntry*>> by_stage;
  for (const auto& e : entries_) by_stage[e.stage].push_back(&e);
  for (const auto& [stage, list] : by_stage) {
    os << "  stage " << stage << ":";
    for (const auto* e : list) {
      os << " " << e->name << "(" << e->sram_bytes / 1024 << "KiB";
      if (e->match_key_bytes > 0) os << ", key " << e->match_key_bytes << "B";
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace orbit::rmt
