#include "rmt/register_array.h"

namespace orbit::rmt {

RegisterArrayBase::RegisterArrayBase(Resources* res, std::string name,
                                     int stage, size_t size,
                                     uint32_t slot_bytes)
    : name_(std::move(name)), stage_(stage), size_(size) {
  ORBIT_CHECK(res != nullptr);
  ORBIT_CHECK_MSG(slot_bytes <= res->config().alu_bytes_per_stage,
                  name_ << ": slot width " << slot_bytes
                        << "B exceeds per-stage ALU limit of "
                        << res->config().alu_bytes_per_stage << "B");
  ResourceEntry entry;
  entry.name = name_;
  entry.stage = stage_;
  entry.sram_bytes = static_cast<uint64_t>(size) * slot_bytes;
  entry.alus = 1;
  res->Declare(entry);
}

}  // namespace orbit::rmt
