// The programmable switch device.
//
// Models one RMT pipeline: packets arriving on any port are gated through
// a per-packet pipeline slot (the ASIC's packets-per-second ceiling), the
// attached SwitchProgram runs the match-action logic and picks an action,
// and egress happens after the pipeline traversal latency. Two special
// facilities mirror the hardware features OrbitCache is built on:
//
//  * the PRE executes multicast actions by descriptor-cloning packets, and
//  * a single internal recirculation port with finite bandwidth and a
//    bounded FIFO loops packets back into ingress (paper §2.2: one recirc
//    port per pipeline vs. tens of front ports).
//
// Register state mutated by the program is applied in packet arrival
// order, matching per-stage atomicity on real RMT hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "rmt/pre.h"
#include "rmt/resources.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::telemetry {
class FlightRecorder;
class IntSink;
class Registry;
class Tracer;
}  // namespace orbit::telemetry

namespace orbit::rmt {

struct IngressResult {
  enum class Action {
    kForwardPort,  // unicast to an explicit front port
    kForwardAddr,  // unicast via the L3 route table
    kDrop,
    kMulticast,    // hand to the PRE with a group id
    kRecirculate,  // unicast to the internal recirculation port
  };

  Action action = Action::kDrop;
  int port = -1;
  Addr addr = kInvalidAddr;
  int mcast_group = 0;

  static IngressResult ToPort(int p) {
    return {Action::kForwardPort, p, kInvalidAddr, 0};
  }
  static IngressResult ToAddr(Addr a) {
    return {Action::kForwardAddr, -1, a, 0};
  }
  static IngressResult Drop() { return {}; }
  static IngressResult Multicast(int group) {
    return {Action::kMulticast, -1, kInvalidAddr, group};
  }
  static IngressResult Recirculate() {
    return {Action::kRecirculate, -1, kInvalidAddr, 0};
  }
};

class SwitchDevice;

// A data-plane program (the P4 analogue). Implementations declare their
// tables/registers against the device's Resources ledger at attach time.
class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;
  virtual IngressResult Ingress(sim::Packet& pkt, SwitchDevice& sw) = 0;
  virtual std::string program_name() const = 0;
  // Called when an IntSink is attached to the hosting device; programs
  // intern their program-level always-on histograms here (orbit count per
  // cached key, served value sizes). Default: no instrumentation.
  virtual void OnIntAttached(telemetry::IntSink& sink) { (void)sink; }
};

class SwitchDevice : public sim::Node {
 public:
  // Ingress port number seen by packets re-entering via recirculation.
  static constexpr int kRecircPort = -2;

  SwitchDevice(sim::Simulator* sim, sim::Network* net, std::string name,
               const AsicConfig& config);

  // The program must outlive the device. May only be set once.
  void SetProgram(SwitchProgram* program);

  Resources& resources() { return resources_; }
  Pre& pre() { return pre_; }
  sim::Simulator& sim() { return *sim_; }

  // Control-plane route programming (dst address → front port).
  void AddRoute(Addr addr, int port);

  // ASIC reboot semantics: every packet currently looping through the
  // recirculation port is lost (they live in switch buffers). Programs
  // call this from their reset paths.
  void FlushRecirculation();
  // Returns the port for `addr`, or -1 when unrouted.
  int RouteOf(Addr addr) const;

  void OnPacket(sim::PacketPtr pkt, int port) override;
  std::string name() const override { return name_; }

  // Fabric liveness probing (see fabric/failover.h). A kProbe arriving on
  // any front port is turned around as a kProbeAck out the same port; a
  // kProbeAck is consumed and handed to the registered handler (the
  // failover manager acting as this switch's CPU). Both ride the CPU path:
  // no program dispatch, no pipeline slot — but they do share link
  // bandwidth, which is why probing is opt-in per run.
  void set_probe_ack_handler(std::function<void(int port)> handler) {
    probe_ack_handler_ = std::move(handler);
  }

  struct Stats {
    uint64_t rx_packets = 0;
    uint64_t tx_packets = 0;
    uint64_t dropped_by_program = 0;
    uint64_t dropped_unrouted = 0;
    uint64_t recirc_packets = 0;      // total recirculation passes
    uint64_t recirc_drops = 0;        // recirc FIFO overflow
    uint64_t recirc_flushed = 0;      // packets lost to a reboot barrier
    int64_t recirc_in_flight = 0;     // gauge: packets currently orbiting
    uint64_t recirc_bytes = 0;        // bytes serialized through the loop
    uint64_t recirc_busy_ns = 0;      // time the recirc port spent sending
  };
  const Stats& stats() const { return stats_; }

  // --- Telemetry (optional; near-zero cost when unset) ---------------------
  // Attaches a request tracer. The device registers two tracks ("tor" for
  // pipeline traversals, "tor.recirc" for recirculation passes) and emits
  // spans only for packets whose trace_id is non-zero.
  void SetTracer(telemetry::Tracer* tracer);
  telemetry::Tracer* tracer() const { return tracer_; }
  // Track for program-level instants (lookup hit/miss etc.) — the pipeline
  // track, so program events interleave with traversal spans.
  int trace_track() const { return track_pipe_; }
  // Registers switch.* counters and gauges against `reg`. Reads existing
  // Stats fields; nothing is consumed from the Resources ledger. `prefix`
  // scopes the names for multi-switch runs (e.g. "leaf0." -> counters like
  // "leaf0.switch.rx_packets"); the default keeps single-switch names.
  void RegisterTelemetry(telemetry::Registry& reg,
                         const std::string& prefix = "");
  // INT attachment: interns this device's pipeline/recirc hop names and
  // the shared hop-class latency histograms, then forwards to the
  // program's OnIntAttached. Call after SetProgram.
  void SetIntSink(telemetry::IntSink* sink);
  telemetry::IntSink* int_sink() const { return int_; }
  // Flight recorder: one ring per device noting every ingress decision.
  void SetFlightRecorder(telemetry::FlightRecorder* recorder);

 private:
  void Apply(const IngressResult& result, sim::PacketPtr pkt,
             SimTime pipe_delay);
  void SendOut(int port, sim::PacketPtr pkt, SimTime pipe_delay);
  void Recirculate(sim::PacketPtr pkt, SimTime pipe_delay);

  sim::Simulator* sim_;
  sim::Network* net_;
  std::string name_;
  Resources resources_;
  Pre pre_;
  SwitchProgram* program_ = nullptr;

  std::unordered_map<Addr, int> routes_;
  std::function<void(int port)> probe_ack_handler_;

  // Pipeline pacing.
  SimTime pipe_next_free_ = 0;

  // Recirculation channel state (single internal port).
  SimTime recirc_busy_until_ = 0;
  uint32_t recirc_generation_ = 0;

  // Telemetry sinks (not owned; may be null).
  telemetry::Tracer* tracer_ = nullptr;
  int track_pipe_ = -1;
  int track_recirc_ = -1;
  telemetry::IntSink* int_ = nullptr;
  uint32_t int_hop_pipe_ = 0;
  uint32_t int_hop_recirc_ = 0;
  uint32_t int_hist_pipe_ = 0;
  uint32_t int_hist_recirc_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  uint32_t flight_comp_ = 0;

  Stats stats_;
};

}  // namespace orbit::rmt
