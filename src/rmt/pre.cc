#include "rmt/pre.h"

#include "common/check.h"

namespace orbit::rmt {

void Pre::SetGroup(int group_id, std::vector<McastTarget> targets) {
  ORBIT_CHECK_MSG(group_id != 0, "multicast group 0 is reserved");
  ORBIT_CHECK_MSG(!targets.empty(), "multicast group must have targets");
  groups_[group_id] = std::move(targets);
}

const std::vector<McastTarget>* Pre::Group(int group_id) const {
  auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace orbit::rmt
