#include "rmt/match_table.h"

namespace orbit::rmt {

MatchTableBase::MatchTableBase(Resources* res, std::string name, int stage,
                               size_t capacity, uint32_t key_width_bytes,
                               uint32_t entry_value_bytes)
    : name_(std::move(name)), capacity_(capacity), key_width_(key_width_bytes) {
  ORBIT_CHECK(res != nullptr);
  ResourceEntry entry;
  entry.name = name_;
  entry.stage = stage;
  entry.match_key_bytes = key_width_bytes;  // Declare() enforces the limit
  entry.sram_bytes =
      static_cast<uint64_t>(capacity) * (key_width_bytes + entry_value_bytes);
  entry.tables = 1;
  res->Declare(entry);
}

}  // namespace orbit::rmt
