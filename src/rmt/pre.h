// Packet Replication Engine: multicast groups.
//
// The PRE sits after the ingress pipeline; replicating a packet copies its
// descriptor, not its bytes (paper §3.5), so cloning is cheap and the
// cloned copy does not traverse ingress again. A multicast group is a list
// of egress targets, each either a front port or the internal recirculation
// port.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace orbit::rmt {

struct McastTarget {
  bool recirculate = false;  // true → internal recirculation port
  int port = -1;             // front port when recirculate == false
};

class Pre {
 public:
  // Control-plane group programming. Group ids are arbitrary non-zero ints.
  void SetGroup(int group_id, std::vector<McastTarget> targets);
  const std::vector<McastTarget>* Group(int group_id) const;
  size_t num_groups() const { return groups_.size(); }

  uint64_t clones_made() const { return clones_made_; }
  void CountClones(uint64_t n) { clones_made_ += n; }

 private:
  std::unordered_map<int, std::vector<McastTarget>> groups_;
  uint64_t clones_made_ = 0;
};

}  // namespace orbit::rmt
