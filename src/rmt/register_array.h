// Stateful register arrays, the RMT building block behind the paper's
// state table, request table, and counters.
//
// A register array lives in exactly one stage and each slot is at most the
// ASIC's per-stage ALU-accessible width (`alu_bytes_per_stage`, 8B on our
// Tofino-1-class config). Declaring a wider slot throws — this is the
// constraint that caps NetCache-style value storage at
// stages × width bytes, which OrbitCache escapes by never storing values
// in registers at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "rmt/resources.h"

namespace orbit::rmt {

class RegisterArrayBase {
 public:
  RegisterArrayBase(Resources* res, std::string name, int stage, size_t size,
                    uint32_t slot_bytes);
  virtual ~RegisterArrayBase() = default;

  const std::string& array_name() const { return name_; }
  size_t size() const { return size_; }
  int stage() const { return stage_; }

  // Telemetry: slot touches (reads and read-modify-writes both land on
  // at()), exposed per array so the registry can report per-stage register
  // pressure. Deterministic for a given seed.
  uint64_t accesses() const { return accesses_; }

 protected:
  void CountAccess() const { ++accesses_; }

 private:
  std::string name_;
  int stage_;
  size_t size_;
  mutable uint64_t accesses_ = 0;
};

template <typename T>
class RegisterArray : public RegisterArrayBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "registers hold fixed-width machine words");

 public:
  RegisterArray(Resources* res, std::string name, int stage, size_t size,
                T initial = T{})
      : RegisterArrayBase(res, std::move(name), stage, size,
                          static_cast<uint32_t>(sizeof(T))),
        slots_(size, initial) {}

  T& at(size_t i) {
    ORBIT_CHECK_MSG(i < slots_.size(), array_name() << ": index " << i
                                                    << " >= " << slots_.size());
    CountAccess();
    return slots_[i];
  }
  const T& at(size_t i) const {
    ORBIT_CHECK_MSG(i < slots_.size(), array_name() << ": index " << i
                                                    << " >= " << slots_.size());
    CountAccess();
    return slots_[i];
  }

  // Non-counting read for out-of-band inspection (the verification layer's
  // invariant checks). Using at() there would perturb the accesses()
  // telemetry and break --verify's results-neutrality.
  const T& peek(size_t i) const {
    ORBIT_CHECK_MSG(i < slots_.size(), array_name() << ": index " << i
                                                    << " >= " << slots_.size());
    return slots_[i];
  }

  void Fill(T v) { slots_.assign(slots_.size(), v); }

 private:
  std::vector<T> slots_;
};

// A single scalar register (e.g. the cache-hit and overflow counters).
template <typename T>
class Register : public RegisterArray<T> {
 public:
  Register(Resources* res, std::string name, int stage, T initial = T{})
      : RegisterArray<T>(res, std::move(name), stage, 1, initial) {}

  T& get() { return this->at(0); }
  const T& get() const { return this->at(0); }
};

}  // namespace orbit::rmt
