#include "rmt/pre.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/packet.h"

namespace orbit::rmt {
namespace {

TEST(Pre, GroupProgrammingAndLookup) {
  Pre pre;
  pre.SetGroup(1, {McastTarget{false, 5}, McastTarget{true, -1}});
  const auto* g = pre.Group(1);
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->size(), 2u);
  EXPECT_FALSE((*g)[0].recirculate);
  EXPECT_EQ((*g)[0].port, 5);
  EXPECT_TRUE((*g)[1].recirculate);
  EXPECT_EQ(pre.Group(2), nullptr);
}

TEST(Pre, GroupsCanBeReprogrammed) {
  Pre pre;
  pre.SetGroup(1, {McastTarget{false, 5}});
  pre.SetGroup(1, {McastTarget{false, 9}});
  EXPECT_EQ((*pre.Group(1))[0].port, 9);
  EXPECT_EQ(pre.num_groups(), 1u);
}

TEST(Pre, RejectsReservedAndEmptyGroups) {
  Pre pre;
  EXPECT_THROW(pre.SetGroup(0, {McastTarget{false, 1}}), CheckFailure);
  EXPECT_THROW(pre.SetGroup(1, {}), CheckFailure);
}

TEST(Pre, CloneCountsAccumulate) {
  Pre pre;
  EXPECT_EQ(pre.clones_made(), 0u);
  pre.CountClones(3);
  pre.CountClones(1);
  EXPECT_EQ(pre.clones_made(), 4u);
}

TEST(ClonePacket, IsDescriptorCopyWithSharedPayload) {
  // The PRE copies the descriptor, not the bytes: a clone of a packet with
  // a materialized value must compare equal and share the backing string.
  sim::Packet pkt;
  pkt.src = 1;
  pkt.dst = 2;
  pkt.msg.op = proto::Op::kReadRep;
  pkt.msg.key = "kkkkkkkkkkkkkkkk";
  pkt.msg.value = kv::Value::FromBytes(std::string(256, 'v'));
  pkt.recirc_count = 3;

  sim::PacketPtr clone = sim::ClonePacket(pkt);
  EXPECT_EQ(clone->src, pkt.src);
  EXPECT_EQ(clone->msg.key, pkt.msg.key);
  EXPECT_EQ(clone->msg.value, pkt.msg.value);
  EXPECT_EQ(clone->recirc_count, 3u);
  EXPECT_EQ(clone->wire_bytes(), pkt.wire_bytes());

  // Mutating the clone's header does not touch the original.
  clone->dst = 99;
  clone->msg.seq = 7;
  EXPECT_EQ(pkt.dst, 2u);
  EXPECT_EQ(pkt.msg.seq, 0u);
}

}  // namespace
}  // namespace orbit::rmt
