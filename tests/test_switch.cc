#include "rmt/switch.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::rmt {
namespace {

class Recorder : public sim::Node {
 public:
  explicit Recorder(sim::Simulator* sim) : sim_(sim) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    arrivals.push_back({pkt->msg.seq, sim_->now(), pkt->recirc_count});
  }
  std::string name() const override { return "recorder"; }

  struct Arrival {
    uint32_t seq;
    SimTime at;
    uint32_t recircs;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator* sim_;
};

// A programmable stub: maps seq -> action.
class StubProgram : public SwitchProgram {
 public:
  IngressResult Ingress(sim::Packet& pkt, SwitchDevice&) override {
    ++invocations;
    last_from_recirc = pkt.from_recirc;
    auto it = plan.find(pkt.msg.seq);
    if (it == plan.end()) return IngressResult::ToAddr(pkt.dst);
    return it->second;
  }
  std::string program_name() const override { return "stub"; }

  std::unordered_map<uint32_t, IngressResult> plan;
  int invocations = 0;
  bool last_from_recirc = false;
};

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : net_(&sim_), sw_(&sim_, &net_, "sw", AsicConfig{}), a_(&sim_), b_(&sim_) {
    sw_.SetProgram(&program_);
    auto at_a = net_.Connect(&a_, &sw_, sim::LinkConfig{});
    auto at_b = net_.Connect(&b_, &sw_, sim::LinkConfig{});
    port_a_ = at_a.port_b;
    port_b_ = at_b.port_b;
    sw_.AddRoute(1, port_a_);
    sw_.AddRoute(2, port_b_);
  }

  sim::PacketPtr Pkt(uint32_t seq, Addr dst = 2) {
    auto pkt = sim::NewPacket(0, 0, 0, 0);
    pkt->src = 1;
    pkt->dst = dst;
    pkt->msg.seq = seq;
    return pkt;
  }

  sim::Simulator sim_;
  sim::Network net_;
  SwitchDevice sw_;
  StubProgram program_;
  Recorder a_, b_;
  int port_a_ = -1, port_b_ = -1;
};

TEST_F(SwitchTest, ForwardsByRoute) {
  net_.Send(&a_, 0, Pkt(1, 2));
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(program_.invocations, 1);
  EXPECT_EQ(sw_.stats().rx_packets, 1u);
  EXPECT_EQ(sw_.stats().tx_packets, 1u);
}

TEST_F(SwitchTest, PipelineLatencyApplied) {
  net_.Send(&a_, 0, Pkt(1, 2));
  sim_.RunToCompletion();
  // host->switch: 80B at 100G (6ns) + 500ns prop; pipeline 400ns;
  // switch->host: 6ns + 500ns.
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_NEAR(static_cast<double>(b_.arrivals[0].at), 6 + 500 + 400 + 6 + 500,
              2.0);
}

TEST_F(SwitchTest, UnroutedPacketsDropAndCount) {
  net_.Send(&a_, 0, Pkt(1, /*dst=*/77));
  sim_.RunToCompletion();
  EXPECT_TRUE(b_.arrivals.empty());
  EXPECT_EQ(sw_.stats().dropped_unrouted, 1u);
}

TEST_F(SwitchTest, ProgramDropCounts) {
  program_.plan[5] = IngressResult::Drop();
  net_.Send(&a_, 0, Pkt(5));
  sim_.RunToCompletion();
  EXPECT_TRUE(b_.arrivals.empty());
  EXPECT_EQ(sw_.stats().dropped_by_program, 1u);
}

TEST_F(SwitchTest, ExplicitPortForwarding) {
  program_.plan[5] = IngressResult::ToPort(port_a_);
  net_.Send(&b_, 0, Pkt(5, /*dst=*/99));  // dst unrouted, port explicit
  sim_.RunToCompletion();
  ASSERT_EQ(a_.arrivals.size(), 1u);
}

TEST_F(SwitchTest, RecirculationReentersWithFlagAndCount) {
  // First pass recirculates; second pass forwards to b.
  program_.plan[5] = IngressResult::Recirculate();
  net_.Send(&a_, 0, Pkt(5));
  // After the first ingress the plan changes: deliver on next pass.
  sim_.RunUntil(1200);
  program_.plan[5] = IngressResult::ToAddr(2);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_GE(b_.arrivals[0].recircs, 1u);
  EXPECT_TRUE(program_.last_from_recirc);
  EXPECT_GE(sw_.stats().recirc_packets, 1u);
  EXPECT_EQ(sw_.stats().recirc_in_flight, 0);
}

TEST_F(SwitchTest, RecirculationInFlightGaugeTracksRing) {
  program_.plan[5] = IngressResult::Recirculate();
  program_.plan[6] = IngressResult::Recirculate();
  net_.Send(&a_, 0, Pkt(5));
  net_.Send(&a_, 0, Pkt(6));
  sim_.RunUntil(100 * kMicrosecond);
  EXPECT_EQ(sw_.stats().recirc_in_flight, 2);
  EXPECT_GT(sw_.stats().recirc_packets, 100u) << "packets keep orbiting";
}

TEST_F(SwitchTest, MulticastClonesToEveryTarget) {
  sw_.pre().SetGroup(7, {McastTarget{false, port_a_},
                         McastTarget{false, port_b_}});
  program_.plan[5] = IngressResult::Multicast(7);
  net_.Send(&a_, 0, Pkt(5));
  sim_.RunToCompletion();
  EXPECT_EQ(a_.arrivals.size(), 1u);
  EXPECT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(sw_.pre().clones_made(), 1u);  // one clone + the original
}

TEST_F(SwitchTest, MulticastToUnknownGroupDrops) {
  program_.plan[5] = IngressResult::Multicast(42);
  net_.Send(&a_, 0, Pkt(5));
  sim_.RunToCompletion();
  EXPECT_EQ(sw_.stats().dropped_unrouted, 1u);
}

TEST_F(SwitchTest, ProgramCanOnlyBeAttachedOnce) {
  StubProgram another;
  EXPECT_THROW(sw_.SetProgram(&another), CheckFailure);
}

}  // namespace
}  // namespace orbit::rmt
