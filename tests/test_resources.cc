#include "rmt/resources.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::rmt {
namespace {

ResourceEntry Entry(const std::string& name, int stage, uint64_t sram,
                    int alus = 0, int tables = 0, uint32_t key = 0) {
  ResourceEntry e;
  e.name = name;
  e.stage = stage;
  e.sram_bytes = sram;
  e.alus = alus;
  e.tables = tables;
  e.match_key_bytes = key;
  return e;
}

TEST(Resources, TracksUsage) {
  Resources res((AsicConfig()));
  res.Declare(Entry("a", 0, 1024, 1));
  res.Declare(Entry("b", 3, 2048, 2));
  EXPECT_EQ(res.stages_used(), 4);
  EXPECT_EQ(res.sram_bytes_used(), 3072u);
  EXPECT_EQ(res.alus_used(), 3);
  EXPECT_GT(res.sram_fraction_used(), 0.0);
}

TEST(Resources, RejectsInvalidStage) {
  AsicConfig cfg;
  cfg.num_stages = 4;
  Resources res(cfg);
  EXPECT_THROW(res.Declare(Entry("bad", 4, 1)), CheckFailure);
  EXPECT_THROW(res.Declare(Entry("bad", -1, 1)), CheckFailure);
}

TEST(Resources, RejectsOverWideMatchKey) {
  Resources res((AsicConfig()));  // 16B max
  EXPECT_THROW(res.Declare(Entry("t", 0, 1, 0, 1, 17)), CheckFailure);
  res.Declare(Entry("t", 0, 1, 0, 1, 16));
}

TEST(Resources, EnforcesPerStageSram) {
  AsicConfig cfg;
  cfg.sram_bytes_per_stage = 1000;
  Resources res(cfg);
  res.Declare(Entry("a", 0, 600));
  EXPECT_THROW(res.Declare(Entry("b", 0, 600)), CheckFailure);
  res.Declare(Entry("b", 1, 600));  // another stage has its own budget
}

TEST(Resources, EnforcesPerStageTables) {
  AsicConfig cfg;
  cfg.tables_per_stage = 1;
  Resources res(cfg);
  res.Declare(Entry("t1", 0, 1, 0, 1));
  EXPECT_THROW(res.Declare(Entry("t2", 0, 1, 0, 1)), CheckFailure);
}

TEST(Resources, ReportMentionsEveryObject) {
  Resources res((AsicConfig()));
  res.Declare(Entry("lookup_table", 0, 4096, 0, 1, 16));
  res.Declare(Entry("valid_bits", 1, 128, 1));
  const std::string report = res.Report();
  EXPECT_NE(report.find("lookup_table"), std::string::npos);
  EXPECT_NE(report.find("valid_bits"), std::string::npos);
  EXPECT_NE(report.find("2/12 stages"), std::string::npos);
}

}  // namespace
}  // namespace orbit::rmt
