// Fabric fault tolerance (PR 11): FaultSchedule validation for the fabric
// taxonomy, Gilbert–Elliott burst loss on leaf–spine uplinks with
// per-link seed decorrelation, probe-based failure detection + rerouting
// (fabric/failover.h), graceful cache degradation around leaf crashes,
// and the retries_exhausted accounting the CI quick suite gates on.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "fabric/topology.h"
#include "nocache/program.h"
#include "proto/message.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace orbit {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;
using testbed::ConfigFingerprint;
using testbed::ResultMetrics;
using testbed::RunTestbed;
using testbed::Scheme;
using testbed::TestbedConfig;
using testbed::TestbedResult;

// ---- FaultSchedule::Validate -------------------------------------------

TEST(FabricFaultValidate, AcceptsEveryBuilder) {
  for (const FaultSchedule& s :
       {fault::FabricLinkDownAt(0, 1, kMillisecond, 2 * kMillisecond),
        fault::LeafCrashAt(1, kMillisecond, 2 * kMillisecond),
        fault::SpineCrashAt(0, kMillisecond, 2 * kMillisecond),
        fault::LinkDegradeAt(0, 0, /*dir=*/1, /*loss=*/0.3,
                             /*extra_latency=*/10 * kMicrosecond, kMillisecond,
                             2 * kMillisecond),
        fault::RackPartitionAt(0, kMillisecond, 2 * kMillisecond)}) {
    EXPECT_EQ(s.Validate(), "");
  }
}

TEST(FabricFaultValidate, RejectsMissingOrMalformedTargets) {
  FaultSchedule s;
  s.events.push_back({kMillisecond, FaultKind::kLeafCrash, -1});
  EXPECT_NE(s.Validate().find("needs rack"), std::string::npos)
      << s.Validate();

  s.events.clear();
  FaultEvent link{kMillisecond, FaultKind::kFabricLinkDown, -1};
  link.rack = 0;  // spine left unset
  s.events.push_back(link);
  EXPECT_NE(s.Validate().find("spine"), std::string::npos) << s.Validate();

  // A degrade that degrades nothing is an authoring mistake, not a no-op.
  s.events.clear();
  FaultEvent gray{kMillisecond, FaultKind::kLinkDegrade, -1};
  gray.rack = 0;
  gray.spine = 0;
  gray.dir = 0;
  s.events.push_back(gray);
  EXPECT_NE(s.Validate().find("degrades nothing"), std::string::npos)
      << s.Validate();

  gray.degrade_loss = 1.5;  // out of range
  s.events.back() = gray;
  EXPECT_NE(s.Validate().find("[0,1]"), std::string::npos) << s.Validate();

  gray.degrade_loss = 0.5;
  gray.dir = 2;  // not a direction
  s.events.back() = gray;
  EXPECT_NE(s.Validate().find("dir"), std::string::npos) << s.Validate();
}

TEST(FabricFaultValidate, RejectsOverlapsContradictionsAndZeroLength) {
  // Two crashes of the same leaf with no restart in between.
  FaultSchedule s = fault::LeafCrashAt(0, kMillisecond, 5 * kMillisecond);
  FaultEvent again{2 * kMillisecond, FaultKind::kLeafCrash, -1};
  again.rack = 0;
  s.events.push_back(again);
  EXPECT_NE(s.Validate().find("overlaps"), std::string::npos) << s.Validate();

  // A restart with nothing to restart.
  s.events.clear();
  FaultEvent up{kMillisecond, FaultKind::kLeafRestart, -1};
  up.rack = 0;
  s.events.push_back(up);
  EXPECT_NE(s.Validate().find("no preceding"), std::string::npos)
      << s.Validate();

  // Crash and restart at the same instant: a zero-length fault. (The
  // builders CHECK against this, so it can only be written by hand.)
  s.events.clear();
  FaultEvent down{kMillisecond, FaultKind::kLeafCrash, -1};
  down.rack = 0;
  up.at = kMillisecond;
  s.events.push_back(down);
  s.events.push_back(up);
  EXPECT_NE(s.Validate().find("zero-length"), std::string::npos)
      << s.Validate();

  // Distinct targets at the same instant stay legal (e.g. correlated
  // failures): only same-target same-instant pairs are rejected.
  s = fault::LeafCrashAt(0, kMillisecond, 5 * kMillisecond);
  const FaultSchedule other =
      fault::LeafCrashAt(1, kMillisecond, 5 * kMillisecond);
  s.events.insert(s.events.end(), other.events.begin(), other.events.end());
  EXPECT_EQ(s.Validate(), "");
}

TEST(FabricFaultValidate, RejectsPartitionAndLinkEventInteractions) {
  // A per-link down inside a partition window is redundant/contradictory:
  // the partition already holds every uplink of the rack down.
  FaultSchedule s = fault::RackPartitionAt(0, kMillisecond, 9 * kMillisecond);
  const FaultSchedule link =
      fault::FabricLinkDownAt(0, 0, 2 * kMillisecond, 3 * kMillisecond);
  s.events.insert(s.events.end(), link.events.begin(), link.events.end());
  EXPECT_NE(s.Validate().find("partition"), std::string::npos)
      << s.Validate();

  // And a partition while one of the rack's uplinks is individually down.
  s = fault::FabricLinkDownAt(0, 0, kMillisecond, 9 * kMillisecond);
  const FaultSchedule part =
      fault::RackPartitionAt(0, 2 * kMillisecond, 3 * kMillisecond);
  s.events.insert(s.events.end(), part.events.begin(), part.events.end());
  EXPECT_NE(s.Validate().find("individually down"), std::string::npos)
      << s.Validate();
}

// ---- testbed-level validation ------------------------------------------

// A 2-rack, 2-spine fabric small enough that every end-to-end run here
// finishes in well under a second: 4 servers per rack at 20K RPS each, one
// client per rack, offered load below rack capacity so a fault-free run is
// genuinely timeout-free.
TestbedConfig FaultFabricConfig(Scheme scheme) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.fabric.num_racks = 2;
  cfg.topo.fabric.num_spines = 2;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 8;
  cfg.topo.server_rate_rps = 20'000;
  cfg.topo.client_rate_rps = 120'000;
  cfg.workload.num_keys = 20'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.cache.orbit_cache_size = 16;
  cfg.cache.orbit_capacity = 64;
  cfg.cache.netcache_size = 500;
  cfg.client.max_retries = 2;
  cfg.client.request_timeout = 2 * kMillisecond;
  cfg.warmup = 5 * kMillisecond;
  cfg.duration = 30 * kMillisecond;
  cfg.seed = 11;
  return cfg;
}

// TestbedConfig::Validate returns one message per problem; flatten for
// substring checks.
std::string Errors(const TestbedConfig& cfg) {
  std::string out;
  for (const std::string& e : cfg.Validate()) {
    out += e;
    out += "; ";
  }
  return out;
}

TEST(FabricFaultConfig, TargetsAreCheckedAgainstTheTopology) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault = fault::LeafCrashAt(2, kMillisecond, 2 * kMillisecond);
  EXPECT_NE(Errors(cfg).find("rack"), std::string::npos) << Errors(cfg);

  cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault = fault::SpineCrashAt(2, kMillisecond, 2 * kMillisecond);
  EXPECT_NE(Errors(cfg).find("spine"), std::string::npos) << Errors(cfg);
}

TEST(FabricFaultConfig, FailoverKnobsAreValidated) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.topo.fabric.failover = true;
  EXPECT_TRUE(cfg.Validate().empty()) << Errors(cfg);
  cfg.topo.fabric.detection_window = cfg.topo.fabric.probe_interval / 2;
  EXPECT_NE(Errors(cfg).find("detection_window"), std::string::npos)
      << Errors(cfg);
}

TEST(FabricFaultConfig, FabricFaultsAreRejectedOnSingleSwitchTestbeds) {
  TestbedConfig cfg;  // single switch
  cfg.fault = fault::LeafCrashAt(0, kMillisecond, 2 * kMillisecond);
  EXPECT_FALSE(cfg.Validate().empty());

  cfg = TestbedConfig{};
  cfg.fault.fabric_burst_loss.p_enter_bad = 0.01;
  EXPECT_FALSE(cfg.Validate().empty());

  cfg = TestbedConfig{};
  cfg.topo.fabric.failover = true;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(FabricFaultConfig, FailoverAndFabricFaultsFeedTheFingerprint) {
  const TestbedConfig base = FaultFabricConfig(Scheme::kOrbitCache);
  EXPECT_EQ(ConfigFingerprint(base).find("failover"), std::string::npos)
      << "failover-off configs keep their pre-failover serialization";

  TestbedConfig fo = base;
  fo.topo.fabric.failover = true;
  EXPECT_NE(ConfigFingerprint(fo).find("failover"), std::string::npos);
  TestbedConfig narrow = fo;
  narrow.topo.fabric.detection_window = 250 * kMicrosecond;
  EXPECT_NE(ConfigFingerprint(fo), ConfigFingerprint(narrow));

  TestbedConfig crash = base;
  crash.fault = fault::LeafCrashAt(0, kMillisecond, 2 * kMillisecond);
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(crash));
  TestbedConfig burst = base;
  burst.fault.fabric_burst_loss.p_enter_bad = 0.01;
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(burst));
  EXPECT_NE(ConfigFingerprint(crash), ConfigFingerprint(burst));
}

// ---- burst loss on uplinks ---------------------------------------------

class SeqSink : public sim::Node {
 public:
  explicit SeqSink(std::string name) : name_(std::move(name)) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    seqs.insert(pkt->msg.seq);
  }
  std::string name() const override { return name_; }
  std::set<uint32_t> seqs;

 private:
  std::string name_;
};

TEST(FabricBurstLoss, UplinksLoseInBurstsWithPerLinkDecorrelation) {
  // Two streams from rack 0 to rack 1, one per spine (dst % 2 picks the
  // spine), over uplinks sharing one Gilbert–Elliott config and one
  // config-level seed. Interleaved sends make every uplink see the same
  // seq sequence, so if per-link seed mixing were broken the two streams
  // would lose exactly the same seqs. They must not — and each stream's
  // losses must cluster into bursts, not independent singles.
  sim::Simulator sim;
  sim::Network net(&sim);
  fabric::TopologySpec tspec;
  tspec.num_racks = 2;
  tspec.num_spines = 2;
  tspec.uplink.burst_loss.p_enter_bad = 0.05;
  tspec.uplink.burst_loss.p_exit_bad = 0.2;
  tspec.uplink.burst_loss.loss_bad = 1.0;
  tspec.uplink.loss_seed = 7;
  fabric::FabricTopology topo(&sim, &net, tspec);
  nocache::ForwardProgram fwd[4];
  topo.leaf(0).SetProgram(&fwd[0]);
  topo.leaf(1).SetProgram(&fwd[1]);
  topo.spine(0).SetProgram(&fwd[2]);
  topo.spine(1).SetProgram(&fwd[3]);

  SeqSink sender("sender"), even("even"), odd("odd");
  const Addr kSender = 10, kEven = 4, kOdd = 5;
  (void)topo.AttachHost(&sender, kSender, /*rack=*/0, sim::LinkConfig{});
  (void)topo.AttachHost(&even, kEven, /*rack=*/1, sim::LinkConfig{});
  (void)topo.AttachHost(&odd, kOdd, /*rack=*/1, sim::LinkConfig{});

  constexpr uint32_t kN = 2000;
  for (uint32_t i = 0; i < kN; ++i) {
    for (const Addr dst : {kEven, kOdd}) {
      proto::Message msg;
      msg.op = proto::Op::kReadReq;
      msg.seq = i;
      msg.key = "burst-key";
      msg.hkey = HashKey128(msg.key);
      net.Send(&sender, 0,
               sim::MakePacket(kSender, dst, 9000, 5008, std::move(msg)));
    }
  }
  sim.RunToCompletion();

  ASSERT_GT(even.seqs.size(), 0u);
  ASSERT_LT(even.seqs.size(), kN);
  ASSERT_GT(odd.seqs.size(), 0u);
  ASSERT_LT(odd.seqs.size(), kN);
  EXPECT_NE(even.seqs, odd.seqs)
      << "uplinks through different spines must draw decorrelated loss";

  // Loss is visible in the uplink channel stats, on more than one link.
  int lossy_links = 0;
  for (int r = 0; r < 2; ++r)
    for (int s = 0; s < 2; ++s)
      if (topo.uplink(r, s)->stats(0).lost + topo.uplink(r, s)->stats(1).lost >
          0)
        ++lossy_links;
  EXPECT_GE(lossy_links, 2);

  // Burstiness: mean run length of consecutive losses well above the ~1 an
  // independent-loss model would give at the same rate.
  const auto mean_run = [](const std::set<uint32_t>& delivered) {
    uint64_t lost = 0, runs = 0;
    bool in_run = false;
    for (uint32_t i = 0; i < kN; ++i) {
      const bool dropped = delivered.count(i) == 0;
      if (dropped) ++lost;
      if (dropped && !in_run) ++runs;
      in_run = dropped;
    }
    return runs > 0 ? static_cast<double>(lost) / static_cast<double>(runs)
                    : 0.0;
  };
  EXPECT_GT(mean_run(even.seqs), 2.0);
  EXPECT_GT(mean_run(odd.seqs), 2.0);
}

TEST(FabricBurstLoss, TestbedRunAbsorbsUplinkBurstsWithRetries) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault.fabric_burst_loss.p_enter_bad = 0.02;
  cfg.fault.fabric_burst_loss.p_exit_bad = 0.3;
  cfg.fault.fabric_burst_loss.loss_bad = 1.0;
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 0.0);
  EXPECT_GT(res.retransmissions, 0u)
      << "bursty uplinks must cost some retransmissions";
  EXPECT_EQ(res.stale_reads, 0u);
}

// ---- failure detection and rerouting -----------------------------------

TEST(FabricFailover, HealthyFabricNeverReroutesOrTimesOut) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.topo.fabric.failover = true;
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 0.0);
  EXPECT_EQ(res.reroutes, 0u);
  EXPECT_EQ(res.blackholed_packets, 0u);
  EXPECT_EQ(res.timeouts, 0u);
  EXPECT_EQ(res.retries_exhausted, 0u)
      << "a fault-free run must never exhaust a retry budget";
}

TEST(FabricFailover, SpineCrashReroutesWithinTheDetectionWindow) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault = fault::SpineCrashAt(1, 12 * kMillisecond, 24 * kMillisecond);
  cfg.verify.enabled = true;

  // Without failover, static addr % 2 routing pins half the flows to the
  // dead spine for the full 12ms outage: their retries blackhole too.
  const TestbedResult stat = RunTestbed(cfg);
  EXPECT_EQ(stat.faults_injected, 2u);
  EXPECT_EQ(stat.reroutes, 0u);
  EXPECT_GT(stat.blackholed_packets, 0u);
  EXPECT_GT(stat.retries_exhausted, 0u);
  EXPECT_EQ(stat.verify_violations, 0u) << stat.verify_report;

  // With failover, probe timeouts declare the four dead legs within the
  // detection window and reroute everything over spine 0.
  cfg.topo.fabric.failover = true;
  const TestbedResult fo = RunTestbed(cfg);
  EXPECT_EQ(fo.faults_injected, 2u);
  EXPECT_GT(fo.reroutes, 0u);
  EXPECT_LT(fo.retries_exhausted, stat.retries_exhausted)
      << "rerouting must save most of the requests static routing loses";
  EXPECT_LT(fo.blackholed_packets, stat.blackholed_packets);
  EXPECT_GT(fo.rx_rps, stat.rx_rps);
  EXPECT_EQ(fo.stale_reads, 0u);
  EXPECT_EQ(fo.verify_violations, 0u) << fo.verify_report;
}

TEST(FabricFailover, AsymmetricGrayLinkIsDetectedByProbeLoss) {
  // A gray uplink that eats only the leaf->spine direction never takes the
  // link administratively down, but it starves the prober of acks — the
  // round-trip liveness model must declare it dead and reroute, with zero
  // blackholed packets (the link is up; drops count as injected loss).
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.topo.fabric.failover = true;
  cfg.fault = fault::LinkDegradeAt(/*rack=*/0, /*spine=*/0, /*dir=*/0,
                                   /*loss=*/1.0, /*extra_latency=*/0,
                                   12 * kMillisecond, 24 * kMillisecond);
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 2u);
  EXPECT_GT(res.reroutes, 0u) << "gray link must be detected and routed out";
  EXPECT_EQ(res.blackholed_packets, 0u);
  EXPECT_GT(res.rx_rps, 0.0);
}

TEST(FabricFailover, FaultedRunsAreDeterministic) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.topo.fabric.failover = true;
  cfg.fault = fault::SpineCrashAt(1, 12 * kMillisecond, 24 * kMillisecond);
  const TestbedResult a = RunTestbed(cfg);
  const TestbedResult b = RunTestbed(cfg);
  EXPECT_EQ(ResultMetrics(a).Dump(), ResultMetrics(b).Dump());
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// ---- graceful cache degradation ----------------------------------------

TEST(FabricDegradation, LeafCrashDegradesToPassThroughThenRebuilds) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault = fault::LeafCrashAt(0, 12 * kMillisecond, 24 * kMillisecond,
                                 /*rebuild_delay=*/kMillisecond);
  cfg.verify.enabled = true;
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 3u) << "crash + restart + rebuild";
  EXPECT_GT(res.rx_rps, 0.0) << "the degraded leaf still forwards";
  EXPECT_GT(res.cache_served_rps, 0.0);
  EXPECT_EQ(res.stale_reads, 0u);
  // After the heal the fabric controller withdrew the survivors' extras
  // and rebuilt leaf 0 from its shadow copy: both leaves are back to their
  // preloaded 16 entries.
  EXPECT_EQ(res.cache_entries, 32u);
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
}

TEST(FabricDegradation, SurvivorsAreToppedUpWhileALeafIsDown) {
  // Crash without restart: the run ends while rack 0 is degraded, so the
  // end-of-run census sees leaf 0 empty (pass-through) and leaf 1 holding
  // its own 16 preloaded entries plus the standby keys the fabric
  // controller installed when the crash landed.
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  FaultEvent crash{12 * kMillisecond, FaultKind::kLeafCrash, -1};
  crash.rack = 0;
  cfg.fault.events.push_back(crash);
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 1u);
  EXPECT_GT(res.cache_entries, 16u)
      << "the surviving leaf must hold extras beyond its preload";
  EXPECT_LE(res.cache_entries, 32u);
  EXPECT_GT(res.rx_rps, 0.0);
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(FabricDegradation, NetCacheLeavesDegradeToo) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kNetCache);
  cfg.fault = fault::LeafCrashAt(0, 12 * kMillisecond, 24 * kMillisecond,
                                 /*rebuild_delay=*/kMillisecond);
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 3u);
  EXPECT_GT(res.rx_rps, 0.0);
  EXPECT_GT(res.cache_served_rps, 0.0)
      << "the rebuilt leaf serves from cache again";
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(FabricDegradation, RackPartitionIsolatesThenHeals) {
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  cfg.fault = fault::RackPartitionAt(0, 12 * kMillisecond, 24 * kMillisecond);
  cfg.verify.enabled = true;
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 2u);
  EXPECT_GT(res.blackholed_packets, 0u)
      << "cross-rack traffic blackholes while partitioned";
  EXPECT_GT(res.rx_rps, 0.0) << "intra-rack service survives the partition";
  EXPECT_EQ(res.stale_reads, 0u);
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
}

// ---- retries_exhausted accounting --------------------------------------

TEST(RetriesExhausted, ZeroWithoutFaultsNonzeroUnderABlackhole) {
  // Fault-free: the retry budget exists but is never touched — this is the
  // invariant the CI quick suite asserts over every record.
  TestbedConfig cfg = FaultFabricConfig(Scheme::kOrbitCache);
  const TestbedResult clean = RunTestbed(cfg);
  EXPECT_EQ(clean.timeouts, 0u);
  EXPECT_EQ(clean.retries_exhausted, 0u);

  // A long dead uplink without failover blackholes one spine's flows past
  // any retry budget: every such timeout spent its whole budget first.
  cfg.fault = fault::FabricLinkDownAt(0, 1, 10 * kMillisecond,
                                      30 * kMillisecond);
  const TestbedResult dark = RunTestbed(cfg);
  EXPECT_GT(dark.retries_exhausted, 0u);
  EXPECT_EQ(dark.retries_exhausted, dark.timeouts)
      << "with max_retries > 0 every timeout is an exhausted budget";
  EXPECT_GT(dark.blackholed_packets, 0u);

  // Without a retry budget the same outage is timeouts-only.
  cfg.client.max_retries = 0;
  const TestbedResult no_budget = RunTestbed(cfg);
  EXPECT_GT(no_budget.timeouts, 0u);
  EXPECT_EQ(no_budget.retries_exhausted, 0u);
}

}  // namespace
}  // namespace orbit
