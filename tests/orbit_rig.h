// A small hand-wired OrbitCache deployment for protocol-level integration
// tests: one switch, a scriptable client port, N storage servers, and an
// optional controller. Unlike the testbed (which drives statistical
// workloads), the rig sends individual packets and inspects individual
// replies, so tests can exercise exact protocol interleavings.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "apps/server.h"
#include "kv/partition.h"
#include "orbitcache/controller.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::testrig {

constexpr L4Port kPort = 5008;
constexpr Addr kClientAddr = 1;
constexpr Addr kControllerAddr = 900;
constexpr Addr kServerBase = 100;

struct RigConfig {
  oc::OrbitConfig orbit;
  int num_servers = 2;
  double server_rate_rps = 0;  // unthrottled by default
  bool multi_packet_servers = false;
  uint32_t value_size = 64;
  bool with_controller = false;
  oc::ControllerConfig controller;
  // Link used for switch<->server connections (loss injection etc.).
  sim::LinkConfig server_link;
};

class Rig {
 public:
  struct Reply {
    proto::Message msg;
    SimTime at = 0;
  };

  // Records every packet delivered to the client address.
  class ClientPort : public sim::Node {
   public:
    explicit ClientPort(sim::Simulator* sim) : sim_(sim) {}
    void OnPacket(sim::PacketPtr pkt, int) override {
      replies.push_back({pkt->msg, sim_->now()});
    }
    std::string name() const override { return "rig-client"; }
    std::vector<Reply> replies;

   private:
    sim::Simulator* sim_;
  };

  explicit Rig(const RigConfig& config)
      : config_(config),
        net_(&sim_),
        sw_(&sim_, &net_, "rig-tor", rmt::AsicConfig{}),
        partitioner_(static_cast<uint32_t>(config.num_servers)),
        client_(&sim_) {
    program_ = std::make_unique<oc::OrbitProgram>(&sw_, config.orbit);
    sw_.SetProgram(program_.get());

    auto c = net_.Connect(&client_, &sw_, sim::LinkConfig{});
    sw_.AddRoute(kClientAddr, c.port_b);
    program_->RegisterCloneTarget(kClientAddr, c.port_b);

    for (int i = 0; i < config.num_servers; ++i) {
      app::ServerConfig scfg;
      scfg.addr = kServerBase + static_cast<Addr>(i);
      scfg.srv_id = static_cast<uint8_t>(i);
      scfg.orbit_port = kPort;
      scfg.service_rate_rps = config.server_rate_rps;
      scfg.multi_packet = config.multi_packet_servers;
      const uint32_t vs = config.value_size;
      servers_.push_back(std::make_unique<app::ServerNode>(
          &sim_, &net_, 0, scfg, [vs](const Key&) { return vs; }));
      sim::LinkConfig slink = config.server_link;
      slink.loss_seed = config.server_link.loss_seed + static_cast<uint64_t>(i);
      auto s = net_.Connect(servers_.back().get(), &sw_, slink);
      sw_.AddRoute(scfg.addr, s.port_b);
      program_->RegisterCloneTarget(scfg.addr, s.port_b);  // snapshot forks
      server_addrs_.push_back(scfg.addr);
    }

    if (config.with_controller) {
      controller_ = std::make_unique<oc::Controller>(
          &sim_, &net_, program_.get(), &partitioner_, server_addrs_,
          kControllerAddr, 0, config.controller);
      auto k = net_.Connect(controller_.get(), &sw_, sim::LinkConfig{});
      sw_.AddRoute(kControllerAddr, k.port_b);
      program_->RegisterCloneTarget(kControllerAddr, k.port_b);
      program_->SetRefetchFn([this](const Key& key, const Hash128& hkey,
                                    Addr server) {
        controller_->RequestRefetch(key, hkey, server);
      });
    } else {
      // Route fetch acks somewhere harmless.
      auto k = net_.Connect(&client_, &sw_, sim::LinkConfig{});
      sw_.AddRoute(kControllerAddr, k.port_b);
      program_->RegisterCloneTarget(kControllerAddr, k.port_b);
    }
  }

  Addr ServerAddrFor(const Key& key) const {
    return kServerBase + partitioner_.ServerFor(key);
  }
  app::ServerNode& ServerFor(const Key& key) {
    return *servers_[partitioner_.ServerFor(key)];
  }

  void SendRead(const Key& key, uint32_t seq) {
    Send(proto::Op::kReadReq, key, seq, kv::Value());
  }
  void SendWrite(const Key& key, uint32_t seq, uint32_t size,
                 uint64_t version = 0) {
    Send(proto::Op::kWriteReq, key, seq, kv::Value::Synthetic(size, version));
  }
  void SendCorrection(const Key& key, uint32_t seq) {
    Send(proto::Op::kCorrectionReq, key, seq, kv::Value());
  }
  // Controller-less manual fetch: makes the servers mint a cache packet.
  void SendFetch(const Key& key, uint32_t seq = 0) {
    proto::Message msg;
    msg.op = proto::Op::kFetchReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_.Send(&client_, 0,
              sim::MakePacket(kControllerAddr, ServerAddrFor(key), kPort,
                              kPort, std::move(msg)));
  }

  // Installs `key` at `idx` and fetches its value, then settles.
  void CacheAndFetch(const Key& key, uint32_t idx) {
    program_->InsertEntry(HashKey128(key), idx);
    SendFetch(key);
    Settle();
  }

  void Run(SimTime duration) { sim_.RunUntil(sim_.now() + duration); }
  // Long enough for any in-flight exchange to finish.
  void Settle() { Run(200 * kMicrosecond); }

  const Reply* FindReply(uint32_t seq) const {
    for (const auto& r : client_.replies)
      if (r.msg.seq == seq) return &r;
    return nullptr;
  }
  size_t CountReplies(uint32_t seq) const {
    size_t n = 0;
    for (const auto& r : client_.replies)
      if (r.msg.seq == seq) ++n;
    return n;
  }

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  rmt::SwitchDevice& sw() { return sw_; }
  oc::OrbitProgram& program() { return *program_; }
  oc::Controller& controller() { return *controller_; }
  ClientPort& client() { return client_; }

 private:
  void Send(proto::Op op, const Key& key, uint32_t seq, kv::Value value) {
    proto::Message msg;
    msg.op = op;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    msg.value = std::move(value);
    net_.Send(&client_, 0,
              sim::MakePacket(kClientAddr, ServerAddrFor(key), 9000, kPort,
                              std::move(msg)));
  }

  RigConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  rmt::SwitchDevice sw_;
  kv::Partitioner partitioner_;
  ClientPort client_;
  std::unique_ptr<oc::OrbitProgram> program_;
  std::vector<std::unique_ptr<app::ServerNode>> servers_;
  std::vector<Addr> server_addrs_;
  std::unique_ptr<oc::Controller> controller_;
};

}  // namespace orbit::testrig
