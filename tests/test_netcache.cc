// NetCache baseline behaviour — including the size limitations that
// motivate OrbitCache (§2.1).
#include "netcache/program.h"

#include <gtest/gtest.h>

#include "apps/server.h"
#include "kv/partition.h"
#include "netcache/controller.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::nc {
namespace {

constexpr L4Port kPort = 5008;
constexpr Addr kClientAddr = 1, kServerAddr = 100, kCtrlAddr = 900;

class NetRig {
 public:
  struct Reply {
    proto::Message msg;
    SimTime at;
  };
  class ClientPort : public sim::Node {
   public:
    explicit ClientPort(sim::Simulator* sim) : sim_(sim) {}
    void OnPacket(sim::PacketPtr pkt, int) override {
      replies.push_back({pkt->msg, sim_->now()});
    }
    std::string name() const override { return "nc-client"; }
    std::vector<Reply> replies;
    sim::Simulator* sim_;
  };

  explicit NetRig(const NetConfig& cfg, uint32_t value_size = 48)
      : net_(&sim_),
        sw_(&sim_, &net_, "nc-tor", rmt::AsicConfig{}),
        client_(&sim_),
        partitioner_(1) {
    program_ = std::make_unique<NetProgram>(&sw_, cfg);
    sw_.SetProgram(program_.get());
    app::ServerConfig scfg;
    scfg.addr = kServerAddr;
    scfg.orbit_port = kPort;
    scfg.service_rate_rps = 0;
    server_ = std::make_unique<app::ServerNode>(
        &sim_, &net_, 0, scfg,
        [value_size](const Key&) { return value_size; });

    auto c = net_.Connect(&client_, &sw_, sim::LinkConfig{});
    auto s = net_.Connect(server_.get(), &sw_, sim::LinkConfig{});
    auto k = net_.Connect(&client_, &sw_, sim::LinkConfig{});
    sw_.AddRoute(kClientAddr, c.port_b);
    sw_.AddRoute(kServerAddr, s.port_b);
    sw_.AddRoute(kCtrlAddr, k.port_b);
  }

  void Send(proto::Op op, const Key& key, uint32_t seq, uint32_t size = 0) {
    proto::Message msg;
    msg.op = op;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    if (op == proto::Op::kWriteReq) msg.value = kv::Value::Synthetic(size, 0);
    net_.Send(&client_, 0,
              sim::MakePacket(kClientAddr, kServerAddr, 9000, kPort,
                              std::move(msg)));
  }
  void Fetch(const Key& key) {
    proto::Message msg;
    msg.op = proto::Op::kFetchReq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_.Send(&client_, 0,
              sim::MakePacket(kCtrlAddr, kServerAddr, kPort, kPort,
                              std::move(msg)));
  }
  void CacheAndFetch(const Key& key, uint32_t idx) {
    ASSERT_TRUE(program_->InsertEntry(key, idx));
    Fetch(key);
    Settle();
  }
  void Settle() { sim_.RunUntil(sim_.now() + 200 * kMicrosecond); }
  const Reply* FindReply(uint32_t seq) const {
    for (const auto& r : client_.replies)
      if (r.msg.seq == seq) return &r;
    return nullptr;
  }

  sim::Simulator sim_;
  sim::Network net_;
  rmt::SwitchDevice sw_;
  ClientPort client_;
  kv::Partitioner partitioner_;
  std::unique_ptr<NetProgram> program_;
  std::unique_ptr<app::ServerNode> server_;
};

NetConfig SmallConfig() {
  NetConfig cfg;
  cfg.capacity = 16;
  cfg.hot_threshold = 4;
  return cfg;
}

TEST(NetCache, ServesCachedItemFromSwitchMemory) {
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000001";
  rig.CacheAndFetch(key, 0);
  const uint64_t reads = rig.server_->stats().reads;

  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kReadRep);
  EXPECT_EQ(reply->msg.cached, 1);
  EXPECT_EQ(reply->msg.key, key);
  EXPECT_EQ(reply->msg.value.size(), 48u);
  EXPECT_EQ(rig.server_->stats().reads, reads);
  // Byte-exact value reconstruction from the word registers.
  auto srv_value = rig.server_->store().Get(key);
  ASSERT_TRUE(srv_value.has_value());
  EXPECT_TRUE(reply->msg.value.ContentEquals(*srv_value, key));
}

TEST(NetCache, MissForwardsToServer) {
  NetRig rig(SmallConfig());
  rig.Send(proto::Op::kReadReq, "nckey-0000000002", 1);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.cached, 0);
  EXPECT_EQ(rig.program_->stats().read_misses, 1u);
}

TEST(NetCache, CannotCacheWideKeys) {
  NetRig rig(SmallConfig());
  // 17-byte key: exceeds the 16B match-key width — hardware says no.
  EXPECT_THROW(rig.program_->InsertEntry(std::string(17, 'k'), 0),
               CheckFailure);
}

TEST(NetCache, SelfEvictsValuesBeyondStageBudget) {
  // 8 stages x 8B = 64B. A 100B value cannot live in switch memory: the
  // fetch completes but the data plane evicts the entry and reports it.
  NetRig rig(SmallConfig(), /*value_size=*/100);
  const Key key = "nckey-0000000003";
  ASSERT_TRUE(rig.program_->InsertEntry(key, 0));
  rig.Fetch(key);
  rig.Settle();
  EXPECT_FALSE(rig.program_->FindIdx(key).has_value());
  EXPECT_EQ(rig.program_->stats().uncacheable_values, 1u);
  auto evicted = rig.program_->DrainSelfEvictions();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key);
  // Requests fall through to the server.
  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.FindReply(1)->msg.cached, 0);
}

TEST(NetCache, Exactly64ByteValueFits) {
  NetRig rig(SmallConfig(), /*value_size=*/64);
  const Key key = "nckey-0000000004";
  rig.CacheAndFetch(key, 0);
  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.FindReply(1)->msg.cached, 1);
  EXPECT_EQ(rig.FindReply(1)->msg.value.size(), 64u);
}

TEST(NetCache, WriteInvalidatesThenWriteReplyRefreshes) {
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000005";
  rig.CacheAndFetch(key, 0);
  const uint32_t idx = *rig.program_->FindIdx(key);

  rig.Send(proto::Op::kWriteReq, key, 1, /*size=*/32);
  rig.sim_.RunUntil(rig.sim_.now() + 2 * kMicrosecond);
  EXPECT_FALSE(rig.program_->IsValid(idx));
  rig.Settle();
  EXPECT_TRUE(rig.program_->IsValid(idx));

  rig.Send(proto::Op::kReadReq, key, 2);
  rig.Settle();
  const auto* read = rig.FindReply(2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.cached, 1);
  EXPECT_EQ(read->msg.value.size(), 32u);
  EXPECT_EQ(read->msg.value.version(), 2u);
}

TEST(NetCache, LostNewestWriteReplyCannotRevalidateStaleValue) {
  // The stale-revalidation race the verification swarm caught: two writes
  // pass the switch (both invalidate), the first write's reply arrives and
  // the second write's reply is lost. Revalidating from the first reply
  // would pin the cache at the older version while the store holds the
  // newer one — the entry must instead stay invalid so reads fall through.
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000014";
  rig.CacheAndFetch(key, 0);
  const uint32_t idx = *rig.program_->FindIdx(key);

  auto make = [&](proto::Op op, uint8_t flag, uint32_t epoch, uint64_t ver) {
    proto::Message msg;
    msg.op = op;
    msg.hkey = HashKey128(key);
    msg.key = key;
    msg.flag = flag;
    msg.epoch = epoch;
    if (op == proto::Op::kWriteRep) msg.value = kv::Value::Synthetic(32, ver);
    return sim::MakePacket(kClientAddr, kServerAddr, 9000, kPort,
                           std::move(msg));
  };

  // Both write requests pass the switch before either reply returns.
  auto w1 = make(proto::Op::kWriteReq, 0, 0, 0);
  auto w2 = make(proto::Op::kWriteReq, 0, 0, 0);
  rig.program_->Ingress(*w1, rig.sw_);
  rig.program_->Ingress(*w2, rig.sw_);
  EXPECT_FALSE(rig.program_->IsValid(idx));

  // The first write's reply (server version 2) echoes the older epoch; the
  // second write's reply (version 3) is lost in transit.
  auto rep1 = make(proto::Op::kWriteRep, w1->msg.flag, w1->msg.epoch, 2);
  rig.program_->Ingress(*rep1, rig.sw_);
  EXPECT_FALSE(rig.program_->IsValid(idx))
      << "an overtaken reply revalidated the entry with a stale value";
  EXPECT_EQ(rig.program_->stats().stale_revalidations, 1u);

  // Reads fall through to the server (fresh data) instead of the cache.
  rig.Send(proto::Op::kReadReq, key, 7);
  rig.Settle();
  ASSERT_NE(rig.FindReply(7), nullptr);
  EXPECT_EQ(rig.FindReply(7)->msg.cached, 0);

  // A current-epoch reply (a later write completing normally) recovers.
  auto w3 = make(proto::Op::kWriteReq, 0, 0, 0);
  rig.program_->Ingress(*w3, rig.sw_);
  auto rep3 = make(proto::Op::kWriteRep, w3->msg.flag, w3->msg.epoch, 4);
  rig.program_->Ingress(*rep3, rig.sw_);
  EXPECT_TRUE(rig.program_->IsValid(idx));
}

TEST(NetCache, InvalidEntryReadsGoToServer) {
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000006";
  ASSERT_TRUE(rig.program_->InsertEntry(key, 0));  // no fetch: invalid
  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.FindReply(1)->msg.cached, 0);
  EXPECT_EQ(rig.program_->stats().invalid_to_server, 1u);
}

TEST(NetCache, HotUncachedKeysAreReported) {
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000007";
  for (uint32_t i = 0; i < 10; ++i) {
    rig.Send(proto::Op::kReadReq, key, 100 + i);
    rig.sim_.RunUntil(rig.sim_.now() + 10 * kMicrosecond);
  }
  auto reports = rig.program_->DrainHotReports();
  ASSERT_EQ(reports.size(), 1u) << "deduplicated by the report filter";
  EXPECT_EQ(reports[0].first, key);
  EXPECT_GE(reports[0].second, 4u);
  EXPECT_TRUE(rig.program_->DrainHotReports().empty());
}

TEST(NetCache, PopularityCountersReadAndReset) {
  NetRig rig(SmallConfig());
  const Key key = "nckey-0000000008";
  rig.CacheAndFetch(key, 0);
  for (uint32_t i = 0; i < 3; ++i) {
    rig.Send(proto::Op::kReadReq, key, 200 + i);
    rig.sim_.RunUntil(rig.sim_.now() + 10 * kMicrosecond);
  }
  auto pop = rig.program_->ReadAndResetPopularity();
  EXPECT_EQ(pop[0], 3u);
  EXPECT_EQ(rig.program_->ReadAndResetPopularity()[0], 0u);
}

TEST(NetCache, ResourceFootprintUsesValueStages) {
  NetRig rig(SmallConfig());
  // lookup(0) + state(1) + 8 value stages (2..9) + sketch(10) + l3(11).
  EXPECT_EQ(rig.sw_.resources().stages_used(), 12);
  EXPECT_EQ(rig.program_->max_value_bytes(), 64u);
}

TEST(NetCacheRecircRead, LargeValueServedOverMultiplePasses) {
  // The §2.2 strawman: a 256B value takes ceil(256/64) = 4 passes, i.e.
  // 3 request recirculations, before the reply leaves.
  NetConfig cfg = SmallConfig();
  cfg.recirc_read_mode = true;
  NetRig rig(cfg, /*value_size=*/256);
  const Key key = "nckey-0000000010";
  rig.CacheAndFetch(key, 0);

  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.cached, 1);
  EXPECT_EQ(reply->msg.value.size(), 256u);
  EXPECT_EQ(rig.program_->stats().request_recircs, 3u);
  // Byte-exact reconstruction across the register words + extended slices.
  auto srv_value = rig.server_->store().Get(key);
  ASSERT_TRUE(srv_value.has_value());
  EXPECT_TRUE(reply->msg.value.ContentEquals(*srv_value, key));
}

TEST(NetCacheRecircRead, OnePassValuesNeverRecirculate) {
  NetConfig cfg = SmallConfig();
  cfg.recirc_read_mode = true;
  NetRig rig(cfg, /*value_size=*/64);
  const Key key = "nckey-0000000011";
  rig.CacheAndFetch(key, 0);
  rig.Send(proto::Op::kReadReq, key, 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.program_->stats().request_recircs, 0u);
  EXPECT_EQ(rig.sw_.stats().recirc_packets, 0u);
}

TEST(NetCacheRecircRead, RecircLoadScalesWithRequests) {
  // The architectural flaw: recirculation-port load is proportional to the
  // hit rate — unlike OrbitCache's constant ring.
  NetConfig cfg = SmallConfig();
  cfg.recirc_read_mode = true;
  NetRig rig(cfg, /*value_size=*/512);  // 8 passes -> 7 recircs each
  const Key key = "nckey-0000000012";
  rig.CacheAndFetch(key, 0);
  for (uint32_t i = 0; i < 20; ++i) {
    rig.Send(proto::Op::kReadReq, key, 100 + i);
    rig.sim_.RunUntil(rig.sim_.now() + 20 * kMicrosecond);
  }
  EXPECT_EQ(rig.program_->stats().request_recircs, 20u * 7);
}

TEST(NetCacheRecircRead, StillCannotCacheBeyondTheMode) {
  NetConfig cfg = SmallConfig();
  cfg.recirc_read_mode = true;
  cfg.recirc_read_max_bytes = 1024;
  NetRig rig(cfg, /*value_size=*/1416);
  const Key key = "nckey-0000000013";
  ASSERT_TRUE(rig.program_->InsertEntry(key, 0));
  rig.Fetch(key);
  rig.Settle();
  EXPECT_FALSE(rig.program_->FindIdx(key).has_value())
      << "1416B exceeds even the strawman's budget";
}

TEST(NetCache, RejectsConfigThatCannotFitThePipeline) {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "sw", rmt::AsicConfig{});
  NetConfig bad;
  bad.value_stages = 20;  // 12-stage ASIC cannot hold it
  EXPECT_THROW(NetProgram(&sw, bad), CheckFailure);
}

}  // namespace
}  // namespace orbit::nc
