// Result files round-trip through JSONL and compare with a relative
// tolerance plus an absolute slack floor — the contract behind the CI
// regression gate (tools/bench_compare vs the committed baseline).
#include "harness/compare.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/metrics.h"

namespace orbit::harness {
namespace {

MetricsRecord MakeRecord(const std::string& experiment,
                         const std::string& scheme, int point,
                         double rx_mrps) {
  MetricsRecord r;
  r.experiment = experiment;
  r.point = point;
  r.rep = 0;
  r.seed = 42;
  r.params = {{"scheme", scheme}};
  r.metrics.Set("rx_mrps", rx_mrps);
  r.metrics.Set("read_p99_us", 120.5);
  return r;
}

TEST(MetricsRecord, JsonlRoundTripPreservesEverything) {
  std::vector<MetricsRecord> records = {
      MakeRecord("fig09", "NoCache", 0, 1.25),
      MakeRecord("fig09", "OrbitCache", 1, 4.5)};
  records[1].seed = ~uint64_t{0};  // full uint64 range must survive
  records[1].error = "timed out";

  const std::string text = DumpJsonl(records);
  std::vector<MetricsRecord> back;
  std::string error;
  ASSERT_TRUE(ParseJsonl(text, &back, &error)) << error;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].Key(), records[0].Key());
  EXPECT_EQ(back[1].seed, ~uint64_t{0});
  EXPECT_EQ(back[1].error, "timed out");
  EXPECT_DOUBLE_EQ(back[0].Metric("rx_mrps"), 1.25);
  // Byte stability: dumping the parse is the identity.
  EXPECT_EQ(DumpJsonl(back), text);
}

TEST(MetricsRecord, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/compare_rt.jsonl";
  const std::vector<MetricsRecord> records = {
      MakeRecord("fig12", "NetCache", 3, 2.0)};
  std::string error;
  ASSERT_TRUE(WriteJsonlFile(path, records, &error)) << error;
  std::vector<MetricsRecord> back;
  ASSERT_TRUE(ReadJsonlFile(path, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].Key(), records[0].Key());
  std::remove(path.c_str());
}

TEST(CompareResults, IdenticalFilesMatch) {
  const std::vector<MetricsRecord> a = {MakeRecord("fig09", "NoCache", 0, 1.25)};
  const CompareReport report = CompareResults(a, a, CompareOptions{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.matched, 1u);
  EXPECT_GE(report.metrics_compared, 2u);
}

TEST(CompareResults, DriftBeyondToleranceFails) {
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 10.0)};
  const std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 12.0)};
  CompareOptions options;
  options.tolerance = 0.05;
  const CompareReport tight = CompareResults(a, b, options);
  EXPECT_FALSE(tight.ok());
  ASSERT_EQ(tight.diffs.size(), 1u);
  EXPECT_EQ(tight.diffs[0].metric, "rx_mrps");

  options.tolerance = 0.25;  // 20% drift within a 25% tolerance
  EXPECT_TRUE(CompareResults(a, b, options).ok());
}

TEST(CompareResults, SlackFloorsTinyAbsoluteWobble) {
  // 0.001 vs 0.003 is a 200% relative difference but far below the
  // absolute slack — near-zero metrics must not trip the gate.
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 0.001)};
  const std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 0.003)};
  CompareOptions options;
  options.tolerance = 0.05;
  options.slack = 0.02;
  EXPECT_TRUE(CompareResults(a, b, options).ok());
  options.slack = 0;
  EXPECT_FALSE(CompareResults(a, b, options).ok());
}

TEST(CompareResults, MissingRecordsAndAsymmetricErrorsFail) {
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 1.0),
                                        MakeRecord("e", "t", 1, 2.0)};
  std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 1.0)};
  const CompareReport missing = CompareResults(a, b, CompareOptions{});
  EXPECT_FALSE(missing.ok());
  ASSERT_EQ(missing.only_a.size(), 1u);

  b = a;
  b[1].error = "deadline exceeded";
  const CompareReport asym = CompareResults(a, b, CompareOptions{});
  EXPECT_FALSE(asym.ok());
  EXPECT_EQ(asym.errored.size(), 1u);

  // Both sides failing identically is still a match (deterministic
  // failures should not flap the gate).
  std::vector<MetricsRecord> a2 = a;
  a2[1].error = "deadline exceeded";
  EXPECT_TRUE(CompareResults(a2, b, CompareOptions{}).ok());
}

TEST(CompareResults, ExplicitMetricListAndDottedPaths) {
  std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 1.0)};
  std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 9.0)};
  JsonValue nested = JsonValue::MakeObject();
  nested.Set("p99_us", 10.0);
  a[0].metrics.Set("read_cached", nested);
  nested.Set("p99_us", 10.1);
  b[0].metrics.Set("read_cached", nested);
  CompareOptions options;
  options.metrics = {"read_cached.p99_us"};  // rx_mrps drift is ignored
  EXPECT_TRUE(CompareResults(a, b, options).ok());
}

TEST(CompareResults, ZeroBaselineUsesLargerSideAsScale) {
  // A metric that was 0 in the baseline and becomes 1.0 is a 100%
  // relative difference (scale = max side), not a divide-by-zero pass.
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 0.0)};
  const std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 1.0)};
  CompareOptions options;
  options.tolerance = 0.05;
  options.slack = 0;
  const CompareReport report = CompareResults(a, b, options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.diffs.size(), 1u);
  EXPECT_DOUBLE_EQ(report.diffs[0].rel, 1.0);
  // Two exact zeros agree under any tolerance, even with zero slack.
  EXPECT_TRUE(CompareResults(a, a, options).ok());
}

TEST(CompareResults, AsymmetricMissingMetricFails) {
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 1.0)};
  std::vector<MetricsRecord> b = {MakeRecord("e", "s", 0, 1.0)};
  // B's record lost rx_mrps entirely (e.g. a metric got renamed).
  MetricsRecord stripped;
  stripped.experiment = b[0].experiment;
  stripped.point = b[0].point;
  stripped.rep = b[0].rep;
  stripped.seed = b[0].seed;
  stripped.params = b[0].params;
  stripped.metrics.Set("read_p99_us", 120.5);
  b[0] = stripped;
  const CompareReport report = CompareResults(a, b, CompareOptions{});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.missing_metrics.size(), 1u);
  EXPECT_NE(report.missing_metrics[0].find("rx_mrps"), std::string::npos);
  // read_p99_us still compared; the loss is surfaced, not silently skipped.
  EXPECT_EQ(report.metrics_compared, 1u);
}

TEST(CompareResults, MetricAbsentFromBothSidesIsASkip) {
  // The default set includes metrics (sat_tx_mrps, ...) that not every
  // experiment emits; absent-on-both-sides must stay a silent skip.
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 1.0)};
  const CompareReport report = CompareResults(a, a, CompareOptions{});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.missing_metrics.empty());
  EXPECT_EQ(report.metrics_compared, 2u);  // rx_mrps + read_p99_us only
}

TEST(CompareResults, VacuousComparisonIsNotAPass) {
  const std::vector<MetricsRecord> a = {MakeRecord("e", "s", 0, 1.0)};
  CompareOptions options;
  options.metrics = {"no_such_metric"};  // e.g. a typo'd --metrics flag
  const CompareReport report = CompareResults(a, a, options);
  EXPECT_EQ(report.matched, 1u);
  EXPECT_EQ(report.metrics_compared, 0u);
  EXPECT_TRUE(report.vacuous());
  EXPECT_FALSE(report.ok()) << "a gate that compared nothing must fail";
}

}  // namespace
}  // namespace orbit::harness
