// Leaf–spine fabric (src/fabric/): config validation and fingerprinting,
// end-to-end scale-out runs through RunTestbed's fabric dispatch, per-leaf
// / per-spine / per-link telemetry, cross-switch trace stitching, and the
// determinism guarantees the harness relies on (serial == parallel bytes,
// equal-time FIFO ordering across spine hops).
#include "fabric/topology.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "fault/fault.h"
#include "harness/metrics.h"
#include "harness/runner.h"
#include "nocache/program.h"
#include "proto/message.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "telemetry/netstats.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace orbit {
namespace {

using testbed::ConfigFingerprint;
using testbed::FindSaturation;
using testbed::ResultMetrics;
using testbed::RunTestbed;
using testbed::Scheme;
using testbed::TestbedConfig;
using testbed::TestbedResult;

// A 2–4 rack fabric small enough that every test here runs in well under a
// second: 4 servers per rack at 20K RPS each, one client per rack.
TestbedConfig SmallFabricConfig(Scheme scheme, int racks) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.fabric.num_racks = racks;
  cfg.topo.num_clients = racks;
  cfg.topo.num_servers = racks * 4;
  cfg.topo.server_rate_rps = 20'000;
  cfg.topo.client_rate_rps = racks * 150'000.0;
  cfg.workload.num_keys = 50'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.cache.orbit_cache_size = 16;
  cfg.cache.orbit_capacity = 64;
  cfg.cache.netcache_size = 500;
  cfg.warmup = 10 * kMillisecond;
  cfg.duration = 40 * kMillisecond;
  cfg.seed = 7;
  return cfg;
}

// ---- config plumbing ----------------------------------------------------

TEST(FabricConfig, ValidateAcceptsTheSmallFabric) {
  EXPECT_TRUE(SmallFabricConfig(Scheme::kOrbitCache, 2).Validate().empty());
}

TEST(FabricConfig, ValidateRejectsUnevenRacks) {
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.topo.num_servers = 7;  // not divisible by 2
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(FabricConfig, ValidateRejectsEmptyRacksAndZeroSpines) {
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.topo.num_servers = 1;  // fewer servers than racks
  EXPECT_FALSE(cfg.Validate().empty());

  cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.topo.fabric.num_spines = 0;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(FabricConfig, ValidateAcceptsFaultInjectionOnFabrics) {
  // Server and fabric faults are both first-class on leaf–spine testbeds
  // (tests/test_fabric_faults.cc exercises the schedules end to end); only
  // the single-switch control channel has no fabric equivalent.
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.fault = fault::ServerCrashAt(0, kMillisecond, 2 * kMillisecond);
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.fault = fault::LeafCrashAt(0, kMillisecond, 2 * kMillisecond);
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.fault = fault::FaultSchedule{};
  cfg.fault.events.push_back({kMillisecond, fault::FaultKind::kCtrlDown, -1});
  cfg.fault.events.push_back({2 * kMillisecond, fault::FaultKind::kCtrlUp, -1});
  EXPECT_FALSE(cfg.Validate().empty())
      << "the switch-CPU channel fault has no fabric equivalent";
}

TEST(FabricConfig, DisabledFabricStaysOutOfTheFingerprint) {
  // Pre-fabric configs must keep their exact identity: the section only
  // serializes when enabled, so existing baselines and saturation-cache
  // keys stay byte-identical.
  const TestbedConfig single;
  EXPECT_EQ(ConfigFingerprint(single).find("fabric"), std::string::npos);

  const TestbedConfig two = SmallFabricConfig(Scheme::kOrbitCache, 2);
  TestbedConfig four = two;
  four.topo.fabric.num_racks = 4;
  EXPECT_NE(ConfigFingerprint(two).find("fabric"), std::string::npos);
  EXPECT_NE(ConfigFingerprint(two), ConfigFingerprint(four));
}

// ---- end-to-end runs ----------------------------------------------------

TEST(FabricTestbed, TwoRackOrbitCacheSmoke) {
  const TestbedResult res =
      RunTestbed(SmallFabricConfig(Scheme::kOrbitCache, 2));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.cache_served_rps, 0) << "leaves must serve their hot keys";
  EXPECT_GT(res.lookup_hits, 0u);
  EXPECT_GT(res.server_served_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u);
  // Per-leaf budgets: every leaf preloads its rack's 16 hottest items.
  EXPECT_EQ(res.cache_entries, 32u);
}

TEST(FabricTestbed, EverySchemeRunsOnAFabric) {
  for (const Scheme scheme :
       {Scheme::kNoCache, Scheme::kNetCache, Scheme::kOrbitCache}) {
    const TestbedResult res = RunTestbed(SmallFabricConfig(scheme, 2));
    EXPECT_GT(res.rx_rps, 0) << testbed::SchemeName(scheme);
    EXPECT_EQ(res.stale_reads, 0u) << testbed::SchemeName(scheme);
    if (scheme == Scheme::kNoCache)
      EXPECT_EQ(res.cache_served_rps, 0);
    else
      EXPECT_GT(res.cache_served_rps, 0) << testbed::SchemeName(scheme);
  }
}

TEST(FabricTestbed, CrossRackWritesStayCoherent) {
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.workload.write_ratio = 0.2;
  const TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.write_latency.count(), 0u);
  EXPECT_EQ(res.stale_reads, 0u) << "invalidation must hold across the spine";
}

TEST(FabricTestbed, SaturatedThroughputScalesWithRackCount) {
  // The acceptance property behind bench/fig_fabric: doubling the racks
  // (servers, clients, and per-leaf caches scale along) must raise the
  // aggregate saturated throughput materially — each leaf keeps absorbing
  // its own rack's hot keys, so racks add capacity instead of contending.
  const testbed::SaturationResult two =
      FindSaturation(SmallFabricConfig(Scheme::kOrbitCache, 2));
  const testbed::SaturationResult four =
      FindSaturation(SmallFabricConfig(Scheme::kOrbitCache, 4));
  EXPECT_GT(four.result.rx_rps, 1.5 * two.result.rx_rps);
}

// ---- telemetry ----------------------------------------------------------

TEST(FabricTestbed, TelemetryCoversLeavesSpinesAndLinks) {
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  cfg.topo.fabric.num_spines = 2;
  telemetry::RunCapture cap;
  cfg.telemetry.capture = &cap;
  cfg.telemetry.trace_sample = 16;
  (void)RunTestbed(cfg);

  ASSERT_FALSE(cap.snapshots.empty());
  const telemetry::Snapshot& snap = cap.snapshots.back();
  const auto counter = [&snap](const std::string& name) -> const uint64_t* {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return &v;
    return nullptr;
  };
  // Per-leaf and per-spine scopes: every switch reports under its own
  // prefix, and the cross-rack client placement pushes traffic through
  // both spines (addresses split across addr % 2).
  for (const char* name : {"leaf0.switch.rx_packets", "leaf1.switch.rx_packets",
                           "spine0.switch.rx_packets",
                           "spine1.switch.rx_packets"}) {
    const uint64_t* v = counter(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_GT(*v, 0u) << name;
  }
  // Per-link drop-reason counters: every link direction exports all three
  // reasons, named by its endpoints.
  size_t overflow_counters = 0, loss_counters = 0, down_counters = 0;
  for (const auto& [n, v] : snap.counters) {
    if (n.rfind("net.link.", 0) != 0) continue;
    EXPECT_NE(n.find("->"), std::string::npos) << n;
    if (n.find(".drop.queue_overflow") != std::string::npos)
      ++overflow_counters;
    if (n.find(".drop.injected_loss") != std::string::npos) ++loss_counters;
    if (n.find(".drop.link_down") != std::string::npos) ++down_counters;
  }
  EXPECT_GT(overflow_counters, 0u);
  EXPECT_EQ(overflow_counters, loss_counters);
  EXPECT_EQ(overflow_counters, down_counters);
}

TEST(FabricTestbed, TraceIdsSurviveLeafSpineLeafHops) {
  TestbedConfig cfg = SmallFabricConfig(Scheme::kOrbitCache, 2);
  telemetry::RunCapture cap;
  cfg.telemetry.capture = &cap;
  cfg.telemetry.trace_sample = 8;
  (void)RunTestbed(cfg);

  const auto track_id = [&cap](const std::string& name) {
    for (size_t i = 0; i < cap.tracks.size(); ++i)
      if (cap.tracks[i] == name) return static_cast<int>(i);
    return -1;
  };
  const int leaf0 = track_id("leaf0");
  const int leaf1 = track_id("leaf1");
  const int spine0 = track_id("spine0");
  ASSERT_GE(leaf0, 0);
  ASSERT_GE(leaf1, 0);
  ASSERT_GE(spine0, 0);

  // A sampled cross-rack request keeps its packet-borne trace id through
  // every hop: the same id must appear on a leaf track and on the spine.
  bool stitched = false;
  for (const telemetry::TraceEvent& spine_ev : cap.events) {
    if (spine_ev.track != spine0 || spine_ev.trace_id == 0) continue;
    for (const telemetry::TraceEvent& leaf_ev : cap.events) {
      if (leaf_ev.trace_id != spine_ev.trace_id) continue;
      if (leaf_ev.track == leaf0 || leaf_ev.track == leaf1) {
        stitched = true;
        break;
      }
    }
    if (stitched) break;
  }
  EXPECT_TRUE(stitched)
      << "no trace id shared between a leaf track and the spine track";
}

TEST(FabricTestbed, TelemetryIsResultsNeutral) {
  // Instrumentation must never change what a fabric run measures: metrics
  // and the (telemetry-excluded) event count match the bare run exactly.
  const TestbedConfig bare = SmallFabricConfig(Scheme::kOrbitCache, 2);
  const TestbedResult plain = RunTestbed(bare);

  TestbedConfig instrumented = bare;
  telemetry::RunCapture cap;
  instrumented.telemetry.capture = &cap;
  instrumented.telemetry.trace_sample = 4;
  instrumented.telemetry.snapshot_interval = 5 * kMillisecond;
  const TestbedResult traced = RunTestbed(instrumented);

  EXPECT_EQ(ResultMetrics(plain).Dump(), ResultMetrics(traced).Dump());
  EXPECT_EQ(plain.events_processed, traced.events_processed);
  EXPECT_FALSE(cap.empty());
}

// ---- determinism --------------------------------------------------------

TEST(FabricHarness, ParallelMatchesSerialOnAFourRackSweep) {
  harness::ExperimentSpec spec;
  spec.name = "unit_fabric_sweep";
  spec.apply_paper_scale = false;
  spec.base.topo.server_rate_rps = 20'000;
  spec.base.topo.client_rate_rps = 100'000;  // per rack; the axis scales it
  spec.base.workload.num_keys = 20'000;
  spec.base.cache.orbit_cache_size = 8;
  spec.base.cache.orbit_capacity = 32;
  spec.base.warmup = 2 * kMillisecond;
  spec.base.duration = 10 * kMillisecond;
  spec.axes = {
      harness::SchemeAxis({Scheme::kNoCache, Scheme::kOrbitCache}),
      harness::FabricRackAxis({4}, /*servers_per_rack=*/2,
                              /*clients_per_rack=*/1),
      harness::NumericAxis("zipf_theta", {0.9, 0.99},
                           [](TestbedConfig& c, double v) {
                             c.workload.zipf_theta = v;
                           })};
  spec.run = harness::FixedLoadRun();

  harness::RunnerOptions serial;
  serial.scale = harness::Scale::kQuick;
  serial.jobs = 1;
  serial.progress = false;
  harness::RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const harness::RunOutcome a = harness::RunExperiments({spec}, serial);
  const harness::RunOutcome b = harness::RunExperiments({spec}, parallel);
  ASSERT_EQ(a.records.size(), 4u);
  ASSERT_EQ(b.records.size(), 4u);
  EXPECT_EQ(a.errors, 0);
  EXPECT_EQ(b.errors, 0);
  EXPECT_EQ(harness::DumpJsonl(a.records), harness::DumpJsonl(b.records));
}

// Minimal leaf-spine passthrough hosts for the FIFO test.
class SinkNode : public sim::Node {
 public:
  SinkNode(sim::Simulator* sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    arrivals.emplace_back(pkt->msg.seq, sim_->now());
  }
  std::string name() const override { return name_; }
  std::vector<std::pair<uint32_t, SimTime>> arrivals;

 private:
  sim::Simulator* sim_;
  std::string name_;
};

TEST(FabricTopologyTest, EqualTimeSendsKeepFifoOrderAcrossSpineHops) {
  // 16 packets injected at the same instant toward the remote rack must
  // arrive in injection order: every queue on the leaf→spine→leaf path is
  // FIFO, and equal-time events keep their scheduling order.
  sim::Simulator sim;
  sim::Network net(&sim);
  fabric::TopologySpec tspec;
  tspec.num_racks = 2;
  tspec.num_spines = 1;
  fabric::FabricTopology topo(&sim, &net, tspec);
  nocache::ForwardProgram fwd0, fwd1, fwd_spine;
  topo.leaf(0).SetProgram(&fwd0);
  topo.leaf(1).SetProgram(&fwd1);
  topo.spine(0).SetProgram(&fwd_spine);

  SinkNode sender(&sim, "sender"), receiver(&sim, "receiver");
  const Addr kSender = 1, kReceiver = 2;
  (void)topo.AttachHost(&sender, kSender, /*rack=*/0, sim::LinkConfig{});
  (void)topo.AttachHost(&receiver, kReceiver, /*rack=*/1, sim::LinkConfig{});

  constexpr uint32_t kPackets = 16;
  for (uint32_t i = 0; i < kPackets; ++i) {
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = i;
    msg.key = "fifo-key";
    msg.hkey = HashKey128(msg.key);
    net.Send(&sender, 0,
             sim::MakePacket(kSender, kReceiver, 9000, 5008, std::move(msg)));
  }
  sim.RunUntil(kMillisecond);

  ASSERT_EQ(receiver.arrivals.size(), kPackets);
  for (uint32_t i = 0; i < kPackets; ++i)
    EXPECT_EQ(receiver.arrivals[i].first, i) << "out-of-order at slot " << i;
  EXPECT_GE(topo.spine(0).stats().rx_packets, static_cast<uint64_t>(kPackets))
      << "the cross-rack path must traverse the spine";
}

// ---- per-link drop counters (telemetry/netstats.h) ----------------------

TEST(NetStats, QueueOverflowBumpsTheNamedLinkCounter) {
  sim::Simulator sim;
  sim::Network net(&sim);
  SinkNode a(&sim, "a"), b(&sim, "b");
  sim::LinkConfig lc;
  lc.rate_gbps = 0.001;         // 1 Mbps: the first packet occupies the wire
  lc.queue_limit_bytes = 256;   // room for only a few more behind it
  (void)net.Connect(&a, &b, lc);

  telemetry::Registry reg;
  telemetry::RegisterLinkDropCounters(reg, net);

  for (uint32_t i = 0; i < 64; ++i) {
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = i;
    msg.key = "overflow-key";
    msg.hkey = HashKey128(msg.key);
    net.Send(&a, 0, sim::MakePacket(1, 2, 9000, 5008, std::move(msg)));
  }
  sim.RunUntil(kSecond);

  const telemetry::Snapshot snap = reg.Sample(sim.now());
  const auto counter = [&snap](const std::string& name) -> const uint64_t* {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return &v;
    return nullptr;
  };
  const uint64_t* overflow = counter("net.link.0.a->b.drop.queue_overflow");
  ASSERT_NE(overflow, nullptr);
  EXPECT_GT(*overflow, 0u);
  // The other reasons exist but stay untouched on a clean, up link.
  const uint64_t* loss = counter("net.link.0.a->b.drop.injected_loss");
  const uint64_t* down = counter("net.link.0.a->b.drop.link_down");
  ASSERT_NE(loss, nullptr);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(*loss, 0u);
  EXPECT_EQ(*down, 0u);
  // And the reverse direction never carried traffic.
  const uint64_t* rev = counter("net.link.0.b->a.drop.queue_overflow");
  ASSERT_NE(rev, nullptr);
  EXPECT_EQ(*rev, 0u);
}

}  // namespace
}  // namespace orbit
