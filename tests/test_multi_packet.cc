// §3.10 multi-packet item extension: values larger than one MTU circulate
// as multiple cache-packet fragments; the ACKed-packet counter removes the
// request metadata only when the last fragment has been forwarded.
#include <gtest/gtest.h>

#include <set>

#include "proto/message.h"
#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig MultiPacketRig(uint32_t value_size) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.orbit.multi_packet = true;
  cfg.multi_packet_servers = true;
  cfg.num_servers = 1;
  cfg.value_size = value_size;
  return cfg;
}

// Value big enough for exactly 3 fragments (budget ≈ 1422B with 16B keys).
constexpr uint32_t kThreeFragValue = 4000;

TEST(MultiPacket, ServerFragmentsOversizedValues) {
  Rig rig(MultiPacketRig(kThreeFragValue));
  rig.SendRead("big-key-00000000", 1);
  rig.Settle();
  // All fragments arrive, each tagged with index/total.
  size_t frags = 0;
  uint32_t total_bytes = 0;
  std::set<uint8_t> indices;
  for (const auto& r : rig.client().replies) {
    if (r.msg.seq != 1) continue;
    ++frags;
    EXPECT_EQ(r.msg.frag_total, 3);
    indices.insert(r.msg.frag_index);
    total_bytes += r.msg.value.size();
  }
  EXPECT_EQ(frags, 3u);
  EXPECT_EQ(indices.size(), 3u);
  EXPECT_EQ(total_bytes, kThreeFragValue);
  for (const auto& r : rig.client().replies)
    EXPECT_LE(r.msg.payload_bytes(), proto::kMaxPayloadBytes);
}

TEST(MultiPacket, CachedLargeItemCirculatesAsMultipleFragments) {
  Rig rig(MultiPacketRig(kThreeFragValue));
  const Key key = "big-key-00000000";
  rig.CacheAndFetch(key, 0);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 3)
      << "one circulating cache packet per fragment";
  EXPECT_TRUE(rig.program().IsValid(0))
      << "valid only after all fragments fetched";
}

TEST(MultiPacket, CachedReadReceivesAllFragmentsFromSwitch) {
  Rig rig(MultiPacketRig(kThreeFragValue));
  const Key key = "big-key-00000000";
  rig.CacheAndFetch(key, 0);
  const uint64_t server_reads = rig.ServerFor(key).stats().reads;

  rig.SendRead(key, 7);
  rig.Settle();
  std::set<uint8_t> indices;
  uint32_t bytes = 0;
  for (const auto& r : rig.client().replies) {
    if (r.msg.seq != 7) continue;
    EXPECT_EQ(r.msg.cached, 1);
    indices.insert(r.msg.frag_index);
    bytes += r.msg.value.size();
  }
  EXPECT_EQ(indices.size(), 3u) << "all distinct fragments delivered";
  EXPECT_EQ(bytes, kThreeFragValue);
  EXPECT_EQ(rig.ServerFor(key).stats().reads, server_reads);
  // Metadata removed after the last fragment: a later read is served anew.
  rig.SendRead(key, 8);
  rig.Settle();
  EXPECT_GE(rig.CountReplies(8), 3u);
}

TEST(MultiPacket, SequentialRequestsEachGetFullItem) {
  Rig rig(MultiPacketRig(kThreeFragValue));
  const Key key = "big-key-00000000";
  rig.CacheAndFetch(key, 0);
  for (uint32_t seq = 20; seq < 25; ++seq) {
    rig.SendRead(key, seq);
    rig.Run(50 * kMicrosecond);
    EXPECT_EQ(rig.CountReplies(seq), 3u) << "seq " << seq;
  }
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 3)
      << "fragment ring intact after serving";
}

TEST(MultiPacket, SinglePacketItemsUnaffectedByExtension) {
  Rig rig(MultiPacketRig(64));
  const Key key = "sml-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendRead(key, 1);
  rig.Settle();
  EXPECT_EQ(rig.CountReplies(1), 1u);
  EXPECT_EQ(rig.FindReply(1)->msg.frag_total, 1);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1);
}

TEST(MultiPacket, ValuesBeyond32FragmentsReassembleExactly) {
  // 70 kB needs more than 32 fragments at any plausible MTU budget — past
  // the range a single 32-bit reassembly bitmap word can track. Every
  // fragment index must be distinct and the byte total exact.
  constexpr uint32_t kBigValue = 70'000;
  Rig rig(MultiPacketRig(kBigValue));
  rig.SendRead("big-key-00000000", 1);
  rig.Settle();
  std::set<uint32_t> indices;
  uint32_t bytes = 0;
  uint32_t frag_total = 0;
  for (const auto& r : rig.client().replies) {
    if (r.msg.seq != 1) continue;
    indices.insert(r.msg.frag_index);
    bytes += r.msg.value.size();
    frag_total = r.msg.frag_total;
  }
  EXPECT_GT(frag_total, 32u);
  EXPECT_LE(frag_total, 255u);
  EXPECT_EQ(indices.size(), frag_total) << "no fragment lost or aliased";
  EXPECT_EQ(bytes, kBigValue);
}

TEST(MultiPacket, FragmentCountBeyondProtocolLimitIsAnError) {
  // frag_total travels as a uint8_t; a value needing >255 fragments must
  // fail loudly at the server instead of silently truncating the count.
  Rig rig(MultiPacketRig(600'000));
  rig.SendRead("big-key-00000000", 1);
  EXPECT_THROW(rig.Settle(), CheckFailure);
}

TEST(MultiPacket, WithoutExtensionOversizedValueIsAnError) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.orbit.multi_packet = false;
  cfg.multi_packet_servers = false;
  cfg.num_servers = 1;
  cfg.value_size = kThreeFragValue;
  Rig rig(cfg);
  rig.SendRead("big-key-00000000", 1);
  EXPECT_THROW(rig.Settle(), CheckFailure)
      << "server must refuse to emit an over-MTU packet";
}

TEST(MultiPacket, RequiresCloning) {
  rmt::AsicConfig asic;
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "sw", asic);
  OrbitConfig bad;
  bad.multi_packet = true;
  bad.enable_cloning = false;
  EXPECT_THROW(OrbitProgram(&sw, bad), CheckFailure);
}

}  // namespace
}  // namespace orbit::oc
