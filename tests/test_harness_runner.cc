// The parallel runner's core promise: running sweep points across a
// thread pool changes wall-clock time only — the JSONL bytes, record
// order, and every metric are identical to a serial run. Each worker's
// Simulator installs its own thread-local packet pool, so these tests
// also pin down that pooling cannot leak state across concurrent points.
// Also covers failure isolation and the per-point wall-clock timeout.
#include "harness/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault.h"
#include "harness/metrics.h"
#include "harness/sat_cache.h"

namespace orbit::harness {
namespace {

// A real-simulation spec kept tiny so the 2x4-point suite runs in well
// under a second per job count.
ExperimentSpec TinySimSpec() {
  ExperimentSpec spec;
  spec.name = "unit_tiny_sim";
  spec.apply_paper_scale = false;
  spec.base.topo.num_clients = 2;
  spec.base.topo.num_servers = 4;
  spec.base.workload.num_keys = 2'000;
  spec.base.topo.server_rate_rps = 100'000;
  spec.base.topo.client_rate_rps = 400'000;
  spec.base.warmup = 2 * kMillisecond;
  spec.base.duration = 10 * kMillisecond;
  spec.axes = {SchemeAxis({testbed::Scheme::kNoCache,
                           testbed::Scheme::kOrbitCache}),
               NumericAxis("zipf_theta", {0.9, 0.99},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.zipf_theta = v;
                           })};
  spec.run = FixedLoadRun();
  return spec;
}

TEST(RunExperiments, ParallelOutputIsByteIdenticalToSerial) {
  const std::vector<ExperimentSpec> specs = {TinySimSpec()};
  RunnerOptions serial;
  serial.scale = Scale::kQuick;
  serial.jobs = 1;
  serial.progress = false;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const RunOutcome a = RunExperiments(specs, serial);
  const RunOutcome b = RunExperiments(specs, parallel);
  ASSERT_EQ(a.records.size(), 4u);
  ASSERT_EQ(b.records.size(), 4u);
  EXPECT_EQ(a.errors, 0);
  EXPECT_EQ(b.errors, 0);
  // The whole point: byte-for-byte identical machine-readable output.
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
}

// Faulted, lossy, retrying runs are the hardest case for parallel-equals-
// serial: retransmission timing, burst-loss RNG draws, and injected fault
// events must all be functions of the point config alone.
ExperimentSpec TinyFaultSpec() {
  ExperimentSpec spec = TinySimSpec();
  spec.name = "unit_tiny_fault";
  spec.base.client.max_retries = 2;
  spec.base.client.request_timeout = kMillisecond;
  spec.axes = {
      SchemeAxis({testbed::Scheme::kOrbitCache}),
      FaultAxis(
          {{"switch-reset",
            [](testbed::TestbedConfig& cfg) {
              cfg.fault =
                  fault::SwitchResetAt(5 * kMillisecond, kMillisecond);
              cfg.fault.server_burst_loss.p_enter_bad = 0.002;
            }},
           {"server-crash", [](testbed::TestbedConfig& cfg) {
              cfg.fault = fault::ServerCrashAt(0, 4 * kMillisecond,
                                               8 * kMillisecond);
              cfg.fault.server_burst_loss.p_enter_bad = 0.002;
            }}})};
  return spec;
}

TEST(RunExperiments, FaultedRetryingRunsStayDeterministicAcrossJobs) {
  const std::vector<ExperimentSpec> specs = {TinyFaultSpec()};
  RunnerOptions serial;
  serial.scale = Scale::kQuick;
  serial.jobs = 1;
  serial.progress = false;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const RunOutcome a = RunExperiments(specs, serial);
  const RunOutcome b = RunExperiments(specs, parallel);
  ASSERT_EQ(a.records.size(), 2u);
  ASSERT_EQ(b.records.size(), 2u);
  EXPECT_EQ(a.errors, 0);
  EXPECT_EQ(b.errors, 0);
  for (const auto& rec : a.records) {
    EXPECT_EQ(rec.Metric("faults_injected"), 2.0);
    EXPECT_GT(rec.Metric("retransmissions"), 0.0);
  }
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
}

TEST(RunExperiments, FailingPointIsIsolated) {
  ExperimentSpec spec;
  spec.name = "unit_failures";
  spec.apply_paper_scale = false;
  spec.axes = {NumericAxis("x", {1, 2, 3}, nullptr)};
  spec.run = [](const PointRun& p, SaturationCache&) {
    if (p.point == 1) throw std::runtime_error("boom");
    JsonValue m = JsonValue::MakeObject();
    m.Set("x", p.Value("x"));
    return m;
  };
  RunnerOptions options;
  options.progress = false;
  const RunOutcome out = RunExperiments({spec}, options);
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.errors, 1);
  EXPECT_TRUE(out.records[0].ok());
  EXPECT_FALSE(out.records[1].ok());
  EXPECT_EQ(out.records[1].error, "boom");
  EXPECT_TRUE(out.records[2].ok());
  EXPECT_DOUBLE_EQ(out.records[2].Metric("x"), 3.0);
}

TEST(RunExperiments, PointTimeoutRecordsErrorAndContinues) {
  ExperimentSpec spec = TinySimSpec();
  spec.name = "unit_timeout";
  // A simulated 10 minutes cannot complete within the 0.2s budget; the
  // deadline check inside Simulator::Step aborts the point instead of
  // hanging the suite.
  spec.base.duration = 600 * kSecond;
  spec.axes = {SchemeAxis({testbed::Scheme::kNoCache})};
  RunnerOptions options;
  options.scale = Scale::kQuick;
  options.progress = false;
  options.point_timeout_sec = 0.2;
  const RunOutcome out = RunExperiments({spec}, options);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.errors, 1);
  EXPECT_FALSE(out.records[0].ok());
  EXPECT_NE(out.records[0].error.find("deadline"), std::string::npos)
      << out.records[0].error;
}

TEST(RunExperiments, SaturationCacheDeduplicatesIdenticalConfigs) {
  ExperimentSpec spec = TinySimSpec();
  spec.name = "unit_sat_cache";
  // Two labels, no config difference: the second point must reuse the
  // first point's saturation search.
  spec.axes = {NumericAxis("probe", {1, 2}, nullptr)};
  spec.run = SaturationRun();
  spec.max_corrections = 0;
  RunnerOptions options;
  options.scale = Scale::kQuick;
  options.progress = false;
  const RunOutcome out = RunExperiments({spec}, options);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.errors, 0);
  EXPECT_EQ(out.sat_cache_hits, 1u);
  EXPECT_DOUBLE_EQ(out.records[0].Metric("sat_tx_mrps"),
                   out.records[1].Metric("sat_tx_mrps"));
}

TEST(SaturationCacheTest, FailedComputeIsEvictedAndRetried) {
  // A compute that throws must not poison the memo: the exception reaches
  // the first caller, but a later Get with the same config recomputes.
  int calls = 0;
  SaturationCache cache(
      [&calls](const testbed::TestbedConfig&, double, int) {
        if (++calls == 1) throw std::runtime_error("flaky");
        testbed::SaturationResult r;
        r.sat_tx_rps = 123456;
        r.runs = 1;
        return r;
      });
  testbed::TestbedConfig cfg;
  EXPECT_THROW(cache.Get(cfg, 0.03, 0), std::runtime_error);
  EXPECT_EQ(cache.failures(), 1u);
  const testbed::SaturationResult r = cache.Get(cfg, 0.03, 0);
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(r.sat_tx_rps, 123456);
  EXPECT_EQ(cache.failures(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  // And the recomputed entry is a normal cache hit afterwards.
  const uint64_t hits_before = cache.hits();
  (void)cache.Get(cfg, 0.03, 0);
  EXPECT_EQ(cache.hits(), hits_before + 1);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace orbit::harness
