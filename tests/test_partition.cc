#include "kv/partition.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace orbit::kv {
namespace {

TEST(Partitioner, DeterministicMapping) {
  Partitioner p(32, 1);
  EXPECT_EQ(p.ServerFor("key-1"), p.ServerFor("key-1"));
  Partitioner q(32, 1);
  EXPECT_EQ(p.ServerFor("key-1"), q.ServerFor("key-1"));
}

TEST(Partitioner, StaysInRange) {
  Partitioner p(7, 3);
  for (int i = 0; i < 10000; ++i)
    EXPECT_LT(p.ServerFor("k" + std::to_string(i)), 7u);
}

TEST(Partitioner, BalancesUniformKeys) {
  const uint32_t n = 16;
  Partitioner p(n, 5);
  std::vector<int> counts(n, 0);
  const int keys = 160000;
  for (int i = 0; i < keys; ++i) ++counts[p.ServerFor("k" + std::to_string(i))];
  for (uint32_t s = 0; s < n; ++s) {
    const double frac = static_cast<double>(counts[s]) / keys;
    EXPECT_NEAR(frac, 1.0 / n, 0.01) << "server " << s;
  }
}

TEST(Partitioner, SeedReshuffles) {
  Partitioner a(32, 1), b(32, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.ServerFor("k" + std::to_string(i)) ==
        b.ServerFor("k" + std::to_string(i)))
      ++same;
  EXPECT_LT(same, 100);
}

TEST(Partitioner, RejectsZeroServers) {
  EXPECT_THROW(Partitioner(0), CheckFailure);
}

}  // namespace
}  // namespace orbit::kv
