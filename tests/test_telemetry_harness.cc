// Telemetry integration: an instrumented testbed run fills the capture
// with spans and counter snapshots; instrumentation never perturbs
// results; captures are deterministic across repeats and job counts; and
// the harness's record JSONL is byte-identical with telemetry on or off.
#include <gtest/gtest.h>

#include "harness/metrics.h"
#include "harness/runner.h"
#include "harness/telemetry_io.h"
#include "telemetry/counters.h"
#include "telemetry/export.h"
#include "telemetry/trace.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace orbit::harness {
namespace {

testbed::TestbedConfig TinyConfig(testbed::Scheme scheme) {
  testbed::TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 4;
  cfg.workload.num_keys = 2'000;
  cfg.topo.server_rate_rps = 100'000;
  cfg.topo.client_rate_rps = 400'000;
  cfg.warmup = 2 * kMillisecond;
  cfg.duration = 10 * kMillisecond;
  return cfg;
}

uint64_t FinalCounter(const telemetry::RunCapture& cap,
                      const std::string& name) {
  if (cap.snapshots.empty()) return 0;
  for (const auto& [n, v] : cap.snapshots.back().counters)
    if (n == name) return v;
  return 0;
}

TEST(TelemetryTestbed, InstrumentedRunFillsCapture) {
  telemetry::RunCapture cap;
  testbed::TestbedConfig cfg = TinyConfig(testbed::Scheme::kOrbitCache);
  cfg.telemetry.capture = &cap;
  cfg.telemetry.trace_sample = 16;
  cfg.telemetry.snapshot_interval = 2 * kMillisecond;
  testbed::RunTestbed(cfg);

  ASSERT_FALSE(cap.empty());
  // Track order is fixed: switch, switch recirc, servers, clients.
  ASSERT_GE(cap.tracks.size(), 2u + 4u + 2u);
  EXPECT_EQ(cap.tracks[0], "tor");
  EXPECT_EQ(cap.tracks[1], "tor.recirc");

  // Sampled requests produced full lifecycles: root spans with outcomes
  // and at least one switch pipeline pass each.
  const auto summaries = telemetry::SummarizeRequests(cap.events);
  ASSERT_GT(summaries.size(), 10u);
  size_t with_outcome = 0, with_pipeline = 0;
  for (const auto& s : summaries) {
    if (s.total > 0) ++with_outcome;
    for (const auto& [hop, dur] : s.hops) {
      (void)dur;
      if (hop == "pipeline") {
        ++with_pipeline;
        break;
      }
    }
  }
  EXPECT_GT(with_outcome, summaries.size() / 2);
  EXPECT_GT(with_pipeline, summaries.size() / 2);

  // Periodic + final snapshots, in sim-time order, with live counters.
  ASSERT_GE(cap.snapshots.size(), 3u);
  for (size_t i = 1; i < cap.snapshots.size(); ++i)
    EXPECT_GE(cap.snapshots[i].at, cap.snapshots[i - 1].at);
  EXPECT_GT(FinalCounter(cap, "switch.rx_packets"), 0u);
  EXPECT_GT(FinalCounter(cap, "orbit.read_requests"), 0u);
  EXPECT_GT(FinalCounter(cap, "server.0.requests"), 0u);
  EXPECT_GT(FinalCounter(cap, "client.0.tx_requests"), 0u);
  EXPECT_GT(FinalCounter(cap, "rmt.s0.cache_lookup.lookups"), 0u);
}

TEST(TelemetryTestbed, InstrumentationIsResultsNeutral) {
  const testbed::TestbedConfig base = TinyConfig(testbed::Scheme::kOrbitCache);
  const testbed::TestbedResult plain = testbed::RunTestbed(base);

  telemetry::RunCapture cap;
  testbed::TestbedConfig instrumented = base;
  instrumented.telemetry.capture = &cap;
  instrumented.telemetry.trace_sample = 4;  // heavy sampling on purpose
  instrumented.telemetry.snapshot_interval = 1 * kMillisecond;
  const testbed::TestbedResult traced = testbed::RunTestbed(instrumented);

  // Identical simulations: every serialized metric matches exactly.
  EXPECT_EQ(testbed::ResultMetrics(plain).Dump(),
            testbed::ResultMetrics(traced).Dump());
  EXPECT_EQ(plain.events_processed, traced.events_processed);
  // Telemetry must not alter a config's identity either.
  EXPECT_EQ(testbed::ConfigFingerprint(base),
            testbed::ConfigFingerprint(instrumented));
  EXPECT_FALSE(cap.empty());
}

TEST(TelemetryTestbed, CaptureIsDeterministic) {
  auto run = [](telemetry::RunCapture* cap) {
    testbed::TestbedConfig cfg = TinyConfig(testbed::Scheme::kNetCache);
    cfg.telemetry.capture = cap;
    cfg.telemetry.trace_sample = 8;
    cfg.telemetry.snapshot_interval = 2 * kMillisecond;
    testbed::RunTestbed(cfg);
  };
  telemetry::RunCapture a, b;
  run(&a);
  run(&b);
  EXPECT_EQ(telemetry::ChromeTraceJson({{"p", &a}}),
            telemetry::ChromeTraceJson({{"p", &b}}));
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].at, b.snapshots[i].at);
    EXPECT_EQ(a.snapshots[i].counters, b.snapshots[i].counters);
    EXPECT_EQ(a.snapshots[i].gauges, b.snapshots[i].gauges);
  }
}

ExperimentSpec TinySpec() {
  ExperimentSpec spec;
  spec.name = "unit_telemetry";
  spec.apply_paper_scale = false;
  spec.base = TinyConfig(testbed::Scheme::kOrbitCache);
  spec.axes = {SchemeAxis(
      {testbed::Scheme::kOrbitCache, testbed::Scheme::kNoCache})};
  spec.run = FixedLoadRun();
  return spec;
}

TEST(TelemetryRunner, RecordsAreByteIdenticalWithTelemetryOnOrOff) {
  const std::vector<ExperimentSpec> specs = {TinySpec()};
  RunnerOptions off;
  off.progress = false;
  RunnerOptions on = off;
  on.capture_telemetry = true;
  on.trace_sample = 8;
  on.snapshot_interval = 2 * kMillisecond;

  const RunOutcome a = RunExperiments(specs, off);
  const RunOutcome b = RunExperiments(specs, on);
  EXPECT_TRUE(a.captures.empty());
  ASSERT_EQ(b.captures.size(), b.records.size());
  EXPECT_FALSE(b.captures[0].empty());
  // The headline promise: telemetry is a pure side channel.
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
}

TEST(TelemetryRunner, CountersIdenticalSerialVsParallel) {
  const std::vector<ExperimentSpec> specs = {TinySpec()};
  RunnerOptions serial;
  serial.progress = false;
  serial.capture_telemetry = true;
  serial.trace_sample = 8;
  serial.snapshot_interval = 2 * kMillisecond;
  RunnerOptions parallel = serial;
  parallel.jobs = 4;

  const RunOutcome a = RunExperiments(specs, serial);
  const RunOutcome b = RunExperiments(specs, parallel);
  ASSERT_EQ(a.captures.size(), b.captures.size());
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
  EXPECT_EQ(CountersJsonl(a.records, a.captures),
            CountersJsonl(b.records, b.captures));
  EXPECT_EQ(MergedChromeTrace(a.records, a.captures),
            MergedChromeTrace(b.records, b.captures));
}

TEST(TelemetryIo, CountersJsonlRoundTripsAndCarriesIdentity) {
  const std::vector<ExperimentSpec> specs = {TinySpec()};
  RunnerOptions options;
  options.progress = false;
  options.capture_telemetry = true;
  options.trace_sample = 0;  // counters only
  const RunOutcome out = RunExperiments(specs, options);

  const std::string jsonl = CountersJsonl(out.records, out.captures);
  ASSERT_FALSE(jsonl.empty());
  std::vector<JsonValue> lines;
  std::string error;
  ASSERT_TRUE(ParseCountersJsonl(jsonl, &lines, &error)) << error;
  ASSERT_GE(lines.size(), 2u);  // at least the final snapshot per point
  const JsonValue& first = lines.front();
  EXPECT_EQ(first.Find("experiment")->AsString(), "unit_telemetry");
  EXPECT_NE(first.Find("params")->Find("scheme"), nullptr);
  EXPECT_GT(first.Find("counters")->object().size(), 10u);
  // trace_sample 0 still permits counters but collects no spans.
  for (const auto& cap : out.captures) EXPECT_TRUE(cap.events.empty());
}

TEST(TelemetryIo, CaptureLabelNamesPointAndParams) {
  MetricsRecord rec;
  rec.experiment = "fig15";
  rec.point = 3;
  rec.rep = 1;
  rec.params = {{"scheme", "OrbitCache"}};
  EXPECT_EQ(CaptureLabel(rec), "fig15 point=3 rep=1 scheme=OrbitCache");
}

}  // namespace
}  // namespace orbit::harness
