// Reproducibility: the whole system is a deterministic function of its
// seed. EXPERIMENTS.md quotes exact numbers, which is only honest if two
// runs with the same configuration produce bit-identical results.
#include <gtest/gtest.h>

#include "testbed/testbed.h"

namespace orbit::testbed {
namespace {

TestbedConfig Config(uint64_t seed) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kOrbitCache;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 8;
  cfg.topo.server_rate_rps = 20'000;
  cfg.topo.client_rate_rps = 300'000;
  cfg.workload.num_keys = 50'000;
  cfg.workload.write_ratio = 0.1;
  cfg.cache.orbit_cache_size = 32;
  cfg.warmup = 10 * kMillisecond;
  cfg.duration = 50 * kMillisecond;
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const TestbedResult a = RunTestbed(Config(11));
  const TestbedResult b = RunTestbed(Config(11));
  EXPECT_EQ(a.rx_rps, b.rx_rps);
  EXPECT_EQ(a.tx_rps, b.tx_rps);
  EXPECT_EQ(a.cache_served_rps, b.cache_served_rps);
  EXPECT_EQ(a.server_loads, b.server_loads);
  EXPECT_EQ(a.lookup_hits, b.lookup_hits);
  EXPECT_EQ(a.absorbed, b.absorbed);
  EXPECT_EQ(a.overflows, b.overflows);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.read_cached_latency.count(), b.read_cached_latency.count());
  EXPECT_EQ(a.read_cached_latency.Percentile(0.99),
            b.read_cached_latency.Percentile(0.99));
  EXPECT_EQ(a.read_server_latency.Percentile(0.5),
            b.read_server_latency.Percentile(0.5));
}

TEST(Determinism, DifferentSeedsDiffer) {
  const TestbedResult a = RunTestbed(Config(11));
  const TestbedResult b = RunTestbed(Config(12));
  // Statistically indistinguishable in aggregate, but not bit-identical.
  EXPECT_NE(a.events_processed, b.events_processed);
}

TEST(Determinism, SchemesShareTheWorkloadStream) {
  // The same seed must offer the same keys/ops to every scheme, so
  // cross-scheme comparisons are paired: Tx counts match closely.
  TestbedConfig oc = Config(5);
  TestbedConfig nc = Config(5);
  nc.scheme = Scheme::kNoCache;
  const TestbedResult a = RunTestbed(oc);
  const TestbedResult b = RunTestbed(nc);
  EXPECT_NEAR(a.tx_rps, b.tx_rps, a.tx_rps * 0.001);
}

}  // namespace
}  // namespace orbit::testbed
