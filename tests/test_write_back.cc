// §3.10 write-back extension: the switch absorbs writes for cached items,
// replies immediately, keeps the dirty value circulating, and flushes it
// to the storage server on eviction.
#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig WriteBackRig() {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.orbit.write_back = true;
  cfg.num_servers = 1;
  return cfg;
}

TEST(WriteBack, CachedWriteAnsweredBySwitch) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  const uint64_t server_writes = rig.ServerFor(key).stats().writes;

  rig.SendWrite(key, 1, 128, /*version=*/10);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kWriteRep);
  EXPECT_EQ(reply->msg.cached, 1) << "the switch minted the reply";
  EXPECT_EQ(rig.ServerFor(key).stats().writes, server_writes)
      << "the server must not see the write";
  EXPECT_EQ(rig.program().stats().wb_returned_replies, 1u);
}

TEST(WriteBack, SubsequentReadsSeeTheDirtyValue) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendWrite(key, 1, 256);
  rig.Settle();

  rig.SendRead(key, 2);
  rig.Settle();
  const auto* read = rig.FindReply(2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.cached, 1);
  EXPECT_EQ(read->msg.value.size(), 256u);
  EXPECT_EQ(read->msg.value.version(), 2u)
      << "fetch loaded v1; the absorbed write bumped it to v2";
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1)
      << "the dirty packet replaced the clean one";
}

TEST(WriteBack, RepeatedWritesKeepOnePacketNewestWins) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  for (uint64_t v = 1; v <= 5; ++v) {
    rig.SendWrite(key, static_cast<uint32_t>(10 + v), 64);
    rig.Run(5 * kMicrosecond);
  }
  rig.Settle();
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1);
  rig.SendRead(key, 20);
  rig.Settle();
  ASSERT_NE(rig.FindReply(20), nullptr);
  EXPECT_EQ(rig.FindReply(20)->msg.value.version(), 6u)
      << "v1 fetched + five switch-serialized writes";
}

TEST(WriteBack, EvictionFlushesDirtyValueToServer) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendWrite(key, 1, 200);
  rig.Settle();
  ASSERT_EQ(rig.ServerFor(key).stats().flushes, 0u);

  // Evict: the dirty packet's next pass misses the lookup and converts
  // itself into a flush write toward its storage server.
  rig.program().EraseEntry(HashKey128(key));
  rig.Settle();
  EXPECT_EQ(rig.program().stats().wb_flushes, 1u);
  EXPECT_EQ(rig.ServerFor(key).stats().flushes, 1u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 0);

  // The server now holds the written value.
  rig.SendRead(key, 2);
  rig.Settle();
  const auto* read = rig.FindReply(2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.cached, 0);
  EXPECT_EQ(read->msg.value.version(), 2u) << "the flushed write";
  EXPECT_EQ(read->msg.value.size(), 200u);
}

TEST(WriteBack, CleanEvictionDoesNotFlush) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);  // fetched from the server: clean
  rig.program().EraseEntry(HashKey128(key));
  rig.Settle();
  EXPECT_EQ(rig.program().stats().wb_flushes, 0u);
  EXPECT_EQ(rig.ServerFor(key).stats().flushes, 0u);
}

TEST(WriteBack, UncachedWritesStillWriteThrough) {
  Rig rig(WriteBackRig());
  rig.SendWrite("cold-key-0000000", 1, 64);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.cached, 0);
  EXPECT_EQ(rig.ServerFor("cold-key-0000000").stats().writes, 1u);
}

TEST(WriteBack, SnapshotFlushesWithoutLosingTheCachePacket) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendWrite(key, 1, 128);  // dirty, v2
  rig.Settle();
  ASSERT_EQ(rig.ServerFor(key).stats().flushes, 0u);

  EXPECT_EQ(rig.program().RequestSnapshot(), 1u);
  rig.Settle();
  // The server received the value; the packet kept orbiting and serves.
  EXPECT_EQ(rig.program().stats().wb_snapshot_flushes, 1u);
  EXPECT_EQ(rig.ServerFor(key).stats().flushes, 1u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1);
  auto stored = rig.ServerFor(key).store().Get(key);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->version(), 2u);

  rig.SendRead(key, 5);
  rig.Settle();
  ASSERT_NE(rig.FindReply(5), nullptr);
  EXPECT_EQ(rig.FindReply(5)->msg.cached, 1);
  EXPECT_EQ(rig.FindReply(5)->msg.value.version(), 2u);

  // Clean entries are not re-flushed.
  EXPECT_EQ(rig.program().RequestSnapshot(), 0u);
}

TEST(WriteBack, SnapshotBoundsCrashLoss) {
  Rig rig(WriteBackRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendWrite(key, 1, 64);  // v2
  rig.Settle();
  rig.program().RequestSnapshot();
  rig.Settle();
  rig.SendWrite(key, 2, 64);  // v3, post-snapshot (would be lost)
  rig.Settle();

  rig.program().ResetDataPlane();  // crash
  rig.Settle();
  auto stored = rig.ServerFor(key).store().Get(key);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->version(), 2u)
      << "loss bounded to writes after the last snapshot";
}

TEST(WriteBack, ControllerDrivesPeriodicSnapshots) {
  RigConfig cfg = WriteBackRig();
  cfg.with_controller = true;
  cfg.controller.cache_size = 2;
  cfg.controller.max_cache_size = 8;
  cfg.controller.update_period = 2 * kMillisecond;
  cfg.controller.snapshot_period = 4 * kMillisecond;
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  rig.controller().Preload({key});
  rig.controller().Start();
  rig.Settle();

  rig.SendWrite(key, 1, 64);
  rig.Run(10 * kMillisecond);  // at least one snapshot period
  EXPECT_GE(rig.controller().stats().snapshot_entries_flushed, 1u);
  EXPECT_GE(rig.ServerFor(key).stats().flushes, 1u);
  auto stored = rig.ServerFor(key).store().Get(key);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->version(), 2u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1);
}

TEST(WriteBack, RequiresEpochGuard) {
  rmt::AsicConfig asic;
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "sw", asic);
  OrbitConfig bad;
  bad.write_back = true;
  bad.epoch_guard = false;
  EXPECT_THROW(OrbitProgram(&sw, bad), CheckFailure);
}

}  // namespace
}  // namespace orbit::oc
