#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace orbit {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2.NextU64() != c.NextU64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformU64StaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(rng.UniformU64(13), 13u);
}

TEST(Rng, UniformU64IsUnbiased) {
  Rng rng(7);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformU64(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    const double freq = static_cast<double>(counts[v]) / n;
    EXPECT_NEAR(freq, 0.1, 0.01) << "value " << v;
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  double mn = 1, mx = 0, sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_LT(mn, 0.001);
  EXPECT_GT(mx, 0.999);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMatchesMeanAndVariance) {
  Rng rng(11);
  const double mean = 250.0;
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, mean * 0.02);
  EXPECT_NEAR(std::sqrt(var), mean, mean * 0.03);  // exp: stddev == mean
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0), CheckFailure);
  EXPECT_THROW(rng.Exponential(-1), CheckFailure);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  Rng rng2(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng2.Bernoulli(0.0));
    EXPECT_TRUE(rng2.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace orbit
