// Fault injection (§3.9): the Gilbert–Elliott burst-loss model on links,
// the link down/up switchgear, the FaultInjector's scripted timeline, and
// end-to-end testbed runs around injected server crashes, switch resets,
// and controller-channel outages.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace orbit::fault {
namespace {

// ---- link-level models --------------------------------------------------

class Sink : public sim::Node {
 public:
  void OnPacket(sim::PacketPtr pkt, int) override {
    seqs.push_back(pkt->msg.seq);
  }
  std::string name() const override { return "sink"; }
  std::vector<uint32_t> seqs;
};

sim::PacketPtr Pkt(uint32_t seq) {
  auto pkt = sim::NewPacket(0, 0, 0, 0);
  pkt->msg.seq = seq;
  return pkt;
}

TEST(GilbertElliott, DisabledByDefault) {
  sim::GilbertElliottConfig ge;
  EXPECT_FALSE(ge.enabled());
  ge.p_enter_bad = 0.01;
  EXPECT_TRUE(ge.enabled());
}

TEST(GilbertElliott, StickyBadStateDropsEverything) {
  // p_enter_bad = 1 with no exit: the very first packet transitions the
  // channel into the bad state (transition precedes the loss draw) and
  // loss_bad = 1 then eats every packet.
  sim::Simulator sim;
  sim::Network net(&sim);
  Sink a, b;
  sim::LinkConfig cfg;
  cfg.burst_loss.p_enter_bad = 1.0;
  cfg.burst_loss.p_exit_bad = 0.0;
  cfg.burst_loss.loss_bad = 1.0;
  auto at = net.Connect(&a, &b, cfg);
  for (uint32_t i = 0; i < 50; ++i) net.Send(&a, 0, Pkt(i));
  sim.RunToCompletion();
  EXPECT_TRUE(b.seqs.empty());
  EXPECT_EQ(at.link->stats(0).lost, 50u);
}

TEST(GilbertElliott, LossesArriveInBursts) {
  // Bad episodes last 1/p_exit_bad ≈ 5 packets on average; independent
  // loss at the same long-run rate would average run length ~1. The mean
  // run length of consecutive drops is the burstiness signature.
  sim::Simulator sim;
  sim::Network net(&sim);
  Sink a, b;
  sim::LinkConfig cfg;
  cfg.burst_loss.p_enter_bad = 0.05;
  cfg.burst_loss.p_exit_bad = 0.2;
  cfg.burst_loss.loss_bad = 1.0;
  cfg.loss_seed = 7;
  auto at = net.Connect(&a, &b, cfg);
  const uint32_t kN = 4000;
  for (uint32_t i = 0; i < kN; ++i) net.Send(&a, 0, Pkt(i));
  sim.RunToCompletion();

  const uint64_t lost = at.link->stats(0).lost;
  ASSERT_GT(lost, 0u);
  ASSERT_EQ(lost + b.seqs.size(), kN);
  std::set<uint32_t> delivered(b.seqs.begin(), b.seqs.end());
  uint64_t runs = 0;
  bool in_run = false;
  for (uint32_t i = 0; i < kN; ++i) {
    const bool dropped = delivered.count(i) == 0;
    if (dropped && !in_run) ++runs;
    in_run = dropped;
  }
  ASSERT_GT(runs, 0u);
  const double mean_run = static_cast<double>(lost) / runs;
  EXPECT_GT(mean_run, 2.0) << "losses should cluster into bursts";
}

TEST(LinkDown, DropsEverythingWithoutTouchingTheLossRng) {
  // Run the same lossy link twice (same Network creation index, so the
  // same mixed seed). In run B, 50 packets are offered while the link is
  // down before the real traffic; since down-drops never draw the RNG,
  // run B's survivor pattern must match run A's draw-for-draw.
  sim::LinkConfig cfg;
  cfg.loss_rate = 0.4;
  cfg.loss_seed = 11;

  sim::Simulator sim_a;
  sim::Network net_a(&sim_a);
  Sink a1, a2;
  net_a.Connect(&a1, &a2, cfg);
  for (uint32_t i = 0; i < 200; ++i) net_a.Send(&a1, 0, Pkt(i));
  sim_a.RunToCompletion();
  ASSERT_GT(a2.seqs.size(), 0u);
  ASSERT_LT(a2.seqs.size(), 200u);

  sim::Simulator sim_b;
  sim::Network net_b(&sim_b);
  Sink b1, b2;
  auto at = net_b.Connect(&b1, &b2, cfg);
  at.link->set_down(true);
  EXPECT_TRUE(at.link->down());
  for (uint32_t i = 0; i < 50; ++i) net_b.Send(&b1, 0, Pkt(1000 + i));
  EXPECT_EQ(at.link->stats(0).down_drops, 50u)
      << "down link discards everything";
  at.link->set_down(false);
  for (uint32_t i = 0; i < 200; ++i) net_b.Send(&b1, 0, Pkt(i));
  sim_b.RunToCompletion();
  EXPECT_EQ(a2.seqs, b2.seqs)
      << "a down/up episode must not perturb later loss draws";
}

TEST(ConfigFingerprint, FaultScheduleChangesIdentity) {
  testbed::TestbedConfig base;
  testbed::TestbedConfig with_fault = base;
  with_fault.fault = SwitchResetAt(5 * kMillisecond);
  testbed::TestbedConfig with_burst = base;
  with_burst.fault.server_burst_loss.p_enter_bad = 0.01;
  EXPECT_NE(testbed::ConfigFingerprint(base),
            testbed::ConfigFingerprint(with_fault));
  EXPECT_NE(testbed::ConfigFingerprint(base),
            testbed::ConfigFingerprint(with_burst));
  EXPECT_NE(testbed::ConfigFingerprint(with_fault),
            testbed::ConfigFingerprint(with_burst));
}

// ---- FaultInjector ------------------------------------------------------

TEST(FaultInjector, FiresHooksAtScheduledTimes) {
  sim::Simulator sim;
  FaultSchedule schedule;
  schedule.events.push_back({10 * kMicrosecond, FaultKind::kServerCrash, 3});
  schedule.events.push_back({20 * kMicrosecond, FaultKind::kServerRestart, 3});
  schedule.events.push_back({30 * kMicrosecond, FaultKind::kCtrlDown, -1});
  schedule.events.push_back({40 * kMicrosecond, FaultKind::kCtrlUp, -1});
  schedule.events.push_back({50 * kMicrosecond, FaultKind::kSwitchReset, -1});
  schedule.switch_rebuild_delay = 5 * kMicrosecond;

  struct Entry {
    SimTime at;
    std::string what;
  };
  std::vector<Entry> log;
  FaultHooks hooks;
  hooks.set_server_link_down = [&](int server, bool down) {
    log.push_back({sim.now(), std::string(down ? "crash:" : "restart:") +
                                  std::to_string(server)});
  };
  hooks.set_ctrl_link_down = [&](bool down) {
    log.push_back({sim.now(), down ? "ctrl_down" : "ctrl_up"});
  };
  hooks.reset_switch = [&] { log.push_back({sim.now(), "reset"}); };
  hooks.rebuild_cache = [&] { log.push_back({sim.now(), "rebuild"}); };

  FaultInjector injector(&sim, schedule, std::move(hooks));
  injector.Arm();
  sim.RunToCompletion();

  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0].what, "crash:3");
  EXPECT_EQ(log[0].at, 10 * kMicrosecond);
  EXPECT_EQ(log[1].what, "restart:3");
  EXPECT_EQ(log[2].what, "ctrl_down");
  EXPECT_EQ(log[3].what, "ctrl_up");
  EXPECT_EQ(log[4].what, "reset");
  EXPECT_EQ(log[4].at, 50 * kMicrosecond);
  EXPECT_EQ(log[5].what, "rebuild");
  EXPECT_EQ(log[5].at, 55 * kMicrosecond) << "rebuild_delay after the reset";

  const FaultInjector::Stats& s = injector.stats();
  EXPECT_EQ(s.server_crashes, 1u);
  EXPECT_EQ(s.server_restarts, 1u);
  EXPECT_EQ(s.switch_resets, 1u);
  EXPECT_EQ(s.cache_rebuilds, 1u);
  EXPECT_EQ(s.ctrl_transitions, 2u);
  EXPECT_EQ(s.injected, 6u);
}

TEST(FaultInjector, EmptyHooksAreCountedNoops) {
  sim::Simulator sim;
  FaultSchedule schedule = ServerCrashAt(0, kMicrosecond, 2 * kMicrosecond);
  FaultInjector injector(&sim, schedule, FaultHooks{});
  injector.Arm();
  sim.RunToCompletion();
  EXPECT_EQ(injector.stats().injected, 2u);
  EXPECT_EQ(injector.stats().cache_rebuilds, 0u);
}

TEST(FaultSchedule, BuildersAndEmptiness) {
  FaultSchedule none;
  EXPECT_TRUE(none.empty());
  FaultSchedule reset = SwitchResetAt(3 * kMillisecond, kMillisecond);
  EXPECT_FALSE(reset.empty());
  ASSERT_EQ(reset.events.size(), 1u);
  EXPECT_EQ(reset.events[0].kind, FaultKind::kSwitchReset);
  EXPECT_EQ(reset.switch_rebuild_delay, kMillisecond);
  FaultSchedule crash = ServerCrashAt(2, kMillisecond, 4 * kMillisecond);
  ASSERT_EQ(crash.events.size(), 2u);
  EXPECT_EQ(crash.events[0].kind, FaultKind::kServerCrash);
  EXPECT_EQ(crash.events[1].kind, FaultKind::kServerRestart);
  EXPECT_EQ(crash.events[1].server, 2);
  FaultSchedule burst_only;
  burst_only.server_burst_loss.p_enter_bad = 0.01;
  EXPECT_FALSE(burst_only.empty());
}

// ---- end-to-end testbed runs -------------------------------------------

testbed::TestbedConfig TinyConfig() {
  testbed::TestbedConfig cfg;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 4;
  cfg.workload.num_keys = 2'000;
  cfg.topo.server_rate_rps = 100'000;
  cfg.topo.client_rate_rps = 400'000;
  cfg.warmup = 2 * kMillisecond;
  cfg.duration = 10 * kMillisecond;
  return cfg;
}

TEST(TestbedFaults, ServerCrashCollapsesThenRecoversWithRetries) {
  testbed::TestbedConfig cfg = TinyConfig();
  cfg.scheme = testbed::Scheme::kNoCache;
  // Mild skew and headroom below saturation: the clean run must be
  // genuinely timeout-free so every retransmission is fault-attributable.
  cfg.workload.zipf_theta = 0.5;
  cfg.topo.client_rate_rps = 250'000;
  cfg.client.max_retries = 2;
  cfg.client.request_timeout = 2 * kMillisecond;
  const testbed::TestbedResult clean = testbed::RunTestbed(cfg);
  ASSERT_EQ(clean.faults_injected, 0u);
  ASSERT_EQ(clean.retransmissions, 0u);

  cfg.fault = ServerCrashAt(0, 4 * kMillisecond, 8 * kMillisecond);
  const testbed::TestbedResult faulted = testbed::RunTestbed(cfg);
  EXPECT_EQ(faulted.faults_injected, 2u) << "crash + restart";
  EXPECT_GT(faulted.retransmissions, 0u)
      << "requests to the dead server must be retried";
  EXPECT_LT(faulted.rx_rps, clean.rx_rps)
      << "a quarter of the key space was dark for 4 of 10 ms";
  EXPECT_GT(faulted.rx_rps, 0.5 * clean.rx_rps)
      << "the other servers keep serving through the outage";
}

TEST(TestbedFaults, SwitchResetIsRebuiltByTheController) {
  testbed::TestbedConfig cfg = TinyConfig();
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.cache.orbit_cache_size = 32;
  cfg.client.max_retries = 2;
  cfg.client.request_timeout = kMillisecond;
  cfg.fault = SwitchResetAt(5 * kMillisecond, kMillisecond);
  const testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 2u) << "reset + cache rebuild";
  EXPECT_GT(res.cache_entries, 0u)
      << "the controller reinstalls its shadow copy after the reset";
  EXPECT_GT(res.cache_served_rps, 0.0)
      << "cached service resumes after the rebuild";
}

TEST(TestbedFaults, CtrlChannelOutageIsInjected) {
  testbed::TestbedConfig cfg = TinyConfig();
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.control.run_cache_updates = true;
  cfg.control.update_period = 2 * kMillisecond;
  cfg.control.report_period = 2 * kMillisecond;
  cfg.fault.events.push_back({4 * kMillisecond, FaultKind::kCtrlDown, -1});
  cfg.fault.events.push_back({7 * kMillisecond, FaultKind::kCtrlUp, -1});
  const testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.faults_injected, 2u);
  EXPECT_GT(res.rx_rps, 0.0) << "data path keeps serving without the CPU";
}

TEST(TestbedFaults, BurstLossIsAbsorbedByRetransmission) {
  testbed::TestbedConfig cfg = TinyConfig();
  cfg.scheme = testbed::Scheme::kNoCache;
  cfg.client.request_timeout = kMillisecond;
  cfg.fault.server_burst_loss.p_enter_bad = 0.02;
  cfg.fault.server_burst_loss.p_exit_bad = 0.3;

  cfg.client.max_retries = 0;
  const testbed::TestbedResult no_retry = testbed::RunTestbed(cfg);
  cfg.client.max_retries = 3;
  const testbed::TestbedResult retry = testbed::RunTestbed(cfg);

  EXPECT_GT(no_retry.timeouts, 0u) << "burst loss must bite without retries";
  EXPECT_GT(retry.retransmissions, 0u);
  EXPECT_LT(retry.timeouts, no_retry.timeouts)
      << "retries recover most lost requests";
  EXPECT_GT(retry.rx_rps, no_retry.rx_rps);
}

TEST(TestbedFaults, RetryBudgetIsResultsNeutralWithoutLoss) {
  // With no loss and no faults a deadline never finds a pending request
  // still unanswered, so enabling retries changes nothing — not even the
  // event count (one deadline event is armed per request either way).
  testbed::TestbedConfig cfg = TinyConfig();
  cfg.client.max_retries = 0;
  const testbed::TestbedResult a = testbed::RunTestbed(cfg);
  cfg.client.max_retries = 3;
  const testbed::TestbedResult b = testbed::RunTestbed(cfg);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.rx_rps, b.rx_rps);
  EXPECT_DOUBLE_EQ(a.tx_rps, b.tx_rps);
  EXPECT_EQ(a.timeouts, 0u);
  EXPECT_EQ(b.timeouts, 0u);
  EXPECT_EQ(b.retransmissions, 0u);
  EXPECT_EQ(a.inflight_at_stop, b.inflight_at_stop);
}

}  // namespace
}  // namespace orbit::fault
