#include "sim/link.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::sim {
namespace {

class Recorder : public Node {
 public:
  void OnPacket(PacketPtr pkt, int port) override {
    arrivals.push_back({pkt->msg.seq, port, now_fn()});
  }
  std::string name() const override { return "recorder"; }

  struct Arrival {
    uint32_t seq;
    int port;
    SimTime at;
  };
  std::vector<Arrival> arrivals;
  std::function<SimTime()> now_fn;
};

PacketPtr MakeSized(uint32_t seq, uint32_t value_bytes) {
  auto pkt = NewPacket(0, 0, 0, 0);
  pkt->msg.seq = seq;
  pkt->msg.value = kv::Value::Synthetic(value_bytes, 1);
  return pkt;
}

class LinkTest : public ::testing::Test {
 protected:
  LinkTest() : net_(&sim_) {
    a_.now_fn = b_.now_fn = [this] { return sim_.now(); };
  }

  Simulator sim_;
  Network net_{&sim_};
  Recorder a_, b_;
};

TEST_F(LinkTest, DeliversAfterSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.rate_gbps = 10.0;   // 0.8 ns per byte
  cfg.propagation = 500;
  net_.Connect(&a_, &b_, cfg);
  // 46B encap + 36B header = 82 bytes -> 65 ns serialization (truncated).
  net_.Send(&a_, 0, MakeSized(1, 0));
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(b_.arrivals[0].at, 65 + 500);
}

TEST_F(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  LinkConfig cfg;
  cfg.rate_gbps = 8.0;  // 1 ns per byte -> 82 ns per empty packet
  cfg.propagation = 0;
  net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 0));
  net_.Send(&a_, 0, MakeSized(2, 0));
  net_.Send(&a_, 0, MakeSized(3, 0));
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 3u);
  EXPECT_EQ(b_.arrivals[0].at, 82);
  EXPECT_EQ(b_.arrivals[1].at, 164);  // waits for the wire
  EXPECT_EQ(b_.arrivals[2].at, 246);
}

TEST_F(LinkTest, LargerPacketsTakeProportionallyLonger) {
  LinkConfig cfg;
  cfg.rate_gbps = 8.0;
  cfg.propagation = 0;
  net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 1024));  // 82 + 1024 bytes -> 1106 ns
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(b_.arrivals[0].at, 1106);
}

TEST_F(LinkTest, DropTailWhenQueueFull) {
  LinkConfig cfg;
  cfg.rate_gbps = 0.008;  // 125 ns per byte: effectively frozen wire
  cfg.propagation = 0;
  cfg.queue_limit_bytes = 200;  // fits two empty (82B) packets
  auto at = net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 0));
  net_.Send(&a_, 0, MakeSized(2, 0));
  net_.Send(&a_, 0, MakeSized(3, 0));  // dropped
  EXPECT_EQ(at.link->stats(0).drops, 1u);
  EXPECT_EQ(at.link->stats(0).packets, 2u);
}

TEST_F(LinkTest, BacklogDrainsOverTime) {
  LinkConfig cfg;
  cfg.rate_gbps = 8.0;  // 82 ns per empty packet
  cfg.propagation = 0;
  cfg.queue_limit_bytes = 170;  // two 82B packets fit, a third does not
  auto at = net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 0));
  net_.Send(&a_, 0, MakeSized(2, 0));
  net_.Send(&a_, 0, MakeSized(3, 0));  // over the 170B bound -> dropped
  EXPECT_EQ(at.link->stats(0).drops, 1u);
  sim_.RunToCompletion();
  // After draining, new sends are accepted again.
  net_.Send(&a_, 0, MakeSized(4, 0));
  sim_.RunToCompletion();
  EXPECT_EQ(b_.arrivals.size(), 3u);
  EXPECT_EQ(at.link->stats(0).drops, 1u);
}

TEST_F(LinkTest, DirectionsAreIndependent) {
  LinkConfig cfg;
  cfg.rate_gbps = 8.0;
  cfg.propagation = 100;
  net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 0));
  net_.Send(&b_, 0, MakeSized(2, 0));
  sim_.RunToCompletion();
  ASSERT_EQ(a_.arrivals.size(), 1u);
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(a_.arrivals[0].seq, 2u);
  EXPECT_EQ(b_.arrivals[0].seq, 1u);
  // Same timing both ways: no cross-direction interference.
  EXPECT_EQ(a_.arrivals[0].at, b_.arrivals[0].at);
}

TEST_F(LinkTest, ExtraDelayShiftsDeparture) {
  LinkConfig cfg;
  cfg.rate_gbps = 8.0;
  cfg.propagation = 0;
  net_.Connect(&a_, &b_, cfg);
  net_.Send(&a_, 0, MakeSized(1, 0), /*extra_delay=*/1000);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.arrivals.size(), 1u);
  EXPECT_EQ(b_.arrivals[0].at, 1000 + 82);
}

TEST_F(LinkTest, SameConfigLossyLinksDropDifferentPackets) {
  // Network::Connect mixes each link's creation index into the loss seed,
  // so two links with identical configs (including loss_seed) must not
  // lose the same-numbered packets in lockstep.
  LinkConfig cfg;
  cfg.propagation = 0;
  cfg.loss_rate = 0.5;
  cfg.loss_seed = 1;
  Recorder a2, b2;
  a2.now_fn = b2.now_fn = [this] { return sim_.now(); };
  auto l1 = net_.Connect(&a_, &b_, cfg);
  auto l2 = net_.Connect(&a2, &b2, cfg);
  const uint32_t kN = 400;
  for (uint32_t i = 0; i < kN; ++i) {
    net_.Send(&a_, 0, MakeSized(i, 0));
    net_.Send(&a2, 0, MakeSized(i, 0));
  }
  sim_.RunToCompletion();
  auto survivors = [](const Recorder& r) {
    std::set<uint32_t> s;
    for (const auto& ar : r.arrivals) s.insert(ar.seq);
    return s;
  };
  const std::set<uint32_t> s1 = survivors(b_);
  const std::set<uint32_t> s2 = survivors(b2);
  // Both links actually lose packets...
  EXPECT_EQ(l1.link->stats(0).lost + s1.size(), kN);
  EXPECT_EQ(l2.link->stats(0).lost + s2.size(), kN);
  EXPECT_GT(l1.link->stats(0).lost, 0u);
  EXPECT_GT(l2.link->stats(0).lost, 0u);
  // ...but never the same pattern.
  EXPECT_NE(s1, s2) << "per-link seed mixing must decorrelate loss";
}

TEST_F(LinkTest, NetworkAssignsDistinctPorts) {
  Recorder hub;
  hub.now_fn = [this] { return sim_.now(); };
  auto at1 = net_.Connect(&a_, &hub, LinkConfig{});
  auto at2 = net_.Connect(&b_, &hub, LinkConfig{});
  EXPECT_EQ(at1.port_b, 0);
  EXPECT_EQ(at2.port_b, 1);
  EXPECT_EQ(net_.num_ports(&hub), 2);
  net_.Send(&a_, 0, MakeSized(1, 0));
  net_.Send(&b_, 0, MakeSized(2, 0));
  sim_.RunToCompletion();
  ASSERT_EQ(hub.arrivals.size(), 2u);
  EXPECT_EQ(hub.arrivals[0].port, 0);
  EXPECT_EQ(hub.arrivals[1].port, 1);
}

}  // namespace
}  // namespace orbit::sim
