// Storage-server shim behaviour: rate limiting, reply shapes, lazy value
// synthesis, and top-k reporting (§3.1, §4).
#include "apps/server.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::app {
namespace {

constexpr Addr kClient = 1, kServer = 2, kController = 3;
constexpr L4Port kPort = 5008;

class Catcher : public sim::Node {
 public:
  explicit Catcher(sim::Simulator* sim) : sim_(sim) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    replies.emplace_back(pkt->msg, sim_->now());
  }
  std::string name() const override { return "catcher"; }
  std::vector<std::pair<proto::Message, SimTime>> replies;
  sim::Simulator* sim_;
};

class ServerTest : public ::testing::Test {
 protected:
  void Build(double rate_rps, Addr controller = kInvalidAddr,
             SimTime report_period = 10 * kMillisecond) {
    ServerConfig cfg;
    cfg.addr = kServer;
    cfg.srv_id = 7;
    cfg.orbit_port = kPort;
    cfg.service_rate_rps = rate_rps;
    cfg.rx_queue_limit = 4;
    cfg.controller_addr = controller;
    cfg.report_period = report_period;
    cfg.report_k = 4;
    server_ = std::make_unique<ServerNode>(&sim_, &net_, 0, cfg,
                                           [](const Key&) { return 40u; });
    // The catcher plays both client and controller: two separate links.
    auto s = net_.Connect(server_.get(), &catcher_, sim::LinkConfig{});
    (void)s;
    server_->Start();
  }

  void Send(proto::Op op, const Key& key, uint32_t seq, uint32_t size = 0,
            uint8_t flag = 0, uint64_t version = 0) {
    proto::Message msg;
    msg.op = op;
    msg.seq = seq;
    msg.key = key;
    msg.flag = flag;
    if (size > 0 || version > 0) msg.value = kv::Value::Synthetic(size, version);
    auto pkt = sim::MakePacket(kClient, kServer, 9000, kPort, std::move(msg));
    // Deliver straight to the server (the catcher owns the far end).
    sim_.Deliver(sim_.now(), server_.get(), 0, std::move(pkt));
  }

  const proto::Message* Find(uint32_t seq) {
    for (auto& [msg, at] : catcher_.replies)
      if (msg.seq == seq) return &msg;
    return nullptr;
  }

  sim::Simulator sim_;
  sim::Network net_{&sim_};
  Catcher catcher_{&sim_};
  std::unique_ptr<ServerNode> server_;
};

TEST_F(ServerTest, ReadSynthesizesValueLazily) {
  Build(0);
  EXPECT_EQ(server_->store().size(), 0u);
  Send(proto::Op::kReadReq, "some-key", 1);
  sim_.RunToCompletion();
  const auto* rep = Find(1);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->op, proto::Op::kReadRep);
  EXPECT_EQ(rep->key, "some-key");
  EXPECT_EQ(rep->value.size(), 40u);
  EXPECT_EQ(rep->srv_id, 7);
  EXPECT_EQ(server_->store().size(), 1u);
  // Second read reuses the stored value (same version).
  Send(proto::Op::kReadReq, "some-key", 2);
  sim_.RunToCompletion();
  EXPECT_EQ(Find(2)->value.version(), Find(1)->value.version());
}

TEST_F(ServerTest, WriteRepliesCarryValueOnlyWhenFlagged) {
  Build(0);
  Send(proto::Op::kWriteReq, "k", 1, /*size=*/80);
  sim_.RunToCompletion();
  ASSERT_NE(Find(1), nullptr);
  EXPECT_EQ(Find(1)->value.size(), 0u) << "uncached write: metadata only";
  EXPECT_EQ(Find(1)->value.version(), 1u);

  Send(proto::Op::kWriteReq, "k", 2, /*size=*/80, proto::kFlagCachedWrite);
  sim_.RunToCompletion();
  ASSERT_NE(Find(2), nullptr);
  EXPECT_EQ(Find(2)->value.size(), 80u)
      << "cached write: value appended for the switch (§3.3)";
  EXPECT_EQ(Find(2)->value.version(), 2u);
  EXPECT_NE(Find(2)->flag & proto::kFlagCachedWrite, 0);
}

TEST_F(ServerTest, FlushWritesApplySilently) {
  Build(0);
  Send(proto::Op::kWriteReq, "k", 1, /*size=*/64, proto::kFlagFlush,
       /*version=*/9);
  sim_.RunToCompletion();
  EXPECT_EQ(Find(1), nullptr) << "no reply to a flush";
  EXPECT_EQ(server_->stats().flushes, 1u);
  auto v = server_->store().Get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version(), 9u);
}

TEST_F(ServerTest, FetchRepliesEchoRequester) {
  Build(0);
  proto::Message msg;
  msg.op = proto::Op::kFetchReq;
  msg.seq = 5;
  msg.key = "fetch-me";
  msg.epoch = 33;
  sim_.Deliver(sim_.now(), server_.get(), 0,
               sim::MakePacket(kController, kServer, kPort, kPort,
                               std::move(msg)));
  sim_.RunToCompletion();
  const auto* rep = Find(5);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->op, proto::Op::kFetchRep);
  EXPECT_EQ(rep->epoch, 33u) << "epoch echoed for the coherence guard";
  EXPECT_EQ(rep->value.size(), 40u);
}

TEST_F(ServerTest, RateLimitSpacesCompletions) {
  Build(100'000);  // 10us service time
  for (uint32_t i = 0; i < 3; ++i) Send(proto::Op::kReadReq, "k", i);
  sim_.RunToCompletion();
  ASSERT_EQ(catcher_.replies.size(), 3u);
  const SimTime t0 = catcher_.replies[0].second;
  const SimTime t1 = catcher_.replies[1].second;
  const SimTime t2 = catcher_.replies[2].second;
  EXPECT_NEAR(static_cast<double>(t1 - t0), 10'000, 100);
  EXPECT_NEAR(static_cast<double>(t2 - t1), 10'000, 100);
}

TEST_F(ServerTest, QueueOverflowDrops) {
  Build(100'000);
  for (uint32_t i = 0; i < 10; ++i) Send(proto::Op::kReadReq, "k", i);
  sim_.RunToCompletion();
  EXPECT_EQ(server_->stats().dropped, 6u) << "queue limit is 4";
  EXPECT_EQ(catcher_.replies.size(), 4u);
}

TEST_F(ServerTest, TopKReportsHotKeys) {
  Build(0, kController, 5 * kMillisecond);
  for (int round = 0; round < 20; ++round) {
    Send(proto::Op::kReadReq, "hot", 1000 + static_cast<uint32_t>(round));
    if (round % 4 == 0)
      Send(proto::Op::kReadReq, "mild", 2000 + static_cast<uint32_t>(round));
    // Space the burst out so the 4-slot Rx queue never overflows.
    sim_.RunUntil(sim_.now() + 50 * kMicrosecond);
  }
  sim_.RunUntil(6 * kMillisecond);
  std::vector<std::pair<Key, uint64_t>> reported;
  for (auto& [msg, at] : catcher_.replies)
    if (msg.op == proto::Op::kTopKReport)
      reported.emplace_back(msg.key, msg.value.version());
  ASSERT_GE(reported.size(), 2u);
  EXPECT_EQ(reported[0].first, "hot");
  EXPECT_GE(reported[0].second, 20u);
}

TEST_F(ServerTest, CorrectionsServedLikeReads) {
  Build(0);
  Send(proto::Op::kCorrectionReq, "fix-me", 9);
  sim_.RunToCompletion();
  const auto* rep = Find(9);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->op, proto::Op::kReadRep);
  EXPECT_EQ(rep->key, "fix-me");
  EXPECT_EQ(server_->stats().corrections, 1u);
}

}  // namespace
}  // namespace orbit::app
