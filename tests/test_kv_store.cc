#include "kv/kv_store.h"

#include <gtest/gtest.h>

namespace orbit::kv {
namespace {

TEST(KvStore, GetMissesUntilPut) {
  KvStore store;
  EXPECT_FALSE(store.Get("k").has_value());
  store.Put("k", 64);
  ASSERT_TRUE(store.Get("k").has_value());
  EXPECT_EQ(store.Get("k")->size(), 64u);
}

TEST(KvStore, VersionsAreMonotonicPerKey) {
  KvStore store;
  EXPECT_EQ(store.Put("k", 10), 1u);
  EXPECT_EQ(store.Put("k", 20), 2u);
  EXPECT_EQ(store.Put("k", 30), 3u);
  EXPECT_EQ(store.Get("k")->version(), 3u);
  EXPECT_EQ(store.Put("other", 10), 1u) << "versions are per key";
}

TEST(KvStore, PutVersionedNeverRegresses) {
  KvStore store;
  store.Put("k", 10);
  store.Put("k", 10);  // version 2
  EXPECT_EQ(store.PutVersioned("k", 99, 1), 2u) << "older flush ignored";
  EXPECT_EQ(store.Get("k")->size(), 10u);
  EXPECT_EQ(store.PutVersioned("k", 99, 7), 7u);
  EXPECT_EQ(store.Get("k")->version(), 7u);
  EXPECT_EQ(store.Get("k")->size(), 99u);
}

TEST(KvStore, PutVersionedCreatesMissingKey) {
  KvStore store;
  EXPECT_EQ(store.PutVersioned("k", 32, 5), 5u);
  EXPECT_EQ(store.Get("k")->version(), 5u);
}

TEST(KvStore, EraseRemoves) {
  KvStore store;
  store.Put("k", 10);
  EXPECT_TRUE(store.Erase("k"));
  EXPECT_FALSE(store.Get("k").has_value());
  EXPECT_FALSE(store.Erase("k"));
}

TEST(KvStore, StatsCountOperations) {
  KvStore store;
  store.Get("a");
  store.Put("a", 1);
  store.Get("a");
  store.Erase("a");
  const auto& s = store.stats();
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.erases, 1u);
}

}  // namespace
}  // namespace orbit::kv
