#include "workload/top_k.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "workload/zipf.h"

namespace orbit::wl {
namespace {

TEST(TopK, FindsExactTopOnDistinctCounts) {
  TopKTracker tracker(3);
  for (int i = 0; i < 50; ++i) tracker.Update("hot");
  for (int i = 0; i < 30; ++i) tracker.Update("warm");
  for (int i = 0; i < 10; ++i) tracker.Update("mild");
  for (int i = 0; i < 2; ++i) tracker.Update("cold" + std::to_string(i));

  const auto top = tracker.Snapshot();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_EQ(top[1].key, "warm");
  EXPECT_EQ(top[2].key, "mild");
  EXPECT_GE(top[0].count, 50u);
}

TEST(TopK, ResetForgetsHistory) {
  TopKTracker tracker(2);
  tracker.Update("a", 100);
  tracker.Reset();
  tracker.Update("b", 1);
  const auto top = tracker.Snapshot();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "b");
}

TEST(TopK, SnapshotIsSortedDescending) {
  TopKTracker tracker(8);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i)
    tracker.Update("k" + std::to_string(rng.UniformU64(50)));
  const auto top = tracker.Snapshot();
  for (size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].count, top[i].count);
}

TEST(TopK, RecoversZipfHeadUnderChurn) {
  // The server-side use case: identify the hottest uncached keys among a
  // large churning key population within sketch memory.
  TopKTracker tracker(16, 5, 4096);
  ZipfGenerator zipf(100000, 0.99);
  Rng rng(7);
  for (int i = 0; i < 300000; ++i)
    tracker.Update("key" + std::to_string(zipf.Sample(rng)));
  const auto top = tracker.Snapshot();
  ASSERT_GE(top.size(), 8u);
  // The true hottest keys (ranks 0..3) must all be present.
  std::unordered_map<std::string, bool> found;
  for (const auto& e : top) found[e.key] = true;
  for (int r = 0; r < 4; ++r)
    EXPECT_TRUE(found.count("key" + std::to_string(r)))
        << "missing rank " << r;
}

TEST(TopK, CandidateSetStaysBounded) {
  TopKTracker tracker(4);
  for (int i = 0; i < 10000; ++i) tracker.Update("k" + std::to_string(i));
  EXPECT_LE(tracker.Snapshot().size(), 4u);
}

}  // namespace
}  // namespace orbit::wl
