// Declarative sweep layer: grid expansion order, seed derivation, and the
// single source of truth for quick/default/full scaling.
#include "harness/spec.h"

#include <gtest/gtest.h>

#include <set>

namespace orbit::harness {
namespace {

ExperimentSpec TwoAxisSpec() {
  ExperimentSpec spec;
  spec.name = "unit_two_axis";
  spec.axes = {SchemeAxis({testbed::Scheme::kNoCache,
                           testbed::Scheme::kOrbitCache}),
               NumericAxis("zipf_theta", {0.9, 0.99},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.zipf_theta = v;
                           })};
  return spec;
}

TEST(ExpandGrid, RowMajorLastAxisFastest) {
  const ExperimentSpec spec = TwoAxisSpec();
  const auto points = ExpandGrid(spec, Scale::kQuick, 42);
  ASSERT_EQ(points.size(), 4u);
  // (scheme, zipf): NoCache×0.9, NoCache×0.99, Orbit×0.9, Orbit×0.99.
  EXPECT_EQ(points[0].params[0].second, "NoCache");
  EXPECT_EQ(points[0].params[1].second, "0.9");
  EXPECT_EQ(points[1].params[0].second, "NoCache");
  EXPECT_EQ(points[1].params[1].second, "0.99");
  EXPECT_EQ(points[2].params[0].second, "OrbitCache");
  EXPECT_EQ(points[3].params[1].second, "0.99");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(points[i].point, i);
  // The apply functions actually landed on the config.
  EXPECT_EQ(points[2].config.scheme, testbed::Scheme::kOrbitCache);
  EXPECT_DOUBLE_EQ(points[1].config.workload.zipf_theta, 0.99);
  EXPECT_DOUBLE_EQ(points[1].Value("zipf_theta"), 0.99);
}

TEST(ExpandGrid, AppliesScaleProfileAndScaleFn) {
  ExperimentSpec spec = TwoAxisSpec();
  spec.scale_fn = [](testbed::TestbedConfig& cfg, Scale) {
    cfg.duration = cfg.duration / 2;
  };
  const ScaleProfile quick = PaperScaleProfile(Scale::kQuick);
  const auto points = ExpandGrid(spec, Scale::kQuick, 42);
  EXPECT_EQ(points[0].config.workload.num_keys, quick.num_keys);
  EXPECT_EQ(points[0].config.warmup, quick.warmup);
  EXPECT_EQ(points[0].config.duration, quick.duration / 2);

  spec.apply_paper_scale = false;
  const auto raw = ExpandGrid(spec, Scale::kQuick, 42);
  EXPECT_EQ(raw[0].config.workload.num_keys, spec.base.workload.num_keys);
  EXPECT_EQ(raw[0].config.duration, spec.base.duration / 2);
}

TEST(ExpandGrid, RepetitionsInnerAndSeedsDerived) {
  ExperimentSpec spec = TwoAxisSpec();
  spec.repetitions = 3;
  const auto points = ExpandGrid(spec, Scale::kQuick, 42);
  ASSERT_EQ(points.size(), 12u);
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].point, static_cast<int>(i / 3));
    EXPECT_EQ(points[i].rep, static_cast<int>(i % 3));
    // Rep 0 keeps the base seed so single-rep figures reproduce the
    // documented numbers; further reps get derived seeds.
    if (points[i].rep == 0) {
      EXPECT_EQ(points[i].seed, 42u);
    } else {
      EXPECT_NE(points[i].seed, 42u);
      seeds.insert(points[i].seed);
    }
    EXPECT_EQ(points[i].config.seed, points[i].seed);
  }
  EXPECT_EQ(seeds.size(), 8u);  // 4 points x 2 derived reps, all distinct
}

TEST(DeriveSeed, StableAndExperimentScoped) {
  EXPECT_EQ(DeriveSeed(42, "fig09_skewness", 3, 0), 42u);
  const uint64_t a = DeriveSeed(42, "fig09_skewness", 3, 1);
  EXPECT_EQ(DeriveSeed(42, "fig09_skewness", 3, 1), a);  // deterministic
  EXPECT_NE(DeriveSeed(42, "fig12_write_ratio", 3, 1), a);
  EXPECT_NE(DeriveSeed(42, "fig09_skewness", 4, 1), a);
  EXPECT_NE(DeriveSeed(42, "fig09_skewness", 3, 2), a);
  EXPECT_NE(DeriveSeed(43, "fig09_skewness", 3, 1), a);
}

TEST(ScaledPaperConfig, FullIsSection51) {
  const testbed::TestbedConfig cfg = ScaledPaperConfig(Scale::kFull);
  EXPECT_EQ(cfg.topo.num_clients, 4);
  EXPECT_EQ(cfg.topo.num_servers, 32);
  EXPECT_EQ(cfg.workload.num_keys, 10'000'000u);
  EXPECT_DOUBLE_EQ(cfg.workload.zipf_theta, 0.99);
  EXPECT_EQ(cfg.cache.orbit_cache_size, 128u);
  EXPECT_EQ(cfg.seed, 42u);
}

TEST(NumericAxis, LabelsUseShortestForm) {
  const ParamAxis axis = NumericAxis("x", {0.25, 16, 1416}, nullptr);
  EXPECT_EQ(axis.params[0].label, "0.25");
  EXPECT_EQ(axis.params[1].label, "16");
  EXPECT_EQ(axis.params[2].label, "1416");
}

TEST(GridSize, ProductOfAxes) {
  EXPECT_EQ(TwoAxisSpec().GridSize(), 4u);
  ExperimentSpec empty;
  EXPECT_EQ(empty.GridSize(), 1u);  // one point, no axes
}

}  // namespace
}  // namespace orbit::harness
