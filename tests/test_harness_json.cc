// The harness promises byte-identical JSONL across serial and parallel
// runs; that only holds if serialization is fully deterministic and the
// parser accepts everything the writer emits. Pin both directions.
#include "harness/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace orbit::harness {
namespace {

TEST(JsonValue, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(), R"({"zeta":1,"alpha":2,"mid":3})");
  // Replacing a key must keep its original position.
  obj.Set("alpha", 9);
  EXPECT_EQ(obj.Dump(), R"({"zeta":1,"alpha":9,"mid":3})");
}

TEST(JsonValue, NumbersPrintShortestRoundTrip) {
  EXPECT_EQ(JsonValue(0.82).Dump(), "0.82");
  EXPECT_EQ(JsonValue(1.0 / 3.0).Dump(), "0.3333333333333333");
  EXPECT_EQ(JsonValue(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(JsonValue(int64_t{1} << 62).Dump(), "4611686018427387904");
  // JSON has no NaN/inf — they degrade to null rather than corrupt a line.
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
}

TEST(JsonValue, Uint64WidensOnlyWhenNeeded) {
  EXPECT_EQ(JsonValue(uint64_t{42}).type(), JsonValue::Type::kInt);
  EXPECT_EQ(JsonValue(~uint64_t{0}).type(), JsonValue::Type::kDouble);
}

TEST(JsonValue, StringEscapes) {
  EXPECT_EQ(JsonValue("a\"b\\c\n\t\x01").Dump(),
            R"("a\"b\\c\n\t\u0001")");
}

TEST(JsonValue, FindPathResolvesNestedObjects) {
  JsonValue inner = JsonValue::MakeObject();
  inner.Set("p99_us", 12.5);
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("read_cached", std::move(inner));
  ASSERT_NE(obj.FindPath("read_cached.p99_us"), nullptr);
  EXPECT_DOUBLE_EQ(obj.FindPath("read_cached.p99_us")->AsDouble(), 12.5);
  EXPECT_EQ(obj.FindPath("read_cached.p50_us"), nullptr);
  EXPECT_EQ(obj.FindPath("nope.p99_us"), nullptr);
}

TEST(ParseJson, RoundTripsWriterOutput) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("s", "hi \"there\"\n");
  obj.Set("i", int64_t{-12345});
  obj.Set("d", 3.25);
  obj.Set("b", true);
  obj.Set("n", JsonValue());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append(2.5);
  arr.Append("x");
  obj.Set("a", std::move(arr));
  const std::string text = obj.Dump();

  JsonValue back;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &back, &error)) << error;
  EXPECT_TRUE(back == obj);
  EXPECT_EQ(back.Dump(), text);  // bytes stable through a round trip
}

TEST(ParseJson, AcceptsWhitespaceAndUnicodeEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("  { \"k\" : [ 1 , \"\\u0041\" ] }\n", &v, &error))
      << error;
  EXPECT_EQ(v.FindPath("k")->array()[1].AsString(), "A");
}

TEST(ParseJson, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":}", &v, &error));
  EXPECT_FALSE(ParseJson("[1,2", &v, &error));
  EXPECT_FALSE(ParseJson("true false", &v, &error));  // trailing garbage
  EXPECT_FALSE(ParseJson("", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ParseJson, IntegerVsDoubleDistinction) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("[7,7.0,7e0]", &v, &error)) << error;
  EXPECT_EQ(v.array()[0].type(), JsonValue::Type::kInt);
  EXPECT_EQ(v.array()[1].type(), JsonValue::Type::kDouble);
  EXPECT_EQ(v.array()[2].type(), JsonValue::Type::kDouble);
  // Cross-type numeric equality still holds.
  EXPECT_TRUE(v.array()[0] == v.array()[1]);
}

}  // namespace
}  // namespace orbit::harness
