#include "workload/twitter.h"

#include <gtest/gtest.h>

#include "proto/message.h"
#include "testbed/testbed.h"
#include "workload/keyspace.h"

namespace orbit::wl {
namespace {

TEST(Fig14Profiles, MatchPaperAnchors) {
  const auto& profiles = Fig14Profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].id, "A");
  EXPECT_NEAR(profiles[0].cacheable_ratio, 0.95, 1e-9);  // §5.2: 95%
  EXPECT_EQ(profiles[4].id, "E");
  EXPECT_NEAR(profiles[4].cacheable_ratio, 0.01, 1e-9);  // §5.2: 1%
  // A's write ratio is "relatively high" compared to the rest.
  for (size_t i = 1; i < profiles.size(); ++i)
    EXPECT_GT(profiles[0].write_ratio, profiles[i].write_ratio);
}

TEST(NetCacheCacheable, DeterministicAndMatchesRatio) {
  const auto& p = Fig14Profiles()[2];  // 45%
  int cacheable = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(NetCacheCacheable(p, key), NetCacheCacheable(p, key));
    if (NetCacheCacheable(p, key)) ++cacheable;
  }
  EXPECT_NEAR(static_cast<double>(cacheable) / n, p.cacheable_ratio, 0.01);
}

TEST(MotivationWorkloads, ReproducesPaperStatistics) {
  const auto workloads = MotivationWorkloads();
  ASSERT_EQ(workloads.size(), 54u);

  const int samples = 8000;
  CacheabilityLimits netcache{16, 128, 0};
  CacheabilityLimits keys_only{16, UINT32_MAX, 0};
  CacheabilityLimits values_only{UINT32_MAX, 128, 0};

  int small_keys = 0, small_values = 0, none = 0, under10 = 0, over50 = 0;
  for (const auto& w : workloads) {
    if (CacheableFraction(w, keys_only, samples, 1) > 0.8) ++small_keys;
    if (CacheableFraction(w, values_only, samples, 2) > 0.8) ++small_values;
    const double nc = CacheableFraction(w, netcache, samples, 3);
    if (nc < 1e-4) ++none;
    if (nc < 0.10) ++under10;
    if (nc > 0.50) ++over50;
  }
  EXPECT_EQ(small_keys, 2);    // paper: 3.7% of 54
  EXPECT_EQ(small_values, 21); // paper: 38.9% of 54
  EXPECT_EQ(none, 42);         // paper: 77.8% of 54
  EXPECT_EQ(under10, 46);      // paper: 85%
  EXPECT_EQ(over50, 2);        // paper: 2 workloads
}

TEST(MotivationWorkloads, OrbitCacheCoversAlmostEverything) {
  CacheabilityLimits orbit{UINT32_MAX, UINT32_MAX, proto::kMaxPayloadBytes};
  double total = 0;
  const auto workloads = MotivationWorkloads();
  for (const auto& w : workloads)
    total += CacheableFraction(w, orbit, 4000, 5);
  EXPECT_GT(total / workloads.size(), 0.9);
}

TEST(TwitterTestbedMode, SizeFnPreservesTheSmallValueFraction) {
  // §5.2: cacheability is assigned per key independent of size, yet the
  // overall 64B-vs-1024B mix must still match the profile's p_small. The
  // testbed achieves that by conditioning sizes on the cacheability coin.
  for (const auto& profile : wl::Fig14Profiles()) {
    testbed::TestbedConfig cfg;
    cfg.workload.twitter = &profile;
    auto size_fn = testbed::MakeValueSizeFn(cfg);
    wl::KeySpace ks(50'000, 16, cfg.seed);
    int small = 0, cacheable = 0, cacheable_large = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      const Key key = ks.KeyForId(static_cast<uint64_t>(i));
      const uint32_t size = size_fn(key);
      ASSERT_TRUE(size == 64 || size == 1024);
      if (size == 64) ++small;
      if (testbed::NetCacheCanCache(cfg, key)) {
        ++cacheable;
        if (size > 64) ++cacheable_large;
      }
    }
    // Every cacheable key is 64B, so the small fraction cannot fall below
    // the cacheable ratio (binds on workload A where 95% are cacheable).
    const double expected_small =
        std::max(profile.p_small, profile.cacheable_ratio);
    EXPECT_NEAR(static_cast<double>(small) / n, expected_small, 0.02)
        << profile.id;
    EXPECT_NEAR(static_cast<double>(cacheable) / n, profile.cacheable_ratio,
                0.02)
        << profile.id;
    EXPECT_EQ(cacheable_large, 0)
        << profile.id << ": cacheable keys must physically fit NetCache";
  }
}

TEST(TwitterTestbedMode, NonTwitterModeUsesValueDist) {
  testbed::TestbedConfig cfg;
  cfg.workload.value_dist = wl::ValueDist::Fixed(300);
  auto size_fn = testbed::MakeValueSizeFn(cfg);
  EXPECT_EQ(size_fn("whatever-key-000"), 300u);
  EXPECT_FALSE(testbed::NetCacheCanCache(cfg, "whatever-key-000"))
      << "300B exceeds the 64B register budget";
  cfg.workload.value_dist = wl::ValueDist::Fixed(64);
  EXPECT_TRUE(testbed::NetCacheCanCache(cfg, "whatever-key-000"));
  EXPECT_FALSE(
      testbed::NetCacheCanCache(cfg, Key(17, 'k')))
      << "key wider than the match key";
}

TEST(CacheableFraction, RespectsLimits) {
  SizeProfile tiny{"t", 8, 0.1, 32, 0.1};
  EXPECT_GT(CacheableFraction(tiny, {16, 128, 0}, 2000, 1), 0.95);
  SizeProfile huge{"h", 100, 0.1, 4000, 0.1};
  EXPECT_LT(CacheableFraction(huge, {16, 128, 0}, 2000, 1), 0.01);
  // Combined budget binds even when the individual limits pass.
  SizeProfile mid{"m", 10, 0.05, 100, 0.05};
  EXPECT_GT(CacheableFraction(mid, {16, 128, 0}, 2000, 1), 0.5);
  EXPECT_LT(CacheableFraction(mid, {16, 128, 100}, 2000, 1), 0.05);
}

}  // namespace
}  // namespace orbit::wl
