#include "sim/trace.h"

#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::sim {
namespace {

TEST(FormatPacket, RendersOrbitSemantics) {
  Packet pkt;
  pkt.src = 1;
  pkt.dst = 2;
  pkt.msg.op = proto::Op::kReadRep;
  pkt.msg.seq = 42;
  pkt.msg.key = "k1";
  pkt.msg.value = kv::Value::Synthetic(64, 1);
  pkt.msg.cached = 1;
  pkt.from_recirc = true;
  pkt.recirc_count = 3;
  const std::string line = FormatPacket(pkt, 1234);
  EXPECT_NE(line.find("1234ns"), std::string::npos);
  EXPECT_NE(line.find("R-REP"), std::string::npos);
  EXPECT_NE(line.find("seq=42"), std::string::npos);
  EXPECT_NE(line.find("key=k1"), std::string::npos);
  EXPECT_NE(line.find("val=64B"), std::string::npos);
  EXPECT_NE(line.find("[cached]"), std::string::npos);
  EXPECT_NE(line.find("[recirc x3]"), std::string::npos);
}

TEST(PacketTrace, ObservesWholeExchange) {
  testrig::RigConfig cfg;
  cfg.num_servers = 1;
  testrig::Rig rig(cfg);
  PacketTrace trace;
  rig.net().SetTap(trace.AsTap());

  rig.SendRead("traced-key-00000", 7);
  rig.Settle();
  // Request out, request to server, reply back, reply to client: ≥4 hops.
  EXPECT_GE(trace.total_seen(), 4u);
  int reqs = 0, reps = 0;
  for (const auto& e : trace.entries()) {
    if (e.op == proto::Op::kReadReq) ++reqs;
    if (e.op == proto::Op::kReadRep) ++reps;
    EXPECT_EQ(e.key, "traced-key-00000");
    EXPECT_EQ(e.seq, 7u);
  }
  EXPECT_GE(reqs, 2);
  EXPECT_GE(reps, 2);
  const std::string dump = trace.Dump();
  EXPECT_NE(dump.find("rig-tor"), std::string::npos);
  EXPECT_NE(dump.find("server-0"), std::string::npos);
}

TEST(PacketTrace, BoundedMemory) {
  PacketTrace trace(8);
  auto tap = trace.AsTap();
  Packet pkt;
  struct Dummy : Node {
    void OnPacket(PacketPtr, int) override {}
    std::string name() const override { return "d"; }
  } d;
  for (uint32_t i = 0; i < 100; ++i) {
    pkt.msg.seq = i;
    tap(pkt, &d, &d, i);
  }
  EXPECT_EQ(trace.total_seen(), 100u);
  EXPECT_EQ(trace.entries().size(), 8u);
  EXPECT_EQ(trace.entries().front().seq, 92u) << "oldest evicted";
}

TEST(PacketTrace, TapRemovable) {
  testrig::RigConfig cfg;
  cfg.num_servers = 1;
  testrig::Rig rig(cfg);
  PacketTrace trace;
  rig.net().SetTap(trace.AsTap());
  rig.SendRead("traced-key-00000", 1);
  rig.Settle();
  const uint64_t seen = trace.total_seen();
  EXPECT_GT(seen, 0u);
  rig.net().SetTap({});
  rig.SendRead("traced-key-00000", 2);
  rig.Settle();
  EXPECT_EQ(trace.total_seen(), seen) << "no observation after removal";
}

}  // namespace
}  // namespace orbit::sim
