// Telemetry unit coverage: structural sampling, the counter registry,
// request roll-ups, the golden Chrome trace-event JSON form (the external
// contract Perfetto consumes), and the link drop tap feeding drop
// counters.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "telemetry/counters.h"
#include "telemetry/export.h"
#include "telemetry/trace.h"

namespace orbit::telemetry {
namespace {

TEST(Tracer, StructuralSampling) {
  Tracer t(4);
  EXPECT_TRUE(t.Sampled(0));
  EXPECT_FALSE(t.Sampled(1));
  EXPECT_FALSE(t.Sampled(3));
  EXPECT_TRUE(t.Sampled(4));
  EXPECT_TRUE(t.Sampled(8));

  Tracer off(0);
  EXPECT_FALSE(off.Sampled(0));
  EXPECT_FALSE(off.Sampled(64));
}

TEST(Tracer, TraceIdEncodesClientAndSeq) {
  const uint64_t id = MakeTraceId(0x0a000001, 42);
  EXPECT_EQ(id >> 32, 0x0a000001u);
  EXPECT_EQ(id & 0xffffffffu, 42u);
  EXPECT_NE(MakeTraceId(1, 7), MakeTraceId(2, 7));
  EXPECT_NE(MakeTraceId(1, 7), MakeTraceId(1, 8));
}

TEST(Tracer, TracksAreDenseIndices) {
  Tracer t(1);
  EXPECT_EQ(t.RegisterTrack("tor"), 0);
  EXPECT_EQ(t.RegisterTrack("client-1"), 1);
  ASSERT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.tracks()[1], "client-1");
}

TEST(SummarizeRequests, GroupsByTraceIdAndSumsHops) {
  Tracer t(1);
  const int track = t.RegisterTrack("x");
  // Request A: root span + two recirc passes that must sum.
  t.Span(track, 1, "request", 0, 1000, "read_cached");
  t.Span(track, 1, "recirc", 100, 200);
  t.Span(track, 1, "recirc", 400, 300);
  t.Instant(track, 1, "lookup_hit", 50);  // instants carry no duration
  // Request B interleaved; untraced events are skipped.
  t.Span(track, 2, "request", 10, 500, "read_server");
  t.Span(track, 0, "pipeline", 0, 77);

  const auto summaries = SummarizeRequests(t.events());
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].trace_id, 1u);
  EXPECT_STREQ(summaries[0].outcome, "read_cached");
  EXPECT_EQ(summaries[0].total, 1000);
  ASSERT_EQ(summaries[0].hops.size(), 1u);
  EXPECT_EQ(summaries[0].hops[0].first, "recirc");
  EXPECT_EQ(summaries[0].hops[0].second, 500);
  EXPECT_EQ(summaries[0].events, 4u);
  EXPECT_STREQ(summaries[1].outcome, "read_server");
}

TEST(FormatHopBreakdown, RendersPerHopRows) {
  Tracer t(1);
  const int track = t.RegisterTrack("x");
  t.Span(track, 1, "request", 0, 2000, "read_cached");
  t.Span(track, 1, "srv_process", 0, 500);
  const std::string table = FormatHopBreakdown(SummarizeRequests(t.events()));
  EXPECT_NE(table.find("request (end-to-end)"), std::string::npos);
  EXPECT_NE(table.find("srv_process"), std::string::npos);
  EXPECT_NE(table.find("2.000"), std::string::npos);  // 2000ns = 2.000us
}

TEST(Registry, SamplesInRegistrationOrder) {
  Registry reg;
  uint64_t a = 5;
  reg.AddCounter("b.second", [] { return uint64_t{2}; });
  reg.AddCounter("a.first", [&a] { return a; });
  reg.AddGauge("depth", [] { return uint64_t{7}; });
  uint64_t* own = reg.OwnCounter("drops");
  *own += 3;

  Snapshot snap = reg.Sample(123);
  EXPECT_EQ(snap.at, 123);
  ASSERT_EQ(snap.counters.size(), 3u);
  // Registration order, not name order: determinism contract.
  EXPECT_EQ(snap.counters[0].first, "b.second");
  EXPECT_EQ(snap.counters[1].first, "a.first");
  EXPECT_EQ(snap.counters[1].second, 5u);
  EXPECT_EQ(snap.counters[2].first, "drops");
  EXPECT_EQ(snap.counters[2].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7u);

  // Sources are live: later samples see updated values.
  a = 9;
  *own += 1;
  snap = reg.Sample(456);
  EXPECT_EQ(snap.counters[1].second, 9u);
  EXPECT_EQ(snap.counters[2].second, 4u);
}

// The exact exported bytes are the external contract (Perfetto reads
// them); lock the golden form of every event shape in one small capture.
TEST(ChromeTraceJson, GoldenDocument) {
  RunCapture cap;
  cap.tracks = {"tor", "client-1"};
  cap.events.push_back({1500, 2250, 42, 0, "pipeline", "forward_port", 0});
  cap.events.push_back({4000, 0, 42, 1, "send", "read", 0});
  cap.events.push_back({5000, 1000, 42, 0, "recirc", nullptr, 96});

  const std::string json = ChromeTraceJson({{"exp point=0", &cap}});
  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
      "\"exp point=0\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{"
      "\"name\":\"tor\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{"
      "\"name\":\"client-1\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1.500,\"dur\":2.250,\"name\":"
      "\"pipeline:forward_port\",\"cat\":\"telemetry\",\"args\":{\"trace_id\":"
      "42}},\n"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":4.000,\"s\":\"t\",\"name\":"
      "\"send:read\",\"cat\":\"telemetry\",\"args\":{\"trace_id\":42}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":5.000,\"dur\":1.000,\"name\":"
      "\"recirc\",\"cat\":\"telemetry\",\"args\":{\"trace_id\":42,\"value\":"
      "96}}\n"
      "]}\n";
  EXPECT_EQ(json, expected);
}

TEST(ChromeTraceJson, EmptyCaptureListStillValidDocument) {
  const std::string json = ChromeTraceJson({});
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n\n]}\n");
}

// ---- drop tap (satellite: sim::Network drop events) ----------------------

class SinkNode : public sim::Node {
 public:
  void OnPacket(sim::PacketPtr, int) override {}
  std::string name() const override { return "sink"; }
};

TEST(DropTap, QueueOverflowFiresTapWithReason) {
  sim::Simulator sim;
  sim::Network net(&sim);
  SinkNode a, b;
  sim::LinkConfig link;
  link.rate_gbps = 0.001;         // slow: packets pile up
  link.propagation = 100;
  link.queue_limit_bytes = 200;   // tiny drop-tail queue
  const auto att = net.Connect(&a, &b, link);

  uint64_t drops = 0;
  sim::DropReason last = sim::DropReason::kInjectedLoss;
  net.SetDropTap([&](const sim::Packet&, sim::Node*, sim::Node*,
                     sim::DropReason reason, SimTime) {
    ++drops;
    last = reason;
  });

  for (int i = 0; i < 20; ++i) {
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    auto pkt = sim::MakePacket(1, 2, 5008, 5008, std::move(msg));
    net.Send(&a, att.port_a, std::move(pkt));
  }
  sim.RunToCompletion();
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(last, sim::DropReason::kQueueOverflow);
  EXPECT_STREQ(sim::DropReasonName(sim::DropReason::kQueueOverflow),
               "queue_overflow");
  EXPECT_STREQ(sim::DropReasonName(sim::DropReason::kInjectedLoss),
               "injected_loss");
}

TEST(DropTap, PacketTraceRecordsDrops) {
  sim::Simulator sim;
  sim::Network net(&sim);
  SinkNode a, b;
  sim::LinkConfig link;
  link.rate_gbps = 10.0;
  link.propagation = 100;
  link.loss_rate = 1.0;  // every packet dies on the coin
  const auto att = net.Connect(&a, &b, link);

  sim::PacketTrace trace;
  net.SetTap(trace.AsTap());
  net.SetDropTap(trace.AsDropTap());

  proto::Message msg;
  msg.op = proto::Op::kReadReq;
  net.Send(&a, att.port_a, sim::MakePacket(1, 2, 5008, 5008, std::move(msg)));
  sim.RunToCompletion();

  EXPECT_EQ(trace.total_dropped(), 1u);
  ASSERT_EQ(trace.entries().size(), 1u);
  EXPECT_TRUE(trace.entries().back().dropped);
  EXPECT_EQ(trace.entries().back().drop_reason, sim::DropReason::kInjectedLoss);
  EXPECT_NE(trace.Dump().find("DROP"), std::string::npos);
}

}  // namespace
}  // namespace orbit::telemetry
