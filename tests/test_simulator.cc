#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  SimTime seen = -1;
  sim.At(100, [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.At(50, [&] {
    fired.push_back(sim.now());
    sim.After(25, [&] { fired.push_back(sim.now()); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(fired, (std::vector<SimTime>{50, 75}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.At(10, [&] { ++count; });
  sim.At(20, [&] { ++count; });
  sim.At(30, [&] { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);  // events at exactly t run
  EXPECT_EQ(sim.now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 100);  // clock advances even past last event
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.At(100, [] {});
  sim.RunToCompletion();
  EXPECT_THROW(sim.At(50, [] {}), CheckFailure);
  EXPECT_THROW(sim.After(-1, [] {}), CheckFailure);
}

TEST(Simulator, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.At(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(Simulator, CascadedEventsRunSameTimestamp) {
  // An event scheduling another event at the same instant runs it before
  // later-timestamped events.
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&] {
    order.push_back(1);
    sim.After(0, [&] { order.push_back(2); });
  });
  sim.At(11, [&] { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.At(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace orbit::sim
