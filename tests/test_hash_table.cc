#include "kv/hash_table.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace orbit::kv {
namespace {

TEST(HashTable, PutGetErase) {
  HashTable t;
  EXPECT_TRUE(t.Put("a", Value::Synthetic(10, 1)));
  EXPECT_FALSE(t.Put("a", Value::Synthetic(20, 2)));  // overwrite
  ASSERT_NE(t.Get("a"), nullptr);
  EXPECT_EQ(t.Get("a")->size(), 20u);
  EXPECT_EQ(t.Get("b"), nullptr);
  EXPECT_TRUE(t.Erase("a"));
  EXPECT_FALSE(t.Erase("a"));
  EXPECT_EQ(t.size(), 0u);
}

TEST(HashTable, GrowsPastInitialBuckets) {
  HashTable t(4);
  for (int i = 0; i < 1000; ++i)
    t.Put("key" + std::to_string(i), Value::Synthetic(8, 1));
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GT(t.bucket_count(), 1000u * 0.9);
  EXPECT_LE(t.load_factor(), 0.9);
  for (int i = 0; i < 1000; ++i)
    ASSERT_NE(t.Get("key" + std::to_string(i)), nullptr) << i;
}

TEST(HashTable, ForEachVisitsEverything) {
  HashTable t;
  for (int i = 0; i < 100; ++i)
    t.Put("k" + std::to_string(i), Value::Synthetic(8, static_cast<uint64_t>(i)));
  int visited = 0;
  uint64_t version_sum = 0;
  t.ForEach([&](const std::string&, const Value& v) {
    ++visited;
    version_sum += v.version();
  });
  EXPECT_EQ(visited, 100);
  EXPECT_EQ(version_sum, 99u * 100 / 2);
}

TEST(HashTable, MoveTransfersOwnership) {
  HashTable a;
  a.Put("k", Value::Synthetic(8, 1));
  HashTable b = std::move(a);
  ASSERT_NE(b.Get("k"), nullptr);
  HashTable c;
  c = std::move(b);
  ASSERT_NE(c.Get("k"), nullptr);
}

TEST(HashTable, ProbeStatsStayLowAtBoundedLoad) {
  HashTable t;
  for (int i = 0; i < 100000; ++i)
    t.Put("key" + std::to_string(i), Value::Synthetic(8, 1));
  for (int i = 0; i < 100000; ++i) t.Get("key" + std::to_string(i));
  const auto& ps = t.probe_stats();
  // Average chain probes per lookup should be ~O(load factor).
  EXPECT_LT(static_cast<double>(ps.probes) / ps.lookups, 2.0);
}

// Property: behaves exactly like std::unordered_map under a random
// operation mix.
class HashTableFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashTableFuzz, MatchesReferenceMap) {
  HashTable t(2);
  std::unordered_map<std::string, Value> ref;
  Rng rng(GetParam());
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "k" + std::to_string(rng.UniformU64(500));
    const double action = rng.UniformDouble();
    if (action < 0.5) {
      Value v = Value::Synthetic(static_cast<uint32_t>(rng.UniformU64(64)),
                                 rng.NextU64() % 1000);
      t.Put(key, v);
      ref[key] = v;
    } else if (action < 0.8) {
      const Value* got = t.Get(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(got, nullptr) << key;
      } else {
        ASSERT_NE(got, nullptr) << key;
        ASSERT_EQ(*got, it->second) << key;
      }
    } else {
      ASSERT_EQ(t.Erase(key), ref.erase(key) > 0) << key;
    }
    ASSERT_EQ(t.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTableFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 99));

}  // namespace
}  // namespace orbit::kv
