// Failure handling (paper §3.9): packet loss is absorbed by
// application-level timeouts (controller fetch retransmission, client
// request timeouts) and a switch failure loses only the cache, which the
// controller rebuilds like a radical popularity change.
#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

TEST(Failures, ControllerRetransmitsLostFetches) {
  RigConfig cfg;
  cfg.orbit.capacity = 16;
  cfg.num_servers = 1;
  cfg.with_controller = true;
  cfg.controller.cache_size = 4;
  cfg.controller.max_cache_size = 16;
  cfg.controller.update_period = 2 * kMillisecond;
  cfg.controller.fetch_timeout = kMillisecond;
  cfg.controller.max_fetch_attempts = 100;  // keep retrying through loss
  cfg.server_link.loss_rate = 0.5;  // half of all packets vanish
  cfg.server_link.loss_seed = 7;
  Rig rig(cfg);

  rig.controller().Preload({"fkey-00000000001", "fkey-00000000002",
                            "fkey-00000000003", "fkey-00000000004"});
  rig.controller().Start();
  // Give the retry machinery several periods.
  rig.Run(60 * kMillisecond);

  EXPECT_GT(rig.controller().stats().fetch_retries, 0u)
      << "loss must trigger retransmission";
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 4)
      << "every preloaded key has exactly one live cache packet despite "
         "loss and retransmitted fetches";
}

TEST(Failures, LossyServerPathStillServesCachedReads) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 1;
  cfg.server_link.loss_rate = 0.3;
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  // The fetch itself may be lost; retry manually until the packet orbits.
  rig.program().InsertEntry(HashKey128(key), 0);
  for (int attempt = 0; attempt < 20 && !rig.program().IsValid(0); ++attempt) {
    rig.SendFetch(key);
    rig.Settle();
  }
  ASSERT_TRUE(rig.program().IsValid(0));

  // Once the packet is orbiting, cached reads never touch the lossy
  // server path: 50 reads, 50 replies.
  for (uint32_t seq = 1; seq <= 50; ++seq) {
    rig.SendRead(key, seq);
    rig.Run(10 * kMicrosecond);
  }
  rig.Settle();
  int answered = 0;
  for (uint32_t seq = 1; seq <= 50; ++seq)
    if (rig.FindReply(seq) != nullptr) ++answered;
  EXPECT_EQ(answered, 50);
}

TEST(Failures, SwitchResetWipesDataPlane) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 1;
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  ASSERT_EQ(rig.sw().stats().recirc_in_flight, 1);

  rig.program().ResetDataPlane();
  rig.Settle();
  EXPECT_EQ(rig.program().num_entries(), 0u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 0)
      << "orphaned cache packets die on their next pass";

  // Requests fall through to the servers — degraded but correct.
  rig.SendRead(key, 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.FindReply(1)->msg.cached, 0);
}

TEST(Failures, ControllerRebuildsCacheAfterSwitchReset) {
  RigConfig cfg;
  cfg.orbit.capacity = 16;
  cfg.num_servers = 2;
  cfg.with_controller = true;
  cfg.controller.cache_size = 3;
  cfg.controller.max_cache_size = 16;
  Rig rig(cfg);
  const std::vector<Key> keys = {"rkey-00000000001", "rkey-00000000002",
                                 "rkey-00000000003"};
  rig.controller().Preload(keys);
  rig.Settle();
  ASSERT_EQ(rig.sw().stats().recirc_in_flight, 3);

  // Crash and reboot the ASIC, then let the controller restore state.
  rig.program().ResetDataPlane();
  rig.Settle();
  ASSERT_EQ(rig.sw().stats().recirc_in_flight, 0);
  rig.controller().RebuildCache();
  rig.Settle();

  EXPECT_EQ(rig.program().num_entries(), 3u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 3);
  for (size_t i = 0; i < keys.size(); ++i) {
    rig.SendRead(keys[i], 100 + static_cast<uint32_t>(i));
    rig.Settle();
    const auto* reply = rig.FindReply(100 + static_cast<uint32_t>(i));
    ASSERT_NE(reply, nullptr) << keys[i];
    EXPECT_EQ(reply->msg.cached, 1) << keys[i];
  }
}

TEST(Failures, BufferedRequestsLostInResetAreNotAnsweredTwice) {
  // Requests buffered in the request table at crash time are simply lost
  // (clients time out and retry at the application layer); after rebuild
  // nothing stale is replayed.
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 1;
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  // Plant a pending request, then crash before its next service pass.
  rig.program().request_table().TryEnqueue(
      0, RequestMeta{testrig::kClientAddr, 9000, 42, rig.sim().now()});
  rig.program().ResetDataPlane();
  rig.Settle();
  EXPECT_EQ(rig.FindReply(42), nullptr);
  // Re-cache and serve normally.
  rig.CacheAndFetch(key, 0);
  rig.SendRead(key, 43);
  rig.Settle();
  ASSERT_NE(rig.FindReply(43), nullptr);
  EXPECT_EQ(rig.CountReplies(42), 0u);
}

TEST(Failures, UnreachableServerMakesControllerGiveUpAndEvict) {
  // A dead server partition: fetches exhaust their retry budget, the
  // controller evicts the entry, and requests degrade to (failing)
  // forwards rather than waiting forever.
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 1;
  cfg.with_controller = true;
  cfg.controller.cache_size = 2;
  cfg.controller.max_cache_size = 8;
  cfg.controller.update_period = kMillisecond;
  cfg.controller.fetch_timeout = 500 * kMicrosecond;
  cfg.controller.max_fetch_attempts = 3;
  cfg.server_link.loss_rate = 1.0;  // the server is unreachable
  Rig rig(cfg);
  rig.controller().Preload({"dead-key-0000001"});
  rig.controller().Start();
  rig.Run(20 * kMillisecond);

  EXPECT_GE(rig.controller().stats().fetch_failures, 1u);
  EXPECT_EQ(rig.controller().num_cached(), 0u) << "entry evicted on give-up";
  EXPECT_EQ(rig.program().num_entries(), 0u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 0);
}

TEST(Failures, LinkLossCountsAreObservable) {
  RigConfig cfg;
  cfg.num_servers = 1;
  cfg.server_link.loss_rate = 1.0;  // sever the server path entirely
  Rig rig(cfg);
  rig.SendRead("any-key-00000000", 1);
  rig.Settle();
  EXPECT_EQ(rig.FindReply(1), nullptr);
}

}  // namespace
}  // namespace orbit::oc
