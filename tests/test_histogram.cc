#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace orbit::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_EQ(h.Percentile(0.5), 31);  // values < 64 bucket exactly
  EXPECT_EQ(h.count(), 64u);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  Rng rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = 1 + static_cast<int64_t>(rng.UniformU64(10'000'000));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const int64_t exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const int64_t approx = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.03 + 2)
        << "q=" << q;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(100);
  for (int i = 0; i < 100; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 10000);
  EXPECT_LT(a.Percentile(0.25), 200);
  EXPECT_GT(a.Percentile(0.75), 9000);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  h.Record(7);
  EXPECT_EQ(h.min(), 7);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.Percentile(0.5), 0);
}

TEST(Histogram, PercentileClampedToObservedRange) {
  Histogram h;
  h.Record(1'000'000);
  EXPECT_EQ(h.Percentile(0.5), 1'000'000);
  EXPECT_EQ(h.Percentile(1.0), 1'000'000);
  EXPECT_EQ(h.Percentile(0.0), 1'000'000);
}

TEST(Histogram, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(int64_t{1} << 62);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), int64_t{1} << 62);
}

}  // namespace
}  // namespace orbit::stats
