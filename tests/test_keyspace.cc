#include "workload/keyspace.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/check.h"

namespace orbit::wl {
namespace {

TEST(KeySpace, KeysHaveExactConfiguredWidth) {
  KeySpace ks(1000, 16, 1);
  for (uint64_t i = 0; i < 1000; i += 97)
    EXPECT_EQ(ks.KeyForId(i).size(), 16u);
  KeySpace wide(1000, 40, 1);
  EXPECT_EQ(wide.KeyForId(5).size(), 40u);
}

TEST(KeySpace, KeysAreUnique) {
  KeySpace ks(50000, 16, 7);
  std::unordered_set<Key> seen;
  for (uint64_t i = 0; i < 50000; ++i)
    ASSERT_TRUE(seen.insert(ks.KeyForId(i)).second) << i;
}

TEST(KeySpace, RankMappingIsBijective) {
  KeySpace ks(10000, 16, 3);
  std::unordered_set<uint64_t> ids;
  for (uint64_t r = 0; r < 10000; ++r) {
    const uint64_t id = ks.IdForRank(r);
    ASSERT_LT(id, 10000u);
    ASSERT_TRUE(ids.insert(id).second);
  }
}

TEST(KeySpace, DeterministicAcrossInstances) {
  KeySpace a(100000, 16, 42), b(100000, 16, 42);
  for (uint64_t r = 0; r < 100; ++r)
    EXPECT_EQ(a.KeyAtRank(r), b.KeyAtRank(r));
  KeySpace c(100000, 16, 43);
  int same = 0;
  for (uint64_t r = 0; r < 100; ++r)
    if (a.KeyAtRank(r) == c.KeyAtRank(r)) ++same;
  EXPECT_LT(same, 5);
}

TEST(KeySpace, RejectsTooNarrowKeys) {
  EXPECT_THROW(KeySpace(1000, 4, 1), CheckFailure);
  KeySpace ks(10'000'000, 9, 1);  // 1 prefix + up to 8 digits: exactly fits
  EXPECT_EQ(ks.KeyForId(9'999'999).size(), 9u);
}

TEST(KeySpace, HashMatchesClientHashing) {
  KeySpace ks(100, 16, 1);
  const Key k = ks.KeyAtRank(0);
  EXPECT_EQ(ks.HashOf(k), HashKey128(k));
}

}  // namespace
}  // namespace orbit::wl
