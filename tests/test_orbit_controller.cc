// Control-plane behaviour: preloading, popularity-driven cache updates
// (paper §3.8, Fig. 8), fetch retries, and dynamic cache sizing (§3.10).
#include "orbitcache/controller.h"

#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig ControllerRig(size_t cache_size = 4) {
  RigConfig cfg;
  cfg.orbit.capacity = 32;
  cfg.num_servers = 2;
  cfg.with_controller = true;
  cfg.controller.cache_size = cache_size;
  cfg.controller.max_cache_size = 32;
  cfg.controller.min_cache_size = 2;
  cfg.controller.update_period = 5 * kMillisecond;
  cfg.controller.fetch_timeout = kMillisecond;
  return cfg;
}

Key K(int i) { return "ctl-key-" + std::to_string(10000000 + i); }

TEST(Controller, PreloadInstallsEntriesAndFetchesValues) {
  Rig rig(ControllerRig());
  rig.controller().Preload({K(1), K(2), K(3)});
  rig.Settle();
  EXPECT_EQ(rig.controller().num_cached(), 3u);
  EXPECT_EQ(rig.program().num_entries(), 3u);
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 3)
      << "one cache packet per preloaded key";
  // All entries valid and serving.
  rig.SendRead(K(2), 1);
  rig.Settle();
  ASSERT_NE(rig.FindReply(1), nullptr);
  EXPECT_EQ(rig.FindReply(1)->msg.cached, 1);
}

TEST(Controller, PreloadRespectsCacheSize) {
  Rig rig(ControllerRig(2));
  rig.controller().Preload({K(1), K(2), K(3), K(4)});
  EXPECT_EQ(rig.controller().num_cached(), 2u);
}

TEST(Controller, HotReportedKeyEvictsColdCachedKey) {
  Rig rig(ControllerRig(2));
  rig.controller().Preload({K(1), K(2)});
  rig.controller().Start();
  rig.Settle();

  // Give K(1) some switch-side popularity; K(2) stays cold.
  for (uint32_t i = 0; i < 5; ++i) {
    rig.SendRead(K(1), 100 + i);
    rig.Run(5 * kMicrosecond);
  }
  // A much hotter uncached key arrives via a server top-k report.
  proto::Message report;
  report.op = proto::Op::kTopKReport;
  report.key = K(9);
  report.value = kv::Value::Synthetic(0, /*count=*/1000);
  rig.net().Send(&rig.client(), 0,
                 sim::MakePacket(rig.ServerAddrFor(K(9)),
                                 testrig::kControllerAddr, 7000, 7000,
                                 std::move(report)));
  rig.Run(10 * kMillisecond);  // one update period
  rig.Settle();

  EXPECT_TRUE(rig.controller().IsCached(K(9)));
  EXPECT_TRUE(rig.controller().IsCached(K(1))) << "hot key survives";
  EXPECT_FALSE(rig.controller().IsCached(K(2))) << "cold key evicted";
  EXPECT_GE(rig.controller().stats().evictions, 1u);
  EXPECT_GE(rig.controller().stats().reports_received, 1u);

  // The new key serves from the switch.
  rig.SendRead(K(9), 200);
  rig.Settle();
  ASSERT_NE(rig.FindReply(200), nullptr);
  EXPECT_EQ(rig.FindReply(200)->msg.cached, 1);
}

TEST(Controller, ColderReportedKeyDoesNotEvict) {
  Rig rig(ControllerRig(2));
  rig.controller().Preload({K(1), K(2)});
  rig.controller().Start();
  rig.Settle();
  for (uint32_t i = 0; i < 20; ++i) {
    rig.SendRead(K(1), 100 + i);
    rig.SendRead(K(2), 200 + i);
    rig.Run(2 * kMicrosecond);
  }
  proto::Message report;
  report.op = proto::Op::kTopKReport;
  report.key = K(9);
  report.value = kv::Value::Synthetic(0, /*count=*/1);  // colder than both
  rig.net().Send(&rig.client(), 0,
                 sim::MakePacket(rig.ServerAddrFor(K(9)),
                                 testrig::kControllerAddr, 7000, 7000,
                                 std::move(report)));
  rig.Run(10 * kMillisecond);
  EXPECT_FALSE(rig.controller().IsCached(K(9)));
  EXPECT_TRUE(rig.controller().IsCached(K(1)));
  EXPECT_TRUE(rig.controller().IsCached(K(2)));
}

TEST(Controller, NewKeyInheritsVictimIndex) {
  Rig rig(ControllerRig(1));
  rig.controller().Preload({K(1)});
  rig.controller().Start();
  rig.Settle();
  const uint32_t old_idx = *rig.program().FindIdx(HashKey128(K(1)));

  proto::Message report;
  report.op = proto::Op::kTopKReport;
  report.key = K(9);
  report.value = kv::Value::Synthetic(0, 1000);
  rig.net().Send(&rig.client(), 0,
                 sim::MakePacket(rig.ServerAddrFor(K(9)),
                                 testrig::kControllerAddr, 7000, 7000,
                                 std::move(report)));
  rig.Run(10 * kMillisecond);
  ASSERT_TRUE(rig.controller().IsCached(K(9)));
  EXPECT_EQ(*rig.program().FindIdx(HashKey128(K(9))), old_idx)
      << "§3.8: replacement inherits the CacheIdx";
}

TEST(Controller, DynamicSizingShrinksOnOverflow) {
  RigConfig cfg = ControllerRig(8);
  cfg.controller.dynamic_sizing = true;
  cfg.controller.sizing_step = 2;
  cfg.controller.overflow_threshold = 0.01;
  Rig rig(cfg);
  rig.controller().Preload({K(1)});
  rig.controller().Start();
  rig.Settle();

  // Burst far beyond the queue depth so the overflow ratio spikes.
  for (uint32_t i = 0; i < 64; ++i) rig.SendRead(K(1), 1000 + i);
  rig.Run(10 * kMillisecond);
  EXPECT_LT(rig.controller().current_cache_size(), 8u);
  EXPECT_GE(rig.controller().stats().size_decreases, 1u);
}

TEST(Controller, DynamicSizingGrowsWhenHealthy) {
  RigConfig cfg = ControllerRig(4);
  cfg.controller.dynamic_sizing = true;
  cfg.controller.sizing_step = 4;
  Rig rig(cfg);
  rig.controller().Preload({K(1)});
  rig.controller().Start();
  rig.Settle();
  for (uint32_t i = 0; i < 10; ++i) {
    rig.SendRead(K(1), 100 + i);
    rig.Run(kMillisecond);
  }
  rig.Run(20 * kMillisecond);
  EXPECT_GT(rig.controller().current_cache_size(), 4u);
  EXPECT_GE(rig.controller().stats().size_increases, 1u);
}

TEST(Controller, RefusesOversizedConfiguration) {
  RigConfig cfg = ControllerRig();
  cfg.controller.max_cache_size = 999;  // > data-plane capacity of 32
  EXPECT_THROW(Rig rig(cfg), CheckFailure);
}

}  // namespace
}  // namespace orbit::oc
