#include "workload/value_dist.h"

#include <gtest/gtest.h>

#include <string>

namespace orbit::wl {
namespace {

TEST(ValueDist, FixedAlwaysReturnsSize) {
  ValueDist d = ValueDist::Fixed(512);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(d.SizeFor("k" + std::to_string(i)), 512u);
  EXPECT_EQ(d.min_size(), 512u);
  EXPECT_EQ(d.max_size(), 512u);
  EXPECT_EQ(d.mean_size(), 512.0);
}

TEST(ValueDist, BimodalIsDeterministicPerKey) {
  ValueDist d = ValueDist::PaperDefault();
  for (int i = 0; i < 100; ++i) {
    const std::string k = "k" + std::to_string(i);
    EXPECT_EQ(d.SizeFor(k), d.SizeFor(k));
  }
}

TEST(ValueDist, BimodalMatchesPaperMix) {
  // §5.1: 82% 64-byte, 18% 1024-byte values.
  ValueDist d = ValueDist::PaperDefault();
  int small = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint32_t s = d.SizeFor("key-" + std::to_string(i));
    ASSERT_TRUE(s == 64 || s == 1024);
    if (s == 64) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / n, 0.82, 0.01);
  EXPECT_EQ(d.min_size(), 64u);
  EXPECT_EQ(d.max_size(), 1024u);
  EXPECT_NEAR(d.mean_size(), 0.82 * 64 + 0.18 * 1024, 1e-9);
}

TEST(ValueDist, SeedDecorrelatesAssignments) {
  ValueDist a = ValueDist::Bimodal(64, 1024, 0.5, 1);
  ValueDist b = ValueDist::Bimodal(64, 1024, 0.5, 2);
  int same = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (a.SizeFor("k" + std::to_string(i)) ==
        b.SizeFor("k" + std::to_string(i)))
      ++same;
  EXPECT_NEAR(static_cast<double>(same) / n, 0.5, 0.05);
}

class BimodalFraction : public ::testing::TestWithParam<double> {};

TEST_P(BimodalFraction, EmpiricalFractionTracksParameter) {
  const double p = GetParam();
  ValueDist d = ValueDist::Bimodal(64, 1024, p, 9);
  int small = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (d.SizeFor("x" + std::to_string(i)) == 64) ++small;
  EXPECT_NEAR(static_cast<double>(small) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BimodalFraction,
                         ::testing::Values(0.0, 0.1, 0.5, 0.82, 1.0));

}  // namespace
}  // namespace orbit::wl
