#include "stats/meters.h"

#include <gtest/gtest.h>

namespace orbit::stats {
namespace {

TEST(ThroughputMeter, CountsOnlyWhileOpen) {
  ThroughputMeter m;
  m.Add();  // before open: ignored
  m.Open(1 * kSecond);
  m.Add();
  m.Add(3);
  m.Close(2 * kSecond);
  m.Add();  // after close: ignored
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.RatePerSec(), 4.0);
}

TEST(ThroughputMeter, RateScalesWithWindow) {
  ThroughputMeter m;
  m.Open(0);
  for (int i = 0; i < 500; ++i) m.Add();
  m.Close(kSecond / 2);
  EXPECT_DOUBLE_EQ(m.RatePerSec(), 1000.0);
}

TEST(ThroughputMeter, EmptyWindowIsZero) {
  ThroughputMeter m;
  EXPECT_EQ(m.RatePerSec(), 0.0);
}

TEST(LoadTracker, TracksPerServerCounts) {
  LoadTracker lt(4);
  lt.Add(0, 10);
  lt.Add(1, 20);
  lt.Add(2, 40);
  lt.Add(3, 40);
  EXPECT_EQ(lt.total(), 110u);
  EXPECT_EQ(lt.min_load(), 10u);
  EXPECT_EQ(lt.max_load(), 40u);
  EXPECT_DOUBLE_EQ(lt.BalancingEfficiency(), 0.25);
}

TEST(LoadTracker, PerfectBalanceIsOne) {
  LoadTracker lt(3);
  for (size_t s = 0; s < 3; ++s) lt.Add(s, 7);
  EXPECT_DOUBLE_EQ(lt.BalancingEfficiency(), 1.0);
}

TEST(LoadTracker, EmptyIsDefinedAsBalanced) {
  LoadTracker lt(3);
  EXPECT_DOUBLE_EQ(lt.BalancingEfficiency(), 1.0);
}

TEST(LoadTracker, ResetZeroes) {
  LoadTracker lt(2);
  lt.Add(0, 5);
  lt.Reset();
  EXPECT_EQ(lt.total(), 0u);
}

TEST(LoadTracker, OutOfRangeThrows) {
  LoadTracker lt(2);
  EXPECT_THROW(lt.Add(2), std::out_of_range);
}

}  // namespace
}  // namespace orbit::stats
