#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0full);
  const std::vector<uint8_t> expected = {0x01, 0x02, 0x03, 0x04, 0x05,
                                         0x06, 0x07, 0x08, 0x09, 0x0a,
                                         0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, FixedPadsWithZeros) {
  ByteWriter w;
  w.fixed("ab", 4);
  const std::vector<uint8_t> expected = {'a', 'b', 0, 0};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, FixedRejectsOverflow) {
  ByteWriter w;
  EXPECT_THROW(w.fixed("abcde", 4), CheckFailure);
}

TEST(ByteWriter, BytesAppendsRaw) {
  ByteWriter w;
  w.bytes("hi");
  w.bytes("!");
  EXPECT_EQ(w.size(), 3u);
}

TEST(ByteReader, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.bytes("tail");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.bytes(4), "tail");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, TruncationLatchesError) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  // Error is sticky and subsequent reads stay safe.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesPastEndReturnsEmpty) {
  std::vector<uint8_t> buf = {1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.bytes(3), "");
  EXPECT_FALSE(r.ok());
}

// Round-trip across widths and offsets (property-style sweep).
class ByteRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByteRoundTrip, U64SurvivesRoundTrip) {
  ByteWriter w;
  w.u64(GetParam());
  ByteReader r(w.data());
  EXPECT_EQ(r.u64(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, ByteRoundTrip,
                         ::testing::Values(0ull, 1ull, 0xffull, 0x100ull,
                                           0xffffffffull, 0x100000000ull,
                                           UINT64_MAX));

}  // namespace
}  // namespace orbit
