#include "stats/time_series.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::stats {
namespace {

TEST(TimeSeries, BinsByTime) {
  TimeSeries ts(100);
  ts.Add(0);
  ts.Add(99);
  ts.Add(100);
  ts.Add(250, 2.5);
  EXPECT_EQ(ts.num_bins(), 3u);
  EXPECT_DOUBLE_EQ(ts.bin(0), 2.0);
  EXPECT_DOUBLE_EQ(ts.bin(1), 1.0);
  EXPECT_DOUBLE_EQ(ts.bin(2), 2.5);
}

TEST(TimeSeries, RateNormalizesToPerSecond) {
  TimeSeries ts(kSecond / 4);
  for (int i = 0; i < 10; ++i) ts.Add(0);
  EXPECT_DOUBLE_EQ(ts.RateAt(0), 40.0);
}

TEST(TimeSeries, GrowsOnDemand) {
  TimeSeries ts(10);
  ts.Add(1000);
  EXPECT_EQ(ts.num_bins(), 101u);
  for (size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(ts.bin(i), 0.0);
}

TEST(TimeSeries, RejectsBadInputs) {
  EXPECT_THROW(TimeSeries(0), CheckFailure);
  TimeSeries ts(10);
  EXPECT_THROW(ts.Add(-1), CheckFailure);
}

}  // namespace
}  // namespace orbit::stats
