// INT subsystem coverage: sink/recorder unit behavior, an instrumented
// run fills the INT capture, INT is results-neutral, postcards and
// histogram merges are byte-identical serial vs --jobs N, flight dumps
// are byte-stable for a fixed seed, and duplicate telemetry registration
// is rejected naming both registrants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "harness/metrics.h"
#include "harness/runner.h"
#include "harness/telemetry_io.h"
#include "telemetry/counters.h"
#include "telemetry/int/flight.h"
#include "telemetry/int/int.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace orbit::harness {
namespace {

// --- IntSink unit behavior -------------------------------------------------

TEST(IntSink, InterningIsStableAndShared) {
  telemetry::IntSink sink({/*sample_every=*/4, /*histograms=*/true});
  const uint32_t a = sink.Hop("hop.link.ns");
  const uint32_t b = sink.Hop("leaf0.pipeline");
  EXPECT_NE(a, b);
  // Same name -> same id: shared class names aggregate across devices.
  EXPECT_EQ(a, sink.Hop("hop.link.ns"));
  EXPECT_EQ(sink.Hist("value.bytes", "bytes"),
            sink.Hist("value.bytes", "bytes"));
}

TEST(IntSink, StructuralSamplingMatchesTracer) {
  telemetry::IntSink sink({/*sample_every=*/8, /*histograms=*/false});
  EXPECT_TRUE(sink.Sampled(0));
  EXPECT_FALSE(sink.Sampled(1));
  EXPECT_TRUE(sink.Sampled(8));
  telemetry::IntSink off({/*sample_every=*/0, /*histograms=*/false});
  EXPECT_FALSE(off.postcards_on());
  EXPECT_FALSE(off.Sampled(0));
}

TEST(IntSink, FlowCollectsHopsAndTruncatesPastCap) {
  telemetry::IntSink sink({/*sample_every=*/1, /*histograms=*/false});
  const uint32_t hop = sink.Hop("hop.recirc.ns");
  const uint32_t id = sink.StartFlow(/*flow_id=*/42, /*op=*/1, /*at=*/100);
  ASSERT_NE(id, 0u);
  telemetry::IntHop rec;
  rec.hop = hop;
  rec.kind = telemetry::IntHopKind::kRecirc;
  // A pathologically orbiting packet must not grow the flow unbounded.
  for (int i = 0; i < 1'000; ++i) {
    rec.at = 100 + i;
    sink.Stamp(id, rec);
  }
  sink.FinishFlow(id, 2'000, "read_cached");
  // Stamping through int_id 0 (unsampled) is a silent no-op.
  sink.Stamp(0, rec);

  telemetry::IntCapture cap;
  sink.Drain(&cap);
  ASSERT_EQ(cap.flows.size(), 1u);
  const telemetry::IntFlowRec& flow = cap.flows[0];
  EXPECT_EQ(flow.flow_id, 42u);
  EXPECT_EQ(flow.finished_at, 2'000);
  EXPECT_STREQ(flow.outcome, "read_cached");
  EXPECT_LT(flow.hops.size(), 1'000u);
  EXPECT_EQ(flow.hops.size() + flow.truncated_hops, 1'000u);
}

TEST(IntSink, HistogramsRecordOnlyWhenEnabled) {
  telemetry::IntSink off({/*sample_every=*/0, /*histograms=*/false});
  const uint32_t h_off = off.Hist("hop.rtt.ns", "ns");
  off.Record(h_off, 1'234);
  telemetry::IntCapture cap_off;
  off.Drain(&cap_off);
  EXPECT_TRUE(cap_off.hists.empty());

  telemetry::IntSink on({/*sample_every=*/0, /*histograms=*/true});
  const uint32_t h_on = on.Hist("hop.rtt.ns", "ns");
  // Values < 64 land in the exact linear row, so the finalized min/max
  // come back unchanged (above that they are bucket mid-points).
  for (int64_t v : {10, 20, 40, 50}) on.Record(h_on, v);
  telemetry::IntCapture cap_on;
  on.Drain(&cap_on);
  ASSERT_EQ(cap_on.hists.size(), 1u);
  EXPECT_EQ(cap_on.hists[0].name, "hop.rtt.ns");
  EXPECT_EQ(cap_on.hists[0].unit, "ns");
  EXPECT_EQ(cap_on.hists[0].count, 4u);
  EXPECT_EQ(cap_on.hists[0].min, 10);
  EXPECT_EQ(cap_on.hists[0].max, 50);
}

// --- FlightRecorder unit behavior ------------------------------------------

TEST(FlightRecorder, RingKeepsLastNAndDumpIsBounded) {
  telemetry::FlightRecorder rec(/*capacity=*/4);
  const uint32_t comp = rec.Component("switch");
  for (uint64_t i = 0; i < 10; ++i) rec.Note(comp, 1'000 + i, "enqueue", i);
  rec.TriggerDump(2'000, "unit test");
  ASSERT_TRUE(rec.HasDumps());
  const std::string text = rec.DumpText();
  // Only the last 4 events survive the ring.
  EXPECT_EQ(text.find("a=5"), std::string::npos);
  EXPECT_NE(text.find("a=6"), std::string::npos);
  EXPECT_NE(text.find("a=9"), std::string::npos);
  EXPECT_NE(text.find("unit test"), std::string::npos);

  // A trigger storm cannot grow the capture without limit.
  for (int i = 0; i < 100; ++i) rec.TriggerDump(3'000 + i, "storm");
  EXPECT_LE(rec.num_dumps(), 8u);
  EXPECT_GT(rec.suppressed_dumps(), 0u);
}

TEST(FlightRecorder, CheckFailureHookObservesMessage) {
  std::string seen;
  {
    ScopedCheckFailureHook hook(
        [&seen](const std::string& what) { seen = what; });
    EXPECT_THROW(ORBIT_CHECK_MSG(false, "int test trip"), CheckFailure);
  }
  EXPECT_NE(seen.find("int test trip"), std::string::npos);
  // The hook is restored on scope exit: a later failure is not observed.
  seen.clear();
  EXPECT_THROW(ORBIT_CHECK(false), CheckFailure);
  EXPECT_TRUE(seen.empty());
}

TEST(Registry, DuplicateRegistrationNamesBothRegistrants) {
  telemetry::Registry reg;
  reg.AddCounter("switch.hits", [] { return 0u; }, "first-owner");
  try {
    reg.AddCounter("switch.hits", [] { return 0u; }, "second-owner");
    FAIL() << "duplicate registration must throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("switch.hits"), std::string::npos);
    EXPECT_NE(what.find("first-owner"), std::string::npos);
    EXPECT_NE(what.find("second-owner"), std::string::npos);
  }
  // Same name under a different kind is fine (kind-qualified claims).
  reg.AddGauge("switch.hits", [] { return 0u; }, "gauge-owner");
}

// --- Instrumented testbed runs ---------------------------------------------

testbed::TestbedConfig TinyConfig(testbed::Scheme scheme) {
  testbed::TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 4;
  cfg.workload.num_keys = 2'000;
  cfg.topo.server_rate_rps = 100'000;
  cfg.topo.client_rate_rps = 400'000;
  cfg.warmup = 2 * kMillisecond;
  cfg.duration = 10 * kMillisecond;
  return cfg;
}

TEST(IntTestbed, InstrumentedRunFillsIntCapture) {
  telemetry::RunCapture cap;
  testbed::TestbedConfig cfg = TinyConfig(testbed::Scheme::kOrbitCache);
  cfg.telemetry.capture = &cap;
  cfg.telemetry.int_sample = 8;
  cfg.telemetry.histograms = true;
  cfg.telemetry.flight_recorder = true;
  cfg.telemetry.flight_end_dump = true;
  testbed::RunTestbed(cfg);

  ASSERT_FALSE(cap.int_capture.flows.empty());
  ASSERT_FALSE(cap.int_capture.hop_names.empty());
  bool saw_hops = false, saw_finished = false;
  for (const auto& flow : cap.int_capture.flows) {
    if (!flow.hops.empty()) saw_hops = true;
    if (flow.finished_at != 0) saw_finished = true;
    for (const auto& hop : flow.hops)
      ASSERT_LT(hop.hop, cap.int_capture.hop_names.size());
  }
  EXPECT_TRUE(saw_hops);
  EXPECT_TRUE(saw_finished);

  // Always-on histograms cover the shared hop classes.
  ASSERT_FALSE(cap.int_capture.hists.empty());
  bool saw_rtt = false;
  for (const auto& h : cap.int_capture.hists) {
    if (h.name == "hop.rtt.ns") {
      saw_rtt = true;
      EXPECT_GT(h.count, 0u);
      EXPECT_GE(h.p99, h.p50);
    }
  }
  EXPECT_TRUE(saw_rtt);

  // --flight-dump semantics: the end-of-run trigger freezes the rings.
  EXPECT_FALSE(cap.flight_dump.empty());
  EXPECT_NE(cap.flight_dump.find("end of run"), std::string::npos);
}

TEST(IntTestbed, IntIsResultsNeutral) {
  const testbed::TestbedConfig base = TinyConfig(testbed::Scheme::kOrbitCache);
  const testbed::TestbedResult plain = testbed::RunTestbed(base);

  telemetry::RunCapture cap;
  testbed::TestbedConfig instrumented = base;
  instrumented.telemetry.capture = &cap;
  instrumented.telemetry.int_sample = 4;  // heavy sampling on purpose
  instrumented.telemetry.histograms = true;
  instrumented.telemetry.flight_recorder = true;
  instrumented.telemetry.flight_end_dump = true;
  const testbed::TestbedResult with_int = testbed::RunTestbed(instrumented);

  // Identical simulations: every serialized metric matches exactly, and
  // INT knobs never leak into a config's identity.
  EXPECT_EQ(testbed::ResultMetrics(plain).Dump(),
            testbed::ResultMetrics(with_int).Dump());
  EXPECT_EQ(plain.events_processed, with_int.events_processed);
  EXPECT_EQ(testbed::ConfigFingerprint(base),
            testbed::ConfigFingerprint(instrumented));
  EXPECT_FALSE(cap.int_capture.empty());
}

TEST(IntTestbed, FlightDumpByteStableAcrossRuns) {
  auto run = [](telemetry::RunCapture* cap) {
    testbed::TestbedConfig cfg = TinyConfig(testbed::Scheme::kNetCache);
    cfg.telemetry.capture = cap;
    cfg.telemetry.int_sample = 8;
    cfg.telemetry.histograms = true;
    cfg.telemetry.flight_recorder = true;
    cfg.telemetry.flight_end_dump = true;
    testbed::RunTestbed(cfg);
  };
  telemetry::RunCapture a, b;
  run(&a);
  run(&b);
  ASSERT_FALSE(a.flight_dump.empty());
  EXPECT_EQ(a.flight_dump, b.flight_dump);
  // Postcards and histogram snapshots repeat byte-for-byte too.
  ASSERT_EQ(a.int_capture.flows.size(), b.int_capture.flows.size());
  EXPECT_EQ(a.int_capture.hop_names, b.int_capture.hop_names);
  for (size_t i = 0; i < a.int_capture.flows.size(); ++i) {
    EXPECT_EQ(a.int_capture.flows[i].flow_id, b.int_capture.flows[i].flow_id);
    EXPECT_EQ(a.int_capture.flows[i].hops.size(),
              b.int_capture.flows[i].hops.size());
  }
}

// --- Harness-level determinism ---------------------------------------------

ExperimentSpec TinySpec() {
  ExperimentSpec spec;
  spec.name = "unit_int";
  spec.apply_paper_scale = false;
  spec.base = TinyConfig(testbed::Scheme::kOrbitCache);
  spec.axes = {SchemeAxis(
      {testbed::Scheme::kOrbitCache, testbed::Scheme::kNoCache})};
  spec.run = FixedLoadRun();
  return spec;
}

TEST(IntRunner, RecordsAreByteIdenticalWithIntOnOrOff) {
  const std::vector<ExperimentSpec> specs = {TinySpec()};
  RunnerOptions off;
  off.progress = false;
  RunnerOptions on = off;
  on.capture_telemetry = true;
  on.int_sample = 8;
  on.histograms = true;
  on.flight_recorder = true;
  on.flight_end_dump = true;

  const RunOutcome a = RunExperiments(specs, off);
  const RunOutcome b = RunExperiments(specs, on);
  // The headline promise: INT is a pure side channel.
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
  ASSERT_EQ(b.captures.size(), b.records.size());
  EXPECT_FALSE(b.captures[0].int_capture.empty());
}

TEST(IntRunner, PostcardsAndHistogramsIdenticalSerialVsParallel) {
  const std::vector<ExperimentSpec> specs = {TinySpec()};
  RunnerOptions serial;
  serial.progress = false;
  serial.capture_telemetry = true;
  serial.int_sample = 8;
  serial.histograms = true;
  serial.flight_recorder = true;
  serial.flight_end_dump = true;
  RunnerOptions parallel = serial;
  parallel.jobs = 4;

  const RunOutcome a = RunExperiments(specs, serial);
  const RunOutcome b = RunExperiments(specs, parallel);
  ASSERT_EQ(a.captures.size(), b.captures.size());
  EXPECT_EQ(DumpJsonl(a.records), DumpJsonl(b.records));
  // Per-slot INT JSONL and merged histogram snapshots are byte-identical
  // at any job count — the serial/parallel contract the tools rely on.
  EXPECT_EQ(IntJsonl(a.records, a.captures), IntJsonl(b.records, b.captures));
  EXPECT_EQ(HistJsonl(a.records, a.captures),
            HistJsonl(b.records, b.captures));
  EXPECT_EQ(FlightText(a.records, a.captures),
            FlightText(b.records, b.captures));
  ASSERT_FALSE(IntJsonl(a.records, a.captures).empty());
  ASSERT_FALSE(HistJsonl(a.records, a.captures).empty());
}

}  // namespace
}  // namespace orbit::harness
