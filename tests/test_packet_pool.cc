// The packet pool's contract (DESIGN.md, docs/PERF.md): a per-Simulator
// freelist over stable slab storage, so the steady-state hot path — and in
// particular PRE-style clone storms — recycles descriptors instead of
// allocating, while code without an installed pool transparently falls
// back to the heap.
#include "sim/packet.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/node.h"
#include "sim/simulator.h"

namespace orbit::sim {
namespace {

TEST(PacketPool, SimulatorInstallsThreadPool) {
  EXPECT_EQ(PacketPool::Current(), nullptr);
  {
    Simulator sim;
    EXPECT_EQ(PacketPool::Current(), &sim.packet_pool());
    {
      Simulator inner;  // nests: innermost simulator wins
      EXPECT_EQ(PacketPool::Current(), &inner.packet_pool());
    }
    EXPECT_EQ(PacketPool::Current(), &sim.packet_pool());
  }
  EXPECT_EQ(PacketPool::Current(), nullptr);
}

TEST(PacketPool, HeapFallbackWithoutSimulator) {
  ASSERT_EQ(PacketPool::Current(), nullptr);
  auto pkt = NewPacket(1, 2, 3, 4);
  EXPECT_EQ(pkt->pool(), nullptr);
  EXPECT_EQ(pkt->src, 1u);
  EXPECT_EQ(pkt->dst, 2u);
}

TEST(PacketPool, ReleasedPacketIsRecycledReset) {
  Simulator sim;
  PacketPool& pool = sim.packet_pool();
  auto pkt = NewPacket(7, 8, 9, 10);
  pkt->msg.key.assign(64, 'k');
  pkt->msg.seq = 123;
  pkt->recirc_count = 5;
  const Packet* slot = pkt.get();
  pkt.reset();  // back to the freelist
  ASSERT_EQ(pool.free_count(), 1u);

  auto again = NewPacket(0, 0, 0, 0);
  EXPECT_EQ(again.get(), slot) << "freelist must hand the slot back";
  EXPECT_EQ(pool.stats().recycled, 1u);
  // Reset semantics: indistinguishable from a fresh packet...
  EXPECT_TRUE(again->msg.key.empty());
  EXPECT_EQ(again->msg.seq, 0u);
  EXPECT_EQ(again->recirc_count, 0u);
  // ...except the key buffer's capacity survives, absorbing the next
  // assignment without an allocation.
  EXPECT_GE(again->msg.key.capacity(), 64u);
}

TEST(PacketPool, CloneStormRecyclesInsteadOfGrowing) {
  // A PRE multicast or write-invalidation burst clones the same packet
  // dozens of times per event; over many rounds the pool must converge to
  // a fixed descriptor population (exactly the fixed-pool discipline of
  // the modeled replication engine).
  Simulator sim;
  PacketPool& pool = sim.packet_pool();
  auto src = NewPacket(1, 2, 3, 4);
  src->msg.key = "hot-key-00000000";
  constexpr int kRounds = 100;
  constexpr int kFanout = 64;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<PacketPtr> clones;
    clones.reserve(kFanout);
    for (int i = 0; i < kFanout; ++i) {
      clones.push_back(ClonePacket(*src));
      EXPECT_EQ(clones.back()->msg.key, src->msg.key);
    }
  }  // clones die -> freelist
  EXPECT_LE(pool.stats().allocated, uint64_t{kFanout} + 1)
      << "steady-state clone storms must not grow the slab";
  EXPECT_GE(pool.stats().recycled, uint64_t{kRounds - 1} * kFanout);
  EXPECT_EQ(pool.stats().released, uint64_t{kRounds} * kFanout);
}

TEST(PacketPool, CloneSharesMaterializedPayload) {
  Simulator sim;
  auto src = NewPacket(1, 2, 3, 4);
  // A byte-backed value: kv::Value shares the bytes behind a shared_ptr,
  // and its defaulted == compares that pointer, so equality here proves
  // the clone references the same buffer rather than a copy.
  src->msg.value = kv::Value::FromBytes(std::string(256, 'v'));
  auto clone = ClonePacket(*src);
  EXPECT_EQ(clone->msg.value, src->msg.value)
      << "PRE clones share payload bytes, copying only the descriptor";
  EXPECT_FALSE(clone->msg.value.is_synthetic());
}

TEST(PacketPool, PoolOutlivesUndeliveredEvents) {
  // Packets still sitting in the event queue when the simulator dies are
  // reclaimed by the pool's destructor — this must not double-free or
  // leak (the sanitizer CI job watches this test).
  struct BlackHole : Node {
    void OnPacket(PacketPtr, int) override {}
    std::string name() const override { return "blackhole"; }
  } node;
  Simulator sim;
  for (int i = 0; i < 100; ++i)
    sim.Deliver(kSecond + i, &node, 0, NewPacket(1, 2, 3, 4));
  // Destroy with all 100 deliveries pending.
}

}  // namespace
}  // namespace orbit::sim
