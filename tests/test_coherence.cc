// Cache-coherence properties (paper §3.7) and this reproduction's epoch
// hardening. A "stale read" is a read reply whose per-key version is lower
// than a version already observed — the servers assign versions
// monotonically, so coherent executions can never show one.
#include <gtest/gtest.h>

#include "testbed/testbed.h"
#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig CoherenceRig(bool epoch_guard) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.orbit.epoch_guard = epoch_guard;
  cfg.num_servers = 1;
  return cfg;
}

TEST(Coherence, ReadAfterWriteSeesNewVersion) {
  Rig rig(CoherenceRig(true));
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);

  rig.SendWrite(key, 1, 64);
  rig.Settle();
  rig.SendRead(key, 2);
  rig.Settle();
  const auto* read = rig.FindReply(2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.value.version(), 2u);  // fetch-synthesized=1, write=2
  EXPECT_EQ(read->msg.cached, 1) << "served by the refreshed cache packet";
}

TEST(Coherence, NoStaleReadsUnderInterleavedReadsAndWrites) {
  Rig rig(CoherenceRig(true));
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);

  // Interleave writes and reads tightly; versions observed by reads must
  // be non-decreasing over time.
  uint32_t seq = 10;
  for (int round = 0; round < 30; ++round) {
    rig.SendWrite(key, seq++, 64);
    rig.SendRead(key, seq++);
    rig.Run(3 * kMicrosecond);
    rig.SendRead(key, seq++);
    rig.Run(7 * kMicrosecond);
  }
  rig.Settle();

  uint64_t last = 0;
  for (const auto& r : rig.client().replies) {
    if (r.msg.op != proto::Op::kReadRep) continue;
    EXPECT_GE(r.msg.value.version(), last)
        << "stale read at t=" << r.at;
    last = std::max(last, r.msg.value.version());
  }
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1)
      << "exactly one live cache packet after churn";
}

TEST(Coherence, EpochGuardPreventsDoubleWriteRace) {
  // Two overlapping writes: W1 and W2 invalidate; their replies revalidate
  // in order. Without the epoch guard, W1's reply re-validates with the
  // older value *and* clones an extra stale cache packet. With the guard,
  // only the newest write's reply mints a packet.
  Rig rig(CoherenceRig(true));
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  ASSERT_EQ(rig.sw().stats().recirc_in_flight, 1);

  rig.SendWrite(key, 1, 64);
  rig.SendWrite(key, 2, 64);  // back-to-back: replies return in order
  rig.Settle();
  EXPECT_EQ(rig.program().stats().stale_validations_skipped, 1u)
      << "W1's reply must not revalidate";
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1)
      << "exactly one cache packet survives the race";

  rig.SendRead(key, 3);
  rig.Settle();
  const auto* read = rig.FindReply(3);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.value.version(), 3u) << "the newest write's value";
}

TEST(Coherence, WithoutEpochGuardDoubleWriteLeavesDuplicatePackets) {
  // The same interleaving under the paper's plain binary-valid protocol:
  // the race manifests as duplicate circulating packets (and potentially
  // stale serves). This documents why the reproduction adds the guard.
  Rig rig(CoherenceRig(false));
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);

  rig.SendWrite(key, 1, 64);
  rig.SendWrite(key, 2, 64);
  rig.Settle();
  EXPECT_GE(rig.sw().stats().recirc_in_flight, 2)
      << "both write replies cloned a packet for the same key";
}

TEST(Coherence, EndToEndTestbedStaysCoherentUnderWriteChurn) {
  // Statistical end-to-end check with many clients and servers.
  testbed::TestbedConfig cfg;
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 4;
  cfg.topo.server_rate_rps = 50'000;
  cfg.topo.client_rate_rps = 200'000;
  cfg.workload.num_keys = 10'000;
  cfg.workload.write_ratio = 0.3;
  cfg.cache.orbit_cache_size = 16;
  cfg.warmup = 10 * kMillisecond;
  cfg.duration = 100 * kMillisecond;
  const testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.stale_reads, 0u);
  EXPECT_GT(res.rx_rps, 0.0);
}

}  // namespace
}  // namespace orbit::oc
