// Data-plane behaviour of the OrbitCache program (paper §3.3, Fig. 4).
#include "orbitcache/program.h"

#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig SmallRig() {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.orbit.queue_size = 4;
  cfg.num_servers = 2;
  return cfg;
}

TEST(OrbitProgram, ReadMissForwardsToServer) {
  Rig rig(SmallRig());
  rig.SendRead("uncached-key-000", 1);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kReadRep);
  EXPECT_EQ(reply->msg.cached, 0);
  EXPECT_EQ(rig.program().stats().read_misses, 1u);
  EXPECT_EQ(rig.ServerFor("uncached-key-000").stats().reads, 1u);
}

TEST(OrbitProgram, CachedReadServedBySwitchWithoutServer) {
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  const uint64_t server_reads = rig.ServerFor(key).stats().reads;

  rig.SendRead(key, 5);
  rig.Settle();
  const auto* reply = rig.FindReply(5);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kReadRep);
  EXPECT_EQ(reply->msg.cached, 1) << "served by the switch";
  EXPECT_EQ(reply->msg.key, key);
  EXPECT_EQ(reply->msg.value.size(), 64u);
  EXPECT_EQ(rig.ServerFor(key).stats().reads, server_reads)
      << "the server must not see the request";
  EXPECT_EQ(rig.program().stats().absorbed, 1u);
  EXPECT_EQ(rig.program().stats().served_by_cache, 1u);
}

TEST(OrbitProgram, OneCachePacketServesManyRequests) {
  // The PRE-clone property (§3.5): a single fetch serves any number of
  // subsequent requests.
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  const uint64_t fetches = rig.ServerFor(key).stats().fetches;

  for (uint32_t seq = 10; seq < 40; ++seq) {
    rig.SendRead(key, seq);
    rig.Run(10 * kMicrosecond);
  }
  rig.Settle();
  for (uint32_t seq = 10; seq < 40; ++seq)
    EXPECT_NE(rig.FindReply(seq), nullptr) << "seq " << seq;
  EXPECT_EQ(rig.ServerFor(key).stats().fetches, fetches)
      << "no refetching with cloning enabled";
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 1)
      << "exactly one cache packet keeps orbiting";
}

TEST(OrbitProgram, RequestTableOverflowGoesToServer) {
  RigConfig cfg = SmallRig();
  cfg.orbit.queue_size = 2;
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);

  // A burst of 10 reads arrives back-to-back, far faster than one orbit
  // of the cache packet: 2 fit the queue, the rest overflow to the server.
  const uint64_t server_reads_before = rig.ServerFor(key).stats().reads;
  for (uint32_t seq = 100; seq < 110; ++seq) rig.SendRead(key, seq);
  rig.Settle();
  EXPECT_GE(rig.program().stats().overflow_to_server, 6u);
  EXPECT_GT(rig.ServerFor(key).stats().reads, server_reads_before);
  // Every request still gets an answer from somewhere.
  for (uint32_t seq = 100; seq < 110; ++seq)
    EXPECT_NE(rig.FindReply(seq), nullptr) << seq;
}

TEST(OrbitProgram, WriteInvalidatesAndFlagsCachedItem) {
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  ASSERT_TRUE(rig.program().IsValid(0));

  rig.SendWrite(key, 20, 128);
  rig.Run(2 * kMicrosecond);  // W-REQ passed the switch, reply not yet back
  EXPECT_FALSE(rig.program().IsValid(0)) << "invalidated on the way in";
  rig.Settle();
  const auto* reply = rig.FindReply(20);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kWriteRep);
  EXPECT_NE(reply->msg.flag & proto::kFlagCachedWrite, 0)
      << "server was told the item is cached";
  EXPECT_TRUE(rig.program().IsValid(0)) << "write reply revalidates";
  // The refreshed cache packet carries the new value.
  rig.SendRead(key, 21);
  rig.Settle();
  const auto* read = rig.FindReply(21);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.cached, 1);
  EXPECT_EQ(read->msg.value.size(), 128u);
  EXPECT_EQ(read->msg.value.version(), 2u);  // synthesize=1, write=2
}

TEST(OrbitProgram, ReadDuringInvalidWindowGoesToServer) {
  RigConfig cfg = SmallRig();
  cfg.server_rate_rps = 10'000;  // slow server: wide invalid window
  Rig rig(cfg);
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);

  rig.SendWrite(key, 30, 64);
  rig.Run(20 * kMicrosecond);  // write still queued at the server
  ASSERT_FALSE(rig.program().IsValid(0));
  rig.SendRead(key, 31);
  rig.Settle();
  rig.Run(300 * kMicrosecond);
  const auto* read = rig.FindReply(31);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->msg.cached, 0) << "served by the server, not the stale cache";
  EXPECT_GT(rig.program().stats().invalid_to_server, 0u);
}

TEST(OrbitProgram, EvictionRetiresCachePacket) {
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  ASSERT_EQ(rig.sw().stats().recirc_in_flight, 1);
  rig.program().EraseEntry(HashKey128(key));
  rig.Settle();
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, 0)
      << "packet dropped on its next pass after eviction";
  EXPECT_GT(rig.program().stats().cp_drop_evicted, 0u);
}

TEST(OrbitProgram, CorrectionRequestBypassesCache) {
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  const uint64_t absorbed = rig.program().stats().absorbed;
  rig.SendCorrection(key, 40);
  rig.Settle();
  const auto* reply = rig.FindReply(40);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.cached, 0) << "CRN-REQ must reach the server";
  EXPECT_EQ(rig.program().stats().absorbed, absorbed);
  EXPECT_EQ(rig.program().stats().corrections_forwarded, 1u);
  EXPECT_EQ(rig.ServerFor(key).stats().corrections, 1u);
}

TEST(OrbitProgram, PopularityCountersTrackReads) {
  Rig rig(SmallRig());
  const Key a = "hot-key-aaaaaaaa", b = "hot-key-bbbbbbbb";
  rig.CacheAndFetch(a, 0);
  rig.CacheAndFetch(b, 1);
  for (uint32_t i = 0; i < 5; ++i) {
    rig.SendRead(a, 100 + i);
    rig.Run(5 * kMicrosecond);
  }
  rig.SendRead(b, 200);
  rig.Settle();
  auto pop = rig.program().ReadAndResetPopularity();
  EXPECT_EQ(pop[0], 5u);
  EXPECT_EQ(pop[1], 1u);
  // Read-and-reset semantics.
  pop = rig.program().ReadAndResetPopularity();
  EXPECT_EQ(pop[0], 0u);

  const auto ho = rig.program().ReadAndResetHitOverflow();
  EXPECT_EQ(ho.hits, 6u);
  EXPECT_EQ(rig.program().ReadAndResetHitOverflow().hits, 0u);
}

TEST(OrbitProgram, UncachedWriteIsPlainWriteThrough) {
  Rig rig(SmallRig());
  rig.SendWrite("cold-key-0000000", 50, 99);
  rig.Settle();
  const auto* reply = rig.FindReply(50);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.op, proto::Op::kWriteRep);
  EXPECT_EQ(reply->msg.flag & proto::kFlagCachedWrite, 0);
  EXPECT_EQ(reply->msg.value.size(), 0u) << "no value appended when uncached";
  EXPECT_GT(reply->msg.value.version(), 0u);
  EXPECT_EQ(rig.program().stats().writes_uncached, 1u);
}

TEST(OrbitProgram, InsertEntryRejectsBadIndexAndFullTable) {
  Rig rig(SmallRig());
  EXPECT_THROW(rig.program().InsertEntry(Hash128{1, 1}, 8), CheckFailure);
  for (uint32_t i = 0; i < 8; ++i)
    ASSERT_TRUE(rig.program().InsertEntry(Hash128{i, i}, i));
  EXPECT_FALSE(rig.program().InsertEntry(Hash128{9, 9}, 0))
      << "lookup table at capacity";
}

TEST(OrbitProgram, ResourceFootprintMatchesPaper) {
  // §4: the prototype fits in 9 stages with modest SRAM.
  Rig rig(SmallRig());
  EXPECT_EQ(rig.sw().resources().stages_used(), 9);
  EXPECT_LT(rig.sw().resources().sram_fraction_used(), 0.1);
}

}  // namespace
}  // namespace orbit::oc
