#include "rmt/match_table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::rmt {
namespace {

TEST(MatchTable, InsertLookupErase) {
  Resources res((AsicConfig()));
  ExactMatchTable<std::string, uint32_t> t(&res, "t", 0, 8, 16);
  EXPECT_TRUE(t.Insert("alpha", 1));
  EXPECT_TRUE(t.Insert("beta", 2));
  ASSERT_NE(t.Lookup("alpha"), nullptr);
  EXPECT_EQ(*t.Lookup("alpha"), 1u);
  EXPECT_EQ(t.Lookup("gamma"), nullptr);
  EXPECT_TRUE(t.Erase("alpha"));
  EXPECT_FALSE(t.Erase("alpha"));
  EXPECT_EQ(t.Lookup("alpha"), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(MatchTable, InsertOverwritesExisting) {
  Resources res((AsicConfig()));
  ExactMatchTable<std::string, uint32_t> t(&res, "t", 0, 8, 16);
  EXPECT_TRUE(t.Insert("k", 1));
  EXPECT_TRUE(t.Insert("k", 2));
  EXPECT_EQ(*t.Lookup("k"), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(MatchTable, CapacityIsEnforced) {
  Resources res((AsicConfig()));
  ExactMatchTable<std::string, uint32_t> t(&res, "t", 0, 2, 16);
  EXPECT_TRUE(t.Insert("a", 1));
  EXPECT_TRUE(t.Insert("b", 2));
  EXPECT_FALSE(t.Insert("c", 3)) << "table full";
  t.Erase("a");
  EXPECT_TRUE(t.Insert("c", 3));
}

TEST(MatchTable, RejectsKeysWiderThanMatchWidth) {
  // The hardware constraint at the heart of the paper: NetCache cannot
  // index items whose key exceeds the match-key width.
  Resources res((AsicConfig()));
  ExactMatchTable<std::string, uint32_t> t(&res, "t", 0, 8, 16);
  EXPECT_TRUE(t.Insert(std::string(16, 'k'), 1));
  EXPECT_THROW(t.Insert(std::string(17, 'k'), 2), CheckFailure);
}

TEST(MatchTable, DeclaringOverWideTableThrows) {
  // A table declared wider than the ASIC's maximum match key fails at
  // "compile time".
  Resources res((AsicConfig()));  // max 16B
  EXPECT_THROW((ExactMatchTable<std::string, int>(&res, "t", 0, 8, 32)),
               CheckFailure);
}

TEST(MatchTable, Hash128KeysOccupySixteenBytes) {
  Resources res((AsicConfig()));
  ExactMatchTable<Hash128, uint32_t> t(&res, "t", 0, 8, 16);
  const Hash128 h{0x1111, 0x2222};
  EXPECT_TRUE(t.Insert(h, 5));
  ASSERT_NE(t.Lookup(h), nullptr);
  EXPECT_EQ(*t.Lookup(h), 5u);
  EXPECT_EQ(t.Lookup(Hash128{0x1111, 0x2223}), nullptr);
}

TEST(MatchTable, ClearEmptiesTable) {
  Resources res((AsicConfig()));
  ExactMatchTable<std::string, int> t(&res, "t", 0, 8, 16);
  t.Insert("a", 1);
  t.Insert("b", 2);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Lookup("a"), nullptr);
}

}  // namespace
}  // namespace orbit::rmt
