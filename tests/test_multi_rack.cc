// Multi-rack deployment (paper §3.9): each ToR switch caches only the hot
// items of the storage servers in its own rack; a spine interconnects the
// racks; exactly one switch on any path applies the cache logic.
#include <gtest/gtest.h>

#include "apps/server.h"
#include "nocache/program.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::oc {
namespace {

constexpr L4Port kPort = 5008;
constexpr Addr kClientAddr = 1;
constexpr Addr kSrv1Addr = 101;  // rack 1
constexpr Addr kSrv2Addr = 201;  // rack 2
constexpr Addr kCtrlAddr = 900;

class Catcher : public sim::Node {
 public:
  explicit Catcher(sim::Simulator* sim) : sim_(sim) {}
  void OnPacket(sim::PacketPtr pkt, int) override {
    replies.emplace_back(pkt->msg, sim_->now());
  }
  std::string name() const override { return "catcher"; }
  const proto::Message* Find(uint32_t seq) const {
    for (auto& [msg, at] : replies)
      if (msg.seq == seq) return &msg;
    return nullptr;
  }
  std::vector<std::pair<proto::Message, SimTime>> replies;
  sim::Simulator* sim_;
};

// Two racks: client + server1 behind tor1, server2 behind tor2, spine in
// the middle. Both ToRs run OrbitCache; the spine just forwards.
class MultiRackRig {
 public:
  MultiRackRig()
      : net_(&sim_),
        tor1_(&sim_, &net_, "tor1", rmt::AsicConfig{}),
        tor2_(&sim_, &net_, "tor2", rmt::AsicConfig{}),
        spine_(&sim_, &net_, "spine", rmt::AsicConfig{}),
        client_(&sim_) {
    oc::OrbitConfig ocfg;
    ocfg.capacity = 8;
    prog1_ = std::make_unique<OrbitProgram>(&tor1_, ocfg);
    prog2_ = std::make_unique<OrbitProgram>(&tor2_, ocfg);
    tor1_.SetProgram(prog1_.get());
    tor2_.SetProgram(prog2_.get());
    spine_.SetProgram(&fwd_);

    app::ServerConfig s1;
    s1.addr = kSrv1Addr;
    s1.srv_id = 1;
    s1.service_rate_rps = 0;
    srv1_ = std::make_unique<app::ServerNode>(&sim_, &net_, 0, s1,
                                              [](const Key&) { return 64u; });
    app::ServerConfig s2 = s1;
    s2.addr = kSrv2Addr;
    s2.srv_id = 2;
    srv2_ = std::make_unique<app::ServerNode>(&sim_, &net_, 0, s2,
                                              [](const Key&) { return 64u; });

    auto c = net_.Connect(&client_, &tor1_, sim::LinkConfig{});
    auto a = net_.Connect(srv1_.get(), &tor1_, sim::LinkConfig{});
    auto b = net_.Connect(srv2_.get(), &tor2_, sim::LinkConfig{});
    auto u1 = net_.Connect(&tor1_, &spine_, sim::LinkConfig{});
    auto u2 = net_.Connect(&tor2_, &spine_, sim::LinkConfig{});
    // The controller (fetch-ack sink) lives in rack 1.
    auto k = net_.Connect(&ctrl_, &tor1_, sim::LinkConfig{});

    // tor1: local addrs direct, everything else via the spine uplink.
    tor1_.AddRoute(kClientAddr, c.port_b);
    tor1_.AddRoute(kSrv1Addr, a.port_b);
    tor1_.AddRoute(kSrv2Addr, u1.port_a);
    tor1_.AddRoute(kCtrlAddr, k.port_b);
    // tor2 mirror image.
    tor2_.AddRoute(kSrv2Addr, b.port_b);
    tor2_.AddRoute(kClientAddr, u2.port_a);
    tor2_.AddRoute(kSrv1Addr, u2.port_a);
    tor2_.AddRoute(kCtrlAddr, u2.port_a);
    // spine: racks by address range.
    spine_.AddRoute(kClientAddr, u1.port_b);
    spine_.AddRoute(kSrv1Addr, u1.port_b);
    spine_.AddRoute(kCtrlAddr, u1.port_b);  // controller ack sink in rack 1
    spine_.AddRoute(kSrv2Addr, u2.port_b);

    // Clone targets: tor1 reaches the client and controller directly;
    // tor2 reaches both through its uplink.
    prog1_->RegisterCloneTarget(kClientAddr, c.port_b);
    prog1_->RegisterCloneTarget(kCtrlAddr, k.port_b);
    prog2_->RegisterCloneTarget(kClientAddr, u2.port_a);
    prog2_->RegisterCloneTarget(kCtrlAddr, u2.port_a);
  }

  void SendRead(const Key& key, uint32_t seq, Addr server) {
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_.Send(&client_, 0, sim::MakePacket(kClientAddr, server, 9000, kPort,
                                           std::move(msg)));
  }
  void SendWrite(const Key& key, uint32_t seq, Addr server) {
    proto::Message msg;
    msg.op = proto::Op::kWriteReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    msg.value = kv::Value::Synthetic(64, 0);
    net_.Send(&client_, 0, sim::MakePacket(kClientAddr, server, 9000, kPort,
                                           std::move(msg)));
  }
  void Fetch(OrbitProgram& prog, const Key& key, Addr server) {
    prog.InsertEntry(HashKey128(key), 0);
    proto::Message msg;
    msg.op = proto::Op::kFetchReq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_.Send(&client_, 0, sim::MakePacket(kCtrlAddr, server, kPort, kPort,
                                           std::move(msg)));
    Settle();
  }
  void Settle() { sim_.RunUntil(sim_.now() + 300 * kMicrosecond); }

  sim::Simulator sim_;
  sim::Network net_;
  rmt::SwitchDevice tor1_, tor2_, spine_;
  nocache::ForwardProgram fwd_;
  Catcher client_;
  Catcher ctrl_{&sim_};
  std::unique_ptr<OrbitProgram> prog1_, prog2_;
  std::unique_ptr<app::ServerNode> srv1_, srv2_;
};

TEST(MultiRack, LocalRackItemServedByLocalToR) {
  MultiRackRig rig;
  const Key key = "rack1-hot-key-00";
  rig.Fetch(*rig.prog1_, key, kSrv1Addr);
  ASSERT_EQ(rig.tor1_.stats().recirc_in_flight, 1);
  EXPECT_EQ(rig.tor2_.stats().recirc_in_flight, 0);

  rig.SendRead(key, 1, kSrv1Addr);
  rig.Settle();
  const auto* reply = rig.client_.Find(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->cached, 1);
}

TEST(MultiRack, RemoteRackItemCachedOnlyAtItsOwnToR) {
  MultiRackRig rig;
  const Key key = "rack2-hot-key-00";
  rig.Fetch(*rig.prog2_, key, kSrv2Addr);
  ASSERT_EQ(rig.tor2_.stats().recirc_in_flight, 1);
  EXPECT_EQ(rig.tor1_.stats().recirc_in_flight, 0)
      << "tor1 must not cache another rack's items";

  const uint64_t srv2_reads = rig.srv2_->stats().reads;
  rig.SendRead(key, 1, kSrv2Addr);
  rig.Settle();
  const auto* reply = rig.client_.Find(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->cached, 1) << "served by tor2 across the spine";
  EXPECT_EQ(rig.srv2_->stats().reads, srv2_reads)
      << "the storage server itself never sees the read";
  // tor1 applied only plain forwarding to this flow.
  EXPECT_EQ(rig.prog1_->stats().read_hits, 0u);
  EXPECT_EQ(rig.prog1_->stats().read_misses, 1u);
}

TEST(MultiRack, RemoteCachedReadIsFasterThanRemoteUncached) {
  MultiRackRig rig;
  const Key cached = "rack2-hot-key-00";
  const Key uncached = "rack2-cold-key-0";
  rig.Fetch(*rig.prog2_, cached, kSrv2Addr);

  rig.SendRead(cached, 1, kSrv2Addr);
  rig.Settle();
  rig.SendRead(uncached, 2, kSrv2Addr);
  rig.Settle();
  // Both answered; the cached one avoided the server hop.
  ASSERT_NE(rig.client_.Find(1), nullptr);
  ASSERT_NE(rig.client_.Find(2), nullptr);
  EXPECT_EQ(rig.client_.Find(1)->cached, 1);
  EXPECT_EQ(rig.client_.Find(2)->cached, 0);
}

TEST(MultiRack, CrossRackWriteKeepsRemoteCacheCoherent) {
  MultiRackRig rig;
  const Key key = "rack2-hot-key-00";
  rig.Fetch(*rig.prog2_, key, kSrv2Addr);

  rig.SendWrite(key, 10, kSrv2Addr);
  rig.Settle();
  ASSERT_NE(rig.client_.Find(10), nullptr);
  EXPECT_TRUE(rig.prog2_->IsValid(0)) << "revalidated by the write reply";

  rig.SendRead(key, 11, kSrv2Addr);
  rig.Settle();
  const auto* read = rig.client_.Find(11);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->cached, 1);
  EXPECT_EQ(read->value.version(), 2u) << "the written value, not the stale one";
}

}  // namespace
}  // namespace orbit::oc
