#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"

namespace orbit::wl {
namespace {

TEST(Zipf, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfGenerator(0, 0.5), CheckFailure);
  EXPECT_THROW(ZipfGenerator(10, 1.0), CheckFailure);
  EXPECT_THROW(ZipfGenerator(10, -0.1), CheckFailure);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(1000, 0.99);
  double sum = 0;
  for (uint64_t i = 0; i < 1000; ++i) sum += zipf.ProbabilityOfRank(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(zipf.MassOfTopRanks(1000), 1.0, 1e-9);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfGenerator zipf(100, 0.9);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) ASSERT_LT(zipf.Sample(rng), 100u);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfGenerator zipf(50, 0.0);
  Rng rng(5);
  std::vector<int> counts(50, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int r = 0; r < 50; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, 0.02, 0.003)
        << "rank " << r;
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchTheory) {
  const uint64_t n_keys = 100000;
  ZipfGenerator zipf(n_keys, 0.99);
  Rng rng(11);
  const int n = 2'000'000;
  std::vector<int> top_counts(64, 0);
  for (int i = 0; i < n; ++i) {
    const uint64_t r = zipf.Sample(rng);
    if (r < 64) ++top_counts[r];
  }
  // Hottest ranks carry the theoretical mass within sampling tolerance.
  // The YCSB-style sampler is exact for ranks 0-1 and approximate (known
  // small-rank bias of up to ~20%) beyond, so the tolerance is looser.
  for (int r : {0, 1, 2, 7, 31, 63}) {
    const double expect = zipf.ProbabilityOfRank(static_cast<uint64_t>(r));
    const double got = static_cast<double>(top_counts[r]) / n;
    EXPECT_NEAR(got, expect, expect * 0.25 + 1e-4) << "rank " << r;
  }
}

TEST(Zipf, SkewConcentratesMass) {
  // Higher theta -> more mass on the head; the load-imbalance driver.
  ZipfGenerator mild(1'000'000, 0.90);
  ZipfGenerator hot(1'000'000, 0.99);
  EXPECT_GT(hot.MassOfTopRanks(128), mild.MassOfTopRanks(128));
  EXPECT_GT(hot.MassOfTopRanks(128), 0.25);
  EXPECT_LT(hot.MassOfTopRanks(128), 0.55);
}

TEST(Zipf, SingleKeyDegenerates) {
  ZipfGenerator zipf(1, 0.99);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.ProbabilityOfRank(0), 1.0, 1e-12);
}

TEST(Zipf, PaperScaleTenMillionKeys) {
  // The §5.1 workload: zipf-0.99 over 10M keys. The 128 hottest items
  // (OrbitCache's cache) must carry roughly a third of all traffic — the
  // small-cache effect in action.
  ZipfGenerator zipf(10'000'000, 0.99);
  const double top128 = zipf.MassOfTopRanks(128);
  EXPECT_GT(top128, 0.25);
  EXPECT_LT(top128, 0.40);
  // And the single hottest key ~5-6%.
  EXPECT_GT(zipf.ProbabilityOfRank(0), 0.04);
  EXPECT_LT(zipf.ProbabilityOfRank(0), 0.07);
}

}  // namespace
}  // namespace orbit::wl
