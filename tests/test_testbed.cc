// End-to-end smoke and property tests for the full testbed assembly.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

namespace orbit::testbed {
namespace {

TestbedConfig SmallConfig(Scheme scheme) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.num_clients = 2;
  cfg.num_servers = 8;
  cfg.server_rate_rps = 20'000;
  cfg.client_rate_rps = 400'000;
  cfg.num_keys = 100'000;
  cfg.zipf_theta = 0.99;
  cfg.orbit_cache_size = 32;
  cfg.orbit_capacity = 128;
  cfg.netcache_size = 1000;
  cfg.warmup = 20 * kMillisecond;
  cfg.duration = 80 * kMillisecond;
  cfg.seed = 7;
  return cfg;
}

TEST(Testbed, OrbitCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kOrbitCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.cache_served_rps, 0) << "switch should serve hot keys";
  EXPECT_GT(res.absorbed, 0u);
  EXPECT_EQ(res.stale_reads, 0u);
  EXPECT_EQ(res.cache_entries, 32u);
  // Exactly one cache packet should circulate per preloaded (valid) entry.
  EXPECT_LE(res.cache_packets_in_flight, 32u);
  EXPECT_GE(res.cache_packets_in_flight, 28u);
}

TEST(Testbed, NoCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kNoCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_EQ(res.cache_served_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, NetCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kNetCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.cache_served_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, OrbitCacheBeatsNoCacheOnSkewedWorkload) {
  // Compare saturated throughput — the paper's Fig. 9 metric. Under skew
  // the hottest partition caps NoCache, while OrbitCache absorbs the hot
  // keys in the switch.
  TestbedResult orbit = FindSaturation(SmallConfig(Scheme::kOrbitCache)).result;
  TestbedResult nocache = FindSaturation(SmallConfig(Scheme::kNoCache)).result;
  EXPECT_GT(orbit.rx_rps, 1.5 * nocache.rx_rps);
  EXPECT_GE(orbit.balancing_efficiency, nocache.balancing_efficiency);
}

TEST(Testbed, UniformWorkloadNeedsNoCache) {
  TestbedConfig cfg = SmallConfig(Scheme::kNoCache);
  cfg.zipf_theta = 0.0;
  cfg.client_rate_rps = 100'000;  // below aggregate capacity of 160K
  TestbedResult res = RunTestbed(cfg);
  // Uniform load balances itself: every server sees similar traffic.
  EXPECT_GT(res.balancing_efficiency, 0.8);
}

TEST(Testbed, WritesReachServersAndStayCoherent) {
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.write_ratio = 0.2;
  TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u) << "invalidation protocol must hold";
  EXPECT_GT(res.write_latency.count(), 0u);
}

TEST(Testbed, WriteBackOutperformsWriteThroughUnderWrites) {
  // §3.10: write-back keeps serving from the switch regardless of the
  // write ratio, while write-through forfeits its gain to invalidations.
  TestbedConfig wt = SmallConfig(Scheme::kOrbitCache);
  wt.write_ratio = 0.5;
  TestbedConfig wb = wt;
  wb.write_back = true;

  TestbedResult wt_res = FindSaturation(wt).result;
  TestbedResult wb_res = FindSaturation(wb).result;
  EXPECT_GT(wb_res.rx_rps, 1.2 * wt_res.rx_rps);
  EXPECT_EQ(wb_res.stale_reads, 0u);
  EXPECT_GT(wb_res.cache_served_rps, wt_res.cache_served_rps);
}

TEST(Testbed, MultiPacketItemsEndToEnd) {
  // Values spanning three packets: fragments circulate, clients
  // reassemble, coherence still holds. Run below server saturation — in
  // sustained overload, write replies return so late that newer writes
  // have always superseded them and entries legitimately stay invalid.
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.multi_packet = true;
  cfg.value_dist = wl::ValueDist::Fixed(4000);
  cfg.orbit_cache_size = 8;  // 3 packets per entry: keep the ring modest
  cfg.write_ratio = 0.05;
  cfg.client_rate_rps = 120'000;  // below the 160K aggregate capacity
  TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 100'000.0);
  EXPECT_GT(res.cache_served_rps, 10'000.0)
      << "large items served by the switch";
  EXPECT_EQ(res.stale_reads, 0u);
  // Three fragments per cached entry orbit the switch; entries with a
  // write in flight at the snapshot may be momentarily packet-less.
  EXPECT_GE(res.cache_packets_in_flight, 12u);
  EXPECT_LE(res.cache_packets_in_flight, 24u);
}

TEST(Testbed, DynamicWorkloadRecoversAfterSwap) {
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.num_servers = 4;
  cfg.server_rate_rps = 50'000;
  cfg.client_rate_rps = 180'000;
  cfg.num_keys = 50'000;
  cfg.orbit_cache_size = 32;
  cfg.hot_in = true;
  cfg.hot_in_count = 32;
  cfg.hot_in_period = 400 * kMillisecond;
  cfg.run_cache_updates = true;
  cfg.update_period = 100 * kMillisecond;
  cfg.report_period = 100 * kMillisecond;
  cfg.warmup = 0;
  cfg.duration = 1200 * kMillisecond;
  cfg.timeline_bin = 50 * kMillisecond;
  TestbedResult res = RunTestbed(cfg);
  ASSERT_GE(res.throughput_timeline.size(), 20u);
  // After the swap at 400 ms the controller must restore switch serving:
  // the last pre-swap bin and the tail of the post-swap window should both
  // be near the offered rate.
  const double before = res.throughput_timeline[6];   // 300-350 ms
  const double settled = res.throughput_timeline[14]; // 700-750 ms
  EXPECT_GT(before, 150'000.0);
  EXPECT_GT(settled, 0.9 * before) << "recovery within ~300 ms of the swap";
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, SaturationSearchFindsTheServerLimit) {
  // With a uniform workload the saturation point must sit near the
  // aggregate server capacity, independent of the probe rate.
  TestbedConfig cfg = SmallConfig(Scheme::kNoCache);
  cfg.zipf_theta = 0.0;
  SaturationResult sat = FindSaturation(cfg);
  const double capacity = cfg.server_rate_rps * cfg.num_servers;
  EXPECT_GT(sat.result.rx_rps, 0.75 * capacity);
  EXPECT_LE(sat.result.rx_rps, 1.05 * capacity);
  EXPECT_GE(sat.runs, 2);
}

}  // namespace
}  // namespace orbit::testbed
