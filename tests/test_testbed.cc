// End-to-end smoke and property tests for the full testbed assembly.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::testbed {
namespace {

TestbedConfig SmallConfig(Scheme scheme) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 8;
  cfg.topo.server_rate_rps = 20'000;
  cfg.topo.client_rate_rps = 400'000;
  cfg.workload.num_keys = 100'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.cache.orbit_cache_size = 32;
  cfg.cache.orbit_capacity = 128;
  cfg.cache.netcache_size = 1000;
  cfg.warmup = 20 * kMillisecond;
  cfg.duration = 80 * kMillisecond;
  cfg.seed = 7;
  return cfg;
}

TEST(Testbed, OrbitCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kOrbitCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.cache_served_rps, 0) << "switch should serve hot keys";
  EXPECT_GT(res.absorbed, 0u);
  EXPECT_EQ(res.stale_reads, 0u);
  EXPECT_EQ(res.cache_entries, 32u);
  // Exactly one cache packet should circulate per preloaded (valid) entry.
  EXPECT_LE(res.cache_packets_in_flight, 32u);
  EXPECT_GE(res.cache_packets_in_flight, 28u);
}

TEST(Testbed, NoCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kNoCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_EQ(res.cache_served_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, NetCacheSmokeRun) {
  TestbedResult res = RunTestbed(SmallConfig(Scheme::kNetCache));
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_GT(res.cache_served_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, OrbitCacheBeatsNoCacheOnSkewedWorkload) {
  // Compare saturated throughput — the paper's Fig. 9 metric. Under skew
  // the hottest partition caps NoCache, while OrbitCache absorbs the hot
  // keys in the switch.
  TestbedResult orbit = FindSaturation(SmallConfig(Scheme::kOrbitCache)).result;
  TestbedResult nocache = FindSaturation(SmallConfig(Scheme::kNoCache)).result;
  EXPECT_GT(orbit.rx_rps, 1.5 * nocache.rx_rps);
  EXPECT_GE(orbit.balancing_efficiency, nocache.balancing_efficiency);
}

TEST(Testbed, UniformWorkloadNeedsNoCache) {
  TestbedConfig cfg = SmallConfig(Scheme::kNoCache);
  cfg.workload.zipf_theta = 0.0;
  cfg.topo.client_rate_rps = 100'000;  // below aggregate capacity of 160K
  TestbedResult res = RunTestbed(cfg);
  // Uniform load balances itself: every server sees similar traffic.
  EXPECT_GT(res.balancing_efficiency, 0.8);
}

TEST(Testbed, WritesReachServersAndStayCoherent) {
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.workload.write_ratio = 0.2;
  TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 0);
  EXPECT_EQ(res.stale_reads, 0u) << "invalidation protocol must hold";
  EXPECT_GT(res.write_latency.count(), 0u);
}

TEST(Testbed, WriteBackOutperformsWriteThroughUnderWrites) {
  // §3.10: write-back keeps serving from the switch regardless of the
  // write ratio, while write-through forfeits its gain to invalidations.
  TestbedConfig wt = SmallConfig(Scheme::kOrbitCache);
  wt.workload.write_ratio = 0.5;
  TestbedConfig wb = wt;
  wb.cache.write_back = true;

  TestbedResult wt_res = FindSaturation(wt).result;
  TestbedResult wb_res = FindSaturation(wb).result;
  EXPECT_GT(wb_res.rx_rps, 1.2 * wt_res.rx_rps);
  EXPECT_EQ(wb_res.stale_reads, 0u);
  EXPECT_GT(wb_res.cache_served_rps, wt_res.cache_served_rps);
}

TEST(Testbed, MultiPacketItemsEndToEnd) {
  // Values spanning three packets: fragments circulate, clients
  // reassemble, coherence still holds. Run below server saturation — in
  // sustained overload, write replies return so late that newer writes
  // have always superseded them and entries legitimately stay invalid.
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.cache.multi_packet = true;
  cfg.workload.value_dist = wl::ValueDist::Fixed(4000);
  cfg.cache.orbit_cache_size = 8;  // 3 packets per entry: keep the ring modest
  cfg.workload.write_ratio = 0.05;
  cfg.topo.client_rate_rps = 120'000;  // below the 160K aggregate capacity
  TestbedResult res = RunTestbed(cfg);
  EXPECT_GT(res.rx_rps, 100'000.0);
  EXPECT_GT(res.cache_served_rps, 10'000.0)
      << "large items served by the switch";
  EXPECT_EQ(res.stale_reads, 0u);
  // Three fragments per cached entry orbit the switch; entries with a
  // write in flight at the snapshot may be momentarily packet-less.
  EXPECT_GE(res.cache_packets_in_flight, 12u);
  EXPECT_LE(res.cache_packets_in_flight, 24u);
}

TEST(Testbed, DynamicWorkloadRecoversAfterSwap) {
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.topo.num_servers = 4;
  cfg.topo.server_rate_rps = 50'000;
  cfg.topo.client_rate_rps = 180'000;
  cfg.workload.num_keys = 50'000;
  cfg.cache.orbit_cache_size = 32;
  cfg.workload.hot_in = true;
  cfg.workload.hot_in_count = 32;
  cfg.workload.hot_in_period = 400 * kMillisecond;
  cfg.control.run_cache_updates = true;
  cfg.control.update_period = 100 * kMillisecond;
  cfg.control.report_period = 100 * kMillisecond;
  cfg.warmup = 0;
  cfg.duration = 1200 * kMillisecond;
  cfg.timeline_bin = 50 * kMillisecond;
  TestbedResult res = RunTestbed(cfg);
  ASSERT_GE(res.throughput_timeline.size(), 20u);
  // After the swap at 400 ms the controller must restore switch serving:
  // the last pre-swap bin and the tail of the post-swap window should both
  // be near the offered rate.
  const double before = res.throughput_timeline[6];   // 300-350 ms
  const double settled = res.throughput_timeline[14]; // 700-750 ms
  EXPECT_GT(before, 150'000.0);
  EXPECT_GT(settled, 0.9 * before) << "recovery within ~300 ms of the swap";
  EXPECT_EQ(res.stale_reads, 0u);
}

TEST(Testbed, SaturationSearchFindsTheServerLimit) {
  // With a uniform workload the saturation point must sit near the
  // aggregate server capacity, independent of the probe rate.
  TestbedConfig cfg = SmallConfig(Scheme::kNoCache);
  cfg.workload.zipf_theta = 0.0;
  SaturationResult sat = FindSaturation(cfg);
  const double capacity = cfg.topo.server_rate_rps * cfg.topo.num_servers;
  EXPECT_GT(sat.result.rx_rps, 0.75 * capacity);
  EXPECT_LE(sat.result.rx_rps, 1.05 * capacity);
  EXPECT_GE(sat.runs, 2);
}

// --- TestbedConfig::Validate -------------------------------------------

bool HasErrorMentioning(const std::vector<std::string>& errors,
                        const std::string& needle) {
  for (const auto& e : errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

TEST(TestbedValidate, DefaultAndSmallConfigsAreValid) {
  EXPECT_TRUE(TestbedConfig{}.Validate().empty());
  EXPECT_TRUE(SmallConfig(Scheme::kOrbitCache).Validate().empty());
}

TEST(TestbedValidate, CacheLargerThanCapacityIsActionable) {
  TestbedConfig cfg;
  cfg.cache.orbit_cache_size = 2048;
  cfg.cache.orbit_capacity = 1024;
  const auto errors = cfg.Validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(HasErrorMentioning(errors, "orbit_cache_size"));
  EXPECT_TRUE(HasErrorMentioning(errors, "2048"))
      << "the message must quote the offending values";
  EXPECT_TRUE(HasErrorMentioning(errors, "1024"));
}

TEST(TestbedValidate, TimelineBinBeyondDurationIsRejected) {
  TestbedConfig cfg;
  cfg.duration = 100 * kMillisecond;
  cfg.timeline_bin = kSecond;
  EXPECT_TRUE(HasErrorMentioning(cfg.Validate(), "timeline_bin"));
}

TEST(TestbedValidate, CollectsEveryViolationNotJustTheFirst) {
  TestbedConfig cfg;
  cfg.topo.num_clients = 0;
  cfg.workload.num_keys = 0;
  cfg.workload.write_ratio = 1.5;
  cfg.duration = 0;
  const auto errors = cfg.Validate();
  EXPECT_GE(errors.size(), 4u);
  EXPECT_TRUE(HasErrorMentioning(errors, "num_clients"));
  EXPECT_TRUE(HasErrorMentioning(errors, "num_keys"));
  EXPECT_TRUE(HasErrorMentioning(errors, "write_ratio"));
  EXPECT_TRUE(HasErrorMentioning(errors, "duration"));
}

TEST(TestbedValidate, RunTestbedRefusesInvalidConfigs) {
  TestbedConfig cfg = SmallConfig(Scheme::kOrbitCache);
  cfg.cache.orbit_cache_size = cfg.cache.orbit_capacity + 1;
  EXPECT_THROW(RunTestbed(cfg), CheckFailure);
}

}  // namespace
}  // namespace orbit::testbed
