#include "workload/count_min.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "workload/zipf.h"

namespace orbit::wl {
namespace {

TEST(CountMin, NeverUndercounts) {
  CountMin cm(5, 256);
  std::unordered_map<std::string, uint64_t> truth;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformU64(1000));
    cm.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth)
    ASSERT_GE(cm.Estimate(key), count) << key;
}

TEST(CountMin, ErrorWithinClassicBound) {
  // estimate <= true + e/width * N with probability 1 - (1/2)^rows; with
  // 5 rows the chance of a single blown bound over 1000 keys is tiny.
  const uint32_t width = 2048;
  CountMin cm(5, width);
  std::unordered_map<std::string, uint64_t> truth;
  ZipfGenerator zipf(5000, 0.9);
  Rng rng(2);
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    const std::string key = "k" + std::to_string(zipf.Sample(rng));
    cm.Update(key);
    ++truth[key];
  }
  const double bound = 2.72 * static_cast<double>(n) / width;
  int violations = 0;
  for (const auto& [key, count] : truth)
    if (cm.Estimate(key) > count + static_cast<uint64_t>(bound)) ++violations;
  EXPECT_LE(violations, 2);
}

TEST(CountMin, WeightedUpdates) {
  CountMin cm(5, 64);
  cm.Update("k", 10);
  cm.Update("k", 5);
  EXPECT_GE(cm.Estimate("k"), 15u);
  EXPECT_EQ(cm.total_updates(), 15u);
}

TEST(CountMin, ResetClears) {
  CountMin cm(5, 64);
  cm.Update("k", 100);
  cm.Reset();
  EXPECT_EQ(cm.Estimate("k"), 0u);
  EXPECT_EQ(cm.total_updates(), 0u);
}

TEST(CountMin, UnseenKeysUsuallyNearZero) {
  CountMin cm(5, 4096);
  for (int i = 0; i < 1000; ++i) cm.Update("present" + std::to_string(i));
  uint64_t total_phantom = 0;
  for (int i = 0; i < 1000; ++i)
    total_phantom += cm.Estimate("absent" + std::to_string(i));
  EXPECT_LT(total_phantom, 300u);  // a few collisions at most
}

TEST(CountMin, RejectsDegenerateShapes) {
  EXPECT_THROW(CountMin(0, 16), CheckFailure);
  EXPECT_THROW(CountMin(5, 0), CheckFailure);
}

}  // namespace
}  // namespace orbit::wl
