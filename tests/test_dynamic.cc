#include "workload/dynamic.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::wl {
namespace {

TEST(DynamicPopularity, IdentityBeforeFirstSwap) {
  DynamicPopularity dyn(1000, 10);
  for (uint64_t r = 0; r < 1000; r += 7) EXPECT_EQ(dyn.Remap(r), r);
}

TEST(DynamicPopularity, SwapExchangesHotAndCold) {
  DynamicPopularity dyn(1000, 10);
  dyn.Advance();
  // Hottest ranks land in the cold tail...
  EXPECT_EQ(dyn.Remap(0), 990u);
  EXPECT_EQ(dyn.Remap(9), 999u);
  // ...cold tail becomes hot...
  EXPECT_EQ(dyn.Remap(990), 0u);
  EXPECT_EQ(dyn.Remap(999), 9u);
  // ...and the middle is untouched.
  EXPECT_EQ(dyn.Remap(500), 500u);
  EXPECT_EQ(dyn.Remap(10), 10u);
  EXPECT_EQ(dyn.Remap(989), 989u);
}

TEST(DynamicPopularity, SecondSwapRestoresIdentity) {
  DynamicPopularity dyn(1000, 128);
  dyn.Advance();
  dyn.Advance();
  for (uint64_t r = 0; r < 1000; r += 13) EXPECT_EQ(dyn.Remap(r), r);
  EXPECT_EQ(dyn.epoch(), 2u);
}

TEST(DynamicPopularity, RemapIsAlwaysBijective) {
  DynamicPopularity dyn(200, 50);
  dyn.Advance();
  std::vector<bool> hit(200, false);
  for (uint64_t r = 0; r < 200; ++r) {
    const uint64_t y = dyn.Remap(r);
    ASSERT_LT(y, 200u);
    ASSERT_FALSE(hit[y]);
    hit[y] = true;
  }
}

TEST(DynamicPopularity, RejectsOverlappingSets) {
  EXPECT_THROW(DynamicPopularity(100, 51), CheckFailure);
  DynamicPopularity ok(100, 50);
  ok.Advance();
  EXPECT_EQ(ok.Remap(0), 50u);
}

TEST(DynamicPopularity, RejectsOutOfRangeRank) {
  DynamicPopularity dyn(100, 10);
  EXPECT_THROW(dyn.Remap(100), CheckFailure);
}

}  // namespace
}  // namespace orbit::wl
