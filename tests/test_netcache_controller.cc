// NetCache control-plane behaviour: preload filtering, count-min-driven
// updates, and the uncacheable-value blacklist.
#include "netcache/controller.h"

#include <gtest/gtest.h>

#include "apps/server.h"
#include "netcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::nc {
namespace {

constexpr L4Port kPort = 5008;
constexpr Addr kClientAddr = 1, kServerAddr = 100, kCtrlAddr = 900;

class CtrlRig {
 public:
  explicit CtrlRig(uint32_t value_size, uint64_t hot_threshold = 4)
      : net_(&sim_), sw_(&sim_, &net_, "tor", rmt::AsicConfig{}),
        partitioner_(1) {
    NetConfig pcfg;
    pcfg.capacity = 16;
    pcfg.hot_threshold = hot_threshold;
    program_ = std::make_unique<NetProgram>(&sw_, pcfg);
    sw_.SetProgram(program_.get());

    app::ServerConfig scfg;
    scfg.addr = kServerAddr;
    scfg.orbit_port = kPort;
    scfg.service_rate_rps = 0;
    server_ = std::make_unique<app::ServerNode>(
        &sim_, &net_, 0, scfg,
        [value_size](const Key&) { return value_size; });

    NetControllerConfig ccfg;
    ccfg.cache_size = 4;
    ccfg.update_period = 2 * kMillisecond;
    ccfg.fetch_timeout = kMillisecond;
    ccfg.orbit_port = kPort;
    controller_ = std::make_unique<NetController>(
        &sim_, &net_, program_.get(), &partitioner_,
        std::vector<Addr>{kServerAddr}, kCtrlAddr, 0, ccfg);

    auto c = net_.Connect(&sink_, &sw_, sim::LinkConfig{});
    auto s = net_.Connect(server_.get(), &sw_, sim::LinkConfig{});
    auto k = net_.Connect(controller_.get(), &sw_, sim::LinkConfig{});
    sw_.AddRoute(kClientAddr, c.port_b);
    sw_.AddRoute(kServerAddr, s.port_b);
    sw_.AddRoute(kCtrlAddr, k.port_b);
  }

  void SendRead(const Key& key, uint32_t seq) {
    proto::Message msg;
    msg.op = proto::Op::kReadReq;
    msg.seq = seq;
    msg.hkey = HashKey128(key);
    msg.key = key;
    net_.Send(&sink_, 0, sim::MakePacket(kClientAddr, kServerAddr, 9000,
                                         kPort, std::move(msg)));
  }
  void Settle(SimTime t = 300 * kMicrosecond) { sim_.RunUntil(sim_.now() + t); }

  class Sink : public sim::Node {
   public:
    void OnPacket(sim::PacketPtr, int) override {}
    std::string name() const override { return "sink"; }
  };

  sim::Simulator sim_;
  sim::Network net_;
  rmt::SwitchDevice sw_;
  kv::Partitioner partitioner_;
  Sink sink_;
  std::unique_ptr<NetProgram> program_;
  std::unique_ptr<app::ServerNode> server_;
  std::unique_ptr<NetController> controller_;
};

TEST(NetController, PreloadFetchesValuesAndSkipsWideKeys) {
  CtrlRig rig(/*value_size=*/48);
  rig.controller_->Preload({"nck-000000000001", "nck-000000000002",
                            std::string(20, 'w')});
  rig.Settle();
  EXPECT_EQ(rig.controller_->num_cached(), 2u);
  EXPECT_EQ(rig.controller_->stats().skipped_wide_keys, 1u);
  EXPECT_TRUE(rig.program_->IsValid(
      *rig.program_->FindIdx("nck-000000000001")));
}

TEST(NetController, HotKeyDetectedAndInsertedFromSketch) {
  CtrlRig rig(/*value_size=*/48);
  rig.controller_->Start();
  const Key hot = "nck-hot-00000001";
  for (uint32_t i = 0; i < 12; ++i) {
    rig.SendRead(hot, 100 + i);
    rig.Settle(50 * kMicrosecond);
  }
  rig.sim_.RunUntil(rig.sim_.now() + 5 * kMillisecond);  // update period
  EXPECT_TRUE(rig.controller_->IsCached(hot))
      << "the data-plane sketch report must drive an insertion";
  // And after the fetch completes, the switch serves it.
  auto idx = rig.program_->FindIdx(hot);
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(rig.program_->IsValid(*idx));
}

TEST(NetController, UncacheableValuesAreBlacklistedForever) {
  CtrlRig rig(/*value_size=*/500);  // > 64B: never storable
  rig.controller_->Start();
  const Key hot = "nck-big-00000001";
  for (uint32_t i = 0; i < 12; ++i) {
    rig.SendRead(hot, 100 + i);
    rig.Settle(50 * kMicrosecond);
  }
  rig.sim_.RunUntil(rig.sim_.now() + 5 * kMillisecond);
  // Inserted, fetched, self-evicted by the data plane, blacklisted.
  EXPECT_FALSE(rig.controller_->IsCached(hot));
  EXPECT_GE(rig.controller_->stats().blacklisted_values, 1u);
  // Keep hammering: it must never be re-inserted.
  for (uint32_t i = 0; i < 12; ++i) {
    rig.SendRead(hot, 200 + i);
    rig.Settle(50 * kMicrosecond);
  }
  rig.sim_.RunUntil(rig.sim_.now() + 5 * kMillisecond);
  EXPECT_FALSE(rig.controller_->IsCached(hot));
  EXPECT_EQ(rig.program_->num_entries(), 0u);
}

TEST(NetController, RejectsOversizedCacheConfig) {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "t", rmt::AsicConfig{});
  NetConfig pcfg;
  pcfg.capacity = 4;
  NetProgram prog(&sw, pcfg);
  kv::Partitioner part(1);
  NetControllerConfig ccfg;
  ccfg.cache_size = 8;  // > capacity
  EXPECT_THROW(NetController(&sim, &net, &prog, &part, {kServerAddr},
                             kCtrlAddr, 0, ccfg),
               CheckFailure);
}

}  // namespace
}  // namespace orbit::nc
