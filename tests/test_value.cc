#include "kv/value.h"

#include <gtest/gtest.h>

namespace orbit::kv {
namespace {

TEST(Value, SyntheticCarriesSizeAndVersion) {
  Value v = Value::Synthetic(256, 7);
  EXPECT_EQ(v.size(), 256u);
  EXPECT_EQ(v.version(), 7u);
  EXPECT_TRUE(v.is_synthetic());
}

TEST(Value, MaterializeIsDeterministicPerKeyAndVersion) {
  Value v = Value::Synthetic(100, 3);
  EXPECT_EQ(v.Materialize("k1"), v.Materialize("k1"));
  EXPECT_NE(v.Materialize("k1"), v.Materialize("k2"));
  Value v2 = Value::Synthetic(100, 4);
  EXPECT_NE(v.Materialize("k1"), v2.Materialize("k1"));
  EXPECT_EQ(v.Materialize("k1").size(), 100u);
}

TEST(Value, VersionSurvivesByteRoundTrip) {
  Value v = Value::Synthetic(64, 42);
  Value back = Value::FromBytes(v.Materialize("key"));
  EXPECT_EQ(back.size(), 64u);
  EXPECT_EQ(back.version(), 42u);
  EXPECT_FALSE(back.is_synthetic());
}

TEST(Value, ContentEqualsAcrossRepresentations) {
  Value synthetic = Value::Synthetic(128, 9);
  Value bytes = Value::FromBytes(synthetic.Materialize("key"));
  EXPECT_TRUE(synthetic.ContentEquals(bytes, "key"));
  EXPECT_TRUE(bytes.ContentEquals(synthetic, "key"));
  Value other = Value::Synthetic(128, 10);
  EXPECT_FALSE(synthetic.ContentEquals(other, "key"));
}

TEST(Value, SmallValuesHaveNoVersionField) {
  Value v = Value::Synthetic(4, 9);
  EXPECT_EQ(v.Materialize("k").size(), 4u);
  Value back = Value::FromBytes(v.Materialize("k"));
  EXPECT_EQ(back.version(), 0u);  // too small to carry one
}

TEST(Value, ZeroSizeIsMetadataOnly) {
  Value v = Value::Synthetic(0, 5);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.version(), 5u);
  EXPECT_EQ(v.Materialize("k"), "");
}

class ValueSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ValueSizes, MaterializedLengthMatches) {
  Value v = Value::Synthetic(GetParam(), 1);
  EXPECT_EQ(v.Materialize("some-key").size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValueSizes,
                         ::testing::Values(1, 7, 8, 9, 63, 64, 128, 1024,
                                           1416));

}  // namespace
}  // namespace orbit::kv
