#include "proto/codec.h"

#include <gtest/gtest.h>

#include <tuple>

namespace orbit::proto {
namespace {

Message SampleMessage(Op op, size_t key_len, uint32_t value_len) {
  Message m;
  m.op = op;
  m.seq = 0xdeadbeef;
  m.hkey = Hash128{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  m.flag = kFlagCachedWrite;
  m.cached = 1;
  m.latency = 1234;
  m.srv_id = 9;
  m.epoch = 77;
  m.frag_index = 1;
  m.frag_total = 3;
  m.key = std::string(key_len, 'k');
  m.value = kv::Value::Synthetic(value_len, 5);
  return m;
}

TEST(Codec, HeaderSizeMatchesSpec) {
  // Paper header (22B) + prototype extras (10B) + fragment fields (2B) +
  // key length (2B).
  EXPECT_EQ(Message::kHeaderBytes, 36u);
  Message m = SampleMessage(Op::kReadReq, 16, 64);
  EXPECT_EQ(Encode(m).size(), Message::kHeaderBytes + 16 + 64);
}

TEST(Codec, WireBytesIncludeEncap) {
  Message m = SampleMessage(Op::kReadReq, 16, 64);
  EXPECT_EQ(WireBytes(m), kEncapBytes + Message::kHeaderBytes + 16 + 64);
}

TEST(Codec, MaxSinglePacketItemFits) {
  // §3.2: with the instrumented header, a 16B key + 1416B value fills one
  // MTU-sized packet but not more.
  Message m = SampleMessage(Op::kReadRep, 16, 1416);
  EXPECT_LE(Encode(m).size(), kMaxOrbitBytes);
  Message over = SampleMessage(Op::kReadRep, 16, 1424);
  EXPECT_GT(Encode(over).size(), kMaxOrbitBytes);
}

TEST(Codec, RejectsTruncatedBuffers) {
  Message m = SampleMessage(Op::kReadRep, 8, 32);
  auto wire = Encode(m);
  for (size_t cut : {0u, 1u, 10u, 33u}) {
    std::vector<uint8_t> truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(Decode(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, RejectsUnknownOpcode) {
  Message m = SampleMessage(Op::kReadRep, 8, 8);
  auto wire = Encode(m);
  wire[0] = 0;
  EXPECT_FALSE(Decode(wire).has_value());
  wire[0] = 9;
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(Codec, RejectsKeyLengthBeyondBuffer) {
  Message m = SampleMessage(Op::kReadRep, 8, 0);
  auto wire = Encode(m);
  // Key length field sits right before the key: bytes 34..35.
  wire[34] = 0xff;
  wire[35] = 0xff;
  EXPECT_FALSE(Decode(wire).has_value());
}

using RoundTripParam = std::tuple<int, size_t, uint32_t>;
class CodecRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const auto [op_int, key_len, value_len] = GetParam();
  Message m = SampleMessage(static_cast<Op>(op_int), key_len, value_len);
  auto decoded = Decode(Encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, m.op);
  EXPECT_EQ(decoded->seq, m.seq);
  EXPECT_EQ(decoded->hkey, m.hkey);
  EXPECT_EQ(decoded->flag, m.flag);
  EXPECT_EQ(decoded->cached, m.cached);
  EXPECT_EQ(decoded->latency, m.latency);
  EXPECT_EQ(decoded->srv_id, m.srv_id);
  EXPECT_EQ(decoded->epoch, m.epoch);
  EXPECT_EQ(decoded->frag_index, m.frag_index);
  EXPECT_EQ(decoded->frag_total, m.frag_total);
  EXPECT_EQ(decoded->key, m.key);
  EXPECT_EQ(decoded->value.size(), m.value.size());
  EXPECT_TRUE(decoded->value.ContentEquals(m.value, m.key));
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndSizes, CodecRoundTrip,
    ::testing::Combine(::testing::Range(1, 9),           // all opcodes
                       ::testing::Values<size_t>(1, 16, 40, 120),
                       ::testing::Values<uint32_t>(0, 8, 64, 235, 1024)));

}  // namespace
}  // namespace orbit::proto
