#include "rmt/register_array.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orbit::rmt {
namespace {

TEST(RegisterArray, ReadWriteAndInitialValue) {
  Resources res((AsicConfig()));
  RegisterArray<uint32_t> arr(&res, "r", 0, 16, 7u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(arr.at(i), 7u);
  arr.at(3) = 99;
  EXPECT_EQ(arr.at(3), 99u);
  arr.Fill(1);
  EXPECT_EQ(arr.at(3), 1u);
}

TEST(RegisterArray, BoundsChecked) {
  Resources res((AsicConfig()));
  RegisterArray<uint8_t> arr(&res, "r", 0, 8);
  EXPECT_THROW(arr.at(8), CheckFailure);
}

TEST(RegisterArray, EnforcesAluWidthLimit) {
  AsicConfig cfg;
  cfg.alu_bytes_per_stage = 4;
  Resources res(cfg);
  // 8-byte slots exceed a 4-byte ALU: the hardware constraint NetCache's
  // value striping lives under.
  EXPECT_THROW(
      (RegisterArray<uint64_t>(&res, "wide", 0, 4)), CheckFailure);
  RegisterArray<uint32_t> ok(&res, "ok", 0, 4);  // 4 bytes fits
}

TEST(RegisterArray, AccountsSramPerStage) {
  Resources res((AsicConfig()));
  RegisterArray<uint64_t> arr(&res, "big", 2, 1024);
  EXPECT_EQ(res.sram_bytes_used(), 1024u * 8);
  EXPECT_EQ(res.stages_used(), 3);  // stages 0..2
}

TEST(RegisterArray, StageAluBudgetEnforced) {
  AsicConfig cfg;
  cfg.alus_per_stage = 2;
  Resources res(cfg);
  RegisterArray<uint8_t> a(&res, "a", 0, 4);
  RegisterArray<uint8_t> b(&res, "b", 0, 4);
  EXPECT_THROW((RegisterArray<uint8_t>(&res, "c", 0, 4)), CheckFailure);
  // A different stage is fine.
  RegisterArray<uint8_t> d(&res, "d", 1, 4);
}

TEST(ScalarRegister, ActsAsSizeOneArray) {
  Resources res((AsicConfig()));
  Register<uint64_t> counter(&res, "ctr", 0);
  EXPECT_EQ(counter.get(), 0u);
  counter.get() += 5;
  EXPECT_EQ(counter.get(), 5u);
}

}  // namespace
}  // namespace orbit::rmt
