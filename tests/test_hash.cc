#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/check.h"

namespace orbit {
namespace {

TEST(Mix64, IsBijective) {
  // UnMix64 inverts Mix64 across a spread of inputs.
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{42},
                     uint64_t{0xdeadbeef}, UINT64_MAX,
                     uint64_t{0x123456789abcdef}}) {
    EXPECT_EQ(UnMix64(Mix64(x)), x) << x;
  }
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_EQ(UnMix64(Mix64(i)), i);
}

TEST(Hash64, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
  EXPECT_NE(Hash64("hello", 1), Hash64("hello", 2));
  EXPECT_NE(Hash64(""), Hash64("x"));
}

TEST(Hash64, LengthExtensionDiffers) {
  // "ab" + "c" vs "abc" through different chunkings must not collide by
  // construction of the length mixing.
  EXPECT_NE(Hash64("abc"), Hash64("abcd"));
  EXPECT_NE(Hash64(std::string(8, 'a')), Hash64(std::string(9, 'a')));
  EXPECT_NE(Hash64(std::string(16, 'a')), Hash64(std::string(17, 'a')));
}

TEST(Hash64, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  std::string base = "0123456789abcdef";
  const uint64_t h0 = Hash64(base);
  double total_flips = 0;
  int cases = 0;
  for (size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = base;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      total_flips += __builtin_popcountll(h0 ^ Hash64(mutated));
      ++cases;
    }
  }
  const double mean_flips = total_flips / cases;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(HashKey128, DeterministicAndDistinct) {
  const Hash128 a = HashKey128("key-1");
  EXPECT_EQ(a, HashKey128("key-1"));
  EXPECT_NE(a, HashKey128("key-2"));
  EXPECT_NE(a.hi, 0u);  // astronomically unlikely
}

TEST(HashKey128, NoCollisionsOverLargeKeySet) {
  std::set<Hash128> seen;
  for (int i = 0; i < 200000; ++i) {
    const auto h = HashKey128("key-" + std::to_string(i));
    EXPECT_TRUE(seen.insert(h).second) << "collision at " << i;
  }
}

TEST(HashKey128, LanesAreIndependent) {
  // hi and lo should not be trivially related.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto h = HashKey128(std::to_string(i));
    if (h.hi == h.lo) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Permutation, IsBijectiveOverOddDomain) {
  const uint64_t n = 10007;  // prime, exercises cycle walking
  Permutation perm(n, 99);
  std::vector<bool> hit(n, false);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t y = perm(i);
    ASSERT_LT(y, n);
    ASSERT_FALSE(hit[y]) << "duplicate image " << y;
    hit[y] = true;
  }
}

TEST(Permutation, SeedChangesMapping) {
  Permutation a(1 << 16, 1), b(1 << 16, 2);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i)
    if (a(i) == b(i)) ++same;
  EXPECT_LT(same, 10);
}

TEST(Permutation, RejectsOutOfRange) {
  Permutation perm(100, 1);
  EXPECT_THROW(perm(100), CheckFailure);
}

TEST(Permutation, ScattersContiguousRanks) {
  // Consecutive ranks (the hottest items) must not map to consecutive ids,
  // or they would all land on adjacent partitions.
  Permutation perm(1'000'000, 42);
  int adjacent = 0;
  for (uint64_t i = 0; i + 1 < 1000; ++i)
    if (perm(i + 1) == perm(i) + 1) ++adjacent;
  EXPECT_LT(adjacent, 5);
}

}  // namespace
}  // namespace orbit
