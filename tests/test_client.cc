// Open-loop client behaviour: pacing, pending-list matching, client-side
// collision resolution (§3.6), staleness accounting, and timeouts.
#include "apps/client.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::app {
namespace {

constexpr Addr kClientAddr = 1, kServerAddr = 2;

// A scriptable peer standing in for switch+server: echoes read replies,
// optionally with a wrong key (hash collision) or a stale version.
class MockPeer : public sim::Node {
 public:
  MockPeer(sim::Simulator* sim, sim::Network* net) : sim_(sim), net_(net) {}

  void OnPacket(sim::PacketPtr pkt, int) override {
    ++requests;
    last_op = pkt->msg.op;
    if (pkt->msg.op == proto::Op::kCorrectionReq) ++corrections;
    if (drop_all) return;
    proto::Message rep = pkt->msg;
    rep.op = pkt->msg.op == proto::Op::kWriteReq ? proto::Op::kWriteRep
                                                 : proto::Op::kReadRep;
    if (pkt->msg.op == proto::Op::kWriteReq) {
      rep.value = kv::Value::Synthetic(0, ++version);
    } else if (pkt->msg.op == proto::Op::kCorrectionReq) {
      rep.value = kv::Value::Synthetic(64, version);
    } else {
      rep.value = kv::Value::Synthetic(64, stale_reads ? 1 : version);
      if (collide_next) {
        rep.key = "WRONG-KEY-000000";
        collide_next = false;
      }
    }
    const Addr dst = pkt->src;
    rep.seq = pkt->msg.seq;
    if (frag_count > 1 && rep.op == proto::Op::kReadRep) {
      // Multi-packet reply: one packet per fragment, optionally repeating
      // fragment `dup_frag_index` to exercise duplicate accounting.
      for (int i = 0; i < frag_count; ++i) {
        const int copies = i == dup_frag_index ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          proto::Message frag = rep;
          frag.frag_index = static_cast<uint8_t>(i);
          frag.frag_total = static_cast<uint8_t>(frag_count);
          auto out = sim::MakePacket(kServerAddr, dst, pkt->dport, pkt->sport,
                                     std::move(frag));
          net_->Send(this, 0, std::move(out));
        }
      }
      return;
    }
    for (int c = 0; c < (reply_twice ? 2 : 1); ++c) {
      proto::Message copy = rep;
      auto out = sim::MakePacket(kServerAddr, dst, pkt->dport, pkt->sport,
                                 std::move(copy));
      net_->Send(this, 0, std::move(out));
    }
  }
  std::string name() const override { return "mock-peer"; }

  int requests = 0;
  int corrections = 0;
  uint64_t version = 5;
  bool collide_next = false;
  bool stale_reads = false;
  bool drop_all = false;
  bool reply_twice = false;
  int frag_count = 1;       // >1: split read replies into this many packets
  int dup_frag_index = -1;  // resend this fragment once more
  proto::Op last_op = proto::Op::kReadReq;

 private:
  sim::Simulator* sim_;
  sim::Network* net_;
};

// A workload that always asks for one key.
class OneKeyWorkload : public WorkloadSource {
 public:
  explicit OneKeyWorkload(double write_ratio = 0) : write_ratio_(write_ratio) {}
  Request Next(Rng& rng) override {
    Request req;
    req.key = "the-one-key-0000";
    req.hkey = HashKey128(req.key);
    req.server = kServerAddr;
    req.is_write = rng.Bernoulli(write_ratio_);
    req.value_size = 64;
    return req;
  }

 private:
  double write_ratio_;
};

class ClientTest : public ::testing::Test {
 protected:
  void Build(double rate, double write_ratio = 0, int max_retries = 0) {
    ClientConfig cfg;
    cfg.addr = kClientAddr;
    cfg.rate_rps = rate;
    cfg.seed = 3;
    cfg.request_timeout = 5 * kMillisecond;
    cfg.max_retries = max_retries;
    client_ = std::make_unique<ClientNode>(
        &sim_, &net_, 0, cfg, std::make_shared<OneKeyWorkload>(write_ratio));
    peer_ = std::make_unique<MockPeer>(&sim_, &net_);
    net_.Connect(client_.get(), peer_.get(), sim::LinkConfig{});
    client_->Start();
  }

  sim::Simulator sim_;
  sim::Network net_{&sim_};
  std::unique_ptr<ClientNode> client_;
  std::unique_ptr<MockPeer> peer_;
};

TEST_F(ClientTest, OpenLoopRateIsRespected) {
  Build(100'000);  // 10us mean gap
  sim_.RunUntil(100 * kMillisecond);
  // ~10000 expected; Poisson noise is ~1%.
  EXPECT_NEAR(static_cast<double>(client_->stats().tx_requests), 10000, 500);
  EXPECT_EQ(client_->stats().rx_replies, client_->stats().tx_requests);
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

TEST_F(ClientTest, MeasurementWindowFiltersLatency) {
  Build(50'000);
  sim_.RunUntil(10 * kMillisecond);
  EXPECT_EQ(client_->server_read_latency().count(), 0u) << "window not open";
  client_->OpenWindow(sim_.now());
  sim_.RunUntil(30 * kMillisecond);
  client_->CloseWindow(sim_.now());
  const uint64_t measured = client_->server_read_latency().count();
  EXPECT_GT(measured, 500u);
  EXPECT_GT(client_->rx_meter().RatePerSec(), 40'000.0);
  // Latency ≈ two link hops (~1us each way + serialization).
  EXPECT_GT(client_->server_read_latency().Median(), 500);
  EXPECT_LT(client_->server_read_latency().Median(), 5000);
}

TEST_F(ClientTest, CollisionTriggersAutomaticCorrection) {
  Build(10'000);
  sim_.RunUntil(500 * kMicrosecond);  // a few requests through
  peer_->collide_next = true;
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(client_->stats().collisions, 1u);
  EXPECT_EQ(peer_->corrections, 1) << "client sent CRN-REQ";
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

TEST_F(ClientTest, StaleVersionsAreCounted) {
  Build(20'000);
  sim_.RunUntil(2 * kMillisecond);  // observe version 5 first
  peer_->stale_reads = true;        // now every reply regresses to 1
  sim_.RunUntil(4 * kMillisecond);
  EXPECT_GT(client_->stats().stale_reads, 0u);
}

TEST_F(ClientTest, DroppedRepliesBecomeTimeouts) {
  Build(20'000);
  sim_.RunUntil(2 * kMillisecond);
  peer_->drop_all = true;
  sim_.RunUntil(4 * kMillisecond);
  peer_->drop_all = false;
  sim_.RunUntil(12 * kMillisecond);
  EXPECT_GT(client_->stats().timeouts, 10u);
  // Late replies to pruned requests count as strays, not crashes.
  EXPECT_EQ(client_->stats().stale_reads, 0u);
}

TEST_F(ClientTest, WritesCarryClientStampedVersions) {
  Build(20'000, /*write_ratio=*/1.0);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_GT(client_->stats().writes_sent, 10u);
  EXPECT_EQ(client_->stats().reads_sent, 0u);
  EXPECT_EQ(peer_->last_op, proto::Op::kWriteReq);
  client_->OpenWindow(sim_.now());
  sim_.RunUntil(4 * kMillisecond);
  client_->CloseWindow(sim_.now());
  EXPECT_GT(client_->write_latency().count(), 0u);
}

TEST_F(ClientTest, StopHaltsTraffic) {
  Build(100'000);
  sim_.RunUntil(5 * kMillisecond);
  client_->Stop();
  const uint64_t tx = client_->stats().tx_requests;
  sim_.RunUntil(20 * kMillisecond);
  EXPECT_EQ(client_->stats().tx_requests, tx);
}

// Regression (>32-fragment aliasing): a 40-fragment reply must complete
// exactly once, with every distinct fragment counted — the old 32-bit
// bitmap aliased indices ≥ 32 and completed early.
TEST_F(ClientTest, LargeFragmentCountsReassembleExactly) {
  Build(10'000);
  peer_->frag_count = 40;
  sim_.RunUntil(20 * kMillisecond);
  client_->Stop();  // retire the (at most one) partially-arrived reply
  EXPECT_GT(client_->stats().tx_requests, 50u);
  EXPECT_EQ(client_->stats().rx_replies + client_->stats().inflight_at_stop,
            client_->stats().tx_requests);
  EXPECT_GT(client_->stats().rx_replies, 50u);
  EXPECT_EQ(client_->stats().duplicate_frags, 0u);
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

TEST_F(ClientTest, DuplicateFragmentsAreCountedNotDoubleCompleted) {
  Build(10'000);
  peer_->frag_count = 40;
  peer_->dup_frag_index = 35;  // index above the old 32-bit bitmap range
  sim_.RunUntil(20 * kMillisecond);
  client_->Stop();
  EXPECT_EQ(client_->stats().rx_replies + client_->stats().inflight_at_stop,
            client_->stats().tx_requests);
  EXPECT_GE(client_->stats().duplicate_frags, client_->stats().rx_replies);
  EXPECT_EQ(client_->stats().stray_replies, 0u);
}

// The deadline is exact: a request sent at t times out at t + timeout, not
// at the next multiple of a sweep period.
TEST_F(ClientTest, TimeoutFiresExactlyAtDeadline) {
  Build(100'000);
  peer_->drop_all = true;
  sim_.RunUntil(5 * kMillisecond);  // no deadline can have passed yet
  EXPECT_EQ(client_->stats().timeouts, 0u);
  sim_.RunUntil(5 * kMillisecond + 500 * kMicrosecond);
  // Everything sent in the first 500us has now timed out (~50 requests at
  // a 10us mean gap); the old 5ms sweep wouldn't fire until 10ms.
  EXPECT_GT(client_->stats().timeouts, 10u);
}

TEST_F(ClientTest, StopRetiresInflightExplicitly) {
  Build(20'000);
  peer_->drop_all = true;
  sim_.RunUntil(3 * kMillisecond);  // inside the 5ms timeout: all pending
  client_->Stop();
  EXPECT_EQ(client_->stats().timeouts, 0u);
  EXPECT_GT(client_->stats().inflight_at_stop, 10u);
  EXPECT_EQ(client_->stats().inflight_at_stop, client_->stats().tx_requests);
  // The armed deadline events fire into the cleared map: no late timeouts.
  sim_.RunUntil(30 * kMillisecond);
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

// §3.9: a loss episode shorter than the retry budget costs retransmissions
// but zero requests.
TEST_F(ClientTest, RetransmissionRecoversFromLossEpisode) {
  Build(20'000, /*write_ratio=*/0, /*max_retries=*/2);
  sim_.RunUntil(2 * kMillisecond);
  peer_->drop_all = true;
  sim_.RunUntil(4 * kMillisecond);
  peer_->drop_all = false;
  // First retry lands 5ms after first send; run long enough for all of
  // them (and their backoff doubles) to drain.
  sim_.RunUntil(40 * kMillisecond);
  client_->Stop();
  EXPECT_GT(client_->stats().retransmissions, 10u);
  EXPECT_EQ(client_->stats().timeouts, 0u);
  EXPECT_EQ(client_->stats().rx_replies, client_->stats().tx_requests);
}

TEST_F(ClientTest, RetryBudgetExhaustionBecomesTimeout) {
  Build(20'000, /*write_ratio=*/0, /*max_retries=*/2);
  peer_->drop_all = true;  // nothing ever answers
  // Backoff schedule per request: retries at t+5ms and t+15ms, giving up
  // at t+35ms — so no request sent after 0 can have timed out by 34ms.
  sim_.RunUntil(34 * kMillisecond);
  EXPECT_EQ(client_->stats().timeouts, 0u);
  EXPECT_GT(client_->stats().retransmissions, 100u);
  sim_.RunUntil(41 * kMillisecond);
  EXPECT_GT(client_->stats().timeouts, 10u)
      << "requests sent in the first 5ms exhausted their budget";
}

// At-most-once: duplicate replies (e.g. an original answer racing a
// retransmitted one) complete the request once and count as strays.
TEST_F(ClientTest, DuplicateRepliesAreStray) {
  Build(20'000);
  peer_->reply_twice = true;
  sim_.RunUntil(10 * kMillisecond);
  EXPECT_GT(client_->stats().rx_replies, 100u);
  EXPECT_EQ(client_->stats().stray_replies, client_->stats().rx_replies);
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

// Regression: SEQ allocation near the 32-bit wrap. Matching, duplicate
// classification, and timeout accounting must be seamless across the
// UINT32_MAX -> 1 rollover (0 stays reserved as "unset").
TEST_F(ClientTest, SeqWraparoundKeepsMatchingSeamless) {
  Build(20'000);
  client_->set_next_seq_for_test(UINT32_MAX - 3);
  sim_.RunUntil(2 * kMillisecond);  // ~40 sends, rolling through the wrap
  EXPECT_GT(client_->stats().tx_requests, 10u);
  EXPECT_EQ(client_->stats().rx_replies, client_->stats().tx_requests);
  EXPECT_EQ(client_->stats().stray_replies, 0u);
  EXPECT_EQ(client_->stats().timeouts, 0u);
}

// Regression: a recycled SEQ that is still live (what the wrap produces
// when a slow request survives 2^32 sends) must not silently overwrite
// the pending entry — that orphans the original request's accounting.
TEST_F(ClientTest, RecycledSeqCannotOrphanALivePending) {
  Build(20'000);
  peer_->drop_all = true;          // every request stays pending
  sim_.RunUntil(500 * kMicrosecond);
  ASSERT_GT(client_->stats().tx_requests, 2u);
  // SEQs 1..tx_requests are all live; restart allocation at 1.
  client_->set_next_seq_for_test(1);
  sim_.RunUntil(3 * kMillisecond);  // more sends, all inside the 5ms timeout
  ASSERT_GT(client_->stats().tx_requests, 4u);
  // Retire everything while nothing has timed out yet: every sent request
  // must still be accounted for. An overwritten pending would vanish.
  client_->Stop();
  EXPECT_EQ(client_->stats().timeouts, 0u);
  EXPECT_EQ(client_->stats().inflight_at_stop, client_->stats().tx_requests);
}

// A workload with an unbounded stream of distinct keys, for the staleness
// tracking-map bound.
class ManyKeysWorkload : public WorkloadSource {
 public:
  Request Next(Rng&) override {
    Request req;
    req.key = "distinct-key-" + std::to_string(counter_++);
    req.hkey = HashKey128(req.key);
    req.server = kServerAddr;
    req.value_size = 64;
    return req;
  }

 private:
  uint64_t counter_ = 0;
};

// Regression: check_staleness used to grow last_version_ with every
// distinct key forever; the map must respect staleness_max_keys.
TEST(ClientStaleness, TrackingMapRespectsConfiguredBound) {
  sim::Simulator sim;
  sim::Network net{&sim};
  ClientConfig cfg;
  cfg.addr = kClientAddr;
  cfg.rate_rps = 50'000;
  cfg.seed = 3;
  cfg.staleness_max_keys = 8;
  auto client = std::make_unique<ClientNode>(
      &sim, &net, 0, cfg, std::make_shared<ManyKeysWorkload>());
  MockPeer peer(&sim, &net);
  net.Connect(client.get(), &peer, sim::LinkConfig{});
  client->Start();
  sim.RunUntil(5 * kMillisecond);  // ~250 distinct keys stream through
  EXPECT_GT(client->stats().rx_replies, 50u);
  EXPECT_LE(client->staleness_tracked_keys(), 8u);
}

}  // namespace
}  // namespace orbit::app
