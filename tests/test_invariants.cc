// Randomized invariant checking over the OrbitCache protocol: under an
// arbitrary interleaving of reads, writes, fetches, evictions, and
// re-insertions, the system must settle with
//   (1) exactly one circulating cache packet per valid single-packet entry,
//   (2) no stale read ever delivered (versions monotone per key), and
//   (3) no request lost without trace (every read answered or counted).
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

class ProtocolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzz, SettlesToOnePacketPerValidEntry) {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 2;
  Rig rig(cfg);
  Rng rng(GetParam());

  const int kKeys = 4;
  auto key_of = [](int i) { return Key("fuzz-key-" + std::to_string(i) +
                                       "-000000"); };
  std::map<int, bool> inserted;  // key index -> entry present
  uint32_t seq = 1;

  for (int step = 0; step < 400; ++step) {
    const int k = static_cast<int>(rng.UniformU64(kKeys));
    const Key key = key_of(k);
    const uint32_t idx = static_cast<uint32_t>(k);
    switch (rng.UniformU64(6)) {
      case 0:  // insert + fetch
        if (!inserted[k]) {
          rig.program().InsertEntry(HashKey128(key), idx);
          rig.SendFetch(key, seq++);
          inserted[k] = true;
        }
        break;
      case 1:  // evict
        if (inserted[k]) {
          rig.program().EraseEntry(HashKey128(key));
          inserted[k] = false;
        }
        break;
      case 2:  // duplicate fetch (tests the duplicate-reply guard)
        if (inserted[k]) rig.SendFetch(key, seq++);
        break;
      case 3:
      case 4:  // read
        rig.SendRead(key, seq++);
        break;
      case 5:  // write
        rig.SendWrite(key, seq++, 64);
        break;
    }
    rig.Run(static_cast<SimTime>(rng.UniformU64(20)) * kMicrosecond);
  }
  rig.Run(2 * kMillisecond);  // settle completely

  // Invariant 1: one packet per valid entry, none for invalid/evicted.
  int valid_entries = 0;
  for (int k = 0; k < kKeys; ++k)
    if (inserted[k] && rig.program().IsValid(static_cast<uint32_t>(k)))
      ++valid_entries;
  EXPECT_EQ(rig.sw().stats().recirc_in_flight, valid_entries)
      << "cache packets must match valid entries exactly";

  // Invariant 2: per-key versions seen by read replies are monotone.
  std::map<Key, uint64_t> last_version;
  for (const auto& r : rig.client().replies) {
    if (r.msg.op != proto::Op::kReadRep) continue;
    if (r.msg.value.version() == 0) continue;
    uint64_t& last = last_version[r.msg.key];
    EXPECT_GE(r.msg.value.version(), last)
        << "stale read for " << r.msg.key << " at t=" << r.at;
    last = std::max(last, r.msg.value.version());
  }

  // Invariant 3: the switch never invented or destroyed requests silently —
  // every absorbed read was served, or is still buffered under an entry
  // that lost its packet to an eviction and was not re-installed.
  uint64_t still_buffered = 0;
  for (uint32_t idx = 0; idx < 8; ++idx)
    still_buffered += rig.program().request_table().QueueLength(idx);
  const auto& st = rig.program().stats();
  EXPECT_EQ(st.absorbed, st.served_by_cache + still_buffered)
      << "absorbed requests must be served or still accounted";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ProtocolFuzzWriteBack, DirtyDataNeverLost) {
  // Random writes under write-back with random evictions: after a final
  // flush-out, the storage server must hold every key's newest version.
  RigConfig cfg;
  cfg.orbit.capacity = 4;
  cfg.orbit.write_back = true;
  cfg.num_servers = 1;
  Rig rig(cfg);
  Rng rng(99);

  const Key key = "wb-fuzz-key-0000";
  rig.CacheAndFetch(key, 0);
  // Versions are serialized by switch (cached) or server (uncached): each
  // write bumps the key's version by exactly one, starting from the
  // synthesized v1, so the final version must equal 1 + #writes.
  uint64_t writes = 0;
  bool cached = true;
  for (int step = 0; step < 100; ++step) {
    if (rng.Bernoulli(0.7)) {
      rig.SendWrite(key, 100 + static_cast<uint32_t>(step), 64);
      ++writes;
    } else if (cached) {
      rig.program().EraseEntry(HashKey128(key));  // forces a flush
      cached = false;
    } else {
      rig.program().InsertEntry(HashKey128(key), 0);
      rig.SendFetch(key);
      cached = true;
    }
    rig.Run(static_cast<SimTime>(5 + rng.UniformU64(30)) * kMicrosecond);
  }
  // Final eviction flushes any dirty tail.
  if (cached) rig.program().EraseEntry(HashKey128(key));
  rig.Run(2 * kMillisecond);

  auto v = rig.ServerFor(key).store().Get(key);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version(), 1 + writes)
      << "write-back lost an acknowledged write";
}

}  // namespace
}  // namespace orbit::oc
