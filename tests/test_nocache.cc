#include "nocache/program.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace orbit::nocache {
namespace {

class Sink : public sim::Node {
 public:
  void OnPacket(sim::PacketPtr pkt, int) override { seqs.push_back(pkt->msg.seq); }
  std::string name() const override { return "sink"; }
  std::vector<uint32_t> seqs;
};

TEST(NoCache, ForwardsEverythingByDestination) {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "sw", rmt::AsicConfig{});
  ForwardProgram program;
  sw.SetProgram(&program);

  Sink a, b;
  auto at_a = net.Connect(&a, &sw, sim::LinkConfig{});
  auto at_b = net.Connect(&b, &sw, sim::LinkConfig{});
  (void)at_a;
  sw.AddRoute(2, at_b.port_b);

  for (uint32_t seq = 0; seq < 5; ++seq) {
    auto pkt = sim::NewPacket(0, 0, 0, 0);
    pkt->src = 1;
    pkt->dst = 2;
    pkt->msg.seq = seq;
    pkt->msg.op = seq % 2 == 0 ? proto::Op::kReadReq : proto::Op::kWriteReq;
    pkt->dport = 5008;  // even OrbitCache traffic is just forwarded
    net.Send(&a, 0, std::move(pkt));
  }
  sim.RunToCompletion();
  EXPECT_EQ(b.seqs.size(), 5u);
  EXPECT_EQ(program.forwarded(), 5u);
  EXPECT_EQ(sw.stats().recirc_packets, 0u) << "no recirculation ever";
}

TEST(NoCache, ConsumesNoDataPlaneResources) {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::SwitchDevice sw(&sim, &net, "sw", rmt::AsicConfig{});
  ForwardProgram program;
  sw.SetProgram(&program);
  EXPECT_EQ(sw.resources().sram_bytes_used(), 0u);
}

}  // namespace
}  // namespace orbit::nocache
